examples/assurance_flow.ml: Assurance Decisive Filename Format Ssam Sys
