examples/assurance_flow.mli:
