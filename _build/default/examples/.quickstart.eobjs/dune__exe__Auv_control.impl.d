examples/auv_control.ml: Blockdiag Decisive Fmea Format List Optimize Printf Ssam String
