examples/auv_control.mli:
