examples/change_impact.ml: Architecture Base Blockdiag Decisive Diff Fmea Format Hara Hazard List Model Option Reliability Requirement Ssam
