examples/change_impact.mli:
