examples/model_federation.ml: Blockdiag Decisive Filename Format List Modelio Query Ssam Sys
