examples/model_federation.mli:
