examples/pll_fmeda.ml: Decisive Fmea Format List Optimize Reliability Ssam String
