examples/pll_fmeda.mli:
