examples/power_supply.ml: Assurance Blockdiag Decisive Filename Fmea Format Fta Hara List Ssam String Sys
