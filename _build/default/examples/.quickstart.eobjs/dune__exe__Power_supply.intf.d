examples/power_supply.mli:
