examples/quickstart.ml: Blockdiag Decisive Fmea Format Reliability Ssam
