examples/quickstart.mli:
