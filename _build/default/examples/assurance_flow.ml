(* Automated assurance-case re-evaluation across a design change (Sec. V-C).

   "When our design changes, it is reflected in the FMEDA result, which can
   in turn be automatically checked by ACME (by executing the query)."

   This example runs the flow both ways: a weak design whose FMEDA makes
   the case FAIL, then the refined design whose regenerated FMEDA makes
   the same case HOLD — no change to the case itself, only to the cited
   artefact.

   Run with: dune exec examples/assurance_flow.exe *)

let evaluate_against csv_path label =
  let case =
    Decisive.Api.assurance_case_for ~system:"PSU"
      ~target:Ssam.Requirement.ASIL_B ~fmeda_csv:csv_path
  in
  let report = Assurance.Eval.evaluate case in
  Format.printf "--- %s ---@.%a@.@." label Assurance.Eval.pp_report report;
  report.Assurance.Eval.overall

let () =
  let csv = Filename.temp_file "fmeda" ".csv" in

  (* Iteration 1: the unrefined design (SPFM 5.38 % — far below ASIL-B). *)
  let before = Decisive.Case_study.fmea_via_injection () in
  Decisive.Api.export_fmeda ~path:csv before;
  let v1 = evaluate_against csv "iteration 1: unrefined design" in
  assert (v1 = Assurance.Eval.Fails);

  (* Iteration 2: Step 4b deploys ECC, the FMEDA artefact is regenerated,
     and re-running the *same* case now succeeds. *)
  let after = Decisive.Case_study.fmeda before in
  Decisive.Api.export_fmeda ~path:csv after;
  let v2 = evaluate_against csv "iteration 2: ECC deployed on MC1" in
  assert (v2 = Assurance.Eval.Holds);

  (* Evidence disappearing (e.g. a broken CI artefact) degrades the case
     to UNDETERMINED rather than silently passing. *)
  Sys.remove csv;
  let v3 = evaluate_against csv "artefact missing" in
  assert (v3 = Assurance.Eval.Undetermined);
  Format.printf
    "design change propagated through the FMEDA artefact to the assurance \
     verdict: FAILS -> HOLDS -> UNDETERMINED@."
