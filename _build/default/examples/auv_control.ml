(* System B: the AUV main control unit (hardware + software).

   Runs the full DECISIVE loop of Fig. 1 on the 230-element evaluation
   subject: hazard assessment, automated FMEA, safety-mechanism search to
   ASIL-B, and — because the MCU is declared dynamic — generation of a
   runtime monitor from the SSAM model (future work VIII.4).

   Run with: dune exec examples/auv_control.exe *)

let () =
  let subject = Decisive.Systems.system_b in
  Format.printf "System B: %d design elements (%d blocks incl. software tasks)@."
    (Decisive.Systems.element_count subject)
    (List.length (Blockdiag.Diagram.all_blocks subject.Decisive.Systems.diagram));

  (* The full loop: plan → design → reliability → evaluate → refine →
     safety concept. *)
  let process, table =
    Decisive.Api.run_decisive ~name:"AUV control unit"
      ~target:subject.Decisive.Systems.target ~exclude:[ "BAT1" ]
      ~monitored_sensors:[ "CS1"; "CS2"; "VS1" ]
      subject.Decisive.Systems.diagram subject.Decisive.Systems.reliability
      subject.Decisive.Systems.safety_mechanisms
  in
  Format.printf "%a@." Decisive.Process.pp_history process;
  Format.printf "%a@." Fmea.Metrics.pp_breakdown (Fmea.Metrics.compute table);
  Format.printf "safety concept produced: %b@.@."
    (Decisive.Process.is_complete process);

  (* The software control function, analysed by Algorithm 1: tasks on
     every sensor→thruster path are single points; the redundant sensor
     drivers are not. *)
  let sw = Decisive.Systems.software_fmea subject in
  Format.printf "software single points: %s@."
    (String.concat ", " (Fmea.Table.safety_related_components sw));
  let refinement =
    Decisive.Api.refine ~target:Ssam.Requirement.ASIL_B
      ~component_types:
        (List.map (fun c -> (c, "task")) (Fmea.Table.components sw))
      sw subject.Decisive.Systems.safety_mechanisms
  in
  Format.printf "software SPFM %.2f%% -> %.2f%% after %s@.@."
    (Fmea.Metrics.spfm sw) refinement.Decisive.Api.achieved_spfm
    (match refinement.Decisive.Api.chosen with
    | Some c ->
        Printf.sprintf "%d mechanism deployments (cost %.1f h)"
          (List.length c.Optimize.Search.deployments)
          c.Optimize.Search.cost
    | None -> "no viable deployment");

  (* Software blocks federate into SSAM as Software components. *)
  let model = Decisive.Systems.ssam_model subject in
  let components = Ssam.Model.components model in
  let software =
    List.filter
      (fun (c : Ssam.Architecture.component) ->
        c.Ssam.Architecture.component_type = Ssam.Architecture.Software)
      components
  in
  Format.printf "SSAM model: %d elements, %d components (%d software)@.@."
    (Ssam.Model.count_elements model)
    (List.length components) (List.length software);

  (* Runtime monitoring (future work VIII.4): declare the supply-rail IO
     of the MCU dynamic with limits, generate a monitor, feed it
     telemetry. *)
  let mcu_dynamic =
    Ssam.Architecture.component ~dynamic:true
      ~io_nodes:
        [
          Ssam.Architecture.io_node ~value:24.0 ~lower_limit:21.0
            ~upper_limit:26.5
            ~meta:(Ssam.Base.meta ~name:"vdd" "MC1:io:vdd")
            Ssam.Architecture.Input;
        ]
      ~meta:(Ssam.Base.meta ~name:"MC1" "MC1:dyn")
      ()
  in
  let monitor = Decisive.Monitor.generate_component mcu_dynamic in
  Format.printf "generated %d runtime checks from the SSAM model@."
    (List.length (Decisive.Monitor.checks monitor));
  let telemetry =
    [ (0.0, 24.1); (1.0, 23.8); (2.0, 20.4) (* brown-out *); (3.0, 24.0) ]
  in
  List.iter
    (fun (t, v) ->
      match
        Decisive.Monitor.observe monitor ~component:"MC1:dyn" ~node:"MC1:io:vdd"
          ~value:v ~at:t
      with
      | Some violation ->
          Format.printf "VIOLATION %a@." Decisive.Monitor.pp_violation violation
      | None -> Format.printf "t=%g vdd=%g ok@." t v)
    telemetry
