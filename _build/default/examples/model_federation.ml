(* Model federation: pulling data out of heterogeneous external models
   with SSAM ExternalReferences and executable extraction queries
   (Sec. IV-B, REQ2).

   A component's FIT lives in an "Excel" reliability sheet; its design
   parameters live in a block-diagram file; hazard metadata lives in
   JSON.  One SSAM model element carries an ExternalReference to each,
   and SAME executes the attached queries to federate the values.

   Run with: dune exec examples/model_federation.exe *)

let write_fixtures dir =
  (* Table II as a CSV "spreadsheet". *)
  Modelio.Csv.write_file (Filename.concat dir "reliability.csv")
    [
      [ "Component"; "FIT"; "Failure_Mode"; "Distribution" ];
      [ "Diode"; "10"; "Open"; "30%" ];
      [ ""; ""; "Short"; "70%" ];
      [ "Inductor"; "15"; "Open"; "30%" ];
      [ ""; ""; "Short"; "70%" ];
      [ "MC"; "300"; "RAM Failure"; "100%" ];
    ];
  (* The design as a block-diagram file. *)
  Blockdiag.Text_format.write_file (Filename.concat dir "design.bd")
    Decisive.Case_study.power_supply_diagram;
  (* Hazard metadata as JSON. *)
  Modelio.Json.write_file (Filename.concat dir "hazards.json")
    (Modelio.Json.Object
       [
         ( "hazards",
           Modelio.Json.List
             [
               Modelio.Json.Object
                 [
                   ("id", Modelio.Json.String "H1");
                   ( "text",
                     Modelio.Json.String "The power supply fails unexpectedly" );
                   ("severity", Modelio.Json.String "S3");
                   ("asil", Modelio.Json.String "ASIL-B");
                 ];
             ] );
       ])

let run_extraction (r : Ssam.Base.external_reference) =
  let model =
    Modelio.Driver.resolve ~model_type:r.Ssam.Base.model_type
      ~location:r.Ssam.Base.location ~metadata:r.Ssam.Base.metadata
  in
  match r.Ssam.Base.validation with
  | None -> Modelio.Mvalue.Null
  | Some c ->
      let env = Query.Interp.env_of_models [ ("Model", model) ] in
      Query.Interp.run_string env c.Ssam.Base.expression

let () =
  let dir = Filename.temp_file "federation" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  write_fixtures dir;

  (* The SSAM element for D1, tracing to three external models. *)
  let d1_meta =
    Ssam.Base.meta ~name:"D1"
      ~external_references:
        [
          Ssam.Base.external_reference
            ~validation:
              (Ssam.Base.constraint_ ~id:"extract-fit"
                 "Model.rows.selectOne(r | r.component = 'Diode').fit.toNumber()")
            ~location:(Filename.concat dir "reliability.csv")
            ~model_type:"csv" ();
          Ssam.Base.external_reference
            ~validation:
              (Ssam.Base.constraint_ ~id:"extract-params"
                 "Model.blocks.selectOne(b | b.id = 'D1').type")
            ~location:(Filename.concat dir "design.bd")
            ~model_type:"blockdiag" ();
          Ssam.Base.external_reference
            ~validation:
              (Ssam.Base.constraint_ ~id:"extract-hazard"
                 "Model.hazards.selectOne(h | h.id = 'H1').asil")
            ~location:(Filename.concat dir "hazards.json")
            ~model_type:"json" ();
        ]
      "D1"
  in
  Format.printf "federating data for element %s:@."
    (Ssam.Base.display_name d1_meta);
  List.iter
    (fun (r : Ssam.Base.external_reference) ->
      let value = run_extraction r in
      Format.printf "  %-10s %-28s -> %a@." r.Ssam.Base.model_type
        (Filename.basename r.Ssam.Base.location)
        Modelio.Mvalue.pp value)
    d1_meta.Ssam.Base.external_references;

  (* Richer queries over the same federated models. *)
  let reliability =
    Modelio.Driver.resolve ~model_type:"csv"
      ~location:(Filename.concat dir "reliability.csv") ~metadata:[]
  in
  let env = Query.Interp.env_of_models [ ("Reliability", reliability) ] in
  let total_fit =
    Query.Interp.run_string env
      "Reliability.rows.select(r | r.fit <> '').collect(r | \
       r.fit.toNumber()).sum()"
  in
  Format.printf "@.total catalogued FIT: %a@." Modelio.Mvalue.pp total_fit;
  let loss_modes =
    Query.Interp.run_string env
      "Reliability.rows.select(r | r.failure_mode.toLowerCase().contains('open') \
       or r.failure_mode.toLowerCase().contains('failure')).size()"
  in
  Format.printf "loss-like failure modes in the catalogue: %a@."
    Modelio.Mvalue.pp loss_modes;

  (* Clean up. *)
  List.iter
    (fun f -> Sys.remove (Filename.concat dir f))
    [ "reliability.csv"; "design.bd"; "hazards.json" ];
  Sys.rmdir dir
