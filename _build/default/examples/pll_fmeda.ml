(* Table I: FMEDA of a Phase-Locked Loop.

   The PLL is the paper's running FMEDA illustration: three failure modes
   (lower frequency 40.1 % DVF, higher frequency 28.7 % IVF, jitter
   31.2 % DVF) with a time-out watchdog (70 %) on the first and dual-core
   lockstep (99 %) on the third.  This example reproduces the table and
   shows the same component modelled in SSAM, validated, and pushed
   through the metric calculation.

   Run with: dune exec examples/pll_fmeda.exe *)

let () =
  let fit = 50.0 in
  let table = Decisive.Case_study.pll_fmeda ~fit in
  Format.printf "%a@." Fmea.Table.pp table;
  Format.printf "%a@.@." Fmea.Metrics.pp_breakdown (Fmea.Metrics.compute table);

  (* The same PLL as an SSAM component, with its safety mechanisms
     attached to the failure modes they diagnose. *)
  let pll = Decisive.Case_study.pll_component in
  Format.printf "SSAM PLL component: %d elements, FIT %g@."
    (Ssam.Architecture.count_elements pll)
    pll.Ssam.Architecture.fit;
  List.iter
    (fun (sm : Ssam.Architecture.safety_mechanism) ->
      Format.printf "  SM %-20s coverage %5.1f%%  cost %.1f h  covers %s@."
        (Ssam.Base.display_name sm.Ssam.Architecture.sm_meta)
        sm.Ssam.Architecture.coverage_pct sm.Ssam.Architecture.sm_cost
        (String.concat ", " sm.Ssam.Architecture.covers))
    pll.Ssam.Architecture.safety_mechanisms;

  (* Wrap it in a model and validate. *)
  let package =
    Ssam.Architecture.package
      ~meta:(Ssam.Base.meta ~name:"pll-package" "pkg:pll")
      [ Ssam.Architecture.Component pll ]
  in
  let model =
    Ssam.Model.create ~component_packages:[ package ]
      ~meta:(Ssam.Base.meta ~name:"pll-model" "model:pll")
      ()
  in
  let issues = Ssam.Validate.check model in
  Format.printf "validation: %d issue(s)@." (List.length issues);
  List.iter (fun i -> Format.printf "  %a@." Ssam.Validate.pp_issue i) issues;

  (* What would it take to push this PLL to ASIL-D?  Ask the optimiser. *)
  let chosen, front =
    Optimize.Search.optimise
      ~component_types:[ ("PLL", "pll") ]
      ~target:Ssam.Requirement.ASIL_D table
      Reliability.Sm_model.extended_catalogue
  in
  Format.printf "@.Pareto front for further refinement:@.";
  List.iter
    (fun (c : Optimize.Search.candidate) ->
      Format.printf "  cost %4.1f h  SPFM %6.2f%%@." c.Optimize.Search.cost
        c.Optimize.Search.spfm_pct)
    front;
  match chosen with
  | Some c ->
      Format.printf "ASIL-D reachable at cost %.1f h (SPFM %.2f%%)@."
        c.Optimize.Search.cost c.Optimize.Search.spfm_pct
  | None ->
      Format.printf
        "ASIL-D is not reachable with the current mechanism catalogue@."
