(* The full Section V case study: the sensor power-supply SEooC.

   Follows DECISIVE end to end on both analysis routes of the paper —
   failure injection on the circuit model (Sec. V-A, the Simulink path)
   and the path algorithm on the SSAM twin (Sec. V-B) — and reproduces
   the published numbers: SPFM 5.38 % before refinement, 96.77 % with ECC
   on MC1 (ASIL-B), Table IV row for row.  Finishes with the assurance
   case integration of Sec. V-C.

   Run with: dune exec examples/power_supply.exe *)

let hr title = Format.printf "@.=== %s ===@.@." title

let () =
  hr "DECISIVE Step 1: hazard identification";
  let log = Hara.assess ~name:"PSU hazards" Decisive.Case_study.hazard_h1 in
  Format.printf "%a@." Hara.pp log;
  let requirements = Hara.derive_requirements log in
  List.iter
    (fun (r : Ssam.Requirement.requirement) ->
      Format.printf "derived %s [%s]: %s@."
        (Ssam.Base.display_name r.Ssam.Requirement.meta)
        (match r.Ssam.Requirement.integrity with
        | Some l -> Ssam.Requirement.integrity_level_to_string l
        | None -> "-")
        r.Ssam.Requirement.text)
    requirements;
  Format.printf
    "the paper assigns safety requirement SR-1 a target of ASIL-B@.";

  hr "Step 2: the system design (Fig. 11)";
  Format.printf "%s@."
    (Blockdiag.Text_format.print Decisive.Case_study.power_supply_diagram);

  hr "Steps 3 + 4a via failure injection (the Simulink route, Sec. V-A)";
  let injection_table = Decisive.Case_study.fmea_via_injection () in
  Format.printf "%a@." Fmea.Table.pp injection_table;
  Format.printf "SPFM = %.2f%% (paper: 5.38%%)@."
    (Fmea.Metrics.spfm injection_table);

  hr "Steps 3 + 4a via SSAM + Algorithm 1 (Sec. V-B)";
  let ssam_table = Decisive.Case_study.fmea_via_ssam () in
  Format.printf "%a@." Fmea.Table.pp ssam_table;
  Format.printf "SPFM = %.2f%%  — both routes agree: %b@."
    (Fmea.Metrics.spfm ssam_table)
    (List.sort String.compare (Fmea.Table.safety_related_components injection_table)
    = List.sort String.compare (Fmea.Table.safety_related_components ssam_table));

  hr "Step 4b: deploy ECC on MC1 (Table III) — Table IV";
  let fmeda = Decisive.Case_study.fmeda injection_table in
  Format.printf "%a@." Fmea.Table.pp fmeda;
  let spfm = Fmea.Metrics.spfm fmeda in
  Format.printf "SPFM = %.2f%% (paper: 96.77%%)@." spfm;
  Format.printf "%a@."
    (fun ppf () ->
      Fmea.Asil.pp_verdict ppf ~target:Ssam.Requirement.ASIL_B ~spfm)
    ();

  hr "Step 5 + Sec. V-C: assurance case integration";
  let csv = Filename.temp_file "fmeda" ".csv" in
  Decisive.Api.export_fmeda ~path:csv fmeda;
  let case =
    Decisive.Api.assurance_case_for ~system:"PSU"
      ~target:Ssam.Requirement.ASIL_B ~fmeda_csv:csv
  in
  let report = Assurance.Eval.evaluate case in
  Format.printf "%a@." Assurance.Eval.pp_report report;
  Sys.remove csv;

  hr "Bonus: the generated fault tree (future work VIII.1)";
  let tree = Fta.From_ssam.generate Decisive.Case_study.power_supply_root in
  Format.printf "%a@." Fta.Fault_tree.pp_ascii tree;
  let cuts = Fta.Cut_sets.minimal tree in
  let probs = Fta.Quant.event_probabilities tree in
  Format.printf "minimal cut sets: %d; top-event bound over 10,000 h: %.3e@."
    (List.length cuts)
    (Fta.Quant.rare_event_bound cuts probs)
