(* Quickstart: automated FMEDA on a small power-supply design.

   Build a block diagram, run the automated FMEA (failure injection on the
   extracted circuit), deploy a safety mechanism, and check the SPFM
   against an ASIL target.

   Run with: dune exec examples/quickstart.exe *)

let diagram =
  let open Blockdiag.Diagram in
  diagram ~name:"quickstart_psu"
    [
      block ~id:"DC1" ~block_type:"vsource" ~parameters:[ ("volts", P_num 5.0) ] ();
      block ~id:"D1" ~block_type:"diode" ();
      block ~id:"L1" ~block_type:"inductor" ~parameters:[ ("henries", P_num 1e-3) ] ();
      block ~id:"CS1" ~block_type:"current_sensor" ();
      block ~id:"MC1" ~block_type:"microcontroller" ~parameters:[ ("ohms", P_num 100.0) ] ();
      block ~id:"GND1" ~block_type:"ground"
        ~ports:[ { port_name = "a"; port_kind = Conserving } ] ();
    ]
    ~connections:
      [
        connect ("DC1", "a") ("D1", "a");
        connect ("D1", "b") ("L1", "a");
        connect ("L1", "b") ("CS1", "a");
        connect ("CS1", "b") ("MC1", "a");
        connect ("MC1", "b") ("GND1", "a");
        connect ("DC1", "b") ("GND1", "a");
      ]

let () =
  (* Step 4a: automated FMEA.  DC1 is assumed stable, so it is excluded
     from injection (the paper's case-study assumption). *)
  let table =
    Decisive.Api.analyse ~exclude:[ "DC1" ] diagram
      Reliability.Reliability_model.table_ii
  in
  Format.printf "%a@." Fmea.Table.pp table;
  Format.printf "SPFM before refinement: %.2f%%@.@." (Fmea.Metrics.spfm table);

  (* Step 4b: let SAME search the safety-mechanism catalogue for a
     deployment meeting ASIL-B. *)
  let refinement =
    Decisive.Api.refine ~target:Ssam.Requirement.ASIL_B
      ~component_types:[ ("MC1", "microcontroller") ]
      table Reliability.Sm_model.table_iii
  in
  Format.printf "%a@." Fmea.Table.pp refinement.Decisive.Api.refined_table;
  Format.printf "%a@."
    (fun ppf () ->
      Fmea.Asil.pp_verdict ppf ~target:Ssam.Requirement.ASIL_B
        ~spfm:refinement.Decisive.Api.achieved_spfm)
    ()
