lib/analyst/cost_model.pp.ml:
