lib/analyst/cost_model.pp.mli:
