lib/analyst/experiment.pp.ml: Cost_model Fmea Format List Printf Process Rng String
