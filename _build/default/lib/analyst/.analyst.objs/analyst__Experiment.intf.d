lib/analyst/experiment.pp.mli: Cost_model Fmea Format Process
