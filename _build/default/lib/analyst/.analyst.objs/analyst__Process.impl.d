lib/analyst/process.pp.ml: Cost_model Float Fmea Int List Rng String
