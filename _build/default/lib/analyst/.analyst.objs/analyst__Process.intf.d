lib/analyst/process.pp.mli: Cost_model Fmea Rng
