lib/analyst/rng.pp.ml: Float Int64
