lib/analyst/rng.pp.mli:
