type activity =
  | Setup
  | Review_design_element
  | Classify_failure_mode
  | Search_safety_mechanism
  | Recompute_metrics
  | Change_management
  | Tool_import
  | Tool_run
  | Review_tool_output

type mode = Manual | Assisted

(* Nominal minutes per unit of activity.  Calibration notes (targets are
   the paper's Table V):
   - manual System A (102 elements, ~67 failure-mode rows, ~7
     safety-related, 5 iterations):
     30 + 102*2.5 + 67*1.75 + 7*6 + 5*(8+4) ≈ 504 min — the paper reports
     505 for participant A's manual run;
   - assisted System A (2 iterations):
     20 + 102*0.2 + 67*0.1 + 2*(0.2+6) ≈ 60 min — the paper reports 62;
   - the resulting manual/assisted ratio is ≈8–10×, the paper's
     "approximately a tenfold increase in efficiency". *)
let minutes mode activity =
  match (mode, activity) with
  | Manual, Setup -> 30.0
  | Manual, Review_design_element -> 2.5
  | Manual, Classify_failure_mode -> 1.75
  | Manual, Search_safety_mechanism -> 6.0
  | Manual, Recompute_metrics -> 8.0
  | Manual, Change_management -> 4.0
  | Manual, (Tool_import | Tool_run | Review_tool_output) -> 0.0
  | Assisted, Setup -> 0.0 (* covered by Tool_import *)
  | Assisted, Tool_import -> 20.0
  | Assisted, Review_design_element -> 0.2 (* skim the imported design *)
  | Assisted, Tool_run -> 0.2
  | Assisted, Review_tool_output -> 0.1
  | Assisted, Change_management -> 6.0
  | Assisted,
    ( Classify_failure_mode | Search_safety_mechanism | Recompute_metrics ) ->
      0.0

type profile = {
  participant : string;
  skill_factor : float;
  conservatism : float;
}

let participant_a = { participant = "A"; skill_factor = 1.0; conservatism = 0.015 }

let participant_b = { participant = "B"; skill_factor = 0.97; conservatism = 0.019 }
