(** Activity cost model for the efficiency study (evaluation RQ3).

    Calibrated so that the simulated study reproduces the *shape* of the
    paper's Table V: a safety professional doing fully manual DECISIVE
    spends ≈5 minutes per design element per run (505 min for the
    102-element System A; 1143 min for the 230-element System B), while
    the SAME-assisted flow spends ≈0.5 min/element, a ≈10× speedup, with
    most manual time in FMEA classification + safety-mechanism search and
    most assisted time in change management.  Per-activity constants are
    stated here so the calibration is inspectable. *)

type activity =
  | Setup  (** preparing worksheets and reference documents *)
  | Review_design_element
      (** walk one design element (block/connection): identify its
          function and safety characteristics — FMEA Steps 1–2 *)
  | Classify_failure_mode  (** decide one FM's system-level effect *)
  | Search_safety_mechanism  (** find candidate SMs for one safety-related FM *)
  | Recompute_metrics  (** SPFM by hand, once per iteration *)
  | Change_management  (** per iteration *)
  | Tool_import  (** assisted only: transform/import models *)
  | Tool_run  (** assisted only: one automated FME(D)A run *)
  | Review_tool_output  (** assisted: sanity-check one row *)

type mode = Manual | Assisted

val minutes : mode -> activity -> float
(** Nominal minutes for one unit of the activity.  Activities that do not
    occur in a mode cost 0 (e.g. [Tool_run] in [Manual]). *)

type profile = {
  participant : string;
  skill_factor : float;
      (** multiplies all durations; 1.0 = nominal, smaller = faster *)
  conservatism : float;
      (** probability of marking a borderline failure mode safety-related
          when the automated analysis would not — drives the RQ1
          disagreement *)
}

val participant_a : profile
(** skill 1.0, conservatism 0.015. *)

val participant_b : profile
(** "relatively the same level of expertise": skill 0.97,
    conservatism 0.019. *)
