type efficiency_row = {
  system : string;
  participant : string;
  mode : Cost_model.mode;
  time_minutes : float;
  iterations : int;
}

let run_one ~rng ~profile ~mode sp =
  let iterations = Process.draw_iterations ~rng ~mode in
  let session = Process.duration ~rng ~mode ~profile ~iterations sp in
  {
    system = sp.Process.system_name;
    participant = profile.Cost_model.participant;
    mode;
    time_minutes = session.Process.minutes;
    iterations = session.Process.iterations;
  }

let efficiency_study ~seed ~systems:(sys_a, sys_b) =
  let rng = Rng.create seed in
  let a = Cost_model.participant_a and b = Cost_model.participant_b in
  (* Setting 1: participant A manual, participant B assisted. *)
  let setting1 =
    [
      run_one ~rng ~profile:a ~mode:Cost_model.Manual sys_a;
      run_one ~rng ~profile:b ~mode:Cost_model.Assisted sys_a;
      run_one ~rng ~profile:a ~mode:Cost_model.Manual sys_b;
      run_one ~rng ~profile:b ~mode:Cost_model.Assisted sys_b;
    ]
  in
  (* Setting 2: roles swapped. *)
  let setting2 =
    [
      run_one ~rng ~profile:a ~mode:Cost_model.Assisted sys_a;
      run_one ~rng ~profile:b ~mode:Cost_model.Manual sys_a;
      run_one ~rng ~profile:a ~mode:Cost_model.Assisted sys_b;
      run_one ~rng ~profile:b ~mode:Cost_model.Manual sys_b;
    ]
  in
  setting1 @ setting2

let speedup rows =
  let mean mode =
    let selected = List.filter (fun r -> r.mode = mode) rows in
    match selected with
    | [] -> nan
    | _ ->
        List.fold_left (fun acc r -> acc +. r.time_minutes) 0.0 selected
        /. float_of_int (List.length selected)
  in
  mean Cost_model.Manual /. mean Cost_model.Assisted

type correctness_result = {
  corr_system : string;
  difference_pct : float;
  components_agree : bool;
}

let correctness_study ~seed ~name ~element_count automated_table =
  let rng = Rng.create seed in
  let complexity = sqrt (float_of_int element_count /. 100.0) in
  let profile =
    let base = Cost_model.participant_a in
    { base with Cost_model.conservatism = base.Cost_model.conservatism *. complexity }
  in
  let manual =
    Process.manual_classification ~rng ~profile automated_table
  in
  let difference_pct =
    Fmea.Table.merge_sensitivity ~golden:automated_table ~other:manual
  in
  let components_agree =
    List.sort String.compare (Fmea.Table.safety_related_components automated_table)
    = List.sort String.compare (Fmea.Table.safety_related_components manual)
  in
  { corr_system = name; difference_pct; components_agree }

let pp_efficiency ppf rows =
  Format.fprintf ppf
    "@[<v>| System | Participant | Time spent (minutes) | No. Iterations |@,\
     |--------+-------------+----------------------+----------------|@,";
  List.iter
    (fun r ->
      Format.fprintf ppf "| %-6s | %-11s | %20.0f | %14d |@," r.system
        (Printf.sprintf "%s(%s)" r.participant
           (match r.mode with
           | Cost_model.Manual -> "Man."
           | Cost_model.Assisted -> "Auto."))
        r.time_minutes r.iterations)
    rows;
  Format.fprintf ppf "@]"
