(** The evaluation experiments of Sec. VI, re-runnable.

    RQ3 (Table V): both participants design both systems in two settings
    (first A manual / B assisted, then swapped); report minutes and
    iteration counts.  RQ1: the manual classification is diffed against
    the automated table with {!Fmea.Table.merge_sensitivity}. *)

type efficiency_row = {
  system : string;
  participant : string;
  mode : Cost_model.mode;
  time_minutes : float;
  iterations : int;
}

val efficiency_study :
  seed:int ->
  systems:(Process.system_profile * Process.system_profile) ->
  efficiency_row list
(** The eight rows of Table V, in the paper's order: setting 1 rows for
    systems A and B (participant A manual, B assisted), then setting 2
    (swapped roles). *)

val speedup : efficiency_row list -> float
(** Mean manual time over mean assisted time — the paper's "approximately
    a tenfold increase in efficiency". *)

type correctness_result = {
  corr_system : string;
  difference_pct : float;  (** row-level disagreement, RQ1 *)
  components_agree : bool;
      (** both find the same safety-related components *)
}

val correctness_study :
  seed:int -> name:string -> element_count:int -> Fmea.Table.t -> correctness_result
(** [element_count] scales the analyst's effect-judgement disagreement
    with system complexity (√(elements/100)): the paper observed 1.5 %
    on the 102-element System A and 2.67 % on the 230-element System B. *)

val pp_efficiency : Format.formatter -> efficiency_row list -> unit
(** Table V layout. *)
