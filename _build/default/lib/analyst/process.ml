type system_profile = {
  system_name : string;
  element_count : int;
  analysable_components : int;
  failure_mode_count : int;
  safety_related_count : int;
}

let profile_of_table ~name ~element_count (t : Fmea.Table.t) =
  {
    system_name = name;
    element_count;
    analysable_components = List.length (Fmea.Table.components t);
    failure_mode_count = List.length t.Fmea.Table.rows;
    safety_related_count =
      List.length
        (List.filter (fun r -> r.Fmea.Table.safety_related) t.Fmea.Table.rows);
  }

type session = {
  minutes : float;
  iterations : int;
  breakdown : (string * float) list;
}

let duration ~rng ~mode ~profile ~iterations sp =
  let m activity = Cost_model.minutes mode activity in
  let f = float_of_int in
  let items =
    [
      ("setup", m Cost_model.Setup);
      ( "design element review",
        m Cost_model.Review_design_element *. f sp.element_count );
      ( "FMEA classification",
        m Cost_model.Classify_failure_mode *. f sp.failure_mode_count );
      ( "safety-mechanism search",
        m Cost_model.Search_safety_mechanism *. f sp.safety_related_count );
      ("metric recomputation", m Cost_model.Recompute_metrics *. f iterations);
      ("change management", m Cost_model.Change_management *. f iterations);
      ("model import", m Cost_model.Tool_import);
      ("automated runs", m Cost_model.Tool_run *. f iterations);
      ( "result review",
        m Cost_model.Review_tool_output *. f sp.failure_mode_count );
    ]
  in
  let base = List.fold_left (fun acc (_, v) -> acc +. v) 0.0 items in
  let day_factor =
    Float.max 0.8 (Rng.gaussian rng ~mean:1.0 ~stddev:0.05)
  in
  let minutes = base *. profile.Cost_model.skill_factor *. day_factor in
  let breakdown =
    List.filter (fun (_, v) -> v > 0.0) items
    |> List.map (fun (k, v) ->
           (k, v *. profile.Cost_model.skill_factor *. day_factor))
    |> List.sort (fun (_, a) (_, b) -> Float.compare b a)
  in
  { minutes; iterations; breakdown }

let draw_iterations ~rng ~mode =
  match mode with
  | Cost_model.Manual ->
      (* Skewed low: min of two draws from 2..6. *)
      Int.min (Rng.range rng ~min:2 ~max:6) (Rng.range rng ~min:2 ~max:6)
  | Cost_model.Assisted ->
      (* Skewed high: max of two draws. *)
      Int.max (Rng.range rng ~min:2 ~max:6) (Rng.range rng ~min:2 ~max:6)

let manual_classification ~rng ~profile (t : Fmea.Table.t) =
  let sr_components = Fmea.Table.safety_related_components t in
  let p = profile.Cost_model.conservatism in
  let rows =
    List.map
      (fun (r : Fmea.Table.row) ->
        let component_already_sr =
          List.exists (String.equal r.Fmea.Table.component) sr_components
        in
        let flip_sr =
          (* Conservative upgrade: a borderline mode on an already
             safety-related component gets marked safety-related "to be
             safe".  Never the other direction, so the component-level
             conclusion is preserved. *)
          (not r.Fmea.Table.safety_related)
          && component_already_sr
          && Rng.bernoulli rng ~p
        in
        let reword_effect =
          (* Differing opinion on the effect of the failure — the paper's
             stated source of row-level disagreement. *)
          Rng.bernoulli rng ~p
        in
        if flip_sr then
          Fmea.Table.make_row
            ~impact:"judged safety-related by analyst (conservative)"
            ~component:r.Fmea.Table.component
            ~component_fit:r.Fmea.Table.component_fit
            ~failure_mode:r.Fmea.Table.failure_mode
            ~distribution_pct:r.Fmea.Table.distribution_pct ~safety_related:true
            ()
        else if reword_effect then
          { r with Fmea.Table.impact = "analyst judged the effect differently" }
        else r)
      t.Fmea.Table.rows
  in
  { t with Fmea.Table.rows }
