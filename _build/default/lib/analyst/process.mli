(** The simulated analyst following DECISIVE (substitutes the paper's two
    human safety professionals, whose sessions cannot be re-run).

    {!duration} plays out one full design session — aggregate reliability
    data, run FME(D)A, search and deploy safety mechanisms, manage the
    change across iterations — under a cost model and a participant
    profile.  {!manual_classification} produces the row-level judgements a
    human would make: the automated result plus *conservative* deviations
    (borderline modes marked safety-related "to be safe"), which is what
    RQ1 measures. *)

type system_profile = {
  system_name : string;
  element_count : int;  (** design elements, the paper's size measure *)
  analysable_components : int;  (** components with reliability data *)
  failure_mode_count : int;
  safety_related_count : int;  (** safety-related failure modes *)
}

val profile_of_table : name:string -> element_count:int -> Fmea.Table.t -> system_profile

type session = {
  minutes : float;
  iterations : int;
  breakdown : (string * float) list;  (** activity → minutes, descending *)
}

val duration :
  rng:Rng.t ->
  mode:Cost_model.mode ->
  profile:Cost_model.profile ->
  iterations:int ->
  system_profile ->
  session
(** Deterministic given the rng state; a ±5 % lognormal-ish factor models
    day-to-day variation. *)

val draw_iterations : rng:Rng.t -> mode:Cost_model.mode -> int
(** Manual designers iterate less (2–6 draws skewed low — iterations are
    expensive); assisted ones explore more (2–6 skewed high).  Matches the
    spread in the paper's Table V. *)

val manual_classification :
  rng:Rng.t -> profile:Cost_model.profile -> Fmea.Table.t -> Fmea.Table.t
(** Row-level flips only on components that already have a safety-related
    mode, so the *component-level* conclusions agree with the automated
    analysis — exactly the paper's observation that "the safety-related
    components for both System A and System B are all identified
    correctly by both participants". *)
