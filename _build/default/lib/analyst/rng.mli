(** Deterministic pseudo-random numbers for the analyst process model.

    SplitMix64: every experiment seeds its own generator, so results are
    reproducible run-to-run and independent of global state. *)

type t

val create : int -> t
(** Seeded generator. *)

val next_int64 : t -> int64
(** Advances the state. *)

val float : t -> float
(** Uniform in [0, 1). *)

val range : t -> min:int -> max:int -> int
(** Uniform integer in [min, max] inclusive.  Raises [Invalid_argument]
    when [min > max]. *)

val gaussian : t -> mean:float -> stddev:float -> float
(** Box-Muller. *)

val bernoulli : t -> p:float -> bool
