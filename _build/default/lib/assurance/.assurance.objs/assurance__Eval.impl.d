lib/assurance/eval.pp.ml: Format List Modelio Ppx_deriving_runtime Printf Query Sacm String
