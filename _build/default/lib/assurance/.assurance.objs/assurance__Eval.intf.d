lib/assurance/eval.pp.mli: Format Ppx_deriving_runtime Sacm
