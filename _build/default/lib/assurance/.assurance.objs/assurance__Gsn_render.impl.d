lib/assurance/gsn_render.pp.ml: Buffer Eval Fun List Printf Sacm String
