lib/assurance/gsn_render.pp.mli: Eval Sacm
