lib/assurance/sacm.pp.ml: Hashtbl List Ppx_deriving_runtime Printf String
