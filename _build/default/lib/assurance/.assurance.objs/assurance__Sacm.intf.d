lib/assurance/sacm.pp.mli: Ppx_deriving_runtime
