(** Automated assurance-case evaluation.

    A {!Sacm.Solution}'s status comes from its artifact: load the external
    model through {!Modelio.Driver}, bind it as [Artifact], run the
    acceptance query.  Goals and strategies hold when all their supports
    hold.  Context-kind nodes are always [Holds] (they assert context, not
    claims). *)

type status = Holds | Fails | Undetermined [@@deriving eq, show]

type node_result = {
  result_node : string;
  status : status;
  detail : string;  (** query result, load error, "no evidence"... *)
}
[@@deriving eq, show]

type report = {
  case : string;
  overall : status;
  nodes : node_result list;
      (** in evaluation order: children before their parents *)
}

val evaluate : Sacm.case -> report
(** Never raises: driver and query failures become [Undetermined] with the
    error message in [detail]. *)

val status_of : report -> string -> status option

val pp_report : Format.formatter -> report -> unit
(** Indented goal structure with per-node verdicts. *)
