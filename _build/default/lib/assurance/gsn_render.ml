let sanitise id =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    id

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Wrap statements so nodes stay readable. *)
let wrap width s =
  let words = String.split_on_char ' ' s in
  let lines, current =
    List.fold_left
      (fun (lines, current) word ->
        if current = "" then (lines, word)
        else if String.length current + 1 + String.length word <= width then
          (lines, current ^ " " ^ word)
        else (current :: lines, word))
      ([], "") words
  in
  String.concat "\\n" (List.rev (current :: lines))

let shape_of = function
  | Sacm.Goal -> "box"
  | Sacm.Strategy -> "parallelogram"
  | Sacm.Solution -> "circle"
  | Sacm.Context -> "box, style=rounded"
  | Sacm.Assumption -> "ellipse"
  | Sacm.Justification -> "ellipse"

let fill_of report node_id =
  match report with
  | None -> None
  | Some r -> (
      match Eval.status_of r node_id with
      | Some Eval.Holds -> Some "#c8e6c9"
      | Some Eval.Fails -> Some "#ffcdd2"
      | Some Eval.Undetermined -> Some "#e0e0e0"
      | None -> None)

let to_dot ?report (case : Sacm.case) =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "digraph %s {\n" (sanitise case.Sacm.case_name);
  add "  rankdir=TB;\n  node [fontname=\"Helvetica\", fontsize=10];\n";
  let rec emit (n : Sacm.node) =
    let nid = sanitise n.Sacm.node_id in
    let style =
      match fill_of report n.Sacm.node_id with
      | Some color -> Printf.sprintf ", style=filled, fillcolor=\"%s\"" color
      | None -> ""
    in
    add "  %s [shape=%s%s, label=\"%s\\n%s\"];\n" nid (shape_of n.Sacm.kind)
      style
      (escape n.Sacm.node_id)
      (wrap 28 (escape n.Sacm.statement));
    List.iter
      (fun (c : Sacm.node) ->
        emit c;
        add "  %s -> %s;\n" nid (sanitise c.Sacm.node_id))
      n.Sacm.supported_by;
    List.iter
      (fun (c : Sacm.node) ->
        emit c;
        add "  %s -> %s [style=dashed, arrowhead=empty];\n" nid
          (sanitise c.Sacm.node_id))
      n.Sacm.in_context_of
  in
  emit case.Sacm.root;
  add "}\n";
  Buffer.contents buf

let save_dot ~path ?report case =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_dot ?report case))

let to_text ?report (case : Sacm.case) =
  let buf = Buffer.create 512 in
  let marker node_id =
    match report with
    | None -> ""
    | Some r -> (
        match Eval.status_of r node_id with
        | Some Eval.Holds -> " [ok]"
        | Some Eval.Fails -> " [FAIL]"
        | Some Eval.Undetermined -> " [?]"
        | None -> "")
  in
  let kind_str = function
    | Sacm.Goal -> "Goal"
    | Sacm.Strategy -> "Strategy"
    | Sacm.Solution -> "Solution"
    | Sacm.Context -> "Context"
    | Sacm.Assumption -> "Assumption"
    | Sacm.Justification -> "Justification"
  in
  let rec emit indent (n : Sacm.node) =
    Buffer.add_string buf
      (Printf.sprintf "%s%s %s: %s%s\n"
         (String.make indent ' ')
         (kind_str n.Sacm.kind) n.Sacm.node_id n.Sacm.statement
         (marker n.Sacm.node_id));
    List.iter (emit (indent + 2)) n.Sacm.in_context_of;
    List.iter (emit (indent + 2)) n.Sacm.supported_by
  in
  emit 0 case.Sacm.root;
  Buffer.contents buf
