(** GSN rendering of assurance cases.

    Goal Structuring Notation is the argument notation the paper's
    authors maintain (Sec. VIII bio); this module renders a {!Sacm.case}
    as Graphviz dot using the standard GSN shapes — goals as rectangles,
    strategies as parallelograms, solutions as circles, context as
    rounded rectangles — optionally coloured by an evaluation report, and
    as indented plain text for terminals. *)

val to_dot : ?report:Eval.report -> Sacm.case -> string
(** With [report], nodes are filled green (holds), red (fails) or grey
    (undetermined).  SupportedBy edges are solid arrows, InContextOf
    edges hollow-headed dashed, per GSN convention. *)

val save_dot : path:string -> ?report:Eval.report -> Sacm.case -> unit

val to_text : ?report:Eval.report -> Sacm.case -> string
(** Indented outline with [✓]/[✗]/[?] markers when a report is given. *)
