type artifact = {
  artifact_location : string;
  artifact_driver : string;
  acceptance_query : string option;
  artifact_description : string;
}
[@@deriving eq, show]

type kind = Goal | Strategy | Solution | Context | Assumption | Justification
[@@deriving eq, show]

type node = {
  node_id : string;
  kind : kind;
  statement : string;
  supported_by : node list;
  in_context_of : node list;
  artifact : artifact option;
}
[@@deriving eq, show]

type case = { case_name : string; root : node } [@@deriving eq, show]

let artifact ?query ?(description = "") ~location ~driver () =
  {
    artifact_location = location;
    artifact_driver = driver;
    acceptance_query = query;
    artifact_description = description;
  }

let node ?(supported_by = []) ?(in_context_of = []) ?artifact ~id kind statement
    =
  { node_id = id; kind; statement; supported_by; in_context_of; artifact }

let goal ?supported_by ?in_context_of ~id statement =
  node ?supported_by ?in_context_of ~id Goal statement

let strategy ?supported_by ?in_context_of ~id statement =
  node ?supported_by ?in_context_of ~id Strategy statement

let solution ?artifact ~id statement = node ?artifact ~id Solution statement

let context ~id statement = node ~id Context statement

let assumption ~id statement = node ~id Assumption statement

let justification ~id statement = node ~id Justification statement

let fold f init case =
  let rec go acc n =
    let acc = f acc n in
    let acc = List.fold_left go acc n.supported_by in
    List.fold_left go acc n.in_context_of
  in
  go init case.root

let find case id =
  fold
    (fun acc n ->
      match acc with
      | Some _ -> acc
      | None -> if String.equal n.node_id id then Some n else None)
    None case

let solutions case =
  List.rev
    (fold (fun acc n -> if n.kind = Solution then n :: acc else acc) [] case)

let undeveloped_goals case =
  List.rev
    (fold
       (fun acc n ->
         match n.kind with
         | (Goal | Strategy) when n.supported_by = [] -> n :: acc
         | Goal | Strategy | Solution | Context | Assumption | Justification ->
             acc)
       [] case)

let validate case =
  let problems = ref [] in
  let note fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  let seen = Hashtbl.create 16 in
  let check acc n =
    ignore acc;
    if Hashtbl.mem seen n.node_id then note "duplicate node id '%s'" n.node_id
    else Hashtbl.add seen n.node_id ();
    (match n.kind with
    | Solution when n.supported_by <> [] ->
        note "solution '%s' has supporting nodes" n.node_id
    | Context | Assumption | Justification ->
        if n.supported_by <> [] then
          note "context-kind node '%s' has supporting nodes" n.node_id
    | Goal | Strategy | Solution -> ());
    List.iter
      (fun child ->
        match child.kind with
        | Context | Assumption | Justification ->
            note "node '%s' is supported by context-kind node '%s'" n.node_id
              child.node_id
        | Goal | Strategy | Solution -> ())
      n.supported_by;
    ()
  in
  fold check () case;
  List.rev !problems
