(** Assurance cases in GSN/SACM style — the ACME substitute of Sec. V-C.

    Cases are goal structures: goals decomposed through strategies down to
    solutions, which cite {!artifact}s.  An artifact carries an
    *acceptance query* (in the {!module:Query} language) over an external
    model; {!module:Eval} executes these to validate the case
    automatically — the paper's "when our design changes, it is reflected
    in the FMEDA result, which can in turn be automatically checked by
    ACME (by executing the query)". *)

type artifact = {
  artifact_location : string;  (** file holding the evidence *)
  artifact_driver : string;  (** {!Modelio.Driver} name, e.g. ["csv"] *)
  acceptance_query : string option;
      (** query over the loaded model, bound as [Artifact]; truthy =
          evidence supports the claim.  [None]: presence-only evidence. *)
  artifact_description : string;
}
[@@deriving eq, show]

type kind =
  | Goal
  | Strategy
  | Solution
  | Context
  | Assumption
  | Justification
[@@deriving eq, show]

type node = {
  node_id : string;
  kind : kind;
  statement : string;
  supported_by : node list;
  in_context_of : node list;  (** Context/Assumption/Justification nodes *)
  artifact : artifact option;  (** meaningful on Solutions *)
}
[@@deriving eq, show]

type case = { case_name : string; root : node } [@@deriving eq, show]

val artifact :
  ?query:string ->
  ?description:string ->
  location:string ->
  driver:string ->
  unit ->
  artifact

val goal :
  ?supported_by:node list -> ?in_context_of:node list -> id:string -> string -> node

val strategy :
  ?supported_by:node list -> ?in_context_of:node list -> id:string -> string -> node

val solution : ?artifact:artifact -> id:string -> string -> node

val context : id:string -> string -> node

val assumption : id:string -> string -> node

val justification : id:string -> string -> node

val fold : ('a -> node -> 'a) -> 'a -> case -> 'a
(** Pre-order over supported_by and in_context_of. *)

val find : case -> string -> node option

val solutions : case -> node list

val undeveloped_goals : case -> node list
(** Goals/strategies with no support — the gaps reviewers look for. *)

val validate : case -> string list
(** Structural problems: duplicate ids, solutions with children, context
    nodes used as support, goals supported directly by context. *)
