lib/blockdiag/diagram.pp.ml: List Ppx_deriving_runtime Printf String
