lib/blockdiag/diagram.pp.mli: Ppx_deriving_runtime
