lib/blockdiag/text_format.pp.ml: Buffer Diagram Fun List Modelio Mvalue Printf String
