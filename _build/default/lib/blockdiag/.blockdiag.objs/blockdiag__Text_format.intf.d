lib/blockdiag/text_format.pp.mli: Diagram
