lib/blockdiag/to_netlist.pp.ml: Circuit Diagram Hashtbl List Option Printf String
