lib/blockdiag/to_netlist.pp.mli: Circuit Diagram
