lib/blockdiag/transform.pp.ml: Architecture Base Diagram List Model Printf Reliability Ssam String
