lib/blockdiag/transform.pp.mli: Diagram Reliability Ssam
