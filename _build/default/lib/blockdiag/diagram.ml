type param_value = P_num of float | P_str of string | P_bool of bool
[@@deriving eq, show]

type port_kind = In_port | Out_port | Conserving [@@deriving eq, show]

type port = { port_name : string; port_kind : port_kind } [@@deriving eq, show]

type block = {
  block_id : string;
  block_type : string;
  parameters : (string * param_value) list;
  ports : port list;
  annotation : string option;
}
[@@deriving eq, show]

type endpoint = { ep_block : string; ep_port : string } [@@deriving eq, show]

type connection = { from_ep : endpoint; to_ep : endpoint } [@@deriving eq, show]

type t = {
  diagram_name : string;
  blocks : block list;
  connections : connection list;
  subsystems : t list;
}
[@@deriving eq, show]

let two_terminal_ports =
  [
    { port_name = "a"; port_kind = Conserving };
    { port_name = "b"; port_kind = Conserving };
  ]

let block ?(parameters = []) ?(ports = two_terminal_ports) ?annotation ~id
    ~block_type () =
  { block_id = id; block_type; parameters; ports; annotation }

let diagram ?(connections = []) ?(subsystems = []) ~name blocks =
  { diagram_name = name; blocks; connections; subsystems }

let connect (b1, p1) (b2, p2) =
  {
    from_ep = { ep_block = b1; ep_port = p1 };
    to_ep = { ep_block = b2; ep_port = p2 };
  }

let find_block t id =
  List.find_opt (fun b -> String.equal b.block_id id) t.blocks

let rec find_block_deep t id =
  match find_block t id with
  | Some b -> Some b
  | None -> List.find_map (fun s -> find_block_deep s id) t.subsystems

let rec all_blocks t =
  t.blocks @ List.concat_map all_blocks t.subsystems

let rec block_count t =
  List.length t.blocks
  + List.length t.connections
  + List.fold_left (fun acc s -> acc + block_count s) 0 t.subsystems

let param_num b name =
  match List.assoc_opt name b.parameters with
  | Some (P_num f) -> Some f
  | Some (P_str s) -> float_of_string_opt s
  | Some (P_bool _) | None -> None

let param_str b name =
  match List.assoc_opt name b.parameters with
  | Some (P_str s) -> Some s
  | Some (P_num f) -> Some (Printf.sprintf "%g" f)
  | Some (P_bool b) -> Some (string_of_bool b)
  | None -> None

let find_port b name =
  List.find_opt (fun p -> String.equal p.port_name name) b.ports

let validate t =
  let problems = ref [] in
  let note fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  let rec go t =
    let ids = List.map (fun b -> b.block_id) t.blocks in
    let dup =
      List.filter
        (fun id -> List.length (List.filter (String.equal id) ids) > 1)
        (List.sort_uniq String.compare ids)
    in
    List.iter (fun id -> note "%s: duplicate block id '%s'" t.diagram_name id) dup;
    let endpoint_port ep =
      match find_block t ep.ep_block with
      | None ->
          note "%s: connection references missing block '%s'" t.diagram_name
            ep.ep_block;
          None
      | Some b -> (
          match find_port b ep.ep_port with
          | None ->
              note "%s: block '%s' has no port '%s'" t.diagram_name ep.ep_block
                ep.ep_port;
              None
          | Some p -> Some p)
    in
    List.iter
      (fun c ->
        match (endpoint_port c.from_ep, endpoint_port c.to_ep) with
        | Some p1, Some p2 -> (
            match (p1.port_kind, p2.port_kind) with
            | Out_port, Out_port ->
                note "%s: two outputs wired together (%s.%s -> %s.%s)"
                  t.diagram_name c.from_ep.ep_block c.from_ep.ep_port
                  c.to_ep.ep_block c.to_ep.ep_port
            | In_port, In_port ->
                note "%s: two inputs wired together (%s.%s -> %s.%s)"
                  t.diagram_name c.from_ep.ep_block c.from_ep.ep_port
                  c.to_ep.ep_block c.to_ep.ep_port
            | Conserving, (In_port | Out_port) | (In_port | Out_port), Conserving
              ->
                note "%s: conserving port wired to a signal port (%s.%s -> %s.%s)"
                  t.diagram_name c.from_ep.ep_block c.from_ep.ep_port
                  c.to_ep.ep_block c.to_ep.ep_port
            | Conserving, Conserving | Out_port, In_port | In_port, Out_port ->
                ())
        | _ -> ())
      t.connections;
    List.iter go t.subsystems
  in
  go t;
  List.rev !problems
