(** Block diagrams — the stand-in for Simulink/Simscape models.

    A diagram is a set of typed, parameterised blocks wired port-to-port,
    with nested subsystems.  Electrical blocks use *conserving* ports
    (wires merge into nets); signal blocks use directed in/out ports.
    {!module:To_netlist} extracts the electrical net for simulation and
    {!module:Transform} maps diagrams to SSAM. *)

type param_value = P_num of float | P_str of string | P_bool of bool
[@@deriving eq, show]

type port_kind = In_port | Out_port | Conserving [@@deriving eq, show]

type port = { port_name : string; port_kind : port_kind } [@@deriving eq, show]

type block = {
  block_id : string;
  block_type : string;  (** catalogue name: ["diode"], ["gain"], ["mcu"]... *)
  parameters : (string * param_value) list;
  ports : port list;
  annotation : string option;
      (** the paper's "annotate subsystems" work-around: marks what a
          subsystem stands for (e.g. a complex MCU). *)
}
[@@deriving eq, show]

type endpoint = { ep_block : string; ep_port : string } [@@deriving eq, show]

type connection = { from_ep : endpoint; to_ep : endpoint } [@@deriving eq, show]

type t = {
  diagram_name : string;
  blocks : block list;
  connections : connection list;
  subsystems : t list;
}
[@@deriving eq, show]

val block :
  ?parameters:(string * param_value) list ->
  ?ports:port list ->
  ?annotation:string ->
  id:string ->
  block_type:string ->
  unit ->
  block

val two_terminal_ports : port list
(** Conserving ports ["a"] and ["b"] — the default for electrical blocks. *)

val diagram :
  ?connections:connection list ->
  ?subsystems:t list ->
  name:string ->
  block list ->
  t

val connect : string * string -> string * string -> connection
(** [connect (block, port) (block', port')]. *)

val find_block : t -> string -> block option
(** Searches this diagram level only. *)

val find_block_deep : t -> string -> block option
(** Searches subsystems too (first match wins). *)

val all_blocks : t -> block list
(** Depth-first over subsystems. *)

val block_count : t -> int
(** Blocks + connections, over all levels — "elements in the design" as
    counted by the paper's evaluation subjects. *)

val param_num : block -> string -> float option

val param_str : block -> string -> string option

val validate : t -> string list
(** Dangling connection endpoints, duplicate block ids (per level),
    connections into missing ports, direction violations (wiring two
    outputs together). *)
