exception Parse_error of { line : int; message : string }

(* ---------- lexing ---------- *)

type token =
  | T_ident of string
  | T_num of float
  | T_str of string
  | T_lbrace
  | T_rbrace
  | T_lparen
  | T_rparen
  | T_colon
  | T_semi
  | T_comma
  | T_dot
  | T_eq
  | T_arrow
  | T_eof

let token_desc = function
  | T_ident s -> Printf.sprintf "identifier %S" s
  | T_num f -> Printf.sprintf "number %g" f
  | T_str s -> Printf.sprintf "string %S" s
  | T_lbrace -> "'{'"
  | T_rbrace -> "'}'"
  | T_lparen -> "'('"
  | T_rparen -> "')'"
  | T_colon -> "':'"
  | T_semi -> "';'"
  | T_comma -> "','"
  | T_dot -> "'.'"
  | T_eq -> "'='"
  | T_arrow -> "'->'"
  | T_eof -> "end of input"

let fail line message = raise (Parse_error { line; message })

let is_ident_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '+' | '-' -> true
  | _ -> false

let is_digit = function '0' .. '9' -> true | _ -> false

let tokenize src =
  let n = String.length src in
  let line = ref 1 in
  let toks = ref [] in
  let emit t = toks := (t, !line) :: !toks in
  let rec go i =
    if i >= n then emit T_eof
    else
      match src.[i] with
      | '\n' ->
          incr line;
          go (i + 1)
      | ' ' | '\t' | '\r' -> go (i + 1)
      | '#' ->
          let rec skip j = if j < n && src.[j] <> '\n' then skip (j + 1) else j in
          go (skip i)
      | '{' -> emit T_lbrace; go (i + 1)
      | '}' -> emit T_rbrace; go (i + 1)
      | '(' -> emit T_lparen; go (i + 1)
      | ')' -> emit T_rparen; go (i + 1)
      | ':' -> emit T_colon; go (i + 1)
      | ';' -> emit T_semi; go (i + 1)
      | ',' -> emit T_comma; go (i + 1)
      | '.' -> emit T_dot; go (i + 1)
      | '=' -> emit T_eq; go (i + 1)
      | '-' when i + 1 < n && src.[i + 1] = '>' ->
          emit T_arrow;
          go (i + 2)
      | '"' ->
          let buf = Buffer.create 16 in
          let rec str j =
            if j >= n then fail !line "unterminated string"
            else if src.[j] = '"' then j + 1
            else if src.[j] = '\\' && j + 1 < n then begin
              Buffer.add_char buf src.[j + 1];
              str (j + 2)
            end
            else begin
              if src.[j] = '\n' then incr line;
              Buffer.add_char buf src.[j];
              str (j + 1)
            end
          in
          let next = str (i + 1) in
          emit (T_str (Buffer.contents buf));
          go next
      | c when is_digit c || (c = '-' && i + 1 < n && is_digit src.[i + 1]) ->
          let rec num j =
            if
              j < n
              && (is_digit src.[j] || src.[j] = '.' || src.[j] = 'e'
                 || src.[j] = 'E'
                 || ((src.[j] = '-' || src.[j] = '+')
                    && j > i
                    && (src.[j - 1] = 'e' || src.[j - 1] = 'E')))
            then num (j + 1)
            else j
          in
          let next = num i in
          let text = String.sub src i (next - i) in
          (match float_of_string_opt text with
          | Some f -> emit (T_num f)
          | None -> fail !line (Printf.sprintf "bad number %S" text));
          go next
      | c when is_ident_char c ->
          let rec ident j =
            if j < n && is_ident_char src.[j] then ident (j + 1) else j
          in
          let next = ident i in
          emit (T_ident (String.sub src i (next - i)));
          go next
      | c -> fail !line (Printf.sprintf "unexpected character '%c'" c)
  in
  go 0;
  List.rev !toks

(* ---------- parsing ---------- *)

type parser_state = { mutable toks : (token * int) list }

let peek st = match st.toks with (t, l) :: _ -> (t, l) | [] -> (T_eof, 0)

let advance st = match st.toks with _ :: tl -> st.toks <- tl | [] -> ()

let expect st want desc =
  let t, l = peek st in
  if t = want then advance st
  else fail l (Printf.sprintf "expected %s, found %s" desc (token_desc t))

let expect_ident st what =
  match peek st with
  | T_ident s, _ ->
      advance st;
      s
  | t, l -> fail l (Printf.sprintf "expected %s, found %s" what (token_desc t))

let parse_params st =
  (* '{' (name '=' value ';')* '}' *)
  expect st T_lbrace "'{'";
  let rec go params annotation =
    match peek st with
    | T_rbrace, _ ->
        advance st;
        (List.rev params, annotation)
    | T_ident name, _ ->
        advance st;
        expect st T_eq "'='";
        let value =
          match peek st with
          | T_num f, _ ->
              advance st;
              Diagram.P_num f
          | T_str s, _ ->
              advance st;
              Diagram.P_str s
          | T_ident "true", _ ->
              advance st;
              Diagram.P_bool true
          | T_ident "false", _ ->
              advance st;
              Diagram.P_bool false
          | T_ident s, _ ->
              advance st;
              Diagram.P_str s
          | t, l -> fail l (Printf.sprintf "expected a value, found %s" (token_desc t))
        in
        expect st T_semi "';'";
        if String.equal name "annotation" then
          let a =
            match value with
            | Diagram.P_str s -> s
            | Diagram.P_num f -> Printf.sprintf "%g" f
            | Diagram.P_bool b -> string_of_bool b
          in
          go params (Some a)
        else go ((name, value) :: params) annotation
    | t, l -> fail l (Printf.sprintf "expected a parameter or '}', found %s" (token_desc t))
  in
  go [] None

let parse_ports st =
  (* 'ports' '(' [kind name {',' kind name}] ')' — possibly empty *)
  expect st T_lparen "'('";
  match peek st with
  | T_rparen, _ ->
      advance st;
      []
  | _ ->
  let rec go acc =
    let kind =
      match expect_ident st "a port kind" with
      | "in" -> Diagram.In_port
      | "out" -> Diagram.Out_port
      | "conserving" -> Diagram.Conserving
      | other ->
          let _, l = peek st in
          fail l (Printf.sprintf "unknown port kind %S" other)
    in
    let name = expect_ident st "a port name" in
    let acc = { Diagram.port_name = name; port_kind = kind } :: acc in
    match peek st with
    | T_comma, _ ->
        advance st;
        go acc
    | T_rparen, _ ->
        advance st;
        List.rev acc
    | t, l -> fail l (Printf.sprintf "expected ',' or ')', found %s" (token_desc t))
  in
  go []

let rec parse_body st name =
  expect st T_lbrace "'{'";
  let blocks = ref [] in
  let connections = ref [] in
  let subsystems = ref [] in
  let rec go () =
    match peek st with
    | T_rbrace, _ ->
        advance st;
        Diagram.diagram ~connections:(List.rev !connections)
          ~subsystems:(List.rev !subsystems) ~name (List.rev !blocks)
    | T_ident "block", _ ->
        advance st;
        let id = expect_ident st "a block id" in
        expect st T_colon "':'";
        let btype = expect_ident st "a block type" in
        let ports =
          match peek st with
          | T_ident "ports", _ ->
              advance st;
              parse_ports st
          | _ -> Diagram.two_terminal_ports
        in
        let parameters, annotation =
          match peek st with
          | T_lbrace, _ -> parse_params st
          | _ ->
              (match peek st with
              | T_semi, _ -> advance st
              | _ -> ());
              ([], None)
        in
        blocks :=
          {
            Diagram.block_id = id;
            block_type = btype;
            parameters;
            ports;
            annotation;
          }
          :: !blocks;
        go ()
    | T_ident "connect", _ ->
        advance st;
        let b1 = expect_ident st "a block id" in
        expect st T_dot "'.'";
        let p1 = expect_ident st "a port name" in
        expect st T_arrow "'->'";
        let b2 = expect_ident st "a block id" in
        expect st T_dot "'.'";
        let p2 = expect_ident st "a port name" in
        expect st T_semi "';'";
        connections := Diagram.connect (b1, p1) (b2, p2) :: !connections;
        go ()
    | T_ident "subsystem", _ ->
        advance st;
        let sub_name = expect_ident st "a subsystem name" in
        subsystems := parse_body st sub_name :: !subsystems;
        go ()
    | t, l ->
        fail l
          (Printf.sprintf "expected 'block', 'connect', 'subsystem' or '}', found %s"
             (token_desc t))
  in
  go ()

let parse src =
  let st = { toks = tokenize src } in
  (match peek st with
  | T_ident "diagram", _ -> advance st
  | t, l -> fail l (Printf.sprintf "expected 'diagram', found %s" (token_desc t)));
  let name = expect_ident st "a diagram name" in
  let d = parse_body st name in
  (match peek st with
  | T_eof, _ -> d
  | t, l -> fail l (Printf.sprintf "trailing %s" (token_desc t)))

let parse_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> parse (really_input_string ic (in_channel_length ic)))

(* ---------- printing ---------- *)

let print_value = function
  | Diagram.P_num f -> Printf.sprintf "%g" f
  | Diagram.P_str s -> Printf.sprintf "%S" s
  | Diagram.P_bool b -> string_of_bool b

let print d =
  let buf = Buffer.create 512 in
  let indent depth = String.make (depth * 2) ' ' in
  let print_ports (b : Diagram.block) =
    if b.Diagram.ports = Diagram.two_terminal_ports then ""
    else
      let kind_str = function
        | Diagram.In_port -> "in"
        | Diagram.Out_port -> "out"
        | Diagram.Conserving -> "conserving"
      in
      Printf.sprintf " ports (%s)"
        (String.concat ", "
           (List.map
              (fun (p : Diagram.port) ->
                kind_str p.Diagram.port_kind ^ " " ^ p.Diagram.port_name)
              b.Diagram.ports))
  in
  let rec go depth keyword (d : Diagram.t) =
    Buffer.add_string buf
      (Printf.sprintf "%s%s %s {\n" (indent depth) keyword d.Diagram.diagram_name);
    List.iter
      (fun (b : Diagram.block) ->
        let params =
          b.Diagram.parameters
          @
          match b.Diagram.annotation with
          | Some a -> [ ("annotation", Diagram.P_str a) ]
          | None -> []
        in
        if params = [] then
          Buffer.add_string buf
            (Printf.sprintf "%sblock %s : %s%s;\n" (indent (depth + 1))
               b.Diagram.block_id b.Diagram.block_type (print_ports b))
        else begin
          Buffer.add_string buf
            (Printf.sprintf "%sblock %s : %s%s {\n" (indent (depth + 1))
               b.Diagram.block_id b.Diagram.block_type (print_ports b));
          List.iter
            (fun (k, v) ->
              Buffer.add_string buf
                (Printf.sprintf "%s%s = %s;\n" (indent (depth + 2)) k
                   (print_value v)))
            params;
          Buffer.add_string buf (Printf.sprintf "%s}\n" (indent (depth + 1)))
        end)
      d.Diagram.blocks;
    List.iter
      (fun (c : Diagram.connection) ->
        Buffer.add_string buf
          (Printf.sprintf "%sconnect %s.%s -> %s.%s;\n" (indent (depth + 1))
             c.Diagram.from_ep.Diagram.ep_block c.Diagram.from_ep.Diagram.ep_port
             c.Diagram.to_ep.Diagram.ep_block c.Diagram.to_ep.Diagram.ep_port))
      d.Diagram.connections;
    List.iter (go (depth + 1) "subsystem") d.Diagram.subsystems;
    Buffer.add_string buf (Printf.sprintf "%s}\n" (indent depth))
  in
  go 0 "diagram" d;
  Buffer.contents buf

let write_file path d =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (print d))

(* ---------- model driver ---------- *)

let rec diagram_to_mvalue (d : Diagram.t) =
  let open Modelio in
  let param_value = function
    | Diagram.P_num f -> Mvalue.Num f
    | Diagram.P_str s -> Mvalue.Str s
    | Diagram.P_bool b -> Mvalue.Bool b
  in
  let block_value (b : Diagram.block) =
    Mvalue.Record
      [
        ("id", Mvalue.Str b.Diagram.block_id);
        ("type", Mvalue.Str b.Diagram.block_type);
        ( "parameters",
          Mvalue.Record
            (List.map (fun (k, v) -> (k, param_value v)) b.Diagram.parameters) );
        ( "annotation",
          match b.Diagram.annotation with
          | Some a -> Mvalue.Str a
          | None -> Mvalue.Null );
        ( "ports",
          Mvalue.Seq
            (List.map
               (fun (p : Diagram.port) -> Mvalue.Str p.Diagram.port_name)
               b.Diagram.ports) );
      ]
  in
  let connection_value (c : Diagram.connection) =
    Mvalue.Record
      [
        ("from", Mvalue.Str (c.Diagram.from_ep.Diagram.ep_block ^ "." ^ c.Diagram.from_ep.Diagram.ep_port));
        ("to", Mvalue.Str (c.Diagram.to_ep.Diagram.ep_block ^ "." ^ c.Diagram.to_ep.Diagram.ep_port));
      ]
  in
  Mvalue.Record
    [
      ("name", Mvalue.Str d.Diagram.diagram_name);
      ("blocks", Mvalue.Seq (List.map block_value d.Diagram.blocks));
      ("connections", Mvalue.Seq (List.map connection_value d.Diagram.connections));
      ("subsystems", Mvalue.Seq (List.map diagram_to_mvalue d.Diagram.subsystems));
    ]

let install_driver () =
  Modelio.Driver.register
    {
      Modelio.Driver.driver_name = "blockdiag";
      load =
        (fun ~location ~metadata:_ ->
          match parse_file location with
          | d -> diagram_to_mvalue d
          | exception Parse_error { line; message } ->
              raise
                (Modelio.Driver.Load_error
                   {
                     driver = "blockdiag";
                     location;
                     message = Printf.sprintf "line %d: %s" line message;
                   }));
    }

let () = install_driver ()
