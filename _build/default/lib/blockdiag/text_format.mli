(** Textual serialisation of block diagrams — the "model file" format that
    stands in for Simulink's .slx in examples, drivers and tests.

    {v
    diagram psu {
      block DC1 : vsource { volts = 5; }
      block MC1 : microcontroller ports (conserving a, conserving b) {
        ohms = 100;
        annotation = "complex MCU modelled as annotated subsystem";
      }
      connect DC1.a -> D1.a;
      subsystem filter {
        block L1 : inductor { henries = 0.001; }
      }
    }
    v}

    Comments run [#] to end of line.  [parse (print d) = d]. *)

exception Parse_error of { line : int; message : string }

val parse : string -> Diagram.t

val parse_file : string -> Diagram.t

val print : Diagram.t -> string

val write_file : string -> Diagram.t -> unit

val install_driver : unit -> unit
(** Registers the ["blockdiag"] driver with {!Modelio.Driver}: diagrams
    load as records with ["name"], ["blocks"] (seq of records with id,
    type, parameters...), ["connections"] and ["subsystems"], so queries
    can federate design data.  Idempotent; called at library init. *)
