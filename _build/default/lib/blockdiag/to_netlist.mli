(** Electrical-net extraction: block diagram → {!Circuit.Netlist}.

    Conserving ports wired together collapse into nets (union-find); any
    net containing a ["ground"] block's port becomes the ground net.
    Simulation-only blocks (scopes, solver configs) and pure signal blocks
    are skipped.  Subsystem contents are flattened with
    ["<subsystem>/<block>"] ids. *)

type skipped = { block_id : string; reason : string }

type result = {
  netlist : Circuit.Netlist.t;
  skipped : skipped list;  (** non-electrical blocks left out *)
  block_types : (string * string) list;
      (** element id → original block type (e.g. ["MC1", "microcontroller"]),
          so the reliability model resolves MCU-as-load blocks correctly *)
}

exception Unsupported_block of { block_id : string; block_type : string }

val convert : Diagram.t -> result
(** Raises {!Unsupported_block} for electrical-looking two-terminal blocks
    whose type the converter does not know (signal blocks are skipped, not
    raised). *)

val element_kind_of_block : Diagram.block -> Circuit.Element.kind option
(** The element a block maps to; [None] for simulation-only / signal
    blocks.  Raises {!Unsupported_block} as {!convert}. *)
