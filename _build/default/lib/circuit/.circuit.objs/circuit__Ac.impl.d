lib/circuit/ac.pp.ml: Array Complex Dc Element Float Hashtbl List Netlist Numeric Printf String
