lib/circuit/ac.pp.mli: Dc Netlist
