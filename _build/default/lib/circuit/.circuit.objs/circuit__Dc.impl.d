lib/circuit/dc.pp.ml: Array Element Float Format Hashtbl List Netlist Numeric Printf String
