lib/circuit/dc.pp.mli: Element Format Netlist
