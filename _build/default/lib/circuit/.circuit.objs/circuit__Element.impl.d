lib/circuit/element.pp.ml: Ppx_deriving_runtime Printf String
