lib/circuit/element.pp.mli: Ppx_deriving_runtime
