lib/circuit/fault.pp.ml: Element Netlist Ppx_deriving_runtime Printf String
