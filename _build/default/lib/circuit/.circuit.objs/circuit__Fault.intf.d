lib/circuit/fault.pp.mli: Element Netlist Ppx_deriving_runtime
