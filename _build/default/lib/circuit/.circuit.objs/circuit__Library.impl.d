lib/circuit/library.pp.ml: Fault Format List String
