lib/circuit/library.pp.mli: Fault Format
