lib/circuit/netlist.pp.ml: Element Hashtbl List Option Printf String
