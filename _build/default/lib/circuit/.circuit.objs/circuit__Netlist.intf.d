lib/circuit/netlist.pp.mli: Element
