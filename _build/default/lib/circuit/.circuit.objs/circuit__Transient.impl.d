lib/circuit/transient.pp.ml: Array Dc Element Float Hashtbl Int List Netlist Numeric Printf String
