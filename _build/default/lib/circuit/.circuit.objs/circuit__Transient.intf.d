lib/circuit/transient.pp.mli: Dc Netlist Stdlib
