type solution = {
  voltages : (string, float) Hashtbl.t;
  currents : (string, float) Hashtbl.t;
  current_sensors : (string * float) list;
  voltage_sensors : (string * float) list;
}

type error = Singular_system of string | No_convergence of int

let pp_error ppf = function
  | Singular_system what ->
      Format.fprintf ppf "singular MNA system (%s)" what
  | No_convergence n ->
      Format.fprintf ppf "Newton iteration did not converge in %d steps" n

let closed_switch_resistance = 1e-3

(* Junction-voltage critical value above which the exponential is
   linearised to avoid overflow (SPICE's pnjlim idea, simplified). *)
let junction_limit (p : Element.diode_params) v =
  let vt = p.Element.thermal_voltage *. p.Element.emission in
  let vcrit = vt *. log (vt /. (Float.sqrt 2.0 *. p.Element.saturation_current)) in
  if v > vcrit then vcrit +. (vt *. log (1.0 +. ((v -. vcrit) /. vt)))
  else v

let diode_current (p : Element.diode_params) v =
  let vt = p.Element.thermal_voltage *. p.Element.emission in
  let v = junction_limit p v in
  p.Element.saturation_current *. (exp (v /. vt) -. 1.0)

(* True derivative of [diode_current], including the limiter's chain-rule
   factor — an inconsistent Jacobian makes Newton oscillate around the
   operating point instead of converging. *)
let diode_conductance (p : Element.diode_params) v =
  let vt = p.Element.thermal_voltage *. p.Element.emission in
  let vcrit =
    vt *. log (vt /. (Float.sqrt 2.0 *. p.Element.saturation_current))
  in
  let vl = junction_limit p v in
  let limiter_slope =
    if v > vcrit then 1.0 /. (1.0 +. ((v -. vcrit) /. vt)) else 1.0
  in
  p.Element.saturation_current /. vt *. exp (vl /. vt) *. limiter_slope

let analyse ?(gmin = 1e-9) ?(max_iterations = 200) ?(max_step_param = 0.5) netlist =
  let elements = Netlist.elements netlist in
  let node_names = Netlist.nodes netlist in
  let node_index = Hashtbl.create 16 in
  List.iteri (fun i n -> Hashtbl.add node_index n i) node_names;
  let n_nodes = List.length node_names in
  let branch_elements =
    List.filter (fun (e : Element.t) -> Element.is_branch_element e.Element.kind)
      elements
  in
  let branch_index = Hashtbl.create 8 in
  List.iteri
    (fun i (e : Element.t) -> Hashtbl.add branch_index e.Element.id (n_nodes + i))
    branch_elements;
  let size = n_nodes + List.length branch_elements in
  let node n = if String.equal n Netlist.ground then None else Hashtbl.find_opt node_index n in
  (* Voltage guess per node, refined by Newton when diodes are present. *)
  let guess = Array.make size 0.0 in
  let has_diodes =
    List.exists
      (fun (e : Element.t) ->
        match e.Element.kind with Element.Diode _ -> true | _ -> false)
      elements
  in
  let build v_guess =
    let a = Numeric.Matrix.create size size in
    let b = Numeric.Vector.create size in
    let stamp_conductance na nb g =
      (match node na with
      | Some i -> Numeric.Matrix.add_to a i i g
      | None -> ());
      (match node nb with
      | Some j -> Numeric.Matrix.add_to a j j g
      | None -> ());
      match (node na, node nb) with
      | Some i, Some j ->
          Numeric.Matrix.add_to a i j (-.g);
          Numeric.Matrix.add_to a j i (-.g)
      | _ -> ()
    in
    let stamp_current_source na nb amps =
      (* amps flows a -> b inside the source, i.e. out of node b. *)
      (match node na with
      | Some i -> b.(i) <- b.(i) -. amps
      | None -> ());
      match node nb with
      | Some j -> b.(j) <- b.(j) +. amps
      | None -> ()
    in
    let stamp_voltage_branch e_id na nb volts =
      let k = Hashtbl.find branch_index e_id in
      (match node na with
      | Some i ->
          Numeric.Matrix.add_to a i k 1.0;
          Numeric.Matrix.add_to a k i 1.0
      | None -> ());
      (match node nb with
      | Some j ->
          Numeric.Matrix.add_to a j k (-1.0);
          Numeric.Matrix.add_to a k j (-1.0)
      | None -> ());
      b.(k) <- b.(k) +. volts
    in
    let node_v n =
      match node n with Some i -> v_guess.(i) | None -> 0.0
    in
    List.iter
      (fun (e : Element.t) ->
        let na = e.Element.node_a and nb = e.Element.node_b in
        match e.Element.kind with
        | Element.Resistor r | Element.Load r -> stamp_conductance na nb (1.0 /. r)
        | Element.Switch true -> stamp_conductance na nb (1.0 /. closed_switch_resistance)
        | Element.Switch false | Element.Capacitor _ | Element.Voltage_sensor -> ()
        | Element.Isource amps -> stamp_current_source na nb amps
        | Element.Vsource volts -> stamp_voltage_branch e.Element.id na nb volts
        | Element.Inductor _ -> stamp_voltage_branch e.Element.id na nb 0.0
        | Element.Current_sensor -> stamp_voltage_branch e.Element.id na nb 0.0
        | Element.Diode p ->
            (* Newton companion model: conductance g and current source
               i_eq = i(v) - g v, in parallel a -> b. *)
            let v = node_v na -. node_v nb in
            let g = Float.max (diode_conductance p v) 1e-12 in
            let i_eq = diode_current p v -. (g *. v) in
            stamp_conductance na nb g;
            stamp_current_source na nb i_eq)
      elements;
    (* gmin to ground for solvability under fault injection. *)
    for i = 0 to n_nodes - 1 do
      Numeric.Matrix.add_to a i i gmin
    done;
    (a, b)
  in
  let solve_once v_guess =
    let a, b = build v_guess in
    match Numeric.Lu.solve a b with
    | x -> Ok x
    | exception Numeric.Lu.Singular k ->
        Error (Singular_system (Printf.sprintf "pivot failure at unknown %d" k))
  in
  let rec newton v_guess iter =
    if iter > max_iterations then Error (No_convergence max_iterations)
    else
      match solve_once v_guess with
      | Error _ as e -> e
      | Ok x ->
          (* Damp the node-voltage update to keep the diode exponential
             stable. *)
          let damped = Array.copy x in
          let max_step = max_step_param in
          for i = 0 to n_nodes - 1 do
            let dv = x.(i) -. v_guess.(i) in
            if Float.abs dv > max_step then
              damped.(i) <- v_guess.(i) +. (if dv > 0.0 then max_step else -.max_step)
          done;
          (* SPICE-style per-variable tolerance: |Δv| ≤ reltol·|v| + vntol.
             An absolute-only criterion is unreachable when the system is
             ill-conditioned (mΩ switches vs gmin span ~12 decades and the
             diode companion amplifies LU roundoff). *)
          let reltol = 1e-6 and vntol = 1e-6 in
          let converged = ref true in
          for i = 0 to Array.length damped - 1 do
            let dv = Float.abs (damped.(i) -. v_guess.(i)) in
            if dv > (reltol *. Float.abs damped.(i)) +. vntol then
              converged := false
          done;
          if !converged then Ok damped else newton damped (iter + 1)
  in
  let result = if has_diodes then newton guess 0 else solve_once guess in
  match result with
  | Error _ as e -> e
  | Ok x ->
      let voltages = Hashtbl.create 16 in
      Hashtbl.add voltages Netlist.ground 0.0;
      List.iteri (fun i n -> Hashtbl.add voltages n x.(i)) node_names;
      let v n = Hashtbl.find voltages n in
      let currents = Hashtbl.create 16 in
      let current_sensors = ref [] in
      let voltage_sensors = ref [] in
      List.iter
        (fun (e : Element.t) ->
          let na = e.Element.node_a and nb = e.Element.node_b in
          let i_branch () = x.(Hashtbl.find branch_index e.Element.id) in
          let current =
            match e.Element.kind with
            | Element.Resistor r | Element.Load r -> (v na -. v nb) /. r
            | Element.Switch true -> (v na -. v nb) /. closed_switch_resistance
            | Element.Switch false | Element.Capacitor _ | Element.Voltage_sensor
              ->
                0.0
            | Element.Isource amps -> amps
            | Element.Diode p -> diode_current p (v na -. v nb)
            | Element.Vsource _ | Element.Inductor _ | Element.Current_sensor ->
                i_branch ()
          in
          Hashtbl.replace currents e.Element.id current;
          (match e.Element.kind with
          | Element.Current_sensor ->
              current_sensors := (e.Element.id, current) :: !current_sensors
          | Element.Voltage_sensor ->
              voltage_sensors := (e.Element.id, v na -. v nb) :: !voltage_sensors
          | _ -> ()))
        elements;
      Ok
        {
          voltages;
          currents;
          current_sensors = List.rev !current_sensors;
          voltage_sensors = List.rev !voltage_sensors;
        }

let node_voltage s n =
  match Hashtbl.find_opt s.voltages n with
  | Some v -> v
  | None ->
      if String.equal (String.lowercase_ascii n) "0" then 0.0 else raise Not_found

let element_current s id =
  match Hashtbl.find_opt s.currents id with
  | Some i -> i
  | None -> raise Not_found

let current_sensor_readings s = s.current_sensors

let voltage_sensor_readings s = s.voltage_sensors

let all_sensor_readings s = s.current_sensors @ s.voltage_sensors
