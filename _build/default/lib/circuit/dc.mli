(** DC operating-point analysis by Modified Nodal Analysis.

    Unknowns are the non-ground node voltages plus one branch current per
    voltage-defined element (sources, inductors — DC shorts — and current
    sensors).  Diodes are solved by damped Newton iteration on the
    Shockley equation.  A small [gmin] conductance from every node to
    ground keeps fault-injected circuits (floating nodes after an "open")
    solvable; the affected readings then collapse towards zero, which is
    exactly the observable the failure-injection FMEA compares. *)

type solution

type error =
  | Singular_system of string
  | No_convergence of int  (** Newton iterations exhausted *)

val pp_error : Format.formatter -> error -> unit

val analyse : ?gmin:float -> ?max_iterations:int -> ?max_step_param:float -> Netlist.t -> (solution, error) result
(** Default [gmin] 1e-9 S, [max_iterations] 200. *)

val node_voltage : solution -> string -> float
(** 0.0 for ground; raises [Not_found] for unknown nodes. *)

val element_current : solution -> string -> float
(** Current a → b through the element.  Raises [Not_found] for unknown
    ids; 0.0 for voltage sensors, capacitors and open switches. *)

val current_sensor_readings : solution -> (string * float) list
(** [(sensor id, amps)] for every {!Element.Current_sensor}, in netlist
    order. *)

val voltage_sensor_readings : solution -> (string * float) list
(** [(sensor id, volts)] for every {!Element.Voltage_sensor}. *)

val all_sensor_readings : solution -> (string * float) list
(** Current then voltage sensors — the observation vector the
    failure-injection FMEA compares between golden and faulty runs. *)

(** {1 Device equations}

    Exposed for the transient engine ({!module:Transient}), which shares
    the Newton companion model. *)

val diode_current : Element.diode_params -> float -> float
(** Shockley current at a junction voltage, with overflow limiting. *)

val diode_conductance : Element.diode_params -> float -> float
(** The exact derivative of {!diode_current} (limiter chain rule
    included). *)
