type kind =
  | Resistor of float
  | Vsource of float
  | Isource of float
  | Diode of diode_params
  | Inductor of float
  | Capacitor of float
  | Current_sensor
  | Voltage_sensor
  | Switch of bool
  | Load of float

and diode_params = {
  saturation_current : float;
  thermal_voltage : float;
  emission : float;
}
[@@deriving eq, show]

let default_diode =
  { saturation_current = 1e-12; thermal_voltage = 0.025852; emission = 1.0 }

let kind_name = function
  | Resistor _ -> "resistor"
  | Vsource _ -> "vsource"
  | Isource _ -> "isource"
  | Diode _ -> "diode"
  | Inductor _ -> "inductor"
  | Capacitor _ -> "capacitor"
  | Current_sensor -> "current_sensor"
  | Voltage_sensor -> "voltage_sensor"
  | Switch _ -> "switch"
  | Load _ -> "load"

type t = { id : string; kind : kind; node_a : string; node_b : string }
[@@deriving eq, show]

let make ~id ~kind node_a node_b =
  if String.equal node_a node_b then
    invalid_arg (Printf.sprintf "Element.make %s: terminals on the same node" id);
  (match kind with
  | Resistor r | Load r ->
      if r <= 0.0 then
        invalid_arg (Printf.sprintf "Element.make %s: non-positive resistance" id)
  | Inductor l ->
      if l <= 0.0 then
        invalid_arg (Printf.sprintf "Element.make %s: non-positive inductance" id)
  | Capacitor c ->
      if c <= 0.0 then
        invalid_arg (Printf.sprintf "Element.make %s: non-positive capacitance" id)
  | Vsource _ | Isource _ | Diode _ | Current_sensor | Voltage_sensor
  | Switch _ ->
      ());
  { id; kind; node_a; node_b }

let is_branch_element = function
  | Vsource _ | Inductor _ | Current_sensor -> true
  | Resistor _ | Isource _ | Diode _ | Capacitor _ | Voltage_sensor | Switch _
  | Load _ ->
      false

let conducts = function
  | Capacitor _ | Voltage_sensor -> false
  | Switch closed -> closed
  | Resistor _ | Vsource _ | Isource _ | Diode _ | Inductor _ | Current_sensor
  | Load _ ->
      true
