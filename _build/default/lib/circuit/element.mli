(** Circuit element models — the Simscape Foundation analogue blocks the
    paper's SAME analyses (Sec. VI-B: "electrical systems built using
    Simulink's Simscape Foundation Library").

    Two-terminal elements connect node [a] to node [b]; conventional
    current flows a → b when positive. *)

type kind =
  | Resistor of float  (** ohms > 0 *)
  | Vsource of float  (** ideal DC voltage source, volts (a is +) *)
  | Isource of float  (** ideal DC current source, amps (a → b) *)
  | Diode of diode_params
  | Inductor of float  (** henries; a short at DC *)
  | Capacitor of float  (** farads; open at DC *)
  | Current_sensor  (** ideal ammeter: a 0 V source whose branch current is read *)
  | Voltage_sensor  (** ideal voltmeter: open circuit, reads v(a) - v(b) *)
  | Switch of bool  (** closed = tiny resistance, open = no conduction *)
  | Load of float  (** resistive load (e.g. an MCU supply pin), ohms *)

and diode_params = {
  saturation_current : float;  (** Is, amps (default 1e-12) *)
  thermal_voltage : float;  (** Vt, volts (default 0.025852) *)
  emission : float;  (** ideality factor n (default 1.0) *)
}
[@@deriving eq, show]

val default_diode : diode_params

val kind_name : kind -> string
(** ["resistor"], ["vsource"], ... — the block-type vocabulary used by the
    reliability model and the block-library coverage report. *)

type t = {
  id : string;
  kind : kind;
  node_a : string;
  node_b : string;
}
[@@deriving eq, show]

val make : id:string -> kind:kind -> string -> string -> t
(** [make ~id ~kind a b].  Raises [Invalid_argument] for non-positive
    resistance/load values or identical terminal nodes. *)

val is_branch_element : kind -> bool
(** Elements that contribute an extra MNA branch-current unknown: voltage
    sources, inductors (DC shorts) and current sensors. *)

val conducts : kind -> bool
(** [false] for elements that never conduct at DC: capacitors, voltage
    sensors and open switches.  Used by connectivity-based analyses. *)
