type support = Native | Workaround of string | Unsupported

type catalogue_failure_mode = {
  cfm_name : string;
  cfm_fault : Fault.t;
  cfm_distribution_pct : float;
}

type block_info = {
  block_type : string;
  support : support;
  description : string;
  failure_modes : catalogue_failure_mode list;
}

let fm name fault pct = { cfm_name = name; cfm_fault = fault; cfm_distribution_pct = pct }

(* Distributions follow the MIL-HDBK-338B-style splits used in the paper's
   Table II (open 30 % / short 70 % for passives). *)
let catalogue =
  [
    {
      block_type = "resistor";
      support = Native;
      description = "linear resistor";
      failure_modes =
        [ fm "Open" Fault.Open_circuit 30.0; fm "Short" Fault.Short_circuit 70.0 ];
    };
    {
      block_type = "capacitor";
      support = Native;
      description = "linear capacitor (open at DC)";
      failure_modes =
        [ fm "Open" Fault.Open_circuit 30.0; fm "Short" Fault.Short_circuit 70.0 ];
    };
    {
      block_type = "inductor";
      support = Native;
      description = "linear inductor (short at DC)";
      failure_modes =
        [ fm "Open" Fault.Open_circuit 30.0; fm "Short" Fault.Short_circuit 70.0 ];
    };
    {
      block_type = "diode";
      support = Native;
      description = "exponential junction diode";
      failure_modes =
        [ fm "Open" Fault.Open_circuit 30.0; fm "Short" Fault.Short_circuit 70.0 ];
    };
    {
      block_type = "vsource";
      support = Native;
      description = "ideal DC voltage source";
      failure_modes =
        [
          fm "Loss of output" Fault.Open_circuit 60.0;
          fm "Output drift" (Fault.Parameter_shift 1.5) 40.0;
        ];
    };
    {
      block_type = "isource";
      support = Native;
      description = "ideal DC current source";
      failure_modes =
        [
          fm "Loss of output" Fault.Open_circuit 60.0;
          fm "Output drift" (Fault.Parameter_shift 1.5) 40.0;
        ];
    };
    {
      block_type = "switch";
      support = Native;
      description = "ideal switch";
      failure_modes =
        [
          fm "Stuck open" Fault.Open_circuit 50.0;
          fm "Stuck closed" Fault.Short_circuit 50.0;
        ];
    };
    {
      block_type = "current_sensor";
      support = Native;
      description = "ideal current sensor";
      failure_modes =
        [ fm "Open" Fault.Open_circuit 40.0; fm "Reading loss" Fault.Open_circuit 60.0 ];
    };
    {
      block_type = "voltage_sensor";
      support = Native;
      description = "ideal voltage sensor";
      failure_modes = [ fm "Reading loss" Fault.Open_circuit 100.0 ];
    };
    {
      block_type = "ground";
      support = Native;
      description = "ground reference";
      failure_modes = [];
    };
    {
      block_type = "microcontroller";
      support =
        Workaround
          "modelled as an annotated resistive-load subsystem (the paper's \
           'create subsystems in Simulink and annotate them' work-around)";
      description = "MCU supply-pin load";
      failure_modes = [ fm "RAM Failure" Fault.Open_circuit 100.0 ];
    };
    {
      block_type = "load";
      support = Native;
      description = "generic resistive load";
      failure_modes = [ fm "Open" Fault.Open_circuit 100.0 ];
    };
    {
      block_type = "solver_config";
      support = Native;
      description = "simulation-only block (ignored by analysis)";
      failure_modes = [];
    };
    {
      block_type = "scope";
      support = Native;
      description = "simulation-only block (ignored by analysis)";
      failure_modes = [];
    };
    {
      block_type = "workspace";
      support = Native;
      description = "simulation-only block: writes signals to the workspace";
      failure_modes = [];
    };
    {
      block_type = "display";
      support = Native;
      description = "simulation-only block (ignored by analysis)";
      failure_modes = [];
    };
    {
      block_type = "task";
      support =
        Workaround
          "software block: mapped to an SSAM Software component and analysed \
           by the path algorithm, not the circuit simulator";
      description = "software task";
      failure_modes =
        [ fm "Crash" Fault.Open_circuit 60.0; fm "Hang" Fault.Open_circuit 40.0 ];
    };
    {
      block_type = "pll";
      support =
        Workaround "annotated subsystem with catalogue failure modes (Table I)";
      description = "phase-locked loop";
      failure_modes =
        [
          fm "Lower frequency" Fault.Open_circuit 40.1;
          fm "Higher frequency" (Fault.Parameter_shift 1.5) 28.7;
          fm "Jitter" (Fault.Parameter_shift 0.5) 31.2;
        ];
    };
    {
      block_type = "opamp";
      support = Unsupported;
      description = "operational amplifier (planned)";
      failure_modes = [];
    };
    {
      block_type = "transformer";
      support = Unsupported;
      description = "ideal transformer (planned)";
      failure_modes = [];
    };
  ]

let aliases =
  [
    ("mcu", "microcontroller");
    ("mc", "microcontroller");
    ("dc source", "vsource");
    ("dc_source", "vsource");
    ("voltage source", "vsource");
    ("battery", "vsource");
    ("current source", "isource");
    ("res", "resistor");
    ("cap", "capacitor");
    ("ind", "inductor");
    ("gnd", "ground");
  ]

let find name =
  let canon = String.lowercase_ascii (String.trim name) in
  let canon =
    match List.assoc_opt canon aliases with Some c -> c | None -> canon
  in
  List.find_opt (fun b -> String.equal b.block_type canon) catalogue

type coverage_report = {
  native : string list;
  via_workaround : string list;
  unsupported : string list;
  coverage_pct : float;
}

let coverage block_types =
  let distinct = List.sort_uniq String.compare (List.map String.lowercase_ascii block_types) in
  let native, via_workaround, unsupported =
    List.fold_left
      (fun (n, w, u) bt ->
        match find bt with
        | Some { support = Native; _ } -> (bt :: n, w, u)
        | Some { support = Workaround _; _ } -> (n, bt :: w, u)
        | Some { support = Unsupported; _ } | None -> (n, w, bt :: u))
      ([], [], []) distinct
  in
  let total = List.length distinct in
  let covered = List.length native + List.length via_workaround in
  {
    native = List.rev native;
    via_workaround = List.rev via_workaround;
    unsupported = List.rev unsupported;
    coverage_pct =
      (if total = 0 then 100.0 else 100.0 *. float_of_int covered /. float_of_int total);
  }

let pp_coverage ppf r =
  Format.fprintf ppf
    "@[<v>coverage: %.1f%%@,native: %s@,work-around: %s@,unsupported: %s@]"
    r.coverage_pct
    (String.concat ", " r.native)
    (String.concat ", " r.via_workaround)
    (String.concat ", " r.unsupported)
