(** The supported block catalogue — SAME's Simscape-Foundation coverage
    (evaluation RQ2).

    Each entry says whether a block type is analysed natively, needs the
    paper's "subsystem + annotation" work-around, or is unsupported, and
    lists its catalogue failure modes (used when a reliability model has
    no entry for a component). *)

type support = Native | Workaround of string | Unsupported

type catalogue_failure_mode = {
  cfm_name : string;
  cfm_fault : Fault.t;
  cfm_distribution_pct : float;
}

type block_info = {
  block_type : string;
  support : support;
  description : string;
  failure_modes : catalogue_failure_mode list;
}

val catalogue : block_info list
(** The Simscape-Foundation-style electrical catalogue plus the annotated
    subsystems used in the paper's case studies (MCU, sensors). *)

val find : string -> block_info option
(** Case-insensitive by [block_type]; also accepts common aliases
    (["mcu"], ["mc"] → microcontroller; ["dc source"] → vsource...). *)

type coverage_report = {
  native : string list;
  via_workaround : string list;
  unsupported : string list;
  coverage_pct : float;  (** native + workaround over total queried *)
}

val coverage : string list -> coverage_report
(** Classify the block types used by a design (duplicates are collapsed). *)

val pp_coverage : Format.formatter -> coverage_report -> unit
