type t = { netlist_name : string; rev_elements : Element.t list }

let ground = "gnd"

let normalise_node n =
  match String.lowercase_ascii n with "0" | "gnd" -> ground | _ -> n

let empty netlist_name = { netlist_name; rev_elements = [] }

let name t = t.netlist_name

let find t id =
  List.find_opt (fun (e : Element.t) -> String.equal e.Element.id id) t.rev_elements

let add t (e : Element.t) =
  if Option.is_some (find t e.Element.id) then
    invalid_arg (Printf.sprintf "Netlist.add: duplicate element id %s" e.Element.id);
  let e =
    {
      e with
      Element.node_a = normalise_node e.Element.node_a;
      node_b = normalise_node e.Element.node_b;
    }
  in
  { t with rev_elements = e :: t.rev_elements }

let of_elements netlist_name elements =
  List.fold_left add (empty netlist_name) elements

let elements t = List.rev t.rev_elements

let replace t id kind =
  if Option.is_none (find t id) then raise Not_found;
  {
    t with
    rev_elements =
      List.map
        (fun (e : Element.t) ->
          if String.equal e.Element.id id then { e with Element.kind } else e)
        t.rev_elements;
  }

let remove t id =
  if Option.is_none (find t id) then raise Not_found;
  {
    t with
    rev_elements =
      List.filter
        (fun (e : Element.t) -> not (String.equal e.Element.id id))
        t.rev_elements;
  }

let nodes t =
  List.fold_left
    (fun acc (e : Element.t) ->
      let add n acc =
        if String.equal n ground || List.mem n acc then acc else n :: acc
      in
      add e.Element.node_a (add e.Element.node_b acc))
    [] t.rev_elements
  |> List.sort String.compare

let element_count t = List.length t.rev_elements

let connected_to_ground t node =
  let node = normalise_node node in
  if String.equal node ground then true
  else begin
    let adjacency = Hashtbl.create 16 in
    List.iter
      (fun (e : Element.t) ->
        if Element.conducts e.Element.kind then begin
          Hashtbl.add adjacency e.Element.node_a e.Element.node_b;
          Hashtbl.add adjacency e.Element.node_b e.Element.node_a
        end)
      t.rev_elements;
    let visited = Hashtbl.create 16 in
    let rec dfs n =
      if String.equal n ground then true
      else if Hashtbl.mem visited n then false
      else begin
        Hashtbl.add visited n ();
        List.exists dfs (Hashtbl.find_all adjacency n)
      end
    in
    dfs node
  end

let validate t =
  let problems = ref [] in
  List.iter
    (fun n ->
      if not (connected_to_ground t n) then
        problems :=
          Printf.sprintf "node '%s' has no conducting path to ground" n
          :: !problems)
    (nodes t);
  List.rev !problems
