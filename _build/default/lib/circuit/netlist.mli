(** Netlists: named collections of circuit elements.

    The ground node is ["gnd"] (aliases ["0"] and ["GND"] are
    normalised).  Element ids are unique within a netlist. *)

type t

val ground : string
(** ["gnd"]. *)

val empty : string -> t
(** [empty name]. *)

val name : t -> string

val add : t -> Element.t -> t
(** Raises [Invalid_argument] on a duplicate element id. *)

val of_elements : string -> Element.t list -> t

val elements : t -> Element.t list
(** In insertion order. *)

val find : t -> string -> Element.t option

val replace : t -> string -> Element.kind -> t
(** [replace nl id kind] swaps the element's kind, keeping its nodes.
    Raises [Not_found] for an unknown id. *)

val remove : t -> string -> t
(** Raises [Not_found] for an unknown id. *)

val nodes : t -> string list
(** All distinct node names, ground excluded, sorted. *)

val element_count : t -> int

val connected_to_ground : t -> string -> bool
(** Whether a node has a conducting path (per {!Element.conducts}) to
    ground — used to warn about floating subcircuits before analysis. *)

val validate : t -> string list
(** Human-readable problems: floating nodes, dangling sensor references —
    empty when the netlist is analysable. *)
