type waveform = float -> float

type result = {
  times : float array;
  node_traces : (string, float array) Hashtbl.t;
  element_traces : (string, float array) Hashtbl.t;
  sensor_ids : (string * [ `Current | `Voltage of string * string ]) list;
}

type initial_state = From_dc | Zero_state

let closed_switch_resistance = 1e-3

(* Per-step unknowns: node voltages plus branch currents for voltage
   sources and current sensors.  Inductors — branch elements at DC — are
   companion conductances here, so the layouts differ deliberately. *)
let simulate ?(gmin = 1e-9) ?(max_iterations = 200) ?(initial = From_dc)
    ?(waveforms = []) netlist ~dt ~duration =
  if dt <= 0.0 then invalid_arg "Transient.simulate: non-positive dt";
  if duration <= 0.0 then invalid_arg "Transient.simulate: non-positive duration";
  let elements = Netlist.elements netlist in
  let node_names = Netlist.nodes netlist in
  let node_index = Hashtbl.create 16 in
  List.iteri (fun i n -> Hashtbl.add node_index n i) node_names;
  let n_nodes = List.length node_names in
  let branch_elements =
    List.filter
      (fun (e : Element.t) ->
        match e.Element.kind with
        | Element.Vsource _ | Element.Current_sensor -> true
        | _ -> false)
      elements
  in
  let branch_index = Hashtbl.create 8 in
  List.iteri
    (fun i (e : Element.t) -> Hashtbl.add branch_index e.Element.id (n_nodes + i))
    branch_elements;
  let size = n_nodes + List.length branch_elements in
  let node n =
    if String.equal n Netlist.ground then None else Hashtbl.find_opt node_index n
  in
  let steps = int_of_float (Float.round (duration /. dt)) in
  let steps = Int.max steps 1 in
  let times = Array.init (steps + 1) (fun i -> float_of_int i *. dt) in
  (* History state. *)
  let v_prev = Array.make size 0.0 in
  let cap_v_prev : (string, float) Hashtbl.t = Hashtbl.create 8 in
  let ind_i_prev : (string, float) Hashtbl.t = Hashtbl.create 8 in
  (* Initialise state. *)
  let init_result =
    match initial with
    | Zero_state ->
        List.iter
          (fun (e : Element.t) ->
            match e.Element.kind with
            | Element.Capacitor _ -> Hashtbl.replace cap_v_prev e.Element.id 0.0
            | Element.Inductor _ -> Hashtbl.replace ind_i_prev e.Element.id 0.0
            | _ -> ())
          elements;
        Ok ()
    | From_dc -> (
        match Dc.analyse ~gmin ~max_iterations netlist with
        | Error e -> Error e
        | Ok dc ->
            List.iteri
              (fun i n -> v_prev.(i) <- Dc.node_voltage dc n)
              node_names;
            List.iter
              (fun (e : Element.t) ->
                match e.Element.kind with
                | Element.Capacitor _ ->
                    Hashtbl.replace cap_v_prev e.Element.id
                      (Dc.node_voltage dc e.Element.node_a
                      -. Dc.node_voltage dc e.Element.node_b)
                | Element.Inductor _ ->
                    Hashtbl.replace ind_i_prev e.Element.id
                      (Dc.element_current dc e.Element.id)
                | _ -> ())
              elements;
            Ok ())
  in
  match init_result with
  | Error e -> Error e
  | Ok () ->
      let source_value (e : Element.t) nominal t =
        match List.assoc_opt e.Element.id waveforms with
        | Some w -> w t
        | None -> nominal
      in
      let node_v guess n =
        match node n with Some i -> guess.(i) | None -> 0.0
      in
      let build guess t =
        let a = Numeric.Matrix.create size size in
        let b = Numeric.Vector.create size in
        let stamp_conductance na nb g =
          (match node na with
          | Some i -> Numeric.Matrix.add_to a i i g
          | None -> ());
          (match node nb with
          | Some j -> Numeric.Matrix.add_to a j j g
          | None -> ());
          match (node na, node nb) with
          | Some i, Some j ->
              Numeric.Matrix.add_to a i j (-.g);
              Numeric.Matrix.add_to a j i (-.g)
          | _ -> ()
        in
        let stamp_current_source na nb amps =
          (match node na with
          | Some i -> b.(i) <- b.(i) -. amps
          | None -> ());
          match node nb with
          | Some j -> b.(j) <- b.(j) +. amps
          | None -> ()
        in
        let stamp_voltage_branch e_id na nb volts =
          let k = Hashtbl.find branch_index e_id in
          (match node na with
          | Some i ->
              Numeric.Matrix.add_to a i k 1.0;
              Numeric.Matrix.add_to a k i 1.0
          | None -> ());
          (match node nb with
          | Some j ->
              Numeric.Matrix.add_to a j k (-1.0);
              Numeric.Matrix.add_to a k j (-1.0)
          | None -> ());
          b.(k) <- b.(k) +. volts
        in
        List.iter
          (fun (e : Element.t) ->
            let na = e.Element.node_a and nb = e.Element.node_b in
            match e.Element.kind with
            | Element.Resistor r | Element.Load r ->
                stamp_conductance na nb (1.0 /. r)
            | Element.Switch true ->
                stamp_conductance na nb (1.0 /. closed_switch_resistance)
            | Element.Switch false | Element.Voltage_sensor -> ()
            | Element.Isource amps ->
                stamp_current_source na nb (source_value e amps t)
            | Element.Vsource volts ->
                stamp_voltage_branch e.Element.id na nb (source_value e volts t)
            | Element.Current_sensor ->
                stamp_voltage_branch e.Element.id na nb 0.0
            | Element.Capacitor c ->
                (* Backward Euler: i = C/h (v_n − v_prev). *)
                let g = c /. dt in
                let vp = Hashtbl.find cap_v_prev e.Element.id in
                stamp_conductance na nb g;
                stamp_current_source na nb (-.g *. vp)
            | Element.Inductor l ->
                (* Backward Euler: i_n = i_prev + h/L · v_n. *)
                let g = dt /. l in
                let ip = Hashtbl.find ind_i_prev e.Element.id in
                stamp_conductance na nb g;
                stamp_current_source na nb ip
            | Element.Diode p ->
                let v = node_v guess na -. node_v guess nb in
                let g = Float.max (Dc.diode_conductance p v) 1e-12 in
                let i_eq = Dc.diode_current p v -. (g *. v) in
                stamp_conductance na nb g;
                stamp_current_source na nb i_eq)
          elements;
        for i = 0 to n_nodes - 1 do
          Numeric.Matrix.add_to a i i gmin
        done;
        (a, b)
      in
      let has_diodes =
        List.exists
          (fun (e : Element.t) ->
            match e.Element.kind with Element.Diode _ -> true | _ -> false)
          elements
      in
      let solve_step t =
        let rec newton guess iter =
          if iter > max_iterations then Error (Dc.No_convergence max_iterations)
          else
            let a, b = build guess t in
            match Numeric.Lu.solve a b with
            | exception Numeric.Lu.Singular k ->
                Error
                  (Dc.Singular_system
                     (Printf.sprintf "pivot failure at unknown %d" k))
            | x ->
                if not has_diodes then Ok x
                else begin
                  let reltol = 1e-6 and vntol = 1e-6 in
                  let converged = ref true in
                  for i = 0 to size - 1 do
                    if
                      Float.abs (x.(i) -. guess.(i))
                      > (reltol *. Float.abs x.(i)) +. vntol
                    then converged := false
                  done;
                  if !converged then Ok x else newton x (iter + 1)
                end
        in
        newton (Array.copy v_prev) 0
      in
      (* Trace storage. *)
      let node_traces = Hashtbl.create 16 in
      List.iter
        (fun n -> Hashtbl.add node_traces n (Array.make (steps + 1) 0.0))
        node_names;
      Hashtbl.add node_traces Netlist.ground (Array.make (steps + 1) 0.0);
      let element_traces = Hashtbl.create 16 in
      List.iter
        (fun (e : Element.t) ->
          Hashtbl.add element_traces e.Element.id (Array.make (steps + 1) 0.0))
        elements;
      let sensor_ids =
        List.filter_map
          (fun (e : Element.t) ->
            match e.Element.kind with
            | Element.Current_sensor -> Some (e.Element.id, `Current)
            | Element.Voltage_sensor ->
                Some (e.Element.id, `Voltage (e.Element.node_a, e.Element.node_b))
            | _ -> None)
          elements
      in
      let record step x =
        List.iteri
          (fun i n -> (Hashtbl.find node_traces n).(step) <- x.(i))
          node_names;
        let v n =
          match node n with Some i -> x.(i) | None -> 0.0
        in
        List.iter
          (fun (e : Element.t) ->
            let na = e.Element.node_a and nb = e.Element.node_b in
            let current =
              match e.Element.kind with
              | Element.Resistor r | Element.Load r -> (v na -. v nb) /. r
              | Element.Switch true -> (v na -. v nb) /. closed_switch_resistance
              | Element.Switch false | Element.Voltage_sensor -> 0.0
              | Element.Isource amps -> source_value e amps times.(step)
              | Element.Diode p -> Dc.diode_current p (v na -. v nb)
              | Element.Capacitor c ->
                  let vp = Hashtbl.find cap_v_prev e.Element.id in
                  c /. dt *. (v na -. v nb -. vp)
              | Element.Inductor l ->
                  Hashtbl.find ind_i_prev e.Element.id
                  +. (dt /. l *. (v na -. v nb))
              | Element.Vsource _ | Element.Current_sensor ->
                  x.(Hashtbl.find branch_index e.Element.id)
            in
            (Hashtbl.find element_traces e.Element.id).(step) <- current)
          elements
      in
      let advance_state x =
        List.iter
          (fun (e : Element.t) ->
            let v n = match node n with Some i -> x.(i) | None -> 0.0 in
            match e.Element.kind with
            | Element.Capacitor _ ->
                Hashtbl.replace cap_v_prev e.Element.id
                  (v e.Element.node_a -. v e.Element.node_b)
            | Element.Inductor l ->
                let previous = Hashtbl.find ind_i_prev e.Element.id in
                Hashtbl.replace ind_i_prev e.Element.id
                  (previous
                  +. (dt /. l *. (v e.Element.node_a -. v e.Element.node_b)))
            | _ -> ())
          elements;
        Array.blit x 0 v_prev 0 size
      in
      (* Step 0 records the initial state. *)
      record 0 v_prev;
      let rec run step =
        if step > steps then
          Ok { times; node_traces; element_traces; sensor_ids }
        else
          match solve_step times.(step) with
          | Error e -> Error e
          | Ok x ->
              record step x;
              advance_state x;
              run (step + 1)
      in
      run 1

let times r = r.times

let node_voltage r n = Hashtbl.find r.node_traces n

let element_current r id = Hashtbl.find r.element_traces id

let sensor_trace r id =
  match List.assoc_opt id r.sensor_ids with
  | Some `Current -> Hashtbl.find r.element_traces id
  | Some (`Voltage (na, nb)) ->
      let va = Hashtbl.find r.node_traces na in
      let vb = Hashtbl.find r.node_traces nb in
      Array.init (Array.length va) (fun i -> va.(i) -. vb.(i))
  | None -> raise Not_found

let final_value trace =
  if Array.length trace = 0 then invalid_arg "Transient.final_value: empty";
  trace.(Array.length trace - 1)

let ripple trace =
  let n = Array.length trace in
  if n = 0 then 0.0
  else begin
    let from = n / 2 in
    let lo = ref trace.(from) and hi = ref trace.(from) in
    for i = from to n - 1 do
      lo := Float.min !lo trace.(i);
      hi := Float.max !hi trace.(i)
    done;
    !hi -. !lo
  end

let settling_time ~times trace ~tolerance =
  let final = final_value trace in
  let n = Array.length trace in
  let rec last_violation i =
    if i < 0 then None
    else if Float.abs (trace.(i) -. final) > tolerance then Some i
    else last_violation (i - 1)
  in
  match last_violation (n - 1) with
  | None -> Some times.(0)
  | Some i -> if i + 1 < n then Some times.(i + 1) else None
