(** Transient (time-domain) analysis by backward Euler.

    The paper's SAME invoked Simulink's [simulate()], a time-domain run;
    the DC operating point of {!module:Dc} is the steady state that the
    failure-injection FMEA compares.  This module provides the full
    time-domain capability: reactive elements get their backward-Euler
    companion models (capacitor: [C/h] conductance with a history current
    source; inductor: [h/L] conductance with its previous current), diodes
    are solved by per-step Newton iteration, and sources may be driven by
    waveforms.

    Initial conditions default to the DC operating point, so an unforced
    simulation stays at steady state (tested); interesting runs override
    source waveforms (steps, sine ripple) or start from zero state. *)

type waveform = float -> float
(** Source value as a function of time (seconds). *)

type result

type initial_state =
  | From_dc  (** start at the DC operating point (default) *)
  | Zero_state  (** capacitors discharged, inductors currentless *)

val simulate :
  ?gmin:float ->
  ?max_iterations:int ->
  ?initial:initial_state ->
  ?waveforms:(string * waveform) list ->
  Netlist.t ->
  dt:float ->
  duration:float ->
  (result, Dc.error) Stdlib.result
(** [waveforms] overrides the value of named [Vsource]/[Isource] elements
    per time step; other elements ignore their entry.  Raises
    [Invalid_argument] on non-positive [dt] or [duration]. *)

val times : result -> float array
(** Sample instants, [0; dt; ...; duration]. *)

val node_voltage : result -> string -> float array
(** Raises [Not_found] for unknown nodes. *)

val element_current : result -> string -> float array
(** Raises [Not_found] for unknown elements. *)

val sensor_trace : result -> string -> float array
(** Current sensors report amps, voltage sensors volts.  Raises
    [Not_found] for ids that are not sensors. *)

val final_value : float array -> float
(** Last sample; raises [Invalid_argument] on an empty trace. *)

val ripple : float array -> float
(** Peak-to-peak amplitude over the second half of the trace — the
    steady-state ripple after start-up transients settle. *)

val settling_time :
  times:float array -> float array -> tolerance:float -> float option
(** First instant after which the trace stays within [tolerance] of its
    final value; [None] if it never settles. *)
