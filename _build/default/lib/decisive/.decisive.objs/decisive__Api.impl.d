lib/decisive/api.pp.ml: Assurance Blockdiag Fmea Format Fta List Modelio Optimize Printf Process Ssam String
