lib/decisive/api.pp.mli: Assurance Blockdiag Fmea Optimize Process Reliability Ssam
