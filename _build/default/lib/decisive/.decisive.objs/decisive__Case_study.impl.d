lib/decisive/case_study.pp.ml: Architecture Base Blockdiag Fmea Hazard List Printf Reliability Ssam
