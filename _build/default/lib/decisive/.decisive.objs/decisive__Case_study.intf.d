lib/decisive/case_study.pp.mli: Blockdiag Circuit Fmea Reliability Ssam
