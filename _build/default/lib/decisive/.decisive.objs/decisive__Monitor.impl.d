lib/decisive/monitor.pp.ml: Architecture Base Format List Printf Ssam String
