lib/decisive/monitor.pp.mli: Format Ssam
