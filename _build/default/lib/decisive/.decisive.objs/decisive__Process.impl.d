lib/decisive/process.pp.ml: Fmea Format List Option Ppx_deriving_runtime Ssam
