lib/decisive/process.pp.mli: Format Ppx_deriving_runtime Ssam
