lib/decisive/report.pp.ml: Buffer Fmea Format Fun Hara List Printf Process Reliability Ssam String
