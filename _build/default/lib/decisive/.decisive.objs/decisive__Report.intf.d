lib/decisive/report.pp.mli: Fmea Hara Process Ssam
