lib/decisive/systems.pp.ml: Analyst Blockdiag Circuit Fit Fmea List Printf Reliability Reliability_model Ssam String
