lib/decisive/systems.pp.mli: Analyst Blockdiag Fmea Reliability Ssam
