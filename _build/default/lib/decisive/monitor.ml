open Ssam

type check = {
  check_component : string;
  check_node : string;
  lower : float option;
  upper : float option;
}

type violation = {
  v_component : string;
  v_node : string;
  observed : float;
  bound : [ `Below of float | `Above of float ];
  at : float;
}

type t = { monitor_checks : check list }

let checks_of_component (c : Architecture.component) =
  if not c.Architecture.dynamic then []
  else
    List.filter_map
      (fun (io : Architecture.io_node) ->
        match (io.Architecture.lower_limit, io.Architecture.upper_limit) with
        | None, None -> None
        | lower, upper ->
            Some
              {
                check_component = Architecture.component_id c;
                check_node = io.Architecture.io_meta.Base.id;
                lower;
                upper;
              })
      c.Architecture.io_nodes

let generate_component root =
  let acc = ref [] in
  Architecture.iter_components
    (fun c -> acc := checks_of_component c @ !acc)
    root;
  { monitor_checks = List.rev !acc }

let generate (p : Architecture.package) =
  let acc =
    List.concat_map
      (fun c -> (generate_component c).monitor_checks)
      (Architecture.top_components p)
  in
  { monitor_checks = acc }

let checks t = t.monitor_checks

let observe t ~component ~node ~value ~at =
  let check =
    List.find_opt
      (fun c ->
        String.equal c.check_component component
        && String.equal c.check_node node)
      t.monitor_checks
  in
  match check with
  | None -> None
  | Some c -> (
      match (c.lower, c.upper) with
      | Some lo, _ when value < lo ->
          Some
            {
              v_component = component;
              v_node = node;
              observed = value;
              bound = `Below lo;
              at;
            }
      | _, Some hi when value > hi ->
          Some
            {
              v_component = component;
              v_node = node;
              observed = value;
              bound = `Above hi;
              at;
            }
      | _ -> None)

let observe_all t ~at readings =
  List.filter_map
    (fun (component, node, value) -> observe t ~component ~node ~value ~at)
    readings

let pp_violation ppf v =
  let bound_str =
    match v.bound with
    | `Below lo -> Printf.sprintf "below lower limit %g" lo
    | `Above hi -> Printf.sprintf "above upper limit %g" hi
  in
  Format.fprintf ppf "t=%g %s.%s = %g %s" v.at v.v_component v.v_node
    v.observed bound_str
