(** Runtime monitor generation from SSAM models (the paper's future-work
    item VIII.4: "SSAM can also be converted into a dynamic model ...
    possible to generate facilities to receive runtime data for the
    component in a real time manner").

    Components declared [dynamic] contribute one check per IO node that
    carries limits; feeding observed values to the generated monitor
    yields violation events usable for runtime safety analysis. *)

type check = {
  check_component : string;
  check_node : string;  (** IO node id *)
  lower : float option;
  upper : float option;
}

type violation = {
  v_component : string;
  v_node : string;
  observed : float;
  bound : [ `Below of float | `Above of float ];
  at : float;  (** caller-supplied timestamp *)
}

type t

val generate : Ssam.Architecture.package -> t
(** Checks for every [dynamic] component's limited IO nodes (nested
    components included). *)

val generate_component : Ssam.Architecture.component -> t

val checks : t -> check list

val observe :
  t -> component:string -> node:string -> value:float -> at:float ->
  violation option
(** [None] when the value is in range or the node is unmonitored. *)

val observe_all :
  t -> at:float -> (string * string * float) list -> violation list
(** Batch form: [(component, node, value)] triples. *)

val pp_violation : Format.formatter -> violation -> unit
