type step =
  | Step1_plan
  | Step2_design
  | Step3_reliability
  | Step4a_evaluate
  | Step4b_refine
  | Step5_safety_concept
[@@deriving eq, show]

let step_name = function
  | Step1_plan -> "Step 1 (plan)"
  | Step2_design -> "Step 2 (design)"
  | Step3_reliability -> "Step 3 (reliability data)"
  | Step4a_evaluate -> "Step 4a (evaluate)"
  | Step4b_refine -> "Step 4b (refine)"
  | Step5_safety_concept -> "Step 5 (safety concept)"

type artifact_kind =
  | System_definition
  | Function_requirements
  | Hazard_log
  | Safety_requirements
  | Architectural_design
  | Component_reliability_model
  | Component_safety_analysis_model
  | Architecture_metrics
  | Safety_mechanism_model
  | Safety_concept
[@@deriving eq, show]

type artifact = {
  kind : artifact_kind;
  label : string;
  produced_at_step : step;
  produced_at_iteration : int;
}
[@@deriving eq, show]

type t = {
  process_name : string;
  target_level : Ssam.Requirement.integrity_level;
  iteration : int;
  current : step option;
  produced : artifact list; (* newest first *)
  spfm_history : (int * float) list; (* (iteration, spfm), newest first *)
}

type error =
  | Wrong_order of { current : step option; attempted : step }
  | Missing_prerequisite of { step : step; needs : artifact_kind }
  | Not_acceptably_safe of string
[@@deriving show]

let start ~name ~target =
  {
    process_name = name;
    target_level = target;
    iteration = 1;
    current = None;
    produced = [];
    spfm_history = [];
  }

let name t = t.process_name

let target t = t.target_level

let iteration t = t.iteration

let current_step t = t.current

let artifacts t = List.rev t.produced

let latest t kind =
  List.find_opt (fun a -> equal_artifact_kind a.kind kind) t.produced

let record_spfm t spfm =
  { t with spfm_history = (t.iteration, spfm) :: t.spfm_history }

let latest_spfm t =
  match t.spfm_history with (_, s) :: _ -> Some s | [] -> None

(* Which steps may follow which.  Step 4b loops back to 4a; a new
   iteration (via [iterate]) re-opens Step 2. *)
let may_follow previous attempted =
  match (previous, attempted) with
  | None, Step1_plan -> true
  | Some Step1_plan, Step2_design -> true
  | Some Step2_design, Step3_reliability -> true
  | Some Step3_reliability, Step4a_evaluate -> true
  | Some Step4a_evaluate, (Step4b_refine | Step5_safety_concept) -> true
  | Some Step4b_refine, Step4a_evaluate -> true
  (* Re-running the same analysis step is allowed. *)
  | Some Step4a_evaluate, Step4a_evaluate -> true
  | _ -> false

let prerequisites = function
  | Step1_plan -> []
  | Step2_design -> [ System_definition; Function_requirements; Hazard_log ]
  | Step3_reliability -> [ Architectural_design ]
  | Step4a_evaluate -> [ Architectural_design; Component_reliability_model ]
  | Step4b_refine -> [ Architecture_metrics ]
  | Step5_safety_concept -> [ Architecture_metrics ]

let perform t step ~produces =
  if not (may_follow t.current step) then
    Error (Wrong_order { current = t.current; attempted = step })
  else
    match
      List.find_opt (fun k -> Option.is_none (latest t k)) (prerequisites step)
    with
    | Some needs -> Error (Missing_prerequisite { step; needs })
    | None -> (
        let proceed () =
          let new_artifacts =
            List.map
              (fun (kind, label) ->
                {
                  kind;
                  label;
                  produced_at_step = step;
                  produced_at_iteration = t.iteration;
                })
              produces
          in
          Ok
            {
              t with
              current = Some step;
              produced = List.rev new_artifacts @ t.produced;
            }
        in
        match step with
        | Step5_safety_concept -> (
            match latest_spfm t with
            | None ->
                Error (Not_acceptably_safe "no architecture metrics recorded")
            | Some spfm ->
                if Fmea.Asil.meets ~target:t.target_level ~spfm then proceed ()
                else
                  Error
                    (Not_acceptably_safe
                       (Format.asprintf "%a"
                          (fun ppf () ->
                            Fmea.Asil.pp_verdict ppf ~target:t.target_level ~spfm)
                          ())))
        | Step1_plan | Step2_design | Step3_reliability | Step4a_evaluate
        | Step4b_refine ->
            proceed ())

let iterate t =
  { t with iteration = t.iteration + 1; current = Some Step1_plan }

let is_complete t = Option.is_some (latest t Safety_concept)

let pp_history ppf t =
  Format.fprintf ppf "@[<v>DECISIVE process '%s' (target %s), iteration %d@,"
    t.process_name
    (Ssam.Requirement.integrity_level_to_string t.target_level)
    t.iteration;
  List.iter
    (fun a ->
      Format.fprintf ppf "  it%d %-22s %-32s %s@," a.produced_at_iteration
        (step_name a.produced_at_step)
        (show_artifact_kind a.kind) a.label)
    (artifacts t);
  List.iter
    (fun (it, s) -> Format.fprintf ppf "  it%d SPFM %.2f%%@," it s)
    (List.rev t.spfm_history);
  Format.fprintf ppf "@]"
