(** The DECISIVE workflow engine (Fig. 1).

    Five steps, two swim lanes of artefacts, iterated until the design
    meets its target integrity level.  The engine enforces step ordering
    and artefact prerequisites, and records everything produced — the
    record feeds the MBSA package and the assurance case. *)

type step =
  | Step1_plan
  | Step2_design
  | Step3_reliability
  | Step4a_evaluate
  | Step4b_refine  (** optional, loops back to 4a *)
  | Step5_safety_concept
[@@deriving eq, show]

val step_name : step -> string

type artifact_kind =
  | System_definition
  | Function_requirements
  | Hazard_log
  | Safety_requirements
  | Architectural_design
  | Component_reliability_model
  | Component_safety_analysis_model
  | Architecture_metrics
  | Safety_mechanism_model
  | Safety_concept
[@@deriving eq, show]

type artifact = {
  kind : artifact_kind;
  label : string;
  produced_at_step : step;
  produced_at_iteration : int;
}
[@@deriving eq, show]

type t
(** A process instance (immutable; each transition returns a new value). *)

type error =
  | Wrong_order of { current : step option; attempted : step }
  | Missing_prerequisite of { step : step; needs : artifact_kind }
  | Not_acceptably_safe of string
      (** Step 5 attempted while the latest metrics miss the target *)
[@@deriving show]

val start : name:string -> target:Ssam.Requirement.integrity_level -> t

val name : t -> string

val target : t -> Ssam.Requirement.integrity_level

val iteration : t -> int

val current_step : t -> step option

val artifacts : t -> artifact list

val latest : t -> artifact_kind -> artifact option

val record_spfm : t -> float -> t
(** Attach the SPFM of the latest Step 4a evaluation. *)

val latest_spfm : t -> float option

val perform :
  t -> step -> produces:(artifact_kind * string) list -> (t, error) result
(** Execute a step: checks ordering (1 → 2 → 3 → 4a → (4b → 4a)* → 5) and
    that prerequisite artefacts exist; records the produced artefacts.
    Step 5 additionally requires {!latest_spfm} to meet the target. *)

val iterate : t -> t
(** Start the next DECISIVE iteration (after a design change): the step
    pointer rewinds to allow Step 2 onwards again; artefacts are kept
    (they will be superseded by newer ones of the same kind). *)

val is_complete : t -> bool
(** A Step-5 safety concept exists. *)

val pp_history : Format.formatter -> t -> unit
