type input = {
  system_name : string;
  target : Ssam.Requirement.integrity_level;
  hazard_log : Hara.log option;
  requirements : Ssam.Requirement.requirement list;
  allocation_matrix : Ssam.Allocation.matrix_row list;
  fmeda : Fmea.Table.t;
  deployments : Fmea.Fmeda.deployment list;
  process : Process.t option;
}

let make_input ?hazard_log ?(requirements = []) ?(allocation_matrix = [])
    ?(deployments = []) ?process ~system_name ~target fmeda =
  {
    system_name;
    target;
    hazard_log;
    requirements;
    allocation_matrix;
    fmeda;
    deployments;
    process;
  }

let verdict input =
  Fmea.Asil.meets_all ~target:input.target
    ~spfm:(Fmea.Metrics.spfm input.fmeda)
    ~lfm:(Fmea.Metrics.lfm input.fmeda)
    ~pmhf:(Fmea.Metrics.pmhf_per_hour input.fmeda)

let level_str = Ssam.Requirement.integrity_level_to_string

let markdown_table buf header rows =
  let line cells = Buffer.add_string buf ("| " ^ String.concat " | " cells ^ " |\n") in
  line header;
  line (List.map (fun _ -> "---") header);
  List.iter line rows;
  Buffer.add_char buf '\n'

let to_markdown input =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let spfm = Fmea.Metrics.spfm input.fmeda in
  let latent = Fmea.Metrics.latent input.fmeda in
  let pmhf = Fmea.Metrics.pmhf_per_hour input.fmeda in
  add "# Safety concept: %s\n\n" input.system_name;
  add "Target integrity level: **%s**.  Verdict: **%s**.\n\n" (level_str input.target)
    (if verdict input then "acceptably safe (all architecture metrics met)"
     else "NOT acceptably safe — further refinement required");

  (* Hazard log *)
  (match input.hazard_log with
  | Some log ->
      add "## Hazard analysis and risk assessment\n\n";
      markdown_table buf
        [ "Hazard"; "Severity"; "ASIL" ]
        (List.map
           (fun (e : Hara.assessed) ->
             [
               Ssam.Base.display_name e.Hara.situation.Ssam.Hazard.hs_meta;
               (match e.Hara.situation.Ssam.Hazard.severity with
               | Ssam.Hazard.S0 -> "S0"
               | Ssam.Hazard.S1 -> "S1"
               | Ssam.Hazard.S2 -> "S2"
               | Ssam.Hazard.S3 -> "S3");
               (match e.Hara.asil with Some a -> level_str a | None -> "unassessed");
             ])
           log.Hara.entries)
  | None -> ());

  (* Requirements + allocation *)
  if input.requirements <> [] then begin
    add "## Safety requirements\n\n";
    markdown_table buf
      [ "Id"; "Integrity"; "Requirement"; "Allocated to" ]
      (List.map
         (fun (r : Ssam.Requirement.requirement) ->
           let rid = r.Ssam.Requirement.meta.Ssam.Base.id in
           let allocated =
             match
               List.find_opt
                 (fun (row : Ssam.Allocation.matrix_row) ->
                   String.equal row.Ssam.Allocation.requirement_id rid)
                 input.allocation_matrix
             with
             | Some { Ssam.Allocation.allocated_to = []; _ } | None -> "(unallocated)"
             | Some row -> String.concat ", " row.Ssam.Allocation.allocated_to
           in
           [
             rid;
             (match r.Ssam.Requirement.integrity with
             | Some l -> level_str l
             | None -> "-");
             r.Ssam.Requirement.text;
             allocated;
           ])
         input.requirements)
  end;

  (* FMEDA *)
  add "## FMEDA (Component Safety Analysis)\n\n";
  (match Fmea.Table.to_csv input.fmeda with
  | header :: rows -> markdown_table buf header rows
  | [] -> ());
  let warnings = Fmea.Table.warnings input.fmeda in
  if warnings <> [] then begin
    add "### Analysis warnings\n\n";
    List.iter (fun (c, w) -> add "- **%s**: %s\n" c w) warnings;
    add "\n"
  end;

  (* Metrics *)
  add "## Architecture metrics\n\n";
  let target_cell f =
    match f input.target with
    | Some t -> Printf.sprintf "%g" t
    | None -> "(no target)"
  in
  markdown_table buf
    [ "Metric"; "Value"; "Target"; "Met" ]
    [
      [
        "SPFM";
        Printf.sprintf "%.2f%%" spfm;
        target_cell Fmea.Asil.spfm_target ^ "%";
        (if Fmea.Asil.meets ~target:input.target ~spfm then "yes" else "**no**");
      ];
      [
        "LFM";
        Printf.sprintf "%.2f%%" latent.Fmea.Metrics.lfm_pct;
        target_cell Fmea.Asil.lfm_target ^ "%";
        (match Fmea.Asil.lfm_target input.target with
        | Some t -> if latent.Fmea.Metrics.lfm_pct >= t then "yes" else "**no**"
        | None -> "yes");
      ];
      [
        "PMHF";
        Printf.sprintf "%.3e /h" pmhf;
        (match Fmea.Asil.pmhf_target input.target with
        | Some t -> Printf.sprintf "%.0e /h" t
        | None -> "(no target)");
        (match Fmea.Asil.pmhf_target input.target with
        | Some t -> if pmhf <= t then "yes" else "**no**"
        | None -> "yes");
      ];
    ];

  (* Safety mechanisms *)
  if input.deployments <> [] then begin
    add "## Deployed safety mechanisms\n\n";
    markdown_table buf
      [ "Component"; "Failure mode"; "Mechanism"; "Coverage"; "Cost (h)" ]
      (List.map
         (fun (d : Fmea.Fmeda.deployment) ->
           [
             d.Fmea.Fmeda.target_component;
             d.Fmea.Fmeda.target_failure_mode;
             d.Fmea.Fmeda.mechanism.Reliability.Sm_model.sm_name;
             Printf.sprintf "%g%%" d.Fmea.Fmeda.mechanism.Reliability.Sm_model.coverage_pct;
             Printf.sprintf "%g" d.Fmea.Fmeda.mechanism.Reliability.Sm_model.cost;
           ])
         input.deployments);
    add "Total mechanism cost: %g hours.\n\n" (Fmea.Fmeda.total_cost input.deployments)
  end;

  (* Process history *)
  (match input.process with
  | Some p ->
      add "## DECISIVE process record\n\n";
      add "```\n%s```\n" (Format.asprintf "%a" Process.pp_history p)
  | None -> ());
  Buffer.contents buf

let save ~path input =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_markdown input))
