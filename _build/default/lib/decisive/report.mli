(** Safety-concept report generation (DECISIVE Step 5).

    "Once the system design is deemed acceptably safe, a safety concept
    can be synthesised" — this module renders one as Markdown: system
    overview, hazard log with risk assessment, derived safety
    requirements with their allocations, the FME(D)A table, architecture
    metrics against their targets, deployed safety mechanisms, and the
    process history.  Everything a reviewer needs in one artefact, all
    regenerable. *)

type input = {
  system_name : string;
  target : Ssam.Requirement.integrity_level;
  hazard_log : Hara.log option;
  requirements : Ssam.Requirement.requirement list;
  allocation_matrix : Ssam.Allocation.matrix_row list;
  fmeda : Fmea.Table.t;
  deployments : Fmea.Fmeda.deployment list;
  process : Process.t option;
}

val make_input :
  ?hazard_log:Hara.log ->
  ?requirements:Ssam.Requirement.requirement list ->
  ?allocation_matrix:Ssam.Allocation.matrix_row list ->
  ?deployments:Fmea.Fmeda.deployment list ->
  ?process:Process.t ->
  system_name:string ->
  target:Ssam.Requirement.integrity_level ->
  Fmea.Table.t ->
  input

val to_markdown : input -> string

val save : path:string -> input -> unit

val verdict : input -> bool
(** Whether all three architecture metrics meet the target — the
    "acceptably safe" gate the report's summary states. *)
