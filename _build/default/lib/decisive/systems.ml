open Blockdiag.Diagram

type subject = {
  subject_name : string;
  diagram : Blockdiag.Diagram.t;
  reliability : Reliability.Reliability_model.t;
  safety_mechanisms : Reliability.Sm_model.t;
  target : Ssam.Requirement.integrity_level;
}

(* Pad a diagram to an exact element count with structurally meaningful
   additions: monitor test points (a voltage sensor across the output
   rail: 1 block + 2 connections = 3 elements) and stand-alone scopes
   (1 element). *)
let pad_to ~target ~rail_block ~rail_port ~ground_block d =
  let current = block_count d in
  if current > target then
    invalid_arg
      (Printf.sprintf "pad_to: core of %s already has %d > %d elements"
         d.diagram_name current target);
  let deficit = target - current in
  let test_points = deficit / 3 in
  let singles = deficit mod 3 in
  let tp_blocks =
    List.init test_points (fun i ->
        block
          ~id:(Printf.sprintf "TP%d" (i + 1))
          ~block_type:"voltage_sensor" ())
  in
  let tp_connections =
    List.concat
      (List.init test_points (fun i ->
           let id = Printf.sprintf "TP%d" (i + 1) in
           [
             connect (id, "a") (rail_block, rail_port);
             connect (id, "b") (ground_block, "a");
           ]))
  in
  let single_blocks =
    List.init singles (fun i ->
        block
          ~id:(Printf.sprintf "MON%d" (i + 1))
          ~block_type:"scope"
          ~ports:[ { port_name = "in"; port_kind = In_port } ]
          ())
  in
  {
    d with
    blocks = d.blocks @ tp_blocks @ single_blocks;
    connections = d.connections @ tp_connections;
  }

let ground_port = [ { port_name = "a"; port_kind = Conserving } ]

let system_a_core =
  let b = block in
  diagram ~name:"system_a"
    [
      b ~id:"DC1" ~block_type:"vsource" ~parameters:[ ("volts", P_num 12.0) ] ();
      b ~id:"SW1" ~block_type:"switch" ~parameters:[ ("closed", P_bool true) ] ();
      b ~id:"D1" ~block_type:"diode" ();
      b ~id:"L1" ~block_type:"inductor" ~parameters:[ ("henries", P_num 2e-3) ] ();
      b ~id:"C1" ~block_type:"capacitor" ~parameters:[ ("farads", P_num 2e-5) ] ();
      b ~id:"L2" ~block_type:"inductor" ~parameters:[ ("henries", P_num 1e-3) ] ();
      b ~id:"C2" ~block_type:"capacitor" ~parameters:[ ("farads", P_num 1e-5) ] ();
      b ~id:"CS1" ~block_type:"current_sensor" ();
      b ~id:"MC1" ~block_type:"microcontroller"
        ~parameters:[ ("ohms", P_num 240.0) ]
        ~annotation:"supervisor MCU (annotated subsystem)" ();
      b ~id:"RL1" ~block_type:"load" ~parameters:[ ("ohms", P_num 480.0) ] ();
      b ~id:"VS1" ~block_type:"voltage_sensor" ();
      b ~id:"GND1" ~block_type:"ground" ~ports:ground_port ();
    ]
    ~connections:
      [
        connect ("DC1", "a") ("SW1", "a");
        connect ("SW1", "b") ("D1", "a");
        connect ("D1", "b") ("L1", "a");
        connect ("L1", "b") ("C1", "a");
        connect ("L1", "b") ("L2", "a");
        connect ("L2", "b") ("C2", "a");
        connect ("L2", "b") ("CS1", "a");
        connect ("CS1", "b") ("MC1", "a");
        connect ("L2", "b") ("RL1", "a");
        connect ("L2", "b") ("VS1", "a");
        connect ("DC1", "b") ("GND1", "a");
        connect ("C1", "b") ("GND1", "a");
        connect ("C2", "b") ("GND1", "a");
        connect ("MC1", "b") ("GND1", "a");
        connect ("RL1", "b") ("GND1", "a");
        connect ("VS1", "b") ("GND1", "a");
      ]

let reliability_a =
  let open Reliability in
  List.fold_left Reliability_model.add Reliability_model.table_ii
    [
      {
        Reliability_model.component_type = "switch";
        fit = Fit.of_float 8.0;
        failure_modes =
          [
            {
              Reliability_model.fm_name = "Stuck open";
              distribution_pct = 50.0;
              fault = Some Circuit.Fault.Open_circuit;
              loss_of_function = true;
            };
            {
              Reliability_model.fm_name = "Stuck closed";
              distribution_pct = 50.0;
              fault = Some Circuit.Fault.Short_circuit;
              loss_of_function = false;
            };
          ];
      };
      {
        Reliability_model.component_type = "load";
        fit = Fit.of_float 25.0;
        failure_modes =
          [
            {
              Reliability_model.fm_name = "Open";
              distribution_pct = 60.0;
              fault = Some Circuit.Fault.Open_circuit;
              loss_of_function = true;
            };
            {
              Reliability_model.fm_name = "Short";
              distribution_pct = 40.0;
              fault = Some Circuit.Fault.Short_circuit;
              loss_of_function = false;
            };
          ];
      };
      {
        Reliability_model.component_type = "current_sensor";
        fit = Fit.of_float 12.0;
        failure_modes =
          [
            {
              Reliability_model.fm_name = "Reading loss";
              distribution_pct = 70.0;
              fault = Some Circuit.Fault.Open_circuit;
              loss_of_function = true;
            };
            {
              Reliability_model.fm_name = "Offset drift";
              distribution_pct = 30.0;
              fault = None (* not injectable: analog drift, reviewed manually *);
              loss_of_function = false;
            };
          ];
      };
      {
        Reliability_model.component_type = "voltage_sensor";
        fit = Fit.of_float 9.0;
        failure_modes =
          [
            {
              Reliability_model.fm_name = "Reading loss";
              distribution_pct = 70.0;
              fault = Some Circuit.Fault.Open_circuit;
              loss_of_function = true;
            };
            {
              Reliability_model.fm_name = "Offset drift";
              distribution_pct = 30.0;
              fault = None;
              loss_of_function = false;
            };
          ];
      };
    ]

let system_a =
  {
    subject_name = "System A";
    diagram =
      pad_to ~target:102 ~rail_block:"L2" ~rail_port:"b" ~ground_block:"GND1"
        system_a_core;
    reliability = reliability_a;
    safety_mechanisms = Reliability.Sm_model.extended_catalogue;
    target = Ssam.Requirement.ASIL_B;
  }

(* ---------- System B: AUV main control unit ---------- *)

let sw_ports = [
  { port_name = "in"; port_kind = In_port };
  { port_name = "out"; port_kind = Out_port };
]

let system_b_core =
  let b = block in
  let hw =
    [
      b ~id:"BAT1" ~block_type:"vsource" ~parameters:[ ("volts", P_num 24.0) ] ();
      b ~id:"SW1" ~block_type:"switch" ~parameters:[ ("closed", P_bool true) ] ();
      b ~id:"D1" ~block_type:"diode" ();
      b ~id:"L1" ~block_type:"inductor" ~parameters:[ ("henries", P_num 2e-3) ] ();
      b ~id:"C1" ~block_type:"capacitor" ~parameters:[ ("farads", P_num 4e-5) ] ();
      b ~id:"L2" ~block_type:"inductor" ~parameters:[ ("henries", P_num 1e-3) ] ();
      b ~id:"C2" ~block_type:"capacitor" ~parameters:[ ("farads", P_num 2e-5) ] ();
      b ~id:"CS1" ~block_type:"current_sensor" ();
      b ~id:"MC1" ~block_type:"microcontroller"
        ~parameters:[ ("ohms", P_num 120.0) ]
        ~annotation:"main control MCU (dual-core)" ();
      b ~id:"IMU1" ~block_type:"load" ~parameters:[ ("ohms", P_num 600.0) ] ();
      b ~id:"SONAR1" ~block_type:"load" ~parameters:[ ("ohms", P_num 300.0) ] ();
      b ~id:"GPS1" ~block_type:"load" ~parameters:[ ("ohms", P_num 800.0) ] ();
      b ~id:"CS2" ~block_type:"current_sensor" ();
      b ~id:"THR1" ~block_type:"load" ~parameters:[ ("ohms", P_num 48.0) ] ();
      b ~id:"THR2" ~block_type:"load" ~parameters:[ ("ohms", P_num 48.0) ] ();
      b ~id:"THR3" ~block_type:"load" ~parameters:[ ("ohms", P_num 48.0) ] ();
      b ~id:"THR4" ~block_type:"load" ~parameters:[ ("ohms", P_num 48.0) ] ();
      b ~id:"VS1" ~block_type:"voltage_sensor" ();
      b ~id:"GND1" ~block_type:"ground" ~ports:ground_port ();
    ]
  in
  let hw_connections =
    [
      connect ("BAT1", "a") ("SW1", "a");
      connect ("SW1", "b") ("D1", "a");
      connect ("D1", "b") ("L1", "a");
      connect ("L1", "b") ("C1", "a");
      connect ("L1", "b") ("L2", "a");
      connect ("L2", "b") ("C2", "a");
      connect ("L2", "b") ("CS1", "a");
      connect ("CS1", "b") ("MC1", "a");
      connect ("L2", "b") ("IMU1", "a");
      connect ("L2", "b") ("SONAR1", "a");
      connect ("L2", "b") ("GPS1", "a");
      connect ("L2", "b") ("CS2", "a");
      connect ("CS2", "b") ("THR1", "a");
      connect ("CS2", "b") ("THR2", "a");
      connect ("CS2", "b") ("THR3", "a");
      connect ("CS2", "b") ("THR4", "a");
      connect ("L2", "b") ("VS1", "a");
      connect ("BAT1", "b") ("GND1", "a");
      connect ("C1", "b") ("GND1", "a");
      connect ("C2", "b") ("GND1", "a");
      connect ("MC1", "b") ("GND1", "a");
      connect ("IMU1", "b") ("GND1", "a");
      connect ("SONAR1", "b") ("GND1", "a");
      connect ("GPS1", "b") ("GND1", "a");
      connect ("THR1", "b") ("GND1", "a");
      connect ("THR2", "b") ("GND1", "a");
      connect ("THR3", "b") ("GND1", "a");
      connect ("THR4", "b") ("GND1", "a");
      connect ("VS1", "b") ("GND1", "a");
    ]
  in
  let task id = b ~id ~block_type:"task" ~ports:sw_ports () in
  let software =
    diagram ~name:"control_software"
      [
        task "DRV_IMU";
        task "DRV_SONAR";
        task "DRV_GPS";
        task "FUSION";
        task "NAV";
        task "GUIDANCE";
        task "CTRL";
        task "ALLOC";
        task "DRV_THR";
        task "LOG";
        task "WDT";
        task "HEALTH";
      ]
      ~connections:
        [
          connect ("DRV_IMU", "out") ("FUSION", "in");
          connect ("DRV_SONAR", "out") ("FUSION", "in");
          connect ("DRV_GPS", "out") ("FUSION", "in");
          connect ("FUSION", "out") ("NAV", "in");
          connect ("NAV", "out") ("GUIDANCE", "in");
          connect ("GUIDANCE", "out") ("CTRL", "in");
          connect ("CTRL", "out") ("ALLOC", "in");
          connect ("ALLOC", "out") ("DRV_THR", "in");
          connect ("FUSION", "out") ("LOG", "in");
          connect ("HEALTH", "out") ("WDT", "in");
        ]
  in
  diagram ~name:"system_b" hw ~connections:hw_connections
    ~subsystems:[ software ]

let reliability_b =
  (* System B adds software: task failure rates are design estimates
     (software has no physics FIT; these drive the relative analysis). *)
  Reliability.Reliability_model.add reliability_a
    {
      Reliability.Reliability_model.component_type = "task";
      fit = Reliability.Fit.of_float 50.0;
      failure_modes =
        [
          {
            Reliability.Reliability_model.fm_name = "Crash";
            distribution_pct = 60.0;
            fault = Some Circuit.Fault.Open_circuit;
            loss_of_function = true;
          };
          {
            Reliability.Reliability_model.fm_name = "Hang";
            distribution_pct = 40.0;
            fault = Some Circuit.Fault.Open_circuit;
            loss_of_function = true;
          };
        ];
    }

let system_b =
  {
    subject_name = "System B";
    diagram =
      pad_to ~target:230 ~rail_block:"L2" ~rail_port:"b" ~ground_block:"GND1"
        system_b_core;
    reliability = reliability_b;
    safety_mechanisms = Reliability.Sm_model.extended_catalogue;
    target = Ssam.Requirement.ASIL_B;
  }

let element_count s = block_count s.diagram

let analysable s = Blockdiag.To_netlist.convert s.diagram

let automated_fmea s =
  let conversion = analysable s in
  let options =
    {
      Fmea.Injection_fmea.default_options with
      exclude = [ "DC1"; "BAT1" ] (* assume the supply is stable *);
      (* Only the designated safety observations count; the padded TPn
         blocks are debug test points. *)
      monitored_sensors = Some [ "CS1"; "CS2"; "VS1" ];
    }
  in
  Fmea.Injection_fmea.analyse ~options
    ~element_types:conversion.Blockdiag.To_netlist.block_types
    conversion.Blockdiag.To_netlist.netlist s.reliability

let ssam_model s =
  let package =
    Blockdiag.Transform.aggregate_reliability s.reliability
      (Blockdiag.Transform.to_ssam s.diagram)
  in
  Ssam.Model.create ~component_packages:[ package ]
    ~meta:(Ssam.Base.meta ~name:s.subject_name ("model:" ^ s.subject_name))
    ()

let analyst_profile s =
  Analyst.Process.profile_of_table ~name:s.subject_name
    ~element_count:(element_count s) (automated_fmea s)

(* The software control function of System B: the sensor-driver →
   fusion → navigation → guidance → control → allocation → thruster-driver
   chain, analysed by Algorithm 1.  Sensor drivers are alternative inputs
   (any one suffices for degraded operation); the actuation driver is the
   single output. *)
let software_fmea s =
  match s.diagram.Blockdiag.Diagram.subsystems with
  | [] -> invalid_arg "software_fmea: subject has no software subsystem"
  | sw :: _ ->
      let package =
        Blockdiag.Transform.aggregate_reliability s.reliability
          (Blockdiag.Transform.to_ssam sw)
      in
      let children = Ssam.Architecture.top_components package in
      let root_id = "SW" in
      let k = ref 0 in
      let conn a b =
        incr k;
        Ssam.Architecture.relationship
          ~meta:(Ssam.Base.meta (Printf.sprintf "SW:conn:%d" !k))
          ~from_component:a ~to_component:b ()
      in
      let boundary =
        List.filter_map
          (fun (b : Blockdiag.Diagram.block) ->
            let id = b.Blockdiag.Diagram.block_id in
            if String.length id >= 4 && String.sub id 0 4 = "DRV_" then
              if String.equal id "DRV_THR" then Some (conn id root_id)
              else Some (conn root_id id)
            else None)
          sw.Blockdiag.Diagram.blocks
      in
      let internal =
        List.map
          (fun (c : Blockdiag.Diagram.connection) ->
            conn c.Blockdiag.Diagram.from_ep.Blockdiag.Diagram.ep_block
              c.Blockdiag.Diagram.to_ep.Blockdiag.Diagram.ep_block)
          sw.Blockdiag.Diagram.connections
      in
      let root =
        Ssam.Architecture.component ~component_type:Ssam.Architecture.System
          ~children
          ~connections:(boundary @ internal)
          ~meta:(Ssam.Base.meta ~name:"control software" root_id)
          ()
      in
      Fmea.Path_fmea.analyse root
