(** The evaluation subjects of Sec. VI.

    The paper's two industrial systems are under IP and cannot be
    published; these generators build synthetic stand-ins with the same
    published characteristics — System A, a sensor power supply with
    {b 102} design elements; System B, the main control unit (hardware
    and software) of an autonomous underwater vehicle with {b 230}
    elements — using the same block vocabulary as the case study, so they
    exercise the same analysis paths.  Element counts are exact
    ({!Blockdiag.Diagram.block_count}) and asserted by tests. *)

type subject = {
  subject_name : string;
  diagram : Blockdiag.Diagram.t;
  reliability : Reliability.Reliability_model.t;
  safety_mechanisms : Reliability.Sm_model.t;
  target : Ssam.Requirement.integrity_level;
}

val system_a : subject
(** Sensor power supply, 102 elements: dual-stage filtered rail with
    protection, redundancy on the sense path and monitor test points. *)

val system_b : subject
(** AUV main control unit, 230 elements: power conditioning + MCU +
    sensor/actuator loads on the hardware side; a software task pipeline
    (drivers → fusion → navigation → control → actuation) on the software
    side. *)

val element_count : subject -> int

val analysable : subject -> Blockdiag.To_netlist.result

val automated_fmea : subject -> Fmea.Table.t
(** The SAME route: netlist extraction + injection FMEA with the subject's
    reliability model. *)

val ssam_model : subject -> Ssam.Model.t
(** Transformed + reliability-aggregated SSAM model of the subject. *)

val analyst_profile : subject -> Analyst.Process.system_profile
(** Inputs for the efficiency study (Table V). *)

val software_fmea : subject -> Fmea.Table.t
(** Algorithm 1 on the subject's software task pipeline (the
    sensor-driver → fusion → navigation → guidance → control → allocation
    → actuation chain): tasks on every path of the control function are
    single points; redundant sensor drivers are not.  Raises
    [Invalid_argument] for subjects without a software subsystem
    (System A). *)
