lib/fmea/asil.pp.ml: Format Requirement Ssam
