lib/fmea/asil.pp.mli: Format Ssam
