lib/fmea/degradation.pp.ml: Circuit Float Format List Ppx_deriving_runtime Reliability String
