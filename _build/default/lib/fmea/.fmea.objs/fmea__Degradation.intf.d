lib/fmea/degradation.pp.mli: Circuit Format Ppx_deriving_runtime Reliability
