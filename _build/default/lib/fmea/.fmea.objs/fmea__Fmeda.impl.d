lib/fmea/fmeda.pp.ml: List Option Ppx_deriving_runtime Reliability String Table
