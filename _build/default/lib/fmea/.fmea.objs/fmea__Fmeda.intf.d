lib/fmea/fmeda.pp.mli: Ppx_deriving_runtime Reliability Table
