lib/fmea/injection_fmea.pp.ml: Circuit Float Format List Printf Reliability String Table
