lib/fmea/injection_fmea.pp.mli: Circuit Reliability Table
