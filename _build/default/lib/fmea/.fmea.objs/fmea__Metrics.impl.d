lib/fmea/metrics.pp.ml: Format List Reliability String Table
