lib/fmea/metrics.pp.mli: Format Table
