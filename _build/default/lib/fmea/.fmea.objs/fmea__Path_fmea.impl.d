lib/fmea/path_fmea.pp.ml: Architecture Base List Printf Ssam String Table
