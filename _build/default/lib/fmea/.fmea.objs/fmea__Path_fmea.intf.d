lib/fmea/path_fmea.pp.mli: Ssam Table
