lib/fmea/table.pp.ml: Format Int List Modelio Option Ppx_deriving_runtime Printf Reliability String
