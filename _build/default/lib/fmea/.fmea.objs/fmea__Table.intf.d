lib/fmea/table.pp.mli: Format Modelio Ppx_deriving_runtime
