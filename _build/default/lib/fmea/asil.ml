open Ssam

let spfm_target = function
  | Requirement.ASIL_B -> Some 90.0
  | Requirement.ASIL_C -> Some 97.0
  | Requirement.ASIL_D -> Some 99.0
  | Requirement.QM | Requirement.ASIL_A | Requirement.SIL _ -> None

let meets ~target ~spfm =
  match spfm_target target with None -> true | Some t -> spfm >= t

let achieved ~spfm =
  if spfm >= 99.0 then Requirement.ASIL_D
  else if spfm >= 97.0 then Requirement.ASIL_C
  else if spfm >= 90.0 then Requirement.ASIL_B
  else Requirement.ASIL_A

let lfm_target = function
  | Requirement.ASIL_B -> Some 60.0
  | Requirement.ASIL_C -> Some 80.0
  | Requirement.ASIL_D -> Some 90.0
  | Requirement.QM | Requirement.ASIL_A | Requirement.SIL _ -> None

let pmhf_target = function
  | Requirement.ASIL_B | Requirement.ASIL_C -> Some 1e-7
  | Requirement.ASIL_D -> Some 1e-8
  | Requirement.QM | Requirement.ASIL_A | Requirement.SIL _ -> None

let meets_all ~target ~spfm ~lfm ~pmhf =
  meets ~target ~spfm
  && (match lfm_target target with None -> true | Some t -> lfm >= t)
  && match pmhf_target target with None -> true | Some t -> pmhf <= t

let pp_verdict ppf ~target ~spfm =
  match spfm_target target with
  | None ->
      Format.fprintf ppf "SPFM %.2f%% — %s sets no SPFM target" spfm
        (Requirement.integrity_level_to_string target)
  | Some t ->
      Format.fprintf ppf "SPFM %.2f%% — %s %s (target ≥ %g%%)" spfm
        (if spfm >= t then "meets" else "FAILS")
        (Requirement.integrity_level_to_string target)
        t
