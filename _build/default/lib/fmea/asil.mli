(** ASIL targets for architecture metrics (ISO 26262 Part 5).

    SPFM targets: ASIL-B ≥ 90 %, ASIL-C ≥ 97 %, ASIL-D ≥ 99 %.  ASIL-A
    and QM set no SPFM target. *)

val spfm_target : Ssam.Requirement.integrity_level -> float option
(** [None] for QM / ASIL-A / SILs (IEC 61508 uses different metrics); the
    percentage otherwise. *)

val meets : target:Ssam.Requirement.integrity_level -> spfm:float -> bool
(** Levels without a target are always met. *)

val achieved : spfm:float -> Ssam.Requirement.integrity_level
(** Highest ASIL whose SPFM target the value meets: ≥99 → ASIL-D,
    ≥97 → ASIL-C, ≥90 → ASIL-B, otherwise ASIL-A (no SPFM floor). *)

val pp_verdict :
  Format.formatter -> target:Ssam.Requirement.integrity_level -> spfm:float -> unit
(** e.g. ["SPFM 96.77% — meets ASIL-B (target ≥ 90%)"]. *)

(** {1 Companion metric targets (ISO 26262 Part 5)} *)

val lfm_target : Ssam.Requirement.integrity_level -> float option
(** Latent Fault Metric targets: ASIL-B ≥ 60 %, C ≥ 80 %, D ≥ 90 %. *)

val pmhf_target : Ssam.Requirement.integrity_level -> float option
(** PMHF ceilings in failures/hour: ASIL-B and C ≤ 1e-7, D ≤ 1e-8. *)

val meets_all :
  target:Ssam.Requirement.integrity_level ->
  spfm:float ->
  lfm:float ->
  pmhf:float ->
  bool
(** All three architecture metrics against their targets (absent targets
    are vacuously met). *)
