type options = {
  disturbance_source : string;
  disturbance_amplitude : float;
  disturbance_hz : float;
  dt : float;
  duration : float;
  ripple_factor : float;
  exclude : string list;
  monitored_sensors : string list option;
}

let default_options ~disturbance_source =
  {
    disturbance_source;
    disturbance_amplitude = 0.3;
    disturbance_hz = 5000.0;
    dt = 1e-6;
    duration = 5e-3;
    ripple_factor = 2.0;
    exclude = [];
    monitored_sensors = None;
  }

type finding = {
  component : string;
  failure_mode : string;
  sensor : string;
  golden_ripple : float;
  faulty_ripple : float;
  ratio : float;
}
[@@deriving show]

exception Golden_transient_failed of string

let nominal_of netlist id =
  match Circuit.Netlist.find netlist id with
  | Some { Circuit.Element.kind = Circuit.Element.Vsource v; _ } -> v
  | Some { Circuit.Element.kind = Circuit.Element.Isource i; _ } -> i
  | Some _ | None -> 0.0

let sensor_ids options netlist =
  let all =
    List.filter_map
      (fun (e : Circuit.Element.t) ->
        match e.Circuit.Element.kind with
        | Circuit.Element.Current_sensor | Circuit.Element.Voltage_sensor ->
            Some e.Circuit.Element.id
        | _ -> None)
      (Circuit.Netlist.elements netlist)
  in
  match options.monitored_sensors with
  | None -> all
  | Some ids -> List.filter (fun id -> List.exists (String.equal id) ids) all

let run options netlist =
  let nominal = nominal_of netlist options.disturbance_source in
  let wave t =
    nominal
    +. options.disturbance_amplitude
       *. sin (2.0 *. Float.pi *. options.disturbance_hz *. t)
  in
  Circuit.Transient.simulate
    ~waveforms:[ (options.disturbance_source, wave) ]
    netlist ~dt:options.dt ~duration:options.duration

let analyse ?(element_types = []) ~options netlist reliability =
  let golden =
    match run options netlist with
    | Ok r -> r
    | Error e ->
        raise (Golden_transient_failed (Format.asprintf "%a" Circuit.Dc.pp_error e))
  in
  let sensors = sensor_ids options netlist in
  let golden_traces =
    List.map (fun id -> (id, Circuit.Transient.sensor_trace golden id)) sensors
  in
  let type_of (e : Circuit.Element.t) =
    match List.assoc_opt e.Circuit.Element.id element_types with
    | Some t -> t
    | None -> Circuit.Element.kind_name e.Circuit.Element.kind
  in
  List.concat_map
    (fun (e : Circuit.Element.t) ->
      let id = e.Circuit.Element.id in
      if
        List.exists (String.equal id) options.exclude
        || String.equal id options.disturbance_source
      then []
      else
        match Reliability.Reliability_model.find reliability (type_of e) with
        | None -> []
        | Some entry ->
            List.concat_map
              (fun (fm : Reliability.Reliability_model.failure_mode) ->
                match fm.Reliability.Reliability_model.fault with
                | None -> []
                | Some fault -> (
                    match Circuit.Fault.inject netlist ~element_id:id fault with
                    | exception Circuit.Fault.Not_applicable _ -> []
                    | faulted -> (
                        match run options faulted with
                        | Error _ -> []
                        | Ok faulty ->
                            List.filter_map
                              (fun (sensor, golden_trace) ->
                                match
                                  Circuit.Transient.sensor_trace faulty sensor
                                with
                                | exception Not_found -> None
                                | faulty_trace ->
                                    let golden_final =
                                      Circuit.Transient.final_value golden_trace
                                    in
                                    let faulty_final =
                                      Circuit.Transient.final_value faulty_trace
                                    in
                                    let dc_shift =
                                      Float.abs (faulty_final -. golden_final)
                                      /. Float.max (Float.abs golden_final) 1e-9
                                    in
                                    (* DC-visible failures are Injection_fmea's
                                       business; only pure degradations here. *)
                                    if dc_shift > 0.2 then None
                                    else begin
                                      let golden_ripple =
                                        Circuit.Transient.ripple golden_trace
                                      in
                                      let faulty_ripple =
                                        Circuit.Transient.ripple faulty_trace
                                      in
                                      let ratio =
                                        faulty_ripple
                                        /. Float.max golden_ripple 1e-12
                                      in
                                      if ratio > options.ripple_factor then
                                        Some
                                          {
                                            component = id;
                                            failure_mode =
                                              fm.Reliability.Reliability_model.fm_name;
                                            sensor;
                                            golden_ripple;
                                            faulty_ripple;
                                            ratio;
                                          }
                                      else None
                                    end)
                              golden_traces)))
              entry.Reliability.Reliability_model.failure_modes)
    (Circuit.Netlist.elements netlist)

let pp_findings ppf findings =
  Format.fprintf ppf "@[<v>";
  if findings = [] then Format.fprintf ppf "no degradation findings@,"
  else
    List.iter
      (fun f ->
        Format.fprintf ppf
          "%s/%s degrades %s: ripple %.3g -> %.3g (x%.1f)@," f.component
          f.failure_mode f.sensor f.golden_ripple f.faulty_ripple f.ratio)
      findings;
  Format.fprintf ppf "@]"
