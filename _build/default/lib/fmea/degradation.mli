(** Time-domain degradation analysis — the complement to the DC
    failure-injection FMEA.

    The DC analysis of {!Injection_fmea} classifies failure modes by
    their *steady-state* effect on the safety observation; failures that
    only degrade dynamic behaviour (a filter capacitor opening, say) are
    invisible to it — the paper's Table IV rightly reports them as not
    safety-related.  This analysis injects the same faults, drives a
    source with a disturbance waveform through the transient engine, and
    compares each monitored sensor's ripple against the golden run.

    The output is a set of *degradation findings*, not safety verdicts:
    a degraded-but-functional design is a quality/robustness concern for
    the next DECISIVE iteration, exactly the kind of input Step 2 takes. *)

type options = {
  disturbance_source : string;  (** element id of the source to perturb *)
  disturbance_amplitude : float;  (** volts (or amps for current sources) *)
  disturbance_hz : float;
  dt : float;
  duration : float;
  ripple_factor : float;
      (** flag when faulty ripple exceeds this multiple of golden (default 2.0) *)
  exclude : string list;
  monitored_sensors : string list option;
}

val default_options : disturbance_source:string -> options
(** 0.3 amplitude at 5 kHz (above the case study's LC cutoff, where the
    filter actually earns its keep), dt 1 µs, 5 ms duration, factor 2. *)

type finding = {
  component : string;
  failure_mode : string;
  sensor : string;
  golden_ripple : float;
  faulty_ripple : float;
  ratio : float;
}
[@@deriving show]

exception Golden_transient_failed of string

val analyse :
  ?element_types:(string * string) list ->
  options:options ->
  Circuit.Netlist.t ->
  Reliability.Reliability_model.t ->
  finding list
(** One finding per (failure mode, sensor) whose ripple grows beyond the
    factor.  Faults whose runs fail to simulate, and failure modes the DC
    analysis would already flag (the observation collapses rather than
    ripples — final value shifted by more than 20 %), are skipped: this
    analysis reports *pure* degradations. *)

val pp_findings : Format.formatter -> finding list -> unit
