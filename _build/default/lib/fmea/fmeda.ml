type deployment = {
  target_component : string;
  target_failure_mode : string;
  mechanism : Reliability.Sm_model.mechanism;
}
[@@deriving eq, show]

let deploy ~component ~failure_mode mechanism =
  { target_component = component; target_failure_mode = failure_mode; mechanism }

let matches (d : deployment) (r : Table.row) =
  String.equal
    (String.lowercase_ascii d.target_component)
    (String.lowercase_ascii r.Table.component)
  && String.equal
       (String.lowercase_ascii d.target_failure_mode)
       (String.lowercase_ascii r.Table.failure_mode)

let apply (t : Table.t) deployments =
  let rows =
    List.map
      (fun (r : Table.row) ->
        let best =
          List.fold_left
            (fun acc d ->
              if matches d r then
                match acc with
                | Some (b : deployment)
                  when b.mechanism.Reliability.Sm_model.coverage_pct
                       >= d.mechanism.Reliability.Sm_model.coverage_pct ->
                    acc
                | Some _ | None -> Some d
              else acc)
            None deployments
        in
        match best with
        | None -> r
        | Some d ->
            Table.make_row ~impact:r.Table.impact
              ~safety_mechanism:d.mechanism.Reliability.Sm_model.sm_name
              ~sm_coverage_pct:d.mechanism.Reliability.Sm_model.coverage_pct
              ?warning:r.Table.warning ~component:r.Table.component
              ~component_fit:r.Table.component_fit
              ~failure_mode:r.Table.failure_mode
              ~distribution_pct:r.Table.distribution_pct
              ~safety_related:r.Table.safety_related ())
      t.Table.rows
  in
  { t with Table.rows }

let total_cost deployments =
  List.fold_left
    (fun acc d -> acc +. d.mechanism.Reliability.Sm_model.cost)
    0.0 deployments

let auto_deploy ?(component_types = []) (t : Table.t) sm_model =
  List.filter_map
    (fun (r : Table.row) ->
      if not r.Table.safety_related then None
      else
        let ctype =
          match List.assoc_opt r.Table.component component_types with
          | Some ty -> ty
          | None -> r.Table.component
        in
        let candidates =
          Reliability.Sm_model.applicable sm_model ~component_type:ctype
            ~failure_mode:r.Table.failure_mode
        in
        let best =
          List.fold_left
            (fun acc (m : Reliability.Sm_model.mechanism) ->
              match acc with
              | None -> Some m
              | Some (b : Reliability.Sm_model.mechanism) ->
                  if
                    m.Reliability.Sm_model.coverage_pct
                    > b.Reliability.Sm_model.coverage_pct
                    || (m.Reliability.Sm_model.coverage_pct
                        = b.Reliability.Sm_model.coverage_pct
                       && m.Reliability.Sm_model.cost < b.Reliability.Sm_model.cost)
                  then Some m
                  else acc)
            None candidates
        in
        Option.map
          (fun m ->
            deploy ~component:r.Table.component ~failure_mode:r.Table.failure_mode
              m)
          best)
    t.Table.rows
