(** FMEDA — FMEA with diagnostic analysis (DECISIVE Step 4b).

    Takes an FMEA table and a set of safety-mechanism deployments and
    produces the FMEDA table: covered rows carry the mechanism, its
    diagnostic coverage and the residual single-point failure rate
    (paper Table IV). *)

type deployment = {
  target_component : string;  (** component id in the FMEA table *)
  target_failure_mode : string;  (** failure-mode name, case-insensitive *)
  mechanism : Reliability.Sm_model.mechanism;
}
[@@deriving eq, show]

val deploy :
  component:string ->
  failure_mode:string ->
  Reliability.Sm_model.mechanism ->
  deployment

val apply : Table.t -> deployment list -> Table.t
(** Rows matched by (component, failure mode) get the mechanism attached
    and their [single_point_fit] recomputed under its coverage.  Multiple
    deployments on the same row: the highest-coverage one wins (the others
    are ignored — coverages do not stack).  Deployments matching no row
    are ignored. *)

val total_cost : deployment list -> float

val auto_deploy :
  ?component_types:(string * string) list ->
  Table.t ->
  Reliability.Sm_model.t ->
  deployment list
(** For every safety-related row, pick the applicable mechanism with the
    highest coverage (ties: cheapest).  [component_types] maps component
    ids to catalogue types for the SM lookup (defaults to the component id
    itself, which works when ids are type names). *)
