type breakdown = {
  safety_related_fit : float;
  single_point_fit : float;
  spfm_pct : float;
  per_component : (string * float * float) list;
}

let compute (t : Table.t) =
  let sr_components = Table.safety_related_components t in
  let per_component =
    List.map
      (fun c ->
        let rows = Table.rows_for t c in
        let fit =
          match rows with
          | r :: _ -> r.Table.component_fit
          | [] -> 0.0
        in
        let spf =
          List.fold_left (fun acc r -> acc +. r.Table.single_point_fit) 0.0 rows
        in
        (c, fit, spf))
      sr_components
  in
  let safety_related_fit =
    List.fold_left (fun acc (_, fit, _) -> acc +. fit) 0.0 per_component
  in
  let single_point_fit =
    List.fold_left (fun acc (_, _, spf) -> acc +. spf) 0.0 per_component
  in
  let spfm_pct =
    if safety_related_fit <= 0.0 then 100.0
    else 100.0 *. (1.0 -. (single_point_fit /. safety_related_fit))
  in
  { safety_related_fit; single_point_fit; spfm_pct; per_component }

let spfm t = (compute t).spfm_pct

let pp_breakdown ppf b =
  Format.fprintf ppf "@[<v>SPFM = %.2f%%  (λ_SPF %.4g FIT / λ %.4g FIT)@,"
    b.spfm_pct b.single_point_fit b.safety_related_fit;
  List.iter
    (fun (c, fit, spf) ->
      Format.fprintf ppf "  %-12s λ = %8.4g FIT   λ_SPF = %8.4g FIT@," c fit spf)
    b.per_component;
  Format.fprintf ppf "@]"

let residual_total_fit (t : Table.t) =
  List.fold_left (fun acc r -> acc +. r.Table.single_point_fit) 0.0 t.Table.rows

type latent_breakdown = {
  multipoint_fit : float;
  latent_fit : float;
  lfm_pct : float;
}

let latent (t : Table.t) =
  let sr_components = Table.safety_related_components t in
  let multipoint = ref 0.0 in
  let latent_fit = ref 0.0 in
  List.iter
    (fun (r : Table.row) ->
      if List.exists (String.equal r.Table.component) sr_components then begin
        let lambda_fm =
          Reliability.Fit.share r.Table.component_fit
            ~distribution_pct:r.Table.distribution_pct
        in
        if r.Table.safety_related then
          (* The diagnostic-covered share is a detected multi-point fault;
             the residual is single-point and does not count here. *)
          multipoint := !multipoint +. (lambda_fm -. r.Table.single_point_fit)
        else begin
          multipoint := !multipoint +. lambda_fm;
          let covered =
            match r.Table.sm_coverage_pct with
            | Some cov -> lambda_fm *. cov /. 100.0
            | None -> 0.0
          in
          latent_fit := !latent_fit +. (lambda_fm -. covered)
        end
      end)
    t.Table.rows;
  let lfm_pct =
    if !multipoint <= 0.0 then 100.0
    else 100.0 *. (1.0 -. (!latent_fit /. !multipoint))
  in
  { multipoint_fit = !multipoint; latent_fit = !latent_fit; lfm_pct }

let lfm t = (latent t).lfm_pct

let pmhf_per_hour (t : Table.t) =
  (compute t).single_point_fit *. 1e-9
