(** Architecture metrics from FME(D)A tables — SPFM (paper Eq. 1) and the
    residual-rate summary.

    {v SPFM = 1 - (Σ_SR_HW λ_SPF) / (Σ_SR_HW λ) v}

    where the sums range over *safety-related hardware* (components with at
    least one safety-related failure mode), λ is the component's total
    failure rate and λ_SPF the rate of its failure modes that cause single
    point faults, after diagnostic coverage. *)

type breakdown = {
  safety_related_fit : float;  (** Σ λ over safety-related components *)
  single_point_fit : float;  (** Σ λ_SPF, after coverage *)
  spfm_pct : float;  (** in percent; 100 when there is no safety-related HW *)
  per_component : (string * float * float) list;
      (** (component, λ, λ_SPF) for each safety-related component *)
}

val spfm : Table.t -> float
(** SPFM in percent. *)

val compute : Table.t -> breakdown

val pp_breakdown : Format.formatter -> breakdown -> unit

val residual_total_fit : Table.t -> float
(** Σ single-point FIT over the whole table — the quantity Step 4b drives
    down. *)

(** {1 Companion metrics (ISO 26262 Part 5)}

    The paper computes SPFM; a production FMEDA also reports the Latent
    Fault Metric and the Probabilistic Metric for random Hardware
    Failures.  Mapping from the table rows (documented here because the
    table does not carry the full ISO fault taxonomy):

    - safety-related rows split into residual faults
      ([single_point_fit], violates the goal undetected) and detected
      multi-point faults (the diagnostic-covered share);
    - non-safety-related rows of safety-related components are latent
      multi-point candidates: their covered share is detected, the rest
      is latent;
    - components with no safety-related row contribute nothing (their
      faults are safe with respect to the goal). *)

type latent_breakdown = {
  multipoint_fit : float;  (** Σ (λ − λ_SPF) over safety-related components *)
  latent_fit : float;  (** Σ undetected multi-point FIT *)
  lfm_pct : float;  (** 100 when there are no multi-point faults *)
}

val latent : Table.t -> latent_breakdown

val lfm : Table.t -> float
(** Latent Fault Metric in percent: [1 - latent / multipoint]. *)

val pmhf_per_hour : Table.t -> float
(** Probabilistic Metric for random Hardware Failures: the residual
    single-point failure rate in failures/hour (Σ λ_SPF × 1e-9). *)
