type row = {
  component : string;
  component_fit : float;
  failure_mode : string;
  distribution_pct : float;
  safety_related : bool;
  impact : string;
  safety_mechanism : string option;
  sm_coverage_pct : float option;
  single_point_fit : float;
  warning : string option;
}
[@@deriving eq, show]

type t = { system_name : string; rows : row list } [@@deriving eq, show]

let make_row ?(impact = "") ?safety_mechanism ?sm_coverage_pct ?warning
    ~component ~component_fit ~failure_mode ~distribution_pct ~safety_related ()
    =
  let single_point_fit =
    if safety_related then
      let share = Reliability.Fit.share component_fit ~distribution_pct in
      match sm_coverage_pct with
      | Some cov -> Reliability.Fit.residual share ~coverage_pct:cov
      | None -> share
    else 0.0
  in
  {
    component;
    component_fit;
    failure_mode;
    distribution_pct;
    safety_related;
    impact;
    safety_mechanism;
    sm_coverage_pct;
    single_point_fit;
    warning;
  }

let components t =
  List.fold_left
    (fun acc r -> if List.mem r.component acc then acc else r.component :: acc)
    [] t.rows
  |> List.rev

let safety_related_components t =
  List.fold_left
    (fun acc r ->
      if r.safety_related && not (List.mem r.component acc) then
        r.component :: acc
      else acc)
    [] t.rows
  |> List.rev

let rows_for t component =
  List.filter (fun r -> String.equal r.component component) t.rows

let warnings t =
  List.filter_map
    (fun r -> Option.map (fun w -> (r.component, w)) r.warning)
    t.rows

let header =
  [
    "Component";
    "FIT";
    "Safety_Related";
    "Failure_Mode";
    "Distribution";
    "Safety_Mechanism";
    "SM_Coverage";
    "Single_Point_Failure_Rate";
  ]

let to_csv ?(repeat_component_cells = false) t =
  let row_cells prev r =
    let first_of_component = repeat_component_cells || prev <> Some r.component in
    [
      (if first_of_component then r.component else "");
      (if first_of_component then Printf.sprintf "%g" r.component_fit else "");
      (if r.safety_related then "Yes" else "No");
      r.failure_mode;
      Printf.sprintf "%g%%" r.distribution_pct;
      Option.value ~default:"No SM" r.safety_mechanism;
      (match r.sm_coverage_pct with
      | Some c -> Printf.sprintf "%g%%" c
      | None -> "");
      (if r.safety_related then Printf.sprintf "%g FIT" r.single_point_fit
       else "");
    ]
  in
  let _, rows =
    List.fold_left
      (fun (prev, acc) r -> (Some r.component, row_cells prev r :: acc))
      (None, []) t.rows
  in
  header :: List.rev rows

let to_spreadsheet t = Modelio.Spreadsheet.of_csv ~name:t.system_name (to_csv t)

let pp ppf t =
  let csv = to_csv t in
  let widths =
    List.fold_left
      (fun ws row ->
        List.mapi
          (fun i cell ->
            let prev = List.nth_opt ws i |> Option.value ~default:0 in
            Int.max prev (String.length cell))
          row)
      (List.map (fun _ -> 0) header)
      csv
  in
  let pad s w = s ^ String.make (w - String.length s) ' ' in
  Format.fprintf ppf "@[<v>FMEDA: %s@," t.system_name;
  List.iteri
    (fun i row ->
      Format.fprintf ppf "| %s |@,"
        (String.concat " | " (List.map2 pad row widths));
      if i = 0 then
        Format.fprintf ppf "|%s|@,"
          (String.concat "+"
             (List.map (fun w -> String.make (w + 2) '-') widths)))
    csv;
  let ws = warnings t in
  if ws <> [] then begin
    Format.fprintf ppf "warnings:@,";
    List.iter (fun (c, w) -> Format.fprintf ppf "  %s: %s@," c w) ws
  end;
  Format.fprintf ppf "@]"

let merge_sensitivity ~golden ~other =
  let key r = (String.lowercase_ascii r.component, String.lowercase_ascii r.failure_mode) in
  let other_map =
    List.map (fun r -> (key r, (r.safety_related, r.impact))) other.rows
  in
  let total = ref 0 and diff = ref 0 in
  List.iter
    (fun r ->
      incr total;
      match List.assoc_opt (key r) other_map with
      | Some (sr, impact) ->
          (* A row disagrees when either the safety-related verdict or the
             judged effect differs — FMEA results comprise both, and the
             paper attributes the observed differences to differing
             "opinions on the effects of failing components". *)
          if sr <> r.safety_related || not (String.equal impact r.impact) then
            incr diff
      | None -> incr diff)
    golden.rows;
  (* Rows only in [other] also count. *)
  let golden_keys = List.map key golden.rows in
  List.iter
    (fun r ->
      if not (List.mem (key r) golden_keys) then begin
        incr total;
        incr diff
      end)
    other.rows;
  if !total = 0 then 0.0 else 100.0 *. float_of_int !diff /. float_of_int !total
