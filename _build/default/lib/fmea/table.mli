(** FME(D)A result tables — the "Component Safety Analysis Model" of
    DECISIVE Step 4a and the Excel-style output engineers consume
    (paper Table IV). *)

type row = {
  component : string;
  component_fit : float;  (** total FIT of the component *)
  failure_mode : string;
  distribution_pct : float;
  safety_related : bool;
  impact : string;  (** free text, e.g. "CS1 reading lost" or "DVF" *)
  safety_mechanism : string option;
  sm_coverage_pct : float option;
  single_point_fit : float;
      (** residual single-point failure rate of this mode: FIT share when
          safety-related (after diagnostic coverage), 0 otherwise *)
  warning : string option;
}
[@@deriving eq, show]

type t = {
  system_name : string;
  rows : row list;  (** grouped by component, in analysis order *)
}
[@@deriving eq, show]

val make_row :
  ?impact:string ->
  ?safety_mechanism:string ->
  ?sm_coverage_pct:float ->
  ?warning:string ->
  component:string ->
  component_fit:float ->
  failure_mode:string ->
  distribution_pct:float ->
  safety_related:bool ->
  unit ->
  row
(** Computes [single_point_fit] from the inputs:
    [fit * dist/100 * (1 - cov/100)] when safety-related, else 0. *)

val components : t -> string list
(** Distinct component names, first-appearance order. *)

val safety_related_components : t -> string list
(** Components with at least one safety-related failure mode. *)

val rows_for : t -> string -> row list

val warnings : t -> (string * string) list
(** [(component, warning)] pairs. *)

val to_csv : ?repeat_component_cells:bool -> t -> Modelio.Csv.t
(** Paper Table IV column layout: Component, FIT, Safety_Related,
    Failure_Mode, Distribution, Safety_Mechanism, SM_Coverage,
    Single_Point_Failure_Rate.  By default continuation rows leave the
    Component and FIT cells blank, as the paper's table does; pass
    [~repeat_component_cells:true] for machine-consumed exports so each
    row is self-contained (the assurance-case SPFM query relies on it). *)

val to_spreadsheet : t -> Modelio.Spreadsheet.t
(** The "Excel-based FMEA table is always produced" artefact. *)

val pp : Format.formatter -> t -> unit
(** Aligned text rendering in the paper's table style. *)

val merge_sensitivity : golden:t -> other:t -> float
(** Fraction (in percent) of rows that disagree between two analyses of
    the same system — the comparison metric of evaluation RQ1.  Rows are
    matched by (component, failure mode) and disagree when either the
    safety-related verdict or the judged effect differs (the paper
    attributes observed differences to "opinions on the effects of
    failing components"); unmatched rows count as differences. *)
