lib/fta/cut_sets.pp.ml: Fault_tree Hashtbl Int List Option Printf String
