lib/fta/cut_sets.pp.mli: Fault_tree
