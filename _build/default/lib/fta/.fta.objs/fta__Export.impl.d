lib/fta/export.pp.ml: Buffer Fault_tree Fun Hashtbl List Modelio Printf String
