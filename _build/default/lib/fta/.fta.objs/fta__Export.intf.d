lib/fta/export.pp.mli: Fault_tree Modelio
