lib/fta/fault_tree.pp.ml: Format Hashtbl Int List Ppx_deriving_runtime Printf String
