lib/fta/fault_tree.pp.mli: Format Ppx_deriving_runtime
