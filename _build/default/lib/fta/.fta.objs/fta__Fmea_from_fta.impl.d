lib/fta/fmea_from_fta.pp.ml: Architecture Base Cut_sets Fmea From_ssam List Printf Ssam String
