lib/fta/fmea_from_fta.pp.mli: Fmea Ssam
