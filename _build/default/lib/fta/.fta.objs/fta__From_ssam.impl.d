lib/fta/from_ssam.pp.ml: Architecture Fault_tree Fmea List Printf Reliability Ssam
