lib/fta/from_ssam.pp.mli: Fault_tree Ssam
