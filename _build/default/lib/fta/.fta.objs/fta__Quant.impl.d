lib/fta/quant.pp.ml: Fault_tree Float List Option String
