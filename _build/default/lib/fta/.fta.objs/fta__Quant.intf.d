lib/fta/quant.pp.mli: Cut_sets Fault_tree
