type cut_set = string list

let normalize set = List.sort_uniq String.compare set

let subset a b = List.for_all (fun x -> List.mem x b) a

(* Keep only sets with no proper (or equal, earlier) subset present. *)
let minimize sets =
  let sorted =
    List.sort (fun a b -> Int.compare (List.length a) (List.length b)) sets
  in
  List.rev
    (List.fold_left
       (fun kept s -> if List.exists (fun k -> subset k s) kept then kept else s :: kept)
       [] sorted)

(* All k-subsets of a list. *)
let rec choose k items =
  if k = 0 then [ [] ]
  else
    match items with
    | [] -> []
    | x :: rest ->
        List.map (fun c -> x :: c) (choose (k - 1) rest) @ choose k rest

let minimal ?(max_sets = 100_000) tree =
  let check n =
    if n > max_sets then
      invalid_arg
        (Printf.sprintf "Cut_sets.minimal: intermediate size %d exceeds %d" n
           max_sets)
  in
  (* Bottom-up: each node yields its list of cut sets (a DNF). *)
  let rec go node : cut_set list =
    match node with
    | Fault_tree.Basic e -> [ [ e.Fault_tree.event_id ] ]
    | Fault_tree.Or (_, cs) ->
        let union = List.concat_map go cs in
        check (List.length union);
        minimize (List.map normalize union)
    | Fault_tree.And (_, cs) ->
        let parts = List.map go cs in
        (* Minimise after every factor: repeated events across factors
           collapse early, which keeps the product from exploding on
           deep series-parallel structures. *)
        let product =
          List.fold_left
            (fun acc part ->
              let combined =
                List.concat_map
                  (fun a -> List.map (fun b -> normalize (a @ b)) part)
                  acc
              in
              check (List.length combined);
              minimize combined)
            [ [] ] parts
        in
        minimize product
    | Fault_tree.Koon (id, k, cs) ->
        let subsets = choose k cs in
        go
          (Fault_tree.Or
             ( id ^ ":expanded",
               List.mapi
                 (fun i subset ->
                   Fault_tree.And (Printf.sprintf "%s:%d" id i, subset))
                 subsets ))
  in
  let sets = go tree in
  List.sort
    (fun a b ->
      match Int.compare (List.length a) (List.length b) with
      | 0 -> List.compare String.compare a b
      | n -> n)
    sets

let singletons sets =
  List.filter_map (function [ e ] -> Some e | _ -> None) sets

let order_histogram sets =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun s ->
      let n = List.length s in
      Hashtbl.replace tbl n (1 + Option.value ~default:0 (Hashtbl.find_opt tbl n)))
    sets;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
