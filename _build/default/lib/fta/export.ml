let sanitise id =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    id

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_dot ?(name = "fault_tree") tree =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "digraph %s {\n" (sanitise name);
  add "  rankdir=TB;\n  node [fontname=\"Helvetica\"];\n";
  let emitted_events = Hashtbl.create 16 in
  let counter = ref 0 in
  let rec emit node =
    match node with
    | Fault_tree.Basic e ->
        let nid = "ev_" ^ sanitise e.Fault_tree.event_id in
        if not (Hashtbl.mem emitted_events nid) then begin
          Hashtbl.add emitted_events nid ();
          let rate =
            match e.Fault_tree.rate_fit with
            | Some r -> Printf.sprintf "\\n%g FIT" r
            | None -> ""
          in
          add "  %s [shape=circle, label=\"%s%s\"];\n" nid
            (escape e.Fault_tree.event_id) rate
        end;
        nid
    | Fault_tree.And (id, children) ->
        let nid = Printf.sprintf "g%d_%s" !counter (sanitise id) in
        incr counter;
        add "  %s [shape=trapezium, label=\"AND\\n%s\"];\n" nid (escape id);
        List.iter (fun c -> add "  %s -> %s;\n" nid (emit c)) children;
        nid
    | Fault_tree.Or (id, children) ->
        let nid = Printf.sprintf "g%d_%s" !counter (sanitise id) in
        incr counter;
        add "  %s [shape=invhouse, label=\"OR\\n%s\"];\n" nid (escape id);
        List.iter (fun c -> add "  %s -> %s;\n" nid (emit c)) children;
        nid
    | Fault_tree.Koon (id, k, children) ->
        let nid = Printf.sprintf "g%d_%s" !counter (sanitise id) in
        incr counter;
        add "  %s [shape=diamond, label=\"%d/%d\\n%s\"];\n" nid k
          (List.length children) (escape id);
        List.iter (fun c -> add "  %s -> %s;\n" nid (emit c)) children;
        nid
  in
  ignore (emit tree);
  add "}\n";
  Buffer.contents buf

(* ---------- Open-PSA MEF ---------- *)

let el tag attributes children =
  Modelio.Xml.Element { Modelio.Xml.tag; attributes; children }

let gate_counter = ref 0

let rec formula_of node (definitions : Modelio.Xml.t list ref) =
  match node with
  | Fault_tree.Basic e ->
      el "basic-event" [ ("name", e.Fault_tree.event_id) ] []
  | Fault_tree.And (id, children) ->
      define_gate id "and" children definitions
  | Fault_tree.Or (id, children) ->
      define_gate id "or" children definitions
  | Fault_tree.Koon (id, k, children) ->
      incr gate_counter;
      let gname = Printf.sprintf "%s_%d" (sanitise id) !gate_counter in
      let child_formulas = List.map (fun c -> formula_of c definitions) children in
      definitions :=
        el "define-gate"
          [ ("name", gname) ]
          [ el "atleast" [ ("min", string_of_int k) ] child_formulas ]
        :: !definitions;
      el "gate" [ ("name", gname) ] []

and define_gate id connective children definitions =
  incr gate_counter;
  let gname = Printf.sprintf "%s_%d" (sanitise id) !gate_counter in
  let child_formulas = List.map (fun c -> formula_of c definitions) children in
  definitions :=
    el "define-gate" [ ("name", gname) ] [ el connective [] child_formulas ]
    :: !definitions;
  el "gate" [ ("name", gname) ] []

let to_open_psa ?(model_name = "decisive-fta") tree =
  gate_counter := 0;
  let definitions = ref [] in
  let top_formula = formula_of tree definitions in
  let basic_defs =
    List.map
      (fun (e : Fault_tree.event) ->
        el "define-basic-event"
          [ ("name", e.Fault_tree.event_id) ]
          (match e.Fault_tree.rate_fit with
          | Some fit ->
              [
                el "exponential" []
                  [
                    el "float" [ ("value", Printf.sprintf "%.6e" (fit *. 1e-9)) ] [];
                  ];
              ]
          | None -> []))
      (Fault_tree.basic_events tree)
  in
  {
    Modelio.Xml.tag = "opsa-mef";
    attributes = [ ("name", model_name) ];
    children =
      [
        el "define-fault-tree"
          [ ("name", "top") ]
          ((el "define-gate" [ ("name", "top") ] [ top_formula ]
           :: List.rev !definitions)
          @ basic_defs);
      ];
  }

let to_open_psa_string ?model_name tree =
  Modelio.Xml.to_string (to_open_psa ?model_name tree)

let save_dot ~path ?name tree =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_dot ?name tree))

let save_open_psa ~path ?model_name tree =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc "<?xml version=\"1.0\"?>\n";
      output_string oc (to_open_psa_string ?model_name tree);
      output_char oc '\n')
