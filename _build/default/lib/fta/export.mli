(** Fault-tree export: Graphviz dot for documentation, Open-PSA MEF XML
    for interchange with quantitative FTA tools. *)

val to_dot : ?name:string -> Fault_tree.t -> string
(** Graphviz digraph, top event first.  Gates render as shaped nodes
    (AND trapezium, OR inverted-house, k/N diamond), basic events as
    circles labelled with their rate when known.  Node ids are sanitised;
    repeated basic events share one node, as is conventional. *)

val to_open_psa : ?model_name:string -> Fault_tree.t -> Modelio.Xml.element
(** An Open-PSA Model Exchange Format document: one fault tree whose top
    gate is ["top"], gate definitions for every internal node, and
    [define-basic-event] entries with exponential rates (in per-hour)
    when FIT data is present. *)

val to_open_psa_string : ?model_name:string -> Fault_tree.t -> string

val save_dot : path:string -> ?name:string -> Fault_tree.t -> unit

val save_open_psa : path:string -> ?model_name:string -> Fault_tree.t -> unit
