type event = {
  event_id : string;
  event_description : string;
  rate_fit : float option;
}
[@@deriving eq, show]

type t =
  | Basic of event
  | And of string * t list
  | Or of string * t list
  | Koon of string * int * t list
[@@deriving eq, show]

let basic ?(description = "") ?rate_fit event_id =
  Basic { event_id; event_description = description; rate_fit }

let check_children what id = function
  | [] -> invalid_arg (Printf.sprintf "Fault_tree.%s %s: no children" what id)
  | _ :: _ -> ()

let and_ id children =
  check_children "and_" id children;
  And (id, children)

let or_ id children =
  check_children "or_" id children;
  Or (id, children)

let koon id ~k children =
  check_children "koon" id children;
  if k < 1 || k > List.length children then
    invalid_arg
      (Printf.sprintf "Fault_tree.koon %s: k=%d out of range for %d children" id
         k (List.length children));
  Koon (id, k, children)

let basic_events t =
  let seen = Hashtbl.create 16 in
  let acc = ref [] in
  let rec go = function
    | Basic e ->
        if not (Hashtbl.mem seen e.event_id) then begin
          Hashtbl.add seen e.event_id ();
          acc := e :: !acc
        end
    | And (_, cs) | Or (_, cs) | Koon (_, _, cs) -> List.iter go cs
  in
  go t;
  List.rev !acc

let rec gate_count = function
  | Basic _ -> 0
  | And (_, cs) | Or (_, cs) | Koon (_, _, cs) ->
      1 + List.fold_left (fun acc c -> acc + gate_count c) 0 cs

let rec depth = function
  | Basic _ -> 1
  | And (_, cs) | Or (_, cs) | Koon (_, _, cs) ->
      1 + List.fold_left (fun acc c -> Int.max acc (depth c)) 0 cs

let find_event t id =
  List.find_opt (fun e -> String.equal e.event_id id) (basic_events t)

let pp_ascii ppf t =
  let rec go indent node =
    let pad = String.make indent ' ' in
    match node with
    | Basic e ->
        Format.fprintf ppf "%s[%s]%s%s@," pad e.event_id
          (if e.event_description = "" then "" else " " ^ e.event_description)
          (match e.rate_fit with
          | Some r -> Printf.sprintf " (%g FIT)" r
          | None -> "")
    | And (id, cs) ->
        Format.fprintf ppf "%sAND %s@," pad id;
        List.iter (go (indent + 2)) cs
    | Or (id, cs) ->
        Format.fprintf ppf "%sOR %s@," pad id;
        List.iter (go (indent + 2)) cs
    | Koon (id, k, cs) ->
        Format.fprintf ppf "%s%d-out-of-%d %s@," pad k (List.length cs) id;
        List.iter (go (indent + 2)) cs
  in
  Format.fprintf ppf "@[<v>";
  go 0 t;
  Format.fprintf ppf "@]"
