(** Fault trees (the paper's future-work item VIII.1, implemented here).

    Standard static fault trees: basic events with optional failure rates,
    AND/OR gates and k-out-of-N voting gates (which model the
    1oo2/2oo3-style tolerances of SSAM functions). *)

type event = {
  event_id : string;
  event_description : string;
  rate_fit : float option;  (** failure rate in FIT, when known *)
}
[@@deriving eq, show]

type t =
  | Basic of event
  | And of string * t list  (** gate id, children *)
  | Or of string * t list
  | Koon of string * int * t list  (** fails when ≥ k of the children fail *)
[@@deriving eq, show]

val basic : ?description:string -> ?rate_fit:float -> string -> t

val and_ : string -> t list -> t
(** Raises [Invalid_argument] on an empty child list (also [or_]/[koon]). *)

val or_ : string -> t list -> t

val koon : string -> k:int -> t list -> t
(** Raises [Invalid_argument] unless [1 <= k <= length children]. *)

val basic_events : t -> event list
(** Distinct by id, first occurrence order. *)

val gate_count : t -> int

val depth : t -> int
(** A basic event has depth 1. *)

val find_event : t -> string -> event option

val pp_ascii : Format.formatter -> t -> unit
(** Indented tree rendering for reports. *)
