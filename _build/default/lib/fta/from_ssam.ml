open Ssam

exception No_paths of string

let loss_event_id ~component_id = "loss:" ^ component_id

let loss_rate_fit (c : Architecture.component) =
  if c.Architecture.failure_modes = [] then c.Architecture.fit
  else
    List.fold_left
      (fun acc (fm : Architecture.failure_mode) ->
        if Architecture.is_loss_like fm.Architecture.nature then
          acc
          +. Reliability.Fit.share c.Architecture.fit
               ~distribution_pct:fm.Architecture.distribution_pct
        else acc)
      0.0 c.Architecture.failure_modes

(* Loss of one component: a basic event for leaves; redundant functions
   become k-out-of-N over per-channel events. *)
let component_loss (c : Architecture.component) =
  let cid = Architecture.component_id c in
  let base =
    Fault_tree.basic
      ~description:(Printf.sprintf "loss of function of %s" (Architecture.component_name c))
      ~rate_fit:(loss_rate_fit c)
      (loss_event_id ~component_id:cid)
  in
  let redundancy =
    List.find_map
      (fun (f : Architecture.func) ->
        match f.Architecture.tolerance with
        | Architecture.OneOoOne -> None
        | Architecture.OneOoTwo -> Some (2, 2)
        | Architecture.OneOoThree -> Some (3, 3)
        | Architecture.TwoOoThree -> Some (2, 3)
      )
      c.Architecture.functions
  in
  match redundancy with
  | None -> base
  | Some (k, n) ->
      (* The function survives unless k (or more) of the n channels fail. *)
      let channels =
        List.init n (fun i ->
            Fault_tree.basic
              ~description:
                (Printf.sprintf "channel %d of %s fails" (i + 1)
                   (Architecture.component_name c))
              ~rate_fit:(loss_rate_fit c)
              (Printf.sprintf "%s:ch%d" (loss_event_id ~component_id:cid) (i + 1)))
      in
      Fault_tree.koon (loss_event_id ~component_id:cid ^ ":vote") ~k channels

let generate (c : Architecture.component) =
  let paths = Fmea.Path_fmea.paths c in
  if paths = [] then raise (No_paths (Architecture.component_id c));
  let path_gates =
    List.mapi
      (fun i path ->
        Fault_tree.or_
          (Printf.sprintf "path%d-broken" (i + 1))
          (List.map component_loss path))
      paths
  in
  match path_gates with
  | [ single ] -> single
  | gates ->
      Fault_tree.and_
        (Printf.sprintf "%s-output-unreachable" (Architecture.component_id c))
        gates
