(** Fault-tree generation from SSAM architectures.

    For a composite component, the top event "output unreachable" holds
    exactly when every input→output path is broken, and a path is broken
    when some component on it loses function:

    {v TOP = AND over paths p ( OR over components c ∈ p  loss(c) ) v}

    Basic events are the loss-of-function failure modes of leaf
    components, with rates from FIT × distribution.  Components whose
    functions declare redundant tolerances become k-out-of-N gates.

    Consistency theorem (tested): the singleton minimal cut sets of the
    generated tree are exactly the safety-related components found by
    {!Fmea.Path_fmea} — the basis of the HiP-HOPS-style cross-check in
    {!Fmea_from_fta}. *)

exception No_paths of string
(** The composite has no input→output paths to analyse. *)

val loss_event_id : component_id:string -> string
(** ["loss:<component>"] — basic-event naming convention. *)

val generate : Ssam.Architecture.component -> Fault_tree.t
(** Raises {!No_paths}. *)

val loss_rate_fit : Ssam.Architecture.component -> float
(** Σ FIT × distribution over the component's loss-of-function modes (the
    whole FIT when it has no failure modes — pessimistic default). *)
