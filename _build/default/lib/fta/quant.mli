(** Quantitative fault-tree analysis.

    Basic-event probabilities come from their FIT rates over a mission
    time: [p = 1 - exp(-λ t)] with λ in failures/hour.  Events without a
    rate can be given explicitly. *)

type probabilities = (string * float) list
(** Basic-event id → probability in [0,1]. *)

val event_probabilities :
  ?mission_hours:float -> Fault_tree.t -> probabilities
(** From each event's [rate_fit] (default mission 10_000 h — roughly a
    vehicle lifetime of operation); events without a rate get probability
    0 and should be overridden. *)

val top_probability_exact :
  Fault_tree.t -> probabilities -> float
(** Exact evaluation assuming independent basic events, by recursive gate
    composition (AND = product, OR = 1-Π(1-p), k-oo-n by enumeration over
    children).  Events appearing under several gates are treated as
    independent copies — use the cut-set bounds when events repeat. *)

val rare_event_bound : Cut_sets.cut_set list -> probabilities -> float
(** Σ over minimal cut sets of Π p — the standard upper bound, tight for
    small probabilities. *)

val esary_proschan : Cut_sets.cut_set list -> probabilities -> float
(** [1 - Π (1 - Π p)] — a tighter upper bound than rare-event. *)

val importance : Cut_sets.cut_set list -> probabilities -> (string * float) list
(** Fussell-Vesely importance per basic event: share of the rare-event sum
    contributed by cut sets containing the event; descending. *)
