lib/hara/hara.pp.ml: Base Format Hazard Int List Option Printf Requirement Risk Ssam
