lib/hara/hara.pp.mli: Format Risk Ssam
