lib/hara/risk.pp.ml: Hazard Requirement Ssam
