lib/hara/risk.pp.mli: Ssam
