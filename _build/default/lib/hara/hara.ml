module Risk = Risk

open Ssam

type assessed = {
  situation : Hazard.hazardous_situation;
  asil : Requirement.integrity_level option;
  priority : int option;
}

type log = { log_name : string; entries : assessed list }

let assess ~name (p : Hazard.package) =
  let entries =
    List.map
      (fun (s : Hazard.hazardous_situation) ->
        let asil = Risk.of_situation s in
        let priority =
          match (s.Hazard.exposure, s.Hazard.controllability) with
          | Some e, Some c ->
              Some
                (Risk.risk_priority ~severity:s.Hazard.severity ~exposure:e
                   ~controllability:c)
          | _ -> None
        in
        { situation = s; asil; priority })
      (Hazard.situations p)
  in
  let sorted =
    List.stable_sort
      (fun a b ->
        match (a.priority, b.priority) with
        | Some x, Some y -> Int.compare y x
        | Some _, None -> -1
        | None, Some _ -> 1
        | None, None -> 0)
      entries
  in
  { log_name = name; entries = sorted }

let derive_requirements ?(id_prefix = "SR") log =
  List.filteri (fun _ e -> Option.is_some e.asil) log.entries
  |> List.mapi (fun i e ->
         let hs = e.situation in
         let hid = hs.Hazard.hs_meta.Base.id in
         Requirement.requirement
           ?integrity:e.asil
           ~meta:
             (Base.meta
                ~name:(Printf.sprintf "%s-%d" id_prefix (i + 1))
                ~cites:[ hid ]
                (Printf.sprintf "%s-%d" id_prefix (i + 1)))
           (Printf.sprintf "The system shall prevent or mitigate: %s"
              (Base.display_name hs.Hazard.hs_meta)))

let to_package ~package_id log =
  let requirements = derive_requirements log in
  let elements =
    List.map (fun r -> Requirement.Requirement r) requirements
    @ List.concat_map
        (fun (r : Requirement.requirement) ->
          List.map
            (fun hid ->
              Requirement.Relationship
                (Requirement.relationship
                   ~meta:
                     (Base.meta
                        (Printf.sprintf "%s:derives:%s" r.Requirement.meta.Base.id
                           hid))
                   ~kind:Requirement.Derives ~source:r.Requirement.meta.Base.id
                   ~target:hid))
            r.Requirement.meta.Base.cites)
        requirements
  in
  Requirement.package
    ~meta:(Base.meta ~name:log.log_name package_id)
    elements

let highest_asil log =
  List.fold_left
    (fun acc e ->
      match (acc, e.asil) with
      | None, x -> x
      | x, None -> x
      | Some a, Some b ->
          Some (if Requirement.compare_integrity_level a b >= 0 then a else b))
    None log.entries

let pp ppf log =
  Format.fprintf ppf "@[<v>Hazard log: %s@," log.log_name;
  List.iter
    (fun e ->
      Format.fprintf ppf "  %-24s %s%s@,"
        (Base.display_name e.situation.Hazard.hs_meta)
        (match e.asil with
        | Some a -> Requirement.integrity_level_to_string a
        | None -> "(unassessed)")
        (match e.priority with
        | Some p -> Printf.sprintf "  priority %d" p
        | None -> ""))
    log.entries;
  Format.fprintf ppf "@]"
