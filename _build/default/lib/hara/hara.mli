(** Hazard Analysis and Risk Assessment (DECISIVE Step 1).

    This file is the library's entry module; the risk graph lives in
    {!module:Risk}, re-exported here. *)

module Risk = Risk


type assessed = {
  situation : Ssam.Hazard.hazardous_situation;
  asil : Ssam.Requirement.integrity_level option;
  priority : int option;
}

type log = {
  log_name : string;
  entries : assessed list;  (** sorted by descending priority *)
}

val assess : name:string -> Ssam.Hazard.package -> log

val derive_requirements :
  ?id_prefix:string -> log -> Ssam.Requirement.requirement list
(** One safety requirement per assessed situation with a known ASIL:
    "the system shall prevent or mitigate <situation>", at that ASIL.
    [id_prefix] defaults to ["SR"]. *)

val to_package :
  package_id:string -> log -> Ssam.Requirement.package
(** Wraps {!derive_requirements} in a requirement package with Derives
    relationships back to the hazardous situations. *)

val highest_asil : log -> Ssam.Requirement.integrity_level option
(** The most stringent ASIL in the log. *)

val pp : Format.formatter -> log -> unit
