open Ssam

(* ISO 26262-3 Table 4.  Rows: severity; the QM→A→B→C→D ladder climbs one
   step per increment of exposure or controllability class. *)
let determine ~severity ~exposure ~controllability =
  let s_idx =
    match severity with
    | Hazard.S0 -> 0
    | Hazard.S1 -> 1
    | Hazard.S2 -> 2
    | Hazard.S3 -> 3
  in
  let e_idx =
    match exposure with
    | Hazard.E1 -> 1
    | Hazard.E2 -> 2
    | Hazard.E3 -> 3
    | Hazard.E4 -> 4
  in
  let c_idx =
    match controllability with
    | Hazard.C1 -> 1
    | Hazard.C2 -> 2
    | Hazard.C3 -> 3
  in
  if s_idx = 0 then Requirement.QM
  else
    (* The ladder position: S3/E4/C3 (sum 10) is ASIL-D; each decrement of
       any class steps down one level, bottoming out at QM.  This compact
       formulation reproduces ISO 26262-3 Table 4 exactly. *)
    match s_idx + e_idx + c_idx with
    | 10 -> Requirement.ASIL_D
    | 9 -> Requirement.ASIL_C
    | 8 -> Requirement.ASIL_B
    | 7 -> Requirement.ASIL_A
    | _ -> Requirement.QM

let of_situation (s : Hazard.hazardous_situation) =
  match (s.Hazard.exposure, s.Hazard.controllability) with
  | Some exposure, Some controllability ->
      Some (determine ~severity:s.Hazard.severity ~exposure ~controllability)
  | _ -> None

let risk_priority ~severity ~exposure ~controllability =
  let s =
    match severity with
    | Hazard.S0 -> 0
    | Hazard.S1 -> 1
    | Hazard.S2 -> 2
    | Hazard.S3 -> 3
  in
  let e =
    match exposure with
    | Hazard.E1 -> 1
    | Hazard.E2 -> 2
    | Hazard.E3 -> 3
    | Hazard.E4 -> 4
  in
  let c =
    match controllability with
    | Hazard.C1 -> 1
    | Hazard.C2 -> 2
    | Hazard.C3 -> 3
  in
  s + e + c
