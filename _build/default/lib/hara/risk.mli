(** Risk assessment: the ISO 26262 risk graph.

    ASIL determination from severity (S0–S3), exposure (E1–E4) and
    controllability (C1–C3), per ISO 26262-3 Table 4. *)

val determine :
  severity:Ssam.Hazard.severity ->
  exposure:Ssam.Hazard.exposure ->
  controllability:Ssam.Hazard.controllability ->
  Ssam.Requirement.integrity_level
(** S0 is always QM.  The highest combination (S3/E4/C3) is ASIL-D. *)

val of_situation :
  Ssam.Hazard.hazardous_situation -> Ssam.Requirement.integrity_level option
(** [None] when exposure or controllability is unset on the situation. *)

val risk_priority :
  severity:Ssam.Hazard.severity ->
  exposure:Ssam.Hazard.exposure ->
  controllability:Ssam.Hazard.controllability ->
  int
(** A simple ordinal (S index + E index + C index) used only for sorting
    hazard logs in reports; not an ISO quantity. *)
