lib/modelio/csv.pp.ml: Buffer Fun List String
