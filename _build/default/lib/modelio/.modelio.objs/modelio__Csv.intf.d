lib/modelio/csv.pp.mli:
