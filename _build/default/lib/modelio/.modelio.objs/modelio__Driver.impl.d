lib/modelio/driver.pp.ml: Csv Hashtbl Json List Mvalue Printf Spreadsheet String Xml
