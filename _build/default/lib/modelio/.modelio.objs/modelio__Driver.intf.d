lib/modelio/driver.pp.mli: Mvalue
