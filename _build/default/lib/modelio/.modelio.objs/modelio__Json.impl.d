lib/modelio/json.pp.ml: Buffer Char Float Fun List Option Ppx_deriving_runtime Printf String
