lib/modelio/json.pp.mli: Ppx_deriving_runtime
