lib/modelio/mvalue.pp.ml: Csv Json List Ppx_deriving_runtime String Xml
