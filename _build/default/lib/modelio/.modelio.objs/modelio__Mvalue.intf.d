lib/modelio/mvalue.pp.mli: Csv Json Ppx_deriving_runtime Xml
