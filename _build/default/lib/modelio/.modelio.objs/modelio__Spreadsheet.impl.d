lib/modelio/spreadsheet.pp.ml: Array Csv Filename List String Sys
