lib/modelio/spreadsheet.pp.mli: Csv
