lib/modelio/xml.pp.ml: Buffer Char Fun List Ppx_deriving_runtime Printf String
