lib/modelio/xml.pp.mli: Ppx_deriving_runtime
