type t = string list list

exception Parse_error of { line : int; message : string }

let parse s =
  let n = String.length s in
  let line = ref 1 in
  let buf = Buffer.create 64 in
  let fields = ref [] in
  let rows = ref [] in
  let flush_field () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  in
  let flush_row () =
    flush_field ();
    rows := List.rev !fields :: !rows;
    fields := []
  in
  (* States: `Field (unquoted), `Quoted, `Quote_seen (just closed a quote —
     expecting ',', newline, '"' for an escaped quote, or EOF). *)
  let rec go i state =
    if i >= n then begin
      (match state with
      | `Quoted -> raise (Parse_error { line = !line; message = "unterminated quote" })
      | `Field | `Quote_seen -> ());
      (* Trailing newline yields no extra empty row. *)
      if Buffer.length buf > 0 || !fields <> [] then flush_row ()
    end
    else
      let c = s.[i] in
      match (state, c) with
      | `Field, ',' ->
          flush_field ();
          go (i + 1) `Field
      | `Field, '\n' ->
          flush_row ();
          incr line;
          go (i + 1) `Field
      | `Field, '\r' ->
          (* Swallow the CR of a CRLF; a lone CR is treated as a newline. *)
          if i + 1 < n && s.[i + 1] = '\n' then go (i + 1) `Field
          else begin
            flush_row ();
            incr line;
            go (i + 1) `Field
          end
      | `Field, '"' ->
          if Buffer.length buf = 0 then go (i + 1) `Quoted
          else
            raise
              (Parse_error
                 { line = !line; message = "quote inside unquoted field" })
      | `Field, c ->
          Buffer.add_char buf c;
          go (i + 1) `Field
      | `Quoted, '"' -> go (i + 1) `Quote_seen
      | `Quoted, c ->
          if c = '\n' then incr line;
          Buffer.add_char buf c;
          go (i + 1) `Quoted
      | `Quote_seen, '"' ->
          Buffer.add_char buf '"';
          go (i + 1) `Quoted
      | `Quote_seen, ',' ->
          flush_field ();
          go (i + 1) `Field
      | `Quote_seen, '\n' ->
          flush_row ();
          incr line;
          go (i + 1) `Field
      | `Quote_seen, '\r' ->
          if i + 1 < n && s.[i + 1] = '\n' then go (i + 1) `Quote_seen
          else begin
            flush_row ();
            incr line;
            go (i + 1) `Field
          end
      | `Quote_seen, _ ->
          raise
            (Parse_error
               { line = !line; message = "unexpected character after quote" })
  in
  go 0 `Field;
  List.rev !rows

let parse_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> parse (really_input_string ic (in_channel_length ic)))

let needs_quoting f =
  String.exists (function ',' | '"' | '\n' | '\r' -> true | _ -> false) f

let quote f =
  let buf = Buffer.create (String.length f + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
    f;
  Buffer.add_char buf '"';
  Buffer.contents buf

let to_string rows =
  let field_str f = if needs_quoting f then quote f else f in
  let row_str row = String.concat "," (List.map field_str row) in
  String.concat "" (List.map (fun r -> row_str r ^ "\n") rows)

let write_file path rows =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string rows))

type table = { header : string list; rows : string list list }

let to_table = function
  | [] -> invalid_arg "Csv.to_table: empty CSV"
  | header :: rows -> { header; rows }

let column_index tbl name =
  let lname = String.lowercase_ascii name in
  let rec go i = function
    | [] -> None
    | h :: tl ->
        if String.equal (String.lowercase_ascii h) lname then Some i
        else go (i + 1) tl
  in
  go 0 tbl.header

let field tbl row name =
  match column_index tbl name with
  | None -> None
  | Some i -> List.nth_opt row i
