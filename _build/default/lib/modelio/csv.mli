(** RFC-4180-style CSV reading and writing.

    Supports quoted fields (embedded commas, quotes doubled, embedded
    newlines), CRLF and LF line endings.  This is the format the paper's
    Excel-based reliability and safety-mechanism models are exchanged in. *)

type t = string list list
(** Rows of fields.  The empty file is [[]]. *)

exception Parse_error of { line : int; message : string }

val parse : string -> t
(** Raises {!Parse_error} on unterminated quotes or stray quote characters. *)

val parse_file : string -> t
(** Raises [Sys_error] on IO failure, {!Parse_error} on malformed content. *)

val to_string : t -> string
(** Quotes fields containing commas, quotes or newlines; terminates each
    row with ["\n"].  [parse (to_string t) = t] for rectangular data. *)

val write_file : string -> t -> unit

(** {1 Header-indexed access} *)

type table = { header : string list; rows : string list list }

val to_table : t -> table
(** First row becomes the header.  Raises [Invalid_argument] on empty
    input. *)

val column_index : table -> string -> int option
(** Case-insensitive header lookup. *)

val field : table -> string list -> string -> string option
(** [field tbl row name] is the field of [row] under header [name];
    [None] when the column is missing or the row is too short. *)
