type t = {
  driver_name : string;
  load : location:string -> metadata:(string * string) list -> Mvalue.t;
}

exception Load_error of { driver : string; location : string; message : string }

exception Unknown_driver of string

let registry : (string, t) Hashtbl.t = Hashtbl.create 7

let canon = String.lowercase_ascii

let register d = Hashtbl.replace registry (canon d.driver_name) d

let find name = Hashtbl.find_opt registry (canon name)

let resolve ~model_type ~location ~metadata =
  match find model_type with
  | None -> raise (Unknown_driver model_type)
  | Some d -> d.load ~location ~metadata

let registered_names () =
  Hashtbl.fold (fun _ d acc -> d.driver_name :: acc) registry []
  |> List.sort_uniq String.compare

let wrap driver location f =
  try f () with
  | Load_error _ as e -> raise e
  | Sys_error message | Failure message ->
      raise (Load_error { driver; location; message })
  | Csv.Parse_error { line; message } ->
      raise
        (Load_error
           {
             driver;
             location;
             message = Printf.sprintf "line %d: %s" line message;
           })
  | Json.Parse_error { pos; message } | Xml.Parse_error { pos; message } ->
      raise
        (Load_error
           {
             driver;
             location;
             message = Printf.sprintf "offset %d: %s" pos message;
           })

let csv_driver =
  {
    driver_name = "csv";
    load =
      (fun ~location ~metadata:_ ->
        wrap "csv" location (fun () ->
            Mvalue.of_csv_table (Csv.to_table (Csv.parse_file location))));
  }

let json_driver =
  {
    driver_name = "json";
    load =
      (fun ~location ~metadata:_ ->
        wrap "json" location (fun () -> Mvalue.of_json (Json.parse_file location)));
  }

let xml_driver =
  {
    driver_name = "xml";
    load =
      (fun ~location ~metadata:_ ->
        wrap "xml" location (fun () -> Mvalue.of_xml (Xml.parse_file location)));
  }

let spreadsheet_driver =
  {
    driver_name = "spreadsheet";
    load =
      (fun ~location ~metadata:_ ->
        wrap "spreadsheet" location (fun () ->
            let wb = Spreadsheet.load location in
            Mvalue.Record
              (List.map
                 (fun (s : Spreadsheet.sheet) ->
                   (s.Spreadsheet.sheet_name, Mvalue.of_csv_table s.Spreadsheet.table))
                 wb.Spreadsheet.sheets)));
  }

let install_builtin () =
  register csv_driver;
  register json_driver;
  register xml_driver;
  register spreadsheet_driver;
  register { spreadsheet_driver with driver_name = "excel" }

let () = install_builtin ()
