(** Model drivers — SAME's counterpart of Epsilon's EMC layer.

    A driver knows how to load one external modelling technology and render
    it as an {!Mvalue.t}.  SSAM [ExternalReference]s name a driver through
    their [model_type] field; {!resolve} dispatches on it.

    The registry is process-global and mutable so that higher layers (e.g.
    the block-diagram library) can contribute drivers without this module
    depending on them. *)

type t = {
  driver_name : string;
  load : location:string -> metadata:(string * string) list -> Mvalue.t;
      (** Raises {!Load_error} wrapping underlying failures. *)
}

exception Load_error of { driver : string; location : string; message : string }

exception Unknown_driver of string

val register : t -> unit
(** Last registration for a name wins (case-insensitive). *)

val find : string -> t option

val resolve :
  model_type:string ->
  location:string ->
  metadata:(string * string) list ->
  Mvalue.t
(** Raises {!Unknown_driver} or {!Load_error}. *)

val registered_names : unit -> string list
(** Sorted. *)

val csv_driver : t
(** ["csv"] — a file loads to {!Mvalue.of_csv_table}. *)

val json_driver : t
(** ["json"]. *)

val xml_driver : t
(** ["xml"]. *)

val spreadsheet_driver : t
(** ["spreadsheet"] (alias "excel") — a csv file or directory-of-csv
    workbook; renders as a record of sheet-name → table. *)

val install_builtin : unit -> unit
(** Registers the four drivers above (idempotent).  Called automatically
    at library initialisation. *)
