type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Object of (string * t) list
[@@deriving eq, show]

exception Parse_error of { pos : int; message : string }

let fail pos message = raise (Parse_error { pos; message })

type state = { src : string; mutable pos : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | Some _ | None -> ()

let expect st c =
  match peek st with
  | Some x when x = c -> advance st
  | Some x -> fail st.pos (Printf.sprintf "expected '%c', found '%c'" c x)
  | None -> fail st.pos (Printf.sprintf "expected '%c', found end of input" c)

let literal st word value =
  let n = String.length word in
  if
    st.pos + n <= String.length st.src
    && String.sub st.src st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st.pos (Printf.sprintf "invalid literal, expected %s" word)

(* Encode a Unicode code point as UTF-8 into the buffer. *)
let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let hex4 st =
  let h = ref 0 in
  for _ = 1 to 4 do
    (match peek st with
    | Some c ->
        let v =
          match c with
          | '0' .. '9' -> Char.code c - Char.code '0'
          | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
          | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
          | _ -> fail st.pos "invalid \\u escape"
        in
        h := (!h * 16) + v
    | None -> fail st.pos "truncated \\u escape");
    advance st
  done;
  !h

let parse_string_body st =
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st.pos "unterminated string"
    | Some '"' ->
        advance st;
        Buffer.contents buf
    | Some '\\' ->
        advance st;
        (match peek st with
        | Some '"' -> Buffer.add_char buf '"'; advance st
        | Some '\\' -> Buffer.add_char buf '\\'; advance st
        | Some '/' -> Buffer.add_char buf '/'; advance st
        | Some 'b' -> Buffer.add_char buf '\b'; advance st
        | Some 'f' -> Buffer.add_char buf '\012'; advance st
        | Some 'n' -> Buffer.add_char buf '\n'; advance st
        | Some 'r' -> Buffer.add_char buf '\r'; advance st
        | Some 't' -> Buffer.add_char buf '\t'; advance st
        | Some 'u' ->
            advance st;
            let cp = hex4 st in
            (* Surrogate pair handling. *)
            if cp >= 0xD800 && cp <= 0xDBFF then begin
              expect st '\\';
              expect st 'u';
              let lo = hex4 st in
              if lo < 0xDC00 || lo > 0xDFFF then
                fail st.pos "invalid low surrogate";
              add_utf8 buf
                (0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00))
            end
            else add_utf8 buf cp
        | Some c -> fail st.pos (Printf.sprintf "invalid escape '\\%c'" c)
        | None -> fail st.pos "truncated escape");
        go ()
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        go ()
  in
  go ()

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while match peek st with Some c -> is_num_char c | None -> false do
    advance st
  done;
  let text = String.sub st.src start (st.pos - start) in
  match float_of_string_opt text with
  | Some f -> Number f
  | None -> fail start (Printf.sprintf "invalid number %S" text)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st.pos "unexpected end of input"
  | Some '{' -> parse_object st
  | Some '[' -> parse_array st
  | Some '"' ->
      advance st;
      String (parse_string_body st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st.pos (Printf.sprintf "unexpected character '%c'" c)

and parse_object st =
  expect st '{';
  skip_ws st;
  if peek st = Some '}' then begin
    advance st;
    Object []
  end
  else begin
    let fields = ref [] in
    let rec member () =
      skip_ws st;
      expect st '"';
      let key = parse_string_body st in
      skip_ws st;
      expect st ':';
      let v = parse_value st in
      fields := (key, v) :: !fields;
      skip_ws st;
      match peek st with
      | Some ',' ->
          advance st;
          member ()
      | Some '}' -> advance st
      | Some c -> fail st.pos (Printf.sprintf "expected ',' or '}', found '%c'" c)
      | None -> fail st.pos "unterminated object"
    in
    member ();
    Object (List.rev !fields)
  end

and parse_array st =
  expect st '[';
  skip_ws st;
  if peek st = Some ']' then begin
    advance st;
    List []
  end
  else begin
    let items = ref [] in
    let rec item () =
      let v = parse_value st in
      items := v :: !items;
      skip_ws st;
      match peek st with
      | Some ',' ->
          advance st;
          item ()
      | Some ']' -> advance st
      | Some c -> fail st.pos (Printf.sprintf "expected ',' or ']', found '%c'" c)
      | None -> fail st.pos "unterminated array"
    in
    item ();
    List (List.rev !items)
  end

let parse s =
  let st = { src = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then fail st.pos "trailing garbage";
  v

let parse_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> parse (really_input_string ic (in_channel_length ic)))

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let to_string ?(indent = 0) t =
  let buf = Buffer.create 256 in
  let pad depth =
    if indent > 0 then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (depth * indent) ' ')
    end
  in
  let rec emit depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Number f -> Buffer.add_string buf (number_to_string f)
    | String s -> Buffer.add_string buf (escape_string s)
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i v ->
            if i > 0 then Buffer.add_char buf ',';
            pad (depth + 1);
            emit (depth + 1) v)
          items;
        pad depth;
        Buffer.add_char buf ']'
    | Object [] -> Buffer.add_string buf "{}"
    | Object fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            pad (depth + 1);
            Buffer.add_string buf (escape_string k);
            Buffer.add_char buf ':';
            if indent > 0 then Buffer.add_char buf ' ';
            emit (depth + 1) v)
          fields;
        pad depth;
        Buffer.add_char buf '}'
  in
  emit 0 t;
  Buffer.contents buf

let write_file ?indent path t =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (to_string ?indent t);
      output_char oc '\n')

let member key = function
  | Object fields -> List.assoc_opt key fields
  | Null | Bool _ | Number _ | String _ | List _ -> None

let path keys t =
  List.fold_left
    (fun acc key -> Option.bind acc (member key))
    (Some t) keys

let to_float = function
  | Number f -> Some f
  | String s -> float_of_string_opt s
  | Null | Bool _ | List _ | Object _ -> None

let to_str = function
  | String s -> Some s
  | Null | Bool _ | Number _ | List _ | Object _ -> None

let to_list = function
  | List items -> Some items
  | Null | Bool _ | Number _ | String _ | Object _ -> None

let to_bool = function
  | Bool b -> Some b
  | Null | Number _ | String _ | List _ | Object _ -> None
