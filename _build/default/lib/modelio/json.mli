(** A small JSON parser and printer (no external dependency).

    Covers the JSON the tool federates: objects, arrays, strings with
    escapes (including [\uXXXX] encoded to UTF-8), numbers, booleans and
    null. *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Object of (string * t) list
[@@deriving eq, show]

exception Parse_error of { pos : int; message : string }

val parse : string -> t
(** Raises {!Parse_error} on malformed input or trailing garbage. *)

val parse_file : string -> t

val to_string : ?indent:int -> t -> string
(** [indent] > 0 pretty-prints; default 0 is compact. *)

val write_file : ?indent:int -> string -> t -> unit

(** {1 Accessors} *)

val member : string -> t -> t option
(** Object field lookup; [None] for non-objects. *)

val path : string list -> t -> t option
(** Nested {!member}. *)

val to_float : t -> float option
(** [Number]; also accepts numeric [String]s. *)

val to_str : t -> string option

val to_list : t -> t list option

val to_bool : t -> bool option
