type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Seq of t list
  | Record of (string * t) list
[@@deriving eq, show]

let canon_key k =
  String.lowercase_ascii k
  |> String.map (function ' ' -> '_' | c -> c)

let field v name =
  match v with
  | Record fields ->
      let target = canon_key name in
      List.find_map
        (fun (k, v) -> if canon_key k = target then Some v else None)
        fields
  | Null | Bool _ | Num _ | Str _ | Seq _ -> None

let rec of_json = function
  | Json.Null -> Null
  | Json.Bool b -> Bool b
  | Json.Number f -> Num f
  | Json.String s -> Str s
  | Json.List items -> Seq (List.map of_json items)
  | Json.Object fields ->
      Record (List.map (fun (k, v) -> (k, of_json v)) fields)

let of_csv_table (tbl : Csv.table) =
  let row_record row =
    let rec pair hs vs =
      match (hs, vs) with
      | [], _ -> []
      | h :: hs, [] -> (h, Null) :: pair hs []
      | h :: hs, v :: vs -> (h, Str v) :: pair hs vs
    in
    Record (pair tbl.Csv.header row)
  in
  Record
    [
      ("header", Seq (List.map (fun h -> Str h) tbl.Csv.header));
      ("rows", Seq (List.map row_record tbl.Csv.rows));
    ]

let rec of_xml (e : Xml.element) =
  Record
    [
      ("tag", Str e.Xml.tag);
      ( "attributes",
        Record (List.map (fun (k, v) -> (k, Str v)) e.Xml.attributes) );
      ( "children",
        Seq
          (List.filter_map
             (function
               | Xml.Element c -> Some (of_xml c)
               | Xml.Text _ -> None)
             e.Xml.children) );
      ("text", Str (Xml.text_content e));
    ]

let rec to_json = function
  | Null -> Json.Null
  | Bool b -> Json.Bool b
  | Num f -> Json.Number f
  | Str s -> Json.String s
  | Seq items -> Json.List (List.map to_json items)
  | Record fields ->
      Json.Object (List.map (fun (k, v) -> (k, to_json v)) fields)

let truthy = function
  | Null -> false
  | Bool b -> b
  | Num f -> f <> 0.0
  | Str s -> s <> ""
  | Seq items -> items <> []
  | Record _ -> true

let type_name = function
  | Null -> "null"
  | Bool _ -> "bool"
  | Num _ -> "number"
  | Str _ -> "string"
  | Seq _ -> "sequence"
  | Record _ -> "record"
