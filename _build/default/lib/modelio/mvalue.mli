(** The generic model value — the lingua franca of model federation.

    Every {!module:Driver} renders its external model as an {!t}; the query
    language of {!module:Query} navigates {!t}s.  This mirrors the role of
    Epsilon's model-connectivity layer: one uniform object graph over
    arbitrary modelling technologies. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Seq of t list
  | Record of (string * t) list
[@@deriving eq, show]

val field : t -> string -> t option
(** Case-insensitive record-field access; [None] on other shapes.  Spaces
    and underscores in field names are treated as equivalent, so a query
    can write [r.failure_mode] against a CSV header ["Failure_Mode"] or
    ["Failure Mode"]. *)

val of_json : Json.t -> t

val of_csv_table : Csv.table -> t
(** [Record [("header", Seq ...); ("rows", Seq of Record ...)]] — each row
    becomes a record keyed by the header. *)

val of_xml : Xml.element -> t
(** [Record] with ["tag"], ["attributes"] (record), ["children"] (seq) and
    ["text"]. *)

val to_json : t -> Json.t
(** Lossy for [Null]-keyed records only in the trivial sense; [Seq]→array,
    [Record]→object. *)

val truthy : t -> bool
(** [false] for [Null], [Bool false], [Num 0.], [Str ""], empty [Seq];
    [true] otherwise. *)

val type_name : t -> string
