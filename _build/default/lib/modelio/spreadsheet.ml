type sheet = { sheet_name : string; table : Csv.table }

type t = { sheets : sheet list }

let of_csv ~name csv = { sheets = [ { sheet_name = name; table = Csv.to_table csv } ] }

let basename_no_ext path =
  let base = Filename.basename path in
  try Filename.chop_extension base with Invalid_argument _ -> base

let load path =
  if Sys.is_directory path then begin
    let files =
      Sys.readdir path |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".csv")
      |> List.sort String.compare
    in
    let sheets =
      List.map
        (fun f ->
          {
            sheet_name = basename_no_ext f;
            table = Csv.to_table (Csv.parse_file (Filename.concat path f));
          })
        files
    in
    { sheets }
  end
  else of_csv ~name:(basename_no_ext path) (Csv.parse_file path)

let save dir t =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iter
    (fun s ->
      let csv = s.table.Csv.header :: s.table.Csv.rows in
      Csv.write_file (Filename.concat dir (s.sheet_name ^ ".csv")) csv)
    t.sheets

let sheet t name =
  let lname = String.lowercase_ascii name in
  List.find_opt
    (fun s -> String.equal (String.lowercase_ascii s.sheet_name) lname)
    t.sheets

let first_sheet t =
  match t.sheets with
  | s :: _ -> s
  | [] -> invalid_arg "Spreadsheet.first_sheet: empty workbook"

let cell s ~row ~column =
  match List.nth_opt s.table.Csv.rows row with
  | None -> None
  | Some r -> Csv.field s.table r column

let number raw =
  let s = String.trim raw in
  if s = "" then None
  else
    let s, _had_pct =
      if String.length s > 0 && s.[String.length s - 1] = '%' then
        (String.trim (String.sub s 0 (String.length s - 1)), true)
      else (s, false)
    in
    float_of_string_opt s

let percentage = number

let rows s = s.table.Csv.rows

let fold_rows s ~init ~f = List.fold_left f init s.table.Csv.rows
