(** Spreadsheet workbooks — the "Excel" of the paper's workflow.

    A workbook is a set of named sheets, each a header-indexed table.  On
    disk a workbook is either a single [.csv] file (one sheet named after
    the file) or a directory of [.csv] files (one sheet per file).  Cell
    accessors parse the notations used in reliability data: percentages
    ("30%" → 30.0), plain numbers, and FIT values. *)

type sheet = { sheet_name : string; table : Csv.table }

type t = { sheets : sheet list }

val of_csv : name:string -> Csv.t -> t
(** Single-sheet workbook; raises [Invalid_argument] on empty CSV. *)

val load : string -> t
(** Load a [.csv] file or a directory of [.csv] files.  Sheet names are
    file basenames without extension.  Raises [Sys_error]. *)

val save : string -> t -> unit
(** Write each sheet as [<dir>/<sheet>.csv]; creates the directory. *)

val sheet : t -> string -> sheet option
(** Case-insensitive sheet lookup. *)

val first_sheet : t -> sheet
(** Raises [Invalid_argument] on a workbook with no sheets. *)

(** {1 Typed cell access} *)

val cell : sheet -> row:int -> column:string -> string option

val number : string -> float option
(** Parses ["42"], ["4.2e1"], ["30%"] (→ 30.0), [" 10 "] and rejects
    everything else. *)

val percentage : string -> float option
(** Like {!number} but normalises to a [0,100] percentage: ["0.3"] with a
    trailing ["%"] is 0.3; a bare ratio is NOT rescaled (the reliability
    tables write percentages explicitly). *)

val rows : sheet -> string list list

val fold_rows : sheet -> init:'a -> f:('a -> string list -> 'a) -> 'a
