type t = Element of element | Text of string

and element = {
  tag : string;
  attributes : (string * string) list;
  children : t list;
}
[@@deriving eq, show]

exception Parse_error of { pos : int; message : string }

let fail pos message = raise (Parse_error { pos; message })

type state = { src : string; mutable pos : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let looking_at st prefix =
  let n = String.length prefix in
  st.pos + n <= String.length st.src && String.sub st.src st.pos n = prefix

let advance ?(n = 1) st = st.pos <- st.pos + n

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | Some _ | None -> ()

let is_name_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '.' | ':' -> true
  | _ -> false

let parse_name st =
  let start = st.pos in
  while (match peek st with Some c -> is_name_char c | None -> false) do
    advance st
  done;
  if st.pos = start then fail st.pos "expected a name";
  String.sub st.src start (st.pos - start)

let decode_entities pos s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i >= n then Buffer.contents buf
    else if s.[i] = '&' then begin
      match String.index_from_opt s i ';' with
      | None -> fail pos "unterminated entity"
      | Some j ->
          let entity = String.sub s (i + 1) (j - i - 1) in
          (match entity with
          | "lt" -> Buffer.add_char buf '<'
          | "gt" -> Buffer.add_char buf '>'
          | "amp" -> Buffer.add_char buf '&'
          | "quot" -> Buffer.add_char buf '"'
          | "apos" -> Buffer.add_char buf '\''
          | _ ->
              let numeric =
                if String.length entity > 1 && entity.[0] = '#' then
                  let body = String.sub entity 1 (String.length entity - 1) in
                  let code =
                    if String.length body > 1 && (body.[0] = 'x' || body.[0] = 'X')
                    then
                      int_of_string_opt
                        ("0x" ^ String.sub body 1 (String.length body - 1))
                    else int_of_string_opt body
                  in
                  code
                else None
              in
              match numeric with
              | Some code when code < 0x80 -> Buffer.add_char buf (Char.chr code)
              | Some code ->
                  (* Re-encode as UTF-8. *)
                  if code < 0x800 then begin
                    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                  end
                  else begin
                    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                    Buffer.add_char buf
                      (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                  end
              | None -> fail pos (Printf.sprintf "unknown entity &%s;" entity));
          go (j + 1)
    end
    else begin
      Buffer.add_char buf s.[i];
      go (i + 1)
    end
  in
  go 0

let parse_attribute_value st =
  let quote =
    match peek st with
    | Some (('"' | '\'') as q) ->
        advance st;
        q
    | Some _ | None -> fail st.pos "expected quoted attribute value"
  in
  let start = st.pos in
  while (match peek st with Some c -> c <> quote | None -> false) do
    advance st
  done;
  if peek st = None then fail st.pos "unterminated attribute value";
  let raw = String.sub st.src start (st.pos - start) in
  advance st;
  decode_entities start raw

let parse_attributes st =
  let rec go acc =
    skip_ws st;
    match peek st with
    | Some c when is_name_char c ->
        let name = parse_name st in
        skip_ws st;
        (match peek st with
        | Some '=' -> advance st
        | Some _ | None -> fail st.pos "expected '=' after attribute name");
        skip_ws st;
        let value = parse_attribute_value st in
        go ((name, value) :: acc)
    | Some _ | None -> List.rev acc
  in
  go []

let skip_until st marker =
  let rec go () =
    if looking_at st marker then advance ~n:(String.length marker) st
    else if st.pos >= String.length st.src then
      fail st.pos (Printf.sprintf "expected %S before end of input" marker)
    else begin
      advance st;
      go ()
    end
  in
  go ()

let rec skip_misc st =
  skip_ws st;
  if looking_at st "<?" then begin
    skip_until st "?>";
    skip_misc st
  end
  else if looking_at st "<!--" then begin
    skip_until st "-->";
    skip_misc st
  end
  else if looking_at st "<!DOCTYPE" || looking_at st "<!doctype" then begin
    (* Skip to the matching '>' (internal subsets with brackets supported
       shallowly: skip until ']' then '>'). *)
    let rec doctype depth =
      match peek st with
      | None -> fail st.pos "unterminated DOCTYPE"
      | Some '[' ->
          advance st;
          doctype (depth + 1)
      | Some ']' ->
          advance st;
          doctype (depth - 1)
      | Some '>' when depth = 0 -> advance st
      | Some _ ->
          advance st;
          doctype depth
    in
    advance ~n:9 st;
    doctype 0;
    skip_misc st
  end

let rec parse_element st =
  (match peek st with
  | Some '<' -> advance st
  | Some _ | None -> fail st.pos "expected '<'");
  let tag = parse_name st in
  let attributes = parse_attributes st in
  skip_ws st;
  if looking_at st "/>" then begin
    advance ~n:2 st;
    { tag; attributes; children = [] }
  end
  else begin
    (match peek st with
    | Some '>' -> advance st
    | Some _ | None -> fail st.pos "expected '>'");
    let children = parse_children st tag in
    { tag; attributes; children }
  end

and parse_children st tag =
  let close = "</" ^ tag in
  let rec go acc =
    if looking_at st close then begin
      advance ~n:(String.length close) st;
      skip_ws st;
      (match peek st with
      | Some '>' -> advance st
      | Some _ | None -> fail st.pos "malformed closing tag");
      List.rev acc
    end
    else if looking_at st "<!--" then begin
      skip_until st "-->";
      go acc
    end
    else if looking_at st "<![CDATA[" then begin
      advance ~n:9 st;
      let start = st.pos in
      skip_until st "]]>";
      let text = String.sub st.src start (st.pos - start - 3) in
      go (Text text :: acc)
    end
    else if looking_at st "<?" then begin
      skip_until st "?>";
      go acc
    end
    else if looking_at st "</" then
      fail st.pos (Printf.sprintf "mismatched closing tag (expected </%s>)" tag)
    else if looking_at st "<" then go (Element (parse_element st) :: acc)
    else begin
      let start = st.pos in
      while (match peek st with Some '<' -> false | Some _ -> true | None -> false) do
        advance st
      done;
      if peek st = None then fail st.pos "unterminated element content";
      let raw = String.sub st.src start (st.pos - start) in
      let decoded = decode_entities start raw in
      if String.trim decoded = "" then go acc else go (Text decoded :: acc)
    end
  in
  go []

let parse s =
  let st = { src = s; pos = 0 } in
  skip_misc st;
  let e = parse_element st in
  skip_misc st;
  if st.pos <> String.length s then fail st.pos "trailing garbage";
  e

let parse_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> parse (really_input_string ic (in_channel_length ic)))

let escape_text s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let escape_attr s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_string root =
  let buf = Buffer.create 256 in
  let rec emit = function
    | Text s -> Buffer.add_string buf (escape_text s)
    | Element e ->
        Buffer.add_char buf '<';
        Buffer.add_string buf e.tag;
        List.iter
          (fun (k, v) ->
            Buffer.add_string buf (Printf.sprintf " %s=\"%s\"" k (escape_attr v)))
          e.attributes;
        if e.children = [] then Buffer.add_string buf "/>"
        else begin
          Buffer.add_char buf '>';
          List.iter emit e.children;
          Buffer.add_string buf (Printf.sprintf "</%s>" e.tag)
        end
  in
  emit (Element root);
  Buffer.contents buf

let attribute e name = List.assoc_opt name e.attributes

let child_elements e =
  List.filter_map
    (function Element c -> Some c | Text _ -> None)
    e.children

let find_children e tag =
  List.filter (fun c -> String.equal c.tag tag) (child_elements e)

let find_first e tag = List.nth_opt (find_children e tag) 0

let descendants e tag =
  let rec go acc e =
    let acc = if String.equal e.tag tag then e :: acc else acc in
    List.fold_left go acc (child_elements e)
  in
  (* The root participates in the search of its children only if it is not
     the element we start from?  No: include descendants only, per doc. *)
  List.rev (List.fold_left go [] (child_elements e))

let text_content e =
  let buf = Buffer.create 64 in
  let rec go = function
    | Text s -> Buffer.add_string buf s
    | Element e -> List.iter go e.children
  in
  go (Element e);
  String.trim (Buffer.contents buf)
