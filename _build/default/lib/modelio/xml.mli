(** A small XML parser and printer.

    Supports elements, attributes, text and CDATA content, comments,
    processing instructions (skipped) and the five predefined entities.
    DTDs and namespaces-as-semantics are out of scope — prefixed names are
    kept verbatim — which matches the tool's federation needs (reading
    XMI-style and plain configuration XML). *)

type t =
  | Element of element
  | Text of string

and element = {
  tag : string;
  attributes : (string * string) list;
  children : t list;
}
[@@deriving eq, show]

exception Parse_error of { pos : int; message : string }

val parse : string -> element
(** Parses one document (prolog allowed); raises {!Parse_error}. *)

val parse_file : string -> element

val to_string : element -> string
(** No added whitespace; escapes attribute and text content. *)

(** {1 Accessors} *)

val attribute : element -> string -> string option

val child_elements : element -> element list

val find_children : element -> string -> element list
(** Direct children with the given tag. *)

val find_first : element -> string -> element option

val descendants : element -> string -> element list
(** All descendants (document order) with the given tag. *)

val text_content : element -> string
(** Concatenated text of the element and its descendants, trimmed. *)
