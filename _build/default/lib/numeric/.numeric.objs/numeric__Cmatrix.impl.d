lib/numeric/cmatrix.ml: Array Complex Printf
