lib/numeric/cmatrix.mli: Complex
