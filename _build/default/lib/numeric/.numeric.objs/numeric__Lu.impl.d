lib/numeric/lu.ml: Array Float Matrix Vector
