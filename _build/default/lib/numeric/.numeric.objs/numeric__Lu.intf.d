lib/numeric/lu.mli: Matrix Vector
