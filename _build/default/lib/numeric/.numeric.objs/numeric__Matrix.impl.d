lib/numeric/matrix.ml: Array Float Format List Printf
