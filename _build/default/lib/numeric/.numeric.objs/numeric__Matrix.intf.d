lib/numeric/matrix.mli: Format Vector
