lib/numeric/vector.ml: Array Float Format Printf
