lib/numeric/vector.mli: Format
