exception Singular of int

type factors = {
  lu : Matrix.t; (* L below the diagonal (unit diagonal implied), U on and above *)
  perm : int array; (* row permutation applied to the RHS *)
  sign : int; (* permutation parity, for the determinant *)
}

let pivot_threshold = 1e-13

let decompose a =
  let n = Matrix.rows a in
  if Matrix.cols a <> n then invalid_arg "Lu.decompose: not square";
  let lu = Matrix.copy a in
  let perm = Array.init n (fun i -> i) in
  let sign = ref 1 in
  for k = 0 to n - 1 do
    (* Partial pivoting: pick the largest magnitude in column k at/below row k. *)
    let pivot_row = ref k in
    let pivot_mag = ref (Float.abs (Matrix.get lu k k)) in
    for i = k + 1 to n - 1 do
      let m = Float.abs (Matrix.get lu i k) in
      if m > !pivot_mag then begin
        pivot_mag := m;
        pivot_row := i
      end
    done;
    if !pivot_mag < pivot_threshold then raise (Singular k);
    if !pivot_row <> k then begin
      for j = 0 to n - 1 do
        let tmp = Matrix.get lu k j in
        Matrix.set lu k j (Matrix.get lu !pivot_row j);
        Matrix.set lu !pivot_row j tmp
      done;
      let tmp = perm.(k) in
      perm.(k) <- perm.(!pivot_row);
      perm.(!pivot_row) <- tmp;
      sign := - !sign
    end;
    let pivot = Matrix.get lu k k in
    for i = k + 1 to n - 1 do
      let factor = Matrix.get lu i k /. pivot in
      Matrix.set lu i k factor;
      if factor <> 0.0 then
        for j = k + 1 to n - 1 do
          Matrix.add_to lu i j (-.factor *. Matrix.get lu k j)
        done
    done
  done;
  { lu; perm; sign = !sign }

let solve_factored { lu; perm; sign = _ } b =
  let n = Matrix.rows lu in
  if Array.length b <> n then invalid_arg "Lu.solve_factored: dimension";
  let x = Array.init n (fun i -> b.(perm.(i))) in
  (* Forward substitution with unit-diagonal L. *)
  for i = 1 to n - 1 do
    for j = 0 to i - 1 do
      x.(i) <- x.(i) -. (Matrix.get lu i j *. x.(j))
    done
  done;
  (* Back substitution with U. *)
  for i = n - 1 downto 0 do
    for j = i + 1 to n - 1 do
      x.(i) <- x.(i) -. (Matrix.get lu i j *. x.(j))
    done;
    x.(i) <- x.(i) /. Matrix.get lu i i
  done;
  x

let solve a b = solve_factored (decompose a) b

let det a =
  match decompose a with
  | exception Singular _ -> 0.0
  | { lu; sign; _ } ->
      let n = Matrix.rows lu in
      let d = ref (float_of_int sign) in
      for i = 0 to n - 1 do
        d := !d *. Matrix.get lu i i
      done;
      !d

let inverse a =
  let n = Matrix.rows a in
  let f = decompose a in
  let inv = Matrix.create n n in
  for j = 0 to n - 1 do
    let e = Vector.create n in
    e.(j) <- 1.0;
    let col = solve_factored f e in
    for i = 0 to n - 1 do
      Matrix.set inv i j col.(i)
    done
  done;
  inv
