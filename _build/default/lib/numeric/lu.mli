(** LU decomposition with partial pivoting, and linear solves.

    This is the numerical core used by the circuit simulator's MNA
    analysis.  Systems are small (node count + source count), so a dense
    O(n^3) factorisation is appropriate. *)

exception Singular of int
(** Raised when elimination finds no usable pivot at the given step.  For
    the circuit simulator this typically means a floating node (a node with
    no DC path to ground), which failure injection can create. *)

type factors
(** An LU factorisation of a square matrix, with the row permutation. *)

val decompose : Matrix.t -> factors
(** Raises [Singular] if the matrix is (numerically) singular and
    [Invalid_argument] if it is not square. *)

val solve_factored : factors -> Vector.t -> Vector.t

val solve : Matrix.t -> Vector.t -> Vector.t
(** [solve a b] solves [a x = b].  Raises [Singular] / [Invalid_argument]
    as {!decompose}. *)

val det : Matrix.t -> float
(** Determinant via LU; 0 if singular. *)

val inverse : Matrix.t -> Matrix.t
(** Raises [Singular] on singular input. *)
