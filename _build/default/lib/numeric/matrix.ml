type t = { rows : int; cols : int; data : float array }

let create rows cols =
  if rows < 0 || cols < 0 then invalid_arg "Matrix.create: negative dimension";
  { rows; cols; data = Array.make (rows * cols) 0.0 }

let rows m = m.rows

let cols m = m.cols

let index m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg
      (Printf.sprintf "Matrix: index (%d,%d) out of bounds for %dx%d" i j
         m.rows m.cols);
  (i * m.cols) + j

let get m i j = m.data.(index m i j)

let set m i j v = m.data.(index m i j) <- v

let add_to m i j v =
  let k = index m i j in
  m.data.(k) <- m.data.(k) +. v

let identity n =
  let m = create n n in
  for i = 0 to n - 1 do
    set m i i 1.0
  done;
  m

let of_rows rows_list =
  match rows_list with
  | [] -> invalid_arg "Matrix.of_rows: empty"
  | first :: _ ->
      let cols = List.length first in
      if cols = 0 then invalid_arg "Matrix.of_rows: empty row";
      let rows = List.length rows_list in
      let m = create rows cols in
      List.iteri
        (fun i row ->
          if List.length row <> cols then
            invalid_arg "Matrix.of_rows: ragged rows";
          List.iteri (fun j v -> set m i j v) row)
        rows_list;
      m

let copy m = { m with data = Array.copy m.data }

let transpose m =
  let r = create m.cols m.rows in
  for i = 0 to m.rows - 1 do
    for j = 0 to m.cols - 1 do
      set r j i (get m i j)
    done
  done;
  r

let mul a b =
  if a.cols <> b.rows then
    invalid_arg
      (Printf.sprintf "Matrix.mul: %dx%d * %dx%d" a.rows a.cols b.rows b.cols);
  let r = create a.rows b.cols in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = get a i k in
      if aik <> 0.0 then
        for j = 0 to b.cols - 1 do
          add_to r i j (aik *. get b k j)
        done
    done
  done;
  r

let mul_vec m x =
  if m.cols <> Array.length x then
    invalid_arg "Matrix.mul_vec: dimension mismatch";
  Array.init m.rows (fun i ->
      let acc = ref 0.0 in
      for j = 0 to m.cols - 1 do
        acc := !acc +. (get m i j *. x.(j))
      done;
      !acc)

let equal ?(eps = 1e-12) a b =
  a.rows = b.rows && a.cols = b.cols
  && Array.for_all2 (fun x y -> Float.abs (x -. y) <= eps) a.data b.data

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  for i = 0 to m.rows - 1 do
    Format.fprintf ppf "|";
    for j = 0 to m.cols - 1 do
      Format.fprintf ppf " %10.4g" (get m i j)
    done;
    Format.fprintf ppf " |";
    if i < m.rows - 1 then Format.fprintf ppf "@,"
  done;
  Format.fprintf ppf "@]"
