(** Dense row-major float matrices.

    Sized for MNA systems (tens to a few thousands of unknowns); no attempt
    at sparsity.  Mutation is exposed because the MNA assembler stamps
    element contributions in place. *)

type t

val create : int -> int -> t
(** [create rows cols] is the zero matrix. *)

val identity : int -> t

val of_rows : float list list -> t
(** Raises [Invalid_argument] if the rows are ragged or empty. *)

val rows : t -> int

val cols : t -> int

val get : t -> int -> int -> float

val set : t -> int -> int -> float -> unit

val add_to : t -> int -> int -> float -> unit
(** [add_to m i j v] adds [v] to entry [(i, j)] — the MNA "stamp". *)

val copy : t -> t

val transpose : t -> t

val mul : t -> t -> t
(** Matrix product.  Raises [Invalid_argument] on inner-dimension
    mismatch. *)

val mul_vec : t -> Vector.t -> Vector.t

val equal : ?eps:float -> t -> t -> bool
(** Entry-wise comparison with absolute tolerance [eps] (default 1e-12). *)

val pp : Format.formatter -> t -> unit
