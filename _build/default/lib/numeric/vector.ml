type t = float array

let create n = Array.make n 0.0

let of_list = Array.of_list

let dim = Array.length

let copy = Array.copy

let check_dims name x y =
  if Array.length x <> Array.length y then
    invalid_arg
      (Printf.sprintf "Vector.%s: dimension mismatch (%d vs %d)" name
         (Array.length x) (Array.length y))

let add x y =
  check_dims "add" x y;
  Array.mapi (fun i xi -> xi +. y.(i)) x

let sub x y =
  check_dims "sub" x y;
  Array.mapi (fun i xi -> xi -. y.(i)) x

let scale k x = Array.map (fun xi -> k *. xi) x

let dot x y =
  check_dims "dot" x y;
  let acc = ref 0.0 in
  for i = 0 to Array.length x - 1 do
    acc := !acc +. (x.(i) *. y.(i))
  done;
  !acc

let norm_inf x = Array.fold_left (fun m xi -> Float.max m (Float.abs xi)) 0.0 x

let norm2 x = sqrt (dot x x)

let max_abs_diff x y =
  check_dims "max_abs_diff" x y;
  let m = ref 0.0 in
  for i = 0 to Array.length x - 1 do
    m := Float.max !m (Float.abs (x.(i) -. y.(i)))
  done;
  !m

let pp ppf x =
  Format.fprintf ppf "[@[%a@]]"
    (Format.pp_print_array
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       (fun ppf v -> Format.fprintf ppf "%g" v))
    x
