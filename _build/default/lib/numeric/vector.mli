(** Dense float vectors.

    Thin wrappers over [float array] used by the MNA solver in
    {!module:Circuit}.  All operations allocate fresh vectors unless the name
    ends in [_into]. *)

type t = float array

val create : int -> t
(** [create n] is the zero vector of dimension [n]. *)

val of_list : float list -> t

val dim : t -> int

val copy : t -> t

val add : t -> t -> t
(** [add x y] is the element-wise sum.  Raises [Invalid_argument] on
    dimension mismatch. *)

val sub : t -> t -> t

val scale : float -> t -> t

val dot : t -> t -> float

val norm_inf : t -> float
(** Maximum absolute entry; 0 for the empty vector. *)

val norm2 : t -> float
(** Euclidean norm. *)

val max_abs_diff : t -> t -> float
(** [max_abs_diff x y] is [norm_inf (sub x y)] without the intermediate
    allocation. *)

val pp : Format.formatter -> t -> unit
