lib/optimize/search.pp.ml: Float Fmea List Ppx_deriving_runtime Printf Reliability String
