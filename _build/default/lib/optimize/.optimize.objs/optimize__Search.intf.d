lib/optimize/search.pp.mli: Fmea Ppx_deriving_runtime Reliability Ssam
