type candidate = {
  deployments : Fmea.Fmeda.deployment list;
  spfm_pct : float;
  cost : float;
}
[@@deriving show]

type slot = {
  slot_component : string;
  slot_failure_mode : string;
  slot_options : Reliability.Sm_model.mechanism list;
}

let slots ?(component_types = []) (table : Fmea.Table.t) sm_model =
  List.filter_map
    (fun (r : Fmea.Table.row) ->
      if not r.Fmea.Table.safety_related then None
      else
        let ctype =
          match List.assoc_opt r.Fmea.Table.component component_types with
          | Some ty -> ty
          | None -> r.Fmea.Table.component
        in
        let options =
          Reliability.Sm_model.applicable sm_model ~component_type:ctype
            ~failure_mode:r.Fmea.Table.failure_mode
        in
        if options = [] then None
        else
          Some
            {
              slot_component = r.Fmea.Table.component;
              slot_failure_mode = r.Fmea.Table.failure_mode;
              slot_options = options;
            })
    table.Fmea.Table.rows

let evaluate table deployments =
  let fmeda = Fmea.Fmeda.apply table deployments in
  {
    deployments;
    spfm_pct = Fmea.Metrics.spfm fmeda;
    cost = Fmea.Fmeda.total_cost deployments;
  }

let exhaustive ?(component_types = []) ?(max_combinations = 200_000) table
    sm_model =
  let slots = slots ~component_types table sm_model in
  let combinations =
    List.fold_left
      (fun acc s -> acc * (List.length s.slot_options + 1))
      1 slots
  in
  if combinations > max_combinations then
    invalid_arg
      (Printf.sprintf
         "Search.exhaustive: %d combinations exceed the limit of %d"
         combinations max_combinations);
  let rec expand chosen = function
    | [] -> [ List.rev chosen ]
    | s :: rest ->
        let without = expand chosen rest in
        let with_each =
          List.concat_map
            (fun m ->
              expand
                (Fmea.Fmeda.deploy ~component:s.slot_component
                   ~failure_mode:s.slot_failure_mode m
                :: chosen)
                rest)
            s.slot_options
        in
        without @ with_each
  in
  List.map (evaluate table) (expand [] slots)

let greedy ?(component_types = []) ~target table sm_model =
  let all_slots = slots ~component_types table sm_model in
  let target_spfm = Fmea.Asil.spfm_target target in
  let met spfm =
    match target_spfm with None -> true | Some t -> spfm >= t
  in
  let rec step current =
    let current_candidate = evaluate table current in
    if met current_candidate.spfm_pct then current_candidate
    else begin
      (* Candidate moves: deploy a mechanism on an empty slot, or upgrade
         the mechanism on an occupied one.  Score is SPFM gain per added
         cost (upgrades count only the cost delta, floored so free or
         cheaper upgrades are strongly preferred). *)
      let slot_matches s (d : Fmea.Fmeda.deployment) =
        String.equal d.Fmea.Fmeda.target_component s.slot_component
        && String.equal d.Fmea.Fmeda.target_failure_mode s.slot_failure_mode
      in
      let best =
        List.fold_left
          (fun acc s ->
            let existing = List.find_opt (slot_matches s) current in
            let others = List.filter (fun d -> not (slot_matches s d)) current in
            List.fold_left
              (fun acc (m : Reliability.Sm_model.mechanism) ->
                let already =
                  match existing with
                  | Some d -> d.Fmea.Fmeda.mechanism = m
                  | None -> false
                in
                if already then acc
                else begin
                  let d =
                    Fmea.Fmeda.deploy ~component:s.slot_component
                      ~failure_mode:s.slot_failure_mode m
                  in
                  let next = d :: others in
                  let c = evaluate table next in
                  let gain = c.spfm_pct -. current_candidate.spfm_pct in
                  let cost_delta =
                    m.Reliability.Sm_model.cost
                    -.
                    match existing with
                    | Some e -> e.Fmea.Fmeda.mechanism.Reliability.Sm_model.cost
                    | None -> 0.0
                  in
                  let score = gain /. Float.max cost_delta 0.01 in
                  if gain <= 0.0 then acc
                  else
                    match acc with
                    | Some (_, best_score) when best_score >= score -> acc
                    | Some _ | None -> Some (next, score)
                end)
              acc s.slot_options)
          None all_slots
      in
      match best with
      | None -> current_candidate (* no mechanism helps further *)
      | Some (next, _) -> step next
    end
  in
  step []

(* Sort by ascending cost (descending SPFM within equal cost; stable, so
   the earliest candidate wins ties) and sweep: a candidate survives iff
   its SPFM strictly beats everything cheaper-or-equal already kept.
   O(n log n) — the exhaustive search can emit tens of thousands of
   candidates, so the naive pairwise check is far too slow. *)
let pareto_front candidates =
  let sorted =
    List.stable_sort
      (fun a b ->
        match Float.compare a.cost b.cost with
        | 0 -> Float.compare b.spfm_pct a.spfm_pct
        | n -> n)
      candidates
  in
  let front, _ =
    List.fold_left
      (fun (kept, best_spfm) c ->
        if c.spfm_pct > best_spfm then (c :: kept, c.spfm_pct)
        else (kept, best_spfm))
      ([], Float.neg_infinity) sorted
  in
  List.rev front

let cheapest_meeting ~target candidates =
  let target_spfm = Fmea.Asil.spfm_target target in
  let meets c =
    match target_spfm with None -> true | Some t -> c.spfm_pct >= t
  in
  List.fold_left
    (fun acc c ->
      if not (meets c) then acc
      else
        match acc with
        | None -> Some c
        | Some best ->
            if
              c.cost < best.cost
              || (c.cost = best.cost && c.spfm_pct > best.spfm_pct)
            then Some c
            else acc)
    None candidates

let optimise ?(component_types = []) ~target table sm_model =
  match exhaustive ~component_types table sm_model with
  | candidates ->
      (cheapest_meeting ~target candidates, pareto_front candidates)
  | exception Invalid_argument _ ->
      let g = greedy ~component_types ~target table sm_model in
      (Some g, [ g ])
