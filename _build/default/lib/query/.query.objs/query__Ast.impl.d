lib/query/ast.pp.ml: List Ppx_deriving_runtime
