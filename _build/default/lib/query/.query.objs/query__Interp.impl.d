lib/query/interp.pp.ml: Ast Bool Buffer Float Format List Map Modelio Mvalue Option Parser Printf Spreadsheet String
