lib/query/interp.pp.mli: Ast Modelio
