lib/query/lexer.pp.ml: Buffer List Printf String Token
