lib/query/lexer.pp.mli: Token
