lib/query/parser.pp.ml: Ast Lexer List Printf Token
