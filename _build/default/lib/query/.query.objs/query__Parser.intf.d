lib/query/parser.pp.mli: Ast
