lib/query/token.pp.ml: Ppx_deriving_runtime Printf
