(** Evaluator for the SAME query language.

    Values are {!Modelio.Mvalue.t}; the environment binds variable names
    (and model roots injected by the caller) to values. *)

exception Runtime_error of string

type env

val env_empty : env

val env_bind : env -> string -> Modelio.Mvalue.t -> env

val env_of_models : (string * Modelio.Mvalue.t) list -> env

val eval_expr : env -> Ast.expr -> Modelio.Mvalue.t
(** Raises {!Runtime_error} on type errors, unknown identifiers or unknown
    methods. *)

val run : env -> Ast.program -> Modelio.Mvalue.t
(** Executes statements in order; the result is the value of the first
    [return], or of the last expression statement, or [Null] for an
    empty/effect-free program. *)

val run_string : env -> string -> Modelio.Mvalue.t
(** Parse and {!run}.  Raises {!Runtime_error}, {!Parser.Parse_error} or
    {!Lexer.Lex_error}. *)

(** {1 Built-in methods}

    Collections: [select(x|p)] [reject(x|p)] [collect(x|e)] [exists(x|p)]
    [forAll(x|p)] [selectOne(x|p)] [sortBy(x|e)] [size()] [first()]
    [last()] [at(i)] [sum()] [avg()] [min()] [max()] [isEmpty()]
    [notEmpty()] [includes(v)] [flatten()] [distinct()] [count(x|p)]
    [indexOf(v)].

    Strings: [toUpperCase()] [toLowerCase()] [trim()] [length()]
    [startsWith(s)] [endsWith(s)] [contains(s)] [split(sep)] [toNumber()]
    [replace(a,b)].

    Numbers: [abs()] [floor()] [ceil()] [round()] [toStr()].

    Records: [fields()] [has(name)] [get(name)] — plus direct [.name]
    navigation.  Navigating [.name] on a [Seq] maps the access over the
    elements (EOL-style collection navigation). *)
