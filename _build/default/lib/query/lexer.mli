(** Lexer for the SAME query language.

    Comments: [// to end of line] and [/* ... */].  Strings use single or
    double quotes with backslash escapes. *)

exception Lex_error of { pos : int; message : string }

val tokenize : string -> (Token.t * int) list
(** Token plus its starting offset; always ends with [(EOF, _)].
    Raises {!Lex_error}. *)
