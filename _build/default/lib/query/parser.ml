exception Parse_error of { pos : int; message : string }

type state = { mutable toks : (Token.t * int) list }

let fail pos message = raise (Parse_error { pos; message })

let peek st =
  match st.toks with
  | (t, p) :: _ -> (t, p)
  | [] -> (Token.EOF, 0)

let advance st =
  match st.toks with _ :: tl -> st.toks <- tl | [] -> ()

let expect st tok =
  let t, p = peek st in
  if Token.equal t tok then advance st
  else
    fail p
      (Printf.sprintf "expected %s, found %s" (Token.describe tok)
         (Token.describe t))

let expect_ident st =
  match peek st with
  | Token.IDENT name, _ ->
      advance st;
      name
  | t, p -> fail p (Printf.sprintf "expected identifier, found %s" (Token.describe t))

let rec parse_expr st = parse_implies st

and parse_implies st =
  let lhs = parse_or st in
  match peek st with
  | Token.IMPLIES, _ ->
      advance st;
      let rhs = parse_implies st in
      Ast.Binop (Ast.Implies, lhs, rhs)
  | _ -> lhs

and parse_or st =
  let rec go lhs =
    match peek st with
    | Token.OR, _ ->
        advance st;
        go (Ast.Binop (Ast.Or, lhs, parse_and st))
    | _ -> lhs
  in
  go (parse_and st)

and parse_and st =
  let rec go lhs =
    match peek st with
    | Token.AND, _ ->
        advance st;
        go (Ast.Binop (Ast.And, lhs, parse_cmp st))
    | _ -> lhs
  in
  go (parse_cmp st)

and parse_cmp st =
  let lhs = parse_add st in
  let op =
    match peek st with
    | Token.EQ, _ -> Some Ast.Eq
    | Token.NEQ, _ -> Some Ast.Neq
    | Token.LT, _ -> Some Ast.Lt
    | Token.LE, _ -> Some Ast.Le
    | Token.GT, _ -> Some Ast.Gt
    | Token.GE, _ -> Some Ast.Ge
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some op ->
      advance st;
      Ast.Binop (op, lhs, parse_add st)

and parse_add st =
  let rec go lhs =
    match peek st with
    | Token.PLUS, _ ->
        advance st;
        go (Ast.Binop (Ast.Add, lhs, parse_mul st))
    | Token.MINUS, _ ->
        advance st;
        go (Ast.Binop (Ast.Sub, lhs, parse_mul st))
    | _ -> lhs
  in
  go (parse_mul st)

and parse_mul st =
  let rec go lhs =
    match peek st with
    | Token.STAR, _ ->
        advance st;
        go (Ast.Binop (Ast.Mul, lhs, parse_unary st))
    | Token.SLASH, _ ->
        advance st;
        go (Ast.Binop (Ast.Div, lhs, parse_unary st))
    | Token.MOD, _ ->
        advance st;
        go (Ast.Binop (Ast.Mod, lhs, parse_unary st))
    | _ -> lhs
  in
  go (parse_unary st)

and parse_unary st =
  match peek st with
  | Token.MINUS, _ ->
      advance st;
      Ast.Unop (Ast.Neg, parse_unary st)
  | Token.NOT, _ ->
      advance st;
      Ast.Unop (Ast.Not, parse_unary st)
  | _ -> parse_postfix st

and parse_postfix st =
  let rec go e =
    match peek st with
    | Token.DOT, _ ->
        advance st;
        let name = expect_ident st in
        (match peek st with
        | Token.LPAREN, _ ->
            advance st;
            let args = parse_args st in
            expect st Token.RPAREN;
            go (Ast.Call (e, name, args))
        | _ -> go (Ast.Field (e, name)))
    | Token.LBRACKET, _ ->
        advance st;
        let idx = parse_expr st in
        expect st Token.RBRACKET;
        go (Ast.Index (e, idx))
    | _ -> e
  in
  go (parse_primary st)

and parse_args st =
  match peek st with
  | Token.RPAREN, _ -> []
  | _ ->
      (* A leading `IDENT |` introduces a lambda argument. *)
      let first =
        match st.toks with
        | (Token.IDENT name, _) :: (Token.BAR, _) :: rest ->
            st.toks <- rest;
            Ast.Lambda (name, parse_expr st)
        | _ -> Ast.Positional (parse_expr st)
      in
      let rec more acc =
        match peek st with
        | Token.COMMA, _ ->
            advance st;
            more (Ast.Positional (parse_expr st) :: acc)
        | _ -> List.rev acc
      in
      more [ first ]

and parse_primary st =
  match peek st with
  | Token.NUMBER f, _ ->
      advance st;
      Ast.Number f
  | Token.STRING s, _ ->
      advance st;
      Ast.String s
  | Token.TRUE, _ ->
      advance st;
      Ast.Bool true
  | Token.FALSE, _ ->
      advance st;
      Ast.Bool false
  | Token.NULL, _ ->
      advance st;
      Ast.Null
  | Token.IDENT "Sequence", _ ->
      advance st;
      expect st Token.LPAREN;
      let items =
        match peek st with
        | Token.RPAREN, _ -> []
        | _ ->
            let rec go acc =
              let e = parse_expr st in
              match peek st with
              | Token.COMMA, _ ->
                  advance st;
                  go (e :: acc)
              | _ -> List.rev (e :: acc)
            in
            go []
      in
      expect st Token.RPAREN;
      Ast.Seq_lit items
  | Token.IDENT name, _ ->
      advance st;
      Ast.Ident name
  | Token.LPAREN, _ ->
      advance st;
      let e = parse_expr st in
      expect st Token.RPAREN;
      e
  | Token.IF, _ ->
      advance st;
      expect st Token.LPAREN;
      let cond = parse_expr st in
      expect st Token.RPAREN;
      let then_ = parse_expr st in
      expect st Token.ELSE;
      let else_ = parse_expr st in
      Ast.If_expr (cond, then_, else_)
  | t, p -> fail p (Printf.sprintf "unexpected %s" (Token.describe t))

let rec parse_stmt st =
  match peek st with
  | Token.VAR, _ ->
      advance st;
      let name = expect_ident st in
      expect st Token.ASSIGN;
      let e = parse_expr st in
      expect st Token.SEMI;
      Ast.Var_decl (name, e)
  | Token.RETURN, _ ->
      advance st;
      let e = parse_expr st in
      expect st Token.SEMI;
      Ast.Return e
  | Token.IF, _ ->
      (* Statement-level if: 'if' '(' e ')' block ('else' block)?
         Disambiguated from the expression form by trying the statement
         form first; an expression-if inside a statement needs parens. *)
      advance st;
      expect st Token.LPAREN;
      let cond = parse_expr st in
      expect st Token.RPAREN;
      let then_ = parse_block st in
      let else_ =
        match peek st with
        | Token.ELSE, _ ->
            advance st;
            parse_block st
        | _ -> []
      in
      Ast.If_stmt (cond, then_, else_)
  | Token.IDENT name, _ -> (
      (* Could be `x := e;` or an expression statement. *)
      match st.toks with
      | (Token.IDENT _, _) :: (Token.ASSIGN, _) :: rest ->
          st.toks <- rest;
          let e = parse_expr st in
          expect st Token.SEMI;
          Ast.Assign (name, e)
      | _ ->
          let e = parse_expr st in
          expect st Token.SEMI;
          Ast.Expr_stmt e)
  | _ ->
      let e = parse_expr st in
      expect st Token.SEMI;
      Ast.Expr_stmt e

and parse_block st =
  (* No '{' '}' tokens in the lexer; blocks are single statements. *)
  [ parse_stmt st ]

let parse_program src =
  let st = { toks = Lexer.tokenize src } in
  (* A bare expression (no trailing ';') is a one-expression program. *)
  let rec stmts acc =
    match peek st with
    | Token.EOF, _ -> List.rev acc
    | _ ->
        (* Try a statement; if the expression is not followed by ';' and we
           are at EOF, accept it as the program's result. *)
        let saved = st.toks in
        (match parse_stmt st with
        | s -> stmts (s :: acc)
        | exception Parse_error _ when acc = [] || true -> (
            st.toks <- saved;
            let e = parse_expr st in
            match peek st with
            | Token.EOF, _ -> List.rev (Ast.Return e :: acc)
            | t, p ->
                fail p (Printf.sprintf "unexpected %s" (Token.describe t))))
  in
  stmts []

let parse_expression src =
  let st = { toks = Lexer.tokenize src } in
  let e = parse_expr st in
  (match peek st with
  | Token.EOF, _ -> ()
  | t, p -> fail p (Printf.sprintf "trailing %s" (Token.describe t)));
  e
