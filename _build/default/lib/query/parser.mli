(** Recursive-descent parser for the SAME query language.

    Grammar sketch (precedence low → high):
    {v
    program   ::= stmt* | expr            (a bare expression is a program
                                           returning its value)
    stmt      ::= 'var' IDENT ':=' expr ';'
                | IDENT ':=' expr ';'
                | 'return' expr ';'
                | 'if' '(' expr ')' block ('else' block)?
                | expr ';'
    block     ::= '{' stmt* '}' | stmt
    expr      ::= implies
    implies   ::= or ('implies' or)*
    or        ::= and ('or' and)*
    and       ::= cmp ('and' cmp)*
    cmp       ::= add (('='|'<>'|'<'|'<='|'>'|'>=') add)?
    add       ::= mul (('+'|'-') mul)*
    mul       ::= unary (('*'|'/'|'mod') unary)*
    unary     ::= ('-'|'not') unary | postfix
    postfix   ::= primary ('.' IDENT ( '(' args ')' )? | '[' expr ']')*
    primary   ::= NUMBER | STRING | 'true' | 'false' | 'null'
                | IDENT | '(' expr ')'
                | 'Sequence' '(' exprs ')'
                | 'if' '(' expr ')' expr 'else' expr
    args      ::= (IDENT '|' expr | expr) (',' expr)*
    v} *)

exception Parse_error of { pos : int; message : string }

val parse_program : string -> Ast.program
(** Raises {!Parse_error} or {!Lexer.Lex_error}. *)

val parse_expression : string -> Ast.expr
(** Parses a single expression (the common case for extraction
    constraints). *)
