(** Lexical tokens of the SAME query language. *)

type t =
  | IDENT of string
  | NUMBER of float
  | STRING of string
  | TRUE
  | FALSE
  | NULL
  | VAR
  | RETURN
  | IF
  | ELSE
  | AND
  | OR
  | NOT
  | MOD
  | IMPLIES
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | DOT
  | COMMA
  | SEMI
  | BAR
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | EQ          (* =  *)
  | NEQ         (* <> *)
  | LT
  | LE
  | GT
  | GE
  | ASSIGN      (* := *)
  | EOF
[@@deriving eq, show]

let describe = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | NUMBER f -> Printf.sprintf "number %g" f
  | STRING s -> Printf.sprintf "string %S" s
  | TRUE -> "'true'"
  | FALSE -> "'false'"
  | NULL -> "'null'"
  | VAR -> "'var'"
  | RETURN -> "'return'"
  | IF -> "'if'"
  | ELSE -> "'else'"
  | AND -> "'and'"
  | OR -> "'or'"
  | NOT -> "'not'"
  | MOD -> "'mod'"
  | IMPLIES -> "'implies'"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | LBRACKET -> "'['"
  | RBRACKET -> "']'"
  | DOT -> "'.'"
  | COMMA -> "','"
  | SEMI -> "';'"
  | BAR -> "'|'"
  | PLUS -> "'+'"
  | MINUS -> "'-'"
  | STAR -> "'*'"
  | SLASH -> "'/'"
  | EQ -> "'='"
  | NEQ -> "'<>'"
  | LT -> "'<'"
  | LE -> "'<='"
  | GT -> "'>'"
  | GE -> "'>='"
  | ASSIGN -> "':='"
  | EOF -> "end of input"
