lib/reliability/fit.pp.ml: Float Format List Printf
