lib/reliability/fit.pp.mli: Format
