lib/reliability/reliability_model.pp.ml: Circuit Fit Float Json List Modelio Option Ppx_deriving_runtime Printf String
