lib/reliability/reliability_model.pp.mli: Circuit Fit Modelio Ppx_deriving_runtime
