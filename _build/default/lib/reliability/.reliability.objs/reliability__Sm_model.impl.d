lib/reliability/sm_model.pp.ml: Circuit Float List Modelio Option Ppx_deriving_runtime Printf String
