lib/reliability/sm_model.pp.mli: Modelio Ppx_deriving_runtime
