type mechanism = {
  sm_name : string;
  component_type : string;
  failure_mode : string;
  coverage_pct : float;
  cost : float;
}
[@@deriving eq, show]

type t = mechanism list

exception Format_error of string

let empty = []

let add t m = t @ [ m ]

let of_mechanisms ms = ms

let mechanisms t = t

let canon_type name =
  let low = String.lowercase_ascii (String.trim name) in
  match Circuit.Library.find low with
  | Some info -> info.Circuit.Library.block_type
  | None -> low

let canon_fm name = String.lowercase_ascii (String.trim name)

let applicable t ~component_type ~failure_mode =
  let ct = canon_type component_type and fm = canon_fm failure_mode in
  List.filter
    (fun m ->
      String.equal (canon_type m.component_type) ct
      && String.equal (canon_fm m.failure_mode) fm)
    t
  |> List.sort (fun a b -> Float.compare b.coverage_pct a.coverage_pct)

let table_iii =
  [
    {
      sm_name = "ECC";
      component_type = "MCU";
      failure_mode = "RAM Failure";
      coverage_pct = 99.0;
      cost = 2.0;
    };
  ]

let extended_catalogue =
  table_iii
  @ [
      {
        sm_name = "time-out watchdog";
        component_type = "MCU";
        failure_mode = "RAM Failure";
        coverage_pct = 70.0;
        cost = 0.5;
      };
      {
        sm_name = "dual-core lockstep";
        component_type = "MCU";
        failure_mode = "RAM Failure";
        coverage_pct = 99.0;
        cost = 8.0;
      };
      {
        sm_name = "time-out watchdog";
        component_type = "PLL";
        failure_mode = "Lower frequency";
        coverage_pct = 70.0;
        cost = 0.5;
      };
      {
        sm_name = "dual-core lockstep";
        component_type = "PLL";
        failure_mode = "Jitter";
        coverage_pct = 99.0;
        cost = 8.0;
      };
      {
        sm_name = "redundant diode";
        component_type = "diode";
        failure_mode = "Open";
        coverage_pct = 90.0;
        cost = 1.0;
      };
      {
        sm_name = "current-limit monitor";
        component_type = "inductor";
        failure_mode = "Open";
        coverage_pct = 80.0;
        cost = 1.5;
      };
      {
        sm_name = "rail voltage monitor";
        component_type = "vsource";
        failure_mode = "Loss of output";
        coverage_pct = 95.0;
        cost = 1.0;
      };
      {
        sm_name = "plausibility check";
        component_type = "current_sensor";
        failure_mode = "Reading loss";
        coverage_pct = 60.0;
        cost = 0.5;
      };
      {
        sm_name = "redundant sensor";
        component_type = "current_sensor";
        failure_mode = "Reading loss";
        coverage_pct = 95.0;
        cost = 2.5;
      };
      {
        sm_name = "redundant sensor";
        component_type = "voltage_sensor";
        failure_mode = "Reading loss";
        coverage_pct = 95.0;
        cost = 2.5;
      };
      {
        sm_name = "redundant switch path";
        component_type = "switch";
        failure_mode = "Stuck open";
        coverage_pct = 90.0;
        cost = 1.5;
      };
      {
        sm_name = "load health monitor";
        component_type = "load";
        failure_mode = "Open";
        coverage_pct = 85.0;
        cost = 1.0;
      };
      {
        sm_name = "redundant inductor";
        component_type = "inductor";
        failure_mode = "Open";
        coverage_pct = 90.0;
        cost = 2.0;
      };
      {
        sm_name = "watchdog restart";
        component_type = "task";
        failure_mode = "Crash";
        coverage_pct = 90.0;
        cost = 1.0;
      };
      {
        sm_name = "heartbeat monitor";
        component_type = "task";
        failure_mode = "Hang";
        coverage_pct = 85.0;
        cost = 1.0;
      };
      {
        sm_name = "N-version execution";
        component_type = "task";
        failure_mode = "Crash";
        coverage_pct = 99.0;
        cost = 12.0;
      };
      {
        sm_name = "parallel diode";
        component_type = "diode";
        failure_mode = "Open";
        coverage_pct = 95.0;
        cost = 1.5;
      };
    ]

let of_spreadsheet workbook =
  let sheet = Modelio.Spreadsheet.first_sheet workbook in
  let tbl = sheet.Modelio.Spreadsheet.table in
  let find_col names =
    List.find_map (fun n -> Modelio.Csv.column_index tbl n) names
  in
  let comp_col = find_col [ "Component" ] in
  let fm_col = find_col [ "Failure_Mode"; "Failure Mode" ] in
  let sm_col = find_col [ "Safety_Mechanism"; "Safety Mechanism" ] in
  let cov_col = find_col [ "Cov."; "Cov"; "Coverage" ] in
  let cost_col = find_col [ "Cost(hrs)"; "Cost"; "Cost (hrs)" ] in
  let require what = function
    | Some c -> c
    | None -> raise (Format_error (Printf.sprintf "missing column %s" what))
  in
  let comp_col = require "Component" comp_col in
  let fm_col = require "Failure_Mode" fm_col in
  let sm_col = require "Safety_Mechanism" sm_col in
  let cov_col = require "Cov." cov_col in
  let cost_col = require "Cost(hrs)" cost_col in
  let cell row i = Option.value ~default:"" (List.nth_opt row i) in
  let number what raw =
    match Modelio.Spreadsheet.number raw with
    | Some f -> f
    | None -> raise (Format_error (Printf.sprintf "%s: not a number: %S" what raw))
  in
  List.map
    (fun row ->
      {
        sm_name = cell row sm_col;
        component_type = cell row comp_col;
        failure_mode = cell row fm_col;
        coverage_pct = number "coverage" (cell row cov_col);
        cost = number "cost" (cell row cost_col);
      })
    tbl.Modelio.Csv.rows

let to_spreadsheet t =
  let rows =
    List.map
      (fun m ->
        [
          m.component_type;
          m.failure_mode;
          m.sm_name;
          Printf.sprintf "%g%%" m.coverage_pct;
          Printf.sprintf "%g" m.cost;
        ])
      t
  in
  Modelio.Spreadsheet.of_csv ~name:"safety_mechanisms"
    ([ "Component"; "Failure_Mode"; "Safety_Mechanism"; "Cov."; "Cost(hrs)" ]
    :: rows)

let validate t =
  List.concat_map
    (fun m ->
      let coverage_problem =
        if m.coverage_pct < 0.0 || m.coverage_pct > 100.0 then
          [
            Printf.sprintf "%s/%s/%s: coverage %g%% outside [0,100]"
              m.component_type m.failure_mode m.sm_name m.coverage_pct;
          ]
        else []
      in
      let cost_problem =
        if m.cost < 0.0 then
          [
            Printf.sprintf "%s/%s/%s: negative cost" m.component_type
              m.failure_mode m.sm_name;
          ]
        else []
      in
      coverage_problem @ cost_problem)
    t
