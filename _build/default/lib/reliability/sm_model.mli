(** The safety mechanism model (DECISIVE Step 4b, Table III).

    Catalogues the safety mechanisms deployable per component type and
    failure mode, with diagnostic coverage and engineering cost.  SAME
    enumerates these in the search of {!module:Optimize}. *)

type mechanism = {
  sm_name : string;  (** e.g. ["ECC"], ["time-out watchdog"] *)
  component_type : string;  (** target component type *)
  failure_mode : string;  (** failure mode covered *)
  coverage_pct : float;  (** diagnostic coverage in [0,100] *)
  cost : float;  (** engineering cost, hours *)
}
[@@deriving eq, show]

type t

val empty : t

val add : t -> mechanism -> t

val of_mechanisms : mechanism list -> t

val mechanisms : t -> mechanism list

val applicable : t -> component_type:string -> failure_mode:string -> mechanism list
(** Mechanisms for the given (type, failure mode), case-insensitive and
    alias-aware on the type, sorted by descending coverage. *)

val table_iii : t
(** The paper's Table III: ECC for MCU RAM failures, 99 % coverage,
    2.0 hours. *)

val extended_catalogue : t
(** Table III plus the mechanisms the paper names elsewhere (time-out
    watchdog 70 %, dual-core lockstep 99 % from Table I) and stock
    electrical mechanisms (redundant diode, current-limit monitor...),
    used by the optimisation benches. *)

exception Format_error of string

val of_spreadsheet : Modelio.Spreadsheet.t -> t
(** Columns: Component, Failure_Mode, Safety_Mechanism, Cov., Cost(hrs)
    (header names tolerated case-insensitively, "Coverage"/"Cov" and
    "Cost" accepted).  Raises {!Format_error}. *)

val to_spreadsheet : t -> Modelio.Spreadsheet.t

val validate : t -> string list
