lib/ssam/allocation.pp.ml: Architecture Base Format List Mbsa Model Printf Requirement String
