lib/ssam/allocation.pp.mli: Base Format Mbsa Model Requirement
