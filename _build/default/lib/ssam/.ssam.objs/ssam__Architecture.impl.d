lib/ssam/architecture.pp.ml: Base List Ppx_deriving_runtime Requirement String
