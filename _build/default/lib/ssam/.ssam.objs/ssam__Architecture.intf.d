lib/ssam/architecture.pp.mli: Base Ppx_deriving_runtime Requirement
