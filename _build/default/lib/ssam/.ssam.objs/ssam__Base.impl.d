lib/ssam/base.pp.ml: Lang_string List Ppx_deriving_runtime Printf
