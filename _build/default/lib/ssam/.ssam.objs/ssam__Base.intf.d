lib/ssam/base.pp.mli: Lang_string Ppx_deriving_runtime
