lib/ssam/diff.pp.ml: Architecture Base Format Hashtbl Hazard List Model Option Requirement String
