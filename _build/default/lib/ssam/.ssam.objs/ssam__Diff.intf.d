lib/ssam/diff.pp.mli: Base Format Model
