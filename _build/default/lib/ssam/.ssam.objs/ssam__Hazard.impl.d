lib/ssam/hazard.pp.ml: Base List Ppx_deriving_runtime String
