lib/ssam/hazard.pp.mli: Base Ppx_deriving_runtime
