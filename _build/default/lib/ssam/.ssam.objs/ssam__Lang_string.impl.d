lib/ssam/lang_string.pp.ml: Format List Ppx_deriving_runtime String
