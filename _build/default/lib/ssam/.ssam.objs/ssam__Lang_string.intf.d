lib/ssam/lang_string.pp.mli: Format Ppx_deriving_runtime
