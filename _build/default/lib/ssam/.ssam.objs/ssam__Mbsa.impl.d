lib/ssam/mbsa.pp.ml: Base List Ppx_deriving_runtime String
