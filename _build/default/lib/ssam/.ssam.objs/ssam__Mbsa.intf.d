lib/ssam/mbsa.pp.mli: Base Ppx_deriving_runtime
