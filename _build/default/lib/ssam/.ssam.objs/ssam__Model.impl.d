lib/ssam/model.pp.ml: Architecture Base Hashtbl Hazard List Mbsa Requirement
