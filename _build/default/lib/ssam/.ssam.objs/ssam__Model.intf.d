lib/ssam/model.pp.mli: Architecture Base Hazard Mbsa Requirement
