lib/ssam/persist.pp.ml: Architecture Base Fun Hazard Lang_string List Mbsa Model Modelio Option Printf Requirement String
