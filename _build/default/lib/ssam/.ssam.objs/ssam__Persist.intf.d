lib/ssam/persist.pp.mli: Model Modelio
