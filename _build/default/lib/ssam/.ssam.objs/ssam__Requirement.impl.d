lib/ssam/requirement.pp.ml: Base List Option Ppx_deriving_runtime Printf String
