lib/ssam/requirement.pp.mli: Base Ppx_deriving_runtime
