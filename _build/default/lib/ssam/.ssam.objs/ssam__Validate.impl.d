lib/ssam/validate.pp.ml: Architecture Base Float Format Hashtbl Hazard List Mbsa Model Option Ppx_deriving_runtime Printf Requirement String
