lib/ssam/validate.pp.mli: Base Format Model Ppx_deriving_runtime
