let allocate ~requirement ~component =
  Mbsa.trace_link
    ~meta:(Base.meta (Printf.sprintf "alloc:%s->%s" requirement component))
    ~kind:Mbsa.Allocates ~source:requirement ~target:component

type violation =
  | Unallocated of Base.id
  | Insufficient_integrity of {
      requirement : Base.id;
      required : Requirement.integrity_level;
      component : Base.id;
      actual : Requirement.integrity_level option;
    }
  | Dangling of { link : Base.id; missing : Base.id }
  | Not_a_requirement of { link : Base.id; id : Base.id }
  | Not_a_component of { link : Base.id; id : Base.id }

let pp_violation ppf = function
  | Unallocated id ->
      Format.fprintf ppf "safety requirement '%s' is not allocated to any component" id
  | Insufficient_integrity { requirement; required; component; actual } ->
      Format.fprintf ppf
        "requirement '%s' (%s) allocated to component '%s' with integrity %s"
        requirement
        (Requirement.integrity_level_to_string required)
        component
        (match actual with
        | Some l -> Requirement.integrity_level_to_string l
        | None -> "unset")
  | Dangling { link; missing } ->
      Format.fprintf ppf "allocation '%s' references missing element '%s'" link missing
  | Not_a_requirement { link; id } ->
      Format.fprintf ppf "allocation '%s' source '%s' is not a requirement" link id
  | Not_a_component { link; id } ->
      Format.fprintf ppf "allocation '%s' target '%s' is not a component" link id

let allocation_links (mbsa : Mbsa.package) =
  List.filter
    (fun (t : Mbsa.trace_link) -> t.Mbsa.trace_kind = Mbsa.Allocates)
    mbsa.Mbsa.traces

let safety_requirements (model : Model.t) =
  List.concat_map
    (fun p -> List.filter Requirement.is_safety_requirement (Requirement.requirements p))
    model.Model.requirement_packages

let check (model : Model.t) (mbsa : Mbsa.package) =
  let idx = Model.index model in
  let links = allocation_links mbsa in
  let violations = ref [] in
  let note v = violations := v :: !violations in
  (* Per-link structural and integrity checks. *)
  List.iter
    (fun (t : Mbsa.trace_link) ->
      let link = t.Mbsa.tl_meta.Base.id in
      let requirement =
        match Model.lookup idx t.Mbsa.trace_source with
        | None ->
            note (Dangling { link; missing = t.Mbsa.trace_source });
            None
        | Some (Model.E_requirement (Requirement.Requirement r)) -> Some r
        | Some _ ->
            note (Not_a_requirement { link; id = t.Mbsa.trace_source });
            None
      in
      let component =
        match Model.lookup idx t.Mbsa.trace_target with
        | None ->
            note (Dangling { link; missing = t.Mbsa.trace_target });
            None
        | Some (Model.E_component c) -> Some c
        | Some _ ->
            note (Not_a_component { link; id = t.Mbsa.trace_target });
            None
      in
      match (requirement, component) with
      | Some r, Some c -> (
          match r.Requirement.integrity with
          | None -> ()
          | Some required ->
              let sufficient =
                match c.Architecture.integrity with
                | Some actual ->
                    Requirement.compare_integrity_level actual required >= 0
                | None -> false
              in
              if not sufficient then
                note
                  (Insufficient_integrity
                     {
                       requirement = r.Requirement.meta.Base.id;
                       required;
                       component = Architecture.component_id c;
                       actual = c.Architecture.integrity;
                     }))
      | _ -> ())
    links;
  (* Completeness. *)
  List.iter
    (fun (r : Requirement.requirement) ->
      let rid = r.Requirement.meta.Base.id in
      if
        not
          (List.exists
             (fun (t : Mbsa.trace_link) -> String.equal t.Mbsa.trace_source rid)
             links)
      then note (Unallocated rid))
    (safety_requirements model);
  List.rev !violations

let is_complete model mbsa =
  not
    (List.exists
       (function Unallocated _ -> true | _ -> false)
       (check model mbsa))

type matrix_row = {
  requirement_id : Base.id;
  requirement_text : string;
  integrity : Requirement.integrity_level option;
  allocated_to : Base.id list;
}

let matrix (model : Model.t) (mbsa : Mbsa.package) =
  let links = allocation_links mbsa in
  List.map
    (fun (r : Requirement.requirement) ->
      let rid = r.Requirement.meta.Base.id in
      {
        requirement_id = rid;
        requirement_text = r.Requirement.text;
        integrity = r.Requirement.integrity;
        allocated_to =
          List.filter_map
            (fun (t : Mbsa.trace_link) ->
              if String.equal t.Mbsa.trace_source rid then Some t.Mbsa.trace_target
              else None)
            links;
      })
    (safety_requirements model)

let pp_matrix ppf rows =
  Format.fprintf ppf "@[<v>Traceability matrix (safety requirements -> components)@,";
  List.iter
    (fun row ->
      Format.fprintf ppf "  %-8s %-7s -> %-24s %s@," row.requirement_id
        (match row.integrity with
        | Some l -> Requirement.integrity_level_to_string l
        | None -> "-")
        (match row.allocated_to with
        | [] -> "(UNALLOCATED)"
        | cs -> String.concat ", " cs)
        row.requirement_text)
    rows;
  Format.fprintf ppf "@]"

let auto_allocate (model : Model.t) (mbsa : Mbsa.package) =
  let links = allocation_links mbsa in
  let already rid =
    List.exists (fun (t : Mbsa.trace_link) -> String.equal t.Mbsa.trace_source rid) links
  in
  (* hazard id -> components whose failure modes cite it. *)
  let components_for_hazard hid =
    List.filter
      (fun (c : Architecture.component) ->
        List.exists
          (fun (fm : Architecture.failure_mode) ->
            List.exists (String.equal hid) fm.Architecture.hazards)
          c.Architecture.failure_modes)
      (Model.components model)
  in
  let new_links =
    List.concat_map
      (fun (r : Requirement.requirement) ->
        let rid = r.Requirement.meta.Base.id in
        if already rid then []
        else
          List.concat_map
            (fun hid ->
              List.map
                (fun c ->
                  allocate ~requirement:rid
                    ~component:(Architecture.component_id c))
                (components_for_hazard hid))
            r.Requirement.meta.Base.cites)
      (safety_requirements model)
  in
  List.fold_left Mbsa.add_trace mbsa new_links
