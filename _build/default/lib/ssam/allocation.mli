(** Safety-requirement allocation and traceability checking.

    "Safety concepts include all relevant safety requirements and their
    allocation to functions and components" (Sec. II-A).  Allocations are
    recorded as [Allocates] trace links in an MBSA package; this module
    creates them and checks the properties a safety concept must have:

    - {b completeness}: every safety requirement is allocated to at least
      one component;
    - {b integrity sufficiency}: an allocated component's integrity level
      is at least the requirement's (ASIL decomposition is out of scope —
      a requirement allocated to a weaker component is reported);
    - {b no dangling links}: both endpoints of every allocation resolve. *)

val allocate :
  requirement:Base.id -> component:Base.id -> Mbsa.trace_link
(** An [Allocates] link with a deterministic id
    (["alloc:<req>-><comp>"]). *)

type violation =
  | Unallocated of Base.id  (** safety requirement with no allocation *)
  | Insufficient_integrity of {
      requirement : Base.id;
      required : Requirement.integrity_level;
      component : Base.id;
      actual : Requirement.integrity_level option;
    }
  | Dangling of { link : Base.id; missing : Base.id }
  | Not_a_requirement of { link : Base.id; id : Base.id }
  | Not_a_component of { link : Base.id; id : Base.id }

val pp_violation : Format.formatter -> violation -> unit

val check : Model.t -> Mbsa.package -> violation list
(** Checks every [Allocates] trace of the package against the model. *)

val is_complete : Model.t -> Mbsa.package -> bool

type matrix_row = {
  requirement_id : Base.id;
  requirement_text : string;
  integrity : Requirement.integrity_level option;
  allocated_to : Base.id list;
}

val matrix : Model.t -> Mbsa.package -> matrix_row list
(** The traceability matrix: one row per safety requirement in the model,
    in declaration order. *)

val pp_matrix : Format.formatter -> matrix_row list -> unit

val auto_allocate :
  Model.t -> Mbsa.package -> Mbsa.package
(** Heuristic completion: every unallocated safety requirement citing a
    hazardous situation gets allocated to each component that has a
    failure mode linked to that hazard — the hazard chain the SSAM Base
    citations encode.  Requirements without such a chain stay
    unallocated (and keep showing up in {!check}). *)
