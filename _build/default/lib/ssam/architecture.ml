type component_type = System | Hardware | Software [@@deriving eq, ord, show]

type tolerance = OneOoOne | OneOoTwo | OneOoThree | TwoOoThree
[@@deriving eq, ord, show]

let tolerance_to_string = function
  | OneOoOne -> "1oo1"
  | OneOoTwo -> "1oo2"
  | OneOoThree -> "1oo3"
  | TwoOoThree -> "2oo3"

let tolerance_of_string s =
  match String.lowercase_ascii s with
  | "1oo1" | "1001" -> Some OneOoOne
  | "1oo2" | "1002" -> Some OneOoTwo
  | "1oo3" | "1003" -> Some OneOoThree
  | "2oo3" | "2003" -> Some TwoOoThree
  | _ -> None

type direction = Input | Output | Bidirectional [@@deriving eq, ord, show]

type io_node = {
  io_meta : Base.meta;
  direction : direction;
  value : float option;
  lower_limit : float option;
  upper_limit : float option;
}
[@@deriving eq, show]

type failure_nature =
  | Loss_of_function
  | Degraded
  | Erroneous
  | Other of string
[@@deriving eq, show]

type failure_impact = DVF | IVF | Safe_impact [@@deriving eq, show]

type failure_effect = {
  fe_meta : Base.meta;
  effect_description : string;
  impact : failure_impact;
  affected_components : Base.id list;
}
[@@deriving eq, show]

type failure_mode = {
  fm_meta : Base.meta;
  nature : failure_nature;
  distribution_pct : float;
  fm_cause : string;
  fm_exposure : string;
  hazards : Base.id list;
  effects : failure_effect list;
}
[@@deriving eq, show]

type safety_mechanism = {
  sm_meta : Base.meta;
  coverage_pct : float;
  sm_cost : float;
  covers : Base.id list;
}
[@@deriving eq, show]

type func = { fn_meta : Base.meta; tolerance : tolerance } [@@deriving eq, show]

type component = {
  c_meta : Base.meta;
  component_type : component_type;
  fit : float;
  integrity : Requirement.integrity_level option;
  safety_related : bool;
  dynamic : bool;
  io_nodes : io_node list;
  failure_modes : failure_mode list;
  safety_mechanisms : safety_mechanism list;
  functions : func list;
  children : component list;
  connections : relationship list;
}

and relationship = {
  rel_meta : Base.meta;
  from_component : Base.id;
  from_node : Base.id option;
  to_component : Base.id;
  to_node : Base.id option;
}
[@@deriving eq, show]

type element = Component of component | Relationship of relationship
[@@deriving eq, show]

type package_interface = { interface_meta : Base.meta; exports : Base.id list }
[@@deriving eq, show]

type package = {
  package_meta : Base.meta;
  elements : element list;
  interfaces : package_interface list;
}
[@@deriving eq, show]

let io_node ?value ?lower_limit ?upper_limit ~meta direction =
  { io_meta = meta; direction; value; lower_limit; upper_limit }

let failure_effect ?(affected = []) ?(description = "") ~meta impact =
  {
    fe_meta = meta;
    effect_description = description;
    impact;
    affected_components = affected;
  }

let failure_mode ?(cause = "") ?(exposure = "") ?(hazards = []) ?(effects = [])
    ~meta ~nature ~distribution_pct () =
  {
    fm_meta = meta;
    nature;
    distribution_pct;
    fm_cause = cause;
    fm_exposure = exposure;
    hazards;
    effects;
  }

let safety_mechanism ?(covers = []) ~meta ~coverage_pct ~cost () =
  { sm_meta = meta; coverage_pct; sm_cost = cost; covers }

let func ~meta tolerance = { fn_meta = meta; tolerance }

let component ?(component_type = Hardware) ?(fit = 0.0) ?integrity
    ?(safety_related = false) ?(dynamic = false) ?(io_nodes = [])
    ?(failure_modes = []) ?(safety_mechanisms = []) ?(functions = [])
    ?(children = []) ?(connections = []) ~meta () =
  {
    c_meta = meta;
    component_type;
    fit;
    integrity;
    safety_related;
    dynamic;
    io_nodes;
    failure_modes;
    safety_mechanisms;
    functions;
    children;
    connections;
  }

let relationship ?from_node ?to_node ~meta ~from_component ~to_component () =
  { rel_meta = meta; from_component; from_node; to_component; to_node }

let package ?(interfaces = []) ~meta elements =
  { package_meta = meta; elements; interfaces }

let component_id c = c.c_meta.Base.id

let component_name c = Base.display_name c.c_meta

let element_id = function
  | Component c -> component_id c
  | Relationship r -> r.rel_meta.Base.id

let top_components p =
  List.filter_map
    (function Component c -> Some c | Relationship _ -> None)
    p.elements

let relationships p =
  List.filter_map
    (function Relationship r -> Some r | Component _ -> None)
    p.elements

let rec iter_components f c =
  f c;
  List.iter (iter_components f) c.children

let rec fold_components f acc c =
  let acc = f acc c in
  List.fold_left (fold_components f) acc c.children

let find_component root id =
  let found = ref None in
  (try
     iter_components
       (fun c ->
         if String.equal (component_id c) id then begin
           found := Some c;
           raise Exit
         end)
       root
   with Exit -> ());
  !found

let find_in_package p id =
  List.fold_left
    (fun acc c -> match acc with Some _ -> acc | None -> find_component c id)
    None (top_components p)

let count_elements root =
  fold_components
    (fun acc c ->
      acc + 1
      + List.length c.io_nodes
      + List.fold_left
          (fun n fm -> n + 1 + List.length fm.effects)
          0 c.failure_modes
      + List.length c.safety_mechanisms
      + List.length c.functions
      + List.length c.connections)
    0 root

let count_package_elements p =
  List.fold_left
    (fun acc -> function
      | Component c -> acc + count_elements c
      | Relationship _ -> acc + 1)
    0 p.elements

let leaf_components root =
  List.rev
    (fold_components
       (fun acc c -> if c.children = [] then c :: acc else acc)
       [] root)

let is_loss_like = function
  | Loss_of_function -> true
  | Degraded | Erroneous | Other _ -> false

let inputs c =
  List.filter (fun io -> io.direction = Input || io.direction = Bidirectional)
    c.io_nodes

let outputs c =
  List.filter (fun io -> io.direction = Output || io.direction = Bidirectional)
    c.io_nodes

let total_fit root =
  List.fold_left (fun acc c -> acc +. c.fit) 0.0 (leaf_components root)
