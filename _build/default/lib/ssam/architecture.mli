(** SSAM Architecture module (Fig. 5).

    Block-based system designs: nested {!component}s connected through
    {!io_node}s by {!relationship}s, with per-component failure modes,
    failure effects and deployable safety mechanisms.  This is the input to
    the automated FME(D)A of {!module:Fmea}. *)

type component_type = System | Hardware | Software [@@deriving eq, ord, show]

type tolerance = OneOoOne | OneOoTwo | OneOoThree | TwoOoThree
(** Voting/tolerance architecture of a {!func}: 1oo1, 1oo2, 1oo3, 2oo3. *)
[@@deriving eq, ord, show]

val tolerance_to_string : tolerance -> string
(** ["1oo1"], ["1oo2"], ["1oo3"], ["2oo3"]. *)

val tolerance_of_string : string -> tolerance option

type direction = Input | Output | Bidirectional [@@deriving eq, ord, show]

type io_node = {
  io_meta : Base.meta;
  direction : direction;
  value : float option;  (** last known / nominal value carried by the node *)
  lower_limit : float option;
  upper_limit : float option;
}
[@@deriving eq, show]

(** Nature of a failure mode.  Algorithm 1 treats loss-of-function-like
    modes (open circuits, stuck-silent, total loss) as path-breaking;
    other natures get a warning instead of automated classification. *)
type failure_nature =
  | Loss_of_function
  | Degraded
  | Erroneous  (** wrong-but-present output, e.g. a short or value jitter *)
  | Other of string
[@@deriving eq, show]

type failure_impact =
  | DVF  (** directly violates the safety goal *)
  | IVF  (** indirectly violates the safety goal *)
  | Safe_impact
[@@deriving eq, show]

type failure_effect = {
  fe_meta : Base.meta;
  effect_description : string;
  impact : failure_impact;
  affected_components : Base.id list;  (** via the Base "cite" facility *)
}
[@@deriving eq, show]

type failure_mode = {
  fm_meta : Base.meta;
  nature : failure_nature;
  distribution_pct : float;  (** share of the component's FIT, in [0,100] *)
  fm_cause : string;
  fm_exposure : string;
  hazards : Base.id list;  (** cited hazardous situations *)
  effects : failure_effect list;
}
[@@deriving eq, show]

type safety_mechanism = {
  sm_meta : Base.meta;
  coverage_pct : float;  (** diagnostic coverage in [0,100] *)
  sm_cost : float;  (** engineering cost, hours *)
  covers : Base.id list;  (** failure-mode ids this SM diagnoses *)
}
[@@deriving eq, show]

type func = {
  fn_meta : Base.meta;
  tolerance : tolerance;
}
[@@deriving eq, show]

type component = {
  c_meta : Base.meta;
  component_type : component_type;
  fit : float;  (** Failure-In-Time, 1 FIT = 1e-9 failures/hour *)
  integrity : Requirement.integrity_level option;
  safety_related : bool;
  dynamic : bool;  (** future-work runtime-monitoring flag *)
  io_nodes : io_node list;
  failure_modes : failure_mode list;
  safety_mechanisms : safety_mechanism list;
  functions : func list;
  children : component list;  (** nested sub-components *)
  connections : relationship list;
      (** relationships between this component's children/IO nodes *)
}

and relationship = {
  rel_meta : Base.meta;
  from_component : Base.id;
  from_node : Base.id option;
  to_component : Base.id;
  to_node : Base.id option;
}
[@@deriving eq, show]

type element = Component of component | Relationship of relationship
[@@deriving eq, show]

type package_interface = { interface_meta : Base.meta; exports : Base.id list }
[@@deriving eq, show]

type package = {
  package_meta : Base.meta;
  elements : element list;
  interfaces : package_interface list;
}
[@@deriving eq, show]

(** {1 Constructors} *)

val io_node :
  ?value:float ->
  ?lower_limit:float ->
  ?upper_limit:float ->
  meta:Base.meta ->
  direction ->
  io_node

val failure_effect :
  ?affected:Base.id list ->
  ?description:string ->
  meta:Base.meta ->
  failure_impact ->
  failure_effect

val failure_mode :
  ?cause:string ->
  ?exposure:string ->
  ?hazards:Base.id list ->
  ?effects:failure_effect list ->
  meta:Base.meta ->
  nature:failure_nature ->
  distribution_pct:float ->
  unit ->
  failure_mode

val safety_mechanism :
  ?covers:Base.id list ->
  meta:Base.meta ->
  coverage_pct:float ->
  cost:float ->
  unit ->
  safety_mechanism

val func : meta:Base.meta -> tolerance -> func

val component :
  ?component_type:component_type ->
  ?fit:float ->
  ?integrity:Requirement.integrity_level ->
  ?safety_related:bool ->
  ?dynamic:bool ->
  ?io_nodes:io_node list ->
  ?failure_modes:failure_mode list ->
  ?safety_mechanisms:safety_mechanism list ->
  ?functions:func list ->
  ?children:component list ->
  ?connections:relationship list ->
  meta:Base.meta ->
  unit ->
  component

val relationship :
  ?from_node:Base.id ->
  ?to_node:Base.id ->
  meta:Base.meta ->
  from_component:Base.id ->
  to_component:Base.id ->
  unit ->
  relationship

val package :
  ?interfaces:package_interface list ->
  meta:Base.meta ->
  element list ->
  package

(** {1 Accessors and traversals} *)

val component_id : component -> Base.id

val component_name : component -> string

val element_id : element -> Base.id

val top_components : package -> component list

val relationships : package -> relationship list

val iter_components : (component -> unit) -> component -> unit
(** Pre-order traversal of the component and all its descendants. *)

val fold_components : ('a -> component -> 'a) -> 'a -> component -> 'a

val find_component : component -> Base.id -> component option
(** Search the component tree (including the root) by id. *)

val find_in_package : package -> Base.id -> component option

val count_elements : component -> int
(** Number of model elements in the subtree: components, IO nodes, failure
    modes, effects, safety mechanisms, functions and connections — the
    element-count notion used by the paper's evaluation (Sec. VI). *)

val count_package_elements : package -> int

val leaf_components : component -> component list
(** Descendants with no children (the root itself if childless). *)

val is_loss_like : failure_nature -> bool
(** [true] for [Loss_of_function]; Algorithm 1's "loss of function or
    similar nature" also admits [Degraded] below 100 % capability?  No — the
    paper's criterion is path unreachability, which only total loss causes,
    so only [Loss_of_function] qualifies. *)

val inputs : component -> io_node list

val outputs : component -> io_node list

val total_fit : component -> float
(** Sum of leaf FIT values in the subtree. *)
