type id = string [@@deriving eq, ord, show]

type constraint_ = {
  constraint_id : id;
  description : string;
  language : string;
  expression : string;
}
[@@deriving eq, show]

type external_reference = {
  location : string;
  model_type : string;
  metadata : (string * string) list;
  validation : constraint_ option;
}
[@@deriving eq, show]

type meta = {
  id : id;
  name : Lang_string.set;
  description : string;
  constraints : constraint_ list;
  external_references : external_reference list;
  cites : id list;
}
[@@deriving eq, show]

let meta ?name ?(names = []) ?(description = "") ?(constraints = [])
    ?(external_references = []) ?(cites = []) id =
  let name_set =
    match name with Some n -> Lang_string.v n :: names | None -> names
  in
  { id; name = name_set; description; constraints; external_references; cites }

let display_name ?(lang = "en") m =
  match Lang_string.preferred ~lang m.name with "" -> m.id | s -> s

let constraint_ ?(description = "") ?(language = "same-query") ~id expression =
  { constraint_id = id; description; language; expression }

let external_reference ?(metadata = []) ?validation ~location ~model_type () =
  { location; model_type; metadata; validation }

let counter = ref 0

let fresh_id ~prefix () =
  incr counter;
  Printf.sprintf "%s-%d" prefix !counter

let reset_fresh_ids () = counter := 0
