(** SSAM Base module (Fig. 2).

    Every SSAM element carries a {!meta} record: identity, a multi-language
    name, and the three utility facilities that the paper's Base module
    provides —

    - {!constraint_} ("ImplementationConstraint"): machine-executable
      constraints attached to elements, written in the query language of
      {!module:Query} (the paper used EOL);
    - {!external_reference}: traceability to models defined in arbitrary
      external technologies, with an optional executable extraction
      constraint ("validation" in the paper's property editor);
    - citations: intra-SSAM traceability from one element to another,
      possibly across packages. *)

type id = string [@@deriving eq, ord, show]
(** Element identifiers — unique within a {!Model.t}. *)

type constraint_ = {
  constraint_id : id;
  description : string;
  language : string;  (** e.g. ["same-query"]; the paper used ["EOL"]. *)
  expression : string;  (** source text, executed by {!module:Query}. *)
}
[@@deriving eq, show]

type external_reference = {
  location : string;  (** file path or URI of the external model *)
  model_type : string;  (** driver name: ["csv"], ["json"], ["xml"], ["blockdiag"], ... *)
  metadata : (string * string) list;
  validation : constraint_ option;
      (** executed against the external model to pull data into SSAM. *)
}
[@@deriving eq, show]

type meta = {
  id : id;
  name : Lang_string.set;
  description : string;
  constraints : constraint_ list;
  external_references : external_reference list;
  cites : id list;  (** "cite" links to other ModelElements. *)
}
[@@deriving eq, show]

val meta :
  ?name:string ->
  ?names:Lang_string.set ->
  ?description:string ->
  ?constraints:constraint_ list ->
  ?external_references:external_reference list ->
  ?cites:id list ->
  id ->
  meta
(** Smart constructor.  [name] adds an English entry; [names] supplies a
    full translation set (both may be given). *)

val display_name : ?lang:string -> meta -> string
(** Preferred name, falling back to the id when the element is unnamed. *)

val constraint_ :
  ?description:string -> ?language:string -> id:id -> string -> constraint_
(** [constraint_ ~id expr] with default language ["same-query"]. *)

val external_reference :
  ?metadata:(string * string) list ->
  ?validation:constraint_ ->
  location:string ->
  model_type:string ->
  unit ->
  external_reference

val fresh_id : prefix:string -> unit -> id
(** Process-wide counter-based ids ([prefix ^ "-" ^ n]) for callers that do
    not care about stable names.  Deterministic within a run. *)

val reset_fresh_ids : unit -> unit
(** Reset the {!fresh_id} counter — tests use this for reproducibility. *)
