type change =
  | Added of Base.id
  | Removed of Base.id
  | Modified of Base.id * string

let pp_change ppf = function
  | Added id -> Format.fprintf ppf "+ %s" id
  | Removed id -> Format.fprintf ppf "- %s" id
  | Modified (id, what) -> Format.fprintf ppf "~ %s (%s)" id what

let by_id_component model =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun (c : Architecture.component) ->
      Hashtbl.replace tbl (Architecture.component_id c) c)
    (Model.components model);
  tbl

(* What changed about a component itself (children are compared as their
   own entries). *)
let component_delta (a : Architecture.component) (b : Architecture.component) =
  let deltas = ref [] in
  let note what = deltas := what :: !deltas in
  if a.Architecture.fit <> b.Architecture.fit then note "FIT";
  if a.Architecture.component_type <> b.Architecture.component_type then note "type";
  if
    not
      (Option.equal Requirement.equal_integrity_level a.Architecture.integrity
         b.Architecture.integrity)
  then note "integrity";
  if a.Architecture.safety_related <> b.Architecture.safety_related then
    note "safety-related flag";
  if a.Architecture.dynamic <> b.Architecture.dynamic then note "dynamic flag";
  if
    not
      (List.equal Architecture.equal_failure_mode a.Architecture.failure_modes
         b.Architecture.failure_modes)
  then note "failure modes";
  if
    not
      (List.equal Architecture.equal_safety_mechanism
         a.Architecture.safety_mechanisms b.Architecture.safety_mechanisms)
  then note "safety mechanisms";
  if not (List.equal Architecture.equal_func a.Architecture.functions b.Architecture.functions)
  then note "functions";
  if not (List.equal Architecture.equal_io_node a.Architecture.io_nodes b.Architecture.io_nodes)
  then note "IO nodes";
  if
    not
      (List.equal Architecture.equal_relationship a.Architecture.connections
         b.Architecture.connections)
  then note "connections";
  if not (Base.equal_meta a.Architecture.c_meta b.Architecture.c_meta) then
    note "metadata";
  List.rev !deltas

let diff_tables old_tbl new_tbl delta =
  let changes = ref [] in
  Hashtbl.iter
    (fun id old_v ->
      match Hashtbl.find_opt new_tbl id with
      | None -> changes := Removed id :: !changes
      | Some new_v -> (
          match delta old_v new_v with
          | [] -> ()
          | whats -> changes := Modified (id, String.concat ", " whats) :: !changes))
    old_tbl;
  Hashtbl.iter
    (fun id _ ->
      if not (Hashtbl.mem old_tbl id) then changes := Added id :: !changes)
    new_tbl;
  List.sort
    (fun a b ->
      let id = function Added i | Removed i | Modified (i, _) -> i in
      String.compare (id a) (id b))
    !changes

let component_changes ~old_model ~new_model =
  diff_tables (by_id_component old_model) (by_id_component new_model)
    component_delta

let by_id_hazard model =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (p : Hazard.package) ->
      List.iter
        (fun e -> Hashtbl.replace tbl (Hazard.element_id e) e)
        p.Hazard.elements)
    model.Model.hazard_packages;
  tbl

let hazard_changes ~old_model ~new_model =
  diff_tables (by_id_hazard old_model) (by_id_hazard new_model) (fun a b ->
      if Hazard.equal_element a b then [] else [ "content" ])

let by_id_requirement model =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (p : Requirement.package) ->
      List.iter
        (fun e -> Hashtbl.replace tbl (Requirement.element_id e) e)
        p.Requirement.elements)
    model.Model.requirement_packages;
  tbl

let requirement_changes ~old_model ~new_model =
  diff_tables (by_id_requirement old_model) (by_id_requirement new_model)
    (fun a b -> if Requirement.equal_element a b then [] else [ "content" ])

type impact = {
  changes : change list;
  impacted_components : Base.id list;
  reanalysis_required : bool;
  rehara_required : bool;
}

(* Downstream closure over all connection graphs of the new model. *)
let downstream_closure new_model seeds =
  let edges = Hashtbl.create 64 in
  let add_edge f t = Hashtbl.add edges f t in
  List.iter
    (fun (p : Architecture.package) ->
      List.iter
        (fun (r : Architecture.relationship) ->
          add_edge r.Architecture.from_component r.Architecture.to_component)
        (Architecture.relationships p);
      List.iter
        (fun c ->
          Architecture.iter_components
            (fun c ->
              List.iter
                (fun (r : Architecture.relationship) ->
                  add_edge r.Architecture.from_component
                    r.Architecture.to_component)
                c.Architecture.connections)
            c)
        (Architecture.top_components p))
    new_model.Model.component_packages;
  let visited = Hashtbl.create 32 in
  let rec visit id =
    if not (Hashtbl.mem visited id) then begin
      Hashtbl.add visited id ();
      List.iter visit (Hashtbl.find_all edges id)
    end
  in
  List.iter visit seeds;
  Hashtbl.fold (fun id () acc -> id :: acc) visited []
  |> List.sort String.compare

let analyse ~old_model ~new_model =
  let comp = component_changes ~old_model ~new_model in
  let haz = hazard_changes ~old_model ~new_model in
  let req = requirement_changes ~old_model ~new_model in
  let seeds =
    List.filter_map
      (function
        | Added id | Modified (id, _) -> Some id
        | Removed _ -> None)
      comp
  in
  (* Removed components impact their former downstream partners too; use
     the old model's edges from the removed node. *)
  let removed_downstream =
    let removed =
      List.filter_map (function Removed id -> Some id | _ -> None) comp
    in
    if removed = [] then []
    else
      List.concat_map
        (fun rid ->
          List.concat_map
            (fun (p : Architecture.package) ->
              List.filter_map
                (fun (r : Architecture.relationship) ->
                  if String.equal r.Architecture.from_component rid then
                    Some r.Architecture.to_component
                  else None)
                (Architecture.relationships p)
              @ List.concat_map
                  (fun c ->
                    Architecture.fold_components
                      (fun acc c ->
                        List.filter_map
                          (fun (r : Architecture.relationship) ->
                            if String.equal r.Architecture.from_component rid
                            then Some r.Architecture.to_component
                            else None)
                          c.Architecture.connections
                        @ acc)
                      [] c)
                  (Architecture.top_components p))
            old_model.Model.component_packages)
        removed
  in
  let impacted_components =
    downstream_closure new_model (seeds @ removed_downstream)
  in
  {
    changes = comp @ haz @ req;
    impacted_components;
    reanalysis_required = comp <> [] || haz <> [];
    rehara_required = haz <> [];
  }

let pp_impact ppf i =
  Format.fprintf ppf "@[<v>changes:@,";
  if i.changes = [] then Format.fprintf ppf "  (none)@,"
  else List.iter (fun c -> Format.fprintf ppf "  %a@," pp_change c) i.changes;
  Format.fprintf ppf "impacted components: %s@,"
    (match i.impacted_components with
    | [] -> "(none)"
    | cs -> String.concat ", " cs);
  Format.fprintf ppf "re-run Step 4a: %b; re-run HARA: %b@]"
    i.reanalysis_required i.rehara_required
