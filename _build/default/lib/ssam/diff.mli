(** Model differencing and change-impact analysis.

    "SCSE is incremental and iterative, when new hazards are identified,
    or system requirements are changed, every artefact along the process
    of SCSE shall be updated and re-validated to analyse the impact of
    all changes" (Sec. II-A).  This module computes what changed between
    two versions of a SSAM model and which elements are *impacted* — the
    changed components plus everything reachable downstream through the
    connection graph — so a DECISIVE iteration can re-run only the
    affected analyses. *)

type change =
  | Added of Base.id
  | Removed of Base.id
  | Modified of Base.id * string  (** id, what changed (human-readable) *)

val pp_change : Format.formatter -> change -> unit

val component_changes : old_model:Model.t -> new_model:Model.t -> change list
(** Component-level diff (components of all architecture packages,
    matched by id).  [Modified] covers FIT, type, integrity, flags,
    failure modes, safety mechanisms, functions, IO nodes and the
    component's own connection list; child additions/removals appear as
    their own [Added]/[Removed] entries. *)

val hazard_changes : old_model:Model.t -> new_model:Model.t -> change list

val requirement_changes : old_model:Model.t -> new_model:Model.t -> change list

type impact = {
  changes : change list;  (** all of the above, components first *)
  impacted_components : Base.id list;
      (** changed components plus downstream closure, sorted *)
  reanalysis_required : bool;
      (** any architecture or hazard change — Step 4a must re-run *)
  rehara_required : bool;  (** any hazard change — Step 1 artefacts stale *)
}

val analyse : old_model:Model.t -> new_model:Model.t -> impact
(** Downstream closure is computed on the *new* model's connection graphs
    (package-level relationships and composite-internal connections). *)

val pp_impact : Format.formatter -> impact -> unit
