type severity = S0 | S1 | S2 | S3 [@@deriving eq, ord, show]

type exposure = E1 | E2 | E3 | E4 [@@deriving eq, ord, show]

type controllability = C1 | C2 | C3 [@@deriving eq, ord, show]

type cause = { cause_meta : Base.meta; description : string }
[@@deriving eq, show]

type effectiveness = { verified : bool; effectiveness_pct : float }
[@@deriving eq, show]

type control_measure = {
  cm_meta : Base.meta;
  safety_decision : string;
  validation_plan : string;
  effectiveness : effectiveness option;
  mitigates : Base.id list;
}
[@@deriving eq, show]

type hazardous_situation = {
  hs_meta : Base.meta;
  severity : severity;
  exposure : exposure option;
  controllability : controllability option;
  probability : float option;
  causes : cause list;
}
[@@deriving eq, show]

type element = Situation of hazardous_situation | Measure of control_measure
[@@deriving eq, show]

type package_interface = { interface_meta : Base.meta; exports : Base.id list }
[@@deriving eq, show]

type package = {
  package_meta : Base.meta;
  elements : element list;
  interfaces : package_interface list;
}
[@@deriving eq, show]

let cause ~meta description = { cause_meta = meta; description }

let situation ?exposure ?controllability ?probability ?(causes = []) ~meta
    ~severity () =
  { hs_meta = meta; severity; exposure; controllability; probability; causes }

let measure ?(safety_decision = "") ?(validation_plan = "") ?effectiveness
    ?(mitigates = []) ~meta () =
  { cm_meta = meta; safety_decision; validation_plan; effectiveness; mitigates }

let package ?(interfaces = []) ~meta elements =
  { package_meta = meta; elements; interfaces }

let element_meta = function
  | Situation s -> s.hs_meta
  | Measure m -> m.cm_meta

let element_id e = (element_meta e).Base.id

let situations p =
  List.filter_map
    (function Situation s -> Some s | Measure _ -> None)
    p.elements

let measures p =
  List.filter_map
    (function Measure m -> Some m | Situation _ -> None)
    p.elements

let find p id =
  List.find_opt (fun e -> String.equal (element_id e) id) p.elements

let measures_for p situation_id =
  List.filter
    (fun m -> List.exists (String.equal situation_id) m.mitigates)
    (measures p)

let unmitigated p =
  List.filter
    (fun s -> measures_for p s.hs_meta.Base.id = [])
    (situations p)
