(** SSAM Hazard module (Fig. 4).

    [HazardElement]s model hazardous situations, their causes and the
    control measures that mitigate them; they are organised in
    [HazardPackage]s.  Per the paper's footnote, the module does not adhere
    100 % to ISO 26262 so it can stay domain-generic: severity and
    probability are open scales plus an optional controllability for
    automotive-style risk grading (see {!module:Hara.Risk}). *)

type severity =
  | S0  (** no injuries *)
  | S1  (** light/moderate injuries *)
  | S2  (** severe injuries, survival probable *)
  | S3  (** life-threatening/fatal injuries *)
[@@deriving eq, ord, show]

type exposure = E1 | E2 | E3 | E4 [@@deriving eq, ord, show]

type controllability = C1 | C2 | C3 [@@deriving eq, ord, show]

type cause = {
  cause_meta : Base.meta;
  description : string;
}
[@@deriving eq, show]

type effectiveness = {
  verified : bool;
  effectiveness_pct : float;  (** [0, 100] — Effectiveness of Verification. *)
}
[@@deriving eq, show]

type control_measure = {
  cm_meta : Base.meta;
  safety_decision : string;  (** rationale for deploying this measure *)
  validation_plan : string;
  effectiveness : effectiveness option;
  mitigates : Base.id list;  (** hazardous situation ids *)
}
[@@deriving eq, show]

type hazardous_situation = {
  hs_meta : Base.meta;
  severity : severity;
  exposure : exposure option;
  controllability : controllability option;
  probability : float option;  (** per-hour occurrence probability, if known *)
  causes : cause list;
}
[@@deriving eq, show]

type element =
  | Situation of hazardous_situation
  | Measure of control_measure
[@@deriving eq, show]

type package_interface = { interface_meta : Base.meta; exports : Base.id list }
[@@deriving eq, show]

type package = {
  package_meta : Base.meta;
  elements : element list;
  interfaces : package_interface list;
}
[@@deriving eq, show]

val cause : meta:Base.meta -> string -> cause

val situation :
  ?exposure:exposure ->
  ?controllability:controllability ->
  ?probability:float ->
  ?causes:cause list ->
  meta:Base.meta ->
  severity:severity ->
  unit ->
  hazardous_situation

val measure :
  ?safety_decision:string ->
  ?validation_plan:string ->
  ?effectiveness:effectiveness ->
  ?mitigates:Base.id list ->
  meta:Base.meta ->
  unit ->
  control_measure

val package :
  ?interfaces:package_interface list ->
  meta:Base.meta ->
  element list ->
  package

val element_id : element -> Base.id

val element_meta : element -> Base.meta

val situations : package -> hazardous_situation list

val measures : package -> control_measure list

val find : package -> Base.id -> element option

val measures_for : package -> Base.id -> control_measure list
(** Control measures whose [mitigates] list contains the given situation. *)

val unmitigated : package -> hazardous_situation list
(** Situations with no control measure in the same package. *)
