type t = { value : string; lang : string } [@@deriving eq, ord, show]

let v ?(lang = "en") value = { value; lang }

let value t = t.value

let lang t = t.lang

let pp ppf t = Format.fprintf ppf "%s" t.value

type set = t list [@@deriving eq, ord, show]

let find ~lang set = List.find_opt (fun t -> String.equal t.lang lang) set

let preferred ?(lang = "en") set =
  match find ~lang set with
  | Some t -> t.value
  | None -> ( match set with t :: _ -> t.value | [] -> "")
