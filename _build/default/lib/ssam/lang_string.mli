(** Multi-language strings (SSAM Base module, Fig. 2).

    A [LangString] pairs textual content with an IETF-style language tag so
    that SSAM models can carry names and descriptions in several languages
    at once. *)

type t = { value : string; lang : string } [@@deriving eq, ord, show]

val v : ?lang:string -> string -> t
(** [v s] is [s] tagged with the default language, ["en"]. *)

val value : t -> string

val lang : t -> string

val pp : Format.formatter -> t -> unit

type set = t list [@@deriving eq, ord, show]
(** A set of translations of the same text. *)

val find : lang:string -> set -> t option
(** First entry with the given language tag. *)

val preferred : ?lang:string -> set -> string
(** [preferred set] is the value for [lang] (default ["en"]), falling back
    to the first entry, falling back to [""] for the empty set. *)
