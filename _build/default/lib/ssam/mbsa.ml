type analysis_kind = FMEA | FMEDA | FTA | Other_analysis of string
[@@deriving eq, show]

type artifact_reference = {
  ar_meta : Base.meta;
  kind : analysis_kind;
  location : string;
  iteration : int;
}
[@@deriving eq, show]

type trace_kind = Supports | Addresses | Allocates | DerivedFrom
[@@deriving eq, show]

type trace_link = {
  tl_meta : Base.meta;
  trace_kind : trace_kind;
  trace_source : Base.id;
  trace_target : Base.id;
}
[@@deriving eq, show]

type package = {
  package_meta : Base.meta;
  requirement_packages : Base.id list;
  hazard_packages : Base.id list;
  component_packages : Base.id list;
  artifacts : artifact_reference list;
  traces : trace_link list;
}
[@@deriving eq, show]

let artifact_reference ?(iteration = 0) ~meta ~kind ~location () =
  { ar_meta = meta; kind; location; iteration }

let trace_link ~meta ~kind ~source ~target =
  { tl_meta = meta; trace_kind = kind; trace_source = source; trace_target = target }

let package ?(requirement_packages = []) ?(hazard_packages = [])
    ?(component_packages = []) ?(artifacts = []) ?(traces = []) ~meta () =
  {
    package_meta = meta;
    requirement_packages;
    hazard_packages;
    component_packages;
    artifacts;
    traces;
  }

let add_artifact p a = { p with artifacts = p.artifacts @ [ a ] }

let add_trace p t = { p with traces = p.traces @ [ t ] }

let latest_artifact p kind =
  List.fold_left
    (fun acc a ->
      if equal_analysis_kind a.kind kind then
        match acc with
        | Some best when best.iteration >= a.iteration -> acc
        | Some _ | None -> Some a
      else acc)
    None p.artifacts

let traces_from p id =
  List.filter (fun t -> String.equal t.trace_source id) p.traces

let traces_to p id =
  List.filter (fun t -> String.equal t.trace_target id) p.traces
