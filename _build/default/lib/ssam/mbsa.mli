(** SSAM MBSA (Model-Based Systems Assurance) module (Fig. 6).

    The MBSA package is the federation point: it aggregates the requirement,
    hazard and architecture packages of one system, records the analysis
    artefacts produced by SAME across DECISIVE iterations, and holds the
    traceability links that tie analysis results back to requirements and
    hazards (and onwards into an assurance case, Sec. V-C). *)

type analysis_kind = FMEA | FMEDA | FTA | Other_analysis of string
[@@deriving eq, show]

type artifact_reference = {
  ar_meta : Base.meta;
  kind : analysis_kind;
  location : string;  (** where the generated artefact lives (file/URI) *)
  iteration : int;  (** DECISIVE iteration that produced it *)
}
[@@deriving eq, show]

type trace_kind =
  | Supports  (** analysis result supports a requirement/claim *)
  | Addresses  (** design element addresses a hazard *)
  | Allocates  (** requirement allocated to a component *)
  | DerivedFrom
[@@deriving eq, show]

type trace_link = {
  tl_meta : Base.meta;
  trace_kind : trace_kind;
  trace_source : Base.id;
  trace_target : Base.id;
}
[@@deriving eq, show]

type package = {
  package_meta : Base.meta;
  requirement_packages : Base.id list;
  hazard_packages : Base.id list;
  component_packages : Base.id list;
  artifacts : artifact_reference list;
  traces : trace_link list;
}
[@@deriving eq, show]

val artifact_reference :
  ?iteration:int ->
  meta:Base.meta ->
  kind:analysis_kind ->
  location:string ->
  unit ->
  artifact_reference

val trace_link :
  meta:Base.meta ->
  kind:trace_kind ->
  source:Base.id ->
  target:Base.id ->
  trace_link

val package :
  ?requirement_packages:Base.id list ->
  ?hazard_packages:Base.id list ->
  ?component_packages:Base.id list ->
  ?artifacts:artifact_reference list ->
  ?traces:trace_link list ->
  meta:Base.meta ->
  unit ->
  package

val add_artifact : package -> artifact_reference -> package

val add_trace : package -> trace_link -> package

val latest_artifact : package -> analysis_kind -> artifact_reference option
(** Artefact of the given kind with the highest iteration number. *)

val traces_from : package -> Base.id -> trace_link list

val traces_to : package -> Base.id -> trace_link list
