type t = {
  model_meta : Base.meta;
  requirement_packages : Requirement.package list;
  hazard_packages : Hazard.package list;
  component_packages : Architecture.package list;
  mbsa_packages : Mbsa.package list;
}

type entity =
  | E_requirement of Requirement.element
  | E_hazard of Hazard.element
  | E_component of Architecture.component
  | E_arch_relationship of Architecture.relationship
  | E_io_node of Architecture.io_node
  | E_failure_mode of Architecture.failure_mode
  | E_failure_effect of Architecture.failure_effect
  | E_safety_mechanism of Architecture.safety_mechanism
  | E_function of Architecture.func
  | E_cause of Hazard.cause
  | E_package of Base.meta
  | E_mbsa_artifact of Mbsa.artifact_reference
  | E_mbsa_trace of Mbsa.trace_link

let create ?(requirement_packages = []) ?(hazard_packages = [])
    ?(component_packages = []) ?(mbsa_packages = []) ~meta () =
  {
    model_meta = meta;
    requirement_packages;
    hazard_packages;
    component_packages;
    mbsa_packages;
  }

let entity_meta = function
  | E_requirement e -> Requirement.element_meta e
  | E_hazard e -> Hazard.element_meta e
  | E_component c -> c.Architecture.c_meta
  | E_arch_relationship r -> r.Architecture.rel_meta
  | E_io_node io -> io.Architecture.io_meta
  | E_failure_mode fm -> fm.Architecture.fm_meta
  | E_failure_effect fe -> fe.Architecture.fe_meta
  | E_safety_mechanism sm -> sm.Architecture.sm_meta
  | E_function f -> f.Architecture.fn_meta
  | E_cause c -> c.Hazard.cause_meta
  | E_package m -> m
  | E_mbsa_artifact a -> a.Mbsa.ar_meta
  | E_mbsa_trace t -> t.Mbsa.tl_meta

type index = (Base.id, entity) Hashtbl.t

let add_entity tbl e =
  let id = (entity_meta e).Base.id in
  if not (Hashtbl.mem tbl id) then Hashtbl.add tbl id e

let index_component tbl root =
  Architecture.iter_components
    (fun c ->
      add_entity tbl (E_component c);
      List.iter (fun io -> add_entity tbl (E_io_node io)) c.Architecture.io_nodes;
      List.iter
        (fun fm ->
          add_entity tbl (E_failure_mode fm);
          List.iter
            (fun fe -> add_entity tbl (E_failure_effect fe))
            fm.Architecture.effects)
        c.Architecture.failure_modes;
      List.iter
        (fun sm -> add_entity tbl (E_safety_mechanism sm))
        c.Architecture.safety_mechanisms;
      List.iter (fun f -> add_entity tbl (E_function f)) c.Architecture.functions;
      List.iter
        (fun r -> add_entity tbl (E_arch_relationship r))
        c.Architecture.connections)
    root

let index model =
  let tbl : index = Hashtbl.create 256 in
  add_entity tbl (E_package model.model_meta);
  List.iter
    (fun (p : Requirement.package) ->
      add_entity tbl (E_package p.Requirement.package_meta);
      List.iter (fun e -> add_entity tbl (E_requirement e)) p.Requirement.elements)
    model.requirement_packages;
  List.iter
    (fun (p : Hazard.package) ->
      add_entity tbl (E_package p.Hazard.package_meta);
      List.iter
        (fun e ->
          add_entity tbl (E_hazard e);
          match e with
          | Hazard.Situation s ->
              List.iter (fun c -> add_entity tbl (E_cause c)) s.Hazard.causes
          | Hazard.Measure _ -> ())
        p.Hazard.elements)
    model.hazard_packages;
  List.iter
    (fun (p : Architecture.package) ->
      add_entity tbl (E_package p.Architecture.package_meta);
      List.iter
        (function
          | Architecture.Component c -> index_component tbl c
          | Architecture.Relationship r -> add_entity tbl (E_arch_relationship r))
        p.Architecture.elements)
    model.component_packages;
  List.iter
    (fun (p : Mbsa.package) ->
      add_entity tbl (E_package p.Mbsa.package_meta);
      List.iter (fun a -> add_entity tbl (E_mbsa_artifact a)) p.Mbsa.artifacts;
      List.iter (fun t -> add_entity tbl (E_mbsa_trace t)) p.Mbsa.traces)
    model.mbsa_packages;
  tbl

let lookup tbl id = Hashtbl.find_opt tbl id

let iter_entities f tbl = Hashtbl.iter (fun _ e -> f e) tbl

let all_ids tbl = Hashtbl.fold (fun id _ acc -> id :: acc) tbl []

let count_elements model =
  let requirement_count =
    List.fold_left
      (fun acc (p : Requirement.package) ->
        acc + 1 + List.length p.Requirement.elements)
      0 model.requirement_packages
  in
  let hazard_count =
    List.fold_left
      (fun acc (p : Hazard.package) ->
        acc + 1
        + List.fold_left
            (fun n e ->
              n + 1
              +
              match e with
              | Hazard.Situation s -> List.length s.Hazard.causes
              | Hazard.Measure _ -> 0)
            0 p.Hazard.elements)
      0 model.hazard_packages
  in
  let component_count =
    List.fold_left
      (fun acc p -> acc + 1 + Architecture.count_package_elements p)
      0 model.component_packages
  in
  let mbsa_count =
    List.fold_left
      (fun acc (p : Mbsa.package) ->
        acc + 1 + List.length p.Mbsa.artifacts + List.length p.Mbsa.traces)
      0 model.mbsa_packages
  in
  1 + requirement_count + hazard_count + component_count + mbsa_count

let components model =
  List.concat_map
    (fun p ->
      List.concat_map
        (fun c ->
          List.rev
            (Architecture.fold_components (fun acc c -> c :: acc) [] c))
        (Architecture.top_components p))
    model.component_packages

let find_component model id =
  List.fold_left
    (fun acc p ->
      match acc with
      | Some _ -> acc
      | None -> Architecture.find_in_package p id)
    None model.component_packages

let add_component_package model p =
  { model with component_packages = model.component_packages @ [ p ] }

let add_mbsa_package model p =
  { model with mbsa_packages = model.mbsa_packages @ [ p ] }

let map_component_packages model f =
  { model with component_packages = List.map f model.component_packages }
