(** A complete SSAM model: the top-level container for packages of all four
    kinds, with global id lookup.

    The id space is flat across the whole model (the Base "cite" facility
    references by bare id), so {!index} builds one table over every element
    of every package. *)

type t = {
  model_meta : Base.meta;
  requirement_packages : Requirement.package list;
  hazard_packages : Hazard.package list;
  component_packages : Architecture.package list;
  mbsa_packages : Mbsa.package list;
}

type entity =
  | E_requirement of Requirement.element
  | E_hazard of Hazard.element
  | E_component of Architecture.component
  | E_arch_relationship of Architecture.relationship
  | E_io_node of Architecture.io_node
  | E_failure_mode of Architecture.failure_mode
  | E_failure_effect of Architecture.failure_effect
  | E_safety_mechanism of Architecture.safety_mechanism
  | E_function of Architecture.func
  | E_cause of Hazard.cause
  | E_package of Base.meta
  | E_mbsa_artifact of Mbsa.artifact_reference
  | E_mbsa_trace of Mbsa.trace_link

val create :
  ?requirement_packages:Requirement.package list ->
  ?hazard_packages:Hazard.package list ->
  ?component_packages:Architecture.package list ->
  ?mbsa_packages:Mbsa.package list ->
  meta:Base.meta ->
  unit ->
  t

val entity_meta : entity -> Base.meta

type index
(** Global id → entity table. *)

val index : t -> index
(** Builds the table; on duplicate ids the first occurrence wins (use
    {!Validate} to detect duplicates). *)

val lookup : index -> Base.id -> entity option

val iter_entities : (entity -> unit) -> index -> unit

val all_ids : index -> Base.id list

val count_elements : t -> int
(** Total model elements across all packages — the size notion used in the
    paper's scalability evaluation (Table VI). *)

val components : t -> Architecture.component list
(** All components of all architecture packages, depth-first. *)

val find_component : t -> Base.id -> Architecture.component option

val add_component_package : t -> Architecture.package -> t

val add_mbsa_package : t -> Mbsa.package -> t

val map_component_packages :
  t -> (Architecture.package -> Architecture.package) -> t
