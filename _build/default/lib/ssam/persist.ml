exception Corrupt of string

let fail fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

let el tag attributes children =
  Modelio.Xml.Element { Modelio.Xml.tag; attributes; children }

let elem tag attributes children : Modelio.Xml.element =
  { Modelio.Xml.tag; attributes; children }

let fstr f = Printf.sprintf "%.17g" f

(* ---------- writing ---------- *)

let meta_children (m : Base.meta) =
  List.map
    (fun (ls : Lang_string.t) ->
      el "name"
        [ ("lang", ls.Lang_string.lang) ]
        [ Modelio.Xml.Text ls.Lang_string.value ])
    m.Base.name
  @ (if m.Base.description = "" then []
     else [ el "description" [] [ Modelio.Xml.Text m.Base.description ] ])
  @ List.map
      (fun (c : Base.constraint_) ->
        el "constraint"
          [
            ("id", c.Base.constraint_id);
            ("language", c.Base.language);
            ("description", c.Base.description);
          ]
          [ Modelio.Xml.Text c.Base.expression ])
      m.Base.constraints
  @ List.map
      (fun (r : Base.external_reference) ->
        el "externalRef"
          [ ("location", r.Base.location); ("type", r.Base.model_type) ]
          (List.map
             (fun (k, v) -> el "meta" [ ("key", k); ("value", v) ] [])
             r.Base.metadata
          @
          match r.Base.validation with
          | Some c ->
              [
                el "validation"
                  [
                    ("id", c.Base.constraint_id);
                    ("language", c.Base.language);
                    ("description", c.Base.description);
                  ]
                  [ Modelio.Xml.Text c.Base.expression ];
              ]
          | None -> []))
      m.Base.external_references
  @ List.map (fun id -> el "cite" [ ("ref", id) ] []) m.Base.cites

let meta_attr (m : Base.meta) = [ ("id", m.Base.id) ]

(* Requirement package *)

let integrity_attr = function
  | Some level -> [ ("integrity", Requirement.integrity_level_to_string level) ]
  | None -> []

let requirement_element = function
  | Requirement.Requirement r ->
      el "requirement"
        (meta_attr r.Requirement.meta @ integrity_attr r.Requirement.integrity)
        (el "text" [] [ Modelio.Xml.Text r.Requirement.text ]
        :: meta_children r.Requirement.meta)
  | Requirement.Relationship r ->
      let kind =
        match r.Requirement.kind with
        | Requirement.Derives -> "derives"
        | Requirement.Refines -> "refines"
        | Requirement.Satisfies -> "satisfies"
        | Requirement.Conflicts -> "conflicts"
      in
      el "requirementRelationship"
        (meta_attr r.Requirement.rel_meta
        @ [
            ("kind", kind);
            ("source", r.Requirement.source);
            ("target", r.Requirement.target);
          ])
        (meta_children r.Requirement.rel_meta)

let interface_element tag (meta, exports) =
  el tag (meta_attr meta)
    (List.map (fun id -> el "export" [ ("ref", id) ] []) exports
    @ meta_children meta)

let requirement_package (p : Requirement.package) =
  el "requirementPackage"
    (meta_attr p.Requirement.package_meta)
    (List.map requirement_element p.Requirement.elements
    @ List.map
        (fun (i : Requirement.package_interface) ->
          interface_element "interface"
            (i.Requirement.interface_meta, i.Requirement.exports))
        p.Requirement.interfaces
    @ meta_children p.Requirement.package_meta)

(* Hazard package *)

let severity_to_string = function
  | Hazard.S0 -> "S0"
  | Hazard.S1 -> "S1"
  | Hazard.S2 -> "S2"
  | Hazard.S3 -> "S3"

let exposure_to_string = function
  | Hazard.E1 -> "E1"
  | Hazard.E2 -> "E2"
  | Hazard.E3 -> "E3"
  | Hazard.E4 -> "E4"

let controllability_to_string = function
  | Hazard.C1 -> "C1"
  | Hazard.C2 -> "C2"
  | Hazard.C3 -> "C3"

let hazard_element = function
  | Hazard.Situation s ->
      el "hazardousSituation"
        (meta_attr s.Hazard.hs_meta
        @ [ ("severity", severity_to_string s.Hazard.severity) ]
        @ (match s.Hazard.exposure with
          | Some e -> [ ("exposure", exposure_to_string e) ]
          | None -> [])
        @ (match s.Hazard.controllability with
          | Some c -> [ ("controllability", controllability_to_string c) ]
          | None -> [])
        @
        match s.Hazard.probability with
        | Some p -> [ ("probability", fstr p) ]
        | None -> [])
        (List.map
           (fun (c : Hazard.cause) ->
             el "cause" (meta_attr c.Hazard.cause_meta)
               (el "text" [] [ Modelio.Xml.Text c.Hazard.description ]
               :: meta_children c.Hazard.cause_meta))
           s.Hazard.causes
        @ meta_children s.Hazard.hs_meta)
  | Hazard.Measure m ->
      el "controlMeasure"
        (meta_attr m.Hazard.cm_meta
        @
        match m.Hazard.effectiveness with
        | Some e ->
            [
              ("verified", string_of_bool e.Hazard.verified);
              ("effectiveness", fstr e.Hazard.effectiveness_pct);
            ]
        | None -> [])
        ((if m.Hazard.safety_decision = "" then []
          else
            [ el "safetyDecision" [] [ Modelio.Xml.Text m.Hazard.safety_decision ] ])
        @ (if m.Hazard.validation_plan = "" then []
           else
             [ el "validationPlan" [] [ Modelio.Xml.Text m.Hazard.validation_plan ] ])
        @ List.map (fun id -> el "mitigates" [ ("ref", id) ] []) m.Hazard.mitigates
        @ meta_children m.Hazard.cm_meta)

let hazard_package (p : Hazard.package) =
  el "hazardPackage"
    (meta_attr p.Hazard.package_meta)
    (List.map hazard_element p.Hazard.elements
    @ List.map
        (fun (i : Hazard.package_interface) ->
          interface_element "interface" (i.Hazard.interface_meta, i.Hazard.exports))
        p.Hazard.interfaces
    @ meta_children p.Hazard.package_meta)

(* Architecture package *)

let opt_attr name = function Some v -> [ (name, fstr v) ] | None -> []

let direction_to_string = function
  | Architecture.Input -> "input"
  | Architecture.Output -> "output"
  | Architecture.Bidirectional -> "bidirectional"

let nature_to_string = function
  | Architecture.Loss_of_function -> "loss_of_function"
  | Architecture.Degraded -> "degraded"
  | Architecture.Erroneous -> "erroneous"
  | Architecture.Other s -> "other:" ^ s

let impact_to_string = function
  | Architecture.DVF -> "dvf"
  | Architecture.IVF -> "ivf"
  | Architecture.Safe_impact -> "safe"

let relationship_element (r : Architecture.relationship) =
  el "connection"
    (meta_attr r.Architecture.rel_meta
    @ [ ("from", r.Architecture.from_component); ("to", r.Architecture.to_component) ]
    @ (match r.Architecture.from_node with
      | Some n -> [ ("fromNode", n) ]
      | None -> [])
    @
    match r.Architecture.to_node with
    | Some n -> [ ("toNode", n) ]
    | None -> [])
    (meta_children r.Architecture.rel_meta)

let rec component_element (c : Architecture.component) =
  let type_str =
    match c.Architecture.component_type with
    | Architecture.System -> "system"
    | Architecture.Hardware -> "hardware"
    | Architecture.Software -> "software"
  in
  el "component"
    (meta_attr c.Architecture.c_meta
    @ [
        ("type", type_str);
        ("fit", fstr c.Architecture.fit);
        ("safetyRelated", string_of_bool c.Architecture.safety_related);
        ("dynamic", string_of_bool c.Architecture.dynamic);
      ]
    @ integrity_attr c.Architecture.integrity)
    (List.map
       (fun (io : Architecture.io_node) ->
         el "io"
           (meta_attr io.Architecture.io_meta
           @ [ ("direction", direction_to_string io.Architecture.direction) ]
           @ opt_attr "value" io.Architecture.value
           @ opt_attr "lower" io.Architecture.lower_limit
           @ opt_attr "upper" io.Architecture.upper_limit)
           (meta_children io.Architecture.io_meta))
       c.Architecture.io_nodes
    @ List.map
        (fun (fm : Architecture.failure_mode) ->
          el "failureMode"
            (meta_attr fm.Architecture.fm_meta
            @ [
                ("nature", nature_to_string fm.Architecture.nature);
                ("distribution", fstr fm.Architecture.distribution_pct);
                ("cause", fm.Architecture.fm_cause);
                ("exposure", fm.Architecture.fm_exposure);
              ])
            (List.map
               (fun id -> el "hazardRef" [ ("ref", id) ] [])
               fm.Architecture.hazards
            @ List.map
                (fun (fe : Architecture.failure_effect) ->
                  el "effect"
                    (meta_attr fe.Architecture.fe_meta
                    @ [
                        ("impact", impact_to_string fe.Architecture.impact);
                        ("description", fe.Architecture.effect_description);
                      ])
                    (List.map
                       (fun id -> el "affected" [ ("ref", id) ] [])
                       fe.Architecture.affected_components
                    @ meta_children fe.Architecture.fe_meta))
                fm.Architecture.effects
            @ meta_children fm.Architecture.fm_meta))
        c.Architecture.failure_modes
    @ List.map
        (fun (sm : Architecture.safety_mechanism) ->
          el "safetyMechanism"
            (meta_attr sm.Architecture.sm_meta
            @ [
                ("coverage", fstr sm.Architecture.coverage_pct);
                ("cost", fstr sm.Architecture.sm_cost);
              ])
            (List.map (fun id -> el "covers" [ ("ref", id) ] []) sm.Architecture.covers
            @ meta_children sm.Architecture.sm_meta))
        c.Architecture.safety_mechanisms
    @ List.map
        (fun (f : Architecture.func) ->
          el "function"
            (meta_attr f.Architecture.fn_meta
            @ [ ("tolerance", Architecture.tolerance_to_string f.Architecture.tolerance) ])
            (meta_children f.Architecture.fn_meta))
        c.Architecture.functions
    @ List.map component_element c.Architecture.children
    @ List.map relationship_element c.Architecture.connections
    @ meta_children c.Architecture.c_meta)

let architecture_package (p : Architecture.package) =
  el "componentPackage"
    (meta_attr p.Architecture.package_meta)
    (List.map
       (function
         | Architecture.Component c -> component_element c
         | Architecture.Relationship r -> relationship_element r)
       p.Architecture.elements
    @ List.map
        (fun (i : Architecture.package_interface) ->
          interface_element "interface"
            (i.Architecture.interface_meta, i.Architecture.exports))
        p.Architecture.interfaces
    @ meta_children p.Architecture.package_meta)

(* MBSA package *)

let analysis_kind_to_string = function
  | Mbsa.FMEA -> "fmea"
  | Mbsa.FMEDA -> "fmeda"
  | Mbsa.FTA -> "fta"
  | Mbsa.Other_analysis s -> "other:" ^ s

let trace_kind_to_string = function
  | Mbsa.Supports -> "supports"
  | Mbsa.Addresses -> "addresses"
  | Mbsa.Allocates -> "allocates"
  | Mbsa.DerivedFrom -> "derivedFrom"

let mbsa_package (p : Mbsa.package) =
  el "mbsaPackage"
    (meta_attr p.Mbsa.package_meta)
    (List.map (fun id -> el "requirementPackageRef" [ ("ref", id) ] [])
       p.Mbsa.requirement_packages
    @ List.map (fun id -> el "hazardPackageRef" [ ("ref", id) ] [])
        p.Mbsa.hazard_packages
    @ List.map (fun id -> el "componentPackageRef" [ ("ref", id) ] [])
        p.Mbsa.component_packages
    @ List.map
        (fun (a : Mbsa.artifact_reference) ->
          el "artifact"
            (meta_attr a.Mbsa.ar_meta
            @ [
                ("kind", analysis_kind_to_string a.Mbsa.kind);
                ("location", a.Mbsa.location);
                ("iteration", string_of_int a.Mbsa.iteration);
              ])
            (meta_children a.Mbsa.ar_meta))
        p.Mbsa.artifacts
    @ List.map
        (fun (t : Mbsa.trace_link) ->
          el "trace"
            (meta_attr t.Mbsa.tl_meta
            @ [
                ("kind", trace_kind_to_string t.Mbsa.trace_kind);
                ("source", t.Mbsa.trace_source);
                ("target", t.Mbsa.trace_target);
              ])
            (meta_children t.Mbsa.tl_meta))
        p.Mbsa.traces
    @ meta_children p.Mbsa.package_meta)

let to_xml (m : Model.t) =
  elem "ssamModel"
    (meta_attr m.Model.model_meta)
    (List.map requirement_package m.Model.requirement_packages
    @ List.map hazard_package m.Model.hazard_packages
    @ List.map architecture_package m.Model.component_packages
    @ List.map mbsa_package m.Model.mbsa_packages
    @ meta_children m.Model.model_meta)

(* ---------- reading ---------- *)

let attr e name = Modelio.Xml.attribute e name

let require_attr e name =
  match attr e name with
  | Some v -> v
  | None -> fail "<%s> is missing attribute %S" e.Modelio.Xml.tag name

let float_attr e name =
  let raw = require_attr e name in
  match float_of_string_opt raw with
  | Some f -> f
  | None -> fail "<%s %s=%S>: not a number" e.Modelio.Xml.tag name raw

let opt_float_attr e name =
  Option.map
    (fun raw ->
      match float_of_string_opt raw with
      | Some f -> f
      | None -> fail "<%s %s=%S>: not a number" e.Modelio.Xml.tag name raw)
    (attr e name)

let bool_attr e name =
  match require_attr e name with
  | "true" -> true
  | "false" -> false
  | other -> fail "<%s %s=%S>: not a boolean" e.Modelio.Xml.tag name other

let children_named e tag = Modelio.Xml.find_children e tag

let read_constraint (e : Modelio.Xml.element) =
  {
    Base.constraint_id = require_attr e "id";
    language = require_attr e "language";
    description = Option.value ~default:"" (attr e "description");
    expression = Modelio.Xml.text_content e;
  }

let read_meta (e : Modelio.Xml.element) : Base.meta =
  {
    Base.id = require_attr e "id";
    name =
      List.map
        (fun n ->
          Lang_string.v
            ~lang:(Option.value ~default:"en" (attr n "lang"))
            (Modelio.Xml.text_content n))
        (children_named e "name");
    description =
      (match children_named e "description" with
      | d :: _ -> Modelio.Xml.text_content d
      | [] -> "");
    constraints = List.map read_constraint (children_named e "constraint");
    external_references =
      List.map
        (fun r ->
          {
            Base.location = require_attr r "location";
            model_type = require_attr r "type";
            metadata =
              List.map
                (fun m -> (require_attr m "key", require_attr m "value"))
                (children_named r "meta");
            validation =
              (match children_named r "validation" with
              | v :: _ -> Some (read_constraint v)
              | [] -> None);
          })
        (children_named e "externalRef");
    cites = List.map (fun c -> require_attr c "ref") (children_named e "cite");
  }

let read_integrity e =
  Option.map
    (fun raw ->
      match Requirement.integrity_level_of_string raw with
      | Some l -> l
      | None -> fail "unknown integrity level %S" raw)
    (attr e "integrity")

let read_interface e =
  (read_meta e, List.map (fun x -> require_attr x "ref") (children_named e "export"))

let read_requirement_package (e : Modelio.Xml.element) =
  let elements =
    List.filter_map
      (fun (child : Modelio.Xml.element) ->
        match child.Modelio.Xml.tag with
        | "requirement" ->
            let text =
              match children_named child "text" with
              | t :: _ -> Modelio.Xml.text_content t
              | [] -> ""
            in
            Some
              (Requirement.Requirement
                 {
                   Requirement.meta = read_meta child;
                   text;
                   integrity = read_integrity child;
                 })
        | "requirementRelationship" ->
            let kind =
              match require_attr child "kind" with
              | "derives" -> Requirement.Derives
              | "refines" -> Requirement.Refines
              | "satisfies" -> Requirement.Satisfies
              | "conflicts" -> Requirement.Conflicts
              | other -> fail "unknown requirement relationship kind %S" other
            in
            Some
              (Requirement.Relationship
                 {
                   Requirement.rel_meta = read_meta child;
                   kind;
                   source = require_attr child "source";
                   target = require_attr child "target";
                 })
        | _ -> None)
      (Modelio.Xml.child_elements e)
  in
  let interfaces =
    List.map
      (fun i ->
        let meta, exports = read_interface i in
        { Requirement.interface_meta = meta; exports })
      (children_named e "interface")
  in
  Requirement.package ~interfaces ~meta:(read_meta e) elements

let read_severity raw =
  match raw with
  | "S0" -> Hazard.S0
  | "S1" -> Hazard.S1
  | "S2" -> Hazard.S2
  | "S3" -> Hazard.S3
  | other -> fail "unknown severity %S" other

let read_hazard_package (e : Modelio.Xml.element) =
  let elements =
    List.filter_map
      (fun (child : Modelio.Xml.element) ->
        match child.Modelio.Xml.tag with
        | "hazardousSituation" ->
            let exposure =
              Option.map
                (function
                  | "E1" -> Hazard.E1
                  | "E2" -> Hazard.E2
                  | "E3" -> Hazard.E3
                  | "E4" -> Hazard.E4
                  | other -> fail "unknown exposure %S" other)
                (attr child "exposure")
            in
            let controllability =
              Option.map
                (function
                  | "C1" -> Hazard.C1
                  | "C2" -> Hazard.C2
                  | "C3" -> Hazard.C3
                  | other -> fail "unknown controllability %S" other)
                (attr child "controllability")
            in
            let causes =
              List.map
                (fun c ->
                  let description =
                    match children_named c "text" with
                    | t :: _ -> Modelio.Xml.text_content t
                    | [] -> ""
                  in
                  { Hazard.cause_meta = read_meta c; description })
                (children_named child "cause")
            in
            Some
              (Hazard.Situation
                 {
                   Hazard.hs_meta = read_meta child;
                   severity = read_severity (require_attr child "severity");
                   exposure;
                   controllability;
                   probability = opt_float_attr child "probability";
                   causes;
                 })
        | "controlMeasure" ->
            let effectiveness =
              match attr child "effectiveness" with
              | Some raw -> (
                  match float_of_string_opt raw with
                  | Some pct ->
                      Some
                        {
                          Hazard.verified = bool_attr child "verified";
                          effectiveness_pct = pct;
                        }
                  | None -> fail "bad effectiveness %S" raw)
              | None -> None
            in
            let text tag =
              match children_named child tag with
              | t :: _ -> Modelio.Xml.text_content t
              | [] -> ""
            in
            Some
              (Hazard.Measure
                 {
                   Hazard.cm_meta = read_meta child;
                   safety_decision = text "safetyDecision";
                   validation_plan = text "validationPlan";
                   effectiveness;
                   mitigates =
                     List.map
                       (fun m -> require_attr m "ref")
                       (children_named child "mitigates");
                 })
        | _ -> None)
      (Modelio.Xml.child_elements e)
  in
  let interfaces =
    List.map
      (fun i ->
        let meta, exports = read_interface i in
        { Hazard.interface_meta = meta; exports })
      (children_named e "interface")
  in
  Hazard.package ~interfaces ~meta:(read_meta e) elements

let read_connection (e : Modelio.Xml.element) =
  {
    Architecture.rel_meta = read_meta e;
    from_component = require_attr e "from";
    from_node = attr e "fromNode";
    to_component = require_attr e "to";
    to_node = attr e "toNode";
  }

let rec read_component (e : Modelio.Xml.element) =
  let component_type =
    match require_attr e "type" with
    | "system" -> Architecture.System
    | "hardware" -> Architecture.Hardware
    | "software" -> Architecture.Software
    | other -> fail "unknown component type %S" other
  in
  let io_nodes =
    List.map
      (fun io ->
        let direction =
          match require_attr io "direction" with
          | "input" -> Architecture.Input
          | "output" -> Architecture.Output
          | "bidirectional" -> Architecture.Bidirectional
          | other -> fail "unknown direction %S" other
        in
        {
          Architecture.io_meta = read_meta io;
          direction;
          value = opt_float_attr io "value";
          lower_limit = opt_float_attr io "lower";
          upper_limit = opt_float_attr io "upper";
        })
      (children_named e "io")
  in
  let failure_modes =
    List.map
      (fun fm ->
        let nature =
          match require_attr fm "nature" with
          | "loss_of_function" -> Architecture.Loss_of_function
          | "degraded" -> Architecture.Degraded
          | "erroneous" -> Architecture.Erroneous
          | other ->
              if String.length other > 6 && String.sub other 0 6 = "other:" then
                Architecture.Other (String.sub other 6 (String.length other - 6))
              else fail "unknown failure nature %S" other
        in
        let effects =
          List.map
            (fun fe ->
              let impact =
                match require_attr fe "impact" with
                | "dvf" -> Architecture.DVF
                | "ivf" -> Architecture.IVF
                | "safe" -> Architecture.Safe_impact
                | other -> fail "unknown impact %S" other
              in
              {
                Architecture.fe_meta = read_meta fe;
                effect_description = Option.value ~default:"" (attr fe "description");
                impact;
                affected_components =
                  List.map
                    (fun a -> require_attr a "ref")
                    (children_named fe "affected");
              })
            (children_named fm "effect")
        in
        {
          Architecture.fm_meta = read_meta fm;
          nature;
          distribution_pct = float_attr fm "distribution";
          fm_cause = Option.value ~default:"" (attr fm "cause");
          fm_exposure = Option.value ~default:"" (attr fm "exposure");
          hazards =
            List.map (fun h -> require_attr h "ref") (children_named fm "hazardRef");
          effects;
        })
      (children_named e "failureMode")
  in
  let safety_mechanisms =
    List.map
      (fun sm ->
        {
          Architecture.sm_meta = read_meta sm;
          coverage_pct = float_attr sm "coverage";
          sm_cost = float_attr sm "cost";
          covers =
            List.map (fun c -> require_attr c "ref") (children_named sm "covers");
        })
      (children_named e "safetyMechanism")
  in
  let functions =
    List.map
      (fun f ->
        let tolerance =
          match Architecture.tolerance_of_string (require_attr f "tolerance") with
          | Some t -> t
          | None -> fail "unknown tolerance %S" (require_attr f "tolerance")
        in
        { Architecture.fn_meta = read_meta f; tolerance })
      (children_named e "function")
  in
  {
    Architecture.c_meta = read_meta e;
    component_type;
    fit = float_attr e "fit";
    integrity = read_integrity e;
    safety_related = bool_attr e "safetyRelated";
    dynamic = bool_attr e "dynamic";
    io_nodes;
    failure_modes;
    safety_mechanisms;
    functions;
    children = List.map read_component (children_named e "component");
    connections = List.map read_connection (children_named e "connection");
  }

let read_architecture_package (e : Modelio.Xml.element) =
  let elements =
    List.filter_map
      (fun (child : Modelio.Xml.element) ->
        match child.Modelio.Xml.tag with
        | "component" -> Some (Architecture.Component (read_component child))
        | "connection" -> Some (Architecture.Relationship (read_connection child))
        | _ -> None)
      (Modelio.Xml.child_elements e)
  in
  let interfaces =
    List.map
      (fun i ->
        let meta, exports = read_interface i in
        { Architecture.interface_meta = meta; exports })
      (children_named e "interface")
  in
  Architecture.package ~interfaces ~meta:(read_meta e) elements

let read_mbsa_package (e : Modelio.Xml.element) =
  let refs tag = List.map (fun r -> require_attr r "ref") (children_named e tag) in
  let artifacts =
    List.map
      (fun a ->
        let kind =
          match require_attr a "kind" with
          | "fmea" -> Mbsa.FMEA
          | "fmeda" -> Mbsa.FMEDA
          | "fta" -> Mbsa.FTA
          | other ->
              if String.length other > 6 && String.sub other 0 6 = "other:" then
                Mbsa.Other_analysis (String.sub other 6 (String.length other - 6))
              else fail "unknown analysis kind %S" other
        in
        let iteration =
          match int_of_string_opt (require_attr a "iteration") with
          | Some i -> i
          | None -> fail "bad iteration"
        in
        {
          Mbsa.ar_meta = read_meta a;
          kind;
          location = require_attr a "location";
          iteration;
        })
      (children_named e "artifact")
  in
  let traces =
    List.map
      (fun t ->
        let kind =
          match require_attr t "kind" with
          | "supports" -> Mbsa.Supports
          | "addresses" -> Mbsa.Addresses
          | "allocates" -> Mbsa.Allocates
          | "derivedFrom" -> Mbsa.DerivedFrom
          | other -> fail "unknown trace kind %S" other
        in
        {
          Mbsa.tl_meta = read_meta t;
          trace_kind = kind;
          trace_source = require_attr t "source";
          trace_target = require_attr t "target";
        })
      (children_named e "trace")
  in
  Mbsa.package
    ~requirement_packages:(refs "requirementPackageRef")
    ~hazard_packages:(refs "hazardPackageRef")
    ~component_packages:(refs "componentPackageRef")
    ~artifacts ~traces ~meta:(read_meta e) ()

let of_xml (root : Modelio.Xml.element) =
  if not (String.equal root.Modelio.Xml.tag "ssamModel") then
    fail "expected <ssamModel>, found <%s>" root.Modelio.Xml.tag;
  Model.create
    ~requirement_packages:
      (List.map read_requirement_package (children_named root "requirementPackage"))
    ~hazard_packages:
      (List.map read_hazard_package (children_named root "hazardPackage"))
    ~component_packages:
      (List.map read_architecture_package (children_named root "componentPackage"))
    ~mbsa_packages:(List.map read_mbsa_package (children_named root "mbsaPackage"))
    ~meta:(read_meta root) ()

let to_string m = Modelio.Xml.to_string (to_xml m)

let of_string s = of_xml (Modelio.Xml.parse s)

let save path m =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
      output_string oc (to_string m);
      output_char oc '\n')

let load path = of_xml (Modelio.Xml.parse_file path)

let install_driver () =
  Modelio.Driver.register
    {
      Modelio.Driver.driver_name = "ssam";
      load =
        (fun ~location ~metadata:_ ->
          match Modelio.Xml.parse_file location with
          | xml -> Modelio.Mvalue.of_xml xml
          | exception Modelio.Xml.Parse_error { pos; message } ->
              raise
                (Modelio.Driver.Load_error
                   {
                     driver = "ssam";
                     location;
                     message = Printf.sprintf "offset %d: %s" pos message;
                   }));
    }

let () = install_driver ()
