(** XML persistence for SSAM models (the XMI-style storage format).

    The paper's SSAM models live as EMF/XMI resources; this module gives
    the OCaml SSAM the same capability: a stable XML schema covering every
    metamodel feature (all four packages, the Base utility elements,
    citations, constraints, external references) with a lossless
    round-trip — [of_xml (to_xml m) = m], property-tested.

    Files written by {!save} load in any XML tool; the ["ssam"] driver
    registered by {!install_driver} additionally exposes saved models to
    the query language for federation. *)

exception Corrupt of string
(** Raised by the readers on structurally valid XML that is not a valid
    SSAM serialisation (unknown kinds, missing required attributes,
    malformed numbers). *)

val to_xml : Model.t -> Modelio.Xml.element

val of_xml : Modelio.Xml.element -> Model.t
(** Raises {!Corrupt}. *)

val to_string : Model.t -> string

val of_string : string -> Model.t
(** Raises {!Corrupt} or {!Modelio.Xml.Parse_error}. *)

val save : string -> Model.t -> unit

val load : string -> Model.t
(** Raises [Sys_error], {!Modelio.Xml.Parse_error} or {!Corrupt}. *)

val install_driver : unit -> unit
(** Registers the ["ssam"] {!Modelio.Driver}: a saved model loads as the
    generic XML {!Modelio.Mvalue.t} shape for querying.  Idempotent;
    called at library initialisation. *)
