type integrity_level = QM | ASIL_A | ASIL_B | ASIL_C | ASIL_D | SIL of int
[@@deriving eq, ord, show]

let integrity_level_to_string = function
  | QM -> "QM"
  | ASIL_A -> "ASIL-A"
  | ASIL_B -> "ASIL-B"
  | ASIL_C -> "ASIL-C"
  | ASIL_D -> "ASIL-D"
  | SIL n -> Printf.sprintf "SIL%d" n

let integrity_level_of_string s =
  let canon =
    String.lowercase_ascii s
    |> String.map (function '-' | '_' | ' ' -> '-' | c -> c)
  in
  match canon with
  | "qm" -> Some QM
  | "asil-a" | "asila" | "a" -> Some ASIL_A
  | "asil-b" | "asilb" | "b" -> Some ASIL_B
  | "asil-c" | "asilc" | "c" -> Some ASIL_C
  | "asil-d" | "asild" | "d" -> Some ASIL_D
  | _ ->
      let is_sil =
        String.length canon >= 4 && String.sub canon 0 3 = "sil"
      in
      if is_sil then
        match int_of_string_opt (String.sub canon 3 (String.length canon - 3)) with
        | Some n when n >= 1 && n <= 4 -> Some (SIL n)
        | Some _ | None -> None
      else None

type relationship_kind = Derives | Refines | Satisfies | Conflicts
[@@deriving eq, show]

type requirement = {
  meta : Base.meta;
  text : string;
  integrity : integrity_level option;
}
[@@deriving eq, show]

type relationship = {
  rel_meta : Base.meta;
  kind : relationship_kind;
  source : Base.id;
  target : Base.id;
}
[@@deriving eq, show]

type element = Requirement of requirement | Relationship of relationship
[@@deriving eq, show]

type package_interface = { interface_meta : Base.meta; exports : Base.id list }
[@@deriving eq, show]

type package = {
  package_meta : Base.meta;
  elements : element list;
  interfaces : package_interface list;
}
[@@deriving eq, show]

let requirement ?integrity ~meta text = { meta; text; integrity }

let is_safety_requirement r = Option.is_some r.integrity

let relationship ~meta ~kind ~source ~target =
  { rel_meta = meta; kind; source; target }

let package ?(interfaces = []) ~meta elements =
  { package_meta = meta; elements; interfaces }

let element_meta = function
  | Requirement r -> r.meta
  | Relationship r -> r.rel_meta

let element_id e = (element_meta e).Base.id

let requirements p =
  List.filter_map
    (function Requirement r -> Some r | Relationship _ -> None)
    p.elements

let relationships p =
  List.filter_map
    (function Relationship r -> Some r | Requirement _ -> None)
    p.elements

let find p id =
  List.find_opt (fun e -> String.equal (element_id e) id) p.elements

let exported_elements p iface =
  List.filter_map (fun id -> find p id) iface.exports
