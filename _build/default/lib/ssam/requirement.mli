(** SSAM Requirement module (Fig. 3).

    [RequirementElement]s — plain requirements, safety requirements and
    relationships between them — are organised in [RequirementPackage]s
    whose [RequirementPackageInterface]s export a subset of elements for
    reuse and interchange. *)

type integrity_level =
  | QM  (** "quality managed" — no safety relevance (ISO 26262). *)
  | ASIL_A
  | ASIL_B
  | ASIL_C
  | ASIL_D
  | SIL of int  (** IEC 61508 SIL 1–4, for non-automotive domains. *)
[@@deriving eq, ord, show]

val integrity_level_to_string : integrity_level -> string

val integrity_level_of_string : string -> integrity_level option
(** Case-insensitive; accepts ["ASIL-B"], ["asil_b"], ["B"], ["SIL3"], ["QM"]. *)

type relationship_kind = Derives | Refines | Satisfies | Conflicts
[@@deriving eq, show]

type requirement = {
  meta : Base.meta;
  text : string;  (** the functional part *)
  integrity : integrity_level option;
      (** [Some _] makes this a SafetyRequirement in the paper's terms. *)
}
[@@deriving eq, show]

type relationship = {
  rel_meta : Base.meta;
  kind : relationship_kind;
  source : Base.id;
  target : Base.id;
}
[@@deriving eq, show]

type element = Requirement of requirement | Relationship of relationship
[@@deriving eq, show]

type package_interface = { interface_meta : Base.meta; exports : Base.id list }
[@@deriving eq, show]

type package = {
  package_meta : Base.meta;
  elements : element list;
  interfaces : package_interface list;
}
[@@deriving eq, show]

val requirement :
  ?integrity:integrity_level -> meta:Base.meta -> string -> requirement

val is_safety_requirement : requirement -> bool

val relationship :
  meta:Base.meta ->
  kind:relationship_kind ->
  source:Base.id ->
  target:Base.id ->
  relationship

val package :
  ?interfaces:package_interface list ->
  meta:Base.meta ->
  element list ->
  package

val element_id : element -> Base.id

val element_meta : element -> Base.meta

val requirements : package -> requirement list

val relationships : package -> relationship list

val find : package -> Base.id -> element option

val exported_elements : package -> package_interface -> element list
(** Elements of [package] listed by the interface, in interface order;
    unknown ids are skipped. *)
