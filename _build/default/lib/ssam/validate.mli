(** Well-formedness validation for SSAM models.

    SAME runs these checks before any automated analysis; analysis modules
    assume a model that passed {!check} with no errors. *)

type severity = Error | Warning [@@deriving eq, show]

type issue = {
  severity : severity;
  element : Base.id;  (** offending element *)
  message : string;
}
[@@deriving eq, show]

val pp_issue : Format.formatter -> issue -> unit

val check : Model.t -> issue list
(** All issues, errors first.  Checks performed:

    - id uniqueness across the whole model;
    - dangling references: citations, relationship endpoints and their IO
      nodes, safety-mechanism [covers], failure-mode hazard links, package
      interface exports, MBSA package references and traces;
    - numeric sanity: FIT ≥ 0, distribution percentages in [0,100] summing
      to ≈100 per component with failure modes (warning otherwise),
      diagnostic coverage in [0,100], SM cost ≥ 0, IO limits ordered,
      hazard probability in [0,1];
    - structural sanity: relationships connect sibling children (warning
      when an endpoint is outside the enclosing component). *)

val errors : issue list -> issue list

val warnings : issue list -> issue list

val is_valid : Model.t -> bool
(** No [Error]-severity issues. *)
