lib/store/budget.pp.ml: Int
