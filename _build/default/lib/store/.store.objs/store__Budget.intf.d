lib/store/budget.pp.mli:
