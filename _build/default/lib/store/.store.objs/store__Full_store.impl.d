lib/store/full_store.pp.ml: Budget Fmea List Ssam Synthetic
