lib/store/full_store.pp.mli: Budget Synthetic
