lib/store/lazy_store.pp.ml: Budget Fmea List Ssam Synthetic
