lib/store/lazy_store.pp.mli: Budget Synthetic
