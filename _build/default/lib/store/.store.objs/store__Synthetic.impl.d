lib/store/synthetic.pp.ml: Architecture Base Int List Model Printf Ssam
