lib/store/synthetic.pp.mli: Ssam
