type t = { max : int; mutable used : int }

exception Overflow of { requested : int; available : int }

let create ~max_bytes =
  if max_bytes <= 0 then invalid_arg "Budget.create: non-positive budget";
  { max = max_bytes; used = 0 }

let jvm_default () = create ~max_bytes:(4 * 1024 * 1024 * 1024)

let bytes_per_element = 96

let charge_elements t n =
  let requested = n * bytes_per_element in
  let available = t.max - t.used in
  if requested > available then raise (Overflow { requested; available });
  t.used <- t.used + requested

let release_elements t n = t.used <- Int.max 0 (t.used - (n * bytes_per_element))

let used_bytes t = t.used

let max_bytes t = t.max

let reset t = t.used <- 0
