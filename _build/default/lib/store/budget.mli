(** Memory budgets for model stores.

    The paper's SAME inherits EMF's need to "load EMF models in their
    entirety before any queries can be performed", which overflowed the
    JVM heap at Set5 (Table VI).  A {!t} makes that failure mode explicit
    and testable: stores charge it per element and overflow
    deterministically instead of taking the machine down. *)

type t

exception Overflow of { requested : int; available : int }

val create : max_bytes:int -> t

val jvm_default : unit -> t
(** 4 GiB — a typical -Xmx for the paper's era of Eclipse tooling.  Set4
    (≈5.7 M elements) fits; Set5 (≈569 M elements) overflows. *)

val bytes_per_element : int
(** The accounting constant (96 bytes — a conservative estimate of an EMF
    EObject's footprint). *)

val charge_elements : t -> int -> unit
(** Raises {!Overflow} without charging when the allocation would exceed
    the budget. *)

val release_elements : t -> int -> unit
(** For stores that free per-window memory (the lazy store). *)

val used_bytes : t -> int

val max_bytes : t -> int

val reset : t -> unit
