type loaded = { units : Ssam.Architecture.component list; elements : int }

let load ~budget spec =
  let units = ref [] in
  match
    Synthetic.iter_units spec (fun c ->
        Budget.charge_elements budget (Ssam.Architecture.count_elements c);
        units := c :: !units)
  with
  | total -> Ok { units = List.rev !units; elements = total }
  | exception Budget.Overflow _ ->
      (* Loading died midway, as EMF did; report how much was resident. *)
      let used = Budget.used_bytes budget in
      Budget.release_elements budget (used / Budget.bytes_per_element);
      Error (`Memory_overflow used)

let element_count l = l.elements

let unit_count l = List.length l.units

let evaluate l =
  List.fold_left
    (fun acc unit ->
      let table = Fmea.Path_fmea.analyse unit in
      acc
      + List.length
          (List.filter
             (fun (r : Fmea.Table.row) -> r.Fmea.Table.safety_related)
             table.Fmea.Table.rows))
    0 l.units

let release ~budget l =
  List.iter
    (fun c ->
      Budget.release_elements budget (Ssam.Architecture.count_elements c))
    l.units
