(** The EMF-style full-loading store.

    "SAME needs to load EMF models in their entirety before any queries
    can be performed" — so this store materialises every unit of a model
    set, charging the memory budget as it goes, and only then answers
    queries.  Set5 of Table VI overflows a JVM-sized budget here, exactly
    as the paper reports ("would not load Set5 due to memory overflow"). *)

type loaded

val load :
  budget:Budget.t ->
  Synthetic.spec ->
  (loaded, [ `Memory_overflow of int ]) result
(** [`Memory_overflow bytes_used] reports how far loading got. *)

val element_count : loaded -> int

val unit_count : loaded -> int

val evaluate : loaded -> int
(** Run the automated FMEA (path algorithm) over every loaded composite;
    returns the number of safety-related rows found — the "evaluation"
    timed in Table VI. *)

val release : budget:Budget.t -> loaded -> unit
