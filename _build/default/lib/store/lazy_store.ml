let analyse_unit unit =
  let table = Fmea.Path_fmea.analyse unit in
  List.length
    (List.filter
       (fun (r : Fmea.Table.row) -> r.Fmea.Table.safety_related)
       table.Fmea.Table.rows)

let evaluate ?budget spec =
  let safety_related = ref 0 in
  match
    Synthetic.iter_units spec (fun unit ->
        let n = Ssam.Architecture.count_elements unit in
        (match budget with
        | Some b -> Budget.charge_elements b n
        | None -> ());
        safety_related := !safety_related + analyse_unit unit;
        match budget with
        | Some b -> Budget.release_elements b n
        | None -> ())
  with
  | total -> Ok (total, !safety_related)
  | exception Budget.Overflow _ ->
      let used = match budget with Some b -> Budget.used_bytes b | None -> 0 in
      Error (`Memory_overflow used)

let peak_resident_elements _spec = Synthetic.unit_elements
