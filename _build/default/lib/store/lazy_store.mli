(** The streaming/indexed store — the paper's future-work fix
    ("integrate a scalable model indexing (or model storage) framework
    into SAME", citing Hawk [23]).

    Units are generated, analysed and dropped one at a time, so peak
    memory is one unit regardless of set size: Set5 becomes analysable.
    The benches contrast this ablation against {!Full_store}. *)

val evaluate :
  ?budget:Budget.t -> Synthetic.spec -> (int * int, [ `Memory_overflow of int ]) result
(** [(elements_processed, safety_related_rows)].  With a [budget], each
    unit is charged on entry and released after analysis; overflow is
    only possible if a single unit exceeds the whole budget. *)

val peak_resident_elements : Synthetic.spec -> int
(** The store's memory high-water mark in elements (= one unit), for the
    ablation report. *)
