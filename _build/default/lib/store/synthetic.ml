open Ssam

type spec = { set_name : string; target_elements : int }

let table_vi_sets =
  [
    { set_name = "Set0"; target_elements = 109 };
    { set_name = "Set1"; target_elements = 269 };
    { set_name = "Set2"; target_elements = 1369 };
    { set_name = "Set3"; target_elements = 5689 };
    { set_name = "Set4"; target_elements = 5_689_000 };
    { set_name = "Set5"; target_elements = 568_990_000 };
  ]

let scaled spec ~factor =
  {
    spec with
    target_elements = Int.max 1 (spec.target_elements / Int.max 1 factor);
  }

let chain_length = 10

let branch_count = 3

let unit_composite ~index =
  let uid fmt = Printf.ksprintf (fun s -> Printf.sprintf "u%d-%s" index s) fmt in
  let chain_child j =
    let cid = uid "c%d" j in
    let fm name nature dist =
      Architecture.failure_mode
        ~meta:(Base.meta ~name (Printf.sprintf "%s:fm:%s" cid name))
        ~nature ~distribution_pct:dist ()
    in
    let io name direction =
      Architecture.io_node
        ~meta:(Base.meta ~name (Printf.sprintf "%s:io:%s" cid name))
        direction
    in
    let functions =
      (* Child 5 carries a 1oo2-redundant function: its loss is tolerated,
         which diversifies the path-FMEA outcomes across the unit. *)
      if j = 5 then
        [
          Architecture.func
            ~meta:(Base.meta ~name:"redundant" (cid ^ ":fn"))
            Architecture.OneOoTwo;
        ]
      else []
    in
    Architecture.component ~fit:(10.0 +. float_of_int j)
      ~io_nodes:[ io "in" Architecture.Input; io "out" Architecture.Output ]
      ~failure_modes:
        [
          fm "Open" Architecture.Loss_of_function 30.0;
          fm "Short" Architecture.Erroneous 70.0;
        ]
      ~functions
      ~meta:(Base.meta ~name:cid cid)
      ()
  in
  let branch_child j =
    let cid = uid "b%d" j in
    Architecture.component ~fit:5.0
      ~failure_modes:
        [
          Architecture.failure_mode
            ~meta:(Base.meta ~name:"Loss" (cid ^ ":fm:loss"))
            ~nature:Architecture.Loss_of_function ~distribution_pct:100.0 ();
        ]
      ~meta:(Base.meta ~name:cid cid)
      ()
  in
  let root_id = uid "root" in
  let chain = List.init chain_length (fun j -> chain_child (j + 1)) in
  let branches = List.init branch_count (fun j -> branch_child (j + 1)) in
  let conn i from_c to_c =
    Architecture.relationship
      ~meta:(Base.meta (Printf.sprintf "%s:conn:%d" root_id i))
      ~from_component:from_c ~to_component:to_c ()
  in
  let chain_id j = uid "c%d" j in
  let connections =
    (* boundary in, the chain, boundary out, and off-path branches *)
    conn 0 root_id (chain_id 1)
    :: List.init (chain_length - 1) (fun j ->
           conn (j + 1) (chain_id (j + 1)) (chain_id (j + 2)))
    @ [ conn chain_length (chain_id chain_length) root_id ]
    @ List.mapi
        (fun j branch ->
          conn
            (chain_length + 1 + j)
            (chain_id (3 + (2 * j)))
            (Architecture.component_id branch))
        branches
  in
  Architecture.component ~component_type:Architecture.System
    ~children:(chain @ branches) ~connections
    ~meta:(Base.meta ~name:root_id root_id)
    ()

let unit_elements = Architecture.count_elements (unit_composite ~index:0)

let pad_composite ~index ~elements =
  (* A composite of exactly [elements] elements: itself + (elements-1)
     bare children. *)
  assert (elements >= 1);
  let uid = Printf.sprintf "pad%d" index in
  let children =
    List.init (elements - 1) (fun j ->
        let cid = Printf.sprintf "%s-p%d" uid j in
        Architecture.component ~meta:(Base.meta ~name:cid cid) ())
  in
  Architecture.component ~component_type:Architecture.System ~children
    ~meta:(Base.meta ~name:uid uid)
    ()

let iter_units spec f =
  let remaining = ref spec.target_elements in
  let index = ref 0 in
  while !remaining >= unit_elements do
    incr index;
    f (unit_composite ~index:!index);
    remaining := !remaining - unit_elements
  done;
  if !remaining > 0 then begin
    incr index;
    f (pad_composite ~index:!index ~elements:!remaining);
    remaining := 0
  end;
  spec.target_elements

let materialise spec =
  let units = ref [] in
  let _total = iter_units spec (fun c -> units := c :: !units) in
  let package =
    Architecture.package
      ~meta:(Base.meta ~name:spec.set_name ("pkg:" ^ spec.set_name))
      (List.rev_map (fun c -> Architecture.Component c) !units)
  in
  Model.create ~component_packages:[ package ]
    ~meta:(Base.meta ~name:spec.set_name ("model:" ^ spec.set_name))
    ()
