(** Synthetic SSAM model sets for the scalability study (Table VI).

    The paper built Set4/Set5 by duplicating its largest real model.  The
    generator does the same: it emits copies of a fixed "unit" composite —
    a chain of analysable children with failure modes, plus off-path
    branches — until the requested element count is reached (padding with
    bare components for an exact hit).

    Big sets are never materialised wholesale here: {!iter_units} streams
    the composites one at a time, and the two stores decide whether to
    retain them ({!Full_store}) or process-and-drop ({!Lazy_store}). *)

type spec = { set_name : string; target_elements : int }

val table_vi_sets : spec list
(** Set0 109, Set1 269, Set2 1369, Set3 5689, Set4 5_689_000,
    Set5 568_990_000 — the paper's sizes. *)

val scaled : spec -> factor:int -> spec
(** Divide the target by [factor] (min 1) — used by the default bench run
    to keep Set4/Set5 laptop-friendly; the scaling is reported. *)

val unit_composite : index:int -> Ssam.Architecture.component
(** One generation unit: a composite with a 10-child main chain (each
    child: 2 failure modes, 2 IO nodes) and 3 off-path branch children —
    some children redundant.  Element count {!unit_elements}. *)

val unit_elements : int
(** Elements contributed by one unit (composite + members + connections),
    as counted by {!Ssam.Architecture.count_elements} + 1 for the package
    slot it occupies. *)

val iter_units : spec -> (Ssam.Architecture.component -> unit) -> int
(** Stream units until the target is reached; returns the exact element
    count delivered (>= target - small padding remainder handled with
    bare components inside the last unit's sibling). *)

val materialise : spec -> Ssam.Model.t
(** Build the whole model in memory — small sets and tests only. *)
