test/test_allocation.ml: Alcotest Allocation Architecture Base Decisive Filename Hara Hazard List Mbsa Model Printf Requirement Ssam String Sys
