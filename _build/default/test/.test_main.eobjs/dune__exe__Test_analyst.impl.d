test/test_analyst.ml: Alcotest Analyst Cost_model Decisive Experiment Float Fmea List Printf Process Rng
