test/test_assurance.ml: Alcotest Assurance Decisive Eval Filename Gsn_render List Modelio Option Sacm Ssam String Sys
