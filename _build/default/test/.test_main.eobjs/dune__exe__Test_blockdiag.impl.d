test/test_blockdiag.ml: Alcotest Blockdiag Circuit Decisive Diagram Fun List Modelio Option Printf QCheck QCheck_alcotest Reliability Ssam String Text_format To_netlist Transform
