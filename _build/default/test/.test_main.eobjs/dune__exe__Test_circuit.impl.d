test/test_circuit.ml: Ac Alcotest Array Circuit Dc Decisive Element Fault Float Format Library List Netlist Option Printf QCheck QCheck_alcotest Transient
