test/test_cli.ml: Alcotest Array Filename Fun List Modelio Printf Sys
