test/test_decisive.ml: Alcotest Api Assurance Blockdiag Case_study Decisive Filename Fmea Format Fta Hara List Monitor Process Ssam String Sys Systems
