test/test_diff.ml: Alcotest Architecture Base Decisive Diff Hazard List Model Printf Requirement Ssam
