test/test_fmea.ml: Alcotest Architecture Base Blockdiag Circuit Decisive Float Fmea Int List Printf QCheck QCheck_alcotest Reliability Requirement Ssam String
