test/test_fta.ml: Alcotest Cut_sets Decisive Export Fault_tree Filename Fmea_from_fta From_ssam Fta Int List Modelio Option Printf QCheck QCheck_alcotest Quant Ssam String Sys
