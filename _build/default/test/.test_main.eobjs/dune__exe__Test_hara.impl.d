test/test_hara.ml: Alcotest Array Base Hara Hazard Int List Model Option QCheck QCheck_alcotest Requirement Ssam Validate
