test/test_modelio.ml: Alcotest Csv Driver Filename Json List Modelio Mvalue Option Printf QCheck QCheck_alcotest Spreadsheet Sys Xml
