test/test_numeric.ml: Alcotest Array Float Numeric Printf QCheck QCheck_alcotest
