test/test_optimize.ml: Alcotest Fmea Fun List Optimize Option Printf QCheck QCheck_alcotest Reliability Ssam
