test/test_persist.ml: Alcotest Architecture Base Decisive Filename Fun Hazard Lang_string List Mbsa Model Modelio Option Persist Printf QCheck QCheck_alcotest Query Requirement Ssam Sys
