test/test_query.ml: Alcotest Csv Decisive List Modelio Mvalue Printf Query Ssam String
