test/test_reliability.ml: Alcotest Fit Float List Modelio Option Printf Reliability Reliability_model Sm_model String
