test/test_ssam.ml: Alcotest Architecture Base Hazard Lang_string List Mbsa Model Option Requirement Ssam Validate
