test/test_store.ml: Alcotest Budget Fmea Full_store Lazy_store List Printf QCheck QCheck_alcotest Ssam Store Synthetic
