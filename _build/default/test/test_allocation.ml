(* Tests for requirement allocation, the traceability matrix and the
   safety-concept report. *)

open Ssam

let meta = Base.meta

let hazard_pkg =
  Hazard.package ~meta:(meta ~name:"hz" "hp")
    [
      Hazard.Situation
        (Hazard.situation ~meta:(meta ~name:"H1" "h1") ~severity:Hazard.S3 ());
    ]

let requirement ~id ?integrity ?(cites = []) text =
  Requirement.requirement ?integrity ~meta:(meta ~name:id ~cites id) text

let req_pkg =
  Requirement.package ~meta:(meta ~name:"reqs" "rp")
    [
      Requirement.Requirement
        (requirement ~id:"SR-1" ~integrity:Requirement.ASIL_B ~cites:[ "h1" ]
           "mitigate H1");
      Requirement.Requirement
        (requirement ~id:"SR-2" ~integrity:Requirement.ASIL_D "stay alive");
      Requirement.Requirement (requirement ~id:"R-3" "non-safety nicety");
    ]

let component ~id ?integrity ?(fms = []) () =
  Architecture.component ?integrity ~fit:10.0 ~failure_modes:fms
    ~meta:(meta ~name:id id) ()

let arch_pkg =
  Architecture.package ~meta:(meta ~name:"arch" "ap")
    [
      Architecture.Component
        (component ~id:"MCU" ~integrity:Requirement.ASIL_B
           ~fms:
             [
               Architecture.failure_mode ~hazards:[ "h1" ]
                 ~meta:(meta ~name:"RAM" "mcu:fm")
                 ~nature:Architecture.Loss_of_function ~distribution_pct:100.0 ();
             ]
           ());
      Architecture.Component (component ~id:"AUX" ~integrity:Requirement.ASIL_A ());
    ]

let model =
  Model.create ~requirement_packages:[ req_pkg ] ~hazard_packages:[ hazard_pkg ]
    ~component_packages:[ arch_pkg ]
    ~meta:(meta ~name:"m" "m")
    ()

let mbsa_with traces =
  Mbsa.package ~traces ~meta:(meta ~name:"mbsa" "mp") ()

let test_complete_allocation () =
  let mbsa =
    mbsa_with
      [
        Allocation.allocate ~requirement:"SR-1" ~component:"MCU";
        Allocation.allocate ~requirement:"SR-2" ~component:"MCU";
      ]
  in
  let violations = Allocation.check model mbsa in
  (* SR-2 is ASIL-D on an ASIL-B component: insufficient. *)
  Alcotest.(check int) "one violation" 1 (List.length violations);
  (match violations with
  | [ Allocation.Insufficient_integrity { requirement = "SR-2"; _ } ] -> ()
  | _ -> Alcotest.fail "expected an integrity violation for SR-2");
  Alcotest.(check bool) "complete (everything allocated)" true
    (Allocation.is_complete model mbsa)

let test_unallocated_detected () =
  let mbsa = mbsa_with [ Allocation.allocate ~requirement:"SR-1" ~component:"MCU" ] in
  let violations = Allocation.check model mbsa in
  Alcotest.(check bool) "SR-2 unallocated" true
    (List.exists (function Allocation.Unallocated "SR-2" -> true | _ -> false) violations);
  (* Non-safety requirement R-3 does not need allocation. *)
  Alcotest.(check bool) "R-3 exempt" true
    (not
       (List.exists
          (function Allocation.Unallocated "R-3" -> true | _ -> false)
          violations));
  Alcotest.(check bool) "not complete" false (Allocation.is_complete model mbsa)

let test_dangling_and_wrong_kinds () =
  let mbsa =
    mbsa_with
      [
        Allocation.allocate ~requirement:"SR-1" ~component:"GHOST";
        Allocation.allocate ~requirement:"h1" ~component:"MCU";
        Allocation.allocate ~requirement:"SR-2" ~component:"h1";
      ]
  in
  let violations = Allocation.check model mbsa in
  Alcotest.(check bool) "dangling" true
    (List.exists (function Allocation.Dangling _ -> true | _ -> false) violations);
  Alcotest.(check bool) "not a requirement" true
    (List.exists
       (function Allocation.Not_a_requirement _ -> true | _ -> false)
       violations);
  Alcotest.(check bool) "not a component" true
    (List.exists
       (function Allocation.Not_a_component _ -> true | _ -> false)
       violations)

let test_matrix () =
  let mbsa = mbsa_with [ Allocation.allocate ~requirement:"SR-1" ~component:"MCU" ] in
  let rows = Allocation.matrix model mbsa in
  (* Two safety requirements -> two rows; R-3 excluded. *)
  Alcotest.(check int) "two rows" 2 (List.length rows);
  let sr1 = List.find (fun r -> r.Allocation.requirement_id = "SR-1") rows in
  Alcotest.(check (list string)) "SR-1 allocated" [ "MCU" ] sr1.Allocation.allocated_to;
  let sr2 = List.find (fun r -> r.Allocation.requirement_id = "SR-2") rows in
  Alcotest.(check (list string)) "SR-2 empty" [] sr2.Allocation.allocated_to

let test_auto_allocate () =
  (* SR-1 cites h1; MCU's failure mode cites h1 -> auto-allocated. *)
  let mbsa = Allocation.auto_allocate model (mbsa_with []) in
  let rows = Allocation.matrix model mbsa in
  let sr1 = List.find (fun r -> r.Allocation.requirement_id = "SR-1") rows in
  Alcotest.(check (list string)) "SR-1 auto-allocated to MCU" [ "MCU" ]
    sr1.Allocation.allocated_to;
  (* SR-2 cites nothing: stays unallocated. *)
  let sr2 = List.find (fun r -> r.Allocation.requirement_id = "SR-2") rows in
  Alcotest.(check (list string)) "SR-2 untouched" [] sr2.Allocation.allocated_to;
  (* Idempotent: re-running adds nothing. *)
  let again = Allocation.auto_allocate model mbsa in
  Alcotest.(check int) "idempotent" (List.length mbsa.Mbsa.traces)
    (List.length again.Mbsa.traces)

(* ---------- report ---------- *)

let contains haystack needle =
  let n = String.length haystack and m = String.length needle in
  let rec go i = i + m <= n && (String.sub haystack i m = needle || go (i + 1)) in
  m = 0 || go 0

let test_report_content () =
  let fmeda = Decisive.Case_study.fmeda (Decisive.Case_study.fmea_via_injection ()) in
  let log = Hara.assess ~name:"psu" Decisive.Case_study.hazard_h1 in
  let requirements = Hara.derive_requirements log in
  let input =
    Decisive.Report.make_input ~hazard_log:log ~requirements
      ~system_name:"PSU" ~target:Ssam.Requirement.ASIL_B fmeda
  in
  let md = Decisive.Report.to_markdown input in
  Alcotest.(check bool) "verdict" true (Decisive.Report.verdict input);
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "mentions %S" needle) true
        (contains md needle))
    [
      "# Safety concept: PSU";
      "acceptably safe";
      "The power supply fails unexpectedly";
      "SPFM | 96.77%";
      "LFM | 94.44%";
      "| MC1 | 300 | Yes | RAM Failure | 100% | ECC | 99% | 3 FIT |";
      "Analysis warnings";
    ]

let test_report_failing_design () =
  let fmeda = Decisive.Case_study.fmea_via_injection () in
  let input =
    Decisive.Report.make_input ~system_name:"PSU" ~target:Ssam.Requirement.ASIL_B
      fmeda
  in
  Alcotest.(check bool) "fails" false (Decisive.Report.verdict input);
  Alcotest.(check bool) "says not safe" true
    (contains (Decisive.Report.to_markdown input) "NOT acceptably safe")

let test_report_save () =
  let fmeda = Decisive.Case_study.fmeda (Decisive.Case_study.fmea_via_injection ()) in
  let input =
    Decisive.Report.make_input ~system_name:"PSU" ~target:Ssam.Requirement.ASIL_B
      fmeda
  in
  let path = Filename.temp_file "report" ".md" in
  Decisive.Report.save ~path input;
  let ic = open_in path in
  let content = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "file matches" (Decisive.Report.to_markdown input) content

let suite =
  [
    Alcotest.test_case "complete allocation" `Quick test_complete_allocation;
    Alcotest.test_case "unallocated detected" `Quick test_unallocated_detected;
    Alcotest.test_case "dangling and wrong kinds" `Quick test_dangling_and_wrong_kinds;
    Alcotest.test_case "matrix" `Quick test_matrix;
    Alcotest.test_case "auto allocate" `Quick test_auto_allocate;
    Alcotest.test_case "report content" `Quick test_report_content;
    Alcotest.test_case "report failing design" `Quick test_report_failing_design;
    Alcotest.test_case "report save" `Quick test_report_save;
  ]
