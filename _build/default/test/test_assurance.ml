(* Tests for assurance cases: structure, validation and automated
   evaluation against external evidence. *)

open Assurance

let simple_case ?artifact () =
  {
    Sacm.case_name = "t";
    root =
      Sacm.goal ~id:"G1" "system is safe"
        ~in_context_of:[ Sacm.context ~id:"C1" "operational context" ]
        ~supported_by:
          [
            Sacm.strategy ~id:"S1" "argue over evidence"
              ~supported_by:[ Sacm.solution ?artifact ~id:"Sn1" "the evidence" ];
          ];
  }

let test_structure () =
  let case = simple_case () in
  Alcotest.(check bool) "find" true (Option.is_some (Sacm.find case "S1"));
  Alcotest.(check bool) "find missing" true (Sacm.find case "ZZ" = None);
  Alcotest.(check int) "solutions" 1 (List.length (Sacm.solutions case));
  Alcotest.(check int) "fold count" 4 (Sacm.fold (fun n _ -> n + 1) 0 case)

let test_undeveloped () =
  let case =
    { Sacm.case_name = "u"; root = Sacm.goal ~id:"G1" "bare claim" }
  in
  Alcotest.(check int) "undeveloped" 1 (List.length (Sacm.undeveloped_goals case))

let test_validate_structure () =
  Alcotest.(check (list string)) "clean" [] (Sacm.validate (simple_case ()));
  let bad =
    {
      Sacm.case_name = "bad";
      root =
        {
          (Sacm.goal ~id:"G1" "claim") with
          Sacm.supported_by =
            [
              Sacm.context ~id:"C1" "context used as support";
              { (Sacm.solution ~id:"Sn1" "s") with
                Sacm.supported_by = [ Sacm.goal ~id:"G1" "dup id" ] };
            ];
        };
    }
  in
  let problems = Sacm.validate bad in
  Alcotest.(check bool) "flags context-as-support" true
    (List.exists (fun p -> String.length p > 0) problems);
  Alcotest.(check bool) "several problems" true (List.length problems >= 2)

let write_fmeda_csv path spfm_ok =
  (* A two-row FMEDA whose SPFM either passes or fails the 90% bar. *)
  let spf = if spfm_ok then "5 FIT" else "80 FIT" in
  Modelio.Csv.write_file path
    [
      [
        "Component"; "FIT"; "Safety_Related"; "Failure_Mode"; "Distribution";
        "Safety_Mechanism"; "SM_Coverage"; "Single_Point_Failure_Rate";
      ];
      [ "X"; "100"; "Yes"; "f"; "100%"; "SM"; "95%"; spf ];
    ]

let test_eval_holds () =
  let path = Filename.temp_file "ev" ".csv" in
  write_fmeda_csv path true;
  let case =
    simple_case
      ~artifact:
        (Sacm.artifact
           ~query:(Decisive.Api.spfm_query ~target:Ssam.Requirement.ASIL_B)
           ~location:path ~driver:"csv" ())
      ()
  in
  let report = Eval.evaluate case in
  Sys.remove path;
  Alcotest.(check bool) "holds" true (report.Eval.overall = Eval.Holds);
  Alcotest.(check bool) "Sn1 holds" true (Eval.status_of report "Sn1" = Some Eval.Holds);
  Alcotest.(check bool) "context holds" true
    (Eval.status_of report "C1" = Some Eval.Holds)

let test_eval_fails () =
  let path = Filename.temp_file "ev" ".csv" in
  write_fmeda_csv path false;
  let case =
    simple_case
      ~artifact:
        (Sacm.artifact
           ~query:(Decisive.Api.spfm_query ~target:Ssam.Requirement.ASIL_B)
           ~location:path ~driver:"csv" ())
      ()
  in
  let report = Eval.evaluate case in
  Sys.remove path;
  Alcotest.(check bool) "fails propagates to root" true
    (report.Eval.overall = Eval.Fails)

let test_eval_undetermined_cases () =
  (* Missing evidence file. *)
  let case =
    simple_case
      ~artifact:(Sacm.artifact ~location:"/does/not/exist.csv" ~driver:"csv" ())
      ()
  in
  Alcotest.(check bool) "missing file" true
    ((Eval.evaluate case).Eval.overall = Eval.Undetermined);
  (* Unknown driver. *)
  let case =
    simple_case ~artifact:(Sacm.artifact ~location:"x" ~driver:"martian" ()) ()
  in
  Alcotest.(check bool) "unknown driver" true
    ((Eval.evaluate case).Eval.overall = Eval.Undetermined);
  (* Solution without evidence. *)
  Alcotest.(check bool) "no evidence" true
    ((Eval.evaluate (simple_case ())).Eval.overall = Eval.Undetermined);
  (* Broken query. *)
  let path = Filename.temp_file "ev" ".csv" in
  write_fmeda_csv path true;
  let case =
    simple_case
      ~artifact:(Sacm.artifact ~query:"syntax error ((" ~location:path ~driver:"csv" ())
      ()
  in
  let verdict = (Eval.evaluate case).Eval.overall in
  Sys.remove path;
  Alcotest.(check bool) "broken query" true (verdict = Eval.Undetermined)

let test_eval_presence_only () =
  let path = Filename.temp_file "ev" ".csv" in
  write_fmeda_csv path false;
  (* No acceptance query: presence of the artefact suffices. *)
  let case =
    simple_case ~artifact:(Sacm.artifact ~location:path ~driver:"csv" ()) ()
  in
  let verdict = (Eval.evaluate case).Eval.overall in
  Sys.remove path;
  Alcotest.(check bool) "presence-only holds" true (verdict = Eval.Holds)

let test_fails_beats_undetermined () =
  let path = Filename.temp_file "ev" ".csv" in
  write_fmeda_csv path false;
  let case =
    {
      Sacm.case_name = "mix";
      root =
        Sacm.goal ~id:"G1" "claim"
          ~supported_by:
            [
              Sacm.solution ~id:"Sn-undet" "no evidence";
              Sacm.solution
                ~artifact:
                  (Sacm.artifact
                     ~query:(Decisive.Api.spfm_query ~target:Ssam.Requirement.ASIL_B)
                     ~location:path ~driver:"csv" ())
                ~id:"Sn-fail" "failing evidence";
            ];
    }
  in
  let verdict = (Eval.evaluate case).Eval.overall in
  Sys.remove path;
  Alcotest.(check bool) "fails dominates" true (verdict = Eval.Fails)

let suite =
  [
    Alcotest.test_case "structure" `Quick test_structure;
    Alcotest.test_case "undeveloped goals" `Quick test_undeveloped;
    Alcotest.test_case "validate structure" `Quick test_validate_structure;
    Alcotest.test_case "eval holds" `Quick test_eval_holds;
    Alcotest.test_case "eval fails" `Quick test_eval_fails;
    Alcotest.test_case "eval undetermined" `Quick test_eval_undetermined_cases;
    Alcotest.test_case "presence-only evidence" `Quick test_eval_presence_only;
    Alcotest.test_case "fails beats undetermined" `Quick test_fails_beats_undetermined;
  ]

(* ---------- GSN rendering ---------- *)

let render_suite =
  let contains haystack needle =
    let n = String.length haystack and m = String.length needle in
    let rec go i = i + m <= n && (String.sub haystack i m = needle || go (i + 1)) in
    m = 0 || go 0
  in
  let test_dot_shapes () =
    let case = simple_case () in
    let dot = Gsn_render.to_dot case in
    Alcotest.(check bool) "goal box" true (contains dot "shape=box");
    Alcotest.(check bool) "strategy parallelogram" true
      (contains dot "parallelogram");
    Alcotest.(check bool) "solution circle" true (contains dot "shape=circle");
    Alcotest.(check bool) "context edge dashed" true
      (contains dot "style=dashed, arrowhead=empty")
  in
  let test_dot_colours () =
    let case = simple_case () in
    let report = Eval.evaluate case in
    let dot = Gsn_render.to_dot ~report case in
    (* Undetermined solution -> grey fill somewhere. *)
    Alcotest.(check bool) "grey fill" true (contains dot "#e0e0e0")
  in
  let test_text () =
    let case = simple_case () in
    let report = Eval.evaluate case in
    let text = Gsn_render.to_text ~report case in
    Alcotest.(check bool) "indented outline" true
      (contains text "  Strategy S1");
    Alcotest.(check bool) "undetermined marker" true (contains text "[?]")
  in
  [
    Alcotest.test_case "dot shapes" `Quick test_dot_shapes;
    Alcotest.test_case "dot colours" `Quick test_dot_colours;
    Alcotest.test_case "text outline" `Quick test_text;
  ]
