(* Tests for block diagrams: validation, text format, netlist extraction
   and the SSAM transformation (including no-information-loss). *)

open Blockdiag

let psu = Decisive.Case_study.power_supply_diagram

(* ---------- Diagram ---------- *)

let test_block_count () =
  (* 11 blocks + 10 connections = 21 elements in the Fig. 11 diagram. *)
  Alcotest.(check int) "psu count" 21 (Diagram.block_count psu)

let test_find_and_params () =
  let dc1 = Option.get (Diagram.find_block psu "DC1") in
  Alcotest.(check (option (float 1e-9))) "volts" (Some 5.0)
    (Diagram.param_num dc1 "volts");
  Alcotest.(check (option string)) "as string" (Some "5")
    (Diagram.param_str dc1 "volts");
  Alcotest.(check bool) "missing param" true (Diagram.param_num dc1 "amps" = None)

let test_find_block_deep () =
  let sub = Diagram.diagram ~name:"inner" [ Diagram.block ~id:"X" ~block_type:"resistor" () ] in
  let d = Diagram.diagram ~name:"outer" [] ~subsystems:[ sub ] in
  Alcotest.(check bool) "deep find" true (Option.is_some (Diagram.find_block_deep d "X"));
  Alcotest.(check bool) "shallow misses" true (Diagram.find_block d "X" = None)

let test_validate_clean () =
  Alcotest.(check (list string)) "psu validates" [] (Diagram.validate psu)

let test_validate_problems () =
  let d =
    Diagram.diagram ~name:"bad"
      [
        Diagram.block ~id:"A" ~block_type:"resistor" ();
        Diagram.block ~id:"A" ~block_type:"resistor" ();
        Diagram.block ~id:"S" ~block_type:"task"
          ~ports:
            [
              { Diagram.port_name = "out"; port_kind = Diagram.Out_port };
              { Diagram.port_name = "out2"; port_kind = Diagram.Out_port };
            ]
          ();
      ]
      ~connections:
        [
          Diagram.connect ("A", "a") ("GHOST", "a");
          Diagram.connect ("A", "nope") ("A", "b");
          Diagram.connect ("S", "out") ("S", "out2");
        ]
  in
  let problems = Diagram.validate d in
  let has sub = List.exists (fun p ->
    let rec contains i = i + String.length sub <= String.length p
      && (String.sub p i (String.length sub) = sub || contains (i+1)) in
    String.length sub = 0 || contains 0) problems in
  Alcotest.(check bool) "duplicate id" true (has "duplicate block id");
  Alcotest.(check bool) "missing block" true (has "missing block");
  Alcotest.(check bool) "missing port" true (has "no port");
  Alcotest.(check bool) "two outputs" true (has "two outputs")

(* ---------- Text format ---------- *)

let test_text_roundtrip_psu () =
  let printed = Text_format.print psu in
  let reparsed = Text_format.parse printed in
  Alcotest.(check bool) "roundtrip" true (Diagram.equal psu reparsed)

let test_text_parse_errors () =
  List.iter
    (fun src ->
      match Text_format.parse src with
      | exception Text_format.Parse_error _ -> ()
      | _ -> Alcotest.fail (Printf.sprintf "expected error on %S" src))
    [
      "not_a_diagram x {}";
      "diagram d { block A }";
      "diagram d { connect A.a -> ; }";
      "diagram d { block A : t { p = ; } }";
      "diagram d {";
    ]

let test_text_comments_and_subsystems () =
  let d =
    Text_format.parse
      "# top comment\ndiagram d {\n  block A : resistor { ohms = 47; }\n\
       subsystem s {\n    block B : task ports (in i, out o);\n  }\n}\n"
  in
  Alcotest.(check int) "subsystems" 1 (List.length d.Diagram.subsystems);
  Alcotest.(check bool) "nested block" true (Option.is_some (Diagram.find_block_deep d "B"))

let diagram_gen =
  (* Random small electrical diagrams for the round-trip property. *)
  let open QCheck.Gen in
  let block_type = oneofl [ "resistor"; "capacitor"; "diode"; "vsource"; "load" ] in
  let param =
    map (fun f -> ("p", Diagram.P_num (float_of_int f))) (int_range 1 100)
  in
  let block i =
    map2
      (fun bt params ->
        Diagram.block ~id:(Printf.sprintf "B%d" i) ~block_type:bt
          ~parameters:params ())
      block_type
      (oneof [ return []; map (fun p -> [ p ]) param ])
  in
  let* n = int_range 1 6 in
  let* blocks =
    List.fold_left
      (fun acc i -> map2 (fun l b -> b :: l) acc (block i))
      (return []) (List.init n Fun.id)
  in
  let* conn_count = int_range 0 (n - 1) in
  let connections =
    List.init conn_count (fun i ->
        Diagram.connect
          (Printf.sprintf "B%d" i, "a")
          (Printf.sprintf "B%d" (i + 1), "b"))
  in
  return (Diagram.diagram ~name:"gen" ~connections (List.rev blocks))

let prop_text_roundtrip =
  QCheck.Test.make ~name:"text format roundtrip" ~count:100
    (QCheck.make diagram_gen)
    (fun d -> Diagram.equal d (Text_format.parse (Text_format.print d)))

(* ---------- To_netlist ---------- *)

let test_netlist_extraction () =
  let result = To_netlist.convert psu in
  (* 7 electrical elements: DC1 D1 C1 L1 C2 CS1 MC1 (ground + sim blocks skipped). *)
  Alcotest.(check int) "element count" 7
    (Circuit.Netlist.element_count result.To_netlist.netlist);
  Alcotest.(check bool) "MC1 typed" true
    (List.assoc_opt "MC1" result.To_netlist.block_types = Some "microcontroller");
  (* Nets: ground merging means C1.b, C2.b, MC1.b, DC1.b all on gnd. *)
  let mc1 = Option.get (Circuit.Netlist.find result.To_netlist.netlist "MC1") in
  Alcotest.(check string) "MC1 grounded" "gnd" mc1.Circuit.Element.node_b

let test_netlist_skips () =
  let result = To_netlist.convert psu in
  let skipped = List.map (fun s -> s.To_netlist.block_id) result.To_netlist.skipped in
  Alcotest.(check bool) "solver config skipped" true (List.mem "S1" skipped);
  Alcotest.(check bool) "scope skipped" true (List.mem "Scope1" skipped);
  Alcotest.(check bool) "ground not reported" true (not (List.mem "GND1" skipped))

let test_netlist_unsupported () =
  let d =
    Diagram.diagram ~name:"u"
      [ Diagram.block ~id:"T1" ~block_type:"transformer" () ]
  in
  match To_netlist.convert d with
  | exception To_netlist.Unsupported_block { block_id = "T1"; _ } -> ()
  | _ -> Alcotest.fail "expected Unsupported_block"

let test_netlist_subsystem_flattening () =
  let sub =
    Diagram.diagram ~name:"flt"
      [ Diagram.block ~id:"L1" ~block_type:"inductor" () ]
  in
  let d =
    Diagram.diagram ~name:"top"
      [ Diagram.block ~id:"R1" ~block_type:"resistor" () ]
      ~subsystems:[ sub ]
  in
  let result = To_netlist.convert d in
  Alcotest.(check bool) "qualified id" true
    (Option.is_some (Circuit.Netlist.find result.To_netlist.netlist "flt/L1"))

(* ---------- Transform (blockdiag <-> SSAM) ---------- *)

let test_transform_no_information_loss () =
  let package = Transform.to_ssam psu in
  let back = Transform.to_diagram package in
  Alcotest.(check bool) "lossless round-trip" true (Diagram.equal psu back)

let test_transform_nested_no_loss () =
  let sub =
    Diagram.diagram ~name:"inner"
      [ Diagram.block ~id:"X" ~block_type:"resistor" ~parameters:[ ("ohms", Diagram.P_num 5.0) ] () ]
      ~connections:[]
  in
  let d =
    Diagram.diagram ~name:"outer"
      [ Diagram.block ~id:"Y" ~block_type:"diode" ~annotation:"note" () ]
      ~subsystems:[ sub ]
      ~connections:[]
  in
  let back = Transform.to_diagram (Transform.to_ssam d) in
  Alcotest.(check bool) "nested lossless" true (Diagram.equal d back)

let prop_transform_roundtrip =
  QCheck.Test.make ~name:"blockdiag -> SSAM -> blockdiag is lossless" ~count:100
    (QCheck.make diagram_gen)
    (fun d -> Diagram.equal d (Transform.to_diagram (Transform.to_ssam d)))

let test_transform_produces_valid_ssam () =
  let model = Transform.to_ssam_model psu in
  Alcotest.(check int) "no validation errors" 0
    (List.length (Ssam.Validate.errors (Ssam.Validate.check model)))

let test_transform_types_marked () =
  let package = Transform.to_ssam psu in
  let d1 = Option.get (Ssam.Architecture.find_in_package package "D1") in
  Alcotest.(check (option string)) "block type marker" (Some "diode")
    (Transform.block_type_of_component d1)

let test_aggregate_reliability () =
  let package =
    Transform.aggregate_reliability Reliability.Reliability_model.table_ii
      (Transform.to_ssam psu)
  in
  let d1 = Option.get (Ssam.Architecture.find_in_package package "D1") in
  Alcotest.(check (float 1e-9)) "D1 FIT" 10.0 d1.Ssam.Architecture.fit;
  Alcotest.(check int) "D1 failure modes" 2
    (List.length d1.Ssam.Architecture.failure_modes);
  let mc1 = Option.get (Ssam.Architecture.find_in_package package "MC1") in
  Alcotest.(check (float 1e-9)) "MC1 FIT" 300.0 mc1.Ssam.Architecture.fit;
  (* CS1 has no Table II entry: untouched. *)
  let cs1 = Option.get (Ssam.Architecture.find_in_package package "CS1") in
  Alcotest.(check (float 1e-9)) "CS1 untouched" 0.0 cs1.Ssam.Architecture.fit

let test_driver_installed () =
  Alcotest.(check bool) "blockdiag driver" true
    (Option.is_some (Modelio.Driver.find "blockdiag"))

let suite =
  [
    Alcotest.test_case "block count" `Quick test_block_count;
    Alcotest.test_case "find and params" `Quick test_find_and_params;
    Alcotest.test_case "find deep" `Quick test_find_block_deep;
    Alcotest.test_case "validate clean" `Quick test_validate_clean;
    Alcotest.test_case "validate problems" `Quick test_validate_problems;
    Alcotest.test_case "text roundtrip (psu)" `Quick test_text_roundtrip_psu;
    Alcotest.test_case "text parse errors" `Quick test_text_parse_errors;
    Alcotest.test_case "text comments/subsystems" `Quick test_text_comments_and_subsystems;
    QCheck_alcotest.to_alcotest prop_text_roundtrip;
    Alcotest.test_case "netlist extraction" `Quick test_netlist_extraction;
    Alcotest.test_case "netlist skips" `Quick test_netlist_skips;
    Alcotest.test_case "netlist unsupported" `Quick test_netlist_unsupported;
    Alcotest.test_case "netlist flattening" `Quick test_netlist_subsystem_flattening;
    Alcotest.test_case "transform lossless" `Quick test_transform_no_information_loss;
    Alcotest.test_case "transform nested lossless" `Quick test_transform_nested_no_loss;
    QCheck_alcotest.to_alcotest prop_transform_roundtrip;
    Alcotest.test_case "transform valid ssam" `Quick test_transform_produces_valid_ssam;
    Alcotest.test_case "transform type markers" `Quick test_transform_types_marked;
    Alcotest.test_case "aggregate reliability" `Quick test_aggregate_reliability;
    Alcotest.test_case "driver installed" `Quick test_driver_installed;
  ]
