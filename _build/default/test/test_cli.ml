(* End-to-end tests of the `same` command-line tool, driving the built
   binary the way a user would. *)

let binary =
  (* Tests run in _build/default/test/; the CLI sits next door. *)
  let candidates = [ "../bin/same.exe"; "bin/same.exe" ] in
  List.find_opt Sys.file_exists candidates

let psu_bd =
  {|diagram psu {
  block DC1 : vsource { volts = 5; }
  block D1 : diode;
  block C1 : capacitor { farads = 1e-5; }
  block L1 : inductor { henries = 0.001; }
  block C2 : capacitor { farads = 1e-5; }
  block CS1 : current_sensor;
  block MC1 : microcontroller { ohms = 100; }
  block GND1 : ground ports (conserving a);
  connect DC1.a -> D1.a;
  connect D1.b -> C1.a;
  connect D1.b -> L1.a;
  connect L1.b -> C2.a;
  connect L1.b -> CS1.a;
  connect CS1.b -> MC1.a;
  connect MC1.b -> GND1.a;
  connect DC1.b -> GND1.a;
  connect C1.b -> GND1.a;
  connect C2.b -> GND1.a;
}
|}

let with_fixture f =
  match binary with
  | None -> Alcotest.skip ()
  | Some bin ->
      let dir = Filename.temp_file "samecli" "" in
      Sys.remove dir;
      Sys.mkdir dir 0o755;
      let bd = Filename.concat dir "psu.bd" in
      let oc = open_out bd in
      output_string oc psu_bd;
      close_out oc;
      Fun.protect
        ~finally:(fun () ->
          Array.iter
            (fun f -> Sys.remove (Filename.concat dir f))
            (Sys.readdir dir);
          Sys.rmdir dir)
        (fun () -> f ~bin ~dir ~bd)

let run cmd = Sys.command (cmd ^ " >/dev/null 2>&1")

let test_fmea_and_assure () =
  with_fixture (fun ~bin ~dir ~bd ->
      let csv = Filename.concat dir "fmeda.csv" in
      Alcotest.(check int) "fmeda exits 0" 0
        (run
           (Printf.sprintf "%s fmeda %s -e DC1 -t ASIL-B -o %s" bin bd
              (Filename.quote csv)));
      Alcotest.(check bool) "csv written" true (Sys.file_exists csv);
      Alcotest.(check int) "assure holds" 0
        (run (Printf.sprintf "%s assure %s -n PSU -t ASIL-B" bin (Filename.quote csv)));
      (* Without the SM the design misses ASIL-B: assure must fail. *)
      Alcotest.(check int) "fmea (no SM) exported" 0
        (run
           (Printf.sprintf "%s fmea %s -e DC1 -o %s" bin bd (Filename.quote csv)));
      Alcotest.(check int) "assure fails on unrefined design" 1
        (run (Printf.sprintf "%s assure %s -n PSU -t ASIL-B" bin (Filename.quote csv))))

let test_routes_and_tools () =
  with_fixture (fun ~bin ~dir:_ ~bd ->
      List.iter
        (fun route ->
          Alcotest.(check int)
            (Printf.sprintf "fmea --route %s" route)
            0
            (run (Printf.sprintf "%s fmea %s -e DC1 --route %s" bin bd route)))
        [ "injection"; "ssam"; "fta" ];
      Alcotest.(check int) "transform lossless" 0
        (run (Printf.sprintf "%s transform %s" bin bd));
      Alcotest.(check int) "coverage" 0 (run (Printf.sprintf "%s coverage %s" bin bd));
      Alcotest.(check int) "run completes" 0
        (run (Printf.sprintf "%s run %s -e DC1 -t ASIL-B -n PSU" bin bd));
      Alcotest.(check int) "bode" 0
        (run (Printf.sprintf "%s bode %s --source DC1 --points 5" bin bd)))

let test_artifacts_written () =
  with_fixture (fun ~bin ~dir ~bd ->
      let dot = Filename.concat dir "ft.dot" in
      let psa = Filename.concat dir "ft.xml" in
      let md = Filename.concat dir "concept.md" in
      Alcotest.(check int) "fta with exports" 0
        (run
           (Printf.sprintf "%s fta %s --dot %s --open-psa %s" bin bd
              (Filename.quote dot) (Filename.quote psa)));
      Alcotest.(check bool) "dot exists" true (Sys.file_exists dot);
      Alcotest.(check bool) "psa parses as xml" true
        (match Modelio.Xml.parse_file psa with
        | _ -> true
        | exception _ -> false);
      Alcotest.(check int) "report" 0
        (run
           (Printf.sprintf "%s report %s -e DC1 -t ASIL-B -n PSU -o %s" bin bd
              (Filename.quote md)));
      Alcotest.(check bool) "report exists" true (Sys.file_exists md))

let test_error_handling () =
  with_fixture (fun ~bin ~dir ~bd:_ ->
      (* Malformed diagram: non-zero exit, no crash. *)
      let bad = Filename.concat dir "bad.bd" in
      let oc = open_out bad in
      output_string oc "diagram oops {";
      close_out oc;
      Alcotest.(check bool) "parse error reported" true
        (run (Printf.sprintf "%s fmea %s" bin (Filename.quote bad)) <> 0))

let suite =
  [
    Alcotest.test_case "fmeda + assure" `Slow test_fmea_and_assure;
    Alcotest.test_case "routes and tools" `Slow test_routes_and_tools;
    Alcotest.test_case "artifacts written" `Slow test_artifacts_written;
    Alcotest.test_case "error handling" `Slow test_error_handling;
  ]
