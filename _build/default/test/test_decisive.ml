(* Tests for the DECISIVE core: the workflow engine, the Section V case
   study, Systems A/B, runtime monitoring and the facade API. *)

open Decisive

(* ---------- Process (workflow engine) ---------- *)

let plan p =
  Process.perform p Process.Step1_plan
    ~produces:
      [
        (Process.System_definition, "def");
        (Process.Function_requirements, "reqs");
        (Process.Hazard_log, "log");
      ]

let design p =
  Process.perform p Process.Step2_design
    ~produces:
      [
        (Process.Safety_requirements, "sr");
        (Process.Architectural_design, "arch");
      ]

let reliability p =
  Process.perform p Process.Step3_reliability
    ~produces:[ (Process.Component_reliability_model, "rm") ]

let evaluate p =
  Process.perform p Process.Step4a_evaluate
    ~produces:
      [
        (Process.Component_safety_analysis_model, "fmea");
        (Process.Architecture_metrics, "spfm");
      ]

let ok = function
  | Ok p -> p
  | Error e -> Alcotest.fail (Format.asprintf "%a" Process.pp_error e)

let test_process_happy_path () =
  let p = Process.start ~name:"t" ~target:Ssam.Requirement.ASIL_B in
  let p = ok (plan p) in
  let p = ok (design p) in
  let p = ok (reliability p) in
  let p = ok (evaluate p) in
  let p = Process.record_spfm p 96.77 in
  let p =
    ok
      (Process.perform p Process.Step5_safety_concept
         ~produces:[ (Process.Safety_concept, "concept") ])
  in
  Alcotest.(check bool) "complete" true (Process.is_complete p);
  Alcotest.(check int) "artifacts recorded" 9 (List.length (Process.artifacts p))

let test_process_ordering_enforced () =
  let p = Process.start ~name:"t" ~target:Ssam.Requirement.ASIL_B in
  (match design p with
  | Error (Process.Wrong_order _) -> ()
  | _ -> Alcotest.fail "expected Wrong_order");
  let p = ok (plan p) in
  match reliability p with
  | Error (Process.Wrong_order _) -> ()
  | _ -> Alcotest.fail "Step 3 straight after Step 1 must fail"

let test_process_prerequisites () =
  let p = Process.start ~name:"t" ~target:Ssam.Requirement.ASIL_B in
  (* Step 1 performed but producing nothing: Step 2 lacks prerequisites. *)
  let p = ok (Process.perform p Process.Step1_plan ~produces:[]) in
  match design p with
  | Error (Process.Missing_prerequisite { needs = Process.System_definition; _ }) -> ()
  | _ -> Alcotest.fail "expected Missing_prerequisite"

let test_process_step5_gate () =
  let p = Process.start ~name:"t" ~target:Ssam.Requirement.ASIL_B in
  let p = ok (plan p) in
  let p = ok (design p) in
  let p = ok (reliability p) in
  let p = ok (evaluate p) in
  let p = Process.record_spfm p 50.0 in
  (match
     Process.perform p Process.Step5_safety_concept
       ~produces:[ (Process.Safety_concept, "c") ]
   with
  | Error (Process.Not_acceptably_safe _) -> ()
  | _ -> Alcotest.fail "Step 5 must be gated on the target");
  (* Step 4b then 4a again is allowed. *)
  let p =
    ok
      (Process.perform p Process.Step4b_refine
         ~produces:[ (Process.Safety_mechanism_model, "sm") ])
  in
  let p = ok (evaluate p) in
  let p = Process.record_spfm p 95.0 in
  let p =
    ok
      (Process.perform p Process.Step5_safety_concept
         ~produces:[ (Process.Safety_concept, "c") ])
  in
  Alcotest.(check bool) "complete after refinement" true (Process.is_complete p)

let test_process_iterate () =
  let p = Process.start ~name:"t" ~target:Ssam.Requirement.ASIL_B in
  let p = ok (plan p) in
  let p = Process.iterate p in
  Alcotest.(check int) "iteration bumped" 2 (Process.iteration p);
  (* After iterate, Step 2 is reachable again (artefacts are kept). *)
  match design p with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Format.asprintf "%a" Process.pp_error e)

(* ---------- Case study ---------- *)

let test_case_study_spfm_numbers () =
  let before = Case_study.fmea_via_injection () in
  Alcotest.(check (float 0.005)) "5.38%" 5.38 (Fmea.Metrics.spfm before);
  let after = Case_study.fmeda before in
  Alcotest.(check (float 0.005)) "96.77%" 96.77 (Fmea.Metrics.spfm after)

let test_case_study_h1_assessment () =
  let log = Hara.assess ~name:"psu" Case_study.hazard_h1 in
  (* S3/E4/C2 lands on ASIL-C in the risk graph. *)
  Alcotest.(check bool) "assessed" true
    (Hara.highest_asil log = Some Ssam.Requirement.ASIL_C)

let test_case_study_ssam_is_valid () =
  let model =
    Ssam.Model.create ~component_packages:[ Case_study.power_supply_ssam ]
      ~meta:(Ssam.Base.meta "m") ()
  in
  Alcotest.(check int) "no errors" 0
    (List.length (Ssam.Validate.errors (Ssam.Validate.check model)))

let test_pll_table_i () =
  let t = Case_study.pll_fmeda ~fit:50.0 in
  Alcotest.(check int) "three modes" 3 (List.length t.Fmea.Table.rows);
  let dists =
    List.map (fun (r : Fmea.Table.row) -> r.Fmea.Table.distribution_pct) t.Fmea.Table.rows
  in
  Alcotest.(check (list (float 1e-9))) "Table I distributions" [ 40.1; 28.7; 31.2 ] dists;
  (* Residual: watchdog 70% on lower-frequency, nothing on higher, lockstep
     99% on jitter. *)
  let spf =
    List.map (fun (r : Fmea.Table.row) -> r.Fmea.Table.single_point_fit) t.Fmea.Table.rows
  in
  (match spf with
  | [ lower; higher; jitter ] ->
      Alcotest.(check (float 1e-6)) "lower freq" (50.0 *. 0.401 *. 0.30) lower;
      Alcotest.(check (float 1e-6)) "higher freq" (50.0 *. 0.287) higher;
      Alcotest.(check (float 1e-6)) "jitter" (50.0 *. 0.312 *. 0.01) jitter
  | _ -> Alcotest.fail "unexpected rows")

(* ---------- Systems A and B ---------- *)

let test_system_sizes () =
  Alcotest.(check int) "System A has 102 elements" 102
    (Systems.element_count Systems.system_a);
  Alcotest.(check int) "System B has 230 elements" 230
    (Systems.element_count Systems.system_b)

let test_systems_validate () =
  Alcotest.(check (list string)) "A clean" []
    (Blockdiag.Diagram.validate Systems.system_a.Systems.diagram);
  Alcotest.(check (list string)) "B clean" []
    (Blockdiag.Diagram.validate Systems.system_b.Systems.diagram)

let test_system_b_has_software () =
  let model = Systems.ssam_model Systems.system_b in
  let sw =
    List.filter
      (fun (c : Ssam.Architecture.component) ->
        c.Ssam.Architecture.component_type = Ssam.Architecture.Software)
      (Ssam.Model.components model)
  in
  Alcotest.(check int) "twelve software tasks" 12 (List.length sw)

let test_system_fmea_reasonable () =
  let t = Systems.automated_fmea Systems.system_a in
  let sr = Fmea.Table.safety_related_components t in
  (* The power path is safety-related; padding test points are not. *)
  List.iter
    (fun c -> Alcotest.(check bool) (c ^ " found") true (List.mem c sr))
    [ "SW1"; "D1"; "L1"; "L2"; "MC1" ];
  Alcotest.(check bool) "no test points" true
    (not (List.exists (fun c -> String.length c > 1 && String.sub c 0 2 = "TP") sr))

(* ---------- Monitor ---------- *)

let dynamic_component =
  Ssam.Architecture.component ~dynamic:true
    ~io_nodes:
      [
        Ssam.Architecture.io_node ~lower_limit:4.5 ~upper_limit:5.5
          ~meta:(Ssam.Base.meta ~name:"vdd" "c:io:vdd")
          Ssam.Architecture.Input;
        Ssam.Architecture.io_node
          ~meta:(Ssam.Base.meta ~name:"nolimits" "c:io:x")
          Ssam.Architecture.Output;
      ]
    ~meta:(Ssam.Base.meta ~name:"C" "C")
    ()

let test_monitor_generation () =
  let m = Monitor.generate_component dynamic_component in
  (* Only the limited IO node yields a check. *)
  Alcotest.(check int) "one check" 1 (List.length (Monitor.checks m));
  (* A static component yields none. *)
  let static = { dynamic_component with Ssam.Architecture.dynamic = false } in
  Alcotest.(check int) "static yields none" 0
    (List.length (Monitor.checks (Monitor.generate_component static)))

let test_monitor_observations () =
  let m = Monitor.generate_component dynamic_component in
  Alcotest.(check bool) "in range" true
    (Monitor.observe m ~component:"C" ~node:"c:io:vdd" ~value:5.0 ~at:1.0 = None);
  (match Monitor.observe m ~component:"C" ~node:"c:io:vdd" ~value:4.0 ~at:2.0 with
  | Some { Monitor.bound = `Below 4.5; _ } -> ()
  | _ -> Alcotest.fail "expected below-bound violation");
  (match Monitor.observe m ~component:"C" ~node:"c:io:vdd" ~value:6.0 ~at:3.0 with
  | Some { Monitor.bound = `Above 5.5; _ } -> ()
  | _ -> Alcotest.fail "expected above-bound violation");
  Alcotest.(check bool) "unmonitored node ignored" true
    (Monitor.observe m ~component:"C" ~node:"c:io:x" ~value:99.0 ~at:4.0 = None);
  let violations =
    Monitor.observe_all m ~at:5.0
      [ ("C", "c:io:vdd", 5.0); ("C", "c:io:vdd", 9.9); ("C", "c:io:x", 0.0) ]
  in
  Alcotest.(check int) "batch" 1 (List.length violations)

(* ---------- Api ---------- *)

let test_api_routes_agree_on_quickstart () =
  let diagram = Case_study.power_supply_diagram in
  let rm = Case_study.reliability_model in
  let injection = Api.analyse ~exclude:[ "DC1" ] diagram rm in
  let paths = Api.analyse ~route:Api.Via_ssam_paths ~exclude:[ "DC1" ] diagram rm in
  let sr t = List.sort String.compare (Fmea.Table.safety_related_components t) in
  Alcotest.(check (list string)) "injection vs path route" (sr injection) (sr paths)

let test_api_refine () =
  let table = Case_study.fmea_via_injection () in
  let r =
    Api.refine ~target:Ssam.Requirement.ASIL_B
      ~component_types:[ ("MC1", "microcontroller") ]
      table Case_study.sm_model
  in
  Alcotest.(check bool) "meets" true r.Api.meets_target;
  Alcotest.(check (float 0.005)) "spfm" 96.77 r.Api.achieved_spfm;
  Alcotest.(check bool) "front nonempty" true (r.Api.pareto_front <> [])

let test_api_run_decisive_completes () =
  let process, table =
    Api.run_decisive ~name:"psu" ~target:Ssam.Requirement.ASIL_B
      ~exclude:[ "DC1" ] Case_study.power_supply_diagram
      Case_study.reliability_model Case_study.sm_model
  in
  Alcotest.(check bool) "complete" true (Process.is_complete process);
  Alcotest.(check (float 0.005)) "final spfm" 96.77 (Fmea.Metrics.spfm table);
  (* SPFM history shows the improvement across the loop. *)
  Alcotest.(check (option (float 0.005))) "recorded" (Some 96.77)
    (Process.latest_spfm process)

let test_api_export_and_assure () =
  let table = Case_study.fmeda (Case_study.fmea_via_injection ()) in
  let path = Filename.temp_file "fmeda" ".csv" in
  Api.export_fmeda ~path table;
  let case =
    Api.assurance_case_for ~system:"psu" ~target:Ssam.Requirement.ASIL_B
      ~fmeda_csv:path
  in
  Alcotest.(check (list string)) "case structure valid" [] (Assurance.Sacm.validate case);
  let report = Assurance.Eval.evaluate case in
  Sys.remove path;
  Alcotest.(check bool) "holds" true
    (report.Assurance.Eval.overall = Assurance.Eval.Holds)

let test_api_fta_route () =
  (* The FTA route needs boundary structure; run it on the curated root. *)
  let t = Fta.Fmea_from_fta.analyse Case_study.power_supply_root in
  Alcotest.(check (list string)) "fta route SR set" [ "D1"; "L1"; "MC1" ]
    (List.sort String.compare (Fmea.Table.safety_related_components t))

let suite =
  [
    Alcotest.test_case "process happy path" `Quick test_process_happy_path;
    Alcotest.test_case "process ordering" `Quick test_process_ordering_enforced;
    Alcotest.test_case "process prerequisites" `Quick test_process_prerequisites;
    Alcotest.test_case "process step5 gate" `Quick test_process_step5_gate;
    Alcotest.test_case "process iterate" `Quick test_process_iterate;
    Alcotest.test_case "case study SPFM numbers" `Quick test_case_study_spfm_numbers;
    Alcotest.test_case "case study H1 assessment" `Quick test_case_study_h1_assessment;
    Alcotest.test_case "case study SSAM valid" `Quick test_case_study_ssam_is_valid;
    Alcotest.test_case "PLL Table I" `Quick test_pll_table_i;
    Alcotest.test_case "system sizes" `Quick test_system_sizes;
    Alcotest.test_case "systems validate" `Quick test_systems_validate;
    Alcotest.test_case "system B software" `Quick test_system_b_has_software;
    Alcotest.test_case "system A FMEA" `Quick test_system_fmea_reasonable;
    Alcotest.test_case "monitor generation" `Quick test_monitor_generation;
    Alcotest.test_case "monitor observations" `Quick test_monitor_observations;
    Alcotest.test_case "api routes agree" `Quick test_api_routes_agree_on_quickstart;
    Alcotest.test_case "api refine" `Quick test_api_refine;
    Alcotest.test_case "api run_decisive" `Quick test_api_run_decisive_completes;
    Alcotest.test_case "api export + assure" `Quick test_api_export_and_assure;
    Alcotest.test_case "api fta route" `Quick test_api_fta_route;
  ]

let software_suite =
  let test_software_single_points () =
    let t = Systems.software_fmea Systems.system_b in
    Alcotest.(check (list string)) "control chain"
      [ "ALLOC"; "CTRL"; "DRV_THR"; "FUSION"; "GUIDANCE"; "NAV" ]
      (List.sort String.compare (Fmea.Table.safety_related_components t));
    (* Redundant sensor drivers and side tasks are not single points. *)
    List.iter
      (fun id ->
        Alcotest.(check bool) (id ^ " not SR") true
          (not (List.mem id (Fmea.Table.safety_related_components t))))
      [ "DRV_IMU"; "DRV_SONAR"; "DRV_GPS"; "LOG"; "WDT"; "HEALTH" ]
  in
  let test_software_refinement () =
    let t = Systems.software_fmea Systems.system_b in
    let r =
      Api.refine ~target:Ssam.Requirement.ASIL_B
        ~component_types:(List.map (fun c -> (c, "task")) (Fmea.Table.components t))
        t Systems.system_b.Systems.safety_mechanisms
    in
    Alcotest.(check bool) "software reaches ASIL-B" true r.Api.meets_target
  in
  let test_system_a_has_no_software () =
    match Systems.software_fmea Systems.system_a with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  [
    Alcotest.test_case "software single points" `Quick test_software_single_points;
    Alcotest.test_case "software refinement" `Quick test_software_refinement;
    Alcotest.test_case "system A has no software" `Quick test_system_a_has_no_software;
  ]
