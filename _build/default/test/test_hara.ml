(* Tests for hazard analysis and risk assessment: the ISO 26262 risk graph
   and hazard-log derivation. *)

open Ssam

let test_risk_graph_corners () =
  let d = Hara.Risk.determine in
  Alcotest.(check bool) "max is ASIL-D" true
    (d ~severity:Hazard.S3 ~exposure:Hazard.E4 ~controllability:Hazard.C3
    = Requirement.ASIL_D);
  Alcotest.(check bool) "S0 always QM" true
    (d ~severity:Hazard.S0 ~exposure:Hazard.E4 ~controllability:Hazard.C3
    = Requirement.QM);
  Alcotest.(check bool) "min nonzero is QM" true
    (d ~severity:Hazard.S1 ~exposure:Hazard.E1 ~controllability:Hazard.C1
    = Requirement.QM)

let test_risk_graph_ladder () =
  (* ISO 26262-3 Table 4 spot checks. *)
  let d = Hara.Risk.determine in
  Alcotest.(check bool) "S3/E4/C2 -> C" true
    (d ~severity:Hazard.S3 ~exposure:Hazard.E4 ~controllability:Hazard.C2
    = Requirement.ASIL_C);
  Alcotest.(check bool) "S3/E3/C3 -> C" true
    (d ~severity:Hazard.S3 ~exposure:Hazard.E3 ~controllability:Hazard.C3
    = Requirement.ASIL_C);
  Alcotest.(check bool) "S2/E4/C3 -> C" true
    (d ~severity:Hazard.S2 ~exposure:Hazard.E4 ~controllability:Hazard.C3
    = Requirement.ASIL_C);
  Alcotest.(check bool) "S3/E2/C2 -> A" true
    (d ~severity:Hazard.S3 ~exposure:Hazard.E2 ~controllability:Hazard.C2
    = Requirement.ASIL_A);
  Alcotest.(check bool) "S2/E3/C3 -> B" true
    (d ~severity:Hazard.S2 ~exposure:Hazard.E3 ~controllability:Hazard.C3
    = Requirement.ASIL_B);
  Alcotest.(check bool) "S1/E4/C3 -> B" true
    (d ~severity:Hazard.S1 ~exposure:Hazard.E4 ~controllability:Hazard.C3
    = Requirement.ASIL_B)

(* Property: the risk graph is monotone — raising any class never lowers
   the ASIL. *)
let prop_risk_monotone =
  let severities = [| Hazard.S0; Hazard.S1; Hazard.S2; Hazard.S3 |] in
  let exposures = [| Hazard.E1; Hazard.E2; Hazard.E3; Hazard.E4 |] in
  let controllabilities = [| Hazard.C1; Hazard.C2; Hazard.C3 |] in
  let level l =
    match l with
    | Requirement.QM -> 0
    | Requirement.ASIL_A -> 1
    | Requirement.ASIL_B -> 2
    | Requirement.ASIL_C -> 3
    | Requirement.ASIL_D -> 4
    | Requirement.SIL n -> n
  in
  QCheck.Test.make ~name:"risk graph is monotone" ~count:200
    QCheck.(triple (int_range 0 3) (int_range 0 3) (int_range 0 2))
    (fun (s, e, c) ->
      let base =
        level
          (Hara.Risk.determine ~severity:severities.(s) ~exposure:exposures.(e)
             ~controllability:controllabilities.(c))
      in
      let up i max_i = Int.min (i + 1) max_i in
      level
        (Hara.Risk.determine
           ~severity:severities.(up s 3)
           ~exposure:exposures.(e) ~controllability:controllabilities.(c))
      >= base
      && level
           (Hara.Risk.determine ~severity:severities.(s)
              ~exposure:exposures.(up e 3)
              ~controllability:controllabilities.(c))
         >= base
      && level
           (Hara.Risk.determine ~severity:severities.(s) ~exposure:exposures.(e)
              ~controllability:controllabilities.(up c 2))
         >= base)

let sample_package =
  let situation ~id ~sev ~e ~c =
    Hazard.situation ~exposure:e ~controllability:c
      ~meta:(Base.meta ~name:id id) ~severity:sev ()
  in
  Hazard.package ~meta:(Base.meta ~name:"hazards" "pkg")
    [
      Hazard.Situation (situation ~id:"H-low" ~sev:Hazard.S1 ~e:Hazard.E2 ~c:Hazard.C1);
      Hazard.Situation (situation ~id:"H-high" ~sev:Hazard.S3 ~e:Hazard.E4 ~c:Hazard.C2);
      Hazard.Situation
        (Hazard.situation ~meta:(Base.meta ~name:"H-unassessed" "H-u")
           ~severity:Hazard.S2 ());
    ]

let test_assess () =
  let log = Hara.assess ~name:"test" sample_package in
  Alcotest.(check int) "all situations kept" 3 (List.length log.Hara.entries);
  (* Highest priority first; unassessed entries sink to the bottom. *)
  (match log.Hara.entries with
  | first :: _ ->
      Alcotest.(check string) "highest first" "H-high"
        (Base.display_name first.Hara.situation.Hazard.hs_meta)
  | [] -> Alcotest.fail "empty log");
  (match List.rev log.Hara.entries with
  | last :: _ ->
      Alcotest.(check bool) "unassessed last" true (last.Hara.asil = None)
  | [] -> Alcotest.fail "empty log");
  Alcotest.(check bool) "highest asil" true
    (Hara.highest_asil log = Some Requirement.ASIL_C)

let test_derive_requirements () =
  let log = Hara.assess ~name:"test" sample_package in
  let reqs = Hara.derive_requirements log in
  (* Only the two assessed situations yield requirements. *)
  Alcotest.(check int) "two requirements" 2 (List.length reqs);
  List.iter
    (fun (r : Requirement.requirement) ->
      Alcotest.(check bool) "has integrity" true (Option.is_some r.Requirement.integrity);
      Alcotest.(check bool) "cites its hazard" true (r.Requirement.meta.Base.cites <> []))
    reqs

let test_to_package_valid () =
  let log = Hara.assess ~name:"test" sample_package in
  let req_pkg = Hara.to_package ~package_id:"pkg-derived" log in
  (* Requirements + Derives relationships. *)
  Alcotest.(check int) "elements" 4 (List.length req_pkg.Requirement.elements);
  (* The combined model must validate (relationship targets resolve to the
     hazard package). *)
  let model =
    Model.create ~requirement_packages:[ req_pkg ]
      ~hazard_packages:[ sample_package ] ~meta:(Base.meta "m") ()
  in
  Alcotest.(check int) "no dangling traces" 0
    (List.length (Validate.errors (Validate.check model)))

let suite =
  [
    Alcotest.test_case "risk graph corners" `Quick test_risk_graph_corners;
    Alcotest.test_case "risk graph ladder" `Quick test_risk_graph_ladder;
    QCheck_alcotest.to_alcotest prop_risk_monotone;
    Alcotest.test_case "assess" `Quick test_assess;
    Alcotest.test_case "derive requirements" `Quick test_derive_requirements;
    Alcotest.test_case "to_package validates" `Quick test_to_package_valid;
  ]
