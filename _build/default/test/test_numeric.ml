(* Tests for the linear-algebra substrate. *)

let approx ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

let check_float ?(eps = 1e-9) what expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %g, got %g" what expected actual)
    true (approx ~eps expected actual)

(* ---------- Vector ---------- *)

let test_vector_basics () =
  let v = Numeric.Vector.of_list [ 1.0; 2.0; 3.0 ] in
  Alcotest.(check int) "dim" 3 (Numeric.Vector.dim v);
  check_float "dot" 14.0 (Numeric.Vector.dot v v);
  check_float "norm_inf" 3.0 (Numeric.Vector.norm_inf v);
  check_float "norm2" (sqrt 14.0) (Numeric.Vector.norm2 v);
  let w = Numeric.Vector.add v (Numeric.Vector.scale (-1.0) v) in
  check_float "add/scale" 0.0 (Numeric.Vector.norm_inf w)

let test_vector_mismatch () =
  let v = Numeric.Vector.of_list [ 1.0 ] in
  let w = Numeric.Vector.of_list [ 1.0; 2.0 ] in
  Alcotest.check_raises "add mismatch"
    (Invalid_argument "Vector.add: dimension mismatch (1 vs 2)") (fun () ->
      ignore (Numeric.Vector.add v w))

let test_max_abs_diff () =
  let v = Numeric.Vector.of_list [ 1.0; 5.0 ] in
  let w = Numeric.Vector.of_list [ 2.0; 3.0 ] in
  check_float "max_abs_diff" 2.0 (Numeric.Vector.max_abs_diff v w)

(* ---------- Matrix ---------- *)

let test_matrix_basics () =
  let m = Numeric.Matrix.of_rows [ [ 1.0; 2.0 ]; [ 3.0; 4.0 ] ] in
  Alcotest.(check int) "rows" 2 (Numeric.Matrix.rows m);
  Alcotest.(check int) "cols" 2 (Numeric.Matrix.cols m);
  check_float "get" 3.0 (Numeric.Matrix.get m 1 0);
  Numeric.Matrix.add_to m 1 0 1.0;
  check_float "add_to" 4.0 (Numeric.Matrix.get m 1 0)

let test_matrix_ragged () =
  Alcotest.check_raises "ragged" (Invalid_argument "Matrix.of_rows: ragged rows")
    (fun () -> ignore (Numeric.Matrix.of_rows [ [ 1.0 ]; [ 1.0; 2.0 ] ]))

let test_matrix_mul () =
  let a = Numeric.Matrix.of_rows [ [ 1.0; 2.0 ]; [ 3.0; 4.0 ] ] in
  let i = Numeric.Matrix.identity 2 in
  Alcotest.(check bool) "a * I = a" true (Numeric.Matrix.equal (Numeric.Matrix.mul a i) a);
  let b = Numeric.Matrix.of_rows [ [ 5.0; 6.0 ]; [ 7.0; 8.0 ] ] in
  let ab = Numeric.Matrix.mul a b in
  check_float "(ab)00" 19.0 (Numeric.Matrix.get ab 0 0);
  check_float "(ab)11" 50.0 (Numeric.Matrix.get ab 1 1)

let test_transpose_involution () =
  let a = Numeric.Matrix.of_rows [ [ 1.0; 2.0; 3.0 ]; [ 4.0; 5.0; 6.0 ] ] in
  let att = Numeric.Matrix.transpose (Numeric.Matrix.transpose a) in
  Alcotest.(check bool) "transpose twice" true (Numeric.Matrix.equal a att)

let test_mul_vec () =
  let a = Numeric.Matrix.of_rows [ [ 2.0; 0.0 ]; [ 0.0; 3.0 ] ] in
  let y = Numeric.Matrix.mul_vec a [| 1.0; 1.0 |] in
  check_float "y0" 2.0 y.(0);
  check_float "y1" 3.0 y.(1)

(* ---------- LU ---------- *)

let test_lu_solve_known () =
  (* 2x + y = 5 ; x + 3y = 10  ->  x = 1, y = 3 *)
  let a = Numeric.Matrix.of_rows [ [ 2.0; 1.0 ]; [ 1.0; 3.0 ] ] in
  let x = Numeric.Lu.solve a [| 5.0; 10.0 |] in
  check_float "x" 1.0 x.(0);
  check_float "y" 3.0 x.(1)

let test_lu_needs_pivoting () =
  (* Zero on the initial diagonal forces a row swap. *)
  let a = Numeric.Matrix.of_rows [ [ 0.0; 1.0 ]; [ 1.0; 0.0 ] ] in
  let x = Numeric.Lu.solve a [| 2.0; 3.0 |] in
  check_float "x" 3.0 x.(0);
  check_float "y" 2.0 x.(1)

let test_lu_singular () =
  let a = Numeric.Matrix.of_rows [ [ 1.0; 2.0 ]; [ 2.0; 4.0 ] ] in
  (match Numeric.Lu.decompose a with
  | exception Numeric.Lu.Singular _ -> ()
  | _ -> Alcotest.fail "expected Singular");
  check_float "det singular" 0.0 (Numeric.Lu.det a)

let test_det () =
  let a = Numeric.Matrix.of_rows [ [ 3.0; 1.0 ]; [ 4.0; 2.0 ] ] in
  check_float "det" 2.0 (Numeric.Lu.det a);
  (* Permutation parity: swapping rows negates the determinant. *)
  let b = Numeric.Matrix.of_rows [ [ 4.0; 2.0 ]; [ 3.0; 1.0 ] ] in
  check_float "det swapped" (-2.0) (Numeric.Lu.det b)

let test_inverse () =
  let a = Numeric.Matrix.of_rows [ [ 4.0; 7.0 ]; [ 2.0; 6.0 ] ] in
  let inv = Numeric.Lu.inverse a in
  let prod = Numeric.Matrix.mul a inv in
  Alcotest.(check bool) "a * a^-1 = I" true
    (Numeric.Matrix.equal ~eps:1e-9 prod (Numeric.Matrix.identity 2))

let test_not_square () =
  let a = Numeric.Matrix.create 2 3 in
  Alcotest.check_raises "not square" (Invalid_argument "Lu.decompose: not square")
    (fun () -> ignore (Numeric.Lu.decompose a))

(* Property: LU solves diagonally dominant random systems to high accuracy. *)
let prop_lu_random =
  QCheck.Test.make ~name:"lu solves diagonally dominant systems" ~count:100
    QCheck.(pair (int_range 1 12) (int_range 0 10_000))
    (fun (n, seed) ->
      let rand =
        let state = ref (seed + 1) in
        fun () ->
          state := (!state * 1103515245) + 12345;
          float_of_int (abs !state mod 2000 - 1000) /. 100.0
      in
      let a = Numeric.Matrix.create n n in
      for i = 0 to n - 1 do
        let mutable_sum = ref 0.0 in
        for j = 0 to n - 1 do
          if i <> j then begin
            let v = rand () in
            Numeric.Matrix.set a i j v;
            mutable_sum := !mutable_sum +. Float.abs v
          end
        done;
        Numeric.Matrix.set a i i (!mutable_sum +. 1.0 +. Float.abs (rand ()))
      done;
      let x_true = Array.init n (fun _ -> rand ()) in
      let b = Numeric.Matrix.mul_vec a x_true in
      let x = Numeric.Lu.solve a b in
      Numeric.Vector.max_abs_diff x x_true < 1e-6)

let suite =
  [
    Alcotest.test_case "vector basics" `Quick test_vector_basics;
    Alcotest.test_case "vector mismatch" `Quick test_vector_mismatch;
    Alcotest.test_case "max_abs_diff" `Quick test_max_abs_diff;
    Alcotest.test_case "matrix basics" `Quick test_matrix_basics;
    Alcotest.test_case "matrix ragged" `Quick test_matrix_ragged;
    Alcotest.test_case "matrix mul" `Quick test_matrix_mul;
    Alcotest.test_case "transpose involution" `Quick test_transpose_involution;
    Alcotest.test_case "mul_vec" `Quick test_mul_vec;
    Alcotest.test_case "lu solve known" `Quick test_lu_solve_known;
    Alcotest.test_case "lu pivoting" `Quick test_lu_needs_pivoting;
    Alcotest.test_case "lu singular" `Quick test_lu_singular;
    Alcotest.test_case "determinant" `Quick test_det;
    Alcotest.test_case "inverse" `Quick test_inverse;
    Alcotest.test_case "not square" `Quick test_not_square;
    QCheck_alcotest.to_alcotest prop_lu_random;
  ]
