(* Tests for SSAM XML persistence: lossless round-trips over hand-built,
   transformed and randomly generated models, plus corrupt-input
   handling. *)

open Ssam

let model_equal (a : Model.t) (b : Model.t) =
  Base.equal_meta a.Model.model_meta b.Model.model_meta
  && List.equal Requirement.equal_package a.Model.requirement_packages
       b.Model.requirement_packages
  && List.equal Hazard.equal_package a.Model.hazard_packages b.Model.hazard_packages
  && List.equal Architecture.equal_package a.Model.component_packages
       b.Model.component_packages
  && List.equal Mbsa.equal_package a.Model.mbsa_packages b.Model.mbsa_packages

let roundtrip m = Persist.of_string (Persist.to_string m)

let check_roundtrip what m =
  Alcotest.(check bool) (what ^ " round-trips") true (model_equal m (roundtrip m))

(* A model touching every metamodel feature. *)
let kitchen_sink =
  let meta = Base.meta in
  let requirement_pkg =
    Requirement.package
      ~interfaces:
        [ { Requirement.interface_meta = meta "rif"; exports = [ "r1" ] } ]
      ~meta:(meta ~name:"reqs" "rp")
      [
        Requirement.Requirement
          (Requirement.requirement ~integrity:Requirement.ASIL_C
             ~meta:
               (meta ~name:"SR-1"
                  ~names:[ Lang_string.v ~lang:"de" "Anforderung" ]
                  ~description:"safety requirement"
                  ~constraints:
                    [ Base.constraint_ ~description:"check" ~id:"c1" "1 + 1 = 2" ]
                  ~cites:[ "h1" ] "r1")
             "the PSU shall not brown out");
        Requirement.Relationship
          (Requirement.relationship ~meta:(meta "rrel")
             ~kind:Requirement.Refines ~source:"r1" ~target:"r1");
      ]
  in
  let hazard_pkg =
    Hazard.package ~meta:(meta ~name:"hazards" "hp")
      [
        Hazard.Situation
          (Hazard.situation ~exposure:Hazard.E3 ~controllability:Hazard.C2
             ~probability:1e-6
             ~causes:[ Hazard.cause ~meta:(meta "cz") "wear-out" ]
             ~meta:(meta ~name:"H1" "h1") ~severity:Hazard.S2 ());
        Hazard.Measure
          (Hazard.measure ~safety_decision:"deploy watchdog"
             ~validation_plan:"HIL test"
             ~effectiveness:{ Hazard.verified = true; effectiveness_pct = 85.0 }
             ~mitigates:[ "h1" ] ~meta:(meta ~name:"CM" "cm") ());
      ]
  in
  let child =
    Architecture.component ~component_type:Architecture.Software ~fit:12.5
      ~integrity:Requirement.ASIL_B ~safety_related:true ~dynamic:true
      ~io_nodes:
        [
          Architecture.io_node ~value:5.0 ~lower_limit:4.5 ~upper_limit:5.5
            ~meta:(meta ~name:"vdd" "io1") Architecture.Input;
          Architecture.io_node ~meta:(meta "io2") Architecture.Bidirectional;
        ]
      ~failure_modes:
        [
          Architecture.failure_mode ~cause:"alpha particles" ~exposure:"rare"
            ~hazards:[ "h1" ]
            ~effects:
              [
                Architecture.failure_effect ~affected:[ "leaf2" ]
                  ~description:"output stuck" ~meta:(meta "fe1") Architecture.DVF;
              ]
            ~meta:(meta ~name:"bitflip" "fm1")
            ~nature:(Architecture.Other "transient") ~distribution_pct:40.0 ();
          Architecture.failure_mode ~meta:(meta "fm2")
            ~nature:Architecture.Loss_of_function ~distribution_pct:60.0 ();
        ]
      ~safety_mechanisms:
        [
          Architecture.safety_mechanism ~covers:[ "fm1" ] ~meta:(meta ~name:"ECC" "sm1")
            ~coverage_pct:99.0 ~cost:2.0 ();
        ]
      ~functions:
        [ Architecture.func ~meta:(meta "fn1") Architecture.TwoOoThree ]
      ~meta:
        (meta ~name:"leaf"
           ~external_references:
             [
               Base.external_reference
                 ~metadata:[ ("sheet", "a"); ("row", "3") ]
                 ~validation:(Base.constraint_ ~id:"v1" "Model.rows.size()")
                 ~location:"data.csv" ~model_type:"csv" ();
             ]
           "leaf1")
      ()
  in
  let leaf2 = Architecture.component ~meta:(meta "leaf2") () in
  let composite =
    Architecture.component ~component_type:Architecture.System
      ~children:[ child; leaf2 ]
      ~connections:
        [
          Architecture.relationship ~from_node:"io1" ~meta:(meta "cn1")
            ~from_component:"leaf1" ~to_component:"leaf2" ();
        ]
      ~meta:(meta ~name:"sys" "sys1")
      ()
  in
  let arch_pkg =
    Architecture.package
      ~interfaces:
        [ { Architecture.interface_meta = meta "aif"; exports = [ "sys1" ] } ]
      ~meta:(meta ~name:"arch" "ap")
      [ Architecture.Component composite ]
  in
  let mbsa_pkg =
    Mbsa.package ~requirement_packages:[ "rp" ] ~hazard_packages:[ "hp" ]
      ~component_packages:[ "ap" ]
      ~artifacts:
        [
          Mbsa.artifact_reference ~iteration:2 ~meta:(meta "art1")
            ~kind:Mbsa.FMEDA ~location:"fmeda.csv" ();
          Mbsa.artifact_reference ~meta:(meta "art2")
            ~kind:(Mbsa.Other_analysis "hazop") ~location:"x" ();
        ]
      ~traces:
        [
          Mbsa.trace_link ~meta:(meta "tr1") ~kind:Mbsa.Supports ~source:"art1"
            ~target:"r1";
        ]
      ~meta:(meta ~name:"mbsa" "mp") ()
  in
  Model.create ~requirement_packages:[ requirement_pkg ]
    ~hazard_packages:[ hazard_pkg ] ~component_packages:[ arch_pkg ]
    ~mbsa_packages:[ mbsa_pkg ]
    ~meta:(meta ~name:"kitchen sink" "m1")
    ()

let test_kitchen_sink_roundtrip () = check_roundtrip "kitchen sink" kitchen_sink

let test_case_study_roundtrip () =
  let m =
    Model.create ~component_packages:[ Decisive.Case_study.power_supply_ssam ]
      ~meta:(Base.meta ~name:"psu" "psu-model") ()
  in
  check_roundtrip "case-study SSAM twin" m

let test_transformed_system_roundtrip () =
  check_roundtrip "System B model" (Decisive.Systems.ssam_model Decisive.Systems.system_b)

let test_file_roundtrip () =
  let path = Filename.temp_file "ssam" ".xml" in
  Persist.save path kitchen_sink;
  let reloaded = Persist.load path in
  Sys.remove path;
  Alcotest.(check bool) "file round-trip" true (model_equal kitchen_sink reloaded)

let test_escaping () =
  (* Names, descriptions and query expressions with XML-hostile
     characters survive. *)
  let nasty = "a < b && \"c\" > 'd' & <tag/>" in
  let m =
    Model.create
      ~component_packages:
        [
          Architecture.package
            ~meta:(Base.meta ~name:nasty ~description:nasty "pkg")
            [
              Architecture.Component
                (Architecture.component
                   ~meta:
                     (Base.meta ~name:nasty
                        ~constraints:[ Base.constraint_ ~id:"q" nasty ]
                        "c1")
                   ());
            ];
        ]
      ~meta:(Base.meta "m") ()
  in
  check_roundtrip "hostile characters" m

let test_corrupt_inputs () =
  List.iter
    (fun src ->
      match Persist.of_string src with
      | exception Persist.Corrupt _ -> ()
      | exception Modelio.Xml.Parse_error _ -> ()
      | _ -> Alcotest.fail (Printf.sprintf "expected rejection of %S" src))
    [
      "<notSsam/>";
      "<ssamModel/>";
      (* missing id *)
      "<ssamModel id=\"m\"><componentPackage id=\"p\"><component id=\"c\" \
       type=\"alien\" fit=\"1\" safetyRelated=\"false\" \
       dynamic=\"false\"/></componentPackage></ssamModel>";
      "<ssamModel id=\"m\"><componentPackage id=\"p\"><component id=\"c\" \
       type=\"hardware\" fit=\"NaN-ish\" safetyRelated=\"false\" \
       dynamic=\"false\"/></componentPackage></ssamModel>";
      "<ssamModel id=\"m\"><hazardPackage id=\"p\"><hazardousSituation \
       id=\"h\" severity=\"S9\"/></hazardPackage></ssamModel>";
    ]

let test_driver_installed () =
  Alcotest.(check bool) "ssam driver" true
    (Option.is_some (Modelio.Driver.find "ssam"));
  (* A saved model is queryable through the generic XML shape. *)
  let path = Filename.temp_file "ssam" ".xml" in
  Persist.save path kitchen_sink;
  let v = Modelio.Driver.resolve ~model_type:"ssam" ~location:path ~metadata:[] in
  Sys.remove path;
  let env = Query.Interp.env_of_models [ ("Model", v) ] in
  match
    Query.Interp.run_string env
      "Model.children.select(c | c.tag = 'componentPackage').size()"
  with
  | Modelio.Mvalue.Num n -> Alcotest.(check (float 1e-9)) "one arch package" 1.0 n
  | v -> Alcotest.fail (Modelio.Mvalue.type_name v)

(* Random model generator for the round-trip property. *)
let gen_model =
  let open QCheck.Gen in
  let ident prefix = map (Printf.sprintf "%s%d" prefix) (int_range 0 10_000) in
  let gen_meta prefix =
    let* id = ident prefix in
    let* name = string_size ~gen:(char_range 'a' 'z') (int_range 0 8) in
    let* cites = list_size (int_range 0 2) (ident "cite") in
    return (Base.meta ~name ~cites id)
  in
  let gen_fm i =
    let* meta = gen_meta (Printf.sprintf "fm%d-" i) in
    let* nature =
      oneofl
        [
          Architecture.Loss_of_function;
          Architecture.Degraded;
          Architecture.Erroneous;
          Architecture.Other "odd";
        ]
    in
    let* dist = map float_of_int (int_range 0 100) in
    return (Architecture.failure_mode ~meta ~nature ~distribution_pct:dist ())
  in
  let gen_component i =
    let* meta = gen_meta (Printf.sprintf "c%d-" i) in
    let* fit = map float_of_int (int_range 0 500) in
    let* fms = list_size (int_range 0 3) (gen_fm i) in
    let* ctype =
      oneofl [ Architecture.System; Architecture.Hardware; Architecture.Software ]
    in
    let* dynamic = bool in
    return
      (Architecture.component ~component_type:ctype ~fit ~dynamic
         ~failure_modes:fms ~meta ())
  in
  let* n = int_range 0 5 in
  let* components =
    List.fold_left
      (fun acc i -> map2 (fun l c -> c :: l) acc (gen_component i))
      (return []) (List.init n Fun.id)
  in
  let* pkg_meta = gen_meta "pkg-" in
  let* model_meta = gen_meta "model-" in
  return
    (Model.create
       ~component_packages:
         [
           Architecture.package ~meta:pkg_meta
             (List.map (fun c -> Architecture.Component c) components);
         ]
       ~meta:model_meta ())

let prop_random_roundtrip =
  QCheck.Test.make ~name:"random models round-trip through XML" ~count:100
    (QCheck.make gen_model)
    (fun m -> model_equal m (roundtrip m))

let suite =
  [
    Alcotest.test_case "kitchen sink roundtrip" `Quick test_kitchen_sink_roundtrip;
    Alcotest.test_case "case study roundtrip" `Quick test_case_study_roundtrip;
    Alcotest.test_case "System B roundtrip" `Quick test_transformed_system_roundtrip;
    Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
    Alcotest.test_case "hostile characters" `Quick test_escaping;
    Alcotest.test_case "corrupt inputs rejected" `Quick test_corrupt_inputs;
    Alcotest.test_case "ssam driver + query" `Quick test_driver_installed;
    QCheck_alcotest.to_alcotest prop_random_roundtrip;
  ]
