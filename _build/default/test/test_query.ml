(* Tests for the query language: lexer, parser and evaluator. *)

open Modelio

let eval ?(env = Query.Interp.env_empty) src = Query.Interp.run_string env src

let check_num ?env what expected src =
  match eval ?env src with
  | Mvalue.Num f ->
      Alcotest.(check (float 1e-9)) what expected f
  | v -> Alcotest.fail (Printf.sprintf "%s: expected number, got %s" what (Mvalue.type_name v))

let check_bool ?env what expected src =
  match eval ?env src with
  | Mvalue.Bool b -> Alcotest.(check bool) what expected b
  | v -> Alcotest.fail (Printf.sprintf "%s: expected bool, got %s" what (Mvalue.type_name v))

let check_str ?env what expected src =
  match eval ?env src with
  | Mvalue.Str s -> Alcotest.(check string) what expected s
  | v -> Alcotest.fail (Printf.sprintf "%s: expected string, got %s" what (Mvalue.type_name v))

(* ---------- lexer ---------- *)

let test_lexer_tokens () =
  let toks = List.map fst (Query.Lexer.tokenize "x := 1.5 <> 'a' // c\n and") in
  Alcotest.(check int) "token count" 7 (List.length toks);
  Alcotest.(check bool) "assign" true (List.mem Query.Token.ASSIGN toks);
  Alcotest.(check bool) "neq" true (List.mem Query.Token.NEQ toks);
  Alcotest.(check bool) "and kw" true (List.mem Query.Token.AND toks)

let test_lexer_comments () =
  let toks = List.map fst (Query.Lexer.tokenize "1 /* multi\nline */ + 2") in
  Alcotest.(check int) "comments skipped" 4 (List.length toks)

let test_lexer_errors () =
  (match Query.Lexer.tokenize "'unterminated" with
  | exception Query.Lexer.Lex_error _ -> ()
  | _ -> Alcotest.fail "expected Lex_error");
  match Query.Lexer.tokenize "@" with
  | exception Query.Lexer.Lex_error _ -> ()
  | _ -> Alcotest.fail "expected Lex_error on '@'"

(* ---------- arithmetic and operators ---------- *)

let test_arithmetic () =
  check_num "add" 7.0 "3 + 4";
  check_num "precedence" 14.0 "2 + 3 * 4";
  check_num "parens" 20.0 "(2 + 3) * 4";
  check_num "div" 2.5 "5 / 2";
  check_num "mod" 1.0 "7 mod 3";
  check_num "neg" (-3.0) "-3";
  check_num "sci" 450.0 "4.5e2"

let test_division_by_zero () =
  match eval "1 / 0" with
  | exception Query.Interp.Runtime_error _ -> ()
  | _ -> Alcotest.fail "expected Runtime_error"

let test_comparisons () =
  check_bool "lt" true "1 < 2";
  check_bool "le" true "2 <= 2";
  check_bool "eq strings" true "'a' = 'a'";
  check_bool "neq" true "1 <> 2";
  check_bool "string order" true "'abc' < 'abd'"

let test_boolean_logic () =
  check_bool "and" false "true and false";
  check_bool "or" true "false or true";
  check_bool "not" true "not false";
  check_bool "implies true" true "false implies false";
  check_bool "implies false" false "true implies false";
  (* Short-circuit: the RHS would be a runtime error. *)
  check_bool "short-circuit and" false "false and (1 / 0 > 0)";
  check_bool "short-circuit or" true "true or (1 / 0 > 0)"

let test_string_ops () =
  check_str "concat" "ab" "'a' + 'b'";
  check_str "num concat" "x1" "'x' + 1";
  check_str "upper" "ABC" "'abc'.toUpperCase()";
  check_str "trim" "x" "'  x '.trim()";
  check_bool "contains" true "'hello'.contains('ell')";
  check_bool "startsWith" true "'hello'.startsWith('he')";
  check_bool "endsWith" true "'hello'.endsWith('lo')";
  check_num "length" 5.0 "'hello'.length()";
  check_str "replace" "h-llo" "'hello'.replace('e', '-')";
  check_num "toNumber pct" 30.0 "'30%'.toNumber()";
  check_num "split" 3.0 "'a,b,c'.split(',').size()"

let test_if_expression () =
  check_num "then" 1.0 "if (2 > 1) 1 else 2";
  check_num "else" 2.0 "if (2 < 1) 1 else 2"

(* ---------- collections ---------- *)

let test_sequence_ops () =
  check_num "size" 3.0 "Sequence(1, 2, 3).size()";
  check_num "sum" 6.0 "Sequence(1, 2, 3).sum()";
  check_num "avg" 2.0 "Sequence(1, 2, 3).avg()";
  check_num "min" 1.0 "Sequence(3, 1, 2).min()";
  check_num "max" 3.0 "Sequence(3, 1, 2).max()";
  check_num "first" 3.0 "Sequence(3, 1, 2).first()";
  check_num "last" 2.0 "Sequence(3, 1, 2).last()";
  check_num "at" 1.0 "Sequence(3, 1, 2).at(1)";
  check_num "index" 1.0 "Sequence(3, 1, 2)[1]";
  check_bool "isEmpty" true "Sequence().isEmpty()";
  check_bool "notEmpty" true "Sequence(1).notEmpty()";
  check_bool "includes" true "Sequence(1, 2).includes(2)";
  check_num "indexOf" 1.0 "Sequence('a', 'b').indexOf('b')";
  check_num "distinct" 2.0 "Sequence(1, 1, 2).distinct().size()";
  check_num "flatten" 4.0 "Sequence(Sequence(1, 2), Sequence(3, 4)).flatten().size()"

let test_lambda_ops () =
  check_num "select" 2.0 "Sequence(1, 2, 3, 4).select(x | x > 2).size()";
  check_num "reject" 2.0 "Sequence(1, 2, 3, 4).reject(x | x > 2).size()";
  check_num "collect" 12.0 "Sequence(1, 2, 3).collect(x | x * 2).sum()";
  check_bool "exists" true "Sequence(1, 2).exists(x | x = 2)";
  check_bool "forAll" false "Sequence(1, 2).forAll(x | x = 2)";
  check_num "count" 1.0 "Sequence(1, 2, 3).count(x | x = 2)";
  check_num "selectOne" 2.0 "Sequence(1, 2, 3).selectOne(x | x > 1)";
  check_num "sortBy" 1.0 "Sequence(3, 1, 2).sortBy(x | x).first()"

let test_collection_navigation () =
  (* EOL-style: .field on a sequence maps over elements. *)
  let model =
    Mvalue.Seq
      [
        Mvalue.Record [ ("fit", Mvalue.Num 10.0) ];
        Mvalue.Record [ ("fit", Mvalue.Num 15.0) ];
      ]
  in
  let env = Query.Interp.env_of_models [ ("Comps", model) ] in
  check_num ~env "mapped navigation" 25.0 "Comps.fit.sum()"

(* ---------- statements ---------- *)

let test_statements () =
  check_num "var and return" 30.0 "var x := 10; var y := 20; return x + y;";
  check_num "reassignment" 2.0 "var x := 1; x := x + 1; return x;";
  check_num "if statement" 5.0
    "var x := 0; if (true) x := 5; else x := 9; return x;";
  check_num "last expression is result" 42.0 "var x := 40; x + 2;"

let test_unknown_identifier () =
  match eval "nope + 1" with
  | exception Query.Interp.Runtime_error m ->
      Alcotest.(check bool) "message mentions name" true
        (String.length m > 0 && String.sub m 0 7 = "unknown")
  | _ -> Alcotest.fail "expected Runtime_error"

let test_unknown_method () =
  match eval "Sequence(1).frobnicate()" with
  | exception Query.Interp.Runtime_error _ -> ()
  | _ -> Alcotest.fail "expected Runtime_error"

let test_parse_errors () =
  List.iter
    (fun src ->
      match Query.Parser.parse_program src with
      | exception Query.Parser.Parse_error _ -> ()
      | exception Query.Lexer.Lex_error _ -> ()
      | _ -> Alcotest.fail (Printf.sprintf "expected parse error on %S" src))
    [ "1 +"; "var := 3;"; "(1"; "a.b("; "if (1) 2" ]

(* ---------- records and realistic federation queries ---------- *)

let reliability_env () =
  let csv =
    Csv.parse
      "Component,FIT,Failure_Mode,Distribution\n\
       Diode,10,Open,30%\nDiode,10,Short,70%\nInductor,15,Open,30%\n"
  in
  Query.Interp.env_of_models
    [ ("Reliability", Mvalue.of_csv_table (Csv.to_table csv)) ]

let test_federation_query () =
  let env = reliability_env () in
  check_num ~env "diode distribution sum" 100.0
    "Reliability.rows.select(r | r.component = 'Diode').collect(r | r.distribution.toNumber()).sum()";
  check_num ~env "distinct fits" 25.0
    "Reliability.rows.collect(r | r.fit.toNumber()).distinct().sum()";
  check_bool ~env "header check" true "Reliability.header.includes('FIT')"

let test_record_methods () =
  let env =
    Query.Interp.env_of_models
      [ ("R", Mvalue.Record [ ("a", Mvalue.Num 1.0); ("b", Mvalue.Str "x") ]) ]
  in
  check_bool ~env "has" true "R.has('a')";
  check_bool ~env "has not" false "R.has('z')";
  check_num ~env "fields" 2.0 "R.fields().size()";
  check_str ~env "get" "x" "R.get('b')"

let test_spfm_query_shape () =
  (* The exact query the assurance case embeds, against a miniature FMEDA
     CSV: SPFM = 1 - 10.5/325 = 96.77% >= 90. *)
  let csv =
    Csv.parse
      "Component,FIT,Safety_Related,Failure_Mode,Distribution,Safety_Mechanism,SM_Coverage,Single_Point_Failure_Rate\n\
       D1,10,Yes,Open,30%,No SM,,3 FIT\n\
       D1,10,No,Short,70%,No SM,,\n\
       L1,15,Yes,Open,30%,No SM,,4.5 FIT\n\
       MC1,300,Yes,RAM Failure,100%,ECC,99%,3 FIT\n"
  in
  let env =
    Query.Interp.env_of_models [ ("Artifact", Mvalue.of_csv_table (Csv.to_table csv)) ]
  in
  check_bool ~env "spfm acceptance" true
    (Decisive.Api.spfm_query ~target:Ssam.Requirement.ASIL_B)

let suite =
  [
    Alcotest.test_case "lexer tokens" `Quick test_lexer_tokens;
    Alcotest.test_case "lexer comments" `Quick test_lexer_comments;
    Alcotest.test_case "lexer errors" `Quick test_lexer_errors;
    Alcotest.test_case "arithmetic" `Quick test_arithmetic;
    Alcotest.test_case "division by zero" `Quick test_division_by_zero;
    Alcotest.test_case "comparisons" `Quick test_comparisons;
    Alcotest.test_case "boolean logic" `Quick test_boolean_logic;
    Alcotest.test_case "string ops" `Quick test_string_ops;
    Alcotest.test_case "if expression" `Quick test_if_expression;
    Alcotest.test_case "sequence ops" `Quick test_sequence_ops;
    Alcotest.test_case "lambda ops" `Quick test_lambda_ops;
    Alcotest.test_case "collection navigation" `Quick test_collection_navigation;
    Alcotest.test_case "statements" `Quick test_statements;
    Alcotest.test_case "unknown identifier" `Quick test_unknown_identifier;
    Alcotest.test_case "unknown method" `Quick test_unknown_method;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "federation query" `Quick test_federation_query;
    Alcotest.test_case "record methods" `Quick test_record_methods;
    Alcotest.test_case "spfm acceptance query" `Quick test_spfm_query_shape;
  ]
