(* Tests for the SSAM metamodel: base facilities, the four modules, the
   model container and well-formedness validation. *)

open Ssam

(* ---------- Lang_string / Base ---------- *)

let test_lang_string () =
  let set = [ Lang_string.v "hello"; Lang_string.v ~lang:"de" "hallo" ] in
  Alcotest.(check string) "preferred en" "hello" (Lang_string.preferred set);
  Alcotest.(check string) "preferred de" "hallo" (Lang_string.preferred ~lang:"de" set);
  Alcotest.(check string) "fallback" "hello" (Lang_string.preferred ~lang:"fr" set);
  Alcotest.(check string) "empty" "" (Lang_string.preferred [])

let test_meta () =
  let m = Base.meta ~name:"D1" ~description:"a diode" ~cites:[ "H1" ] "d1" in
  Alcotest.(check string) "display name" "D1" (Base.display_name m);
  Alcotest.(check string) "unnamed falls back to id" "x"
    (Base.display_name (Base.meta "x"));
  Alcotest.(check (list string)) "cites" [ "H1" ] m.Base.cites

let test_fresh_ids () =
  Base.reset_fresh_ids ();
  let a = Base.fresh_id ~prefix:"c" () in
  let b = Base.fresh_id ~prefix:"c" () in
  Alcotest.(check bool) "distinct" true (a <> b);
  Base.reset_fresh_ids ();
  Alcotest.(check string) "deterministic after reset" a (Base.fresh_id ~prefix:"c" ())

let test_external_reference () =
  let r =
    Base.external_reference
      ~validation:(Base.constraint_ ~id:"q" "Model.rows.size()")
      ~location:"data.csv" ~model_type:"csv" ()
  in
  Alcotest.(check string) "location" "data.csv" r.Base.location;
  Alcotest.(check bool) "validation" true (Option.is_some r.Base.validation)

(* ---------- Requirement ---------- *)

let test_integrity_levels () =
  Alcotest.(check (option string)) "asil-b" (Some "ASIL-B")
    (Option.map Requirement.integrity_level_to_string
       (Requirement.integrity_level_of_string "asil_b"));
  Alcotest.(check (option string)) "bare letter" (Some "ASIL-D")
    (Option.map Requirement.integrity_level_to_string
       (Requirement.integrity_level_of_string "D"));
  Alcotest.(check (option string)) "sil" (Some "SIL3")
    (Option.map Requirement.integrity_level_to_string
       (Requirement.integrity_level_of_string "SIL3"));
  Alcotest.(check bool) "sil out of range" true
    (Requirement.integrity_level_of_string "SIL9" = None);
  Alcotest.(check bool) "junk" true (Requirement.integrity_level_of_string "XX" = None);
  (* The ordering used by Hara.highest_asil: QM < A < B < C < D. *)
  Alcotest.(check bool) "ordering" true
    (Requirement.compare_integrity_level Requirement.ASIL_D Requirement.ASIL_B > 0
    && Requirement.compare_integrity_level Requirement.QM Requirement.ASIL_A < 0)

let req_package =
  let r1 =
    Requirement.requirement ~integrity:Requirement.ASIL_B
      ~meta:(Base.meta ~name:"SR-1" "sr1") "shall not fail"
  in
  let r2 = Requirement.requirement ~meta:(Base.meta ~name:"R-2" "r2") "shall log" in
  let rel =
    Requirement.relationship ~meta:(Base.meta "rel1") ~kind:Requirement.Derives
      ~source:"sr1" ~target:"r2"
  in
  Requirement.package
    ~interfaces:
      [ { Requirement.interface_meta = Base.meta "if1"; exports = [ "sr1" ] } ]
    ~meta:(Base.meta ~name:"reqs" "pkg-req")
    [ Requirement.Requirement r1; Requirement.Requirement r2; Requirement.Relationship rel ]

let test_requirement_package () =
  Alcotest.(check int) "requirements" 2 (List.length (Requirement.requirements req_package));
  Alcotest.(check int) "relationships" 1 (List.length (Requirement.relationships req_package));
  let sr =
    List.filter Requirement.is_safety_requirement (Requirement.requirements req_package)
  in
  Alcotest.(check int) "safety requirements" 1 (List.length sr);
  let iface = List.hd req_package.Requirement.interfaces in
  Alcotest.(check int) "exports resolve" 1
    (List.length (Requirement.exported_elements req_package iface));
  Alcotest.(check bool) "find" true (Option.is_some (Requirement.find req_package "r2"))

(* ---------- Hazard ---------- *)

let hazard_package =
  let h1 =
    Hazard.situation ~exposure:Hazard.E4 ~controllability:Hazard.C2
      ~probability:1e-6
      ~causes:[ Hazard.cause ~meta:(Base.meta "c1") "wear" ]
      ~meta:(Base.meta ~name:"H1" "h1") ~severity:Hazard.S3 ()
  in
  let h2 =
    Hazard.situation ~meta:(Base.meta ~name:"H2" "h2") ~severity:Hazard.S1 ()
  in
  let cm =
    Hazard.measure ~safety_decision:"deploy ECC" ~mitigates:[ "h1" ]
      ~effectiveness:{ Hazard.verified = true; effectiveness_pct = 99.0 }
      ~meta:(Base.meta ~name:"CM1" "cm1") ()
  in
  Hazard.package ~meta:(Base.meta ~name:"hazards" "pkg-haz")
    [ Hazard.Situation h1; Hazard.Situation h2; Hazard.Measure cm ]

let test_hazard_package () =
  Alcotest.(check int) "situations" 2 (List.length (Hazard.situations hazard_package));
  Alcotest.(check int) "measures" 1 (List.length (Hazard.measures hazard_package));
  Alcotest.(check int) "measures_for h1" 1
    (List.length (Hazard.measures_for hazard_package "h1"));
  let unmitigated = Hazard.unmitigated hazard_package in
  Alcotest.(check (list string)) "unmitigated" [ "h2" ]
    (List.map (fun (s : Hazard.hazardous_situation) -> s.Hazard.hs_meta.Base.id) unmitigated)

(* ---------- Architecture ---------- *)

let leaf ~id ?(fit = 10.0) ?(fms = []) () =
  Architecture.component ~fit ~failure_modes:fms ~meta:(Base.meta ~name:id id) ()

let fm ~id ?(nature = Architecture.Loss_of_function) ?(dist = 100.0) () =
  Architecture.failure_mode ~meta:(Base.meta ~name:id id) ~nature
    ~distribution_pct:dist ()

let test_tolerance_strings () =
  List.iter
    (fun (t, s) ->
      Alcotest.(check string) "to_string" s (Architecture.tolerance_to_string t);
      Alcotest.(check bool) "of_string" true
        (Architecture.tolerance_of_string s = Some t))
    [
      (Architecture.OneOoOne, "1oo1");
      (Architecture.OneOoTwo, "1oo2");
      (Architecture.OneOoThree, "1oo3");
      (Architecture.TwoOoThree, "2oo3");
    ];
  (* The paper writes 1001/1002/2003 in its font; accept those too. *)
  Alcotest.(check bool) "numeric alias" true
    (Architecture.tolerance_of_string "2003" = Some Architecture.TwoOoThree)

let nested =
  let inner_child = leaf ~id:"inner-leaf" ~fms:[ fm ~id:"ilf" () ] () in
  let inner =
    Architecture.component ~children:[ inner_child ]
      ~meta:(Base.meta ~name:"inner" "inner")
      ()
  in
  let a = leaf ~id:"a" ~fms:[ fm ~id:"afm" () ] () in
  Architecture.component ~component_type:Architecture.System
    ~children:[ a; inner ]
    ~connections:
      [
        Architecture.relationship ~meta:(Base.meta "conn1") ~from_component:"a"
          ~to_component:"inner" ();
      ]
    ~meta:(Base.meta ~name:"root" "root")
    ()

let test_traversals () =
  let ids = ref [] in
  Architecture.iter_components
    (fun c -> ids := Architecture.component_id c :: !ids)
    nested;
  Alcotest.(check (list string)) "pre-order"
    [ "root"; "a"; "inner"; "inner-leaf" ]
    (List.rev !ids);
  Alcotest.(check int) "fold count" 4
    (Architecture.fold_components (fun n _ -> n + 1) 0 nested);
  Alcotest.(check (list string)) "leaves" [ "a"; "inner-leaf" ]
    (List.map Architecture.component_id (Architecture.leaf_components nested));
  Alcotest.(check bool) "find nested" true
    (Option.is_some (Architecture.find_component nested "inner-leaf"));
  Alcotest.(check bool) "find missing" true
    (Architecture.find_component nested "zzz" = None)

let test_count_elements () =
  (* root(1) + conn(1) + a(1) + afm(1) + inner(1) + inner-leaf(1) + ilf(1) = 7 *)
  Alcotest.(check int) "count" 7 (Architecture.count_elements nested)

let test_total_fit () =
  Alcotest.(check (float 1e-9)) "leaf fit sum" 20.0 (Architecture.total_fit nested)

let test_is_loss_like () =
  Alcotest.(check bool) "loss" true (Architecture.is_loss_like Architecture.Loss_of_function);
  Alcotest.(check bool) "erroneous" false (Architecture.is_loss_like Architecture.Erroneous);
  Alcotest.(check bool) "other" false (Architecture.is_loss_like (Architecture.Other "x"))

let test_io_direction () =
  let io dir name = Architecture.io_node ~meta:(Base.meta name) dir in
  let c =
    Architecture.component
      ~io_nodes:
        [ io Architecture.Input "i1"; io Architecture.Output "o1";
          io Architecture.Bidirectional "b1" ]
      ~meta:(Base.meta "c") ()
  in
  Alcotest.(check int) "inputs (bidir included)" 2 (List.length (Architecture.inputs c));
  Alcotest.(check int) "outputs (bidir included)" 2 (List.length (Architecture.outputs c))

(* ---------- Model + index ---------- *)

let full_model =
  Model.create
    ~requirement_packages:[ req_package ]
    ~hazard_packages:[ hazard_package ]
    ~component_packages:
      [
        Architecture.package ~meta:(Base.meta ~name:"arch" "pkg-arch")
          [ Architecture.Component nested ];
      ]
    ~mbsa_packages:
      [
        Mbsa.package
          ~component_packages:[ "pkg-arch" ]
          ~artifacts:
            [
              Mbsa.artifact_reference ~iteration:1 ~meta:(Base.meta "art1")
                ~kind:Mbsa.FMEA ~location:"fmea.csv" ();
              Mbsa.artifact_reference ~iteration:2 ~meta:(Base.meta "art2")
                ~kind:Mbsa.FMEA ~location:"fmea2.csv" ();
            ]
          ~meta:(Base.meta ~name:"mbsa" "pkg-mbsa") ();
      ]
    ~meta:(Base.meta ~name:"m" "model-1") ()

let test_model_index () =
  let idx = Model.index full_model in
  Alcotest.(check bool) "component" true
    (match Model.lookup idx "inner-leaf" with
    | Some (Model.E_component _) -> true
    | _ -> false);
  Alcotest.(check bool) "failure mode" true
    (match Model.lookup idx "ilf" with
    | Some (Model.E_failure_mode _) -> true
    | _ -> false);
  Alcotest.(check bool) "requirement" true
    (match Model.lookup idx "sr1" with
    | Some (Model.E_requirement _) -> true
    | _ -> false);
  Alcotest.(check bool) "hazard cause" true
    (match Model.lookup idx "c1" with
    | Some (Model.E_cause _) -> true
    | _ -> false);
  Alcotest.(check bool) "missing" true (Model.lookup idx "nope" = None)

let test_model_count () =
  (* model(1) + req pkg(1+3) + hazard pkg(1+3+1 cause) + arch pkg(1+7) +
     mbsa pkg(1+2 artifacts) = 21 *)
  Alcotest.(check int) "count_elements" 21 (Model.count_elements full_model)

let test_model_components () =
  Alcotest.(check int) "all components" 4 (List.length (Model.components full_model));
  Alcotest.(check bool) "find_component" true
    (Option.is_some (Model.find_component full_model "inner"))

let test_mbsa_latest () =
  let mbsa = List.hd full_model.Model.mbsa_packages in
  match Mbsa.latest_artifact mbsa Mbsa.FMEA with
  | Some a -> Alcotest.(check int) "latest iteration" 2 a.Mbsa.iteration
  | None -> Alcotest.fail "expected artifact"

(* ---------- Validate ---------- *)

let test_validate_clean () =
  Alcotest.(check bool) "clean model is valid" true (Validate.is_valid full_model);
  Alcotest.(check int) "no errors" 0
    (List.length (Validate.errors (Validate.check full_model)))

let model_of_component c =
  Model.create
    ~component_packages:
      [ Architecture.package ~meta:(Base.meta "pkg") [ Architecture.Component c ] ]
    ~meta:(Base.meta "m") ()

let test_validate_duplicate_ids () =
  let c =
    Architecture.component
      ~children:[ leaf ~id:"dup" (); leaf ~id:"dup" () ]
      ~meta:(Base.meta "root") ()
  in
  let issues = Validate.check (model_of_component c) in
  Alcotest.(check bool) "duplicate flagged" true
    (List.exists (fun i -> i.Validate.message = "duplicate element id") issues)

let test_validate_negative_fit () =
  let c = leaf ~id:"bad" ~fit:(-1.0) () in
  let issues = Validate.check (model_of_component c) in
  Alcotest.(check bool) "negative FIT flagged" true
    (List.exists
       (fun i -> i.Validate.severity = Validate.Error && i.Validate.message = "negative FIT")
       issues)

let test_validate_distribution_sum () =
  let c = leaf ~id:"c" ~fms:[ fm ~id:"f1" ~dist:30.0 (); fm ~id:"f2" ~dist:30.0 () ] () in
  let issues = Validate.check (model_of_component c) in
  Alcotest.(check bool) "sum warning" true
    (List.exists (fun i -> i.Validate.severity = Validate.Warning) issues)

let test_validate_bad_distribution () =
  let c = leaf ~id:"c" ~fms:[ fm ~id:"f1" ~dist:150.0 () ] () in
  let issues = Validate.check (model_of_component c) in
  Alcotest.(check bool) "range error" true
    (List.exists (fun i -> i.Validate.severity = Validate.Error) issues)

let test_validate_dangling_cite () =
  let c =
    Architecture.component
      ~meta:(Base.meta ~cites:[ "ghost" ] "c")
      ()
  in
  let issues = Validate.check (model_of_component c) in
  Alcotest.(check bool) "dangling cite" true
    (List.exists
       (fun i -> i.Validate.message = "dangling cite reference to 'ghost'")
       issues)

let test_validate_dangling_relationship () =
  let c =
    Architecture.component
      ~children:[ leaf ~id:"a" () ]
      ~connections:
        [
          Architecture.relationship ~meta:(Base.meta "r") ~from_component:"a"
            ~to_component:"ghost" ();
        ]
      ~meta:(Base.meta "root") ()
  in
  let issues = Validate.check (model_of_component c) in
  Alcotest.(check bool) "dangling endpoint" true
    (List.exists
       (fun i ->
         i.Validate.severity = Validate.Error
         && i.Validate.message = "dangling relationship endpoint 'ghost'")
       issues)

let test_validate_sm_covers () =
  let c =
    Architecture.component
      ~failure_modes:[ fm ~id:"f1" () ]
      ~safety_mechanisms:
        [
          Architecture.safety_mechanism ~covers:[ "not-an-fm" ]
            ~meta:(Base.meta "sm1") ~coverage_pct:99.0 ~cost:1.0 ();
        ]
      ~meta:(Base.meta "c") ()
  in
  let issues = Validate.check (model_of_component c) in
  Alcotest.(check bool) "sm covers error" true
    (List.exists (fun i -> i.Validate.severity = Validate.Error) issues)

let test_validate_io_limits () =
  let io =
    Architecture.io_node ~lower_limit:5.0 ~upper_limit:1.0
      ~meta:(Base.meta "io1") Architecture.Input
  in
  let c = Architecture.component ~io_nodes:[ io ] ~meta:(Base.meta "c") () in
  let issues = Validate.check (model_of_component c) in
  Alcotest.(check bool) "inverted limits" true
    (List.exists (fun i -> i.Validate.severity = Validate.Error) issues)

let test_validate_bad_coverage () =
  let c =
    Architecture.component
      ~failure_modes:[ fm ~id:"f1" () ]
      ~safety_mechanisms:
        [
          Architecture.safety_mechanism ~covers:[ "f1" ] ~meta:(Base.meta "sm1")
            ~coverage_pct:120.0 ~cost:1.0 ();
        ]
      ~meta:(Base.meta "c") ()
  in
  let issues = Validate.check (model_of_component c) in
  Alcotest.(check bool) "coverage range" true
    (List.exists (fun i -> i.Validate.severity = Validate.Error) issues)

let suite =
  [
    Alcotest.test_case "lang strings" `Quick test_lang_string;
    Alcotest.test_case "meta" `Quick test_meta;
    Alcotest.test_case "fresh ids" `Quick test_fresh_ids;
    Alcotest.test_case "external reference" `Quick test_external_reference;
    Alcotest.test_case "integrity levels" `Quick test_integrity_levels;
    Alcotest.test_case "requirement package" `Quick test_requirement_package;
    Alcotest.test_case "hazard package" `Quick test_hazard_package;
    Alcotest.test_case "tolerance strings" `Quick test_tolerance_strings;
    Alcotest.test_case "traversals" `Quick test_traversals;
    Alcotest.test_case "count elements" `Quick test_count_elements;
    Alcotest.test_case "total fit" `Quick test_total_fit;
    Alcotest.test_case "is_loss_like" `Quick test_is_loss_like;
    Alcotest.test_case "io direction" `Quick test_io_direction;
    Alcotest.test_case "model index" `Quick test_model_index;
    Alcotest.test_case "model count" `Quick test_model_count;
    Alcotest.test_case "model components" `Quick test_model_components;
    Alcotest.test_case "mbsa latest artifact" `Quick test_mbsa_latest;
    Alcotest.test_case "validate clean" `Quick test_validate_clean;
    Alcotest.test_case "validate duplicate ids" `Quick test_validate_duplicate_ids;
    Alcotest.test_case "validate negative fit" `Quick test_validate_negative_fit;
    Alcotest.test_case "validate distribution sum" `Quick test_validate_distribution_sum;
    Alcotest.test_case "validate bad distribution" `Quick test_validate_bad_distribution;
    Alcotest.test_case "validate dangling cite" `Quick test_validate_dangling_cite;
    Alcotest.test_case "validate dangling relationship" `Quick
      test_validate_dangling_relationship;
    Alcotest.test_case "validate sm covers" `Quick test_validate_sm_covers;
    Alcotest.test_case "validate io limits" `Quick test_validate_io_limits;
    Alcotest.test_case "validate bad coverage" `Quick test_validate_bad_coverage;
  ]
