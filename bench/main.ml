(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation, printing paper-reported values next to measured
   ones, then runs one Bechamel micro-benchmark per analysis kernel.

   Environment:
     SAME_BENCH_FULL=1   run Table VI at the paper's full set sizes
                         (Set4 = 5.7M elements; several minutes).  The
                         default scales Set4/Set5 (and the memory budget)
                         by 1/100, which preserves the overflow behaviour
                         and the growth shape. *)

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Machine-readable results, accumulated by each section and written to
   BENCH_results.json at the end (format documented in EXPERIMENTS.md). *)

let json_kernels : (string * float) list ref = ref []
let json_tables : (string * float) list ref = ref []
let json_parallel : Modelio.Json.t list ref = ref []
let json_incremental : Modelio.Json.t list ref = ref []
let json_scaling : Modelio.Json.t list ref = ref []
let json_path_fmea : Modelio.Json.t list ref = ref []
let json_batch : Modelio.Json.t list ref = ref []
let json_diagnosis : Modelio.Json.t list ref = ref []
let json_fta : Modelio.Json.t list ref = ref []

let json_assess : Modelio.Json.t list ref = ref []
let json_serve : Modelio.Json.t list ref = ref []

let record_timing name seconds = json_tables := (name, seconds) :: !json_tables

let json_of_decision (r : Exec.Cost.record) =
  let open Modelio.Json in
  let opt_ns = function Some ns -> Number ns | None -> Null in
  Object
    [
      ("key", String r.Exec.Cost.d_key);
      ("tasks", Number (float_of_int r.Exec.Cost.d_tasks));
      ("jobs", Number (float_of_int r.Exec.Cost.d_jobs));
      ( "decision",
        match r.Exec.Cost.d_decision with
        | Exec.Cost.Sequential -> String "sequential"
        | Exec.Cost.Parallel _ -> String "parallel" );
      ( "chunk_size",
        match r.Exec.Cost.d_decision with
        | Exec.Cost.Sequential -> Null
        | Exec.Cost.Parallel { chunk_size } ->
            Number (float_of_int chunk_size) );
      ("estimate_ns_per_task", opt_ns r.Exec.Cost.d_estimate_ns);
      ("measured_ns_per_task", opt_ns r.Exec.Cost.d_measured_ns);
    ]

let write_results () =
  let open Modelio.Json in
  let numbers l = Object (List.rev_map (fun (n, v) -> (n, Number v)) l) in
  let j =
    Object
      [
        ("schema", String "same-bench/1");
        ("jobs", Number (float_of_int (Exec.default_jobs ())));
        ( "cores",
          Number (float_of_int (Domain.recommended_domain_count ())) );
        ( "dispatch_overhead_ns",
          Number (Exec.Cost.dispatch_overhead_ns ()) );
        ("table_timings_s", numbers !json_tables);
        ("parallel", List (List.rev !json_parallel));
        ("batch_fmea", List (List.rev !json_batch));
        ("incremental", List (List.rev !json_incremental));
        ("scaling", List (List.rev !json_scaling));
        ("path_fmea", List (List.rev !json_path_fmea));
        ("diagnosis", List (List.rev !json_diagnosis));
        ("fta", List (List.rev !json_fta));
        ("assess", List (List.rev !json_assess));
        ("serve", List (List.rev !json_serve));
        ("scheduler", List (List.map json_of_decision (Exec.Cost.decisions ())));
        ("kernels_ns_per_run", numbers !json_kernels);
      ]
  in
  write_file ~indent:2 "BENCH_results.json" j;
  Printf.printf "\nresults written to BENCH_results.json\n"

(* ---------- Table I: FMEDA on a PLL ---------- *)

let table1 () =
  section "Table I — FMEDA on Phase Locked Loop (PLL)";
  let t = Decisive.Case_study.pll_fmeda ~fit:50.0 in
  Format.printf "%a@." Fmea.Table.pp t;
  Printf.printf
    "paper rows: lower frequency DVF 40.1%% (watchdog 70%%), higher \
     frequency IVF 28.7%% (none), jitter DVF 31.2%% (lockstep 99%%)\n";
  List.iter
    (fun (r : Decisive.Case_study.pll_row) ->
      Printf.printf "measured: %-16s %-4s %5.1f%%  %-18s %5.1f%%\n"
        r.Decisive.Case_study.pll_fm r.Decisive.Case_study.pll_impact
        r.Decisive.Case_study.pll_distribution
        (Option.value ~default:"N/A" r.Decisive.Case_study.pll_sm)
        r.Decisive.Case_study.pll_coverage)
    Decisive.Case_study.pll_rows

(* ---------- Table II: component reliability model ---------- *)

let table2 () =
  section "Table II — component reliability model (federated from a spreadsheet)";
  let path = Filename.temp_file "table2" ".csv" in
  let wb = Reliability.Reliability_model.to_spreadsheet Reliability.Reliability_model.table_ii in
  let sheet = Modelio.Spreadsheet.first_sheet wb in
  Modelio.Csv.write_file path
    (sheet.Modelio.Spreadsheet.table.Modelio.Csv.header
    :: sheet.Modelio.Spreadsheet.table.Modelio.Csv.rows);
  (* Load it back through the driver + query route (the federation path). *)
  let model = Modelio.Driver.resolve ~model_type:"csv" ~location:path ~metadata:[] in
  let env = Query.Interp.env_of_models [ ("Reliability", model) ] in
  let total =
    Query.Interp.run_string env
      "Reliability.rows.select(r | r.fit <> '').collect(r | r.fit.toNumber()).sum()"
  in
  let reparsed =
    Reliability.Reliability_model.of_spreadsheet (Modelio.Spreadsheet.load path)
  in
  Sys.remove path;
  List.iter
    (fun (e : Reliability.Reliability_model.entry) ->
      Printf.printf "%-16s %5g FIT   %s\n" e.Reliability.Reliability_model.component_type
        e.Reliability.Reliability_model.fit
        (String.concat ", "
           (List.map
              (fun (fm : Reliability.Reliability_model.failure_mode) ->
                Printf.sprintf "%s %g%%" fm.Reliability.Reliability_model.fm_name
                  fm.Reliability.Reliability_model.distribution_pct)
              e.Reliability.Reliability_model.failure_modes)))
    (Reliability.Reliability_model.entries reparsed);
  Format.printf "federated query (total FIT across the catalogue): %a (paper sums to 327)@."
    Modelio.Mvalue.pp total

(* ---------- Table III: safety mechanism model ---------- *)

let table3 () =
  section "Table III — safety mechanism model";
  List.iter
    (fun (m : Reliability.Sm_model.mechanism) ->
      Printf.printf "%-6s %-12s %-20s %5.1f%%  %.1f h\n"
        m.Reliability.Sm_model.component_type m.Reliability.Sm_model.failure_mode
        m.Reliability.Sm_model.sm_name m.Reliability.Sm_model.coverage_pct
        m.Reliability.Sm_model.cost)
    (Reliability.Sm_model.mechanisms Reliability.Sm_model.table_iii);
  Printf.printf "paper: MCU / RAM Failure / ECC / 99%% / 2.0 h\n"

(* ---------- Table IV + SPFM: the case study ---------- *)

let table4 () =
  section "Table IV — generated FMEDA for the sensor power supply";
  let before, t_before = timed Decisive.Case_study.fmea_via_injection in
  let spfm_before = Fmea.Metrics.spfm before in
  let after = Decisive.Case_study.fmeda before in
  let spfm_after = Fmea.Metrics.spfm after in
  Format.printf "%a@." Fmea.Table.pp after;
  Printf.printf "SPFM before refinement: paper 5.38%%, measured %.2f%%\n" spfm_before;
  Printf.printf "SPFM with ECC on MC1:   paper 96.77%%, measured %.2f%%\n" spfm_after;
  Format.printf "verdict: %a@."
    (fun ppf () ->
      Fmea.Asil.pp_verdict ppf ~target:Ssam.Requirement.ASIL_B ~spfm:spfm_after)
    ();
  record_timing "table4/injection-fmea" t_before;
  (* Both analysis routes (Sec. V-A circuit, Sec. V-B SSAM) agree. *)
  let ssam_route, t_ssam = timed Decisive.Case_study.fmea_via_ssam in
  record_timing "table4/ssam-route" t_ssam;
  Printf.printf
    "routes agree on safety-related components: %b (injection %.1f ms, \
     SSAM paths %.1f ms)\n"
    (List.sort String.compare (Fmea.Table.safety_related_components before)
    = List.sort String.compare (Fmea.Table.safety_related_components ssam_route))
    (1000.0 *. t_before) (1000.0 *. t_ssam);
  (* And the FTA cross-check (HiP-HOPS-style baseline). *)
  let fta_table, t_fta =
    timed (fun () -> Fta.Fmea_from_fta.analyse Decisive.Case_study.power_supply_root)
  in
  record_timing "table4/fta-route" t_fta;
  Printf.printf "FTA-route cross-check agrees: %b (%.1f ms)\n"
    (List.sort String.compare (Fmea.Table.safety_related_components fta_table)
    = List.sort String.compare (Fmea.Table.safety_related_components before))
    (1000.0 *. t_fta)

(* ---------- Table V: efficiency (RQ3) ---------- *)

let table5 () =
  section "Table V — efficiency experiment (simulated analyst study)";
  let pa = Decisive.Systems.analyst_profile Decisive.Systems.system_a in
  let pb = Decisive.Systems.analyst_profile Decisive.Systems.system_b in
  let rows = Analyst.Experiment.efficiency_study ~seed:2022 ~systems:(pa, pb) in
  Format.printf "%a@." Analyst.Experiment.pp_efficiency rows;
  Printf.printf
    "paper setting 1: A man 505/5, B auto 62/2 (System A); A man 1143/6, \
     B auto 105/3 (System B)\n";
  Printf.printf
    "paper setting 2: A auto 57/6, B man 497/3 (System A); A auto 110/4, \
     B man 1166/2 (System B)\n";
  Printf.printf "speedup: paper ~10x, measured %.1fx\n"
    (Analyst.Experiment.speedup rows)

(* ---------- RQ1: correctness ---------- *)

let rq1 () =
  section "RQ1 — correctness (manual vs automated FMEA)";
  let ta = Decisive.Systems.automated_fmea Decisive.Systems.system_a in
  let tb = Decisive.Systems.automated_fmea Decisive.Systems.system_b in
  let ca = Analyst.Experiment.correctness_study ~seed:20 ~name:"System A" ~element_count:102 ta in
  let cb = Analyst.Experiment.correctness_study ~seed:21 ~name:"System B" ~element_count:230 tb in
  Printf.printf "System A: paper 1.5%% difference, measured %.2f%% (components agree: %b)\n"
    ca.Analyst.Experiment.difference_pct ca.Analyst.Experiment.components_agree;
  Printf.printf "System B: paper 2.67%% difference, measured %.2f%% (components agree: %b)\n"
    cb.Analyst.Experiment.difference_pct cb.Analyst.Experiment.components_agree

(* ---------- RQ2: coverage ---------- *)

let rq2 () =
  section "RQ2 — block-library coverage";
  let report name (d : Blockdiag.Diagram.t) =
    let types =
      List.map
        (fun (b : Blockdiag.Diagram.block) -> b.Blockdiag.Diagram.block_type)
        (Blockdiag.Diagram.all_blocks d)
    in
    let r = Circuit.Library.coverage types in
    Printf.printf "%-24s coverage %.1f%% (native %d, work-around %d, unsupported %d)\n"
      name r.Circuit.Library.coverage_pct
      (List.length r.Circuit.Library.native)
      (List.length r.Circuit.Library.via_workaround)
      (List.length r.Circuit.Library.unsupported)
  in
  report "power supply (Fig. 11)" Decisive.Case_study.power_supply_diagram;
  report "System A" Decisive.Systems.system_a.Decisive.Systems.diagram;
  report "System B" Decisive.Systems.system_b.Decisive.Systems.diagram;
  Printf.printf
    "paper: 100%% of the evaluation subjects covered (work-arounds for \
     complex MCUs)\n"

(* ---------- Table VI: scalability (RQ4) ---------- *)

let table6 () =
  section "Table VI — scalability of the model store";
  let full = Sys.getenv_opt "SAME_BENCH_FULL" = Some "1" in
  let scale = if full then 1 else 100 in
  if not full then
    Printf.printf
      "(Set4/Set5 and the memory budget scaled by 1/%d; set SAME_BENCH_FULL=1 \
       for full sizes)\n"
      scale;
  let budget_bytes =
    (* The paper-era JVM heap, scaled with the sets. *)
    4 * 1024 * 1024 * 1024 / scale
  in
  Printf.printf "%-6s %15s %15s %15s %15s %s\n" "Set" "elements"
    "full store (s)" "lazy store (s)" "auto (s)" "paper (s)";
  let paper_times = [ 0.1; 0.2; 0.8; 4.1; 48.3; nan ] in
  List.iteri
    (fun i spec ->
      let spec =
        if i >= 4 then Store.Synthetic.scaled spec ~factor:scale else spec
      in
      let budget = Store.Budget.create ~max_bytes:budget_bytes in
      let full_result, t_full =
        timed (fun () ->
            match Store.Full_store.load ~budget spec with
            | Ok loaded ->
                let verdicts = Store.Full_store.evaluate loaded in
                Store.Full_store.release ~budget loaded;
                `Ok verdicts
            | Error (`Memory_overflow _) -> `Overflow)
      in
      let lazy_result, t_lazy =
        timed (fun () ->
            match Store.Lazy_store.evaluate spec with
            | Ok (_, sr) -> `Ok sr
            | Error _ -> `Overflow)
      in
      (* [`Auto] should track the winner: the cost model's estimate for
         the lazy windows decides whether streaming pays on this set. *)
      let auto_budget = Store.Budget.create ~max_bytes:budget_bytes in
      let auto_choice = Store.Backend.choose ~budget:auto_budget spec in
      let auto_result, t_auto =
        timed (fun () ->
            match
              Store.Backend.evaluate ~backend:`Auto ~budget:auto_budget spec
            with
            | Ok (_, sr) -> `Ok sr
            | Error _ -> `Overflow)
      in
      let cell result t =
        match result with
        | `Ok _ -> Printf.sprintf "%15.3f" t
        | `Overflow -> Printf.sprintf "%15s" "N/A (overflow)"
      in
      let record kind result t =
        match result with
        | `Ok _ ->
            record_timing
              (Printf.sprintf "table6/%s/%s" spec.Store.Synthetic.set_name
                 kind)
              t
        | `Overflow -> ()
      in
      record "full" full_result t_full;
      record "lazy" lazy_result t_lazy;
      record "auto" auto_result t_auto;
      (match (full_result, lazy_result, auto_result) with
      | `Ok f, `Ok l, `Ok a when f <> a || l <> a ->
          Printf.printf
            "WARNING: backend verdicts disagree on %s (full %d, lazy %d, \
             auto %d)\n"
            spec.Store.Synthetic.set_name f l a
      | _ -> ());
      let paper = List.nth paper_times i in
      Printf.printf "%-6s %15d %s %s %s [%s] %s\n"
        spec.Store.Synthetic.set_name spec.Store.Synthetic.target_elements
        (cell full_result t_full) (cell lazy_result t_lazy)
        (cell auto_result t_auto)
        (match auto_choice with `Full -> "full" | `Lazy -> "lazy")
        (if Float.is_nan paper then "N/A (overflow)" else Printf.sprintf "%.1f" paper))
    Store.Synthetic.table_vi_sets;
  Printf.printf
    "shape check: the full store grows linearly and dies at Set5 (the \
     paper's EMF memory overflow); the streaming store (the paper's \
     future-work fix) completes every set; auto streams only when the \
     cost model says the windows pay for their dispatch.\n"

(* ---------- Step 4b ablation: search strategies ---------- *)

let ablation_search () =
  section "Ablation — Step 4b search strategies (exhaustive vs greedy)";
  let subject = Decisive.Systems.system_a in
  let table = Decisive.Systems.automated_fmea subject in
  let conv = Decisive.Systems.analysable subject in
  let types = conv.Blockdiag.To_netlist.block_types in
  let sms = subject.Decisive.Systems.safety_mechanisms in
  let (chosen, front), t_ex =
    timed (fun () ->
        Optimize.Search.optimise ~component_types:types
          ~target:Ssam.Requirement.ASIL_B table sms)
  in
  let greedy, t_gr =
    timed (fun () ->
        Optimize.Search.greedy ~component_types:types
          ~target:Ssam.Requirement.ASIL_B table sms)
  in
  record_timing "ablation/search-exhaustive" t_ex;
  record_timing "ablation/search-greedy" t_gr;
  (match chosen with
  | Some c ->
      Printf.printf
        "exhaustive: SPFM %.2f%% at cost %.1f h (Pareto front of %d) in %.1f ms\n"
        c.Optimize.Search.spfm_pct c.Optimize.Search.cost (List.length front)
        (1000.0 *. t_ex)
  | None -> Printf.printf "exhaustive: no solution meets ASIL-B\n");
  Printf.printf "greedy:     SPFM %.2f%% at cost %.1f h in %.1f ms\n"
    greedy.Optimize.Search.spfm_pct greedy.Optimize.Search.cost (1000.0 *. t_gr);
  (match chosen with
  | Some c ->
      Printf.printf "greedy cost overhead vs optimal: %+.1f h\n"
        (greedy.Optimize.Search.cost -. c.Optimize.Search.cost)
  | None -> ())

(* ---------- Time-domain ablation: why the capacitors are in Fig. 11 ---------- *)

let ablation_ripple () =
  section "Ablation — time-domain role of the filter capacitors";
  Printf.printf
    "The DC failure-injection FMEA classifies C1/C2 failures as not \
     safety-related (Table IV); the transient engine shows what they do \
     in the time domain (1 kHz, 0.5 V supply ripple injected on DC1):\n";
  let base_elements c2 =
    let open Circuit in
    [
      Element.make ~id:"DC1" ~kind:(Element.Vsource 5.0) "n1" "gnd";
      Element.make ~id:"D1" ~kind:(Element.Diode Element.default_diode) "n1" "n2";
      Element.make ~id:"L1" ~kind:(Element.Inductor 1e-3) "n2" "n3";
      Element.make ~id:"CS1" ~kind:Element.Current_sensor "n3" "n4";
      Element.make ~id:"MC1" ~kind:(Element.Load 100.0) "n4" "gnd";
    ]
    @
    if c2 then [ Element.make ~id:"C2" ~kind:(Element.Capacitor 1e-4) "n3" "gnd" ]
    else []
  in
  let wave t = 5.0 +. (0.5 *. sin (2.0 *. Float.pi *. 1000.0 *. t)) in
  let measure label c2 =
    let nl = Circuit.Netlist.of_elements "psu" (base_elements c2) in
    match
      Circuit.Transient.simulate ~waveforms:[ ("DC1", wave) ] nl ~dt:2e-6
        ~duration:1e-2
    with
    | Ok r ->
        Printf.printf "  %-14s CS1 ripple %8.4f mA\n" label
          (1000.0 *. Circuit.Transient.ripple (Circuit.Transient.sensor_trace r "CS1"))
    | Error e -> Format.printf "  %-14s error: %a@." label Circuit.Dc.pp_error e
  in
  measure "with C2" true;
  measure "C2 open" false;
  Printf.printf
    "conclusion: a C2 open degrades ripple rejection but does not break \
     the DC function — consistent with 'No' in Table IV and with why the \
     capacitor is in the design at all.\n\n";
  Printf.printf "Automated degradation findings (5 kHz supply disturbance):\n";
  let conv = Blockdiag.To_netlist.convert Decisive.Case_study.power_supply_diagram in
  let options = Fmea.Degradation.default_options ~disturbance_source:"DC1" in
  let findings =
    Fmea.Degradation.analyse
      ~element_types:conv.Blockdiag.To_netlist.block_types ~options
      conv.Blockdiag.To_netlist.netlist Decisive.Case_study.reliability_model
  in
  Format.printf "%a@." Fmea.Degradation.pp_findings findings

(* ---------- Ablation: the classification threshold ---------- *)

let ablation_threshold () =
  section "Ablation — sensitivity of the injection FMEA to its threshold";
  Printf.printf
    "The paper marks a failure safety-related when a sensor reading \
     'differs by a threshold'.  Sweeping that threshold shows where \
     verdicts flip (D1's short moves CS1 by ~15%%):\n";
  let conv = Blockdiag.To_netlist.convert Decisive.Case_study.power_supply_diagram in
  Printf.printf "  %-10s %s\n" "threshold" "safety-related failure modes";
  List.iter
    (fun threshold_rel ->
      let options =
        {
          Fmea.Injection_fmea.default_options with
          exclude = [ "DC1" ];
          threshold_rel;
        }
      in
      let table =
        Fmea.Injection_fmea.analyse ~options
          ~element_types:conv.Blockdiag.To_netlist.block_types
          conv.Blockdiag.To_netlist.netlist Decisive.Case_study.reliability_model
      in
      let sr_rows =
        List.filter_map
          (fun (r : Fmea.Table.row) ->
            if r.Fmea.Table.safety_related then
              Some (r.Fmea.Table.component ^ "/" ^ r.Fmea.Table.failure_mode)
            else None)
          table.Fmea.Table.rows
      in
      Printf.printf "  %8.0f%%   %s\n" (100.0 *. threshold_rel)
        (String.concat ", " sr_rows))
    [ 0.05; 0.10; 0.14; 0.20; 0.30; 0.50 ];
  Printf.printf
    "the paper's Table IV corresponds to thresholds in (15%%, 100%%): \
     below ~15%% D1's short becomes safety-related too.\n"

(* ---------- Extended architecture metrics (ISO 26262 Part 5) ---------- *)

let extended_metrics () =
  section "Extended metrics — LFM and PMHF for the case study";
  let fmeda = Decisive.Case_study.fmeda (Decisive.Case_study.fmea_via_injection ()) in
  let spfm = Fmea.Metrics.spfm fmeda in
  let lb = Fmea.Metrics.latent fmeda in
  let pmhf = Fmea.Metrics.pmhf_per_hour fmeda in
  Printf.printf "SPFM %.2f%%   LFM %.2f%% (latent %.1f FIT of %.1f multi-point)   PMHF %.3e /h\n"
    spfm lb.Fmea.Metrics.lfm_pct lb.Fmea.Metrics.latent_fit
    lb.Fmea.Metrics.multipoint_fit pmhf;
  Printf.printf "ASIL-B targets (SPFM >= 90%%, LFM >= 60%%, PMHF <= 1e-7): %s\n"
    (if
       Fmea.Asil.meets_all ~target:Ssam.Requirement.ASIL_B ~spfm
         ~lfm:lb.Fmea.Metrics.lfm_pct ~pmhf
     then "all met"
     else "NOT met")

(* ---------- Parallel execution (SAME_JOBS) ---------- *)

(* [copies] independent instances of the Fig. 11 power supply in one
   netlist (only ground is shared): the MNA system and the injection
   count both scale, which is what makes per-injection parallelism pay. *)
let replicated_psu copies =
  let base = Circuit.Netlist.elements Decisive.Case_study.power_supply_netlist in
  let rename i (e : Circuit.Element.t) =
    let node n =
      if n = Circuit.Netlist.ground then n else Printf.sprintf "%s_%d" n i
    in
    Circuit.Element.make
      ~id:(Printf.sprintf "%s_%d" e.Circuit.Element.id i)
      ~kind:e.Circuit.Element.kind
      (node e.Circuit.Element.node_a)
      (node e.Circuit.Element.node_b)
  in
  Circuit.Netlist.of_elements "psu-array"
    (List.concat (List.init copies (fun i -> List.map (rename i) base)))

let parallel_speedups ~smoke () =
  section "Parallel execution — forced sequential vs the adaptive scheduler";
  Printf.printf
    "each workload runs under SAME_SCHED=seq and under the auto scheduler \
     (SAME_JOBS=4); 'identical' checks the results are equal.  When auto \
     chooses sequential it runs the very same code path as the baseline, \
     so its effective speedup is 1.0 by construction — the raw ratio is \
     reported for honesty but is pure timer noise.\n";
  let cores = Domain.recommended_domain_count () in
  Printf.printf "host cores: %d\n" cores;
  ignore (Exec.Cost.calibrate ());
  Printf.printf "measured dispatch overhead: %.1f us/batch\n"
    (Exec.Cost.dispatch_overhead_ns () /. 1e3);
  let saved = Exec.default_jobs () in
  let reps = if smoke then 2 else 3 in
  (* Best-of-N minima: the >= 1.0 acceptance is about the scheduler, not
     about scheduler-independent timer jitter. *)
  let best_of f =
    let r = ref (None : _ option) in
    let t =
      List.fold_left Float.min infinity
        (List.init reps (fun _ ->
             let v, t = timed f in
             r := Some v;
             t))
    in
    (Option.get !r, t)
  in
  let compare_sched name f equal =
    Exec.set_default_jobs 4;
    (* warm-up under auto: fills caches and seeds the cost estimates *)
    Exec.Cost.set_sched Exec.Cost.Auto;
    ignore (f ());
    Exec.Cost.set_sched Exec.Cost.Seq;
    let r_seq, t_seq = best_of f in
    Exec.Cost.set_sched Exec.Cost.Auto;
    let n0 = List.length (Exec.Cost.decisions ()) in
    let r_auto, t_auto = best_of f in
    Exec.set_default_jobs saved;
    let new_decisions =
      List.filteri (fun i _ -> i >= n0) (Exec.Cost.decisions ())
    in
    (* The workload's verdict: the largest batch the auto runs scheduled. *)
    let verdict =
      List.fold_left
        (fun acc (r : Exec.Cost.record) ->
          match acc with
          | Some (a : Exec.Cost.record) when a.Exec.Cost.d_tasks >= r.Exec.Cost.d_tasks ->
              acc
          | _ -> Some r)
        None new_decisions
    in
    let chose_parallel =
      match verdict with
      | Some { Exec.Cost.d_decision = Exec.Cost.Parallel _; _ } -> true
      | _ -> false
    in
    let identical = equal r_seq r_auto in
    let raw_speedup = t_seq /. t_auto in
    (* Auto-sequential is the sequential code path: effectively 1.0x. *)
    let effective_speedup = if chose_parallel then raw_speedup else 1.0 in
    let decision_str =
      match verdict with
      | Some { Exec.Cost.d_decision = Exec.Cost.Parallel { chunk_size }; _ } ->
          Printf.sprintf "parallel(chunk=%d)" chunk_size
      | Some { Exec.Cost.d_decision = Exec.Cost.Sequential; _ } -> "sequential"
      | None -> "no batch"
    in
    Printf.printf
      "%-26s seq %7.3f s   auto %7.3f s   %-20s effective %5.2fx (raw \
       %5.2fx)   identical %b\n"
      name t_seq t_auto decision_str effective_speedup raw_speedup identical;
    json_parallel :=
      Modelio.Json.Object
        [
          ("name", Modelio.Json.String name);
          ("seq_s", Modelio.Json.Number t_seq);
          ("par_s", Modelio.Json.Number t_auto);
          ("decision", Modelio.Json.String decision_str);
          ("speedup", Modelio.Json.Number raw_speedup);
          ("effective_speedup", Modelio.Json.Number effective_speedup);
          ("identical", Modelio.Json.Bool identical);
        ]
      :: !json_parallel
  in
  (* 1. Fault-injection FMEA at scale: one injection per (component,
     failure mode), each a full Newton DC solve. *)
  let copies =
    if Sys.getenv_opt "SAME_BENCH_FULL" = Some "1" then 24
    else if smoke then 4
    else 12
  in
  let psu_array = replicated_psu copies in
  let options =
    {
      Fmea.Injection_fmea.default_options with
      exclude = List.init copies (Printf.sprintf "DC1_%d");
    }
  in
  compare_sched
    (Printf.sprintf "injection-fmea (%d PSUs)" copies)
    (fun () ->
      Fmea.Injection_fmea.analyse ~options psu_array
        Decisive.Case_study.reliability_model)
    Fmea.Table.equal;
  if not smoke then begin
    (* 2. Exhaustive safety-mechanism search on System A. *)
    let subject = Decisive.Systems.system_a in
    let table = Decisive.Systems.automated_fmea subject in
    let types =
      (Decisive.Systems.analysable subject).Blockdiag.To_netlist.block_types
    in
    let sms = subject.Decisive.Systems.safety_mechanisms in
    compare_sched "exhaustive sm-search"
      (fun () -> Optimize.Search.exhaustive ~component_types:types table sms)
      (List.equal Optimize.Search.equal_candidate);
    (* 3. Table VI store evaluation (per-unit path FMEAs). *)
    let spec = { Store.Synthetic.set_name = "par"; target_elements = 40_000 } in
    compare_sched "store evaluate (40k)"
      (fun () -> Store.Lazy_store.evaluate spec)
      ( = )
  end

(* ---------- Batch-fleet FMEA: one warm engine vs N cold runs ---------- *)

(* The design-exploration workload: N PSU variants (cycling 3 electrical
   designs) analysed by N independent engines vs one warm engine.  The
   fleet shares golden factorisations by structural netlist fingerprint
   and runs all injections as one flat scheduled batch, so it must do
   strictly fewer golden solves and produce bit-identical tables. *)
let batch_fmea ~smoke () =
  section "Batch-fleet FMEA — one warm engine vs N cold runs";
  let count = if smoke then 6 else 12 in
  let variants = Decisive.Case_study.design_variants ~count () in
  let reliability = Decisive.Case_study.reliability_model in
  let options = Decisive.Case_study.injection_options in
  (* warm-up: first-touch of the fleet code paths stays out of the timings *)
  ignore
    (Engine.Batch.run_fmea (Engine.Pipeline.create ()) ~options variants
       reliability);
  (* Best-of-N with a fresh scenario per repetition: every rep pays the
     full engine setup it claims to (a re-used fleet engine would serve
     the whole batch from its result cache and time a no-op), and the
     minimum strips scheduler/GC noise — the CI gate asserts on these
     numbers. *)
  let reps = 5 in
  let best f =
    let rec go best_t best_v n =
      if n = 0 then (Option.get best_v, best_t)
      else
        let v, t = timed f in
        if t < best_t then go t (Some v) (n - 1) else go best_t best_v (n - 1)
    in
    go infinity None reps
  in
  let cold, t_cold =
    best (fun () ->
        List.map
          (fun (label, diagram) ->
            let e = Engine.Pipeline.create () in
            let table =
              Engine.Pipeline.injection_fmea e ~options diagram reliability
            in
            (label, table, (Engine.Pipeline.snapshot e).Engine.Stats.golden_solves))
          variants)
  in
  let cold_golden = List.fold_left (fun acc (_, _, g) -> acc + g) 0 cold in
  let (summary, fleet_golden), t_fleet =
    best (fun () ->
        let engine = Engine.Pipeline.create () in
        let summary =
          Engine.Batch.run_fmea engine ~options variants reliability
        in
        (summary, (Engine.Pipeline.snapshot engine).Engine.Stats.golden_solves))
  in
  let identical =
    List.for_all2
      (fun (_, table, _) (e : Engine.Batch.fmea_entry) ->
        Fmea.Table.equal table e.Engine.Batch.b_table)
      cold summary.Engine.Batch.f_entries
  in
  Printf.printf "fleet: %d variants, %d distinct designs, %d rows total\n"
    count summary.Engine.Batch.f_distinct_designs summary.Engine.Batch.f_rows;
  Printf.printf "cold (%d engines): %7.3f s   %2d golden solves\n" count t_cold
    cold_golden;
  Printf.printf "warm fleet:        %7.3f s   %2d golden solves\n" t_fleet
    fleet_golden;
  Printf.printf "speedup %.2fx, golden solves %d -> %d, identical %b\n"
    (t_cold /. t_fleet) cold_golden fleet_golden identical;
  record_timing "batch/cold" t_cold;
  record_timing "batch/fleet" t_fleet;
  json_batch :=
    Modelio.Json.Object
      [
        ("name", Modelio.Json.String "psu-design-fleet");
        ("variants", Modelio.Json.Number (float_of_int count));
        ( "distinct_designs",
          Modelio.Json.Number
            (float_of_int summary.Engine.Batch.f_distinct_designs) );
        ("cold_s", Modelio.Json.Number t_cold);
        ("fleet_s", Modelio.Json.Number t_fleet);
        ("speedup", Modelio.Json.Number (t_cold /. t_fleet));
        ("cold_golden", Modelio.Json.Number (float_of_int cold_golden));
        ("fleet_golden", Modelio.Json.Number (float_of_int fleet_golden));
        ("identical", Modelio.Json.Bool identical);
      ]
    :: !json_batch

(* ---------- Scaling: golden-factor re-solve vs dense refactorise ---------- *)

(* The fast-kernel acceptance experiment: on a synthetic ladder of
   [--scale N] sections (default 512, ~578 MNA unknowns), every faulted
   solve goes through {!Circuit.Dc.inject} — a low-rank SMW re-solve
   against the golden sparse factors — and is compared, per injection,
   with the from-scratch dense refactorise baseline.  The baseline is
   sampled (a spread of ~24 injections) because a full dense FMEA at
   this size is O(n^3) per row; the fast path also runs the complete
   FMEA end-to-end. *)
let scaling ~smoke () =
  section "Scaling — sparse golden factors + low-rank re-solve (--scale)";
  let sections =
    let rec find i =
      if i + 1 >= Array.length Sys.argv then None
      else if Sys.argv.(i) = "--scale" then int_of_string_opt Sys.argv.(i + 1)
      else find (i + 1)
    in
    Option.value (find 1) ~default:512
  in
  let nl = Circuit.Generator.ladder ~sections in
  let p = Circuit.Dc.prepare nl in
  let n = Circuit.Dc.size p in
  Printf.printf "ladder: %d sections, %d unknowns, backend %s\n" sections n
    (match Circuit.Dc.backend_used p with `Sparse -> "sparse" | `Dense -> "dense");
  let g, t_factor =
    timed (fun () ->
        match Circuit.Dc.factorise p with
        | Ok g -> g
        | Error e ->
            Format.kasprintf failwith "scaling: golden solve failed: %a"
              Circuit.Dc.pp_error e)
  in
  Printf.printf "golden factorisation: %.1f ms\n" (1000.0 *. t_factor);
  (* A spread of injectable (element, fault) cases across the ladder. *)
  let all_cases =
    List.concat_map
      (fun (e : Circuit.Element.t) ->
        let id = e.Circuit.Element.id in
        match e.Circuit.Element.kind with
        | Circuit.Element.Resistor _ ->
            [
              (id, Circuit.Fault.Open_circuit);
              (id, Circuit.Fault.Short_circuit);
              (id, Circuit.Fault.Parameter_shift 2.0);
            ]
        | Circuit.Element.Load _ ->
            [ (id, Circuit.Fault.Open_circuit); (id, Circuit.Fault.Short_circuit) ]
        | Circuit.Element.Current_sensor -> [ (id, Circuit.Fault.Open_circuit) ]
        | Circuit.Element.Vsource _ -> [ (id, Circuit.Fault.Stuck_value 0.0) ]
        | _ -> [])
      (Circuit.Netlist.elements nl)
  in
  let sample_target = 24 in
  let stride = max 1 (List.length all_cases / sample_target) in
  let cases =
    List.filteri (fun i _ -> i mod stride = 0) all_cases
    |> List.filteri (fun i _ -> i < sample_target)
  in
  let max_dev = ref 0.0 in
  let t_fast = ref 0.0 and t_dense = ref 0.0 in
  List.iter
    (fun (id, fault) ->
      let fast, tf =
        timed (fun () -> Circuit.Dc.inject g ~element_id:id fault)
      in
      let dense, td =
        timed (fun () ->
            Circuit.Dc.analyse ~backend:`Dense
              (Circuit.Fault.inject nl ~element_id:id fault))
      in
      t_fast := !t_fast +. tf;
      t_dense := !t_dense +. td;
      match (fast, dense) with
      | Ok sf, Ok sd ->
          List.iter2
            (fun (_, a) (_, b) ->
              max_dev := Float.max !max_dev (Float.abs (a -. b)))
            (Circuit.Dc.all_sensor_readings sf)
            (Circuit.Dc.all_sensor_readings sd)
      | _ ->
          Printf.ksprintf failwith "scaling: %s/%s disagreed on solvability" id
            (Circuit.Fault.to_string fault))
    cases;
  let n_cases = List.length cases in
  let per_fast = !t_fast /. float_of_int n_cases in
  let per_dense = !t_dense /. float_of_int n_cases in
  let speedup = per_dense /. per_fast in
  Printf.printf
    "%d sampled injections: fast %.3f ms/inj, dense refactorise %.1f \
     ms/inj — speedup %.1fx (acceptance >= 5x)\n"
    n_cases (1000.0 *. per_fast) (1000.0 *. per_dense) speedup;
  Printf.printf "max sensor-reading deviation vs dense: %.3g (acceptance <= 1e-9)\n"
    !max_dev;
  (* The complete FMEA through the reuse solver, as the pipeline runs it. *)
  let catalogue = Reliability.Reliability_model.synthetic_catalogue in
  let options =
    { Fmea.Injection_fmea.default_options with exclude = [ "VIN" ] }
  in
  let table, t_fmea =
    timed (fun () -> Fmea.Injection_fmea.analyse ~options nl catalogue)
  in
  Printf.printf "full injection FMEA (reuse solver): %d rows in %.2f s\n"
    (List.length table.Fmea.Table.rows)
    t_fmea;
  record_timing "scaling/fmea-reuse" t_fmea;
  json_scaling :=
    Modelio.Json.Object
      [
        ("topology", Modelio.Json.String "ladder");
        ("sections", Modelio.Json.Number (float_of_int sections));
        ("unknowns", Modelio.Json.Number (float_of_int n));
        ("golden_factor_s", Modelio.Json.Number t_factor);
        ("injections_sampled", Modelio.Json.Number (float_of_int n_cases));
        ("fast_per_injection_s", Modelio.Json.Number per_fast);
        ("dense_per_injection_s", Modelio.Json.Number per_dense);
        ("speedup", Modelio.Json.Number speedup);
        ("max_reading_deviation", Modelio.Json.Number !max_dev);
        ("fmea_rows", Modelio.Json.Number
           (float_of_int (List.length table.Fmea.Table.rows)));
        ("fmea_reuse_s", Modelio.Json.Number t_fmea);
      ]
    :: !json_scaling;
  if smoke && (speedup < 5.0 || !max_dev > 1e-9) then
    Printf.printf "WARNING: scaling acceptance not met on this host\n"

(* ---------- Path FMEA: dominators vs enumeration (--smoke aware) ---------- *)

(* Algorithm 1 at scale.  Near the 20 000-simple-path cap the dominator
   route must beat enumeration by orders of magnitude while producing a
   [Table.equal]-identical table; beyond the cap only the dominator
   route has an answer at all, and it must be the closed-form one the
   generator architectures guarantee. *)
let path_fmea_scaling ~smoke () =
  section "Path FMEA — dominator classification vs path enumeration";
  let time_per_run reps f =
    ignore (f ());
    (* warm-up *)
    let _, t = timed (fun () -> for _ = 1 to reps do ignore (f ()) done) in
    t /. float_of_int reps
  in
  let near_cap name sys paths =
    let reference = Fmea.Path_fmea.analyse_enumerated sys in
    let t_enum =
      time_per_run (if smoke then 3 else 5) (fun () ->
          Fmea.Path_fmea.analyse_enumerated sys)
    in
    let t_dom =
      time_per_run (if smoke then 50 else 200) (fun () ->
          Fmea.Path_fmea.analyse sys)
    in
    let identical = Fmea.Table.equal (Fmea.Path_fmea.analyse sys) reference in
    let speedup = t_enum /. t_dom in
    Printf.printf
      "%-14s %7d paths   enumeration %8.3f ms   dominators %8.3f ms   \
       speedup %7.1fx   identical %b\n"
      name paths (1000.0 *. t_enum) (1000.0 *. t_dom) speedup identical;
    json_path_fmea :=
      Modelio.Json.Object
        [
          ("name", Modelio.Json.String name);
          ("paths", Modelio.Json.Number (float_of_int paths));
          ("enumeration_s", Modelio.Json.Number t_enum);
          ("dominators_s", Modelio.Json.Number t_dom);
          ("speedup", Modelio.Json.Number speedup);
          ("identical", Modelio.Json.Bool identical);
        ]
      :: !json_path_fmea
  in
  let beyond_cap name sys paths expected =
    let t_dom =
      time_per_run (if smoke then 20 else 50) (fun () ->
          Fmea.Path_fmea.analyse sys)
    in
    let t = Fmea.Path_fmea.analyse sys in
    let exact = Fmea.Table.safety_related_components t = expected in
    Printf.printf
      "%-14s %7d paths   enumeration N/A (over the %d cap)   dominators \
       %8.3f ms   exact %b\n"
      name paths Fmea.Path_fmea.max_paths (1000.0 *. t_dom) exact;
    json_path_fmea :=
      Modelio.Json.Object
        [
          ("name", Modelio.Json.String name);
          ("paths", Modelio.Json.Number (float_of_int paths));
          ("beyond_cap", Modelio.Json.Bool true);
          ("dominators_s", Modelio.Json.Number t_dom);
          ("exact", Modelio.Json.Bool exact);
        ]
      :: !json_path_fmea
  in
  let d_stages = if smoke then 12 else 14 in
  near_cap
    (Printf.sprintf "diamond-%d" d_stages)
    (Circuit.Generator.diamond_arch ~stages:d_stages)
    (Circuit.Generator.diamond_path_count ~stages:d_stages);
  let rows, cols = if smoke then (8, 8) else (9, 9) in
  near_cap
    (Printf.sprintf "grid-%dx%d" rows cols)
    (Circuit.Generator.grid_arch ~rows ~cols)
    (Circuit.Generator.grid_path_count ~rows ~cols);
  let b_stages = 18 in
  beyond_cap
    (Printf.sprintf "diamond-%d" b_stages)
    (Circuit.Generator.diamond_arch ~stages:b_stages)
    (Circuit.Generator.diamond_path_count ~stages:b_stages)
    (List.init (b_stages + 1) (Printf.sprintf "J%d"));
  beyond_cap "grid-10x10"
    (Circuit.Generator.grid_arch ~rows:10 ~cols:10)
    (Circuit.Generator.grid_path_count ~rows:10 ~cols:10)
    [ "B0_0"; "B9_9" ]

(* ---------- Streaming search: millions of combinations, flat memory ---------- *)

let streaming_search ~smoke () =
  section "Streaming search — counter-based exhaustive enumeration";
  (* [n] slots with three mechanisms each plus one two-option slot:
     2 * 4^n combinations.  The list-based search capped out at 200 000
     combinations (the materialised candidate list); the streaming fold
     keeps only the evaluation window and the online Pareto front. *)
  let n = if smoke then 6 else 10 in
  let name i = Printf.sprintf "C%d" i in
  let rows =
    List.init (n + 1) (fun i ->
        Fmea.Table.make_row ~component:(name i) ~component_fit:100.0
          ~failure_mode:"f" ~distribution_pct:100.0 ~safety_related:true ())
  in
  let mechanisms =
    List.init (n + 1) (fun i ->
        if i = n then [ { Reliability.Sm_model.sm_name = "only";
                          component_type = name i; failure_mode = "f";
                          coverage_pct = 95.0; cost = 3.0 } ]
        else
          [
            { Reliability.Sm_model.sm_name = "a"; component_type = name i;
              failure_mode = "f"; coverage_pct = 60.0; cost = 1.0 };
            { Reliability.Sm_model.sm_name = "b"; component_type = name i;
              failure_mode = "f"; coverage_pct = 90.0; cost = 2.0 };
            { Reliability.Sm_model.sm_name = "c"; component_type = name i;
              failure_mode = "f"; coverage_pct = 99.0; cost = 4.0 };
          ])
    |> List.concat
  in
  let table = { Fmea.Table.system_name = "streaming"; rows } in
  let catalogue = Reliability.Sm_model.of_mechanisms mechanisms in
  let combinations = 2 * (1 lsl (2 * n)) in
  let (count, cheapest), t =
    timed (fun () ->
        Optimize.Search.exhaustive_fold ~max_combinations:3_000_000 table
          catalogue ~init:(0, None)
          ~f:(fun (count, best) c ->
            let best =
              if c.Optimize.Search.spfm_pct < 90.0 then best
              else
                match best with
                | Some (b : Optimize.Search.candidate)
                  when b.Optimize.Search.cost <= c.Optimize.Search.cost ->
                    best
                | Some _ | None -> Some c
            in
            (count + 1, best)))
  in
  Printf.printf
    "%d combinations streamed in %.2f s (%.0f candidates/s); cheapest \
     ASIL-B deployment costs %s\n"
    count t
    (float_of_int count /. t)
    (match cheapest with
    | Some c -> Printf.sprintf "%.1f h" c.Optimize.Search.cost
    | None -> "—  (none meets 90%)");
  assert (count = combinations);
  json_path_fmea :=
    Modelio.Json.Object
      [
        ("name", Modelio.Json.String "streaming-search");
        ("combinations", Modelio.Json.Number (float_of_int count));
        ("seconds", Modelio.Json.Number t);
        ( "candidates_per_s",
          Modelio.Json.Number (float_of_int count /. t) );
      ]
    :: !json_path_fmea

(* ---------- FTA: BDD minimal cut sets vs MOCUS expansion ---------- *)

(* The cut-set kernel acceptance: at every published size the hash-consed
   BDD/ZBDD route must produce the [Cut_sets.minimal]-identical list at
   least as fast as the MOCUS expansion (whose minimisation is quadratic
   in the set count), and past the MOCUS 100k intermediate-set cap —
   where MOCUS raises and [`Auto] falls back — the BDD must still solve
   the tree exactly: cut-set count and the closed-form 2-out-of-n
   probability both checked. *)
let fta ~smoke () =
  section "FTA — BDD minimal cut sets vs MOCUS expansion";
  let basic prefix i =
    Fta.Fault_tree.basic ~rate_fit:100.0 (Printf.sprintf "%s%d" prefix i)
  in
  (* AND of k two-way ORs: 2^k minimal cut sets of order k. *)
  let series_parallel k =
    Fta.Fault_tree.and_ "top"
      (List.init k (fun i ->
           Fta.Fault_tree.or_
             (Printf.sprintf "s%d" i)
             [ basic "a" i; basic "b" i ]))
  in
  (* 2-out-of-n vote: n(n-1)/2 minimal cut sets of order 2. *)
  let vote n =
    Fta.Fault_tree.koon "vote" ~k:2 (List.init n (basic "e"))
  in
  let time_per_run reps f =
    ignore (f ());
    (* warm-up *)
    let best = ref infinity in
    for _ = 1 to reps do
      let _, t = timed f in
      best := Float.min !best t
    done;
    !best
  in
  let published name tree sets =
    let mocus () = Fta.Cut_sets.minimal ~engine:`Mocus tree in
    let bdd () = Fta.Cut_sets.minimal ~engine:`Bdd tree in
    let t_mocus = time_per_run (if smoke then 2 else 4) mocus in
    let t_bdd = time_per_run (if smoke then 5 else 20) bdd in
    let identical = mocus () = bdd () && List.length (bdd ()) = sets in
    let speedup = t_mocus /. t_bdd in
    Printf.printf
      "%-18s %6d cut sets   mocus %8.3f ms   bdd %8.3f ms   speedup \
       %6.1fx   identical %b\n"
      name sets (1000.0 *. t_mocus) (1000.0 *. t_bdd) speedup identical;
    json_fta :=
      Modelio.Json.Object
        [
          ("name", Modelio.Json.String name);
          ("cut_sets", Modelio.Json.Number (float_of_int sets));
          ("mocus_s", Modelio.Json.Number t_mocus);
          ("bdd_s", Modelio.Json.Number t_bdd);
          ("speedup", Modelio.Json.Number speedup);
          ("identical", Modelio.Json.Bool identical);
        ]
      :: !json_fta
  in
  published "series-parallel-10" (series_parallel 10) 1024;
  if not smoke then published "series-parallel-12" (series_parallel 12) 4096;
  published
    (if smoke then "vote-2-of-80" else "vote-2-of-120")
    (vote (if smoke then 80 else 120))
    (if smoke then 80 * 79 / 2 else 120 * 119 / 2);
  (* Beyond the MOCUS cap: 2-of-500 has 124 750 minimal cut sets. *)
  let n = 500 in
  let tree = vote n in
  let expected = n * (n - 1) / 2 in
  let mocus_raises =
    match Fta.Cut_sets.minimal ~engine:`Mocus tree with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  let sets, t_bdd = timed (fun () -> Fta.Cut_sets.minimal ~engine:`Auto tree) in
  let probs = Fta.Quant.event_probabilities tree in
  let p = match probs with (_, p) :: _ -> p | [] -> 0.0 in
  let q = 1.0 -. p in
  let nf = float_of_int n in
  let closed =
    1.0 -. (q ** nf) -. (nf *. p *. (q ** (nf -. 1.0)))
  in
  let bdd_p = Fta.Quant.top_probability_exact tree probs in
  let exact =
    List.length sets = expected
    && List.for_all (fun s -> List.length s = 2) sets
    && Float.abs (bdd_p -. closed) <= 1e-6 *. closed
  in
  Printf.printf
    "vote-2-of-%d       %6d cut sets   mocus raises (over the 100k cap): \
     %b   bdd %8.3f ms   P(top) %.6e vs closed form %.6e   exact %b\n"
    n expected mocus_raises (1000.0 *. t_bdd) bdd_p closed exact;
  json_fta :=
    Modelio.Json.Object
      [
        ("name", Modelio.Json.String (Printf.sprintf "vote-2-of-%d" n));
        ("beyond_cap", Modelio.Json.Bool true);
        ("cut_sets", Modelio.Json.Number (float_of_int (List.length sets)));
        ("expected", Modelio.Json.Number (float_of_int expected));
        ("mocus_raises", Modelio.Json.Bool mocus_raises);
        ("bdd_s", Modelio.Json.Number t_bdd);
        ("bdd_p", Modelio.Json.Number bdd_p);
        ("closed_form_p", Modelio.Json.Number closed);
        ("exact", Modelio.Json.Bool exact);
      ]
    :: !json_fta

(* ---------- Assessment: bit-parallel Monte-Carlo vs BDD-exact ---------- *)

let assess ~smoke () =
  section "Assessment — bit-parallel Monte-Carlo vs BDD-exact";
  let published name ?(sampling = Assess.Mc.Direct) ~trials ~mission_hours tree
      =
    let config =
      {
        Assess.Mc.default with
        Assess.Mc.mission_hours;
        sampling;
        trials = Some trials;
        exact = Assess.Mc.Force;
      }
    in
    (* warm-up pays code first-touch; the timed run is the reported one *)
    ignore (Assess.Mc.run { config with Assess.Mc.trials = Some 100_000 } tree);
    let r = Assess.Mc.run config tree in
    let exact = Option.get r.Assess.Mc.exact in
    let delta = Option.get r.Assess.Mc.exact_delta in
    (* The estimate is deterministic for the fixed seed, so this is a
       reproducible acceptance criterion, not a statistical coin flip. *)
    let within_ci = delta <= r.Assess.Mc.halfwidth in
    Printf.printf
      "%-18s %9d trials   %7.1f Mtrials/s   P(top) %.6e +/- %.1e   exact \
       %.6e   delta %.1e   within CI %b\n"
      name r.Assess.Mc.trials
      (r.Assess.Mc.trials_per_sec /. 1e6)
      r.Assess.Mc.top_probability r.Assess.Mc.halfwidth exact delta within_ci;
    record_timing (Printf.sprintf "assess/%s" name) r.Assess.Mc.elapsed_s;
    json_assess :=
      Modelio.Json.Object
        [
          ("name", Modelio.Json.String name);
          ( "sampling",
            Modelio.Json.String (Assess.Mc.sampling_to_string sampling) );
          ("trials", Modelio.Json.Number (float_of_int r.Assess.Mc.trials));
          ("trials_per_sec", Modelio.Json.Number r.Assess.Mc.trials_per_sec);
          ("estimate", Modelio.Json.Number r.Assess.Mc.top_probability);
          ("ci_halfwidth", Modelio.Json.Number r.Assess.Mc.halfwidth);
          ("exact", Modelio.Json.Number exact);
          ("exact_delta", Modelio.Json.Number delta);
          ("within_ci", Modelio.Json.Bool within_ci);
          ("instrs", Modelio.Json.Number (float_of_int r.Assess.Mc.instrs));
        ]
      :: !json_assess
  in
  (* The paper's power-supply tree: the CI smoke gate asserts >= 1M
     trials/s and the estimate inside its own 99% interval here. *)
  let psu = Fta.From_ssam.generate Decisive.Case_study.power_supply_root in
  published "power-supply" ~trials:(if smoke then 4_000_000 else 16_000_000)
    ~mission_hours:10_000.0 psu;
  (* A voted redundancy at well-conditioned probabilities: the k-of-n
     bit-sliced comparator at its widest. *)
  let vote n =
    Fta.Fault_tree.koon "vote" ~k:2
      (List.init n (fun i ->
           Fta.Fault_tree.basic ~rate_fit:100.0 (Printf.sprintf "e%d" i)))
  in
  published "vote-2-of-24" ~trials:(if smoke then 1_000_000 else 8_000_000)
    ~mission_hours:4.0e5 (vote 24);
  (* Rare top event (~1e-9): importance sampling converges at a budget
     where direct sampling essentially never sees a hit. *)
  let rare =
    Fta.Fault_tree.and_ "top"
      [
        Fta.Fault_tree.basic ~rate_fit:100.0 "a";
        Fta.Fault_tree.basic ~rate_fit:100.0 "b";
        Fta.Fault_tree.basic ~rate_fit:100.0 "c";
      ]
  in
  published "rare-and-3" ~sampling:Assess.Mc.Importance
    ~trials:(if smoke then 1_000_000 else 4_000_000)
    ~mission_hours:10_000.0 rare

(* ---------- Diagnosis: dataflow fixpoints + forward/backward oracle ---------- *)

let diagnosis ~smoke () =
  section "Diagnosis — dataflow fixpoints and the forward/backward oracle";
  let open Dataflow in
  let fixpoints name arch =
    let m = Model.of_architecture arch in
    let nodes = Graph.Digraph.node_count m.Model.graph in
    ignore (Passes.forward_taint m);
    (* warm-up *)
    let reps = if smoke then 20 else 200 in
    let _, t =
      timed (fun () ->
          for _ = 1 to reps do
            ignore (Passes.forward_taint m);
            ignore (Passes.backward_reach m)
          done)
    in
    let forward = Passes.forward_taint m in
    let backward = Passes.backward_reach m in
    let agree, pairs = Passes.agreement m ~forward ~backward in
    assert agree;
    let iterations =
      forward.Passes.stats.Fixpoint.iterations
      + backward.Passes.stats.Fixpoint.iterations
    in
    let ns_per_node = 1e9 *. t /. float_of_int (reps * 2 * nodes) in
    Printf.printf
      "%-14s %5d nodes   %5d iterations   %8.0f ns/node/pass   oracle \
       agrees over %d pairs\n"
      name nodes iterations ns_per_node pairs;
    json_diagnosis :=
      Modelio.Json.Object
        [
          ("name", Modelio.Json.String name);
          ("nodes", Modelio.Json.Number (float_of_int nodes));
          ("iterations", Modelio.Json.Number (float_of_int iterations));
          ("ns_per_node", Modelio.Json.Number ns_per_node);
          ("agreement_pairs", Modelio.Json.Number (float_of_int pairs));
          ("agree", Modelio.Json.Bool agree);
        ]
      :: !json_diagnosis
  in
  let d_stages = if smoke then 8 else 12 in
  let g_side = if smoke then 8 else 16 in
  fixpoints
    (Printf.sprintf "diamond-%d" d_stages)
    (Circuit.Generator.diamond_arch ~stages:d_stages);
  fixpoints
    (Printf.sprintf "grid-%dx%d" g_side g_side)
    (Circuit.Generator.grid_arch ~rows:g_side ~cols:g_side);
  (* The case-study circuit: backward candidates confirmed or refuted by
     numeric fault injection — the paper's Table IV from the other
     direction. *)
  let diagram = Decisive.Case_study.power_supply_diagram in
  let reliability = Decisive.Case_study.reliability_model in
  let m = Model.of_diagram ~reliability diagram in
  let verify =
    match
      Diagnose.circuit_verifier ~options:Decisive.Case_study.injection_options
        ~reliability ~output:"CS1" diagram
    with
    | Ok v -> v
    | Error why -> failwith why
  in
  let report, t =
    timed (fun () ->
        match Diagnose.diagnose ~verify m ~output:"CS1" with
        | Ok r -> r
        | Error why -> failwith why)
  in
  let confirmed =
    List.length
      (List.filter
         (fun (e : Diagnose.explanation) ->
           match e.Diagnose.verdict with Diagnose.Confirmed _ -> true | _ -> false)
         report.Diagnose.candidates)
  in
  Printf.printf
    "power-supply   %d candidates -> %d confirmed by injection   %d minimal \
     single points   %.1f ms\n"
    (List.length report.Diagnose.candidates)
    confirmed
    (List.length report.Diagnose.singles)
    (1000.0 *. t);
  assert report.Diagnose.agree;
  json_diagnosis :=
    Modelio.Json.Object
      [
        ("name", Modelio.Json.String "power-supply-CS1");
        ( "candidates",
          Modelio.Json.Number
            (float_of_int (List.length report.Diagnose.candidates)) );
        ("confirmed", Modelio.Json.Number (float_of_int confirmed));
        ( "singles",
          Modelio.Json.Number (float_of_int (List.length report.Diagnose.singles))
        );
        ("seconds", Modelio.Json.Number t);
        ("agree", Modelio.Json.Bool report.Diagnose.agree);
      ]
    :: !json_diagnosis

(* ---------- Iteration loop: incremental re-analysis ---------- *)

(* The DECISIVE loop's common case: one design iteration touches one
   component.  Here System B's microcontroller supplier revises its FIT;
   the incremental engine re-classifies only the rows the edit can reach
   (the edited entry's components plus the diff closure) and reuses the
   cached golden run, so the warm re-analysis performs strictly fewer
   solves than the cold one — bit-identically. *)
let iteration_loop () =
  section "Iteration loop — warm vs cold re-analysis (System B, one edit)";
  let subject = Decisive.Systems.system_b in
  let diagram = subject.Decisive.Systems.diagram in
  let reliability = subject.Decisive.Systems.reliability in
  let options =
    {
      Fmea.Injection_fmea.default_options with
      exclude = [ "DC1"; "BAT1" ];
      monitored_sensors = Some [ "CS1"; "CS2"; "VS1" ];
    }
  in
  (* The edit: the MCU's FIT worsens by 25. *)
  let edited =
    match
      Reliability.Reliability_model.find reliability "microcontroller"
    with
    | Some e ->
        Reliability.Reliability_model.add reliability
          {
            e with
            Reliability.Reliability_model.fit =
              e.Reliability.Reliability_model.fit +. 25.0;
          }
    | None -> reliability
  in
  (* One untimed pass through both paths pays the first-touch costs of
     the diff/reuse machinery, which otherwise land on whichever timed
     run happens first. *)
  let fill engine =
    Engine.Pipeline.injection_fmea engine ~options diagram reliability
  in
  let warm_once engine table_v1 =
    Engine.Pipeline.injection_fmea engine
      ~previous:
        {
          Engine.Pipeline.prev_diagram = diagram;
          prev_reliability = reliability;
          prev_table = table_v1;
        }
      ~options diagram edited
  in
  (let e = Engine.Pipeline.create () in
   ignore (warm_once e (fill e));
   ignore (Engine.Pipeline.injection_fmea (Engine.Pipeline.create ()) ~options diagram edited));
  (* Best-of-N, fresh scenario per repetition: the warm engine is
     recreated and refilled (untimed) every rep — re-running warm on an
     already-warm engine would hit the result cache and time a no-op —
     and the cold engine is recreated every rep.  The CI gate asserts
     warm <= cold on these minima. *)
  let reps = 5 in
  (* [f] returns (value, elapsed); keep the fastest rep. *)
  let best f =
    let rec go best_t best_v n =
      if n = 0 then (Option.get best_v, best_t)
      else
        let v, t = f () in
        if t < best_t then go t (Some v) (n - 1) else go best_t best_v (n - 1)
    in
    go infinity None reps
  in
  let t_v1 = ref 0.0 in
  let (table_cold, cold), t_cold =
    best (fun () ->
        timed (fun () ->
            let cold_engine = Engine.Pipeline.create () in
            let table =
              Engine.Pipeline.injection_fmea cold_engine ~options diagram edited
            in
            (table, Engine.Pipeline.snapshot cold_engine)))
  in
  let (table_warm, warm), t_warm =
    best (fun () ->
        let warm_engine = Engine.Pipeline.create () in
        let table_v1, t_fill = timed (fun () -> fill warm_engine) in
        t_v1 := t_fill;
        Engine.Stats.reset (Engine.Pipeline.stats warm_engine);
        let (table, snapshot), elapsed =
          timed (fun () ->
              let table = warm_once warm_engine table_v1 in
              (table, Engine.Pipeline.snapshot warm_engine))
        in
        ((table, snapshot), elapsed))
  in
  let t_v1 = !t_v1 in
  let identical = Fmea.Table.equal table_cold table_warm in
  Printf.printf "iteration 1 (fills caches):  %7.3f s\n" t_v1;
  Printf.printf "cold re-analysis:            %7.3f s   %d solves\n" t_cold
    (Engine.Stats.solves_performed cold);
  Printf.printf
    "warm re-analysis:            %7.3f s   %d solves   %d rows reused\n"
    t_warm
    (Engine.Stats.solves_performed warm)
    warm.Engine.Stats.rows_reused;
  Printf.printf "warm result identical to cold: %b; solves saved: %d\n"
    identical
    (Engine.Stats.solves_performed cold - Engine.Stats.solves_performed warm);
  record_timing "incremental/cold" t_cold;
  record_timing "incremental/warm" t_warm;
  json_incremental :=
    Modelio.Json.Object
      [
        ("name", Modelio.Json.String "system-b/mcu-fit-edit");
        ("cold_s", Modelio.Json.Number t_cold);
        ("warm_s", Modelio.Json.Number t_warm);
        ( "cold_solves",
          Modelio.Json.Number (float_of_int (Engine.Stats.solves_performed cold))
        );
        ( "warm_solves",
          Modelio.Json.Number (float_of_int (Engine.Stats.solves_performed warm))
        );
        ( "rows_reused",
          Modelio.Json.Number (float_of_int warm.Engine.Stats.rows_reused) );
        ("identical", Modelio.Json.Bool identical);
      ]
    :: !json_incremental

(* ---------- same serve: warm daemon vs cold CLI ---------- *)

(* The daemon's value proposition, measured end to end: a cold `same
   fmea` CLI run (process start + model load + full analysis) against
   warm one-edit requests to an in-process server over its real Unix
   socket — each edit a *distinct* reliability change, so every request
   is an incremental re-analysis, not a response-cache hit.  A second
   experiment fires N identical concurrent requests at a fresh
   fingerprint and reads back how many computations actually ran. *)
let serve_bench ~smoke () =
  section "same serve — warm sessions vs cold CLI (System B, one edit)";
  let subject = Decisive.Systems.system_b in
  let diagram = subject.Decisive.Systems.diagram in
  let reliability = subject.Decisive.Systems.reliability in
  let exclude = "DC1,BAT1" and monitored = "CS1,CS2,VS1" in
  (* Model texts: the diagram via its text format, the reliability model
     via its spreadsheet round-trip. *)
  let diagram_path = Filename.temp_file "same-serve-sysb" ".bd" in
  Blockdiag.Text_format.write_file diagram_path diagram;
  let diagram_text = In_channel.with_open_bin diagram_path In_channel.input_all in
  let reliability_csv m =
    match (Reliability.Reliability_model.to_spreadsheet m).Modelio.Spreadsheet.sheets with
    | { Modelio.Spreadsheet.table; _ } :: _ ->
        Modelio.Csv.to_string
          (table.Modelio.Csv.header :: table.Modelio.Csv.rows)
    | [] -> ""
  in
  let reliability_path = Filename.temp_file "same-serve-rel" ".csv" in
  Out_channel.with_open_bin reliability_path (fun oc ->
      Out_channel.output_string oc (reliability_csv reliability));
  let edited k =
    match
      Reliability.Reliability_model.find reliability "microcontroller"
    with
    | Some e ->
        Reliability.Reliability_model.add reliability
          {
            e with
            Reliability.Reliability_model.fit =
              e.Reliability.Reliability_model.fit +. (25.0 *. float_of_int k);
          }
    | None -> reliability
  in
  (* Cold baseline: the real CLI, fresh process per run. *)
  let same_exe =
    Filename.concat (Filename.dirname Sys.executable_name) "../bin/same.exe"
  in
  let cold_cli () =
    let null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
    let _, t =
      timed (fun () ->
          let pid =
            Unix.create_process same_exe
              [|
                same_exe; "fmea"; diagram_path; "-r"; reliability_path;
                "-e"; "DC1"; "-e"; "BAT1";
                "-m"; "CS1"; "-m"; "CS2"; "-m"; "VS1";
              |]
              Unix.stdin null null
          in
          ignore (Unix.waitpid [] pid))
    in
    Unix.close null;
    t
  in
  if not (Sys.file_exists same_exe) then
    Printf.printf "same.exe not found next to the bench — section skipped\n"
  else begin
    let reps = if smoke then 2 else 3 in
    let best f =
      let rec go acc n = if n = 0 then acc else go (Float.min acc (f ())) (n - 1) in
      go (f ()) (reps - 1)
    in
    let t_cold = best cold_cli in
    (* Warm path: in-process server on a real socket, one session,
       distinct one-edit requests streamed over one connection. *)
    let socket_path =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "same-bench-%d.sock" (Unix.getpid ()))
    in
    let server =
      Serve.Server.start
        {
          Serve.Server.socket_path;
          cache_dir = None;
          jobs = Exec.default_jobs ();
        }
    in
    Fun.protect
      ~finally:(fun () ->
        Serve.Server.stop server;
        Serve.Server.wait server;
        Sys.remove diagram_path;
        Sys.remove reliability_path)
      (fun () ->
        let client =
          match Serve.Client.connect socket_path with
          | Ok c -> c
          | Error m -> failwith m
        in
        let rpc req =
          match Serve.Client.rpc client req with
          | Ok json -> json
          | Error m -> failwith ("serve bench: " ^ m)
        in
        let session =
          let open_response =
            rpc
              (Serve.Protocol.Open_session
                 {
                   o_diagram = diagram_text;
                   o_reliability = Some (reliability_csv reliability);
                   o_params =
                     [ ("exclude", exclude); ("monitored", monitored) ];
                 })
          in
          match
            Modelio.Json.(Option.bind (member "session" open_response) to_str)
          with
          | Some id -> id
          | None -> failwith "serve bench: open returned no session"
        in
        let edits = if smoke then 12 else 30 in
        (* Request payloads are prepared up front: the latency being
           measured is the daemon round-trip, not the client's CSV
           pretty-printer. *)
        let payloads =
          List.init edits (fun k -> reliability_csv (edited (k + 1)))
        in
        let latencies =
          List.map
            (fun csv ->
              let _, t =
                timed (fun () ->
                    rpc
                      (Serve.Protocol.Edit
                         {
                           e_session = session;
                           e_diagram = None;
                           e_reliability = Some csv;
                         }))
              in
              t)
            payloads
        in
        let sorted = List.sort Float.compare latencies in
        let pct p =
          let n = List.length sorted in
          List.nth sorted (Int.min (n - 1) (p * n / 100))
        in
        let warm_p50 = pct 50 and warm_p99 = pct 99 in
        (* Coalescing: N identical concurrent requests at a fingerprint
           nobody has asked for yet must run exactly one computation.
           The request is deliberately slow (Monte-Carlo assessment) so
           the followers really do arrive while the leader is solving. *)
        let before = Serve.Server.stats server in
        let concurrent = 4 in
        let analyse_request =
          Serve.Protocol.Analyse
            {
              Serve.Protocol.a_analysis = Serve.Protocol.Assess;
              a_diagram = diagram_text;
              a_reliability = Some (reliability_csv reliability);
              a_sm = None;
              a_params =
                [ ("seed", "11"); ("trials", if smoke then "2000000" else "8000000") ];
            }
        in
        let outputs = Array.make concurrent "" in
        let threads =
          List.init concurrent (fun i ->
              Thread.create
                (fun () ->
                  match Serve.Client.one_shot ~socket:socket_path analyse_request with
                  | Ok json ->
                      outputs.(i) <-
                        Option.value ~default:""
                          Modelio.Json.(
                            Option.bind (member "output" json) to_str)
                  | Error m -> failwith ("serve bench: " ^ m))
                ())
        in
        List.iter Thread.join threads;
        let after = Serve.Server.stats server in
        let coalesced_solves =
          after.Serve.Server.analyses_computed
          - before.Serve.Server.analyses_computed
        in
        let identical =
          Array.for_all (fun o -> o = outputs.(0) && o <> "") outputs
        in
        Serve.Client.close client;
        let speedup = t_cold /. warm_p50 in
        Printf.printf "cold CLI (fresh process):    %7.3f s\n" t_cold;
        Printf.printf "warm one-edit p50:           %7.4f s   p99: %7.4f s\n"
          warm_p50 warm_p99;
        Printf.printf "warm speedup over cold CLI:  %7.1fx\n" speedup;
        Printf.printf
          "%d identical concurrent requests -> %d computation(s), outputs \
           identical: %b\n"
          concurrent coalesced_solves identical;
        record_timing "serve/cold_cli" t_cold;
        record_timing "serve/warm_p50" warm_p50;
        json_serve :=
          Modelio.Json.Object
            [
              ("name", Modelio.Json.String "system-b/mcu-fit-edit");
              ("cold_cli_s", Modelio.Json.Number t_cold);
              ("warm_p50_s", Modelio.Json.Number warm_p50);
              ("warm_p99_s", Modelio.Json.Number warm_p99);
              ("speedup", Modelio.Json.Number speedup);
              ( "coalesced_requests",
                Modelio.Json.Number (float_of_int concurrent) );
              ( "coalesced_solves",
                Modelio.Json.Number (float_of_int coalesced_solves) );
              ("identical", Modelio.Json.Bool identical);
            ]
          :: !json_serve)
  end

(* ---------- Bechamel micro-benchmarks ---------- *)

(* Shared runner: measures one test and records its ns/run estimate into
   [kernels_ns_per_run].  [quota] shrinks for smoke runs. *)
let bechamel_run ~quota tests =
  let open Bechamel in
  let benchmark test =
    let instance = Toolkit.Instance.monotonic_clock in
    let cfg =
      Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:(Some 1000) ()
    in
    let raw = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"g" [ test ]) in
    let results =
      Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false
                     ~predictors:[| Measure.run |]) instance raw
    in
    Hashtbl.iter
      (fun name result ->
        match Analyze.OLS.estimates result with
        | Some [ est ] ->
            json_kernels := (name, est) :: !json_kernels;
            Printf.printf "%-32s %12.1f ns/run\n" name est
        | _ -> Printf.printf "%-32s (no estimate)\n" name)
      results
  in
  List.iter benchmark tests

(* Numeric-layer kernels: dense LU, sparse LU (with and without a cached
   ordering) and the SMW re-solve, at sizes straddling the
   [Dc.sparse_threshold] crossover.  These run in smoke too — they are
   the regression guard for the fast-injection kernels. *)
let kernel_benchmarks ~smoke () =
  section "Kernel micro-benchmarks (numeric layer)";
  let open Bechamel in
  let systems =
    List.map
      (fun sections ->
        let nl = Circuit.Generator.ladder ~sections in
        let p = Circuit.Dc.prepare nl in
        (Circuit.Dc.size p, nl))
      (if smoke then [ 56; 224 ] else [ 56; 224; 480 ])
  in
  let tests =
    List.concat_map
      (fun (n, nl) ->
        [
          Test.make
            ~name:(Printf.sprintf "kernel/dense-analyse/%d" n)
            (Staged.stage (fun () ->
                 ignore (Circuit.Dc.analyse ~backend:`Dense nl)));
          Test.make
            ~name:(Printf.sprintf "kernel/sparse-analyse/%d" n)
            (Staged.stage (fun () ->
                 ignore (Circuit.Dc.analyse ~backend:`Sparse nl)));
          (let g =
             match Circuit.Dc.factorise (Circuit.Dc.prepare nl) with
             | Ok g -> g
             | Error _ -> failwith "kernel bench: golden solve failed"
           in
           Test.make
             ~name:(Printf.sprintf "kernel/smw-resolve/%d" n)
             (Staged.stage (fun () ->
                  ignore
                    (Circuit.Dc.inject g ~element_id:"RL5"
                       Circuit.Fault.Open_circuit))));
        ])
      systems
  in
  bechamel_run ~quota:(if smoke then 0.05 else 0.5) tests

let micro_benchmarks () =
  section "Micro-benchmarks (Bechamel, one per analysis kernel)";
  let open Bechamel in
  let psu = Decisive.Case_study.power_supply_netlist in
  let rm = Decisive.Case_study.reliability_model in
  let options = Decisive.Case_study.injection_options in
  let root = Decisive.Case_study.power_supply_root in
  let diagram = Decisive.Case_study.power_supply_diagram in
  let query_env =
    Query.Interp.env_of_models
      [
        ( "Artifact",
          Modelio.Mvalue.of_csv_table
            (Modelio.Csv.to_table
               (Fmea.Table.to_csv ~repeat_component_cells:true
                  (Decisive.Case_study.fmea_via_injection ()))) );
      ]
  in
  let spfm_query = Decisive.Api.spfm_query ~target:Ssam.Requirement.ASIL_B in
  let set1 = List.nth Store.Synthetic.table_vi_sets 1 in
  let tests =
    [
      Test.make ~name:"table4/injection-fmea" (Staged.stage (fun () ->
          ignore (Fmea.Injection_fmea.analyse ~options psu rm)));
      Test.make ~name:"table4/path-fmea" (Staged.stage (fun () ->
          ignore (Fmea.Path_fmea.analyse root)));
      Test.make ~name:"table4/fta-route" (Staged.stage (fun () ->
          ignore (Fta.Fmea_from_fta.analyse root)));
      Test.make ~name:"table4/dc-solve" (Staged.stage (fun () ->
          ignore (Circuit.Dc.analyse psu)));
      Test.make ~name:"table2/federation-query" (Staged.stage (fun () ->
          ignore (Query.Interp.run_string query_env spfm_query)));
      Test.make ~name:"table6/set1-lazy-eval" (Staged.stage (fun () ->
          ignore (Store.Lazy_store.evaluate set1)));
      Test.make ~name:"m2m/blockdiag-to-ssam" (Staged.stage (fun () ->
          ignore (Blockdiag.Transform.to_ssam diagram)));
    ]
  in
  bechamel_run ~quota:0.5 tests

let () =
  (* --smoke (CI): only the fast deterministic sections — enough to catch
     a broken harness and still emit BENCH_results.json. *)
  let smoke = Array.exists (( = ) "--smoke") Sys.argv in
  Printf.printf "DECISIVE / SAME benchmark harness — reproduces the paper's tables%s\n"
    (if smoke then " (smoke run)" else "");
  table1 ();
  table2 ();
  table3 ();
  table4 ();
  table5 ();
  rq1 ();
  rq2 ();
  if not smoke then begin
    table6 ();
    ablation_search ();
    ablation_ripple ();
    ablation_threshold ()
  end;
  extended_metrics ();
  parallel_speedups ~smoke ();
  batch_fmea ~smoke ();
  iteration_loop ();
  serve_bench ~smoke ();
  path_fmea_scaling ~smoke ();
  streaming_search ~smoke ();
  fta ~smoke ();
  assess ~smoke ();
  diagnosis ~smoke ();
  scaling ~smoke ();
  kernel_benchmarks ~smoke ();
  if not smoke then micro_benchmarks ();
  write_results ();
  Printf.printf "\nDone.\n"
