(* same — the SAME command-line tool: automated FME(D)A, safety-mechanism
   search, fault-tree analysis and assurance-case evaluation over block
   diagram models. *)

open Cmdliner

let load_diagram path =
  try Ok (Blockdiag.Text_format.parse_file path) with
  | Blockdiag.Text_format.Parse_error { line; message } ->
      Error (Printf.sprintf "%s:%d: %s" path line message)
  | Sys_error m -> Error m

let load_reliability = function
  | None -> Ok Reliability.Reliability_model.table_ii
  | Some path -> (
      try Ok (Reliability.Reliability_model.of_spreadsheet (Modelio.Spreadsheet.load path))
      with
      | Reliability.Reliability_model.Format_error m ->
          Error (Printf.sprintf "%s: %s" path m)
      | Sys_error m -> Error m
      | Modelio.Csv.Parse_error { line; message } ->
          Error (Printf.sprintf "%s:%d: %s" path line message))

let load_sm_model = function
  | None -> Ok Reliability.Sm_model.extended_catalogue
  | Some path -> (
      try Ok (Reliability.Sm_model.of_spreadsheet (Modelio.Spreadsheet.load path))
      with
      | Reliability.Sm_model.Format_error m ->
          Error (Printf.sprintf "%s: %s" path m)
      | Sys_error m -> Error m
      | Modelio.Csv.Parse_error { line; message } ->
          Error (Printf.sprintf "%s:%d: %s" path line message))

let target_conv =
  let parse s =
    match Ssam.Requirement.integrity_level_of_string s with
    | Some l -> Ok l
    | None -> Error (`Msg (Printf.sprintf "unknown integrity level %S" s))
  in
  let print ppf l =
    Format.fprintf ppf "%s" (Ssam.Requirement.integrity_level_to_string l)
  in
  Arg.conv (parse, print)

(* Common arguments *)

let diagram_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"DIAGRAM" ~doc:"Block diagram model (.bd text format).")

let reliability_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "r"; "reliability" ] ~docv:"CSV"
        ~doc:
          "Component reliability model (CSV: Component, FIT, Failure_Mode, \
           Distribution).  Defaults to the paper's Table II.")

let sm_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "s"; "safety-mechanisms" ] ~docv:"CSV"
        ~doc:
          "Safety mechanism model (CSV: Component, Failure_Mode, \
           Safety_Mechanism, Cov., Cost(hrs)).  Defaults to the built-in \
           catalogue.")

let exclude_arg =
  Arg.(
    value & opt_all string []
    & info [ "e"; "exclude" ] ~docv:"ID"
        ~doc:"Component assumed stable and excluded from injection.")

let monitored_arg =
  Arg.(
    value & opt_all string []
    & info [ "m"; "monitor" ] ~docv:"SENSOR"
        ~doc:
          "Sensor forming the safety observation (repeatable).  Default: all \
           sensors.")

let output_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"CSV" ~doc:"Write the FMEDA table as CSV.")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the parallel analysis kernels (overrides the \
           $(b,SAME_JOBS) environment variable; default: the machine's \
           recommended domain count).  $(b,1) forces sequential execution.")

let set_jobs = function
  | None -> ()
  | Some n when n >= 1 -> Exec.set_default_jobs n
  | Some n -> Printf.eprintf "warning: ignoring non-positive --jobs %d\n" n

let sched_arg =
  let modes =
    [ ("seq", Exec.Cost.Seq); ("par", Exec.Cost.Par); ("auto", Exec.Cost.Auto) ]
  in
  Arg.(
    value
    & opt (some (enum modes)) None
    & info [ "sched" ] ~docv:"MODE"
        ~doc:
          "Parallel scheduling mode (overrides the $(b,SAME_SCHED) \
           environment variable): $(b,seq) forces sequential execution, \
           $(b,par) always dispatches to the pool, $(b,auto) (the default) \
           parallelises only when the measured per-task cost clears the \
           dispatch overhead.")

let set_sched = function None -> () | Some m -> Exec.Cost.set_sched m

let strict_arg =
  Arg.(
    value & flag
    & info [ "strict" ]
        ~doc:
          "Lint the inputs first ($(b,same lint)) and abort with exit 1 on \
           any lint error.")

let cache_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache" ] ~docv:"DIR"
        ~doc:
          "On-disk artefact cache for the incremental engine: analysis \
           results are fingerprinted and reused across runs whose inputs \
           are unchanged (corrupt or truncated entries are recomputed).  \
           The directory is created on demand.")

let explain_arg =
  Arg.(
    value & flag
    & info [ "explain" ]
        ~doc:
          "Print the incremental-engine statistics — cache hits and misses, \
           solves performed, rows reused — after the analysis.")

(* [--cache] and/or [--explain] opt the run into the incremental engine;
   without either flag the historical direct computation runs. *)
let make_engine cache explain =
  match (cache, explain) with
  | None, false -> None
  | _ ->
      Some
        (Engine.Pipeline.create ~cache:(Engine.Cache.create ?dir:cache ()) ())

(* Under --explain the scheduler verdict is always printed — including
   when every batch ran sequentially, which on a small model is itself
   the interesting fact ("auto chose sequential: est 1.2us/task below
   the 48us dispatch overhead"). *)
let report_stats explain engine =
  (match engine with
  | Some e when explain ->
      Format.printf "%a@." Engine.Stats.pp (Engine.Pipeline.snapshot e)
  | _ -> ());
  if explain then Format.printf "%a@." Exec.Cost.pp_decisions ();
  match engine with
  | Some e -> Engine.Pipeline.save_cost_state e
  | None -> ()

(* The `--strict` gate shared by fmea/fmeda/optimize: lint exactly the
   artefacts the analysis is about to consume. *)
let strict_ok ~strict ?diagram ?reliability ?sm ?(exclude = [])
    ?(monitored = []) () =
  (not strict)
  ||
  let input =
    {
      Lint.Input.empty with
      Lint.Input.diagram;
      reliability;
      sm;
      exclude;
      monitored;
    }
  in
  let diagnostics = Lint.Driver.run input in
  if Lint.Driver.has_errors diagnostics then begin
    prerr_string (Lint.Driver.to_text diagnostics);
    prerr_endline "error: lint errors in the inputs (--strict)";
    false
  end
  else true

let route_arg =
  let routes =
    [
      ("injection", Decisive.Api.Via_injection);
      ("ssam", Decisive.Api.Via_ssam_paths);
      ("fta", Decisive.Api.Via_fta);
    ]
  in
  Arg.(
    value
    & opt (enum routes) Decisive.Api.Via_injection
    & info [ "route" ] ~docv:"ROUTE"
        ~doc:
          "Analysis route: $(b,injection) (circuit failure injection), \
           $(b,ssam) (path algorithm on the transformed model) or $(b,fta) \
           (fault-tree cut sets).")

let with_diagram_and_models diagram_path reliability_path f =
  match load_diagram diagram_path with
  | Error m ->
      Printf.eprintf "error: %s\n" m;
      1
  | Ok diagram -> (
      match load_reliability reliability_path with
      | Error m ->
          Printf.eprintf "error: %s\n" m;
          1
      | Ok reliability -> f diagram reliability)

let report_table output table =
  Format.printf "%a@." Fmea.Table.pp table;
  Format.printf "%a@." Fmea.Metrics.pp_breakdown (Fmea.Metrics.compute table);
  (match output with
  | Some path ->
      Decisive.Api.export_fmeda ~path table;
      Format.printf "FMEDA written to %s@." path
  | None -> ());
  0

(* Daemon routing (`--connect`): ship the model texts to a running
   `same serve` and print its response instead of computing locally. *)

let connect_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "connect" ] ~docv:"SOCKET"
        ~doc:
          "Route the analysis through a running $(b,same serve) daemon on \
           this Unix socket: the warm engine reuses golden factorisations \
           and cached results across requests and sessions.")

let read_file path =
  try
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    Ok s
  with Sys_error m -> Error m

let daemon_analyse ~socket ~analysis ~diagram_path ?reliability_path ?sm_path
    ~params () =
  let ( let* ) r f =
    match r with
    | Error m ->
        Printf.eprintf "error: %s\n" m;
        1
    | Ok v -> f v
  in
  let read_opt = function
    | None -> Ok None
    | Some path -> Result.map Option.some (read_file path)
  in
  let* a_diagram = read_file diagram_path in
  let* a_reliability = read_opt reliability_path in
  let* a_sm = read_opt sm_path in
  let a =
    {
      Serve.Protocol.a_analysis = analysis;
      a_diagram;
      a_reliability;
      a_sm;
      a_params = List.filter (fun (_, v) -> v <> "") params;
    }
  in
  match Serve.Client.one_shot ~socket (Serve.Protocol.Analyse a) with
  | Error m ->
      Printf.eprintf "error: %s\n" m;
      1
  | Ok json ->
      (match Modelio.Json.(Option.bind (member "output" json) to_str) with
      | Some out -> print_string out
      | None -> ());
      (match Modelio.Json.(Option.bind (member "exit" json) to_float) with
      | Some code -> int_of_float code
      | None -> 0)

let comma ids = String.concat "," ids

(* same lint *)

let severity_conv =
  let parse s =
    match Lint.Rule.severity_of_string s with
    | Some v -> Ok v
    | None -> Error (`Msg (Printf.sprintf "unknown severity %S" s))
  in
  Arg.conv (parse, fun ppf s -> Format.pp_print_string ppf (Lint.Rule.severity_to_string s))

let lint_cmd =
  let diagram_arg =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"DIAGRAM" ~doc:"Block diagram model (.bd) to lint.")
  in
  let query_arg =
    Arg.(
      value & opt_all file []
      & info [ "q"; "query" ] ~docv:"FILE"
          ~doc:
            "Query (extraction constraint) source to typecheck (repeatable).")
  in
  let format_arg =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format" ] ~docv:"FMT"
          ~doc:"Report format: $(b,text) or $(b,json) (SARIF-style).")
  in
  let rules_arg =
    Arg.(
      value & opt_all string []
      & info [ "rules" ] ~docv:"IDS"
          ~doc:
            "Only run these rule ids (comma-separated, repeatable), e.g. \
             $(b,--rules SSAM001,REL009).")
  in
  let severity_arg =
    Arg.(
      value
      & opt (some severity_conv) None
      & info [ "severity" ] ~docv:"LEVEL"
          ~doc:
            "Minimum severity to report: $(b,error), $(b,warning) or \
             $(b,info).")
  in
  let category_arg =
    Arg.(
      value & opt_all string []
      & info [ "category" ] ~docv:"PACK"
          ~doc:
            "Only report findings from these rule packs (comma-separated, \
             repeatable): $(b,ssam), $(b,blk), $(b,rel), $(b,qry), \
             $(b,dfa) or $(b,fta).")
  in
  let list_arg =
    Arg.(
      value & flag
      & info [ "list" ] ~doc:"Print the rule catalogue and exit.")
  in
  let run list_rules format rules categories severity diagram_path
      reliability_path sm_path query_paths exclude monitored jobs connect =
    set_jobs jobs;
    match (connect, diagram_path) with
    | Some _, None ->
        Printf.eprintf "error: --connect lints a DIAGRAM (with -r/-s/-q)\n";
        2
    | Some socket, Some diagram_path -> (
        let query =
          match query_paths with
          | [] -> Ok ("", "")
          | [ path ] -> Result.map (fun src -> (path, src)) (read_file path)
          | _ -> Error "--connect takes at most one --query"
        in
        match query with
        | Error m ->
            Printf.eprintf "error: %s\n" m;
            2
        | Ok (qname, query) ->
            daemon_analyse ~socket ~analysis:Serve.Protocol.Lint ~diagram_path
              ?reliability_path ?sm_path
              ~params:
                [
                  ("exclude", comma exclude);
                  ("monitored", comma monitored);
                  ( "severity",
                    match severity with
                    | None -> ""
                    | Some s -> Lint.Rule.severity_to_string s );
                  ("query", query);
                  ("qname", qname);
                  (* Labels only: keep daemon diagnostics prefixed with
                     the same file names the local CLI would print. *)
                  ("name", diagram_path);
                  ("rname", Option.value reliability_path ~default:"");
                  ("sname", Option.value sm_path ~default:"");
                  ( "format",
                    match format with `Text -> "" | `Json -> "json" );
                ]
              ())
    | None, _ ->
    if list_rules then begin
      List.iter
        (fun (r : Lint.Rule.t) ->
          Printf.printf "%-8s %-8s %-12s %s\n" r.Lint.Rule.id
            (Lint.Rule.severity_to_string r.Lint.Rule.severity)
            (Lint.Rule.category_to_string r.Lint.Rule.category)
            r.Lint.Rule.title)
        Lint.Driver.catalogue;
      0
    end
    else begin
      let rules =
        List.concat_map (String.split_on_char ',') rules
        |> List.map String.trim
        |> List.filter (fun s -> s <> "")
      in
      let category_names =
        List.concat_map (String.split_on_char ',') categories
        |> List.map String.trim
        |> List.filter (fun s -> s <> "")
      in
      let categories, bad_categories =
        List.partition_map
          (fun s ->
            match Lint.Rule.category_of_string s with
            | Some c -> Left c
            | None -> Right s)
          category_names
      in
      let unknown =
        List.filter (fun id -> Lint.Driver.find_rule id = None) rules
      in
      match (unknown, bad_categories) with
      | id :: _, _ ->
          Printf.eprintf "error: unknown rule id '%s' (see same lint --list)\n"
            id;
          2
      | [], c :: _ ->
          Printf.eprintf
            "error: unknown category '%s' (ssam, blk, rel, qry, dfa or fta)\n"
            c;
          2
      | [], [] -> (
          let ( let* ) r f =
            match r with
            | Error m ->
                Printf.eprintf "error: %s\n" m;
                Error 1
            | Ok v -> f v
          in
          let outcome =
            let* diagram =
              match diagram_path with
              | None -> Ok None
              | Some path ->
                  Result.map (fun d -> Some (path, d)) (load_diagram path)
            in
            let* reliability =
              match (reliability_path, diagram) with
              | None, None -> Ok None
              | _ ->
                  Result.map
                    (fun r -> Some (reliability_path, r))
                    (load_reliability reliability_path)
            in
            let* sm =
              match (sm_path, diagram) with
              | None, None -> Ok None
              | _ -> Result.map (fun s -> Some (sm_path, s)) (load_sm_model sm_path)
            in
            let* queries =
              List.fold_left
                (fun acc path ->
                  match acc with
                  | Error _ as e -> e
                  | Ok qs -> (
                      try
                        let ic = open_in_bin path in
                        let n = in_channel_length ic in
                        let s = really_input_string ic n in
                        close_in ic;
                        Ok ((path, s) :: qs)
                      with Sys_error m -> Error m))
                (Ok []) query_paths
              |> Result.map List.rev
            in
            if diagram = None && reliability = None && sm = None && queries = []
            then begin
              Printf.eprintf
                "error: nothing to lint (give a DIAGRAM, -r, -s or -q)\n";
              Error 2
            end
            else
              Ok
                {
                  Lint.Input.empty with
                  Lint.Input.diagram;
                  reliability;
                  sm;
                  queries;
                  exclude;
                  monitored;
                }
          in
          match outcome with
          | Error code -> code
          | Ok input ->
              let diagnostics =
                Lint.Driver.run ~rules ~categories ?min_severity:severity
                  input
              in
              (match format with
              | `Text -> print_string (Lint.Driver.to_text diagnostics)
              | `Json ->
                  print_endline
                    (Modelio.Json.to_string ~indent:2
                       (Lint.Driver.to_json diagnostics)));
              if Lint.Driver.has_errors diagnostics then 1 else 0)
    end
  in
  let doc =
    "Statically check designs, reliability/SM models and queries against the \
     rule catalogue (exit 1 on errors)."
  in
  Cmd.v (Cmd.info "lint" ~doc)
    Term.(
      const run $ list_arg $ format_arg $ rules_arg $ category_arg
      $ severity_arg $ diagram_arg $ reliability_arg $ sm_arg $ query_arg
      $ exclude_arg $ monitored_arg $ jobs_arg $ connect_arg)

(* same diagnose *)

let diagnose_cmd =
  let output_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"SENSOR"
          ~doc:"The observation point whose deviation to explain.")
  in
  let format_arg =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json); ("sarif", `Sarif) ])
          `Text
      & info [ "format" ] ~docv:"FMT"
          ~doc:"Report format: $(b,text), $(b,json) or $(b,sarif).")
  in
  let structural_arg =
    Arg.(
      value & flag
      & info [ "structural" ]
          ~doc:
            "Skip the numeric verification step: report every structural \
             candidate instead of injecting each one against the golden \
             run.")
  in
  let run diagram_path output reliability_path exclude monitored format
      structural jobs sched connect =
    set_jobs jobs;
    set_sched sched;
    match connect with
    | Some socket ->
        daemon_analyse ~socket ~analysis:Serve.Protocol.Diagnose ~diagram_path
          ?reliability_path
          ~params:
            [
              ("output", output);
              ("exclude", comma exclude);
              ("monitored", comma monitored);
              ("structural", if structural then "true" else "");
              ( "format",
                match format with
                | `Text -> ""
                | `Json -> "json"
                | `Sarif -> "sarif" );
            ]
          ()
    | None ->
    let ( let* ) r f =
      match r with
      | Error m ->
          Printf.eprintf "error: %s\n" m;
          1
      | Ok v -> f v
    in
    let* diagram = load_diagram diagram_path in
    let* reliability = load_reliability reliability_path in
    let model =
      Dataflow.Model.of_diagram ~monitored ~reliability diagram
    in
    let verify =
      if structural then None
      else
        let options =
          { Fmea.Injection_fmea.default_options with exclude }
        in
        match
          Dataflow.Diagnose.circuit_verifier ~options ~reliability ~output
            diagram
        with
        | Ok v -> Some v
        | Error why ->
            Printf.eprintf
              "warning: numeric verification unavailable (%s); reporting \
               structural candidates\n"
              why;
            None
    in
    match Dataflow.Diagnose.diagnose ?verify model ~output with
    | Error m ->
        Printf.eprintf "error: %s\n" m;
        2
    | Ok report ->
        (match format with
        | `Text -> print_string (Dataflow.Diagnose.to_text report)
        | `Json ->
            print_endline
              (Modelio.Json.to_string ~indent:2
                 (Dataflow.Diagnose.to_json report))
        | `Sarif ->
            print_endline
              (Modelio.Json.to_string ~indent:2
                 (Dataflow.Diagnose.to_sarif report)));
        if report.Dataflow.Diagnose.agree then 0 else 1
  in
  let doc =
    "Explain an observed output deviation: backward propagation proposes \
     the failure modes that can reach the output, numeric fault injection \
     confirms or refutes each, and the minimal single/double-point \
     explanations are reported (the inverse of $(b,same fmea))."
  in
  Cmd.v (Cmd.info "diagnose" ~doc)
    Term.(
      const run $ diagram_arg $ output_arg $ reliability_arg $ exclude_arg
      $ monitored_arg $ format_arg $ structural_arg $ jobs_arg $ sched_arg
      $ connect_arg)

(* same fmea *)

let batch_arg =
  Arg.(
    value & flag
    & info [ "batch" ]
        ~doc:
          "Batch-fleet mode: analyse every $(i,DIAGRAM) with one warm \
           engine.  Variants sharing a circuit design share golden \
           factorisations, and all remaining injections run as a single \
           scheduled pool batch; prints a per-variant and fleet summary \
           instead of full tables.")

let diagrams_arg =
  Arg.(
    non_empty
    & pos_all file []
    & info [] ~docv:"DIAGRAM"
        ~doc:
          "Block diagram model (.bd text format); repeatable with \
           $(b,--batch).")

let load_diagrams paths =
  List.fold_left
    (fun acc path ->
      match acc with
      | Error _ as e -> e
      | Ok vs -> Result.map (fun d -> (path, d) :: vs) (load_diagram path))
    (Ok []) paths
  |> Result.map List.rev

(* The shared front half of `same fmea --batch` / `same fmeda --batch`:
   load the fleet, gate it on --strict, run it through one warm engine.
   [k] receives the engine, the loaded variants (label = file path, in
   input order) and the fleet summary. *)
let with_fleet paths reliability_path exclude monitored strict cache explain k
    =
  match load_diagrams paths with
  | Error m ->
      Printf.eprintf "error: %s\n" m;
      1
  | Ok variants -> (
      match load_reliability reliability_path with
      | Error m ->
          Printf.eprintf "error: %s\n" m;
          1
      | Ok reliability ->
          if
            strict
            && not
                 (List.for_all
                    (fun (path, diagram) ->
                      strict_ok ~strict ~diagram:(path, diagram)
                        ~reliability:(reliability_path, reliability) ~exclude
                        ~monitored ())
                    variants)
          then 1
          else begin
            let options =
              {
                Fmea.Injection_fmea.default_options with
                exclude;
                monitored_sensors =
                  (match monitored with [] -> None | ids -> Some ids);
              }
            in
            let engine =
              match make_engine cache explain with
              | Some e -> e
              | None -> Engine.Pipeline.create ()
            in
            match
              Engine.Batch.run_fmea engine ~options variants reliability
            with
            | exception Fmea.Injection_fmea.Golden_run_failed m ->
                Printf.eprintf "error: golden simulation failed: %s\n" m;
                1
            | summary -> k engine variants reliability summary
          end)

let fmea_cmd =
  let run_single diagram_path reliability_path exclude monitored output route
      strict cache explain =
    with_diagram_and_models diagram_path reliability_path
      (fun diagram reliability ->
        if
          not
            (strict_ok ~strict ~diagram:(diagram_path, diagram)
               ~reliability:(reliability_path, reliability) ~exclude ~monitored
               ())
        then 1
        else
          let monitored_sensors =
            match monitored with [] -> None | ids -> Some ids
          in
          let engine = make_engine cache explain in
          match
            Decisive.Api.analyse ?engine ~route ~exclude ?monitored_sensors
              diagram reliability
          with
          | table ->
              let code = report_table output table in
              report_stats explain engine;
              code
          | exception Fmea.Injection_fmea.Golden_run_failed m ->
              Printf.eprintf "error: golden simulation failed: %s\n" m;
              1
          | exception Fta.From_ssam.No_paths c ->
              Printf.eprintf "error: no input-output paths through %s\n" c;
              1)
  in
  let run diagram_paths reliability_path exclude monitored output route strict
      jobs sched cache explain batch connect =
    set_jobs jobs;
    set_sched sched;
    match (connect, diagram_paths) with
    | Some socket, [ diagram_path ] ->
        daemon_analyse ~socket ~analysis:Serve.Protocol.Fmea ~diagram_path
          ?reliability_path
          ~params:
            [ ("exclude", comma exclude); ("monitored", comma monitored) ]
          ()
    | Some _, _ ->
        Printf.eprintf "error: --connect takes a single DIAGRAM\n";
        2
    | None, _ ->
    if batch then
      if route <> Decisive.Api.Via_injection then begin
        Printf.eprintf "error: --batch supports only --route injection\n";
        2
      end
      else
        with_fleet diagram_paths reliability_path exclude monitored strict
          cache explain (fun engine _variants _reliability summary ->
            Format.printf "%a@." Engine.Batch.pp_summary summary;
            (match output with
            | Some path ->
                Modelio.Csv.write_file path (Engine.Batch.to_csv summary);
                Format.printf "fleet summary written to %s@." path
            | None -> ());
            report_stats explain (Some engine);
            0)
    else
      match diagram_paths with
      | [ diagram_path ] ->
          run_single diagram_path reliability_path exclude monitored output
            route strict cache explain
      | _ ->
          Printf.eprintf
            "error: analysing several DIAGRAMs requires --batch\n";
          2
  in
  let doc = "Automated FMEA (DECISIVE Step 4a)." in
  Cmd.v
    (Cmd.info "fmea" ~doc)
    Term.(
      const run $ diagrams_arg $ reliability_arg $ exclude_arg $ monitored_arg
      $ output_arg $ route_arg $ strict_arg $ jobs_arg $ sched_arg $ cache_arg
      $ explain_arg $ batch_arg $ connect_arg)

(* same fmeda *)

let target_arg =
  Arg.(
    value
    & opt target_conv Ssam.Requirement.ASIL_B
    & info [ "t"; "target" ] ~docv:"LEVEL"
        ~doc:"Target integrity level (QM, ASIL-A..D, SIL1..4).")

let fmeda_cmd =
  let run_single diagram_path reliability_path sm_path exclude monitored
      output target strict cache explain =
    with_diagram_and_models diagram_path reliability_path
      (fun diagram reliability ->
        match load_sm_model sm_path with
        | Error m ->
            Printf.eprintf "error: %s\n" m;
            1
        | Ok sm_model when
            not
              (strict_ok ~strict ~diagram:(diagram_path, diagram)
                 ~reliability:(reliability_path, reliability)
                 ~sm:(sm_path, sm_model) ~exclude ~monitored ()) ->
            1
        | Ok sm_model -> (
            let monitored_sensors =
              match monitored with [] -> None | ids -> Some ids
            in
            let engine = make_engine cache explain in
            match
              Decisive.Api.analyse ?engine ~exclude ?monitored_sensors diagram
                reliability
            with
            | exception Fmea.Injection_fmea.Golden_run_failed m ->
                Printf.eprintf "error: golden simulation failed: %s\n" m;
                1
            | table ->
                let conversion = Blockdiag.To_netlist.convert diagram in
                let refinement =
                  Decisive.Api.refine ?engine ~target
                    ~component_types:conversion.Blockdiag.To_netlist.block_types
                    table sm_model
                in
                let code = report_table output refinement.Decisive.Api.refined_table in
                Format.printf "%a@."
                  (fun ppf () ->
                    Fmea.Asil.pp_verdict ppf ~target
                      ~spfm:refinement.Decisive.Api.achieved_spfm)
                  ();
                (match refinement.Decisive.Api.chosen with
                | Some c ->
                    List.iter
                      (fun (d : Fmea.Fmeda.deployment) ->
                        Format.printf "deploy %s on %s/%s@."
                          d.Fmea.Fmeda.mechanism.Reliability.Sm_model.sm_name
                          d.Fmea.Fmeda.target_component
                          d.Fmea.Fmeda.target_failure_mode)
                      c.Optimize.Search.deployments
                | None -> Format.printf "no deployment meets the target@.");
                report_stats explain engine;
                code))
  in
  let run diagram_paths reliability_path sm_path exclude monitored output
      target strict jobs sched cache explain batch connect =
    set_jobs jobs;
    set_sched sched;
    match (connect, diagram_paths) with
    | Some socket, [ diagram_path ] ->
        daemon_analyse ~socket ~analysis:Serve.Protocol.Fmeda ~diagram_path
          ?reliability_path ?sm_path
          ~params:
            [
              ("exclude", comma exclude);
              ("monitored", comma monitored);
              ( "target",
                Ssam.Requirement.integrity_level_to_string target );
            ]
          ()
    | Some _, _ ->
        Printf.eprintf "error: --connect takes a single DIAGRAM\n";
        2
    | None, _ ->
    if batch then
      match load_sm_model sm_path with
      | Error m ->
          Printf.eprintf "error: %s\n" m;
          1
      | Ok sm_model ->
          with_fleet diagram_paths reliability_path exclude monitored strict
            cache explain (fun engine variants _reliability summary ->
              Format.printf "%a@." Engine.Batch.pp_summary summary;
              (* Step 4b per variant, still against the shared warm
                 engine: search results cache by table fingerprint, so
                 variants sharing a design also share the search. *)
              let code =
                List.fold_left2
                  (fun worst (_, diagram)
                       (e : Engine.Batch.fmea_entry) ->
                    let conversion = Blockdiag.To_netlist.convert diagram in
                    let refinement =
                      Decisive.Api.refine ~engine ~target
                        ~component_types:
                          conversion.Blockdiag.To_netlist.block_types
                        e.Engine.Batch.b_table sm_model
                    in
                    Format.printf "%-24s %a@." e.Engine.Batch.b_label
                      (fun ppf () ->
                        Fmea.Asil.pp_verdict ppf ~target
                          ~spfm:refinement.Decisive.Api.achieved_spfm)
                      ();
                    match refinement.Decisive.Api.chosen with
                    | Some _ -> worst
                    | None -> 1)
                  0 variants summary.Engine.Batch.f_entries
              in
              (match output with
              | Some path ->
                  Modelio.Csv.write_file path (Engine.Batch.to_csv summary);
                  Format.printf "fleet summary written to %s@." path
              | None -> ());
              report_stats explain (Some engine);
              code)
    else
      match diagram_paths with
      | [ diagram_path ] ->
          run_single diagram_path reliability_path sm_path exclude monitored
            output target strict cache explain
      | _ ->
          Printf.eprintf
            "error: analysing several DIAGRAMs requires --batch\n";
          2
  in
  let doc = "Automated FMEDA with safety-mechanism search (Steps 4a + 4b)." in
  Cmd.v
    (Cmd.info "fmeda" ~doc)
    Term.(
      const run $ diagrams_arg $ reliability_arg $ sm_arg $ exclude_arg
      $ monitored_arg $ output_arg $ target_arg $ strict_arg $ jobs_arg
      $ sched_arg $ cache_arg $ explain_arg $ batch_arg $ connect_arg)

(* same optimize *)

let optimize_cmd =
  let run diagram_path reliability_path sm_path exclude target strict jobs
      cache explain =
    set_jobs jobs;
    with_diagram_and_models diagram_path reliability_path
      (fun diagram reliability ->
        match load_sm_model sm_path with
        | Error m ->
            Printf.eprintf "error: %s\n" m;
            1
        | Ok sm_model when
            not
              (strict_ok ~strict ~diagram:(diagram_path, diagram)
                 ~reliability:(reliability_path, reliability)
                 ~sm:(sm_path, sm_model) ~exclude ()) ->
            1
        | Ok sm_model ->
            let engine = make_engine cache explain in
            let table =
              Decisive.Api.analyse ?engine ~exclude diagram reliability
            in
            let conversion = Blockdiag.To_netlist.convert diagram in
            let refinement =
              Decisive.Api.refine ?engine ~target
                ~component_types:conversion.Blockdiag.To_netlist.block_types
                table sm_model
            in
            Format.printf "Pareto front (cost vs SPFM):@.";
            List.iter
              (fun (c : Optimize.Search.candidate) ->
                Format.printf "  cost %6.1f h   SPFM %6.2f%%   (%d mechanisms)@."
                  c.Optimize.Search.cost c.Optimize.Search.spfm_pct
                  (List.length c.Optimize.Search.deployments))
              refinement.Decisive.Api.pareto_front;
            (match refinement.Decisive.Api.chosen with
            | Some c ->
                Format.printf "chosen: cost %.1f h, SPFM %.2f%%@."
                  c.Optimize.Search.cost c.Optimize.Search.spfm_pct
            | None -> Format.printf "no candidate meets the target@.");
            report_stats explain engine;
            0)
  in
  let doc = "Search the cost/SPFM Pareto front of SM deployments." in
  Cmd.v
    (Cmd.info "optimize" ~doc)
    Term.(
      const run $ diagram_arg $ reliability_arg $ sm_arg $ exclude_arg
      $ target_arg $ strict_arg $ jobs_arg $ cache_arg $ explain_arg)

(* same transform *)

let transform_cmd =
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the round-tripped diagram (default: print summary).")
  in
  let run diagram_path out =
    match load_diagram diagram_path with
    | Error m ->
        Printf.eprintf "error: %s\n" m;
        1
    | Ok diagram ->
        let package = Blockdiag.Transform.to_ssam diagram in
        let back = Blockdiag.Transform.to_diagram package in
        let lossless = Blockdiag.Diagram.equal diagram back in
        Format.printf
          "transformed '%s': %d SSAM elements, round-trip lossless: %b@."
          diagram.Blockdiag.Diagram.diagram_name
          (Ssam.Architecture.count_package_elements package)
          lossless;
        (match out with
        | Some path ->
            Blockdiag.Text_format.write_file path back;
            Format.printf "round-tripped diagram written to %s@." path
        | None -> ());
        if lossless then 0 else 1
  in
  let doc = "Transform a diagram to SSAM and verify the lossless round-trip." in
  Cmd.v (Cmd.info "transform" ~doc) Term.(const run $ diagram_arg $ out_arg)

(* same fta *)

let fta_cmd =
  let diagram_pos =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"DIAGRAM" ~doc:"Block diagram model (.bd text format).")
  in
  let from_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "from" ] ~docv:"DIAGRAM"
          ~doc:
            "Block diagram to lower through the five-step structural \
             pipeline (alternative to the positional argument).")
  in
  let engine_arg =
    Arg.(
      value
      & opt (enum [ ("auto", `Auto); ("bdd", `Bdd); ("mocus", `Mocus) ]) `Auto
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:
            "Minimal-cut-set engine: $(b,auto) (MOCUS, falling back to the \
             BDD past the expansion cap), $(b,bdd) or $(b,mocus).")
  in
  let card_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-cardinality" ] ~docv:"K"
          ~doc:"Only report minimal cut sets of at most $(docv) events.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:
            "Also write the analysis to $(docv): $(b,.dot) exports Graphviz, \
             $(b,.xml) exports Open-PSA MEF, any other suffix gets the text \
             report.")
  in
  let dot_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "dot" ] ~docv:"FILE" ~doc:"Write the tree as Graphviz dot.")
  in
  let psa_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "open-psa" ] ~docv:"FILE"
          ~doc:"Write the tree as Open-PSA MEF XML.")
  in
  let run pos_path from_path reliability_path engine max_card out dot psa
      connect =
    match (match from_path with Some p -> Some p | None -> pos_path) with
    | None ->
        Printf.eprintf "error: give a DIAGRAM argument or --from FILE\n";
        2
    | Some diagram_path when connect <> None ->
        let socket = Option.get connect in
        daemon_analyse ~socket ~analysis:Serve.Protocol.Fta ~diagram_path
          ?reliability_path
          ~params:
            [
              ( "engine",
                match engine with
                | `Auto -> ""
                | `Bdd -> "bdd"
                | `Mocus -> "mocus" );
              ( "max_cardinality",
                match max_card with
                | None -> ""
                | Some k -> string_of_int k );
            ]
          ()
    | Some path ->
        with_diagram_and_models path reliability_path
          (fun diagram reliability ->
            let name = diagram.Blockdiag.Diagram.diagram_name in
            let lowered =
              match Fta.From_ssam.of_diagram ~reliability diagram with
              | tree -> Ok (tree, `Structural)
              | exception Fta.From_ssam.No_paths c -> Error c
              | exception Fta.From_ssam.Cyclic _ -> (
                  (* cycles have no well-founded structural lowering *)
                  let root = Decisive.Api.functional_root ~reliability diagram in
                  match Fta.From_ssam.generate root with
                  | tree -> Ok (tree, `Paths)
                  | exception Fta.From_ssam.No_paths c -> Error c)
            in
            match lowered with
            | Error c ->
                Printf.eprintf "error: no input-output paths through %s\n" c;
                1
            | Ok (tree, route) -> (
                match Fta.Cut_sets.minimal ~engine tree with
                | exception Invalid_argument m ->
                    Printf.eprintf "error: %s (retry with --engine bdd)\n" m;
                    1
                | all_sets ->
                    let buf = Buffer.create 1024 in
                    let bpf fmt = Printf.bprintf buf fmt in
                    bpf "%s\n" (Format.asprintf "%a" Fta.Fault_tree.pp_ascii tree);
                    (match route with
                    | `Structural -> ()
                    | `Paths ->
                        bpf
                          "note: cyclic connection structure — lowered by \
                           path enumeration\n");
                    let sets =
                      match max_card with
                      | None -> all_sets
                      | Some k ->
                          List.filter (fun s -> List.length s <= k) all_sets
                    in
                    bpf "minimal cut sets (%d%s):\n" (List.length sets)
                      (match max_card with
                      | None -> ""
                      | Some k ->
                          Printf.sprintf " of %d, cardinality <= %d"
                            (List.length all_sets) k);
                    List.iter
                      (fun s -> bpf "  {%s}\n" (String.concat ", " s))
                      sets;
                    let probs = Fta.Quant.event_probabilities tree in
                    bpf "top event (BDD-exact, 10,000 h): %.3e\n"
                      (Fta.Quant.top_probability_exact tree probs);
                    bpf "top event (rare-event bound):    %.3e\n"
                      (Fta.Quant.rare_event_bound all_sets probs);
                    let top5 xs = List.filteri (fun i _ -> i < 5) xs in
                    List.iter
                      (fun (e, v) -> bpf "  birnbaum       %-28s %.3e\n" e v)
                      (top5 (Fta.Quant.birnbaum tree probs));
                    List.iter
                      (fun (e, v) -> bpf "  fussell-vesely %-28s %.3e\n" e v)
                      (top5 (Fta.Quant.fussell_vesely tree probs));
                    print_string (Buffer.contents buf);
                    (match out with
                    | Some path when Filename.check_suffix path ".dot" ->
                        Fta.Export.save_dot ~path ~name tree;
                        Format.printf "dot written to %s@." path
                    | Some path when Filename.check_suffix path ".xml" ->
                        Fta.Export.save_open_psa ~path ~model_name:name tree;
                        Format.printf "Open-PSA written to %s@." path
                    | Some path ->
                        let oc = open_out path in
                        output_string oc (Buffer.contents buf);
                        close_out oc;
                        Format.printf "report written to %s@." path
                    | None -> ());
                    (match dot with
                    | Some path ->
                        Fta.Export.save_dot ~path ~name tree;
                        Format.printf "dot written to %s@." path
                    | None -> ());
                    (match psa with
                    | Some path ->
                        Fta.Export.save_open_psa ~path ~model_name:name tree;
                        Format.printf "Open-PSA written to %s@." path
                    | None -> ());
                    0))
  in
  let doc =
    "Generate and analyse the fault tree of a design (structural lowering, \
     BDD or MOCUS cut sets, exact quantification)."
  in
  Cmd.v (Cmd.info "fta" ~doc)
    Term.(
      const run $ diagram_pos $ from_arg $ reliability_arg $ engine_arg
      $ card_arg $ out_arg $ dot_arg $ psa_arg $ connect_arg)

(* same assess *)

let assess_cmd =
  let model_pos =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"MODEL"
          ~doc:
            "Model to assess: a block diagram (.bd) or an Open-PSA MEF \
             fault tree (.xml).")
  in
  let from_arg =
    Arg.(
      value
      & opt
          (enum
             [ ("auto", `Auto); ("fta", `Fta); ("ssam", `Ssam);
               ("diagram", `Diagram) ])
          `Auto
      & info [ "from" ] ~docv:"KIND"
          ~doc:
            "How to read MODEL: $(b,fta) parses Open-PSA MEF XML, \
             $(b,diagram) lowers a block diagram structurally, $(b,ssam) \
             lowers through the transformed SSAM view (path enumeration). \
             $(b,auto) picks by file suffix.")
  in
  let mission_arg =
    Arg.(
      value
      & opt float Assess.Mc.default.Assess.Mc.mission_hours
      & info [ "mission-hours" ] ~docv:"H"
          ~doc:"Mission time in hours for the exponential failure model.")
  in
  let trials_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "trials" ] ~docv:"N"
          ~doc:
            "Trial budget (rounded up to whole replicates). Mutually \
             exclusive with $(b,--rel-precision).")
  in
  let precision_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "rel-precision" ] ~docv:"P"
          ~doc:
            "Adaptive budget: sample until the 99% confidence half-width \
             falls below $(docv) times the estimate.")
  in
  let method_arg =
    Arg.(
      value
      & opt
          (enum
             [ ("direct", Assess.Mc.Direct);
               ("importance", Assess.Mc.Importance);
               ("stratified", Assess.Mc.Stratified) ])
          Assess.Mc.Direct
      & info [ "method" ] ~docv:"METHOD"
          ~doc:
            "Sampling scheme: $(b,direct), $(b,importance) (rate-tilted \
             with likelihood-ratio weights, for rare top events) or \
             $(b,stratified).")
  in
  let seed_arg =
    Arg.(
      value
      & opt int Assess.Mc.default.Assess.Mc.seed
      & info [ "seed" ] ~docv:"SEED"
          ~doc:
            "Master RNG seed. Results are bit-identical for a fixed seed \
             across every $(b,SAME_JOBS) setting.")
  in
  let out_arg =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "o"; "output" ] ~docv:"FORMAT"
          ~doc:"Report format: $(b,text) or $(b,json).")
  in
  let check_arg =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Exit non-zero unless the BDD-exact top probability was \
             computed and lies inside the Monte-Carlo confidence \
             interval.")
  in
  let lower_diagram path reliability_path via_ssam =
    match load_diagram path with
    | Error m -> Error m
    | Ok diagram -> (
        match load_reliability reliability_path with
        | Error m -> Error m
        | Ok reliability -> (
            let by_paths () =
              let root = Decisive.Api.functional_root ~reliability diagram in
              match Fta.From_ssam.generate root with
              | tree -> Ok tree
              | exception Fta.From_ssam.No_paths c ->
                  Error
                    (Printf.sprintf "no input-output paths through %s" c)
            in
            if via_ssam then by_paths ()
            else
              match Fta.From_ssam.of_diagram ~reliability diagram with
              | tree -> Ok tree
              | exception Fta.From_ssam.No_paths c ->
                  Error
                    (Printf.sprintf "no input-output paths through %s" c)
              | exception Fta.From_ssam.Cyclic _ -> by_paths ()))
  in
  let load_tree path from reliability_path =
    let kind =
      match from with
      | `Auto ->
          if Filename.check_suffix path ".xml" then `Fta else `Diagram
      | `Fta -> `Fta
      | `Ssam -> `Ssam
      | `Diagram -> `Diagram
    in
    match kind with
    | `Fta -> (
        try Ok (Fta.Export.load_open_psa ~path) with
        | Fta.Export.Format_error m ->
            Error (Printf.sprintf "%s: %s" path m)
        | Sys_error m -> Error m
        | Modelio.Xml.Parse_error { pos; message } ->
            Error (Printf.sprintf "%s: at offset %d: %s" path pos message))
    | `Diagram -> lower_diagram path reliability_path false
    | `Ssam -> lower_diagram path reliability_path true
  in
  let report_json (r : Assess.Mc.report) =
    let open Modelio.Json in
    let num x = Number x in
    let opt = function Some x -> Number x | None -> Null in
    Object
      [
        ("top_probability", num r.Assess.Mc.top_probability);
        ("ci_halfwidth", num r.Assess.Mc.halfwidth);
        ("trials", num (float_of_int r.Assess.Mc.trials));
        ("elapsed_s", num r.Assess.Mc.elapsed_s);
        ("trials_per_sec", num r.Assess.Mc.trials_per_sec);
        ("sampling", String (Assess.Mc.sampling_to_string r.Assess.Mc.sampling));
        ("mission_hours", num r.Assess.Mc.mission_hours);
        ("instructions", num (float_of_int r.Assess.Mc.instrs));
        ("exact", opt r.Assess.Mc.exact);
        ("exact_delta", opt r.Assess.Mc.exact_delta);
        ( "events",
          List
            (List.map
               (fun (e : Assess.Mc.event_report) ->
                 Object
                   [
                     ("id", String e.Assess.Mc.event_id);
                     ("probability", num e.Assess.Mc.probability);
                     ("importance", num e.Assess.Mc.importance);
                   ])
               r.Assess.Mc.events) );
      ]
  in
  let report_text (r : Assess.Mc.report) =
    Printf.printf "top event (%s, %g h mission): %.6e +/- %.1e (99%% CI)\n"
      (Assess.Mc.sampling_to_string r.Assess.Mc.sampling)
      r.Assess.Mc.mission_hours r.Assess.Mc.top_probability
      r.Assess.Mc.halfwidth;
    Printf.printf "trials: %d  (%.1f Mtrials/s, %.3f s, %d instructions)\n"
      r.Assess.Mc.trials
      (r.Assess.Mc.trials_per_sec /. 1e6)
      r.Assess.Mc.elapsed_s r.Assess.Mc.instrs;
    (match (r.Assess.Mc.exact, r.Assess.Mc.exact_delta) with
    | Some exact, Some delta ->
        Printf.printf "BDD-exact cross-check: %.6e  delta %.1e  %s\n" exact
          delta
          (if delta <= r.Assess.Mc.halfwidth then "(inside CI)"
           else "(OUTSIDE CI)")
    | _ -> ());
    if r.Assess.Mc.events <> [] then begin
      Printf.printf "event importance (Fussell-Vesely style):\n";
      List.iter
        (fun (e : Assess.Mc.event_report) ->
          Printf.printf "  %-32s p=%.3e  importance %.3f\n"
            e.Assess.Mc.event_id e.Assess.Mc.probability
            e.Assess.Mc.importance)
        r.Assess.Mc.events
    end
  in
  let run path from reliability_path mission trials precision method_ seed out
      check connect =
    match path with
    | None ->
        Printf.eprintf "error: give a MODEL argument\n";
        2
    | Some diagram_path when connect <> None ->
        if Filename.check_suffix diagram_path ".xml" then begin
          Printf.eprintf
            "error: --connect assesses block diagrams (the daemon lowers \
             them); load Open-PSA trees locally\n";
          2
        end
        else
          let socket = Option.get connect in
          daemon_analyse ~socket ~analysis:Serve.Protocol.Assess
            ~diagram_path ?reliability_path
            ~params:
              [
                ("mission_hours", Printf.sprintf "%.17g" mission);
                ( "trials",
                  match trials with
                  | None -> ""
                  | Some t -> string_of_int t );
                ( "rel_precision",
                  match precision with
                  | None -> ""
                  | Some p -> Printf.sprintf "%.17g" p );
                ( "method",
                  match method_ with
                  | Assess.Mc.Direct -> "direct"
                  | Assess.Mc.Importance -> "importance"
                  | Assess.Mc.Stratified -> "stratified" );
                ("seed", string_of_int seed);
                ("check", if check then "true" else "");
              ]
            ()
    | Some path -> (
        match load_tree path from reliability_path with
        | Error m ->
            Printf.eprintf "error: %s\n" m;
            1
        | Ok tree -> (
            let config =
              {
                Assess.Mc.default with
                Assess.Mc.mission_hours = mission;
                sampling = method_;
                trials;
                rel_precision = precision;
                seed;
              }
            in
            match Assess.Mc.run config tree with
            | exception Invalid_argument m ->
                Printf.eprintf "error: %s\n" m;
                1
            | report ->
                (match out with
                | `Text -> report_text report
                | `Json ->
                    print_endline
                      (Modelio.Json.to_string ~indent:2 (report_json report)));
                if check then
                  match report.Assess.Mc.exact_delta with
                  | Some delta when delta <= report.Assess.Mc.halfwidth -> 0
                  | Some _ ->
                      Printf.eprintf
                        "error: estimate outside the 99%% CI of the \
                         BDD-exact probability\n";
                      1
                  | None ->
                      Printf.eprintf
                        "error: --check needs the BDD-exact cross-check \
                         (tree too large)\n";
                      1
                else 0))
  in
  let doc =
    "Bit-parallel Monte-Carlo safety assessment: estimate the mission \
     failure probability of a fault tree (or a design lowered to one) at \
     millions of trials per second, with confidence intervals and a \
     BDD-exact cross-check on tractable trees."
  in
  Cmd.v (Cmd.info "assess" ~doc)
    Term.(
      const run $ model_pos $ from_arg $ reliability_arg $ mission_arg
      $ trials_arg $ precision_arg $ method_arg $ seed_arg $ out_arg
      $ check_arg $ connect_arg)

(* same assure *)

let assure_cmd =
  let csv_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FMEDA_CSV" ~doc:"FMEDA table produced by $(b,same fmea -o).")
  in
  let system_arg =
    Arg.(
      value & opt string "system"
      & info [ "n"; "name" ] ~docv:"NAME" ~doc:"System name for the case.")
  in
  let dot_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "dot" ] ~docv:"FILE"
          ~doc:"Write the goal structure as Graphviz dot, coloured by verdict.")
  in
  let run csv system target dot =
    let case =
      Decisive.Api.assurance_case_for ~system ~target ~fmeda_csv:csv
    in
    let report = Assurance.Eval.evaluate case in
    Format.printf "%a@." Assurance.Eval.pp_report report;
    print_string (Assurance.Gsn_render.to_text ~report case);
    (match dot with
    | Some path ->
        Assurance.Gsn_render.save_dot ~path ~report case;
        Format.printf "dot written to %s@." path
    | None -> ());
    match report.Assurance.Eval.overall with
    | Assurance.Eval.Holds -> 0
    | Assurance.Eval.Fails | Assurance.Eval.Undetermined -> 1
  in
  let doc = "Build and evaluate the assurance case over an FMEDA artefact." in
  Cmd.v
    (Cmd.info "assure" ~doc)
    Term.(const run $ csv_arg $ system_arg $ target_arg $ dot_arg)

(* same run (full DECISIVE loop) *)

let run_cmd =
  let name_arg =
    Arg.(
      value & opt string "system"
      & info [ "n"; "name" ] ~docv:"NAME" ~doc:"Process/system name.")
  in
  let run diagram_path reliability_path sm_path exclude monitored target name
      jobs =
    set_jobs jobs;
    with_diagram_and_models diagram_path reliability_path
      (fun diagram reliability ->
        match load_sm_model sm_path with
        | Error m ->
            Printf.eprintf "error: %s\n" m;
            1
        | Ok sm_model ->
            let monitored_sensors =
              match monitored with [] -> None | ids -> Some ids
            in
            let process, table =
              Decisive.Api.run_decisive ~name ~target ~exclude
                ?monitored_sensors diagram reliability sm_model
            in
            Format.printf "%a@." Decisive.Process.pp_history process;
            Format.printf "%a@." Fmea.Table.pp table;
            if Decisive.Process.is_complete process then 0 else 1)
  in
  let doc = "Run the full DECISIVE loop (Fig. 1) to a safety concept." in
  Cmd.v
    (Cmd.info "run" ~doc)
    Term.(
      const run $ diagram_arg $ reliability_arg $ sm_arg $ exclude_arg
      $ monitored_arg $ target_arg $ name_arg $ jobs_arg)

(* same simulate *)

let simulate_cmd =
  let source_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "source" ] ~docv:"ID"
          ~doc:"Source element to drive with a sine disturbance.")
  in
  let amplitude_arg =
    Arg.(
      value & opt float 0.3
      & info [ "amplitude" ] ~docv:"V" ~doc:"Disturbance amplitude.")
  in
  let hz_arg =
    Arg.(
      value & opt float 5000.0
      & info [ "hz" ] ~docv:"HZ" ~doc:"Disturbance frequency.")
  in
  let dt_arg =
    Arg.(value & opt float 1e-6 & info [ "dt" ] ~docv:"S" ~doc:"Time step.")
  in
  let duration_arg =
    Arg.(
      value & opt float 5e-3
      & info [ "duration" ] ~docv:"S" ~doc:"Simulated duration.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"CSV"
          ~doc:"Write all node-voltage traces as CSV.")
  in
  let run diagram_path source amplitude hz dt duration out =
    match load_diagram diagram_path with
    | Error m ->
        Printf.eprintf "error: %s\n" m;
        1
    | Ok diagram -> (
        let conversion = Blockdiag.To_netlist.convert diagram in
        let nl = conversion.Blockdiag.To_netlist.netlist in
        let waveforms =
          match source with
          | None -> []
          | Some id ->
              let nominal =
                match Circuit.Netlist.find nl id with
                | Some { Circuit.Element.kind = Circuit.Element.Vsource v; _ } -> v
                | Some { Circuit.Element.kind = Circuit.Element.Isource i; _ } -> i
                | Some _ | None -> 0.0
              in
              [
                ( id,
                  fun t ->
                    nominal +. (amplitude *. sin (2.0 *. Float.pi *. hz *. t)) );
              ]
        in
        match Circuit.Transient.simulate ~waveforms nl ~dt ~duration with
        | Error e ->
            Format.eprintf "error: %a@." Circuit.Dc.pp_error e;
            1
        | Ok r ->
            let times = Circuit.Transient.times r in
            let nodes = Circuit.Netlist.nodes nl in
            Printf.printf "%d steps over %gs; final node voltages:\n"
              (Array.length times - 1)
              duration;
            List.iter
              (fun n ->
                let trace = Circuit.Transient.node_voltage r n in
                Printf.printf "  %-8s %+10.5f V   ripple %8.5f V\n" n
                  (Circuit.Transient.final_value trace)
                  (Circuit.Transient.ripple trace))
              nodes;
            (match out with
            | Some path ->
                let header = "t" :: nodes in
                let rows =
                  List.init (Array.length times) (fun i ->
                      Printf.sprintf "%g" times.(i)
                      :: List.map
                           (fun n ->
                             Printf.sprintf "%g"
                               (Circuit.Transient.node_voltage r n).(i))
                           nodes)
                in
                Modelio.Csv.write_file path (header :: rows);
                Printf.printf "traces written to %s\n" path
            | None -> ());
            0)
  in
  let doc = "Transient (time-domain) simulation of a design." in
  Cmd.v
    (Cmd.info "simulate" ~doc)
    Term.(
      const run $ diagram_arg $ source_arg $ amplitude_arg $ hz_arg $ dt_arg
      $ duration_arg $ out_arg)

(* same bode *)

let bode_cmd =
  let source_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "source" ] ~docv:"ID" ~doc:"Source carrying the AC stimulus.")
  in
  let sensor_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "sensor" ] ~docv:"ID"
          ~doc:"Sensor whose transfer function to print (default: all).")
  in
  let from_arg =
    Arg.(value & opt float 10.0 & info [ "from" ] ~docv:"HZ" ~doc:"Sweep start.")
  in
  let to_arg =
    Arg.(
      value & opt float 100_000.0 & info [ "to" ] ~docv:"HZ" ~doc:"Sweep end.")
  in
  let points_arg =
    Arg.(value & opt int 31 & info [ "points" ] ~docv:"N" ~doc:"Sweep points.")
  in
  let run diagram_path source sensor from_hz to_hz points =
    match load_diagram diagram_path with
    | Error m ->
        Printf.eprintf "error: %s\n" m;
        1
    | Ok diagram -> (
        let conversion = Blockdiag.To_netlist.convert diagram in
        let nl = conversion.Blockdiag.To_netlist.netlist in
        let freqs = Circuit.Ac.log_space ~from_hz ~to_hz ~points in
        match Circuit.Ac.analyse ~source nl ~frequencies_hz:freqs with
        | Error e ->
            Format.eprintf "error: %a@." Circuit.Dc.pp_error e;
            1
        | Ok sweep ->
            let sensors =
              match sensor with
              | Some id -> [ id ]
              | None ->
                  List.filter_map
                    (fun (e : Circuit.Element.t) ->
                      match e.Circuit.Element.kind with
                      | Circuit.Element.Current_sensor
                      | Circuit.Element.Voltage_sensor ->
                          Some e.Circuit.Element.id
                      | _ -> None)
                    (Circuit.Netlist.elements nl)
            in
            List.iter
              (fun id ->
                match Circuit.Ac.sensor_response sweep id with
                | exception Not_found ->
                    Printf.eprintf "warning: no sensor %s\n" id
                | pts ->
                    Printf.printf "%s (stimulus on %s):\n" id source;
                    List.iter
                      (fun (p : Circuit.Ac.point) ->
                        Printf.printf "  %10.1f Hz  %8.2f dB  %7.1f deg\n"
                          p.Circuit.Ac.frequency_hz p.Circuit.Ac.magnitude_db
                          p.Circuit.Ac.phase_deg)
                      pts;
                    (match Circuit.Ac.cutoff_hz pts with
                    | Some fc -> Printf.printf "  -3 dB cutoff: %.0f Hz\n" fc
                    | None -> Printf.printf "  no cutoff within the sweep\n"))
              sensors;
            0)
  in
  let doc = "AC small-signal frequency sweep (Bode data) of a design." in
  Cmd.v
    (Cmd.info "bode" ~doc)
    Term.(
      const run $ diagram_arg $ source_arg $ sensor_arg $ from_arg $ to_arg
      $ points_arg)

(* same degrade *)

let degrade_cmd =
  let source_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "source" ] ~docv:"ID"
          ~doc:"Supply element to drive with the disturbance.")
  in
  let factor_arg =
    Arg.(
      value & opt float 2.0
      & info [ "factor" ] ~docv:"X"
          ~doc:"Report failures whose ripple exceeds this multiple of nominal.")
  in
  let run diagram_path reliability_path source factor exclude =
    with_diagram_and_models diagram_path reliability_path
      (fun diagram reliability ->
        let conversion = Blockdiag.To_netlist.convert diagram in
        let options =
          {
            (Fmea.Degradation.default_options ~disturbance_source:source) with
            Fmea.Degradation.ripple_factor = factor;
            exclude;
          }
        in
        match
          Fmea.Degradation.analyse
            ~element_types:conversion.Blockdiag.To_netlist.block_types ~options
            conversion.Blockdiag.To_netlist.netlist reliability
        with
        | findings ->
            Format.printf "%a@." Fmea.Degradation.pp_findings findings;
            0
        | exception Fmea.Degradation.Golden_transient_failed m ->
            Printf.eprintf "error: golden transient failed: %s\n" m;
            1)
  in
  let doc =
    "Time-domain degradation analysis: failures that weaken disturbance \
     rejection without breaking the DC function."
  in
  Cmd.v
    (Cmd.info "degrade" ~doc)
    Term.(
      const run $ diagram_arg $ reliability_arg $ source_arg $ factor_arg
      $ exclude_arg)

(* same report *)

let report_cmd =
  let name_arg =
    Arg.(
      value & opt string "system"
      & info [ "n"; "name" ] ~docv:"NAME" ~doc:"System name for the report.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"MD"
          ~doc:"Write the safety-concept report to this file (default: stdout).")
  in
  let run diagram_path reliability_path sm_path exclude monitored target name
      out =
    with_diagram_and_models diagram_path reliability_path
      (fun diagram reliability ->
        match load_sm_model sm_path with
        | Error m ->
            Printf.eprintf "error: %s\n" m;
            1
        | Ok sm_model ->
            let monitored_sensors =
              match monitored with [] -> None | ids -> Some ids
            in
            let process, fmeda =
              Decisive.Api.run_decisive ~name ~target ~exclude
                ?monitored_sensors diagram reliability sm_model
            in
            let deployments =
              List.filter_map
                (fun (r : Fmea.Table.row) ->
                  match (r.Fmea.Table.safety_mechanism, r.Fmea.Table.sm_coverage_pct) with
                  | Some sm, Some cov ->
                      Some
                        (Fmea.Fmeda.deploy ~component:r.Fmea.Table.component
                           ~failure_mode:r.Fmea.Table.failure_mode
                           {
                             Reliability.Sm_model.sm_name = sm;
                             component_type = r.Fmea.Table.component;
                             failure_mode = r.Fmea.Table.failure_mode;
                             coverage_pct = cov;
                             cost = 0.0;
                           })
                  | _ -> None)
                fmeda.Fmea.Table.rows
            in
            let input =
              Decisive.Report.make_input ~deployments ~process
                ~system_name:name ~target fmeda
            in
            (match out with
            | Some path ->
                Decisive.Report.save ~path input;
                Format.printf "report written to %s@." path
            | None -> print_string (Decisive.Report.to_markdown input));
            if Decisive.Report.verdict input then 0 else 1)
  in
  let doc = "Generate the Markdown safety-concept report (Step 5)." in
  Cmd.v
    (Cmd.info "report" ~doc)
    Term.(
      const run $ diagram_arg $ reliability_arg $ sm_arg $ exclude_arg
      $ monitored_arg $ target_arg $ name_arg $ out_arg)

(* same diff *)

let diff_cmd =
  let old_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"OLD" ~doc:"Previous iteration's diagram.")
  in
  let new_arg =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"NEW" ~doc:"Current iteration's diagram.")
  in
  let run old_path new_path =
    match (load_diagram old_path, load_diagram new_path) with
    | Error m, _ | _, Error m ->
        Printf.eprintf "error: %s\n" m;
        1
    | Ok old_diagram, Ok new_diagram ->
        let wrap d =
          Blockdiag.Transform.to_ssam_model d
        in
        let impact =
          Ssam.Diff.analyse ~old_model:(wrap old_diagram)
            ~new_model:(wrap new_diagram)
        in
        Format.printf "%a@." Ssam.Diff.pp_impact impact;
        if impact.Ssam.Diff.reanalysis_required then begin
          Format.printf
            "re-run `same fmea %s` — the previous analysis is stale@."
            new_path;
          1
        end
        else 0
  in
  let doc =
    "Change-impact analysis between two design iterations (exit 1 when \
     re-analysis is required)."
  in
  Cmd.v (Cmd.info "diff" ~doc) Term.(const run $ old_arg $ new_arg)

(* same coverage *)

let coverage_cmd =
  let run diagram_path =
    match load_diagram diagram_path with
    | Error m ->
        Printf.eprintf "error: %s\n" m;
        1
    | Ok diagram ->
        let types =
          List.map
            (fun (b : Blockdiag.Diagram.block) -> b.Blockdiag.Diagram.block_type)
            (Blockdiag.Diagram.all_blocks diagram)
        in
        Format.printf "%a@." Circuit.Library.pp_coverage
          (Circuit.Library.coverage types);
        0
  in
  let doc = "Report block-library coverage for a design (evaluation RQ2)." in
  Cmd.v (Cmd.info "coverage" ~doc) Term.(const run $ diagram_arg)

(* same scale *)

let scale_cmd =
  (* --analysis path-fmea: Algorithm 1 on synthetic block diagrams with
     closed-form path counts (diamond chain for --topology ladder, block
     grid for --topology grid) — dominator classification timed against
     the enumeration reference wherever the latter can run at all. *)
  let run_path_fmea n topology =
    let sys, paths =
      match topology with
      | `Ladder ->
          ( Circuit.Generator.diamond_arch ~stages:n,
            Circuit.Generator.diamond_path_count ~stages:n )
      | `Grid ->
          let side =
            max 1 (int_of_float (Float.round (sqrt (float_of_int n))))
          in
          ( Circuit.Generator.grid_arch ~rows:side ~cols:side,
            Circuit.Generator.grid_path_count ~rows:side ~cols:side )
    in
    let timed f =
      let t0 = Unix.gettimeofday () in
      let r = f () in
      (r, Unix.gettimeofday () -. t0)
    in
    Printf.printf "architecture %s: %d blocks, %s input→output paths\n"
      (Ssam.Architecture.component_id sys)
      (List.length sys.Ssam.Architecture.children)
      (if paths = max_int then "> 2^62" else string_of_int paths);
    let table, t_dom = timed (fun () -> Fmea.Path_fmea.analyse sys) in
    let sr = Fmea.Table.safety_related_components table in
    Printf.printf "dominator classification: %d single points in %.3f ms\n"
      (List.length sr) (1000.0 *. t_dom);
    if paths <= Fmea.Path_fmea.max_paths then begin
      let reference, t_enum =
        timed (fun () -> Fmea.Path_fmea.analyse_enumerated sys)
      in
      Printf.printf
        "path enumeration:         %.3f ms (speedup %.1fx, identical %b)\n"
        (1000.0 *. t_enum) (t_enum /. t_dom)
        (Fmea.Table.equal table reference)
    end
    else
      Printf.printf
        "path enumeration:         N/A (%d paths exceed the %d cap; the \
         dominator answer is still exact)\n"
        paths Fmea.Path_fmea.max_paths;
    0
  in
  (* --analysis batch-fmea: the fleet workload — N PSU design variants
     (cycling 3 electrical designs) cold (N independent engines) vs warm
     (one engine, shared golden factorisations, one flat pool batch). *)
  let run_batch_fmea n =
    let count = max 2 (min n 1024) in
    let variants = Decisive.Case_study.design_variants ~count () in
    let reliability = Decisive.Case_study.reliability_model in
    let options = Decisive.Case_study.injection_options in
    let timed f =
      let t0 = Unix.gettimeofday () in
      let r = f () in
      (r, Unix.gettimeofday () -. t0)
    in
    let cold, t_cold =
      timed (fun () ->
          List.map
            (fun (label, diagram) ->
              let e = Engine.Pipeline.create () in
              let table =
                Engine.Pipeline.injection_fmea e ~options diagram reliability
              in
              let snap = Engine.Pipeline.snapshot e in
              (label, table, snap.Engine.Stats.golden_solves))
            variants)
    in
    let cold_golden =
      List.fold_left (fun acc (_, _, g) -> acc + g) 0 cold
    in
    let engine = Engine.Pipeline.create () in
    let summary, t_fleet =
      timed (fun () ->
          Engine.Batch.run_fmea engine ~options variants reliability)
    in
    let snap = Engine.Pipeline.snapshot engine in
    let identical =
      List.for_all2
        (fun (_, table, _) (e : Engine.Batch.fmea_entry) ->
          Fmea.Table.equal table e.Engine.Batch.b_table)
        cold summary.Engine.Batch.f_entries
    in
    Printf.printf
      "fleet of %d variants (%d distinct designs, %d rows total)\n" count
      summary.Engine.Batch.f_distinct_designs summary.Engine.Batch.f_rows;
    Printf.printf "cold (N independent engines): %.3f ms, %d golden solves\n"
      (1000.0 *. t_cold) cold_golden;
    Printf.printf "warm fleet (one engine):      %.3f ms, %d golden solves\n"
      (1000.0 *. t_fleet) snap.Engine.Stats.golden_solves;
    Printf.printf "speedup %.2fx, golden solves %d -> %d, identical %b\n"
      (t_cold /. t_fleet) cold_golden snap.Engine.Stats.golden_solves
      identical;
    if identical && snap.Engine.Stats.golden_solves < cold_golden then 0
    else 1
  in
  let run n topology analysis jobs sched =
    set_jobs jobs;
    set_sched sched;
    if analysis = `Path_fmea then run_path_fmea n topology
    else if analysis = `Batch_fmea then run_batch_fmea n
    else
    let nl =
      match topology with
      | `Ladder -> Circuit.Generator.ladder ~sections:n
      | `Grid ->
          let side = max 1 (int_of_float (Float.round (sqrt (float_of_int n)))) in
          Circuit.Generator.grid ~rows:side ~cols:side
    in
    let p = Circuit.Dc.prepare nl in
    Printf.printf "netlist %s: %d elements, %d unknowns, backend %s\n"
      (Circuit.Netlist.name nl)
      (Circuit.Netlist.element_count nl)
      (Circuit.Dc.size p)
      (match Circuit.Dc.backend_used p with
      | `Sparse -> "sparse"
      | `Dense -> "dense");
    let timed f =
      let t0 = Unix.gettimeofday () in
      let r = f () in
      (r, Unix.gettimeofday () -. t0)
    in
    match timed (fun () -> Circuit.Dc.factorise p) with
    | Error e, _ ->
        Format.eprintf "error: golden solve failed: %a@." Circuit.Dc.pp_error e;
        1
    | Ok g, t_factor ->
        Printf.printf "golden factorisation: %.1f ms\n" (1000.0 *. t_factor);
        (* A handful of representative injections, fast vs dense. *)
        let cases =
          List.filter_map
            (fun (e : Circuit.Element.t) ->
              match e.Circuit.Element.kind with
              | Circuit.Element.Resistor _ | Circuit.Element.Load _ ->
                  Some (e.Circuit.Element.id, Circuit.Fault.Open_circuit)
              | _ -> None)
            (Circuit.Netlist.elements nl)
        in
        let stride = max 1 (List.length cases / 12) in
        let cases = List.filteri (fun i _ -> i mod stride = 0) cases in
        let max_dev = ref 0.0 and t_fast = ref 0.0 and t_dense = ref 0.0 in
        List.iter
          (fun (id, fault) ->
            let fast, tf =
              timed (fun () -> Circuit.Dc.inject g ~element_id:id fault)
            in
            let dense, td =
              timed (fun () ->
                  Circuit.Dc.analyse ~backend:`Dense
                    (Circuit.Fault.inject nl ~element_id:id fault))
            in
            t_fast := !t_fast +. tf;
            t_dense := !t_dense +. td;
            match (fast, dense) with
            | Ok sf, Ok sd ->
                List.iter2
                  (fun (_, a) (_, b) ->
                    max_dev := Float.max !max_dev (Float.abs (a -. b)))
                  (Circuit.Dc.all_sensor_readings sf)
                  (Circuit.Dc.all_sensor_readings sd)
            | _ -> ())
          cases;
        let n_cases = float_of_int (List.length cases) in
        Printf.printf
          "%d injections: low-rank re-solve %.3f ms/inj, dense refactorise \
           %.1f ms/inj (speedup %.1fx)\n"
          (List.length cases)
          (1000.0 *. !t_fast /. n_cases)
          (1000.0 *. !t_dense /. n_cases)
          (!t_dense /. !t_fast);
        Printf.printf "max sensor-reading deviation: %.3g\n" !max_dev;
        0
  in
  let n_arg =
    Arg.(
      value & opt int 512
      & info [ "n" ] ~docv:"N"
          ~doc:"Scale parameter: ladder sections, or grid node count.")
  in
  let topology_arg =
    Arg.(
      value
      & opt (enum [ ("ladder", `Ladder); ("grid", `Grid) ]) `Ladder
      & info [ "topology" ] ~docv:"TOPOLOGY" ~doc:"$(b,ladder) or $(b,grid).")
  in
  let analysis_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("injection", `Injection);
               ("path-fmea", `Path_fmea);
               ("batch-fmea", `Batch_fmea);
             ])
          `Injection
      & info [ "analysis" ] ~docv:"ANALYSIS"
          ~doc:
            "$(b,injection) benchmarks the fault-injection kernels on a \
             synthetic netlist; $(b,path-fmea) benchmarks Algorithm 1's \
             dominator classification on a synthetic block diagram (for \
             $(b,ladder), $(docv) is the diamond-chain stage count; for \
             $(b,grid), the approximate block count); $(b,batch-fmea) \
             benchmarks the batch-fleet engine on $(docv) PSU design \
             variants — one warm engine vs $(docv) cold runs (exit 0 iff \
             the fleet shares golden solves and the tables are identical).")
  in
  let doc =
    "Benchmark the analysis kernels on synthetic scalable models."
  in
  Cmd.v (Cmd.info "scale" ~doc)
    Term.(const run $ n_arg $ topology_arg $ analysis_arg $ jobs_arg $ sched_arg)

(* same serve / same client *)

let socket_arg =
  Arg.(
    value
    & opt string "/tmp/same.sock"
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix domain socket to listen on (or connect to).")

let serve_cmd =
  let cache_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache" ] ~docv:"DIR"
          ~doc:
            "Persist the engine's content-addressed cache in $(docv) \
             (survives daemon restarts).  Default: memory-only.")
  in
  let run socket cache jobs =
    set_jobs jobs;
    let jobs =
      match jobs with Some n when n >= 1 -> n | _ -> Exec.default_jobs ()
    in
    match
      Serve.Server.run
        { Serve.Server.socket_path = socket; cache_dir = cache; jobs }
    with
    | () -> 0
    | exception Unix.Unix_error (e, _, arg) ->
        Printf.eprintf "error: %s: %s\n" arg (Unix.error_message e);
        1
  in
  let doc =
    "Run the analysis daemon: one warm engine behind a Unix socket.  \
     Concurrent requests with identical content share one computation \
     (single-flight) and one cache entry; sessions stream model edits and \
     get back only the FMEA rows that changed.  Stop with SIGTERM or a \
     $(b,shutdown) request."
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(const run $ socket_arg $ cache_dir_arg $ jobs_arg)

let client_cmd =
  let request_arg =
    let requests =
      [
        ("ping", Serve.Protocol.Ping);
        ("stats", Serve.Protocol.Stats);
        ("shutdown", Serve.Protocol.Shutdown);
      ]
    in
    Arg.(
      required
      & pos 0 (some (enum requests)) None
      & info [] ~docv:"REQUEST"
          ~doc:"$(b,ping), $(b,stats) or $(b,shutdown).")
  in
  let run socket request =
    match Serve.Client.one_shot ~socket request with
    | Error m ->
        Printf.eprintf "error: %s\n" m;
        1
    | Ok json ->
        print_endline (Modelio.Json.to_string ~indent:2 json);
        0
  in
  let doc =
    "Control a running $(b,same serve) daemon (analyses route through it \
     with the analysis commands' $(b,--connect) option)."
  in
  Cmd.v (Cmd.info "client" ~doc) Term.(const run $ socket_arg $ request_arg)

let main =
  let doc = "Safety Analysis Management Environment (DECISIVE tooling)" in
  let info = Cmd.info "same" ~version:"1.0.0" ~doc in
  Cmd.group info
    [
      serve_cmd;
      client_cmd;
      lint_cmd;
      diagnose_cmd;
      scale_cmd;
      fmea_cmd;
      fmeda_cmd;
      optimize_cmd;
      transform_cmd;
      fta_cmd;
      assess_cmd;
      assure_cmd;
      run_cmd;
      report_cmd;
      diff_cmd;
      simulate_cmd;
      bode_cmd;
      degrade_cmd;
      coverage_cmd;
    ]

let () = exit (Cmd.eval' main)
