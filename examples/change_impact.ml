(* Change-impact analysis across DECISIVE iterations.

   "SCSE is incremental and iterative ... every artefact along the
   process of SCSE shall be updated and re-validated to analyse the
   impact of all changes."  This example plays one such iteration: the
   inductor supplier changes (worse FIT), a new hazard is identified, and
   the diff tells us exactly which artefacts are stale before we re-run
   only the affected analysis — through the incremental engine, which
   reuses every FMEA row the change cannot touch.

   Run with: dune exec examples/change_impact.exe *)

open Ssam

let wrap package hazards =
  Model.create ~component_packages:[ package ] ~hazard_packages:hazards
    ~meta:(Base.meta ~name:"psu" "psu-model") ()

let () =
  (* Iteration 1: the Section V design, analysed through the engine so
     iteration 2 can reuse its rows. *)
  let engine = Engine.Pipeline.create () in
  let v1 = wrap Decisive.Case_study.power_supply_ssam [ Decisive.Case_study.hazard_h1 ] in
  let fmea_v1 =
    Engine.Pipeline.injection_fmea engine
      ~options:Decisive.Case_study.injection_options
      Decisive.Case_study.power_supply_diagram
      Decisive.Case_study.reliability_model
  in
  Format.printf "iteration 1: SPFM %.2f%% (after ECC: %.2f%%)@.@."
    (Fmea.Metrics.spfm fmea_v1)
    (Fmea.Metrics.spfm (Decisive.Case_study.fmeda fmea_v1));

  (* Iteration 2's inputs change in two ways. *)
  (* (a) The inductor supplier changes: L1 is now a 40 FIT part. *)
  let degraded_package =
    {
      Decisive.Case_study.power_supply_ssam with
      Architecture.elements =
        List.map
          (function
            | Architecture.Component c
              when Architecture.component_id c = "L1" ->
                Architecture.Component { c with Architecture.fit = 40.0 }
            | e -> e)
          Decisive.Case_study.power_supply_ssam.Architecture.elements;
    }
  in
  (* (b) A new hazard is identified: EMC-induced reset of the MCU. *)
  let h2 =
    Hazard.situation ~exposure:Hazard.E3 ~controllability:Hazard.C2
      ~meta:(Base.meta ~name:"MCU resets under EMC burst" "H2")
      ~severity:Hazard.S2 ()
  in
  let hazards_v2 =
    [
      Decisive.Case_study.hazard_h1;
      Hazard.package
        ~meta:(Base.meta ~name:"iteration-2 hazards" "pkg:hazards:psu2")
        [ Hazard.Situation h2 ];
    ]
  in
  let v2 = wrap degraded_package hazards_v2 in

  (* The impact analysis tells us what is stale. *)
  let impact = Diff.analyse ~old_model:v1 ~new_model:v2 in
  Format.printf "%a@.@." Diff.pp_impact impact;
  assert impact.Diff.reanalysis_required;
  assert impact.Diff.rehara_required;

  (* Re-run HARA for the new hazard... *)
  let log =
    Hara.assess ~name:"iteration-2 hazards" (List.nth hazards_v2 1)
  in
  Format.printf "%a@.@." Hara.pp log;

  (* ...and re-run Step 4a.  The changed FIT moves the metric; the ECC
     deployment from iteration 1 still rescues the design. *)
  let reliability_v2 =
    Reliability.Reliability_model.add Decisive.Case_study.reliability_model
      {
        Reliability.Reliability_model.component_type = "inductor";
        fit = Reliability.Fit.of_float 40.0;
        failure_modes =
          (Option.get
             (Reliability.Reliability_model.find
                Decisive.Case_study.reliability_model "inductor"))
            .Reliability.Reliability_model.failure_modes;
      }
  in
  let fmea_v2 =
    Engine.Pipeline.injection_fmea engine
      ~previous:
        {
          Engine.Pipeline.prev_diagram =
            Decisive.Case_study.power_supply_diagram;
          prev_reliability = Decisive.Case_study.reliability_model;
          prev_table = fmea_v1;
        }
      ~options:Decisive.Case_study.injection_options
      Decisive.Case_study.power_supply_diagram reliability_v2
  in
  let stats = Engine.Pipeline.snapshot engine in
  Format.printf
    "incremental re-analysis: %d cache hit(s), %d row(s) reused, %d solve(s) \
     performed instead of a full re-run@.@."
    (Engine.Stats.hits stats) stats.Engine.Stats.rows_reused
    (Engine.Stats.solves_performed stats);
  let fmeda_v2 = Decisive.Case_study.fmeda fmea_v2 in
  Format.printf
    "iteration 2: SPFM %.2f%% -> %.2f%% with the existing ECC deployment@."
    (Fmea.Metrics.spfm fmea_v2)
    (Fmea.Metrics.spfm fmeda_v2);
  Format.printf "%a@."
    (fun ppf () ->
      Fmea.Asil.pp_verdict ppf ~target:Requirement.ASIL_B
        ~spfm:(Fmea.Metrics.spfm fmeda_v2))
    ()
