type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

(* SplitMix64 (Steele, Lea, Flood 2014). *)
let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

(* Stream splitting: the child state is the parent state hashed together
   with the stream index through two finalizer rounds, so distinct
   indices land in unrelated regions of the SplitMix64 sequence.  The
   parent is NOT advanced — [split t i] is a pure function of the
   parent's current state, which is what makes replicated Monte-Carlo
   runs reproducible independent of evaluation order. *)
let split t i =
  if i < 0 then invalid_arg "Rng.split: negative stream index";
  let z = Int64.add t.state (Int64.mul golden_gamma (Int64.of_int (i + 1))) in
  { state = mix64 (Int64.logxor (mix64 z) 0xA3EC647659359ACDL) }

let float t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0 (* 2^53 *)

let range t ~min ~max =
  if min > max then invalid_arg "Rng.range: min > max";
  min + int_of_float (float t *. float_of_int (max - min + 1))

let gaussian t ~mean ~stddev =
  let u1 = Float.max (float t) 1e-12 in
  let u2 = float t in
  mean +. (stddev *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let bernoulli t ~p = float t < p

let exponential t ~rate =
  if rate <= 0.0 then invalid_arg "Rng.exponential: rate must be positive";
  (* Inverse CDF: T = -ln(1-u)/rate, with log1p for small u accuracy. *)
  -.Float.log1p (-.float t) /. rate
