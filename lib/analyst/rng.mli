(** Deterministic pseudo-random numbers for the analyst process model.

    SplitMix64: every experiment seeds its own generator, so results are
    reproducible run-to-run and independent of global state. *)

type t

val create : int -> t
(** Seeded generator. *)

val next_int64 : t -> int64
(** Advances the state. *)

val split : t -> int -> t
(** [split t i] derives an independent child stream for index [i >= 0]
    without advancing [t]: the child state hashes (parent state, [i])
    through two SplitMix64 finalizer rounds, so distinct indices yield
    statistically unrelated streams (no collision on realistic draw
    counts — property-tested).  The replacement for ad-hoc reseeding:
    replicated experiments take [split master r] per replicate and
    [split replicate e] per entity, and results stay bit-identical
    however the replicates are scheduled.
    @raise Invalid_argument on a negative index. *)

val float : t -> float
(** Uniform in [0, 1). *)

val range : t -> min:int -> max:int -> int
(** Uniform integer in [min, max] inclusive.  Raises [Invalid_argument]
    when [min > max]. *)

val gaussian : t -> mean:float -> stddev:float -> float
(** Box-Muller. *)

val bernoulli : t -> p:float -> bool

val exponential : t -> rate:float -> float
(** Inverse-CDF exponential sample with rate [rate] (events per unit
    time): [-ln(1-u)/rate].  Raises [Invalid_argument] when [rate <= 0]. *)
