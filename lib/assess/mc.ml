let cost_key = "assess.replicate"

type sampling = Direct | Importance | Stratified

let sampling_to_string = function
  | Direct -> "direct"
  | Importance -> "importance"
  | Stratified -> "stratified"

type exact_check = Auto | Skip | Force

type config = {
  mission_hours : float;
  sampling : sampling;
  trials : int option;
  rel_precision : float option;
  max_trials : int;
  seed : int;
  exact : exact_check;
}

let default =
  {
    mission_hours = 10_000.0;
    sampling = Direct;
    trials = None;
    rel_precision = None;
    max_trials = 200_000_000;
    seed = 42;
    exact = Auto;
  }

type event_report = {
  event_id : string;
  probability : float;
  importance : float;
}

type report = {
  top_probability : float;
  halfwidth : float;
  trials : int;
  elapsed_s : float;
  trials_per_sec : float;
  events : event_report list;
  exact : float option;
  exact_delta : float option;
  sampling : sampling;
  mission_hours : float;
  instrs : int;
}

(* ---------- kernel ---------- *)

let blocks_per_replicate = 128

let trials_per_replicate = blocks_per_replicate * Program.word_bits

(* In-kernel PRNG: a splitmix-style mixer on native 63-bit ints.  The
   published SplitMix64 lives in [Analyst.Rng] and seeds the per-event
   streams; the inner loop re-mixes native ints because Int64 values box
   on every operation without flambda — the difference between ~5 ns and
   ~80 ns per draw.  Constants: an odd gamma and two odd multipliers
   (rotations of the SplitMix64 finalizer constants into 62-bit range). *)
let gamma = 0x2545F4914F6CDD1D

let mul1 = 0x1CE4E5B9BF58476D

let mul2 = 0x133111EB94D049BB

let two53 = 9007199254740992.0 (* 2^53 *)

let threshold p =
  (* Event fires iff a 53-bit uniform draw is below [p * 2^53]; this is
     the inverse-CDF exponential T = -ln(1-u)/lambda compared against
     the mission time, algebraically reduced: T <= H iff u < 1-exp(-lambda*H). *)
  if p <= 0.0 then 0
  else if p >= 1.0 then 1 lsl 53
  else int_of_float (Float.round (p *. two53))

type kernel = {
  prog : Program.t;
  n_events : int;
  weighted : bool;
  thresholds : int array array;  (** per replicate parity *)
  base : float array;  (** per-trial log-weight constant, per parity *)
  deltas : float array;  (** per-event log-weight increment when it fires *)
}

let sample_direct states thresholds (vars : int array) =
  for e = 0 to Array.length vars - 1 do
    let st = ref (Array.unsafe_get states e) in
    let t = Array.unsafe_get thresholds e in
    let w = ref 0 in
    for lane = 0 to Program.word_bits - 1 do
      let s = !st + gamma in
      st := s;
      let z = (s lxor (s lsr 30)) * mul1 in
      let z = (z lxor (z lsr 27)) * mul2 in
      let z = z lxor (z lsr 31) in
      if z lsr 10 < t then w := !w lor (1 lsl lane)
    done;
    Array.unsafe_set states e !st;
    Array.unsafe_set vars e !w
  done

let sample_weighted states thresholds deltas (vars : int array)
    (logw : float array) base =
  Array.fill logw 0 (Array.length logw) base;
  for e = 0 to Array.length vars - 1 do
    let st = ref (Array.unsafe_get states e) in
    let t = Array.unsafe_get thresholds e in
    let d = Array.unsafe_get deltas e in
    let w = ref 0 in
    for lane = 0 to Program.word_bits - 1 do
      let s = !st + gamma in
      st := s;
      let z = (s lxor (s lsr 30)) * mul1 in
      let z = (z lxor (z lsr 27)) * mul2 in
      let z = z lxor (z lsr 31) in
      if z lsr 10 < t then begin
        w := !w lor (1 lsl lane);
        if d <> 0.0 then
          Array.unsafe_set logw lane (Array.unsafe_get logw lane +. d)
      end
    done;
    Array.unsafe_set states e !st;
    Array.unsafe_set vars e !w
  done

let accumulate_direct (stat : Stat.t) (vars : int array) top =
  stat.Stat.n <- stat.Stat.n + Program.word_bits;
  if top <> 0 then begin
    let hits = float_of_int (Program.popcount top) in
    stat.Stat.wsum <- stat.Stat.wsum +. hits;
    stat.Stat.wsumsq <- stat.Stat.wsumsq +. hits;
    let ev = stat.Stat.ev in
    for e = 0 to Array.length vars - 1 do
      let c = top land Array.unsafe_get vars e in
      if c <> 0 then
        Array.unsafe_set ev e
          (Array.unsafe_get ev e +. float_of_int (Program.popcount c))
    done
  end

let accumulate_weighted (stat : Stat.t) (vars : int array) top
    (logw : float array) =
  stat.Stat.n <- stat.Stat.n + Program.word_bits;
  if top <> 0 then begin
    let ev = stat.Stat.ev in
    for lane = 0 to Program.word_bits - 1 do
      if (top lsr lane) land 1 = 1 then begin
        let w = exp (Array.unsafe_get logw lane) in
        stat.Stat.wsum <- stat.Stat.wsum +. w;
        stat.Stat.wsumsq <- stat.Stat.wsumsq +. (w *. w);
        for e = 0 to Array.length vars - 1 do
          if (Array.unsafe_get vars e lsr lane) land 1 = 1 then
            Array.unsafe_set ev e (Array.unsafe_get ev e +. w)
        done
      end
    done
  end

let run_replicate kernel master r =
  (* Stream derivation fixes the replicate's randomness by its global
     index alone, so the merge below is bit-identical however the
     scheduler maps replicates to domains. *)
  let rep_rng = Analyst.Rng.split master r in
  let n_events = kernel.n_events in
  let states =
    Array.init n_events (fun e ->
        Int64.to_int (Analyst.Rng.next_int64 (Analyst.Rng.split rep_rng e))
        land max_int)
  in
  let parity = r land (Array.length kernel.thresholds - 1) in
  let thresholds = kernel.thresholds.(parity) in
  let stat = Stat.create ~n_events in
  let scratch = Program.scratch kernel.prog in
  let vars = Array.make (max n_events 1) 0 in
  if kernel.weighted then begin
    let logw = Array.make Program.word_bits 0.0 in
    let base = kernel.base.(parity) in
    for _ = 1 to blocks_per_replicate do
      sample_weighted states thresholds kernel.deltas vars logw base;
      let top = Program.eval kernel.prog scratch ~vars in
      accumulate_weighted stat vars top logw
    done
  end
  else
    for _ = 1 to blocks_per_replicate do
      sample_direct states thresholds vars;
      let top = Program.eval kernel.prog scratch ~vars in
      accumulate_direct stat vars top
    done;
  stat

(* ---------- kernel construction ---------- *)

let event_probability mission_hours (e : Fta.Fault_tree.event) =
  match e.Fta.Fault_tree.rate_fit with
  | Some fit -> Reliability.Fit.failure_probability fit ~mission_hours
  | None -> 0.0

(* Importance sampling tilts rare events up to [tilt_floor] so the top
   event fires often enough to estimate; each trial then carries the
   likelihood ratio of true vs tilted Bernoulli products as a weight. *)
let tilt_floor = 0.1

let log_ratio_terms p p' =
  (* (delta_when_fired_minus_base, base_term): log(p/p') - log((1-p)/(1-p'))
     and log((1-p)/(1-p')).  Both zero when untilted. *)
  if p = p' then (0.0, 0.0)
  else
    let miss = log ((1.0 -. p) /. (1.0 -. p')) in
    (log (p /. p') -. miss, miss)

let make_kernel (config : config) prog probs =
  let n_events = Array.length probs in
  let zero_deltas = Array.make (max n_events 1) 0.0 in
  let direct () =
    {
      prog;
      n_events;
      weighted = false;
      thresholds = [| Array.map threshold probs |];
      base = [| 0.0 |];
      deltas = zero_deltas;
    }
  in
  match config.sampling with
  | Direct -> direct ()
  | Importance ->
      let tilted =
        Array.map (fun p -> if p > 0.0 && p < tilt_floor then tilt_floor else p) probs
      in
      let deltas = Array.make (max n_events 1) 0.0 in
      let base = ref 0.0 in
      Array.iteri
        (fun e p ->
          let d, m = log_ratio_terms p tilted.(e) in
          deltas.(e) <- d;
          base := !base +. m)
        probs;
      {
        prog;
        n_events;
        weighted = true;
        thresholds = [| Array.map threshold tilted |];
        base = [| !base |];
        deltas;
      }
  | Stratified ->
      (* Stratify on the likeliest event: even replicates force it
         failed, odd replicates force it healthy, each trial weighted by
         2*p / 2*(1-p) so the two strata recombine to the unconditional
         estimate.  Replicate rounds stay even-sized, so the strata are
         always balanced. *)
      let pivot = ref (-1) in
      Array.iteri
        (fun e p -> if p > 0.0 && (!pivot < 0 || p > probs.(!pivot)) then pivot := e)
        probs;
      if !pivot < 0 then direct ()
      else
        let p_s = probs.(!pivot) in
        let forced v =
          let t = Array.map threshold probs in
          t.(!pivot) <- (if v then 1 lsl 53 else 0);
          t
        in
        {
          prog;
          n_events;
          weighted = true;
          thresholds = [| forced true; forced false |];
          base = [| log (2.0 *. p_s); log (2.0 *. (1.0 -. p_s)) |];
          deltas = zero_deltas;
        }

(* ---------- driver ---------- *)

let replicates_for kernel trials =
  let n = (trials + trials_per_replicate - 1) / trials_per_replicate in
  let n = max n 1 in
  (* Stratified runs per-parity strata: keep the count even so both are
     equally represented (the weights assume balance). *)
  if Array.length kernel.thresholds > 1 && n land 1 = 1 then n + 1 else n

let halfwidth kernel stat =
  if kernel.weighted then Stat.clt_halfwidth stat else Stat.wilson_halfwidth stat

let run_sampler ?jobs kernel (config : config) =
  let master = Analyst.Rng.create config.seed in
  let total = Stat.create ~n_events:kernel.n_events in
  let next = ref 0 in
  let run_round count =
    let indices = List.init count (fun i -> !next + i) in
    next := !next + count;
    let stats =
      Exec.scheduled_map ?jobs ~key:cost_key
        (fun r -> run_replicate kernel master r)
        indices
    in
    (* Merge in replicate-index order: determinism across SAME_JOBS. *)
    List.iter (fun s -> Stat.merge_into total s) stats
  in
  (match (config.trials, config.rel_precision) with
  | Some trials, _ -> run_round (replicates_for kernel trials)
  | None, Some precision ->
      (* Doubling rounds against a convergence target: consecutive
         replicate indices keep the estimate independent of how many
         rounds it takes. *)
      let converged () =
        let est = Stat.mean total in
        est > 0.0 && halfwidth kernel total <= precision *. est
      in
      run_round (replicates_for kernel 1);
      while
        (not (converged ())) && Stat.n total < config.max_trials
      do
        let want = Stat.n total (* double *) in
        let cap = config.max_trials - Stat.n total in
        run_round (replicates_for kernel (min want cap))
      done
  | None, None -> run_round (replicates_for kernel 1_000_000));
  total

let tractable_for_exact prog = Array.length (Program.events prog) <= 30

let run ?jobs (config : config) tree =
  let prog = Program.compile tree in
  let events = Program.events prog in
  let probs = Array.map (event_probability config.mission_hours) events in
  let kernel = make_kernel config prog probs in
  let t0 = Unix.gettimeofday () in
  let stat = run_sampler ?jobs kernel config in
  let elapsed_s = Unix.gettimeofday () -. t0 in
  let estimate = Stat.mean stat in
  let exact =
    let compute () =
      let assoc =
        Array.to_list
          (Array.mapi
             (fun i (e : Fta.Fault_tree.event) ->
               (e.Fta.Fault_tree.event_id, probs.(i)))
             events)
      in
      Fta.Quant.top_probability_exact tree assoc
    in
    match config.exact with
    | Skip -> None
    | Force -> Some (compute ())
    | Auto -> if tractable_for_exact prog then Some (compute ()) else None
  in
  let event_reports =
    let wsum = stat.Stat.wsum in
    Array.to_list
      (Array.mapi
         (fun i (e : Fta.Fault_tree.event) ->
           {
             event_id = e.Fta.Fault_tree.event_id;
             probability = probs.(i);
             importance =
               (if wsum > 0.0 then Stat.event_weight stat i /. wsum else 0.0);
           })
         events)
    |> List.sort (fun a b -> Float.compare b.importance a.importance)
  in
  {
    top_probability = estimate;
    halfwidth = halfwidth kernel stat;
    trials = Stat.n stat;
    elapsed_s;
    trials_per_sec =
      (if elapsed_s > 0.0 then float_of_int (Stat.n stat) /. elapsed_s
       else 0.0);
    events = event_reports;
    exact;
    exact_delta = Option.map (fun x -> Float.abs (estimate -. x)) exact;
    sampling = config.sampling;
    mission_hours = config.mission_hours;
    instrs = Program.n_instrs prog;
  }
