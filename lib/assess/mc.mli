(** Bit-parallel Monte-Carlo assessment of fault trees.

    Samples mission-time failure indicators for every basic event from
    its FIT-rate exponential (inverse-CDF, reduced to a threshold test
    on a 53-bit uniform), packs {!Program.word_bits} trials per machine
    word and decides the top event with one {!Program.eval} tape pass
    per block — millions of trials per second on trees whose exact BDD
    quantification is the cross-check, and far beyond it on trees where
    the BDD is intractable.

    Replication is embarrassingly parallel through [Exec.scheduled_map]
    under the {!cost_key} workload key: each replicate derives its
    randomness from [Analyst.Rng.split master r] by global replicate
    index, and accumulators merge in index order — so results are
    bit-identical for a fixed seed across every [SAME_JOBS] setting. *)

val cost_key : string
(** ["assess.replicate"] — the adaptive scheduler's workload key. *)

val trials_per_replicate : int
(** Trials per scheduling unit (128 blocks of {!Program.word_bits}).
    Budgets round up to whole replicates. *)

type sampling =
  | Direct  (** plain Monte-Carlo; Wilson confidence interval *)
  | Importance
      (** rare events tilted up to a floor, trials carry likelihood-ratio
          weights; CLT confidence interval *)
  | Stratified
      (** strata forced on the likeliest event, recombined by stratum
          weights; CLT confidence interval *)

val sampling_to_string : sampling -> string

type exact_check =
  | Auto  (** cross-check against the BDD when the tree is small enough *)
  | Skip
  | Force

type config = {
  mission_hours : float;
  sampling : sampling;
  trials : int option;  (** fixed budget, rounded up to replicates *)
  rel_precision : float option;
      (** stop when the 99% half-width falls below this fraction of the
          estimate (doubling rounds, capped by [max_trials]); only
          consulted when [trials] is [None] *)
  max_trials : int;
  seed : int;
  exact : exact_check;
}

val default : config
(** 10,000 h mission, direct sampling, ~1M trials, seed 42, [Auto]. *)

type event_report = {
  event_id : string;
  probability : float;  (** mission failure probability of the event *)
  importance : float;
      (** Fussell-Vesely style: weighted fraction of top-event trials in
          which this event had failed *)
}

type report = {
  top_probability : float;
  halfwidth : float;  (** 99% confidence half-width *)
  trials : int;
  elapsed_s : float;
  trials_per_sec : float;
  events : event_report list;  (** sorted by importance, descending *)
  exact : float option;  (** BDD-exact top probability, when computed *)
  exact_delta : float option;  (** |estimate - exact| *)
  sampling : sampling;
  mission_hours : float;
  instrs : int;  (** compiled tape length *)
}

val run : ?jobs:int -> config -> Fta.Fault_tree.t -> report
(** Compile, sample, merge, cross-check.  Deterministic for a fixed
    [config.seed] — including across [?jobs] / [SAME_JOBS] settings.
    @raise Invalid_argument on a negative mission time. *)
