(* A fault tree flattened into a register tape of word-wide boolean
   operations.  One evaluation of the tape decides the top event for
   [word_bits] independent trials at once: every register holds one
   machine word whose bit l is the outcome of trial lane l. *)

let word_bits = 62 + 1
(* OCaml's native int: 63 usable bits (the tag bit is gone, the sign bit
   is an ordinary lane under land/lor/lsr). *)

let all_lanes = -1
(* All 63 bits set: the identity for AND-folds and the "every trial"
   mask.  As a native int this is simply -1 (two's complement). *)

type instr =
  | Load of { dst : int; var : int }
  | And2 of { dst : int; a : int; b : int }
  | Or2 of { dst : int; a : int; b : int }
  | Atleast of { dst : int; k : int; srcs : int array; planes : int }
      (** bit-sliced vote: lane l of [dst] is set iff >= k of the source
          registers have lane l set.  [planes] is the counter width. *)

type t = {
  instrs : instr array;
  n_regs : int;
  result : int;  (** register holding the top event *)
  events : Fta.Fault_tree.event array;  (** variable index -> event *)
  max_planes : int;  (** scratch needed by the widest Atleast *)
}

let events t = t.events

let n_instrs t = Array.length t.instrs

let bits_for n =
  let rec go b = if 1 lsl b > n then b else go (b + 1) in
  go 1

module Node_identity = Hashtbl.Make (struct
  type t = Fta.Fault_tree.t

  let equal = ( == )

  let hash = Hashtbl.hash
end)

let compile tree =
  let instrs = ref [] in
  let n_regs = ref 0 in
  let fresh () =
    let r = !n_regs in
    incr n_regs;
    r
  in
  let emit i = instrs := i :: !instrs in
  let max_planes = ref 0 in
  (* One variable (and one Load) per distinct event id, in the
     [basic_events] order the rest of the fta layer uses. *)
  let events = Array.of_list (Fta.Fault_tree.basic_events tree) in
  let var_of_id = Hashtbl.create 16 in
  let var_regs =
    Array.mapi
      (fun v (e : Fta.Fault_tree.event) ->
        Hashtbl.replace var_of_id e.Fta.Fault_tree.event_id v;
        let dst = fresh () in
        emit (Load { dst; var = v });
        dst)
      events
  in
  (* Shared subtrees (physical identity — repeated events are already
     collapsed by the variable table) compile once. *)
  let memo = Node_identity.create 64 in
  let fold2 mk = function
    | [] -> assert false (* smart constructors forbid empty gates *)
    | [ r ] -> r
    | r :: rest ->
        List.fold_left
          (fun acc b ->
            let dst = fresh () in
            emit (mk dst acc b);
            dst)
          r rest
  in
  let rec reg node =
    match Node_identity.find_opt memo node with
    | Some r -> r
    | None ->
        let r =
          match node with
          | Fta.Fault_tree.Basic e ->
              var_regs.(Hashtbl.find var_of_id e.Fta.Fault_tree.event_id)
          | Fta.Fault_tree.And (_, cs) ->
              fold2 (fun dst a b -> And2 { dst; a; b }) (List.map reg cs)
          | Fta.Fault_tree.Or (_, cs) ->
              fold2 (fun dst a b -> Or2 { dst; a; b }) (List.map reg cs)
          | Fta.Fault_tree.Koon (_, k, cs) ->
              let n = List.length cs in
              let srcs = Array.of_list (List.map reg cs) in
              if k = 1 then fold2 (fun dst a b -> Or2 { dst; a; b }) (Array.to_list srcs)
              else if k = n then
                fold2 (fun dst a b -> And2 { dst; a; b }) (Array.to_list srcs)
              else begin
                let planes = bits_for n in
                if planes > !max_planes then max_planes := planes;
                let dst = fresh () in
                emit (Atleast { dst; k; srcs; planes });
                dst
              end
        in
        Node_identity.replace memo node r;
        r
  in
  let result = reg tree in
  {
    instrs = Array.of_list (List.rev !instrs);
    n_regs = !n_regs;
    result;
    events;
    max_planes = !max_planes;
  }

type scratch = { regs : int array; planes : int array }

let scratch t =
  { regs = Array.make t.n_regs 0; planes = Array.make (max t.max_planes 1) 0 }

(* Hot path: straight-line array walk, integer ops only — no allocation,
   no floats, so the no-flambda build stays unboxed throughout. *)
let eval t { regs; planes } ~(vars : int array) =
  let instrs = t.instrs in
  for i = 0 to Array.length instrs - 1 do
    match Array.unsafe_get instrs i with
    | Load { dst; var } -> Array.unsafe_set regs dst (Array.unsafe_get vars var)
    | And2 { dst; a; b } ->
        Array.unsafe_set regs dst
          (Array.unsafe_get regs a land Array.unsafe_get regs b)
    | Or2 { dst; a; b } ->
        Array.unsafe_set regs dst
          (Array.unsafe_get regs a lor Array.unsafe_get regs b)
    | Atleast { dst; k; srcs; planes = np } ->
        (* Bit-sliced counter: plane j holds bit j of the per-lane count
           of set sources.  Each source word ripples in carry-save
           style; np planes hold counts up to [2^np - 1 >= n]. *)
        for j = 0 to np - 1 do
          Array.unsafe_set planes j 0
        done;
        for s = 0 to Array.length srcs - 1 do
          let carry = ref (Array.unsafe_get regs (Array.unsafe_get srcs s)) in
          let j = ref 0 in
          while !carry <> 0 && !j < np do
            let p = Array.unsafe_get planes !j in
            Array.unsafe_set planes !j (p lxor !carry);
            carry := p land !carry;
            incr j
          done
        done;
        (* Per-lane comparator count >= k, MSB first: [eq] tracks lanes
           still tied with k on the bits seen so far, [ge] the lanes
           already strictly greater. *)
        let ge = ref 0 and eq = ref all_lanes in
        for j = np - 1 downto 0 do
          let p = Array.unsafe_get planes j in
          if (k lsr j) land 1 = 0 then ge := !ge lor (!eq land p)
          else eq := !eq land p
        done;
        Array.unsafe_set regs dst (!ge lor !eq)
  done;
  Array.unsafe_get regs t.result

let popcount =
  (* 16-bit table: four lookups per 63-bit word. *)
  let table =
    Array.init 65536 (fun i ->
        let rec go n acc = if n = 0 then acc else go (n lsr 1) (acc + (n land 1)) in
        go i 0)
  in
  fun w ->
    table.(w land 0xFFFF)
    + table.((w lsr 16) land 0xFFFF)
    + table.((w lsr 32) land 0xFFFF)
    + table.((w lsr 48) land 0x7FFF)
