(** Fault trees compiled to a bit-parallel instruction tape.

    The Monte-Carlo kernel never walks the tree: {!compile} flattens the
    unified IR into a straight-line array of AND/OR/at-least word
    operations over registers, each register carrying one trial per bit.
    One {!eval} pass then decides the top event for {!word_bits} trials
    at once, in integer ops only — no allocation on the hot path.
    Shared subtrees (by physical identity) and repeated basic events
    compile once; single-child gates collapse; 1-of-N and N-of-N votes
    lower to OR/AND folds; the general k-of-N vote runs a bit-sliced
    carry-save counter with an MSB-first comparator. *)

val word_bits : int
(** Trials evaluated per machine word: 63 — the native-int width, so the
    kernel stays unboxed without flambda. *)

val all_lanes : int
(** The word with every trial lane set. *)

type t

val compile : Fta.Fault_tree.t -> t

val events : t -> Fta.Fault_tree.event array
(** Distinct basic events in [Fault_tree.basic_events] order — the
    variable indexing [eval] expects [vars] to follow. *)

val n_instrs : t -> int
(** Tape length (for reporting). *)

type scratch
(** Mutable register file, reused across evaluations. *)

val scratch : t -> scratch

val eval : t -> scratch -> vars:int array -> int
(** [eval p s ~vars] runs the tape over sampled indicator words —
    [vars.(v)] bit l is 1 iff event [v] failed in trial lane l — and
    returns the top-event word. *)

val popcount : int -> int
(** Set bits in a word (16-bit table lookups). *)
