type t = {
  mutable n : int;
  mutable wsum : float;
  mutable wsumsq : float;
  ev : float array;
}

let create ~n_events =
  { n = 0; wsum = 0.0; wsumsq = 0.0; ev = Array.make n_events 0.0 }

let n t = t.n

let event_weight t i = t.ev.(i)

let merge_into dst src =
  dst.n <- dst.n + src.n;
  dst.wsum <- dst.wsum +. src.wsum;
  dst.wsumsq <- dst.wsumsq +. src.wsumsq;
  Array.iteri (fun i w -> dst.ev.(i) <- dst.ev.(i) +. w) src.ev

let mean t = if t.n = 0 then 0.0 else t.wsum /. float_of_int t.n

let z99 = 2.575829303548901
(* Two-sided 99%: Phi^-1(0.995). *)

(* Wilson score interval — valid for 0/1 weights (direct sampling),
   where wsum is the hit count.  Behaves sanely at 0 hits, unlike the
   Wald interval, which collapses to width zero. *)
let wilson_halfwidth ?(z = z99) t =
  if t.n = 0 then infinity
  else
    let nf = float_of_int t.n in
    let p = t.wsum /. nf in
    let z2 = z *. z in
    z
    *. sqrt (((p *. (1.0 -. p)) /. nf) +. (z2 /. (4.0 *. nf *. nf)))
    /. (1.0 +. (z2 /. nf))

(* CLT interval for weighted estimators (importance / stratified):
   sample variance of the per-trial weighted indicator. *)
let clt_halfwidth ?(z = z99) t =
  if t.n < 2 then infinity
  else
    let nf = float_of_int t.n in
    let var = (t.wsumsq -. (t.wsum *. t.wsum /. nf)) /. (nf -. 1.0) in
    z *. sqrt (Float.max var 0.0 /. nf)
