(** Online accumulators and confidence intervals for the Monte-Carlo
    assessment kernel.

    One accumulator per replicate, merged in stream order, keeps the
    parallel estimate bit-identical to the sequential one.  The fields
    cover both samplers: under direct sampling every trial weighs 0 or 1
    ([wsum] is the hit count, interval by Wilson score); under
    importance or stratified sampling [wsum]/[wsumsq] accumulate
    likelihood-ratio weights over top-event trials (interval by CLT). *)

type t = {
  mutable n : int;  (** trials seen *)
  mutable wsum : float;  (** sum of weighted top-event indicators *)
  mutable wsumsq : float;  (** sum of squares, for the CLT interval *)
  ev : float array;
      (** per-event weighted co-occurrence with the top event, indexed
          like {!Program.events} — the numerator of the Fussell-Vesely
          style importance the report exposes *)
}

val create : n_events:int -> t

val n : t -> int

val event_weight : t -> int -> float

val merge_into : t -> t -> unit
(** [merge_into dst src] folds [src] into [dst]; associative, so folding
    replicate accumulators in index order is schedule-independent. *)

val mean : t -> float
(** The probability estimate [wsum / n]. *)

val z99 : float
(** Two-sided 99% normal quantile. *)

val wilson_halfwidth : ?z:float -> t -> float
(** Wilson score half-width — for 0/1 weights (direct sampling).
    [infinity] on an empty accumulator. *)

val clt_halfwidth : ?z:float -> t -> float
(** Normal-approximation half-width from the sample variance of the
    weighted indicator — for importance / stratified weights.
    [infinity] below 2 trials. *)
