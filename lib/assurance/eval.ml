type status = Holds | Fails | Undetermined [@@deriving eq, show]

type node_result = { result_node : string; status : status; detail : string }
[@@deriving eq, show]

type report = { case : string; overall : status; nodes : node_result list }

let evaluate_artifact (a : Sacm.artifact) =
  match
    Modelio.Driver.resolve ~model_type:a.Sacm.artifact_driver
      ~location:a.Sacm.artifact_location ~metadata:[]
  with
  | exception Modelio.Driver.Unknown_driver d ->
      (Undetermined, Printf.sprintf "unknown driver '%s'" d)
  | exception Modelio.Driver.Load_error { message; _ } ->
      (Undetermined, Printf.sprintf "evidence failed to load: %s" message)
  | model -> (
      match a.Sacm.acceptance_query with
      | None -> (Holds, "evidence present (no acceptance query)")
      | Some query -> (
          let env = Query.Interp.env_of_models [ ("Artifact", model) ] in
          match Query.Interp.run_string env query with
          | result ->
              if Modelio.Mvalue.truthy result then
                (Holds, Format.asprintf "query holds: %a" Modelio.Mvalue.pp result)
              else
                (Fails, Format.asprintf "query fails: %a" Modelio.Mvalue.pp result)
          | exception Query.Interp.Runtime_error m ->
              (Undetermined, Printf.sprintf "query error: %s" m)
          | exception Query.Parser.Parse_error { message; _ } ->
              (Undetermined, Printf.sprintf "query parse error: %s" message)
          | exception Query.Lexer.Lex_error { message; _ } ->
              (Undetermined, Printf.sprintf "query lex error: %s" message)))

let combine statuses =
  if List.exists (fun s -> s = Fails) statuses then Fails
  else if List.exists (fun s -> s = Undetermined) statuses then Undetermined
  else Holds

let evaluate_with artifact_eval (case : Sacm.case) =
  let results = ref [] in
  let record node status detail =
    results :=
      { result_node = node.Sacm.node_id; status; detail } :: !results;
    status
  in
  let rec eval (n : Sacm.node) =
    match n.Sacm.kind with
    | Sacm.Context | Sacm.Assumption | Sacm.Justification ->
        record n Holds "contextual"
    | Sacm.Solution -> (
        match n.Sacm.artifact with
        | None -> record n Undetermined "no evidence attached"
        | Some a ->
            let status, detail = artifact_eval a in
            record n status detail)
    | Sacm.Goal | Sacm.Strategy ->
        if n.Sacm.supported_by = [] then
          record n Undetermined "undeveloped (no support)"
        else begin
          let child_statuses = List.map eval n.Sacm.supported_by in
          (* Contexts are evaluated for the report but do not gate. *)
          List.iter (fun c -> ignore (eval c)) n.Sacm.in_context_of;
          record n (combine child_statuses) "combined from supports"
        end
  in
  let overall = eval case.Sacm.root in
  { case = case.Sacm.case_name; overall; nodes = List.rev !results }

let evaluate case = evaluate_with evaluate_artifact case

let status_of report id =
  List.find_map
    (fun r -> if String.equal r.result_node id then Some r.status else None)
    report.nodes

let pp_status ppf = function
  | Holds -> Format.fprintf ppf "HOLDS"
  | Fails -> Format.fprintf ppf "FAILS"
  | Undetermined -> Format.fprintf ppf "UNDETERMINED"

let pp_report ppf r =
  Format.fprintf ppf "@[<v>assurance case '%s': %a@," r.case pp_status r.overall;
  List.iter
    (fun n ->
      Format.fprintf ppf "  %-16s %-12s %s@," n.result_node
        (Format.asprintf "%a" pp_status n.status)
        n.detail)
    r.nodes;
  Format.fprintf ppf "@]"
