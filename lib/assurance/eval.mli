(** Automated assurance-case evaluation.

    A {!Sacm.Solution}'s status comes from its artifact: load the external
    model through {!Modelio.Driver}, bind it as [Artifact], run the
    acceptance query.  Goals and strategies hold when all their supports
    hold.  Context-kind nodes are always [Holds] (they assert context, not
    claims). *)

type status = Holds | Fails | Undetermined [@@deriving eq, show]

type node_result = {
  result_node : string;
  status : status;
  detail : string;  (** query result, load error, "no evidence"... *)
}
[@@deriving eq, show]

type report = {
  case : string;
  overall : status;
  nodes : node_result list;
      (** in evaluation order: children before their parents *)
}

val evaluate : Sacm.case -> report
(** Never raises: driver and query failures become [Undetermined] with the
    error message in [detail]. *)

val evaluate_artifact : Sacm.artifact -> status * string
(** One solution's verdict: load the evidence through its driver and run
    the acceptance query.  Never raises. *)

val evaluate_with : (Sacm.artifact -> status * string) -> Sacm.case -> report
(** {!evaluate} with the per-artifact judgement supplied by the caller —
    the seam the incremental engine uses to memoise claim verdicts by
    artifact fingerprint.  The function must behave like
    {!evaluate_artifact} (in particular, it must not raise). *)

val status_of : report -> string -> status option

val pp_report : Format.formatter -> report -> unit
(** Indented goal structure with per-node verdicts. *)
