type skipped = { block_id : string; reason : string }

type result = {
  netlist : Circuit.Netlist.t;
  skipped : skipped list;
  block_types : (string * string) list;
}

exception Unsupported_block of { block_id : string; block_type : string }

let simulation_only = [ "scope"; "solver_config"; "out"; "display"; "workspace" ]

let element_kind_of_block (b : Diagram.block) =
  let num name default = Option.value ~default (Diagram.param_num b name) in
  let canonical =
    match Circuit.Library.find b.Diagram.block_type with
    | Some info -> info.Circuit.Library.block_type
    | None -> String.lowercase_ascii b.Diagram.block_type
  in
  match canonical with
  | "vsource" -> Some (Circuit.Element.Vsource (num "volts" 5.0))
  | "isource" -> Some (Circuit.Element.Isource (num "amps" 0.001))
  | "resistor" -> Some (Circuit.Element.Resistor (num "ohms" 1000.0))
  | "capacitor" -> Some (Circuit.Element.Capacitor (num "farads" 1e-6))
  | "inductor" -> Some (Circuit.Element.Inductor (num "henries" 1e-3))
  | "diode" -> Some (Circuit.Element.Diode Circuit.Element.default_diode)
  | "switch" ->
      let closed =
        match List.assoc_opt "closed" b.Diagram.parameters with
        | Some (Diagram.P_bool v) -> v
        | Some (Diagram.P_num f) -> f <> 0.0
        | Some (Diagram.P_str s) -> String.lowercase_ascii s = "true"
        | None -> true
      in
      Some (Circuit.Element.Switch closed)
  | "current_sensor" -> Some Circuit.Element.Current_sensor
  | "voltage_sensor" -> Some Circuit.Element.Voltage_sensor
  | "load" -> Some (Circuit.Element.Load (num "ohms" 100.0))
  | "microcontroller" | "pll" ->
      (* The paper's work-around: annotated subsystems analysed as loads. *)
      Some (Circuit.Element.Load (num "ohms" 100.0))
  | "ground" -> None (* handled by net naming *)
  | other ->
      if List.mem other simulation_only then None
      else if
        List.for_all
          (fun (p : Diagram.port) -> p.Diagram.port_kind = Diagram.Conserving)
          b.Diagram.ports
        && b.Diagram.ports <> []
      then
        raise
          (Unsupported_block
             { block_id = b.Diagram.block_id; block_type = b.Diagram.block_type })
      else None

(* Flatten subsystems, qualifying nested ids. *)
let rec flatten prefix (d : Diagram.t) =
  let qualify id = if prefix = "" then id else prefix ^ "/" ^ id in
  let blocks =
    List.map
      (fun (b : Diagram.block) ->
        { b with Diagram.block_id = qualify b.Diagram.block_id })
      d.Diagram.blocks
  in
  let connections =
    List.map
      (fun (c : Diagram.connection) ->
        {
          Diagram.from_ep =
            {
              c.Diagram.from_ep with
              Diagram.ep_block = qualify c.Diagram.from_ep.Diagram.ep_block;
            };
          to_ep =
            {
              c.Diagram.to_ep with
              Diagram.ep_block = qualify c.Diagram.to_ep.Diagram.ep_block;
            };
        })
      d.Diagram.connections
  in
  List.fold_left
    (fun (bs, cs) sub ->
      let sb, sc = flatten (qualify sub.Diagram.diagram_name) sub in
      (bs @ sb, cs @ sc))
    (blocks, connections) d.Diagram.subsystems

let endpoint_key block port = block ^ "." ^ port

let convert d =
  let blocks, connections = flatten "" d in
  (* Electrical nets are the connected components of the endpoint graph
     — the shared {!Graph.Digraph} kernel (direction ignored) instead of
     a local union-find.  Every port of every block is interned up
     front, so unconnected ports get their own singleton net. *)
  let port_keys =
    List.concat_map
      (fun (b : Diagram.block) ->
        List.map
          (fun (p : Diagram.port) ->
            endpoint_key b.Diagram.block_id p.Diagram.port_name)
          b.Diagram.ports)
      blocks
  in
  let g =
    Graph.Digraph.of_edges ~nodes:port_keys
      (List.map
         (fun (c : Diagram.connection) ->
           ( endpoint_key c.Diagram.from_ep.Diagram.ep_block
               c.Diagram.from_ep.Diagram.ep_port,
             endpoint_key c.Diagram.to_ep.Diagram.ep_block
               c.Diagram.to_ep.Diagram.ep_port ))
         connections)
  in
  let net_of_key, net_count = Graph.Digraph.undirected_components g in
  let net_id block port =
    match Graph.Digraph.index g (endpoint_key block port) with
    | Some i -> net_of_key.(i)
    | None -> assert false (* every block port was interned above *)
  in
  (* Ground nets. *)
  let grounded = Array.make (max 1 net_count) false in
  List.iter
    (fun (b : Diagram.block) ->
      let canonical =
        match Circuit.Library.find b.Diagram.block_type with
        | Some info -> info.Circuit.Library.block_type
        | None -> String.lowercase_ascii b.Diagram.block_type
      in
      if String.equal canonical "ground" then
        List.iter
          (fun (p : Diagram.port) ->
            grounded.(net_id b.Diagram.block_id p.Diagram.port_name) <- true)
          b.Diagram.ports)
    blocks;
  let net_names = Hashtbl.create 32 in
  let counter = ref 0 in
  let net_of block port =
    let net = net_id block port in
    if grounded.(net) then Circuit.Netlist.ground
    else
      match Hashtbl.find_opt net_names net with
      | Some n -> n
      | None ->
          incr counter;
          let n = Printf.sprintf "n%d" !counter in
          Hashtbl.add net_names net n;
          n
  in
  let skipped = ref [] in
  let block_types = ref [] in
  let netlist = ref (Circuit.Netlist.empty d.Diagram.diagram_name) in
  List.iter
    (fun (b : Diagram.block) ->
      match element_kind_of_block b with
      | None ->
          let canonical =
            match Circuit.Library.find b.Diagram.block_type with
            | Some info -> info.Circuit.Library.block_type
            | None -> String.lowercase_ascii b.Diagram.block_type
          in
          if not (String.equal canonical "ground") then
            skipped :=
              {
                block_id = b.Diagram.block_id;
                reason =
                  Printf.sprintf "non-electrical block type '%s'"
                    b.Diagram.block_type;
              }
              :: !skipped
      | Some kind -> (
          match b.Diagram.ports with
          | [ pa; pb ] ->
              let node_a = net_of b.Diagram.block_id pa.Diagram.port_name in
              let node_b = net_of b.Diagram.block_id pb.Diagram.port_name in
              if String.equal node_a node_b then
                skipped :=
                  {
                    block_id = b.Diagram.block_id;
                    reason = "both terminals on the same net";
                  }
                  :: !skipped
              else begin
                netlist :=
                  Circuit.Netlist.add !netlist
                    (Circuit.Element.make ~id:b.Diagram.block_id ~kind node_a
                       node_b);
                block_types :=
                  (b.Diagram.block_id, b.Diagram.block_type) :: !block_types
              end
          | _ ->
              skipped :=
                {
                  block_id = b.Diagram.block_id;
                  reason = "not a two-terminal block";
                }
                :: !skipped))
    blocks;
  {
    netlist = !netlist;
    skipped = List.rev !skipped;
    block_types = List.rev !block_types;
  }
