open Ssam

let type_language = "blockdiag-type"

let param_language = "blockdiag-param"

let param_constraint (name, value) =
  let kind, repr =
    match value with
    | Diagram.P_num f -> ("num", Printf.sprintf "%.17g" f)
    | Diagram.P_str s -> ("str", s)
    | Diagram.P_bool b -> ("bool", string_of_bool b)
  in
  {
    Base.constraint_id = Printf.sprintf "param:%s" name;
    description = kind;
    language = param_language;
    expression = Printf.sprintf "%s=%s" name repr;
  }

let parse_param (c : Base.constraint_) =
  match String.index_opt c.Base.expression '=' with
  | None -> None
  | Some i ->
      let name = String.sub c.Base.expression 0 i in
      let repr =
        String.sub c.Base.expression (i + 1)
          (String.length c.Base.expression - i - 1)
      in
      let value =
        match c.Base.description with
        | "num" -> (
            match float_of_string_opt repr with
            | Some f -> Diagram.P_num f
            | None -> Diagram.P_str repr)
        | "bool" -> Diagram.P_bool (String.equal repr "true")
        | _ -> Diagram.P_str repr
      in
      Some (name, value)

let io_node_of_port block_id (p : Diagram.port) =
  let direction =
    match p.Diagram.port_kind with
    | Diagram.In_port -> Architecture.Input
    | Diagram.Out_port -> Architecture.Output
    | Diagram.Conserving -> Architecture.Bidirectional
  in
  Architecture.io_node
    ~meta:
      (Base.meta
         ~name:p.Diagram.port_name
         (Printf.sprintf "%s:io:%s" block_id p.Diagram.port_name))
    direction

let component_of_block (b : Diagram.block) =
  let constraints =
    {
      Base.constraint_id = Printf.sprintf "%s:type" b.Diagram.block_id;
      description = "";
      language = type_language;
      expression = b.Diagram.block_type;
    }
    :: List.map param_constraint b.Diagram.parameters
  in
  let meta =
    Base.meta ~name:b.Diagram.block_id
      ?description:b.Diagram.annotation ~constraints b.Diagram.block_id
  in
  let component_type =
    match String.lowercase_ascii b.Diagram.block_type with
    | "software" | "task" | "driver" | "service" -> Architecture.Software
    | _ -> Architecture.Hardware
  in
  Architecture.component ~component_type
    ~io_nodes:(List.map (io_node_of_port b.Diagram.block_id) b.Diagram.ports)
    ~meta ()

let relationship_of_connection ~scope (c : Diagram.connection) i =
  let from_b = c.Diagram.from_ep.Diagram.ep_block in
  let to_b = c.Diagram.to_ep.Diagram.ep_block in
  Architecture.relationship
    ~from_node:
      (Printf.sprintf "%s:io:%s" from_b c.Diagram.from_ep.Diagram.ep_port)
    ~to_node:(Printf.sprintf "%s:io:%s" to_b c.Diagram.to_ep.Diagram.ep_port)
    ~meta:(Base.meta (Printf.sprintf "%s:conn:%d" scope i))
    ~from_component:from_b ~to_component:to_b ()

let rec subsystem_component (d : Diagram.t) =
  let children =
    List.map component_of_block d.Diagram.blocks
    @ List.map subsystem_component d.Diagram.subsystems
  in
  let connections =
    List.mapi
      (fun i c -> relationship_of_connection ~scope:d.Diagram.diagram_name c i)
      d.Diagram.connections
  in
  Architecture.component ~component_type:Architecture.System ~children
    ~connections
    ~meta:
      (Base.meta ~name:d.Diagram.diagram_name
         ~constraints:
           [
             {
               Base.constraint_id = d.Diagram.diagram_name ^ ":type";
               description = "";
               language = type_language;
               expression = "subsystem";
             };
           ]
         d.Diagram.diagram_name)
    ()

let to_ssam (d : Diagram.t) =
  let elements =
    List.map (fun b -> Architecture.Component (component_of_block b)) d.Diagram.blocks
    @ List.map
        (fun s -> Architecture.Component (subsystem_component s))
        d.Diagram.subsystems
    @ List.mapi
        (fun i c ->
          Architecture.Relationship
            (relationship_of_connection ~scope:d.Diagram.diagram_name c i))
        d.Diagram.connections
  in
  Architecture.package
    ~meta:
      (Base.meta ~name:d.Diagram.diagram_name
         ~description:"transformed from block diagram"
         ("pkg:" ^ d.Diagram.diagram_name))
    elements

let to_ssam_model d =
  Model.create
    ~component_packages:[ to_ssam d ]
    ~meta:
      (Base.meta
         ~name:(d.Diagram.diagram_name ^ "-model")
         ("model:" ^ d.Diagram.diagram_name))
    ()

exception Not_a_diagram of string

let block_type_of_component (c : Architecture.component) =
  List.find_map
    (fun (k : Base.constraint_) ->
      if String.equal k.Base.language type_language then Some k.Base.expression
      else None)
    c.Architecture.c_meta.Base.constraints

let port_of_io_node (io : Architecture.io_node) =
  let kind =
    match io.Architecture.direction with
    | Architecture.Input -> Diagram.In_port
    | Architecture.Output -> Diagram.Out_port
    | Architecture.Bidirectional -> Diagram.Conserving
  in
  {
    Diagram.port_name = Base.display_name io.Architecture.io_meta;
    port_kind = kind;
  }

let block_of_component (c : Architecture.component) =
  let block_type =
    match block_type_of_component c with
    | Some t -> t
    | None ->
        raise (Not_a_diagram (Architecture.component_id c ^ ": no block-type marker"))
  in
  let parameters =
    List.filter_map
      (fun (k : Base.constraint_) ->
        if String.equal k.Base.language param_language then parse_param k
        else None)
      c.Architecture.c_meta.Base.constraints
  in
  let annotation =
    match c.Architecture.c_meta.Base.description with "" -> None | d -> Some d
  in
  {
    Diagram.block_id = Architecture.component_id c;
    block_type;
    parameters;
    ports = List.map port_of_io_node c.Architecture.io_nodes;
    annotation;
  }

let connection_of_relationship (r : Architecture.relationship) =
  let port_name node_id =
    (* io ids look like "<block>:io:<port>". *)
    match node_id with
    | Some id -> (
        match String.rindex_opt id ':' with
        | Some i -> String.sub id (i + 1) (String.length id - i - 1)
        | None -> id)
    | None -> "a"
  in
  Diagram.connect
    (r.Architecture.from_component, port_name r.Architecture.from_node)
    (r.Architecture.to_component, port_name r.Architecture.to_node)

let rec diagram_of_composite (c : Architecture.component) =
  let blocks, subsystems =
    List.fold_left
      (fun (bs, ss) child ->
        match block_type_of_component child with
        | Some "subsystem" -> (bs, diagram_of_composite child :: ss)
        | Some _ | None -> (block_of_component child :: bs, ss))
      ([], []) c.Architecture.children
  in
  Diagram.diagram
    ~connections:(List.map connection_of_relationship c.Architecture.connections)
    ~subsystems:(List.rev subsystems)
    ~name:(Architecture.component_id c)
    (List.rev blocks)

let to_diagram (p : Architecture.package) =
  let blocks, subsystems =
    List.fold_left
      (fun (bs, ss) -> function
        | Architecture.Component c -> (
            match block_type_of_component c with
            | Some "subsystem" -> (bs, diagram_of_composite c :: ss)
            | Some _ -> (block_of_component c :: bs, ss)
            | None ->
                raise
                  (Not_a_diagram
                     (Architecture.component_id c ^ ": no block-type marker")))
        | Architecture.Relationship _ -> (bs, ss))
      ([], []) p.Architecture.elements
  in
  let connections =
    List.map connection_of_relationship (Architecture.relationships p)
  in
  Diagram.diagram ~connections ~subsystems:(List.rev subsystems)
    ~name:(Base.display_name p.Architecture.package_meta)
    (List.rev blocks)

(* ---------- Step 3: reliability aggregation ---------- *)

let failure_mode_of_entry component_id (fm : Reliability.Reliability_model.failure_mode) =
  let nature =
    if fm.Reliability.Reliability_model.loss_of_function then
      Architecture.Loss_of_function
    else Architecture.Erroneous
  in
  Architecture.failure_mode
    ~meta:
      (Base.meta
         ~name:fm.Reliability.Reliability_model.fm_name
         (Printf.sprintf "%s:fm:%s" component_id
            (String.lowercase_ascii fm.Reliability.Reliability_model.fm_name)))
    ~nature
    ~distribution_pct:fm.Reliability.Reliability_model.distribution_pct ()

let rec aggregate_component rm (c : Architecture.component) =
  let c =
    { c with Architecture.children = List.map (aggregate_component rm) c.Architecture.children }
  in
  match block_type_of_component c with
  | None -> c
  | Some btype -> (
      match Reliability.Reliability_model.find rm btype with
      | None -> c
      | Some entry ->
          {
            c with
            Architecture.fit = entry.Reliability.Reliability_model.fit;
            failure_modes =
              List.map
                (failure_mode_of_entry (Architecture.component_id c))
                entry.Reliability.Reliability_model.failure_modes;
          })

let aggregate_reliability rm (p : Architecture.package) =
  {
    p with
    Architecture.elements =
      List.map
        (function
          | Architecture.Component c ->
              Architecture.Component (aggregate_component rm c)
          | Architecture.Relationship _ as r -> r)
        p.Architecture.elements;
  }

(* The *functional* SSAM twin of a diagram: electrically-structural
   blocks (ground) vanish, sources feed the root boundary and sinks
   return to it, every remaining connection becomes a child-level
   relationship.  Lives here — rather than in the top-level API — so the
   FTA pipeline can lower diagrams without depending on the analysis
   engine; [Decisive.Api.functional_root] delegates. *)
let functional_root ~reliability (diagram : Diagram.t) =
  let package = aggregate_reliability reliability (to_ssam diagram) in
  let classify id =
    match Architecture.find_in_package package id with
    | None -> `Absent
    | Some c -> (
        match block_type_of_component c with
        | Some "ground" -> `Ground
        | Some ("vsource" | "isource") -> `Source c
        | Some ("load" | "microcontroller" | "pll") -> `Sink c
        | Some _ | None -> `Plain c)
  in
  let root_id = "root:" ^ diagram.Diagram.diagram_name in
  let children = ref [] in
  let connections = ref [] in
  let k = ref 0 in
  let conn a bb =
    incr k;
    connections :=
      Architecture.relationship
        ~meta:(Base.meta (Printf.sprintf "%s:c%d" root_id !k))
        ~from_component:a ~to_component:bb ()
      :: !connections
  in
  List.iter
    (fun (b : Diagram.block) ->
      match classify b.Diagram.block_id with
      | `Ground | `Absent -> ()
      | `Source c | `Sink c | `Plain c ->
          children := c :: !children;
          (match classify b.Diagram.block_id with
          | `Source _ -> conn root_id b.Diagram.block_id
          | `Sink _ -> conn b.Diagram.block_id root_id
          | `Ground | `Absent | `Plain _ -> ()))
    diagram.Diagram.blocks;
  List.iter
    (fun (c : Diagram.connection) ->
      let f = c.Diagram.from_ep.Diagram.ep_block in
      let t = c.Diagram.to_ep.Diagram.ep_block in
      match (classify f, classify t) with
      | (`Ground | `Absent), _ | _, (`Ground | `Absent) -> ()
      | _, _ -> conn f t)
    diagram.Diagram.connections;
  Architecture.component ~component_type:Architecture.System
    ~children:(List.rev !children)
    ~connections:(List.rev !connections)
    ~meta:(Base.meta ~name:diagram.Diagram.diagram_name root_id)
    ()
