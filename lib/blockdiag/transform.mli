(** Model-to-model transformation: block diagrams ↔ SSAM architecture
    packages (the paper's simulink2ssam, Sec. IV-D2, "transform Simulink
    models to SSAM without information loss").

    Every block becomes a {!Ssam.Architecture.component}; ports become IO
    nodes; connections become relationships; subsystems become composite
    components.  Block type and parameters are preserved in
    implementation constraints (languages ["blockdiag-type"] and
    ["blockdiag-param"]) so {!to_diagram} can reconstruct the diagram —
    the no-information-loss property the tests check. *)

val to_ssam : Diagram.t -> Ssam.Architecture.package
(** Component ids equal block ids; nested ids are qualified as
    ["sub/block"] only in the netlist path, not here — SSAM keeps the
    hierarchy. *)

val to_ssam_model : Diagram.t -> Ssam.Model.t
(** Wraps {!to_ssam} in a one-package model whose meta records the source
    diagram name. *)

exception Not_a_diagram of string
(** Raised by {!to_diagram} when a package lacks the blockdiag markers
    (it was not produced by {!to_ssam}). *)

val to_diagram : Ssam.Architecture.package -> Diagram.t

val block_type_of_component : Ssam.Architecture.component -> string option
(** Reads the ["blockdiag-type"] marker. *)

val aggregate_reliability :
  Reliability.Reliability_model.t ->
  Ssam.Architecture.package ->
  Ssam.Architecture.package
(** DECISIVE Step 3 on a transformed package: for every component whose
    block type has a reliability entry, set its FIT and attach the
    catalogue failure modes (ids ["<component>:fm:<name>"]).  Components
    without an entry are left untouched. *)

val functional_root :
  reliability:Reliability.Reliability_model.t ->
  Diagram.t ->
  Ssam.Architecture.component
(** The diagram's functional SSAM twin as a single System component:
    {!to_ssam} + {!aggregate_reliability}, with ground blocks dropped,
    sources (vsource/isource) connected from the root boundary and sinks
    (load/microcontroller/pll) connected back to it — the component the
    path-FMEA and FTA routes analyse.  Moved here from the top-level API
    so {!Fta.From_ssam}'s block-diagram pipeline can use it directly. *)
