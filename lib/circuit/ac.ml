type point = {
  frequency_hz : float;
  magnitude : float;
  magnitude_db : float;
  phase_deg : float;
}

type response = (string, Complex.t array) Hashtbl.t

type sweep = {
  frequencies : float array;
  node_h : response;
  sensor_h : response;
}

let closed_switch_resistance = 1e-3

let cx re = { Complex.re; im = 0.0 }

(* ---------- prepared sweeps ----------

   The same prepare/solve hoisting as [Dc]: everything frequency-
   independent — the DC operating point for diode linearisation, the
   node/branch numbering, and the stamps of every non-reactive device
   (plus gmin and the unit stimulus) — is computed once.  Each frequency
   then copies the base complex matrix and restamps only the reactive
   entries: [jωC] at a capacitor's four node positions, [−jωL] on an
   inductor's branch diagonal. *)

type reactive =
  | React_cap of int option * int option * float  (* node a, node b, farads *)
  | React_ind of int * float  (* branch row, henries *)

type prepared = {
  ap_node_names : string list;
  ap_sensors : (string * [ `Current of int | `Voltage of int option * int option ]) list;
  ap_base : Numeric.Cmatrix.t;
  ap_base_b : Complex.t array;
  ap_reactive : reactive list;
}

let prepare ?(gmin = 1e-9) ~source netlist =
  let elements = Netlist.elements netlist in
  (match Netlist.find netlist source with
  | Some { Element.kind = Element.Vsource _ | Element.Isource _; _ } -> ()
  | Some _ -> invalid_arg "Ac.prepare: stimulus element is not a source"
  | None -> invalid_arg "Ac.prepare: unknown stimulus element");
  (* Operating point for diode linearisation. *)
  match Dc.analyse ~gmin netlist with
  | Error e -> Error e
  | Ok dc ->
      let node_names = Netlist.nodes netlist in
      let node_index = Hashtbl.create 16 in
      List.iteri (fun i n -> Hashtbl.add node_index n i) node_names;
      let n_nodes = List.length node_names in
      (* Branch unknowns: voltage sources, inductors and current sensors
         (same layout as DC — inductors keep their branch so their
         impedance stamps cleanly). *)
      let branch_elements =
        List.filter
          (fun (e : Element.t) -> Element.is_branch_element e.Element.kind)
          elements
      in
      let branch_index = Hashtbl.create 8 in
      List.iteri
        (fun i (e : Element.t) ->
          Hashtbl.add branch_index e.Element.id (n_nodes + i))
        branch_elements;
      let size = n_nodes + List.length branch_elements in
      let node n =
        if String.equal n Netlist.ground then None
        else Hashtbl.find_opt node_index n
      in
      let a = Numeric.Cmatrix.create size size in
      let b = Array.make size Complex.zero in
      let reactive = ref [] in
      let stamp_admittance na nb y =
        (match node na with
        | Some i -> Numeric.Cmatrix.add_to a i i y
        | None -> ());
        (match node nb with
        | Some j -> Numeric.Cmatrix.add_to a j j y
        | None -> ());
        match (node na, node nb) with
        | Some i, Some j ->
            Numeric.Cmatrix.add_to a i j (Complex.neg y);
            Numeric.Cmatrix.add_to a j i (Complex.neg y)
        | _ -> ()
      in
      let stamp_current na nb amps =
        (match node na with
        | Some i -> b.(i) <- Complex.sub b.(i) amps
        | None -> ());
        match node nb with
        | Some j -> b.(j) <- Complex.add b.(j) amps
        | None -> ()
      in
      let stamp_voltage_branch e_id na nb volts =
        let k = Hashtbl.find branch_index e_id in
        (match node na with
        | Some i ->
            Numeric.Cmatrix.add_to a i k Complex.one;
            Numeric.Cmatrix.add_to a k i Complex.one
        | None -> ());
        (match node nb with
        | Some j ->
            Numeric.Cmatrix.add_to a j k (cx (-1.0));
            Numeric.Cmatrix.add_to a k j (cx (-1.0))
        | None -> ());
        (* v(a) - v(b) - Z i = volts; the impedance part, when reactive,
           is restamped per frequency. *)
        b.(k) <- Complex.add b.(k) volts;
        k
      in
      List.iter
        (fun (e : Element.t) ->
          let na = e.Element.node_a and nb = e.Element.node_b in
          let is_stimulus = String.equal e.Element.id source in
          match e.Element.kind with
          | Element.Resistor r | Element.Load r ->
              stamp_admittance na nb (cx (1.0 /. r))
          | Element.Switch true ->
              stamp_admittance na nb (cx (1.0 /. closed_switch_resistance))
          | Element.Switch false | Element.Voltage_sensor -> ()
          | Element.Capacitor c ->
              reactive := React_cap (node na, node nb, c) :: !reactive
          | Element.Inductor l ->
              let k = stamp_voltage_branch e.Element.id na nb Complex.zero in
              reactive := React_ind (k, l) :: !reactive
          | Element.Diode p ->
              let v = Dc.node_voltage dc na -. Dc.node_voltage dc nb in
              stamp_admittance na nb
                (cx (Float.max (Dc.diode_conductance p v) 1e-12))
          | Element.Vsource _ ->
              (* AC: unit stimulus on the chosen source, short otherwise. *)
              ignore
                (stamp_voltage_branch e.Element.id na nb
                   (if is_stimulus then Complex.one else Complex.zero))
          | Element.Current_sensor ->
              ignore (stamp_voltage_branch e.Element.id na nb Complex.zero)
          | Element.Isource _ ->
              if is_stimulus then stamp_current na nb Complex.one)
        elements;
      (* gmin keeps faulted topologies solvable, as at DC. *)
      let g = cx gmin in
      for i = 0 to n_nodes - 1 do
        Numeric.Cmatrix.add_to a i i g
      done;
      let sensors =
        List.filter_map
          (fun (e : Element.t) ->
            match e.Element.kind with
            | Element.Current_sensor ->
                Some (e.Element.id, `Current (Hashtbl.find branch_index e.Element.id))
            | Element.Voltage_sensor ->
                Some
                  ( e.Element.id,
                    `Voltage (node e.Element.node_a, node e.Element.node_b) )
            | _ -> None)
          elements
      in
      Ok
        {
          ap_node_names = node_names;
          ap_sensors = sensors;
          ap_base = a;
          ap_base_b = b;
          ap_reactive = !reactive;
        }

let solve p ~frequencies_hz =
  List.iter
    (fun f -> if f <= 0.0 then invalid_arg "Ac.solve: non-positive frequency")
    frequencies_hz;
  let frequencies = Array.of_list frequencies_hz in
  let n_freq = Array.length frequencies in
  let node_h : response = Hashtbl.create 16 in
  List.iter
    (fun n -> Hashtbl.add node_h n (Array.make n_freq Complex.zero))
    p.ap_node_names;
  let sensor_h : response = Hashtbl.create 8 in
  List.iter
    (fun (id, _) -> Hashtbl.add sensor_h id (Array.make n_freq Complex.zero))
    p.ap_sensors;
  let solve_at idx freq =
    let omega = 2.0 *. Float.pi *. freq in
    let a = Numeric.Cmatrix.copy p.ap_base in
    List.iter
      (function
        | React_cap (ia, ib, c) ->
            let y = { Complex.re = 0.0; im = omega *. c } in
            (match ia with
            | Some i -> Numeric.Cmatrix.add_to a i i y
            | None -> ());
            (match ib with
            | Some j -> Numeric.Cmatrix.add_to a j j y
            | None -> ());
            (match (ia, ib) with
            | Some i, Some j ->
                Numeric.Cmatrix.add_to a i j (Complex.neg y);
                Numeric.Cmatrix.add_to a j i (Complex.neg y)
            | _ -> ())
        | React_ind (k, l) ->
            Numeric.Cmatrix.add_to a k k { Complex.re = 0.0; im = -.(omega *. l) })
      p.ap_reactive;
    match Numeric.Cmatrix.solve a p.ap_base_b with
    | exception Numeric.Cmatrix.Singular k ->
        Error (Dc.Singular_system (Printf.sprintf "AC pivot failure at %d" k))
    | x ->
        List.iteri
          (fun i n -> (Hashtbl.find node_h n).(idx) <- x.(i))
          p.ap_node_names;
        List.iter
          (fun (id, kind) ->
            let h =
              match kind with
              | `Current k -> x.(k)
              | `Voltage (ia, ib) ->
                  let v = function Some i -> x.(i) | None -> Complex.zero in
                  Complex.sub (v ia) (v ib)
            in
            (Hashtbl.find sensor_h id).(idx) <- h)
          p.ap_sensors;
        Ok ()
  in
  let rec run idx =
    if idx >= n_freq then Ok { frequencies; node_h; sensor_h }
    else
      match solve_at idx frequencies.(idx) with
      | Error e -> Error e
      | Ok () -> run (idx + 1)
  in
  run 0

let analyse ?gmin ~source netlist ~frequencies_hz =
  List.iter
    (fun f ->
      if f <= 0.0 then invalid_arg "Ac.analyse: non-positive frequency")
    frequencies_hz;
  match prepare ?gmin ~source netlist with
  | Error e -> Error e
  | Ok p -> solve p ~frequencies_hz

let points_of sweep trace =
  Array.to_list
    (Array.mapi
       (fun i h ->
         let magnitude = Complex.norm h in
         {
           frequency_hz = sweep.frequencies.(i);
           magnitude;
           magnitude_db = 20.0 *. log10 (Float.max magnitude 1e-300);
           phase_deg = Complex.arg h *. 180.0 /. Float.pi;
         })
       trace)

let node_response sweep n = points_of sweep (Hashtbl.find sweep.node_h n)

let sensor_response sweep id = points_of sweep (Hashtbl.find sweep.sensor_h id)

let cutoff_hz = function
  | [] -> None
  | first :: _ as points ->
      let threshold = first.magnitude_db -. 3.0 in
      List.find_map
        (fun p -> if p.magnitude_db <= threshold then Some p.frequency_hz else None)
        points

let log_space ~from_hz ~to_hz ~points =
  if from_hz <= 0.0 || to_hz <= from_hz then
    invalid_arg "Ac.log_space: need 0 < from < to";
  if points < 2 then invalid_arg "Ac.log_space: need at least 2 points";
  let lo = log10 from_hz and hi = log10 to_hz in
  List.init points (fun i ->
      10.0 ** (lo +. ((hi -. lo) *. float_of_int i /. float_of_int (points - 1))))
