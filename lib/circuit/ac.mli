(** AC small-signal (frequency-domain) analysis.

    Linearises the circuit about its DC operating point — diodes become
    their small-signal conductances, capacitors [jωC], inductors
    [1/(jωL)] — and solves the complex MNA system with one source driven
    by a unit phasor.  The result is the transfer function from that
    source to every node and sensor: Bode data, filter cutoffs, ripple
    rejection — the frequency-domain view of what {!Transient} shows in
    time. *)

type point = {
  frequency_hz : float;
  magnitude : float;  (** |H| *)
  magnitude_db : float;  (** 20 log10 |H| *)
  phase_deg : float;
}

type sweep

type prepared
(** A netlist readied for repeated sweeps: the DC operating point,
    unknown numbering and every frequency-independent stamp (resistive
    devices, diode small-signal conductances, source branches, gmin) are
    computed once.  Each frequency then copies the base matrix and
    restamps only the reactive entries. *)

val prepare :
  ?gmin:float -> source:string -> Netlist.t -> (prepared, Dc.error) result
(** [source] names the [Vsource]/[Isource] carrying the unit AC stimulus
    (its DC value still sets the operating point).  Raises
    [Invalid_argument] when [source] is missing or not a source. *)

val solve : prepared -> frequencies_hz:float list -> (sweep, Dc.error) result
(** Sweep the prepared system.  Raises [Invalid_argument] when a
    frequency is not positive. *)

val analyse :
  ?gmin:float ->
  source:string ->
  Netlist.t ->
  frequencies_hz:float list ->
  (sweep, Dc.error) result
(** [prepare] followed by [solve]; kept for single-sweep callers.
    Raises [Invalid_argument] as both halves do. *)

val node_response : sweep -> string -> point list
(** Transfer function to a node voltage.  Raises [Not_found]. *)

val sensor_response : sweep -> string -> point list
(** Transfer function to a sensor reading (amps for current sensors,
    volts for voltage sensors).  Raises [Not_found]. *)

val cutoff_hz : point list -> float option
(** First frequency at which the magnitude falls 3 dB below the
    lowest-frequency point; [None] if it never does within the sweep. *)

val log_space : from_hz:float -> to_hz:float -> points:int -> float list
(** Logarithmically spaced frequencies, inclusive of both ends.  Raises
    [Invalid_argument] on non-positive bounds or [points < 2]. *)
