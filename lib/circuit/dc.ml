type solution = {
  voltages : (string, float) Hashtbl.t;
  currents : (string, float) Hashtbl.t;
  current_sensors : (string * float) list;
  voltage_sensors : (string * float) list;
}

type error = Singular_system of string | No_convergence of int

let pp_error ppf = function
  | Singular_system what ->
      Format.fprintf ppf "singular MNA system (%s)" what
  | No_convergence n ->
      Format.fprintf ppf "Newton iteration did not converge in %d steps" n

let closed_switch_resistance = 1e-3

(* Junction-voltage critical value above which the exponential is
   linearised to avoid overflow (SPICE's pnjlim idea, simplified). *)
let junction_limit (p : Element.diode_params) v =
  let vt = p.Element.thermal_voltage *. p.Element.emission in
  let vcrit = vt *. log (vt /. (Float.sqrt 2.0 *. p.Element.saturation_current)) in
  if v > vcrit then vcrit +. (vt *. log (1.0 +. ((v -. vcrit) /. vt)))
  else v

let diode_current (p : Element.diode_params) v =
  let vt = p.Element.thermal_voltage *. p.Element.emission in
  let v = junction_limit p v in
  p.Element.saturation_current *. (exp (v /. vt) -. 1.0)

(* True derivative of [diode_current], including the limiter's chain-rule
   factor — an inconsistent Jacobian makes Newton oscillate around the
   operating point instead of converging. *)
let diode_conductance (p : Element.diode_params) v =
  let vt = p.Element.thermal_voltage *. p.Element.emission in
  let vcrit =
    vt *. log (vt /. (Float.sqrt 2.0 *. p.Element.saturation_current))
  in
  let vl = junction_limit p v in
  let limiter_slope =
    if v > vcrit then 1.0 /. (1.0 +. ((v -. vcrit) /. vt)) else 1.0
  in
  p.Element.saturation_current /. vt *. exp (vl /. vt) *. limiter_slope

(* ---------- prepared netlists ----------

   Everything that depends only on the topology — node/branch numbering,
   element partitioning and the stamps of the *linear* devices — is
   computed once per netlist and reused by every Newton iteration.
   Iterations then memcpy the base system and restamp only the diode
   companion entries, instead of re-walking the element list with
   hashtable lookups per rebuild.  The failure-injection FMEA performs
   one prepare per injected fault (the fault changes an element's kind,
   which may change the branch partition), so the cost of preparation is
   paid once per solve rather than once per iteration. *)

type prepared = {
  elements : Element.t array;
  node_names : string list;
  n_nodes : int;
  size : int;
  (* Per-element resolved unknown indices: None = ground. *)
  el_a : int option array;
  el_b : int option array;
  (* MNA branch row per element, -1 when the element has none. *)
  el_branch : int array;
  (* Diodes as (element index, params); restamped each iteration. *)
  diodes : (int * Element.diode_params) array;
  base_a : Numeric.Matrix.t;
  base_b : float array;
}

let prepare ?(gmin = 1e-9) netlist =
  let elements = Array.of_list (Netlist.elements netlist) in
  let node_names = Netlist.nodes netlist in
  let node_index = Hashtbl.create 16 in
  List.iteri (fun i n -> Hashtbl.add node_index n i) node_names;
  let n_nodes = List.length node_names in
  let n_elements = Array.length elements in
  let el_branch = Array.make n_elements (-1) in
  let next_branch = ref n_nodes in
  Array.iteri
    (fun i (e : Element.t) ->
      if Element.is_branch_element e.Element.kind then begin
        el_branch.(i) <- !next_branch;
        incr next_branch
      end)
    elements;
  let size = !next_branch in
  let node n =
    if String.equal n Netlist.ground then None else Hashtbl.find_opt node_index n
  in
  let el_a =
    Array.map (fun (e : Element.t) -> node e.Element.node_a) elements
  in
  let el_b =
    Array.map (fun (e : Element.t) -> node e.Element.node_b) elements
  in
  let diodes = ref [] in
  let a = Numeric.Matrix.create size size in
  let b = Numeric.Vector.create size in
  let stamp_conductance ia ib g =
    (match ia with Some i -> Numeric.Matrix.add_to a i i g | None -> ());
    (match ib with Some j -> Numeric.Matrix.add_to a j j g | None -> ());
    match (ia, ib) with
    | Some i, Some j ->
        Numeric.Matrix.add_to a i j (-.g);
        Numeric.Matrix.add_to a j i (-.g)
    | _ -> ()
  in
  let stamp_current_source ia ib amps =
    (* amps flows a -> b inside the source, i.e. out of node b. *)
    (match ia with Some i -> b.(i) <- b.(i) -. amps | None -> ());
    match ib with Some j -> b.(j) <- b.(j) +. amps | None -> ()
  in
  let stamp_voltage_branch k ia ib volts =
    (match ia with
    | Some i ->
        Numeric.Matrix.add_to a i k 1.0;
        Numeric.Matrix.add_to a k i 1.0
    | None -> ());
    (match ib with
    | Some j ->
        Numeric.Matrix.add_to a j k (-1.0);
        Numeric.Matrix.add_to a k j (-1.0)
    | None -> ());
    b.(k) <- b.(k) +. volts
  in
  Array.iteri
    (fun idx (e : Element.t) ->
      let ia = el_a.(idx) and ib = el_b.(idx) in
      match e.Element.kind with
      | Element.Resistor r | Element.Load r -> stamp_conductance ia ib (1.0 /. r)
      | Element.Switch true ->
          stamp_conductance ia ib (1.0 /. closed_switch_resistance)
      | Element.Switch false | Element.Capacitor _ | Element.Voltage_sensor -> ()
      | Element.Isource amps -> stamp_current_source ia ib amps
      | Element.Vsource volts -> stamp_voltage_branch el_branch.(idx) ia ib volts
      | Element.Inductor _ -> stamp_voltage_branch el_branch.(idx) ia ib 0.0
      | Element.Current_sensor -> stamp_voltage_branch el_branch.(idx) ia ib 0.0
      | Element.Diode p -> diodes := (idx, p) :: !diodes)
    elements;
  (* gmin to ground for solvability under fault injection. *)
  for i = 0 to n_nodes - 1 do
    Numeric.Matrix.add_to a i i gmin
  done;
  {
    elements;
    node_names;
    n_nodes;
    size;
    el_a;
    el_b;
    el_branch;
    diodes = Array.of_list (List.rev !diodes);
    base_a = a;
    base_b = b;
  }

let solve ?(max_iterations = 200) ?(max_step_param = 0.5) p =
  let n_nodes = p.n_nodes in
  let has_diodes = Array.length p.diodes > 0 in
  (* Voltage guess per node, refined by Newton when diodes are present. *)
  let guess = Array.make p.size 0.0 in
  let node_v v_guess = function Some i -> v_guess.(i) | None -> 0.0 in
  let build v_guess =
    if not has_diodes then (p.base_a, p.base_b)
    else begin
      let a = Numeric.Matrix.copy p.base_a in
      let b = Array.copy p.base_b in
      let stamp_conductance ia ib g =
        (match ia with Some i -> Numeric.Matrix.add_to a i i g | None -> ());
        (match ib with Some j -> Numeric.Matrix.add_to a j j g | None -> ());
        match (ia, ib) with
        | Some i, Some j ->
            Numeric.Matrix.add_to a i j (-.g);
            Numeric.Matrix.add_to a j i (-.g)
        | _ -> ()
      in
      Array.iter
        (fun (idx, (prm : Element.diode_params)) ->
          (* Newton companion model: conductance g and current source
             i_eq = i(v) - g v, in parallel a -> b. *)
          let ia = p.el_a.(idx) and ib = p.el_b.(idx) in
          let v = node_v v_guess ia -. node_v v_guess ib in
          let g = Float.max (diode_conductance prm v) 1e-12 in
          let i_eq = diode_current prm v -. (g *. v) in
          stamp_conductance ia ib g;
          (match ia with Some i -> b.(i) <- b.(i) -. i_eq | None -> ());
          match ib with Some j -> b.(j) <- b.(j) +. i_eq | None -> ())
        p.diodes;
      (a, b)
    end
  in
  let solve_once v_guess =
    let a, b = build v_guess in
    (* [Lu.solve] copies its inputs, so the base system survives. *)
    match Numeric.Lu.solve a b with
    | x -> Ok x
    | exception Numeric.Lu.Singular k ->
        Error (Singular_system (Printf.sprintf "pivot failure at unknown %d" k))
  in
  let rec newton v_guess iter =
    if iter > max_iterations then Error (No_convergence max_iterations)
    else
      match solve_once v_guess with
      | Error _ as e -> e
      | Ok x ->
          (* Damp the node-voltage update to keep the diode exponential
             stable. *)
          let damped = Array.copy x in
          let max_step = max_step_param in
          for i = 0 to n_nodes - 1 do
            let dv = x.(i) -. v_guess.(i) in
            if Float.abs dv > max_step then
              damped.(i) <- v_guess.(i) +. (if dv > 0.0 then max_step else -.max_step)
          done;
          (* SPICE-style per-variable tolerance: |Δv| ≤ reltol·|v| + vntol.
             An absolute-only criterion is unreachable when the system is
             ill-conditioned (mΩ switches vs gmin span ~12 decades and the
             diode companion amplifies LU roundoff). *)
          let reltol = 1e-6 and vntol = 1e-6 in
          let converged = ref true in
          for i = 0 to Array.length damped - 1 do
            let dv = Float.abs (damped.(i) -. v_guess.(i)) in
            if dv > (reltol *. Float.abs damped.(i)) +. vntol then
              converged := false
          done;
          if !converged then Ok damped else newton damped (iter + 1)
  in
  let result = if has_diodes then newton guess 0 else solve_once guess in
  match result with
  | Error _ as e -> e
  | Ok x ->
      let voltages = Hashtbl.create 16 in
      Hashtbl.add voltages Netlist.ground 0.0;
      List.iteri (fun i n -> Hashtbl.add voltages n x.(i)) p.node_names;
      let uv = function Some i -> x.(i) | None -> 0.0 in
      let currents = Hashtbl.create 16 in
      let current_sensors = ref [] in
      let voltage_sensors = ref [] in
      Array.iteri
        (fun idx (e : Element.t) ->
          let va = uv p.el_a.(idx) and vb = uv p.el_b.(idx) in
          let current =
            match e.Element.kind with
            | Element.Resistor r | Element.Load r -> (va -. vb) /. r
            | Element.Switch true -> (va -. vb) /. closed_switch_resistance
            | Element.Switch false | Element.Capacitor _ | Element.Voltage_sensor
              ->
                0.0
            | Element.Isource amps -> amps
            | Element.Diode prm -> diode_current prm (va -. vb)
            | Element.Vsource _ | Element.Inductor _ | Element.Current_sensor ->
                x.(p.el_branch.(idx))
          in
          Hashtbl.replace currents e.Element.id current;
          (match e.Element.kind with
          | Element.Current_sensor ->
              current_sensors := (e.Element.id, current) :: !current_sensors
          | Element.Voltage_sensor ->
              voltage_sensors := (e.Element.id, va -. vb) :: !voltage_sensors
          | _ -> ()))
        p.elements;
      Ok
        {
          voltages;
          currents;
          current_sensors = List.rev !current_sensors;
          voltage_sensors = List.rev !voltage_sensors;
        }

let analyse ?gmin ?max_iterations ?max_step_param netlist =
  solve ?max_iterations ?max_step_param (prepare ?gmin netlist)

let node_voltage s n =
  match Hashtbl.find_opt s.voltages n with
  | Some v -> v
  | None ->
      if String.equal (String.lowercase_ascii n) "0" then 0.0 else raise Not_found

let element_current s id =
  match Hashtbl.find_opt s.currents id with
  | Some i -> i
  | None -> raise Not_found

let current_sensor_readings s = s.current_sensors

let voltage_sensor_readings s = s.voltage_sensors

let all_sensor_readings s = s.current_sensors @ s.voltage_sensors
