type solution = {
  voltages : (string, float) Hashtbl.t;
  currents : (string, float) Hashtbl.t;
  current_sensors : (string * float) list;
  voltage_sensors : (string * float) list;
}

type error = Singular_system of string | No_convergence of int

let pp_error ppf = function
  | Singular_system what ->
      Format.fprintf ppf "singular MNA system (%s)" what
  | No_convergence n ->
      Format.fprintf ppf "Newton iteration did not converge in %d steps" n

let closed_switch_resistance = 1e-3

(* Junction-voltage critical value above which the exponential is
   linearised to avoid overflow (SPICE's pnjlim idea, simplified). *)
let junction_limit (p : Element.diode_params) v =
  let vt = p.Element.thermal_voltage *. p.Element.emission in
  let vcrit = vt *. log (vt /. (Float.sqrt 2.0 *. p.Element.saturation_current)) in
  if v > vcrit then vcrit +. (vt *. log (1.0 +. ((v -. vcrit) /. vt)))
  else v

let diode_current (p : Element.diode_params) v =
  let vt = p.Element.thermal_voltage *. p.Element.emission in
  let v = junction_limit p v in
  p.Element.saturation_current *. (exp (v /. vt) -. 1.0)

(* True derivative of [diode_current], including the limiter's chain-rule
   factor — an inconsistent Jacobian makes Newton oscillate around the
   operating point instead of converging. *)
let diode_conductance (p : Element.diode_params) v =
  let vt = p.Element.thermal_voltage *. p.Element.emission in
  let vcrit =
    vt *. log (vt /. (Float.sqrt 2.0 *. p.Element.saturation_current))
  in
  let vl = junction_limit p v in
  let limiter_slope =
    if v > vcrit then 1.0 /. (1.0 +. ((v -. vcrit) /. vt)) else 1.0
  in
  p.Element.saturation_current /. vt *. exp (vl /. vt) *. limiter_slope

(* ---------- prepared netlists ----------

   Everything that depends only on the topology — node/branch numbering,
   element partitioning and the stamps of the *linear* devices — is
   computed once per netlist and reused by every Newton iteration.
   Iterations then copy the base system and restamp only the diode
   companion entries, instead of re-walking the element list with
   hashtable lookups per rebuild.

   The base system is assembled in triplet form and then lowered to
   either a dense matrix (small systems — the O(n³) constant is tiny and
   cache-friendly) or CSR with a cached minimum-degree ordering (large
   systems, where dense factorisation is almost entirely wasted work on
   structural zeros).  Diode companion stamps get explicit zero triplets
   so the sparse pattern — and therefore the cached ordering and the
   per-diode value indices — is stable across Newton iterations. *)

type backend = [ `Auto | `Dense | `Sparse ]

(* Above this many unknowns the sparse path wins even for one-shot
   solves; below it the dense kernel's low constant dominates. *)
let sparse_threshold = 128

type base =
  | Dense_base of Numeric.Matrix.t
  | Sparse_base of {
      s_a : Numeric.Sparse.t;
      s_order : int array; (* cached fill-reducing ordering *)
      (* Per diode, the CSR value positions of its four companion stamps
         as (value index, ±1) — filled per Newton iteration. *)
      s_diode_pos : (int * float) array array;
    }

type prepared = {
  elements : Element.t array;
  node_names : string list;
  n_nodes : int;
  size : int;
  (* Per-element resolved unknown indices: None = ground. *)
  el_a : int option array;
  el_b : int option array;
  (* MNA branch row per element, -1 when the element has none. *)
  el_branch : int array;
  (* Diodes as (element index, params); restamped each iteration. *)
  diodes : (int * Element.diode_params) array;
  base : base;
  base_b : float array;
}

let size p = p.size

let backend_used p =
  match p.base with Dense_base _ -> `Dense | Sparse_base _ -> `Sparse

let prepare ?(gmin = 1e-9) ?(backend = `Auto) netlist =
  let elements = Array.of_list (Netlist.elements netlist) in
  let node_names = Netlist.nodes netlist in
  let node_index = Hashtbl.create 16 in
  List.iteri (fun i n -> Hashtbl.add node_index n i) node_names;
  let n_nodes = List.length node_names in
  let n_elements = Array.length elements in
  let el_branch = Array.make n_elements (-1) in
  let next_branch = ref n_nodes in
  Array.iteri
    (fun i (e : Element.t) ->
      if Element.is_branch_element e.Element.kind then begin
        el_branch.(i) <- !next_branch;
        incr next_branch
      end)
    elements;
  let size = !next_branch in
  let node n =
    if String.equal n Netlist.ground then None else Hashtbl.find_opt node_index n
  in
  let el_a =
    Array.map (fun (e : Element.t) -> node e.Element.node_a) elements
  in
  let el_b =
    Array.map (fun (e : Element.t) -> node e.Element.node_b) elements
  in
  let diodes = ref [] in
  let trip = Numeric.Sparse.create size in
  let b = Numeric.Vector.create size in
  let stamp_conductance ia ib g =
    (match ia with Some i -> Numeric.Sparse.add_to trip i i g | None -> ());
    (match ib with Some j -> Numeric.Sparse.add_to trip j j g | None -> ());
    match (ia, ib) with
    | Some i, Some j ->
        Numeric.Sparse.add_to trip i j (-.g);
        Numeric.Sparse.add_to trip j i (-.g)
    | _ -> ()
  in
  let stamp_current_source ia ib amps =
    (* amps flows a -> b inside the source, i.e. out of node b. *)
    (match ia with Some i -> b.(i) <- b.(i) -. amps | None -> ());
    match ib with Some j -> b.(j) <- b.(j) +. amps | None -> ()
  in
  let stamp_voltage_branch k ia ib volts =
    (match ia with
    | Some i ->
        Numeric.Sparse.add_to trip i k 1.0;
        Numeric.Sparse.add_to trip k i 1.0
    | None -> ());
    (match ib with
    | Some j ->
        Numeric.Sparse.add_to trip j k (-1.0);
        Numeric.Sparse.add_to trip k j (-1.0)
    | None -> ());
    b.(k) <- b.(k) +. volts
  in
  Array.iteri
    (fun idx (e : Element.t) ->
      let ia = el_a.(idx) and ib = el_b.(idx) in
      match e.Element.kind with
      | Element.Resistor r | Element.Load r -> stamp_conductance ia ib (1.0 /. r)
      | Element.Switch true ->
          stamp_conductance ia ib (1.0 /. closed_switch_resistance)
      | Element.Switch false | Element.Capacitor _ | Element.Voltage_sensor -> ()
      | Element.Isource amps -> stamp_current_source ia ib amps
      | Element.Vsource volts -> stamp_voltage_branch el_branch.(idx) ia ib volts
      | Element.Inductor _ -> stamp_voltage_branch el_branch.(idx) ia ib 0.0
      | Element.Current_sensor -> stamp_voltage_branch el_branch.(idx) ia ib 0.0
      | Element.Diode p ->
          (* Reserve the companion stamp positions with explicit zeros so
             the compressed pattern covers them. *)
          stamp_conductance ia ib 0.0;
          diodes := (idx, p) :: !diodes)
    elements;
  (* gmin to ground for solvability under fault injection. *)
  for i = 0 to n_nodes - 1 do
    Numeric.Sparse.add_to trip i i gmin
  done;
  let diodes = Array.of_list (List.rev !diodes) in
  let sa = Numeric.Sparse.compress trip in
  let chosen =
    match backend with
    | `Dense -> `Dense
    | `Sparse -> `Sparse
    | `Auto -> if size >= sparse_threshold then `Sparse else `Dense
  in
  let base =
    match chosen with
    | `Dense -> Dense_base (Numeric.Sparse.to_dense sa)
    | `Sparse ->
        let pos i j =
          match Numeric.Sparse.index sa i j with
          | Some p -> p
          | None -> assert false (* reserved above *)
        in
        let s_diode_pos =
          Array.map
            (fun (idx, _) ->
              let ia = el_a.(idx) and ib = el_b.(idx) in
              let entries = ref [] in
              (match ia with
              | Some i -> entries := (pos i i, 1.0) :: !entries
              | None -> ());
              (match ib with
              | Some j -> entries := (pos j j, 1.0) :: !entries
              | None -> ());
              (match (ia, ib) with
              | Some i, Some j ->
                  entries := (pos i j, -1.0) :: (pos j i, -1.0) :: !entries
              | _ -> ());
              Array.of_list !entries)
            diodes
        in
        Sparse_base { s_a = sa; s_order = Numeric.Sparse.min_degree_order sa; s_diode_pos }
  in
  {
    elements;
    node_names;
    n_nodes;
    size;
    el_a;
    el_b;
    el_branch;
    diodes;
    base;
    base_b = b;
  }

(* ---------- assembly and raw solves ---------- *)

type assembled =
  | A_dense of Numeric.Matrix.t
  | A_sparse of Numeric.Sparse.t

let node_v v_guess = function Some i -> v_guess.(i) | None -> 0.0

let diode_companion p v_guess idx (prm : Element.diode_params) =
  (* Newton companion model: conductance g and current source
     i_eq = i(v) - g v, in parallel a -> b. *)
  let v = node_v v_guess p.el_a.(idx) -. node_v v_guess p.el_b.(idx) in
  let g = Float.max (diode_conductance prm v) 1e-12 in
  let i_eq = (diode_current prm v) -. (g *. v) in
  (g, i_eq)

(* The MNA system at a given diode-voltage guess.  Linear circuits reuse
   the base arrays directly; circuits with diodes copy and restamp only
   the companion entries. *)
let assemble p v_guess =
  if Array.length p.diodes = 0 then
    ( (match p.base with
      | Dense_base a -> A_dense a
      | Sparse_base { s_a; _ } -> A_sparse s_a),
      p.base_b )
  else begin
    let b = Array.copy p.base_b in
    let stamp_rhs idx i_eq =
      (match p.el_a.(idx) with
      | Some i -> b.(i) <- b.(i) -. i_eq
      | None -> ());
      match p.el_b.(idx) with
      | Some j -> b.(j) <- b.(j) +. i_eq
      | None -> ()
    in
    let a =
      match p.base with
      | Dense_base base_a ->
          let a = Numeric.Matrix.copy base_a in
          Array.iter
            (fun (idx, prm) ->
              let g, i_eq = diode_companion p v_guess idx prm in
              let ia = p.el_a.(idx) and ib = p.el_b.(idx) in
              (match ia with
              | Some i -> Numeric.Matrix.add_to a i i g
              | None -> ());
              (match ib with
              | Some j -> Numeric.Matrix.add_to a j j g
              | None -> ());
              (match (ia, ib) with
              | Some i, Some j ->
                  Numeric.Matrix.add_to a i j (-.g);
                  Numeric.Matrix.add_to a j i (-.g)
              | _ -> ());
              stamp_rhs idx i_eq)
            p.diodes;
          A_dense a
      | Sparse_base { s_a; s_diode_pos; _ } ->
          let a = Numeric.Sparse.copy s_a in
          Array.iteri
            (fun di (idx, prm) ->
              let g, i_eq = diode_companion p v_guess idx prm in
              Array.iter
                (fun (vi, sign) -> Numeric.Sparse.add_to_value a vi (sign *. g))
                s_diode_pos.(di);
              stamp_rhs idx i_eq)
            p.diodes;
          A_sparse a
    in
    (a, b)
  end

let singular_error k =
  Singular_system (Printf.sprintf "pivot failure at unknown %d" k)

let solve_assembled p a b =
  match a with
  | A_dense m -> (
      (* [Lu.solve] copies its inputs, so the base system survives. *)
      match Numeric.Lu.solve m b with
      | x -> Ok x
      | exception Numeric.Lu.Singular k -> Error (singular_error k))
  | A_sparse s -> (
      let order =
        match p.base with
        | Sparse_base { s_order; _ } -> s_order
        | Dense_base _ -> assert false
      in
      match Numeric.Sparse.solve ~order s b with
      | x -> Ok x
      | exception Numeric.Lu.Singular k -> Error (singular_error k))

(* ---------- Newton iteration ---------- *)

let reltol = 1e-6
let vntol = 1e-6

(* Generic damped Newton driver shared by the prepared solve (dense or
   sparse base) and the golden-factor injection re-solve.  [solve_once]
   produces the next iterate from the current guess. *)
let newton_loop ~max_iterations ~max_step ~n_nodes solve_once guess0 =
  let rec go v_guess iter =
    if iter > max_iterations then Error (No_convergence max_iterations)
    else
      match solve_once v_guess with
      | Error _ as e -> e
      | Ok x ->
          (* Damp the node-voltage update to keep the diode exponential
             stable. *)
          let damped = Array.copy x in
          for i = 0 to n_nodes - 1 do
            let dv = x.(i) -. v_guess.(i) in
            if Float.abs dv > max_step then
              damped.(i) <- v_guess.(i) +. (if dv > 0.0 then max_step else -.max_step)
          done;
          (* SPICE-style per-variable tolerance: |Δv| ≤ reltol·|v| + vntol.
             An absolute-only criterion is unreachable when the system is
             ill-conditioned (mΩ switches vs gmin span ~12 decades and the
             diode companion amplifies LU roundoff). *)
          let converged = ref true in
          for i = 0 to Array.length damped - 1 do
            let dv = Float.abs (damped.(i) -. v_guess.(i)) in
            if dv > (reltol *. Float.abs damped.(i)) +. vntol then
              converged := false
          done;
          if !converged then Ok damped else go damped (iter + 1)
  in
  go guess0 0

(* Raw solve: the unknown vector, before observable extraction. *)
let solve_raw ?(max_iterations = 200) ?(max_step_param = 0.5) p =
  let solve_once v_guess =
    let a, b = assemble p v_guess in
    solve_assembled p a b
  in
  if Array.length p.diodes = 0 then solve_once [||]
  else
    newton_loop ~max_iterations ~max_step:max_step_param ~n_nodes:p.n_nodes
      solve_once
      (Array.make p.size 0.0)

(* ---------- observable extraction ---------- *)

(* [elements] is passed explicitly so the injection path can extract with
   one element's kind swapped for its faulted kind while reusing the
   golden topology (node/branch numbering is unchanged by faults). *)
let extract p (elements : Element.t array) x =
  let voltages = Hashtbl.create 16 in
  Hashtbl.add voltages Netlist.ground 0.0;
  List.iteri (fun i n -> Hashtbl.add voltages n x.(i)) p.node_names;
  let uv = function Some i -> x.(i) | None -> 0.0 in
  let currents = Hashtbl.create 16 in
  let current_sensors = ref [] in
  let voltage_sensors = ref [] in
  Array.iteri
    (fun idx (e : Element.t) ->
      let va = uv p.el_a.(idx) and vb = uv p.el_b.(idx) in
      let current =
        match e.Element.kind with
        | Element.Resistor r | Element.Load r -> (va -. vb) /. r
        | Element.Switch true -> (va -. vb) /. closed_switch_resistance
        | Element.Switch false | Element.Capacitor _ | Element.Voltage_sensor
          ->
            0.0
        | Element.Isource amps -> amps
        | Element.Diode prm -> diode_current prm (va -. vb)
        | Element.Vsource _ | Element.Inductor _ | Element.Current_sensor ->
            x.(p.el_branch.(idx))
      in
      Hashtbl.replace currents e.Element.id current;
      (match e.Element.kind with
      | Element.Current_sensor ->
          current_sensors := (e.Element.id, current) :: !current_sensors
      | Element.Voltage_sensor ->
          voltage_sensors := (e.Element.id, va -. vb) :: !voltage_sensors
      | _ -> ()))
    elements;
  {
    voltages;
    currents;
    current_sensors = List.rev !current_sensors;
    voltage_sensors = List.rev !voltage_sensors;
  }

let solve ?max_iterations ?max_step_param p =
  match solve_raw ?max_iterations ?max_step_param p with
  | Error _ as e -> e
  | Ok x -> Ok (extract p p.elements x)

let analyse ?gmin ?backend ?max_iterations ?max_step_param netlist =
  solve ?max_iterations ?max_step_param (prepare ?gmin ?backend netlist)

(* ---------- golden factorisation and low-rank fault re-solve ----------

   The fault-injection FMEA solves thousands of systems that differ from
   the golden one by a handful of stamps: an open, a short or a drift on
   one element is a rank-0/1/2 perturbation A + U·Vᵀ of the golden MNA
   matrix.  [factorise] captures the golden factors once; [inject] then
   classifies a fault into its low-rank delta and re-solves with
   Sherman–Morrison–Woodbury against the existing factors, instead of
   assembling and factorising a faulted system from scratch. *)

type factors_v =
  | F_dense of Numeric.Lu.factors
  | F_sparse of Numeric.Sparse.factors

type golden = {
  g_p : prepared;
  g_a : assembled; (* final op-point matrix, for refinement residuals *)
  g_fact : factors_v;
  g_b : float array; (* final op-point RHS, incl. diode companions *)
  g_x : float array;
  g_solution : solution;
  (* Per p.diodes entry: companion (g, i_eq) baked into g_a/g_b. *)
  g_diode_op : (float * float) array;
  g_index : (string, int) Hashtbl.t; (* element id -> index *)
}

let solve_factored_v f b =
  match f with
  | F_dense f -> Numeric.Lu.solve_factored f b
  | F_sparse f -> Numeric.Sparse.solve_factored f b

let matvec_v a x =
  match a with
  | A_dense m -> Numeric.Matrix.mul_vec m x
  | A_sparse s -> Numeric.Sparse.mul_vec s x

let factorise ?max_iterations ?max_step_param p =
  match solve_raw ?max_iterations ?max_step_param p with
  | Error err -> Error err
  | Ok x_star -> (
      (* Rebuild the system at the converged operating point: the golden
         factors must correspond exactly to the stamps recorded in
         [g_diode_op], since injection deltas are computed against them. *)
      let a, b = assemble p x_star in
      let fact_result =
        try
          Ok
            (match a with
            | A_dense m -> F_dense (Numeric.Lu.decompose m)
            | A_sparse s ->
                let order =
                  match p.base with
                  | Sparse_base { s_order; _ } -> s_order
                  | Dense_base _ -> assert false
                in
                F_sparse (Numeric.Sparse.decompose ~order s))
        with Numeric.Lu.Singular k -> Error (singular_error k)
      in
      match fact_result with
      | Error err -> Error err
      | Ok fact ->
          let g_x = solve_factored_v fact b in
          let g_diode_op =
            Array.map
              (fun (idx, prm) -> diode_companion p x_star idx prm)
              p.diodes
          in
          let g_index = Hashtbl.create 64 in
          Array.iteri
            (fun i (e : Element.t) -> Hashtbl.replace g_index e.Element.id i)
            p.elements;
          Ok
            {
              g_p = p;
              g_a = a;
              g_fact = fact;
              g_b = b;
              g_x;
              g_solution = extract p p.elements g_x;
              g_diode_op;
              g_index;
            })

let golden_solution g = g.g_solution

let smw_singular_error element_id fault =
  Singular_system
    (Printf.sprintf "fault %s on %s makes the system singular"
       (Fault.to_string fault) element_id)

let inject ?(max_iterations = 200) ?(max_step_param = 0.5)
    ?(on_path = fun _ -> ()) g ~element_id fault =
  let p = g.g_p in
  let idx =
    match Hashtbl.find_opt g.g_index element_id with
    | Some i -> i
    | None -> raise Not_found
  in
  let e = p.elements.(idx) in
  let old_kind = e.Element.kind in
  let new_kind = Fault.faulted_kind old_kind fault ~element:element_id in
  let faulted_elements = Array.copy p.elements in
  faulted_elements.(idx) <- { e with Element.kind = new_kind };
  (* coeff·(e_a − e_b) over the given terminals, ground dropped. *)
  let pvec ia ib coeff =
    Array.of_list
      (List.filter_map Fun.id
         [
           Option.map (fun i -> (i, coeff)) ia;
           Option.map (fun j -> (j, -.coeff)) ib;
         ])
  in
  let ia = p.el_a.(idx) and ib = p.el_b.(idx) in
  let pair_vec = pvec ia ib in
  (* Conductance stamped for a (non-branch, non-diode) kind. *)
  let static_g = function
    | Element.Resistor r | Element.Load r -> 1.0 /. r
    | Element.Switch true -> 1.0 /. closed_switch_resistance
    | Element.Switch false | Element.Capacitor _ | Element.Voltage_sensor
    | Element.Isource _ ->
        0.0
    | Element.Vsource _ | Element.Inductor _ | Element.Current_sensor
    | Element.Diode _ ->
        assert false
  in
  let my_diode = ref None in
  Array.iteri
    (fun di (ei, _) -> if ei = idx then my_diode := Some di)
    p.diodes;
  let updates = ref [] in
  let rhs = ref [] in
  let add_update u v =
    if Array.length u > 0 && Array.length v > 0 then
      updates := (u, v) :: !updates
  in
  let add_rhs i d =
    match i with
    | Some i when d <> 0.0 -> rhs := (i, d) :: !rhs
    | _ -> ()
  in
  let k = p.el_branch.(idx) in
  if k >= 0 then begin
    (* Branch element (Vsource / Inductor / Current_sensor): the branch
       row and column stay in the system; the fault rewrites the branch's
       defining equation.  *)
    let old_bk = match old_kind with Element.Vsource v -> v | _ -> 0.0 in
    match new_kind with
    | Element.Switch false ->
        (* Disable the branch: row k becomes x_k = 0 and the branch
           current drops out of the KCL rows.  With the original stamps
           A(k,a)=1, A(k,b)=-1, A(a,k)=1, A(b,k)=-1, A(k,k)=0, this is
           the rank-2 update e_k·(e_k − e_a + e_b)ᵀ + (e_b − e_a)·e_kᵀ. *)
        add_update [| (k, 1.0) |] (Array.append [| (k, 1.0) |] (pvec ia ib (-1.0)));
        add_update (pvec ia ib (-1.0)) [| (k, 1.0) |];
        if old_bk <> 0.0 then rhs := (k, -.old_bk) :: !rhs
    | Element.Resistor r ->
        (* Short: keep the branch current and turn the defining equation
           into v_a − v_b − r·i_k = 0, i.e. add −r at (k,k).  Extraction
           as (va − vb)/r then equals x_k by construction. *)
        add_update [| (k, 1.0) |] [| (k, -.r) |];
        if old_bk <> 0.0 then rhs := (k, -.old_bk) :: !rhs
    | Element.Vsource v' -> if v' <> old_bk then rhs := (k, v' -. old_bk) :: !rhs
    | Element.Inductor _ -> (* still a DC short — identical stamps *) ()
    | _ -> assert false (* no fault maps a branch element elsewhere *)
  end
  else begin
    let g_old =
      match old_kind with
      | Element.Diode _ -> (
          match !my_diode with
          | Some di -> fst g.g_diode_op.(di)
          | None -> assert false)
      | kind -> static_g kind
    in
    let dg = static_g new_kind -. g_old in
    if dg <> 0.0 then add_update (pair_vec dg) (pair_vec 1.0);
    (* Un-stamp the old RHS contribution, stamp the new one. *)
    (match old_kind with
    | Element.Isource amps ->
        add_rhs ia amps;
        add_rhs ib (-.amps)
    | Element.Diode _ ->
        let i_eq =
          match !my_diode with
          | Some di -> snd g.g_diode_op.(di)
          | None -> 0.0
        in
        add_rhs ia i_eq;
        add_rhs ib (-.i_eq)
    | _ -> ());
    match new_kind with
    | Element.Isource amps ->
        add_rhs ia (-.amps);
        add_rhs ib amps
    | _ -> ()
  end;
  let fault_updates = Array.of_list (List.rev !updates) in
  let fu = Array.map fst fault_updates and fv = Array.map snd fault_updates in
  if Array.length fu = 0 && !rhs = [] then begin
    (* The faulted stamps are identical (e.g. capacitor open, closed
       switch shorted): the golden solution is the faulted solution. *)
    on_path `Reused;
    Ok (extract p faulted_elements g.g_x)
  end
  else begin
    let n = p.size in
    let base_solve b = solve_factored_v g.g_fact b in
    let b_fault = Array.copy g.g_b in
    List.iter (fun (i, d) -> b_fault.(i) <- b_fault.(i) +. d) !rhs;
    (* Diodes other than the faulted element stay active: their golden
       companion stamps are inside the factors, so each Newton iteration
       contributes (g(v) − g_op) rank-1 corrections on top of the fault's
       own delta.  At the warm start v = golden x those corrections are
       exactly zero. *)
    let active =
      Array.of_list
        (List.filter_map Fun.id
           (Array.to_list
              (Array.mapi
                 (fun di (ei, prm) ->
                   if ei = idx then None
                   else Some (ei, prm, g.g_diode_op.(di)))
                 p.diodes)))
    in
    if Array.length active = 0 then begin
      (* Linear faulted circuit: one SMW re-solve plus one step of
         iterative refinement (gmin-scale cancellation on opens would
         otherwise cost a few digits). *)
      match Numeric.Smw.prepare ~n ~solve:base_solve ~u:fu ~v:fv with
      | exception Numeric.Lu.Singular _ ->
          Error (smw_singular_error element_id fault)
      | smw ->
          let x = Numeric.Smw.solve smw b_fault in
          let ax = matvec_v g.g_a x in
          let uvx = Numeric.Smw.apply_update smw x in
          let r = Array.init n (fun i -> b_fault.(i) -. ax.(i) -. uvx.(i)) in
          let dx = Numeric.Smw.solve smw r in
          for i = 0 to n - 1 do
            x.(i) <- x.(i) +. dx.(i)
          done;
          on_path (`Rank_update (Numeric.Smw.rank smw));
          Ok (extract p faulted_elements x)
    end
    else begin
      let rank_seen = ref (Array.length fu) in
      let solve_once v_guess =
        let extra = ref [] in
        let b = Array.copy b_fault in
        Array.iter
          (fun (ei, prm, (g_op, ieq_op)) ->
            let dia = p.el_a.(ei) and dib = p.el_b.(ei) in
            let v = node_v v_guess dia -. node_v v_guess dib in
            let gd = Float.max (diode_conductance prm v) 1e-12 in
            let ieq = (diode_current prm v) -. (gd *. v) in
            let dgd = gd -. g_op and dieq = ieq -. ieq_op in
            if dgd <> 0.0 then extra := (pvec dia dib dgd, pvec dia dib 1.0) :: !extra;
            (match dia with
            | Some i -> b.(i) <- b.(i) -. dieq
            | None -> ());
            match dib with
            | Some j -> b.(j) <- b.(j) +. dieq
            | None -> ())
          active;
        let extra = Array.of_list !extra in
        let u = Array.append fu (Array.map fst extra) in
        let v = Array.append fv (Array.map snd extra) in
        rank_seen := max !rank_seen (Array.length u);
        match Numeric.Smw.prepare ~n ~solve:base_solve ~u ~v with
        | exception Numeric.Lu.Singular _ ->
            Error (smw_singular_error element_id fault)
        | smw -> Ok (Numeric.Smw.solve smw b)
      in
      match
        newton_loop ~max_iterations ~max_step:max_step_param
          ~n_nodes:p.n_nodes solve_once (Array.copy g.g_x)
      with
      | Error _ as err -> err
      | Ok x ->
          on_path (`Rank_update !rank_seen);
          Ok (extract p faulted_elements x)
    end
  end

(* ---------- observables ---------- *)

let node_voltage s n =
  match Hashtbl.find_opt s.voltages n with
  | Some v -> v
  | None ->
      if String.equal (String.lowercase_ascii n) "0" then 0.0 else raise Not_found

let element_current s id =
  match Hashtbl.find_opt s.currents id with
  | Some i -> i
  | None -> raise Not_found

let current_sensor_readings s = s.current_sensors

let voltage_sensor_readings s = s.voltage_sensors

let all_sensor_readings s = s.current_sensors @ s.voltage_sensors
