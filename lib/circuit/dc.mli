(** DC operating-point analysis by Modified Nodal Analysis.

    Unknowns are the non-ground node voltages plus one branch current per
    voltage-defined element (sources, inductors — DC shorts — and current
    sensors).  Diodes are solved by damped Newton iteration on the
    Shockley equation.  A small [gmin] conductance from every node to
    ground keeps fault-injected circuits (floating nodes after an "open")
    solvable; the affected readings then collapse towards zero, which is
    exactly the observable the failure-injection FMEA compares. *)

type solution

type error =
  | Singular_system of string
  | No_convergence of int  (** Newton iterations exhausted *)

val pp_error : Format.formatter -> error -> unit

val analyse : ?gmin:float -> ?max_iterations:int -> ?max_step_param:float -> Netlist.t -> (solution, error) result
(** Default [gmin] 1e-9 S, [max_iterations] 200.  Equivalent to
    {!prepare} followed by {!solve}. *)

(** {1 Prepared solves}

    The hot loop of the failure-injection FMEA is thousands of DC solves
    over near-identical netlists.  {!prepare} hoists everything that
    depends only on the topology — node/branch numbering, element
    partitioning, and the stamps of all {e linear} devices (plus [gmin])
    — into a reusable base system.  {!solve} then runs Newton on top:
    each iteration copies the base matrix/RHS and restamps only the diode
    companion entries, instead of rebuilding the full MNA system from the
    element list.  Linear circuits skip the copy entirely and factor the
    base system directly. *)

type prepared

val prepare : ?gmin:float -> Netlist.t -> prepared
(** O(elements + size²) — one element walk and one base-system fill. *)

val solve : ?max_iterations:int -> ?max_step_param:float -> prepared -> (solution, error) result
(** A prepared netlist may be solved any number of times; [prepared] is
    immutable after construction and safe to share across domains. *)

val node_voltage : solution -> string -> float
(** 0.0 for ground; raises [Not_found] for unknown nodes. *)

val element_current : solution -> string -> float
(** Current a → b through the element.  Raises [Not_found] for unknown
    ids; 0.0 for voltage sensors, capacitors and open switches. *)

val current_sensor_readings : solution -> (string * float) list
(** [(sensor id, amps)] for every {!Element.Current_sensor}, in netlist
    order. *)

val voltage_sensor_readings : solution -> (string * float) list
(** [(sensor id, volts)] for every {!Element.Voltage_sensor}. *)

val all_sensor_readings : solution -> (string * float) list
(** Current then voltage sensors — the observation vector the
    failure-injection FMEA compares between golden and faulty runs. *)

(** {1 Device equations}

    Exposed for the transient engine ({!module:Transient}), which shares
    the Newton companion model. *)

val diode_current : Element.diode_params -> float -> float
(** Shockley current at a junction voltage, with overflow limiting. *)

val diode_conductance : Element.diode_params -> float -> float
(** The exact derivative of {!diode_current} (limiter chain rule
    included). *)
