(** DC operating-point analysis by Modified Nodal Analysis.

    Unknowns are the non-ground node voltages plus one branch current per
    voltage-defined element (sources, inductors — DC shorts — and current
    sensors).  Diodes are solved by damped Newton iteration on the
    Shockley equation.  A small [gmin] conductance from every node to
    ground keeps fault-injected circuits (floating nodes after an "open")
    solvable; the affected readings then collapse towards zero, which is
    exactly the observable the failure-injection FMEA compares. *)

type solution

type error =
  | Singular_system of string
  | No_convergence of int  (** Newton iterations exhausted *)

val pp_error : Format.formatter -> error -> unit

type backend = [ `Auto | `Dense | `Sparse ]
(** Linear-algebra backend for the MNA system.  [`Auto] (the default)
    picks dense below ~128 unknowns — where the dense kernel's low
    constant wins — and sparse (CSR, minimum-degree ordering,
    Gilbert–Peierls LU) above, where dense O(n³) factorisation is almost
    entirely wasted work on structural zeros. *)

val analyse : ?gmin:float -> ?backend:backend -> ?max_iterations:int -> ?max_step_param:float -> Netlist.t -> (solution, error) result
(** Default [gmin] 1e-9 S, [max_iterations] 200.  Equivalent to
    {!prepare} followed by {!solve}. *)

(** {1 Prepared solves}

    The hot loop of the failure-injection FMEA is thousands of DC solves
    over near-identical netlists.  {!prepare} hoists everything that
    depends only on the topology — node/branch numbering, element
    partitioning, and the stamps of all {e linear} devices (plus [gmin])
    — into a reusable base system.  {!solve} then runs Newton on top:
    each iteration copies the base matrix/RHS and restamps only the diode
    companion entries, instead of rebuilding the full MNA system from the
    element list.  Linear circuits skip the copy entirely and factor the
    base system directly.  On the sparse backend the fill-reducing
    ordering and the diode stamp positions are computed once here and
    reused by every subsequent factorisation. *)

type prepared

val prepare : ?gmin:float -> ?backend:backend -> Netlist.t -> prepared
(** O(elements + nnz) — one element walk and one base-system assembly. *)

val size : prepared -> int
(** Number of MNA unknowns (node voltages + branch currents). *)

val backend_used : prepared -> [ `Dense | `Sparse ]

val solve : ?max_iterations:int -> ?max_step_param:float -> prepared -> (solution, error) result
(** A prepared netlist may be solved any number of times; [prepared] is
    immutable after construction and safe to share across domains. *)

(** {1 Golden factors and low-rank fault re-solve}

    Injecting a failure mode changes a handful of MNA stamps — an open,
    short or drift on one element is a rank-0/1/2 perturbation
    [A + U·Vᵀ] of the golden matrix.  {!factorise} captures the golden
    factorisation once; {!inject} classifies a fault into its low-rank
    delta and re-solves via Sherman–Morrison–Woodbury against the
    existing factors in O(n²·k) (dense) / O(nnz·k) (sparse) instead of
    refactorising a freshly assembled faulted system.  Circuits with
    diodes warm-start Newton from the golden operating point, each
    iteration adding per-diode [(g(v) − g_op)] rank-1 corrections. *)

type golden

val factorise : ?max_iterations:int -> ?max_step_param:float -> prepared -> (golden, error) result
(** Solve the golden system and keep its factors, operating point and
    solution for reuse by {!inject}.  [golden] is immutable and safe to
    share across domains. *)

val golden_solution : golden -> solution

val inject :
  ?max_iterations:int ->
  ?max_step_param:float ->
  ?on_path:([ `Reused | `Rank_update of int ] -> unit) ->
  golden ->
  element_id:string ->
  Fault.t ->
  (solution, error) result
(** Solve the circuit with the given fault applied to one element,
    reusing the golden factors.  [on_path] reports how the solve was
    served: [`Reused] — the fault does not change the system (e.g. an
    open capacitor) and the golden solution was re-extracted;
    [`Rank_update k] — a rank-[k] SMW re-solve ([k = 0] is an RHS-only
    change, one substitution against the golden factors).  Raises
    [Not_found] for an unknown element and {!Fault.Not_applicable} as
    {!Fault.inject}.  Results match a full re-analysis of the faulted
    netlist to solver tolerance (roundoff for linear circuits, Newton
    tolerance when diodes are present). *)

val node_voltage : solution -> string -> float
(** 0.0 for ground; raises [Not_found] for unknown nodes. *)

val element_current : solution -> string -> float
(** Current a → b through the element.  Raises [Not_found] for unknown
    ids; 0.0 for voltage sensors, capacitors and open switches. *)

val current_sensor_readings : solution -> (string * float) list
(** [(sensor id, amps)] for every {!Element.Current_sensor}, in netlist
    order. *)

val voltage_sensor_readings : solution -> (string * float) list
(** [(sensor id, volts)] for every {!Element.Voltage_sensor}. *)

val all_sensor_readings : solution -> (string * float) list
(** Current then voltage sensors — the observation vector the
    failure-injection FMEA compares between golden and faulty runs. *)

(** {1 Device equations}

    Exposed for the transient engine ({!module:Transient}), which shares
    the Newton companion model. *)

val diode_current : Element.diode_params -> float -> float
(** Shockley current at a junction voltage, with overflow limiting. *)

val diode_conductance : Element.diode_params -> float -> float
(** The exact derivative of {!diode_current} (limiter chain rule
    included). *)
