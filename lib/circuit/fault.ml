type t =
  | Open_circuit
  | Short_circuit
  | Stuck_value of float
  | Parameter_shift of float
[@@deriving eq, show]

let to_string = function
  | Open_circuit -> "open"
  | Short_circuit -> "short"
  | Stuck_value v -> Printf.sprintf "stuck@%g" v
  | Parameter_shift f -> Printf.sprintf "shift(x%g)" f

exception Not_applicable of { element : string; fault : t; reason : string }

let short_resistance = 1e-3

let applicable kind fault =
  match (fault, kind) with
  | (Open_circuit | Short_circuit), _ -> true
  | Stuck_value _, (Element.Vsource _ | Element.Isource _) -> true
  | Stuck_value _, _ -> false
  | ( Parameter_shift _,
      ( Element.Resistor _ | Element.Load _ | Element.Inductor _
      | Element.Capacitor _ | Element.Vsource _ | Element.Isource _ ) ) ->
      true
  | Parameter_shift _, _ -> false

let faulted_kind kind fault ~element =
  let not_applicable reason =
    raise (Not_applicable { element; fault; reason })
  in
  match fault with
  | Open_circuit -> Element.Switch false
  | Short_circuit -> Element.Resistor short_resistance
  | Stuck_value v -> (
      match kind with
      | Element.Vsource _ -> Element.Vsource v
      | Element.Isource _ -> Element.Isource v
      | _ -> not_applicable "stuck values only apply to sources")
  | Parameter_shift factor -> (
      match kind with
      | Element.Resistor r -> Element.Resistor (r *. factor)
      | Element.Load r -> Element.Load (r *. factor)
      | Element.Inductor l -> Element.Inductor (l *. factor)
      | Element.Capacitor c -> Element.Capacitor (c *. factor)
      | Element.Vsource v -> Element.Vsource (v *. factor)
      | Element.Isource i -> Element.Isource (i *. factor)
      | _ -> not_applicable "no primary parameter to shift")

let inject netlist ~element_id fault =
  let e =
    match Netlist.find netlist element_id with
    | Some e -> e
    | None -> raise Not_found
  in
  Netlist.replace netlist element_id
    (faulted_kind e.Element.kind fault ~element:element_id)

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let of_failure_mode_name name =
  let n = String.lowercase_ascii (String.trim name) in
  if contains_sub n "open" then Some Open_circuit
  else if contains_sub n "short" then Some Short_circuit
  else if contains_sub n "loss" || contains_sub n "fail" || contains_sub n "stuck"
  then Some Open_circuit
  else if contains_sub n "drift" || contains_sub n "degraded" then
    Some (Parameter_shift 2.0)
  else None
