(** Failure injection on netlists (the paper's Sec. IV-D "the principle of
    the automated FMEA is based on failure injection").

    A fault transforms one element of a netlist; the transformed netlist
    is re-analysed and its sensor readings compared with the golden run. *)

type t =
  | Open_circuit  (** element stops conducting *)
  | Short_circuit  (** element replaced by a near-zero resistance *)
  | Stuck_value of float  (** a source stuck at the given value *)
  | Parameter_shift of float  (** primary parameter multiplied by the factor *)
[@@deriving eq, show]

val to_string : t -> string

exception Not_applicable of { element : string; fault : t; reason : string }

val faulted_kind : Element.kind -> t -> element:string -> Element.kind
(** The element kind a fault transforms the given kind into — the single
    source of truth shared by {!inject} (netlist rewriting) and the
    low-rank re-solve path in {!Dc.inject}.  Raises {!Not_applicable} as
    {!inject}. *)

val inject : Netlist.t -> element_id:string -> t -> Netlist.t
(** Raises [Not_found] for an unknown element and {!Not_applicable} for a
    meaningless combination (e.g. [Stuck_value] on a resistor,
    [Parameter_shift] on a sensor). *)

val of_failure_mode_name : string -> t option
(** Default mapping from reliability-model failure-mode names to faults:
    ["open"]→open, ["short"]→short, names containing ["loss"], ["fail"]
    or ["stuck"]→open (loss of function), ["drift"]/["degraded"]→
    [Parameter_shift 2.0].  Case-insensitive; [None] when no rule
    matches — the caller should then warn, mirroring Algorithm 1's
    warning branch. *)

val applicable : Element.kind -> t -> bool
