let supply_volts = 12.0
let series_ohms = 0.05
let load_ohms = 100.0
let sensor_stride = 16

let r id a b ohms = Element.make ~id ~kind:(Element.Resistor ohms) a b
let load id a ohms = Element.make ~id ~kind:(Element.Load ohms) a Netlist.ground

let ladder ~sections =
  if sections < 1 then invalid_arg "Generator.ladder: need at least 1 section";
  let elements = ref [] in
  let push e = elements := e :: !elements in
  push (Element.make ~id:"VIN" ~kind:(Element.Vsource supply_volts) "vin"
          Netlist.ground);
  let prev = ref "vin" in
  for i = 1 to sections do
    let here = Printf.sprintf "n%d" i in
    if i mod sensor_stride = 0 then begin
      (* Tap point: a current sensor in series with the segment
         resistor, adding one internal node and one branch unknown. *)
      let mid = Printf.sprintf "m%d" i in
      push
        (Element.make
           ~id:(Printf.sprintf "CS%d" i)
           ~kind:Element.Current_sensor !prev mid);
      push (r (Printf.sprintf "RS%d" i) mid here series_ohms)
    end
    else push (r (Printf.sprintf "RS%d" i) !prev here series_ohms);
    push (load (Printf.sprintf "RL%d" i) here load_ohms);
    prev := here
  done;
  push
    (Element.make ~id:"VOUT" ~kind:Element.Voltage_sensor !prev Netlist.ground);
  Netlist.of_elements
    (Printf.sprintf "ladder-%d" sections)
    (List.rev !elements)

let grid ~rows ~cols =
  if rows < 1 || cols < 1 then
    invalid_arg "Generator.grid: need at least a 1x1 grid";
  let node rr cc = Printf.sprintf "g%d_%d" rr cc in
  let elements = ref [] in
  let push e = elements := e :: !elements in
  (* Feed at the (0,0) corner through a sensed supply branch. *)
  push (Element.make ~id:"VIN" ~kind:(Element.Vsource supply_volts) "vin"
          Netlist.ground);
  push (Element.make ~id:"CS0" ~kind:Element.Current_sensor "vin" (node 0 0));
  for rr = 0 to rows - 1 do
    for cc = 0 to cols - 1 do
      if cc < cols - 1 then
        push
          (r (Printf.sprintf "RH%d_%d" rr cc) (node rr cc)
             (node rr (cc + 1))
             series_ohms);
      if rr < rows - 1 then
        push
          (r (Printf.sprintf "RV%d_%d" rr cc) (node rr cc)
             (node (rr + 1) cc)
             series_ohms);
      push (load (Printf.sprintf "RL%d_%d" rr cc) (node rr cc) load_ohms)
    done
  done;
  push
    (Element.make ~id:"VOUT" ~kind:Element.Voltage_sensor
       (node (rows - 1) (cols - 1))
       Netlist.ground);
  Netlist.of_elements (Printf.sprintf "grid-%dx%d" rows cols) (List.rev !elements)

(* ---------- synthetic block diagrams (SSAM architecture) ----------

   Deterministic composite components whose input→output simple-path
   count is controllable in closed form — the scaling subjects for the
   path FMEA: a diamond chain doubles the path count per stage, a grid
   grows it as a central binomial.  Every child carries one
   loss-of-function failure mode, so Algorithm 1 must classify every
   block. *)

let block_fit = 10.0

let arch_leaf id =
  let open Ssam in
  Architecture.component ~component_type:Architecture.Hardware ~fit:block_fit
    ~failure_modes:
      [
        Architecture.failure_mode
          ~meta:(Base.meta ~name:"Loss" (id ^ ":loss"))
          ~nature:Architecture.Loss_of_function ~distribution_pct:100.0 ();
      ]
    ~meta:(Base.meta ~name:id id) ()

let arch_composite ~id ~children ~connections =
  let open Ssam in
  Architecture.component ~component_type:Architecture.System ~children
    ~connections ~meta:(Base.meta ~name:id id) ()

let arch_conn =
  let open Ssam in
  fun i a b ->
    Architecture.relationship
      ~meta:(Base.meta (Printf.sprintf "c%d" i))
      ~from_component:a ~to_component:b ()

let diamond_arch ~stages =
  if stages < 1 then invalid_arg "Generator.diamond_arch: need >= 1 stage";
  let root = Printf.sprintf "diamond-%d" stages in
  let children = ref [] and connections = ref [] and k = ref 0 in
  let child id = children := arch_leaf id :: !children in
  let wire a b =
    incr k;
    connections := arch_conn !k a b :: !connections
  in
  let junction i = Printf.sprintf "J%d" i in
  child (junction 0);
  wire root (junction 0);
  for i = 1 to stages do
    let a = Printf.sprintf "D%da" i and b = Printf.sprintf "D%db" i in
    child a;
    child b;
    child (junction i);
    wire (junction (i - 1)) a;
    wire (junction (i - 1)) b;
    wire a (junction i);
    wire b (junction i)
  done;
  wire (junction stages) root;
  arch_composite ~id:root ~children:(List.rev !children)
    ~connections:(List.rev !connections)

let grid_arch ~rows ~cols =
  if rows < 1 || cols < 1 then
    invalid_arg "Generator.grid_arch: need at least a 1x1 grid";
  let root = Printf.sprintf "grid-arch-%dx%d" rows cols in
  let block r c = Printf.sprintf "B%d_%d" r c in
  let children = ref [] and connections = ref [] and k = ref 0 in
  let wire a b =
    incr k;
    connections := arch_conn !k a b :: !connections
  in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      children := arch_leaf (block r c) :: !children;
      if c < cols - 1 then wire (block r c) (block r (c + 1));
      if r < rows - 1 then wire (block r c) (block (r + 1) c)
    done
  done;
  wire root (block 0 0);
  wire (block (rows - 1) (cols - 1)) root;
  arch_composite ~id:root ~children:(List.rev !children)
    ~connections:(List.rev !connections)

(* Simple-path counts, for picking scales relative to the enumeration
   cap: a [stages]-diamond has [2^stages] paths; a [rows x cols] grid
   has [C (rows-1+cols-1) (rows-1)] monotone paths. *)

let diamond_path_count ~stages =
  if stages >= 62 then max_int else 1 lsl stages

let grid_path_count ~rows ~cols =
  let n = rows - 1 + (cols - 1) and r = rows - 1 in
  let r = min r (n - r) in
  let acc = ref 1.0 in
  for i = 1 to r do
    acc := !acc *. float_of_int (n - r + i) /. float_of_int i
  done;
  let f = Float.round !acc in
  if f >= float_of_int max_int then max_int else int_of_float f

