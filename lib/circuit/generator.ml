let supply_volts = 12.0
let series_ohms = 0.05
let load_ohms = 100.0
let sensor_stride = 16

let r id a b ohms = Element.make ~id ~kind:(Element.Resistor ohms) a b
let load id a ohms = Element.make ~id ~kind:(Element.Load ohms) a Netlist.ground

let ladder ~sections =
  if sections < 1 then invalid_arg "Generator.ladder: need at least 1 section";
  let elements = ref [] in
  let push e = elements := e :: !elements in
  push (Element.make ~id:"VIN" ~kind:(Element.Vsource supply_volts) "vin"
          Netlist.ground);
  let prev = ref "vin" in
  for i = 1 to sections do
    let here = Printf.sprintf "n%d" i in
    if i mod sensor_stride = 0 then begin
      (* Tap point: a current sensor in series with the segment
         resistor, adding one internal node and one branch unknown. *)
      let mid = Printf.sprintf "m%d" i in
      push
        (Element.make
           ~id:(Printf.sprintf "CS%d" i)
           ~kind:Element.Current_sensor !prev mid);
      push (r (Printf.sprintf "RS%d" i) mid here series_ohms)
    end
    else push (r (Printf.sprintf "RS%d" i) !prev here series_ohms);
    push (load (Printf.sprintf "RL%d" i) here load_ohms);
    prev := here
  done;
  push
    (Element.make ~id:"VOUT" ~kind:Element.Voltage_sensor !prev Netlist.ground);
  Netlist.of_elements
    (Printf.sprintf "ladder-%d" sections)
    (List.rev !elements)

let grid ~rows ~cols =
  if rows < 1 || cols < 1 then
    invalid_arg "Generator.grid: need at least a 1x1 grid";
  let node rr cc = Printf.sprintf "g%d_%d" rr cc in
  let elements = ref [] in
  let push e = elements := e :: !elements in
  (* Feed at the (0,0) corner through a sensed supply branch. *)
  push (Element.make ~id:"VIN" ~kind:(Element.Vsource supply_volts) "vin"
          Netlist.ground);
  push (Element.make ~id:"CS0" ~kind:Element.Current_sensor "vin" (node 0 0));
  for rr = 0 to rows - 1 do
    for cc = 0 to cols - 1 do
      if cc < cols - 1 then
        push
          (r (Printf.sprintf "RH%d_%d" rr cc) (node rr cc)
             (node rr (cc + 1))
             series_ohms);
      if rr < rows - 1 then
        push
          (r (Printf.sprintf "RV%d_%d" rr cc) (node rr cc)
             (node (rr + 1) cc)
             series_ohms);
      push (load (Printf.sprintf "RL%d_%d" rr cc) (node rr cc) load_ohms)
    done
  done;
  push
    (Element.make ~id:"VOUT" ~kind:Element.Voltage_sensor
       (node (rows - 1) (cols - 1))
       Netlist.ground);
  Netlist.of_elements (Printf.sprintf "grid-%dx%d" rows cols) (List.rev !elements)
