(** Synthetic scalable netlists for benchmarking and scaling studies.

    Both topologies model a DC power-distribution network: a 12 V supply
    feeding resistive segments ([0.05 Ω]) with a [100 Ω] load hanging
    off every junction.  They are purely linear (no diodes), so faulted
    re-solves admit an exact accuracy comparison against dense
    re-analysis.  Generation is deterministic: the same parameters
    always produce the identical netlist. *)

val ladder : sections:int -> Netlist.t
(** A series ladder of [sections] segments.  Every 16th segment routes
    through a current sensor (adding an internal node and a branch
    unknown); a voltage sensor watches the far end.  MNA unknowns grow
    as roughly [sections * 17/16 + 2] — [~578] at 512 sections.  Raises
    [Invalid_argument] when [sections < 1]. *)

val grid : rows:int -> cols:int -> Netlist.t
(** A [rows x cols] resistive mesh fed at one corner through a sensed
    supply branch, load at every junction, voltage sensor at the
    opposite corner.  MNA unknowns are [rows * cols + 3].  Raises
    [Invalid_argument] when either dimension is [< 1]. *)
