(** Synthetic scalable netlists for benchmarking and scaling studies.

    Both topologies model a DC power-distribution network: a 12 V supply
    feeding resistive segments ([0.05 Ω]) with a [100 Ω] load hanging
    off every junction.  They are purely linear (no diodes), so faulted
    re-solves admit an exact accuracy comparison against dense
    re-analysis.  Generation is deterministic: the same parameters
    always produce the identical netlist. *)

val ladder : sections:int -> Netlist.t
(** A series ladder of [sections] segments.  Every 16th segment routes
    through a current sensor (adding an internal node and a branch
    unknown); a voltage sensor watches the far end.  MNA unknowns grow
    as roughly [sections * 17/16 + 2] — [~578] at 512 sections.  Raises
    [Invalid_argument] when [sections < 1]. *)

val grid : rows:int -> cols:int -> Netlist.t
(** A [rows x cols] resistive mesh fed at one corner through a sensed
    supply branch, load at every junction, voltage sensor at the
    opposite corner.  MNA unknowns are [rows * cols + 3].  Raises
    [Invalid_argument] when either dimension is [< 1]. *)

(** {1 Synthetic block diagrams}

    Deterministic SSAM architectures with a closed-form input→output
    simple-path count — the scaling subjects for the path FMEA (paper
    Algorithm 1).  Every child block carries one loss-of-function
    failure mode at 100 % distribution and 10 FIT. *)

val diamond_arch : stages:int -> Ssam.Architecture.component
(** A chain of [stages] diamonds: junction [J0] splits into two parallel
    legs rejoining at [J1], and so on.  The junctions [J0..Jn] are the
    exact single points; the legs never are.  Simple-path count is
    [2^stages] — 14 stages sit just under the 20 000-path enumeration
    cap, 18 stages far beyond it.  Raises [Invalid_argument] when
    [stages < 1]. *)

val grid_arch : rows:int -> cols:int -> Ssam.Architecture.component
(** A [rows x cols] block grid wired right and down, entered at the
    top-left corner and exited at the bottom-right.  The two corners are
    the only single points (for [rows, cols >= 2]); the path count is
    the binomial [C (rows+cols-2) (rows-1)].  Raises [Invalid_argument]
    when either dimension is [< 1]. *)

val diamond_path_count : stages:int -> int
(** [2^stages], saturating at [max_int]. *)

val grid_path_count : rows:int -> cols:int -> int
(** [C (rows+cols-2) (rows-1)], saturating at [max_int]. *)
