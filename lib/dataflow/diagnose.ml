type verdict =
  | Structural
  | Confirmed of string
  | Refuted of string

type explanation = { mode : Model.mode; verdict : verdict }

type report = {
  r_output : string;
  candidates : explanation list;
  explanations : explanation list;
  singles : string list list;
  doubles : string list list;
  agree : bool;
  agreement_pairs : int;
  stats : Fixpoint.stats;
}

type verifier = Model.mode -> [ `Confirmed of string | `Refuted of string ]

let verify_cost_key = "dataflow.verify"

let surviving_modes explanations =
  List.filter_map
    (fun e -> match e.verdict with Refuted _ -> None | _ -> Some e.mode)
    explanations

let direct_cut_sets (m : Model.t) explanations =
  let surviving = surviving_modes explanations in
  let singles =
    List.filter_map
      (fun (md : Model.mode) ->
        if
          md.Model.m_loss_like
          && not (Graph.Bitset.mem m.Model.redundant md.Model.m_node)
        then Some (Fta.Cut_sets.normalize [ md.Model.m_key ])
        else None)
      surviving
  in
  (* Loss-like modes of redundant components only break the function in
     pairs across distinct components. *)
  let redundant_modes =
    List.filter
      (fun (md : Model.mode) ->
        md.Model.m_loss_like
        && Graph.Bitset.mem m.Model.redundant md.Model.m_node)
      surviving
  in
  let doubles =
    List.concat_map
      (fun (a : Model.mode) ->
        List.filter_map
          (fun (b : Model.mode) ->
            if
              a.Model.m_index < b.Model.m_index
              && not (String.equal a.Model.m_component b.Model.m_component)
            then Some (Fta.Cut_sets.normalize [ a.Model.m_key; b.Model.m_key ])
            else None)
          redundant_modes)
      redundant_modes
  in
  let minimal = Fta.Cut_sets.minimize (singles @ doubles) in
  List.partition (fun cs -> List.length cs = 1) minimal

(* The same combination logic as [direct_cut_sets], but said once as a
   fault tree: surviving non-redundant loss-like modes are direct
   disjuncts, redundant components become per-component OR gates under
   a 2-out-of-N vote (a single redundant channel loss is tolerated;
   any two distinct redundant components failing are not). *)
let lowered_fault_tree (m : Model.t) explanations =
  let basic (md : Model.mode) =
    Fta.Fault_tree.basic
      ~description:
        (Printf.sprintf "%s: %s" md.Model.m_component md.Model.m_name)
      md.Model.m_key
  in
  let non_redundant, redundant =
    List.partition
      (fun (md : Model.mode) ->
        not (Graph.Bitset.mem m.Model.redundant md.Model.m_node))
      (List.filter
         (fun (md : Model.mode) -> md.Model.m_loss_like)
         (surviving_modes explanations))
  in
  let components =
    List.fold_left
      (fun acc (md : Model.mode) ->
        if List.exists (String.equal md.Model.m_component) acc then acc
        else acc @ [ md.Model.m_component ])
      [] redundant
  in
  let gates =
    List.map
      (fun cmp ->
        Fta.Fault_tree.or_ ("red:" ^ cmp)
          (List.map basic
             (List.filter
                (fun (md : Model.mode) ->
                  String.equal md.Model.m_component cmp)
                redundant)))
      components
  in
  let vote =
    if List.length gates >= 2 then
      [ Fta.Fault_tree.koon "redundant-pair" ~k:2 gates ]
    else []
  in
  match List.map basic non_redundant @ vote with
  | [] -> None
  | disjuncts -> Some (Fta.Fault_tree.or_ "deviation-explained" disjuncts)

(* Production route: read the explanations off the decision diagram of
   the lowered tree — cardinality ≤ 2 minimal critical sets, partitioned
   by size.  Differentially tested against [direct_cut_sets]. *)
let cut_sets (m : Model.t) explanations =
  match lowered_fault_tree m explanations with
  | None -> ([], [])
  | Some tree ->
      Fta.Bdd.build tree
      |> Fta.Bdd.minimal_critical_sets ~max_cardinality:2
      |> List.partition (fun cs -> List.length cs = 1)

let diagnose ?jobs ?verify (m : Model.t) ~output =
  match Model.output_index m output with
  | None ->
      Error
        (Printf.sprintf "unknown output '%s' (observation points: %s)" output
           (match Model.output_names m with
           | [] -> "none"
           | names -> String.concat ", " names))
  | Some _ ->
      let backward = Passes.backward_reach ?jobs m in
      let forward = Passes.forward_taint ?jobs m in
      let agree, agreement_pairs = Passes.agreement m ~forward ~backward in
      let candidate_modes = Passes.backward_explains m backward ~output in
      let candidates =
        match verify with
        | None ->
            List.map (fun mode -> { mode; verdict = Structural }) candidate_modes
        | Some verify ->
            Exec.scheduled_map ?jobs ~key:verify_cost_key
              (fun mode ->
                match verify mode with
                | `Confirmed s -> { mode; verdict = Confirmed s }
                | `Refuted why -> { mode; verdict = Refuted why })
              candidate_modes
      in
      let explanations =
        List.filter
          (fun e -> match e.verdict with Refuted _ -> false | _ -> true)
          candidates
      in
      let singles, doubles = cut_sets m explanations in
      let stats =
        {
          Fixpoint.iterations =
            backward.Passes.stats.Fixpoint.iterations
            + forward.Passes.stats.Fixpoint.iterations;
          sccs = forward.Passes.stats.Fixpoint.sccs;
          levels = forward.Passes.stats.Fixpoint.levels;
        }
      in
      Ok
        {
          r_output = output;
          candidates;
          explanations;
          singles;
          doubles;
          agree;
          agreement_pairs;
          stats;
        }

let circuit_verifier ?(options = Fmea.Injection_fmea.default_options)
    ~reliability ~output (d : Blockdiag.Diagram.t) =
  let { Blockdiag.To_netlist.netlist; block_types; _ } =
    Blockdiag.To_netlist.convert d
  in
  let options =
    { options with Fmea.Injection_fmea.monitored_sensors = Some [ output ] }
  in
  match Fmea.Injection_fmea.prepare ~options netlist with
  | exception Fmea.Injection_fmea.Golden_run_failed why ->
      Error (Printf.sprintf "golden run failed: %s" why)
  | prepared ->
      let type_of element =
        match List.assoc_opt element block_types with
        | Some ty -> ty
        | None -> element
      in
      Ok
        (fun (mode : Model.mode) ->
          if
            List.exists
              (String.equal mode.Model.m_component)
              options.Fmea.Injection_fmea.exclude
          then `Refuted "component excluded from analysis by assumption"
          else
            let entry =
              Reliability.Reliability_model.find reliability
                (type_of mode.Model.m_component)
            in
            let fault =
              Option.bind entry (fun e ->
                  List.find_map
                    (fun (fm : Reliability.Reliability_model.failure_mode) ->
                      if
                        String.equal fm.Reliability.Reliability_model.fm_name
                          mode.Model.m_name
                      then Some fm.Reliability.Reliability_model.fault
                      else None)
                    e.Reliability.Reliability_model.failure_modes)
            in
            match fault with
            | None | Some None ->
                `Refuted "no fault model for this failure mode"
            | Some (Some fault) -> (
                match
                  Fmea.Injection_fmea.classify_prepared prepared
                    ~element_id:mode.Model.m_component fault
                with
                | `Safety_related sensor -> `Confirmed sensor
                | `No_effect -> `Refuted "no observable effect at the output"
                | `Excluded why -> `Refuted why
                | `Simulation_failed why ->
                    `Refuted (Printf.sprintf "simulation failed: %s" why)))

(* ---------- rendering ---------- *)

let verdict_text = function
  | Structural -> "structural"
  | Confirmed sensor -> Printf.sprintf "confirmed (%s)" sensor
  | Refuted why -> Printf.sprintf "refuted: %s" why

let to_text r =
  let buf = Buffer.create 256 in
  Printf.bprintf buf "diagnosis for output %s\n" r.r_output;
  Printf.bprintf buf "  forward/backward oracle: %s (%d pairs)\n"
    (if r.agree then "agree" else "DISAGREE")
    r.agreement_pairs;
  Printf.bprintf buf "  fixpoint: %d iterations, %d SCCs, %d levels\n"
    r.stats.Fixpoint.iterations r.stats.Fixpoint.sccs r.stats.Fixpoint.levels;
  if r.candidates = [] then
    Buffer.add_string buf "  no failure mode explains this output\n"
  else begin
    Printf.bprintf buf "  candidates (%d):\n" (List.length r.candidates);
    List.iter
      (fun e ->
        Printf.bprintf buf "    %-32s %s\n" e.mode.Model.m_key
          (verdict_text e.verdict))
      r.candidates;
    let pp_sets label = function
      | [] -> Printf.bprintf buf "  %s: none\n" label
      | sets ->
          Printf.bprintf buf "  %s:\n" label;
          List.iter
            (fun cs ->
              Printf.bprintf buf "    {%s}\n" (String.concat ", " cs))
            sets
    in
    pp_sets "minimal single-point explanations" r.singles;
    pp_sets "minimal double-point explanations" r.doubles
  end;
  Buffer.contents buf

let explanation_json e =
  let open Modelio.Json in
  let verdict, detail =
    match e.verdict with
    | Structural -> ("structural", None)
    | Confirmed s -> ("confirmed", Some s)
    | Refuted why -> ("refuted", Some why)
  in
  Object
    ([
       ("component", String e.mode.Model.m_component);
       ("failure_mode", String e.mode.Model.m_name);
       ("verdict", String verdict);
     ]
    @ match detail with None -> [] | Some d -> [ ("detail", String d) ])

let to_json r =
  let open Modelio.Json in
  let cut_set cs = List (List.map (fun a -> String a) cs) in
  Object
    [
      ("output", String r.r_output);
      ("agree", Bool r.agree);
      ("agreement_pairs", Number (float_of_int r.agreement_pairs));
      ( "fixpoint",
        Object
          [
            ("iterations", Number (float_of_int r.stats.Fixpoint.iterations));
            ("sccs", Number (float_of_int r.stats.Fixpoint.sccs));
            ("levels", Number (float_of_int r.stats.Fixpoint.levels));
          ] );
      ("candidates", List (List.map explanation_json r.candidates));
      ("singles", List (List.map cut_set r.singles));
      ("doubles", List (List.map cut_set r.doubles));
    ]

let to_sarif r =
  let open Modelio.Json in
  let rule id title =
    Object
      [
        ("id", String id);
        ("name", String id);
        ("shortDescription", Object [ ("text", String title) ]);
        ("helpUri", String ("DESIGN.md#" ^ String.lowercase_ascii id));
        ( "properties",
          Object [ ("category", String "diagnosis") ] );
      ]
  in
  let result ~rule_id ~level text element =
    Object
      [
        ("ruleId", String rule_id);
        ("level", String level);
        ("message", Object [ ("text", String text) ]);
        ( "locations",
          List
            [
              Object
                [
                  ( "logicalLocations",
                    List [ Object [ ("name", String element) ] ] );
                ];
            ] );
      ]
  in
  let singles =
    List.map
      (fun cs ->
        let atom = String.concat ", " cs in
        result ~rule_id:"DIAG001" ~level:"warning"
          (Printf.sprintf "single-point explanation for %s: %s" r.r_output
             atom)
          atom)
      r.singles
  in
  let doubles =
    List.map
      (fun cs ->
        let atoms = String.concat " + " cs in
        result ~rule_id:"DIAG002" ~level:"note"
          (Printf.sprintf "double-point explanation for %s: %s" r.r_output
             atoms)
          atoms)
      r.doubles
  in
  let refuted =
    List.filter_map
      (fun e ->
        match e.verdict with
        | Refuted why ->
            Some
              (result ~rule_id:"DIAG003" ~level:"note"
                 (Printf.sprintf
                    "candidate %s structurally reaches %s but was refuted: %s"
                    e.mode.Model.m_key r.r_output why)
                 e.mode.Model.m_key)
        | _ -> None)
      r.candidates
  in
  Object
    [
      ("version", String "2.1.0");
      ( "runs",
        List
          [
            Object
              [
                ( "tool",
                  Object
                    [
                      ( "driver",
                        Object
                          [
                            ("name", String "same diagnose");
                            ( "rules",
                              List
                                [
                                  rule "DIAG001" "single-point explanation";
                                  rule "DIAG002" "double-point explanation";
                                  rule "DIAG003" "refuted structural candidate";
                                ] );
                          ] );
                    ] );
                ("results", List (singles @ doubles @ refuted));
              ];
          ] );
    ]
