(** Backward failure-mode diagnosis — "which component failures explain
    the deviation I observed at this output?" — the inverse of the
    injection FMEA's forward question.

    The backward pass proposes the structural candidates (every failure
    mode whose node co-reaches the output); when the model came from a
    circuit diagram each candidate is then {e verified} by one numeric
    fault injection against a shared golden run
    ({!Fmea.Injection_fmea.classify_prepared} with the diagnosed output
    as the only monitored sensor).  A numeric effect implies a
    structural path, so the confirmed set equals the safety-related
    rows of the forward injection FMEA on the same monitored output —
    the differential oracle the tests pin down.

    Minimal explanations: structural single points (non-redundant
    components) become singleton cut sets; loss-like modes of redundant
    components pair up into double-point candidates; both go through
    {!Fta.Cut_sets.minimize}. *)

type verdict =
  | Structural  (** no numeric model available; candidate stands *)
  | Confirmed of string  (** worst offending sensor of the injection *)
  | Refuted of string  (** why the injection showed no deviation *)

type explanation = { mode : Model.mode; verdict : verdict }

type report = {
  r_output : string;
  candidates : explanation list;  (** all structural candidates, verdicted *)
  explanations : explanation list;  (** the surviving ones *)
  singles : string list list;  (** minimal single-point cut sets (mode keys) *)
  doubles : string list list;  (** minimal double-point cut sets *)
  agree : bool;  (** forward/backward differential oracle *)
  agreement_pairs : int;
  stats : Fixpoint.stats;  (** both fixpoints combined *)
}

type verifier = Model.mode -> [ `Confirmed of string | `Refuted of string ]

val diagnose :
  ?jobs:int ->
  ?verify:verifier ->
  Model.t ->
  output:string ->
  (report, string) result
(** Runs both fixpoints, collects the backward candidates for [output]
    and verifies them (through {!Exec.scheduled_map} under
    ["dataflow.verify"]) when a verifier is supplied.  [Error] when the
    output id names no observation point. *)

val lowered_fault_tree :
  Model.t -> explanation list -> Fta.Fault_tree.t option
(** The surviving explanations as a fault tree over mode keys:
    non-redundant loss-like modes are direct disjuncts; redundant
    components become per-component OR gates under a 2-out-of-N vote.
    [None] when nothing survives.  {!diagnose} reads [singles]/[doubles]
    off this tree's {!Fta.Bdd} as the cardinality-1/2 minimal critical
    sets. *)

val direct_cut_sets :
  Model.t -> explanation list -> string list list * string list list
(** The historical direct combination — explicit pair enumeration plus
    {!Fta.Cut_sets.minimize} — kept as the differential oracle for the
    BDD route ([(singles, doubles)], same answers, QCheck-tested). *)

val circuit_verifier :
  ?options:Fmea.Injection_fmea.options ->
  reliability:Reliability.Reliability_model.t ->
  output:string ->
  Blockdiag.Diagram.t ->
  (verifier, string) result
(** Builds the numeric verifier for a circuit diagram: extracts the
    netlist, solves the golden run once with [output] as the only
    monitored sensor, and classifies each candidate with one low-rank
    re-solve.  [Error] when the golden run fails or the output is not a
    sensed element of the netlist. *)

val verify_cost_key : string
(** ["dataflow.verify"]. *)

val to_text : report -> string

val to_json : report -> Modelio.Json.t

val to_sarif : report -> Modelio.Json.t
(** SARIF 2.1.0; rules [DIAG001] (single-point explanation), [DIAG002]
    (double-point pair), [DIAG003] (refuted candidate, note level). *)
