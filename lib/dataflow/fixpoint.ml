module type LATTICE = sig
  type t

  val bottom : t
  val join : t -> t -> t
  val leq : t -> t -> bool
end

type direction = Forward | Backward

type stats = { iterations : int; sccs : int; levels : int }

let cost_key = "dataflow.scc"

(* One SCC solved to local fixpoint.  Cross-SCC inflow only references
   strictly earlier condensation levels, whose values are already
   committed to the shared array before this level's batch is
   dispatched, so pool tasks read [values] without synchronisation. *)
let solve_scc (type a) (module L : LATTICE with type t = a) ~flow_in ~flow_out
    ~(component : int array) ~(values : a array) ~init ~transfer scc members =
  let local = Hashtbl.create (Array.length members) in
  Array.iter (fun u -> Hashtbl.replace local u (init u)) members;
  let value_of v =
    if component.(v) = scc then Hashtbl.find local v else values.(v)
  in
  let n = Array.length values in
  let queued = Graph.Bitset.create n in
  let queue = Queue.create () in
  Array.iter
    (fun u ->
      Queue.add u queue;
      Graph.Bitset.add queued u)
    members;
  let iters = ref 0 in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Graph.Bitset.remove queued u;
    let inflow =
      Array.fold_left
        (fun acc v -> L.join acc (value_of v))
        L.bottom (flow_in u)
    in
    incr iters;
    let old = Hashtbl.find local u in
    (* Join with the old value: values only ascend, so the fixpoint
       terminates on finite-height lattices even for a non-monotone
       transfer. *)
    let nv = L.join old (transfer u inflow) in
    if not (L.leq nv old) then begin
      Hashtbl.replace local u nv;
      Array.iter
        (fun w ->
          if component.(w) = scc && not (Graph.Bitset.mem queued w) then begin
            Queue.add w queue;
            Graph.Bitset.add queued w
          end)
        (flow_out u)
    end
  done;
  (!iters, Array.map (fun u -> (u, Hashtbl.find local u)) members)

let solve (type a) (module L : LATTICE with type t = a) ?jobs ~direction ~init
    ~transfer g =
  let n = Graph.Digraph.node_count g in
  if n = 0 then ([||], { iterations = 0; sccs = 0; levels = 0 })
  else begin
    let flow_in, flow_out =
      match direction with
      | Forward -> (Graph.Digraph.predecessors g, Graph.Digraph.successors g)
      | Backward -> (Graph.Digraph.successors g, Graph.Digraph.predecessors g)
    in
    let { Graph.Scc.component; count } = Graph.Scc.compute g in
    (* Members per SCC, ascending node order (nodes scanned 0..n-1). *)
    let members = Array.make count [] in
    for u = n - 1 downto 0 do
      members.(component.(u)) <- u :: members.(component.(u))
    done;
    let members = Array.map Array.of_list members in
    (* SCC ids are reverse-topological (edge a->b  =>  comp a > comp b),
       so flow order is descending ids forward, ascending backward.
       Walking SCCs in flow order and relaxing downstream gives each SCC
       its condensation level = longest flow path from a source SCC. *)
    let flow_order =
      match direction with
      | Forward -> Array.init count (fun i -> count - 1 - i)
      | Backward -> Array.init count (fun i -> i)
    in
    let level = Array.make count 0 in
    Array.iter
      (fun s ->
        Array.iter
          (fun u ->
            Array.iter
              (fun v ->
                let t = component.(v) in
                if t <> s && level.(t) < level.(s) + 1 then
                  level.(t) <- level.(s) + 1)
              (flow_out u))
          members.(s))
      flow_order;
    let max_level = Array.fold_left max 0 level in
    let buckets = Array.make (max_level + 1) [] in
    (* Fill buckets in reverse flow order so each bucket lists SCCs in
       flow order — deterministic dispatch order per level. *)
    for i = count - 1 downto 0 do
      let s = flow_order.(i) in
      buckets.(level.(s)) <- s :: buckets.(level.(s))
    done;
    let values = Array.make n L.bottom in
    let iterations = ref 0 in
    Array.iter
      (fun sccs ->
        let results =
          Exec.scheduled_map ?jobs ~key:cost_key
            (fun s ->
              solve_scc
                (module L : LATTICE with type t = a)
                ~flow_in ~flow_out ~component ~values ~init ~transfer s
                members.(s))
            sccs
        in
        List.iter
          (fun (iters, vs) ->
            iterations := !iterations + iters;
            Array.iter (fun (u, v) -> values.(u) <- v) vs)
          results)
      buckets;
    (values, { iterations = !iterations; sccs = count; levels = max_level + 1 })
  end
