(** Generic monotone dataflow framework over {!Graph.Digraph}.

    The classic worklist fixpoint, parameterised by a join-semilattice
    and a per-node transfer function, running forward (information flows
    along successor edges) or backward (along predecessor edges).  The
    propagation passes ({!Passes}) instantiate it with bitset lattices;
    anything with a finite-height join-semilattice fits.

    {2 Solution}

    [solve] computes the least array [v] with

    {[ v.(n)  ⊒  init n  ⊔  transfer n (⊔ {v.(p) | p flows into n}) ]}

    where "flows into" means predecessors in forward mode and successors
    in backward mode.  Values only ever ascend (the engine joins each
    new value with the old one), so the fixpoint terminates on any
    finite-height lattice even if [transfer] is accidentally
    non-monotone — at worst the answer is an over-approximation of the
    least fixpoint, never a diverging loop.

    {2 Scheduling}

    The graph is condensed into strongly-connected components
    ({!Graph.Scc}); SCCs are grouped into condensation levels (longest
    flow-path depth) and each level's independent SCCs are dispatched
    through {!Exec.scheduled_map} under {!cost_key}, so the adaptive
    cost model decides sequential vs parallel execution exactly as it
    does for FMEA injections.  Within one SCC the worklist is a FIFO
    seeded in ascending node order — fully deterministic, so the
    solution {e and} the iteration counts are bit-identical at every
    [SAME_JOBS] setting. *)

module type LATTICE = sig
  type t

  val bottom : t
  (** Identity of {!join}; the value carried by nodes nothing flows
      into.  Never mutated by the engine — instances may share one
      allocation. *)

  val join : t -> t -> t
  (** Least upper bound.  Must be pure: return a fresh value (or one of
      the arguments), never mutate either argument. *)

  val leq : t -> t -> bool
  (** Partial order; [leq a b] iff [join a b] = [b].  Drives the
      convergence test. *)
end

type direction = Forward | Backward

type stats = {
  iterations : int;  (** transfer-function applications until fixpoint *)
  sccs : int;  (** strongly-connected components in the graph *)
  levels : int;  (** condensation levels (parallel dispatch waves) *)
}

val cost_key : string
(** The {!Exec.Cost} workload key for SCC tasks ("dataflow.scc"). *)

val solve :
  (module LATTICE with type t = 'a) ->
  ?jobs:int ->
  direction:direction ->
  init:(int -> 'a) ->
  transfer:(int -> 'a -> 'a) ->
  Graph.Digraph.t ->
  'a array * stats
(** [solve (module L) ~direction ~init ~transfer g] — the least
    fixpoint described above, one value per node index.  [init] seeds
    each node (facts generated {e at} the node); [transfer] maps the
    join of the inflowing values to the node's contribution.  Both must
    be pure and safe to call from pool domains. *)
