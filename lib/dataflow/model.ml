open Ssam

type mode = {
  m_index : int;
  m_node : int;
  m_component : string;
  m_name : string;
  m_key : string;
  m_meta_id : string;
  m_loss_like : bool;
  m_pct : float;
  m_hazards : string list;
}

type t = {
  graph : Graph.Digraph.t;
  modes : mode array;
  node_modes : int list array;
  node_fit : float array;
  outputs : (string * int) list;
  redundant : Graph.Bitset.t;
  covered : Graph.Bitset.t;
  sms : (string * int * string list) list;
}

let mode_count m = Array.length m.modes
let output_names m = List.map fst m.outputs

let find_output m id =
  List.assoc_opt id m.outputs

let output_index m id =
  let rec go i = function
    | [] -> None
    | (o, _) :: _ when String.equal o id -> Some i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 m.outputs

(* Shared assembly: given the graph, the per-node failure-mode raw data
   and the output nodes, build the dense mode universe and index maps. *)
let assemble ~graph ~raw_modes ~node_fit ~outputs ~redundant ~covered_pred
    ~sms =
  let n = Graph.Digraph.node_count graph in
  let node_modes = Array.make n [] in
  let modes =
    Array.of_list
      (List.mapi
         (fun i (node, component, name, meta_id, loss_like, pct, hazards) ->
           node_modes.(node) <- i :: node_modes.(node);
           {
             m_index = i;
             m_node = node;
             m_component = component;
             m_name = name;
             m_key = component ^ "/" ^ name;
             m_meta_id = meta_id;
             m_loss_like = loss_like;
             m_pct = pct;
             m_hazards = hazards;
           })
         raw_modes)
  in
  Array.iteri (fun i l -> node_modes.(i) <- List.rev l) node_modes;
  let covered = Graph.Bitset.create (Array.length modes) in
  Array.iter
    (fun m -> if covered_pred m then Graph.Bitset.add covered m.m_index)
    modes;
  { graph; modes; node_modes; node_fit; outputs; redundant; covered; sms }

(* ---------- SSAM architecture route ---------- *)

(* Child-level connection graph of a composite (the Path_fmea view):
   relationships whose endpoint is the composite itself mark the
   input/output boundary. *)
let child_graph (c : Architecture.component) =
  let self = Architecture.component_id c in
  let child_ids = List.map Architecture.component_id c.Architecture.children in
  let is_child id = List.exists (String.equal id) child_ids in
  let edges = ref [] in
  let boundary_out = ref [] in
  List.iter
    (fun (r : Architecture.relationship) ->
      let f = r.Architecture.from_component
      and t = r.Architecture.to_component in
      if String.equal t self && is_child f then boundary_out := f :: !boundary_out
      else if is_child f && is_child t then edges := (f, t) :: !edges)
    c.Architecture.connections;
  (child_ids, List.rev !edges, List.rev !boundary_out)

let fully_redundant (child : Architecture.component) =
  child.Architecture.functions <> []
  && List.for_all
       (fun (f : Architecture.func) ->
         match f.Architecture.tolerance with
         | Architecture.OneOoOne -> false
         | Architecture.OneOoTwo | Architecture.OneOoThree
         | Architecture.TwoOoThree ->
             true)
       child.Architecture.functions

let of_architecture ?outputs (c : Architecture.component) =
  let child_ids, edges, boundary_out = child_graph c in
  let graph = Graph.Digraph.of_edges ~nodes:child_ids edges in
  let index id =
    match Graph.Digraph.index graph id with
    | Some i -> i
    | None -> assert false (* interned via ~nodes *)
  in
  let n = Graph.Digraph.node_count graph in
  let out_nodes =
    match outputs with
    | Some ids -> List.filter_map (Graph.Digraph.index graph) ids
    | None -> (
        match List.sort_uniq String.compare boundary_out with
        | [] ->
            List.filter_map
              (fun id ->
                let i = index id in
                if Graph.Digraph.out_degree graph i = 0 then Some i else None)
              child_ids
        | ids -> List.map index ids)
  in
  let outputs =
    List.map (fun i -> (Graph.Digraph.name graph i, i)) out_nodes
  in
  let node_fit = Array.make n 0.0 in
  let redundant = Graph.Bitset.create n in
  let raw = ref [] in
  let sms = ref [] in
  List.iter
    (fun (child : Architecture.component) ->
      let cid = Architecture.component_id child in
      let node = index cid in
      node_fit.(node) <- child.Architecture.fit;
      if fully_redundant child then Graph.Bitset.add redundant node;
      List.iter
        (fun (fm : Architecture.failure_mode) ->
          raw :=
            ( node,
              cid,
              Base.display_name fm.Architecture.fm_meta,
              fm.Architecture.fm_meta.Base.id,
              Architecture.is_loss_like fm.Architecture.nature,
              fm.Architecture.distribution_pct,
              fm.Architecture.hazards )
            :: !raw)
        child.Architecture.failure_modes;
      List.iter
        (fun (sm : Architecture.safety_mechanism) ->
          sms :=
            (sm.Architecture.sm_meta.Base.id, node, sm.Architecture.covers)
            :: !sms)
        child.Architecture.safety_mechanisms)
    c.Architecture.children;
  let sms = List.rev !sms in
  let covered_ids =
    List.concat_map (fun (_, _, covers) -> covers) sms
  in
  assemble ~graph ~raw_modes:(List.rev !raw) ~node_fit ~outputs ~redundant
    ~covered_pred:(fun m ->
      List.exists (String.equal m.m_meta_id) covered_ids)
    ~sms

let of_package ?outputs (p : Architecture.package) =
  let name = Base.display_name p.Architecture.package_meta in
  let root =
    Architecture.component ~component_type:Architecture.System
      ~children:(Architecture.top_components p)
      ~connections:(Architecture.relationships p)
      ~meta:(Base.meta ~name ("dataflow-root:" ^ name))
      ()
  in
  of_architecture ?outputs root

(* ---------- block-diagram route ---------- *)

let is_ground_type ty =
  match String.lowercase_ascii ty with "ground" | "gnd" -> true | _ -> false

let is_sensor_type ty =
  let ty = String.lowercase_ascii ty in
  let suffix = "_sensor" in
  let ls = String.length suffix and lt = String.length ty in
  String.equal ty "sensor"
  || (lt >= ls && String.equal (String.sub ty (lt - ls) ls) suffix)

let of_diagram ?(monitored = []) ?reliability ?sm (d : Blockdiag.Diagram.t) =
  let open Blockdiag.Diagram in
  (* One level's blocks and connections, recursively; each level is
     self-contained (validate rejects cross-level endpoints). *)
  let rec levels (d : Blockdiag.Diagram.t) =
    (d.blocks, d.connections) :: List.concat_map levels d.subsystems
  in
  let levels = levels d in
  let all_blocks = List.concat_map fst levels in
  let keep =
    List.filter (fun b -> not (is_ground_type b.block_type)) all_blocks
  in
  let node_ids = List.map (fun b -> b.block_id) keep in
  let block_of =
    let tbl = Hashtbl.create 16 in
    List.iter (fun b -> Hashtbl.replace tbl b.block_id b) keep;
    fun id -> Hashtbl.find_opt tbl id
  in
  let port_kind b name =
    List.find_map
      (fun p -> if String.equal p.port_name name then Some p.port_kind else None)
      b.ports
  in
  let edges = ref [] in
  List.iter
    (fun (_, conns) ->
      List.iter
        (fun conn ->
          match (block_of conn.from_ep.ep_block, block_of conn.to_ep.ep_block)
          with
          | Some fb, Some tb ->
              edges := (fb.block_id, tb.block_id) :: !edges;
              (* Electrical wires carry faults both ways. *)
              let conserving b ep =
                match port_kind b ep.ep_port with
                | Some Conserving -> true
                | Some (In_port | Out_port) -> false
                | None -> false
              in
              if conserving fb conn.from_ep && conserving tb conn.to_ep then
                edges := (tb.block_id, fb.block_id) :: !edges
          | _ -> () (* endpoint on a dropped/unknown block *))
        conns)
    levels;
  let graph = Graph.Digraph.of_edges ~nodes:node_ids (List.rev !edges) in
  let index id =
    match Graph.Digraph.index graph id with
    | Some i -> i
    | None -> assert false
  in
  let outputs =
    let named =
      List.filter_map
        (fun id ->
          match Graph.Digraph.index graph id with
          | Some i -> Some (id, i)
          | None -> None)
        monitored
    in
    if named <> [] then named
    else
      List.filter_map
        (fun b ->
          if is_sensor_type b.block_type then Some (b.block_id, index b.block_id)
          else None)
        keep
  in
  let n = Graph.Digraph.node_count graph in
  let node_fit = Array.make n 0.0 in
  let raw = ref [] in
  let covered_keys = ref [] in
  List.iter
    (fun b ->
      let node = index b.block_id in
      match
        Option.bind reliability (fun r ->
            Reliability.Reliability_model.find r b.block_type)
      with
      | None -> ()
      | Some entry ->
          node_fit.(node) <- entry.Reliability.Reliability_model.fit;
          List.iter
            (fun (fm : Reliability.Reliability_model.failure_mode) ->
              let name = fm.Reliability.Reliability_model.fm_name in
              raw :=
                ( node,
                  b.block_id,
                  name,
                  Printf.sprintf "%s:fm:%s" b.block_id name,
                  fm.Reliability.Reliability_model.loss_of_function,
                  fm.Reliability.Reliability_model.distribution_pct,
                  [] )
                :: !raw;
              let has_sm =
                match sm with
                | None -> false
                | Some catalogue ->
                    Reliability.Sm_model.applicable catalogue
                      ~component_type:b.block_type ~failure_mode:name
                    <> []
              in
              if has_sm then
                covered_keys := (b.block_id ^ "/" ^ name) :: !covered_keys)
            entry.Reliability.Reliability_model.failure_modes)
    keep;
  let covered_keys = !covered_keys in
  assemble ~graph ~raw_modes:(List.rev !raw) ~node_fit ~outputs
    ~redundant:(Graph.Bitset.create n)
    ~covered_pred:(fun m -> List.exists (String.equal m.m_key) covered_keys)
    ~sms:[]
