(** The failure-propagation model the dataflow passes run on: one
    digraph node per component/block, a dense universe of (component,
    failure-mode) pairs, and the designated observation points.

    Built from either artefact the toolchain holds:

    - an SSAM architecture (composite component or flat package) —
      edges follow the declared relationships, failure modes and
      redundancy come straight off the components;
    - a block diagram plus reliability model — signal connections are
      directed out→in, electrical (conserving↔conserving) connections
      propagate both ways, and [ground] blocks are dropped entirely
      (the reference node is not a fault-propagation path; keeping it
      would short every block to every sensor). *)

type mode = {
  m_index : int;  (** dense index into {!field:modes} *)
  m_node : int;  (** graph node of the owning component *)
  m_component : string;  (** owning component / block id *)
  m_name : string;  (** failure-mode display name *)
  m_key : string;  (** stable cut-set atom: ["component/mode"] *)
  m_meta_id : string;  (** SSAM failure-mode id (SM [covers] target) *)
  m_loss_like : bool;
  m_pct : float;  (** share of the component's FIT, in [0,100] *)
  m_hazards : string list;  (** cited hazardous-situation ids *)
}

type t = {
  graph : Graph.Digraph.t;
  modes : mode array;  (** universe, grouped by node in node order *)
  node_modes : int list array;  (** node → mode indices, ascending *)
  node_fit : float array;  (** component FIT per node *)
  outputs : (string * int) list;  (** observation points: (id, node) *)
  redundant : Graph.Bitset.t;
      (** nodes whose every declared function is fault-tolerant
          (1oo2/1oo3/2oo3) — never single points *)
  covered : Graph.Bitset.t;
      (** modes (not nodes) some safety mechanism diagnoses *)
  sms : (string * int * string list) list;
      (** placed mechanisms: (sm id, host node, covered mode meta ids);
          empty on the diagram route, where mechanisms are type-level *)
}

val of_architecture : ?outputs:string list -> Ssam.Architecture.component -> t
(** Child-level model of a composite: nodes are the children, edges the
    internal connections; relationships touching the composite itself
    mark the boundary.  [outputs] overrides the observation points
    (default: boundary outputs, else sink nodes). *)

val of_package : ?outputs:string list -> Ssam.Architecture.package -> t
(** {!of_architecture} on a synthetic root holding the package's top
    components and relationships — the flat-package view.  Nested
    children contribute no nodes of their own. *)

val of_diagram :
  ?monitored:string list ->
  ?reliability:Reliability.Reliability_model.t ->
  ?sm:Reliability.Sm_model.t ->
  Blockdiag.Diagram.t ->
  t
(** Block-diagram model as described above.  Failure modes come from
    the reliability entry for each block's type (none without an
    entry); mode coverage from the [sm] catalogue's applicable
    mechanisms.  [monitored] selects the observation points (unknown
    ids are ignored); default: every [*_sensor] block. *)

val mode_count : t -> int

val output_names : t -> string list

val find_output : t -> string -> int option
(** Graph node of an observation point, by id. *)

val output_index : t -> string -> int option
(** Dense index of an observation point into {!field:outputs} — the bit
    position backward passes use. *)
