type solution = { sets : Graph.Bitset.t array; stats : Fixpoint.stats }

(* A first-class bitset lattice over a fixed universe.  [bottom] is one
   shared all-clear set which the engine never mutates (join copies). *)
let bitset_lattice universe =
  (module struct
    type t = Graph.Bitset.t

    let bottom = Graph.Bitset.create universe

    let join a b =
      let c = Graph.Bitset.copy a in
      ignore (Graph.Bitset.union_into ~into:c b);
      c

    let leq = Graph.Bitset.subset
  end : Fixpoint.LATTICE
    with type t = Graph.Bitset.t)

let forward_taint ?jobs (m : Model.t) =
  let universe = Model.mode_count m in
  let lat = bitset_lattice universe in
  let init n =
    let s = Graph.Bitset.create universe in
    List.iter (Graph.Bitset.add s) m.Model.node_modes.(n);
    s
  in
  let sets, stats =
    Fixpoint.solve lat ?jobs ~direction:Fixpoint.Forward ~init
      ~transfer:(fun _ v -> v)
      m.Model.graph
  in
  { sets; stats }

let backward_reach ?jobs (m : Model.t) =
  let universe = List.length m.Model.outputs in
  let lat = bitset_lattice universe in
  let out_bits = Array.make (Graph.Digraph.node_count m.Model.graph) [] in
  List.iteri
    (fun oi (_, node) -> out_bits.(node) <- oi :: out_bits.(node))
    m.Model.outputs;
  let init n =
    let s = Graph.Bitset.create universe in
    List.iter (Graph.Bitset.add s) out_bits.(n);
    s
  in
  let sets, stats =
    Fixpoint.solve lat ?jobs ~direction:Fixpoint.Backward ~init
      ~transfer:(fun _ v -> v)
      m.Model.graph
  in
  { sets; stats }

let forward_explains (m : Model.t) (sol : solution) ~output =
  match Model.find_output m output with
  | None -> []
  | Some node ->
      List.map
        (fun i -> m.Model.modes.(i))
        (Graph.Bitset.to_list sol.sets.(node))

let backward_explains (m : Model.t) (sol : solution) ~output =
  match Model.output_index m output with
  | None -> []
  | Some oi ->
      List.filter
        (fun (md : Model.mode) ->
          Graph.Bitset.mem sol.sets.(md.Model.m_node) oi)
        (Array.to_list m.Model.modes)

let agreement (m : Model.t) ~forward ~backward =
  List.fold_left
    (fun (agree, pairs) (output, _) ->
      let fwd =
        List.map (fun (md : Model.mode) -> md.Model.m_index)
          (forward_explains m forward ~output)
      in
      let bwd =
        List.map (fun (md : Model.mode) -> md.Model.m_index)
          (backward_explains m backward ~output)
      in
      (agree && fwd = bwd, pairs + List.length fwd))
    (true, 0) m.Model.outputs

let reaches_output (m : Model.t) ~(forward : solution) (md : Model.mode) =
  List.exists
    (fun (_, node) -> Graph.Bitset.mem forward.sets.(node) md.Model.m_index)
    m.Model.outputs

let latent_modes (m : Model.t) ~forward =
  List.filter
    (fun md -> not (reaches_output m ~forward md))
    (Array.to_list m.Model.modes)

let silent_outputs (m : Model.t) ~(forward : solution) =
  List.filter_map
    (fun (output, node) ->
      if Graph.Bitset.cardinal forward.sets.(node) = 0 then Some output
      else None)
    m.Model.outputs

let coverage_gaps (m : Model.t) ~forward =
  List.filter
    (fun (md : Model.mode) ->
      md.Model.m_loss_like
      && (not (Graph.Bitset.mem m.Model.redundant md.Model.m_node))
      && reaches_output m ~forward md
      && not (Graph.Bitset.mem m.Model.covered md.Model.m_index))
    (Array.to_list m.Model.modes)

let off_path_mechanisms (m : Model.t) ~(forward : solution) =
  List.concat_map
    (fun (sm_id, host, covers) ->
      List.filter_map
        (fun meta_id ->
          match
            Array.find_opt
              (fun (md : Model.mode) ->
                String.equal md.Model.m_meta_id meta_id)
              m.Model.modes
          with
          | Some md
            when not (Graph.Bitset.mem forward.sets.(host) md.Model.m_index)
            ->
              Some (sm_id, Graph.Digraph.name m.Model.graph host, md)
          | Some _ | None -> None)
        covers)
    m.Model.sms

let forward_fmea ?jobs (m : Model.t) =
  let forward = forward_taint ?jobs m in
  let rows =
    List.map
      (fun (md : Model.mode) ->
        let reached =
          List.filter_map
            (fun (output, node) ->
              if Graph.Bitset.mem forward.sets.(node) md.Model.m_index then
                Some output
              else None)
            m.Model.outputs
        in
        let fit = m.Model.node_fit.(md.Model.m_node) in
        if reached = [] then
          Fmea.Table.make_row ~impact:"reaches no monitored output"
            ~component:md.Model.m_component ~component_fit:fit
            ~failure_mode:md.Model.m_name ~distribution_pct:md.Model.m_pct
            ~safety_related:false ()
        else if not md.Model.m_loss_like then
          Fmea.Table.make_row
            ~warning:
              (Printf.sprintf
                 "failure mode '%s' is not loss-of-function; propagation \
                  cannot classify it — review manually"
                 md.Model.m_name)
            ~component:md.Model.m_component ~component_fit:fit
            ~failure_mode:md.Model.m_name ~distribution_pct:md.Model.m_pct
            ~safety_related:false ()
        else if Graph.Bitset.mem m.Model.redundant md.Model.m_node then
          Fmea.Table.make_row
            ~impact:"tolerated by redundant function (no single point)"
            ~component:md.Model.m_component ~component_fit:fit
            ~failure_mode:md.Model.m_name ~distribution_pct:md.Model.m_pct
            ~safety_related:false ()
        else
          Fmea.Table.make_row
            ~impact:
              (Printf.sprintf "deviates monitored output%s %s"
                 (if List.length reached = 1 then "" else "s")
                 (String.concat ", " reached))
            ~component:md.Model.m_component ~component_fit:fit
            ~failure_mode:md.Model.m_name ~distribution_pct:md.Model.m_pct
            ~safety_related:true ())
      (Array.to_list m.Model.modes)
  in
  { Fmea.Table.system_name = "propagation"; rows }

let integrity_rank = function
  | Ssam.Requirement.QM -> 0
  | Ssam.Requirement.ASIL_A -> 1
  | Ssam.Requirement.ASIL_B -> 2
  | Ssam.Requirement.ASIL_C -> 3
  | Ssam.Requirement.ASIL_D -> 4
  | Ssam.Requirement.SIL n -> n

type integrity_finding = {
  if_component : string;
  allocated : Ssam.Requirement.integrity_level option;
  demanded : Ssam.Requirement.integrity_level;
  via_mode : Model.mode;
  hazard : string;
}

let integrity_violations ?jobs (model : Ssam.Model.t) (m : Model.t) =
  let index = Ssam.Model.index model in
  let level_of_hazard id =
    match Ssam.Model.lookup index id with
    | Some (Ssam.Model.E_hazard (Ssam.Hazard.Situation s)) ->
        Hara.Risk.of_situation s
    | _ -> None
  in
  (* Demands carried by each mode: the worst risk-graph level among the
     hazards its failure mode cites. *)
  let mode_demand =
    Array.map
      (fun (md : Model.mode) ->
        List.fold_left
          (fun acc hz ->
            match level_of_hazard hz with
            | None -> acc
            | Some lvl -> (
                match acc with
                | Some (best, _) when integrity_rank best >= integrity_rank lvl
                  ->
                    acc
                | _ -> Some (lvl, hz)))
          None md.Model.m_hazards)
      m.Model.modes
  in
  let forward = forward_taint ?jobs m in
  let n = Graph.Digraph.node_count m.Model.graph in
  let findings = ref [] in
  for node = 0 to n - 1 do
    let worst = ref None in
    Graph.Bitset.iter
      (fun mi ->
        match mode_demand.(mi) with
        | None -> ()
        | Some (lvl, hz) -> (
            match !worst with
            | Some (best, _, _) when integrity_rank best >= integrity_rank lvl
              ->
                ()
            | _ -> worst := Some (lvl, hz, mi)))
      forward.sets.(node);
    match !worst with
    | None -> ()
    | Some (demanded, hazard, mi) -> (
        let cid = Graph.Digraph.name m.Model.graph node in
        match Ssam.Model.find_component model cid with
        | None -> ()
        | Some c -> (
            match c.Ssam.Architecture.integrity with
            | None -> () (* unallocated: the SSAM pack's business *)
            | Some allocated when
                integrity_rank allocated >= integrity_rank demanded ->
                ()
            | Some allocated ->
                findings :=
                  {
                    if_component = cid;
                    allocated = Some allocated;
                    demanded;
                    via_mode = m.Model.modes.(mi);
                    hazard;
                  }
                  :: !findings))
  done;
  List.rev !findings
