(** The concrete propagation passes over a {!Model.t} — bitset-lattice
    instances of {!Fixpoint}.

    Two independent fixpoints compute the same (failure mode, output)
    relation from opposite directions:

    - {!forward_taint} pushes each node's own failure modes along the
      flow: [reach.(n)] = modes that can deviate node [n];
    - {!backward_reach} pulls observation points against the flow:
      [outs.(n)] = outputs a deviation originating at [n] can disturb.

    Mode [m] explains output [o] iff [m ∈ reach.(node o)] iff
    [o ∈ outs.(node m)] — {!agreement} cross-checks the two directions
    pair by pair, which is the internal differential oracle the DFA003
    lint rule and the bench section report on. *)

type solution = {
  sets : Graph.Bitset.t array;  (** one set per graph node *)
  stats : Fixpoint.stats;
}

val forward_taint : ?jobs:int -> Model.t -> solution
(** Forward pass; [sets.(n)] over the mode universe. *)

val backward_reach : ?jobs:int -> Model.t -> solution
(** Backward pass; [sets.(n)] over the output universe
    ({!Model.output_index} positions). *)

val forward_explains :
  Model.t -> solution -> output:string -> Model.mode list
(** Modes reaching the named output, ascending mode index; [[]] for
    unknown outputs. *)

val backward_explains :
  Model.t -> solution -> output:string -> Model.mode list
(** Modes whose node co-reaches the named output — must equal
    {!forward_explains} on the forward solution. *)

val agreement : Model.t -> forward:solution -> backward:solution -> bool * int
(** [(agree, pairs)]: whether the two directions induce the identical
    (mode, output) relation, and how many pairs were checked. *)

val latent_modes : Model.t -> forward:solution -> Model.mode list
(** Modes that reach no observation point at all. *)

val silent_outputs : Model.t -> forward:solution -> string list
(** Observation points no failure mode can deviate. *)

val coverage_gaps : Model.t -> forward:solution -> Model.mode list
(** Loss-like modes of non-redundant components that reach an
    observation point but are diagnosed by no safety mechanism. *)

val off_path_mechanisms :
  Model.t -> forward:solution -> (string * string * Model.mode) list
(** Placed mechanisms covering a mode that cannot reach their host:
    [(sm id, host component, mode)].  Architecture route only. *)

val forward_fmea : ?jobs:int -> Model.t -> Fmea.Table.t
(** The forward taint rendered as an FMEA table — one row per mode,
    safety-related iff a loss-like mode of a non-redundant component
    reaches an observation point.  The graph-level "forward injection
    FMEA" the backward diagnosis is differentially tested against. *)

val integrity_rank : Ssam.Requirement.integrity_level -> int
(** QM 0, ASIL A–D 1–4, SIL [n] = [n] (SIL 4 ≈ ASIL D) — the scale
    integrity propagation compares on. *)

type integrity_finding = {
  if_component : string;
  allocated : Ssam.Requirement.integrity_level option;
  demanded : Ssam.Requirement.integrity_level;
  via_mode : Model.mode;  (** the cause whose hazard sets the demand *)
  hazard : string;  (** hazardous-situation id *)
}

val integrity_violations :
  ?jobs:int -> Ssam.Model.t -> Model.t -> integrity_finding list
(** Integrity propagation: every component reached by a failure mode
    citing a hazard demands at least that hazard's risk-graph level
    ({!Hara.Risk.of_situation}); components allocated below the maximum
    demand are reported (unallocated components are left to the SSAM
    pack).  One finding per component, keyed to the worst demand. *)
