type analysis_route = Via_injection | Via_ssam_paths | Via_fta

(* Functional abstraction of an electrical diagram for path analysis
   (Algorithm 1 and FTA): the input→output notion of the paper's SSAM
   models is the *power/function flow*, not the raw wiring, so

   - ground blocks and their edges are dropped (every return path runs
     through ground; keeping them would make everything bypassable);
   - supply blocks (vsource/isource) form the input boundary;
   - consumers (loads, MCUs, PLLs) form the output boundary;
   - simulation-only blocks never appear (the transformation keeps them,
     but they carry no reliability data).

   This mirrors how the paper's Fig. 12 SSAM twin is drawn: a directed
   chain from supply to load with off-path branches hanging off. *)
let functional_root ~reliability diagram =
  Blockdiag.Transform.functional_root ~reliability diagram

let analyse ?engine ?previous ?(route = Via_injection) ?(exclude = [])
    ?monitored_sensors diagram reliability =
  match route with
  | Via_injection -> (
      let options =
        {
          Fmea.Injection_fmea.default_options with
          exclude;
          monitored_sensors;
        }
      in
      match engine with
      | Some e ->
          Engine.Pipeline.injection_fmea e ?previous ~options diagram
            reliability
      | None ->
          let conversion = Blockdiag.To_netlist.convert diagram in
          Fmea.Injection_fmea.analyse ~options
            ~element_types:conversion.Blockdiag.To_netlist.block_types
            conversion.Blockdiag.To_netlist.netlist reliability)
  | Via_ssam_paths -> (
      let options = { Fmea.Path_fmea.default_options with exclude } in
      let root = functional_root ~reliability diagram in
      match engine with
      | Some e -> Engine.Pipeline.path_fmea e ~options root
      | None -> Fmea.Path_fmea.analyse ~options root)
  | Via_fta -> (
      let root = functional_root ~reliability diagram in
      let compute () =
        let table = Fta.Fmea_from_fta.analyse root in
        (* The FTA route has no exclusion machinery; filter rows here. *)
        {
          table with
          Fmea.Table.rows =
            List.filter
              (fun (r : Fmea.Table.row) ->
                not (List.exists (String.equal r.Fmea.Table.component) exclude))
              table.Fmea.Table.rows;
        }
      in
      match engine with
      | Some e ->
          Engine.Pipeline.memo e ~stage:"fmea.fta"
            ~key:
              (Engine.Fingerprint.node
                 [
                   Engine.Fingerprint.ssam_component root;
                   Engine.Fingerprint.leaf
                     ("exclude:[" ^ String.concat ";" exclude ^ "]");
                 ])
            compute
      | None -> compute ())

type refinement = {
  refined_table : Fmea.Table.t;
  chosen : Optimize.Search.candidate option;
  pareto_front : Optimize.Search.candidate list;
  achieved_spfm : float;
  meets_target : bool;
}

let refine ?engine ~target ?(component_types = []) table sm_model =
  let chosen, pareto_front =
    match engine with
    | Some e ->
        Engine.Pipeline.optimise e ~component_types ~target table sm_model
    | None -> Optimize.Search.optimise ~component_types ~target table sm_model
  in
  let refined_table =
    match chosen with
    | Some c -> Fmea.Fmeda.apply table c.Optimize.Search.deployments
    | None -> table
  in
  let achieved_spfm = Fmea.Metrics.spfm refined_table in
  {
    refined_table;
    chosen;
    pareto_front;
    achieved_spfm;
    meets_target = Fmea.Asil.meets ~target ~spfm:achieved_spfm;
  }

let run_decisive ?engine ~name ~target ?(exclude = []) ?monitored_sensors
    ?(max_iterations = 5) diagram reliability sm_model =
  let conversion = Blockdiag.To_netlist.convert diagram in
  let component_types = conversion.Blockdiag.To_netlist.block_types in
  let perform_exn process step produces =
    match Process.perform process step ~produces with
    | Ok p -> p
    | Error e ->
        invalid_arg
          (Format.asprintf "run_decisive: %a" Process.pp_error e)
  in
  let rec loop process iteration =
    let process =
      perform_exn process Process.Step1_plan
        [
          (Process.System_definition, name ^ " definition");
          (Process.Function_requirements, name ^ " function requirements");
          (Process.Hazard_log, name ^ " hazard log");
        ]
    in
    let process =
      perform_exn process Process.Step2_design
        [
          (Process.Safety_requirements, name ^ " safety requirements");
          (Process.Architectural_design, diagram.Blockdiag.Diagram.diagram_name);
        ]
    in
    let process =
      perform_exn process Process.Step3_reliability
        [ (Process.Component_reliability_model, "reliability model") ]
    in
    let table = analyse ?engine ~exclude ?monitored_sensors diagram reliability in
    let process =
      perform_exn process Process.Step4a_evaluate
        [
          (Process.Component_safety_analysis_model, "FMEA table");
          (Process.Architecture_metrics, "SPFM");
        ]
    in
    let process = Process.record_spfm process (Fmea.Metrics.spfm table) in
    if Fmea.Asil.meets ~target ~spfm:(Fmea.Metrics.spfm table) then
      let process =
        perform_exn process Process.Step5_safety_concept
          [ (Process.Safety_concept, name ^ " safety concept") ]
      in
      (process, table)
    else begin
      let refinement = refine ?engine ~target ~component_types table sm_model in
      let process =
        perform_exn process Process.Step4b_refine
          [ (Process.Safety_mechanism_model, "SM deployment proposal") ]
      in
      let process =
        perform_exn process Process.Step4a_evaluate
          [
            (Process.Component_safety_analysis_model, "FMEDA table");
            (Process.Architecture_metrics, "SPFM (refined)");
          ]
      in
      let process = Process.record_spfm process refinement.achieved_spfm in
      if refinement.meets_target then
        let process =
          perform_exn process Process.Step5_safety_concept
            [ (Process.Safety_concept, name ^ " safety concept") ]
        in
        (process, refinement.refined_table)
      else if iteration >= max_iterations then (process, refinement.refined_table)
      else loop (Process.iterate process) (iteration + 1)
    end
  in
  loop (Process.start ~name ~target) 1

let spfm_query ~target =
  let threshold =
    match Fmea.Asil.spfm_target target with Some t -> t | None -> 0.0
  in
  Printf.sprintf
    "var sr := Artifact.rows.select(r | r.safety_related = 'Yes');\n\
     var comps := sr.collect(r | r.component).distinct();\n\
     var lambda := comps.collect(c | Artifact.rows.select(r | r.component = \
     c).first().fit.toNumber()).sum();\n\
     var spf := sr.collect(r | \
     r.single_point_failure_rate.split(' ').first().toNumber()).sum();\n\
     return lambda > 0 and (100 * (1 - spf / lambda)) >= %g;"
    threshold

let export_fmeda ~path table =
  Modelio.Csv.write_file path
    (Fmea.Table.to_csv ~repeat_component_cells:true table)

let assurance_case_for ~system ~target ~fmeda_csv =
  let open Assurance.Sacm in
  let target_name = Ssam.Requirement.integrity_level_to_string target in
  {
    case_name = system ^ " safety case";
    root =
      goal ~id:"G1"
        ~in_context_of:
          [
            context ~id:"C1" (system ^ " as a Safety Element out of Context");
            context ~id:"C2" ("target integrity level " ^ target_name);
          ]
        ~supported_by:
          [
            strategy ~id:"S1"
              "Argument over the results of the automated safety analysis"
              ~supported_by:
                [
                  goal ~id:"G2"
                    (Printf.sprintf
                       "The architecture metrics meet the %s targets"
                       target_name)
                    ~supported_by:
                      [
                        solution ~id:"Sn1"
                          "FMEDA results generated by SAME"
                          ~artifact:
                            (artifact
                               ~query:(spfm_query ~target)
                               ~description:
                                 "Excel-based FMEDA table produced by Step 4a"
                               ~location:fmeda_csv ~driver:"csv" ());
                      ];
                  goal ~id:"G3"
                    "All safety-related components carry mitigations or are \
                     covered by safety mechanisms"
                    ~supported_by:
                      [
                        solution ~id:"Sn2"
                          "Safety-mechanism deployment record"
                          ~artifact:
                            (artifact
                               ~description:"Step 4b deployment decision"
                               ~location:fmeda_csv ~driver:"csv" ());
                      ];
                ];
          ]
        (Printf.sprintf "%s is acceptably safe to operate in its defined \
                         operational context" system);
  }
