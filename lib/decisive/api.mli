(** SAME's high-level facade: one-call versions of the DECISIVE steps that
    the CLI, the examples and downstream users drive.

    Lower-level control lives in the individual libraries ({!Fmea},
    {!Optimize}, {!Assurance}, ...); this module wires them together the
    way Fig. 10 wires SAME's components. *)

type analysis_route =
  | Via_injection  (** circuit simulation + failure injection (Sec. IV-D1) *)
  | Via_ssam_paths  (** Algorithm 1 on the transformed SSAM model *)
  | Via_fta  (** HiP-HOPS-style: fault-tree generation + cut sets *)

val functional_root :
  reliability:Reliability.Reliability_model.t ->
  Blockdiag.Diagram.t ->
  Ssam.Architecture.component
(** The functional abstraction the SSAM/FTA routes analyse: the diagram
    transformed to SSAM (reliability aggregated), wrapped in a composite
    whose input boundary is the supply blocks and whose output boundary
    is the consumer blocks, with ground edges dropped — the power/function
    flow the paper's Fig. 12 SSAM twin depicts. *)

val analyse :
  ?engine:Engine.Pipeline.t ->
  ?previous:Engine.Pipeline.previous ->
  ?route:analysis_route ->
  ?exclude:string list ->
  ?monitored_sensors:string list ->
  Blockdiag.Diagram.t ->
  Reliability.Reliability_model.t ->
  Fmea.Table.t
(** DECISIVE Step 4a on a block diagram (default route: injection).  The
    SSAM routes transform the diagram first (Step 3 aggregation included).
    Raises {!Fmea.Injection_fmea.Golden_run_failed} when the design does
    not simulate, {!Fta.From_ssam.No_paths} on the FTA route for designs
    without input→output paths.

    [engine] routes the analysis through the incremental engine: results
    are memoised by input fingerprint (and, on the injection route,
    [previous] enables row-level reuse after a component-local edit — see
    {!Engine.Pipeline.injection_fmea}).  Without it the behaviour — and
    every value of every row — is the historical direct computation. *)

type refinement = {
  refined_table : Fmea.Table.t;
  chosen : Optimize.Search.candidate option;
  pareto_front : Optimize.Search.candidate list;
  achieved_spfm : float;
  meets_target : bool;
}

val refine :
  ?engine:Engine.Pipeline.t ->
  target:Ssam.Requirement.integrity_level ->
  ?component_types:(string * string) list ->
  Fmea.Table.t ->
  Reliability.Sm_model.t ->
  refinement
(** DECISIVE Step 4b: search SM deployments for the target.  With
    [engine] the search result is memoised by (table, SM-model, target)
    fingerprint and the per-row λ-share evaluator is reused across
    searches over the same table. *)

val run_decisive :
  ?engine:Engine.Pipeline.t ->
  name:string ->
  target:Ssam.Requirement.integrity_level ->
  ?exclude:string list ->
  ?monitored_sensors:string list ->
  ?max_iterations:int ->
  Blockdiag.Diagram.t ->
  Reliability.Reliability_model.t ->
  Reliability.Sm_model.t ->
  Process.t * Fmea.Table.t
(** The full loop of Fig. 1: plan → design → reliability → evaluate →
    refine → (iterate) → safety concept, recording every artefact in the
    returned {!Process.t}.  Stops when the target is met or
    [max_iterations] (default 5) DECISIVE iterations have run. *)

val assurance_case_for :
  system:string ->
  target:Ssam.Requirement.integrity_level ->
  fmeda_csv:string ->
  Assurance.Sacm.case
(** The Sec. V-C integration: a goal structure whose solution cites the
    FMEDA spreadsheet at [fmeda_csv] with an executable SPFM acceptance
    query (re-evaluating the case re-runs the query against the current
    file). *)

val export_fmeda : path:string -> Fmea.Table.t -> unit
(** Write the Excel-style FMEDA table (CSV) — "an Excel-based FMEA table
    is always produced". *)

val spfm_query : target:Ssam.Requirement.integrity_level -> string
(** The acceptance query {!assurance_case_for} embeds: recomputes SPFM
    from the FMEDA rows and compares it to the target. *)
