open Ssam

let hazard_h1 =
  let h1 =
    Hazard.situation
      ~exposure:Hazard.E4 ~controllability:Hazard.C2
      ~causes:
        [
          Hazard.cause
            ~meta:(Base.meta ~name:"component failure" "H1:cause:1")
            "failure of a power-path component";
        ]
      ~meta:(Base.meta ~name:"The power supply fails unexpectedly" "H1")
      ~severity:Hazard.S3 ()
  in
  Hazard.package
    ~meta:(Base.meta ~name:"sensor power supply hazards" "pkg:hazards:psu")
    [ Hazard.Situation h1 ]

let power_supply_diagram =
  let open Blockdiag.Diagram in
  let b = block in
  diagram ~name:"sensor_power_supply"
    [
      b ~id:"DC1" ~block_type:"vsource" ~parameters:[ ("volts", P_num 5.0) ] ();
      b ~id:"D1" ~block_type:"diode" ();
      b ~id:"C1" ~block_type:"capacitor" ~parameters:[ ("farads", P_num 1e-5) ] ();
      b ~id:"L1" ~block_type:"inductor" ~parameters:[ ("henries", P_num 1e-3) ] ();
      b ~id:"C2" ~block_type:"capacitor" ~parameters:[ ("farads", P_num 1e-5) ] ();
      b ~id:"CS1" ~block_type:"current_sensor" ();
      b
        ~id:"MC1" ~block_type:"microcontroller"
        ~parameters:[ ("ohms", P_num 100.0) ]
        ~annotation:"annotated subsystem standing in for the MCU" ();
      b ~id:"GND1" ~block_type:"ground"
        ~ports:[ { port_name = "a"; port_kind = Conserving } ]
        ();
      (* Simulation-only blocks of Fig. 11. *)
      b ~id:"S1" ~block_type:"solver_config" ~ports:[] ();
      b ~id:"Scope1" ~block_type:"scope"
        ~ports:[ { port_name = "in"; port_kind = In_port } ]
        ();
      b ~id:"Out1" ~block_type:"workspace"
        ~ports:[ { port_name = "in"; port_kind = In_port } ]
        ();
    ]
    ~connections:
      [
        connect ("DC1", "a") ("D1", "a");
        connect ("D1", "b") ("C1", "a");
        connect ("D1", "b") ("L1", "a");
        connect ("L1", "b") ("C2", "a");
        connect ("L1", "b") ("CS1", "a");
        connect ("CS1", "b") ("MC1", "a");
        connect ("MC1", "b") ("GND1", "a");
        connect ("DC1", "b") ("GND1", "a");
        connect ("C1", "b") ("GND1", "a");
        connect ("C2", "b") ("GND1", "a");
      ]

let power_supply_netlist =
  (Blockdiag.To_netlist.convert power_supply_diagram).Blockdiag.To_netlist.netlist

let reliability_model = Reliability.Reliability_model.table_ii

let sm_model = Reliability.Sm_model.table_iii

(* The SSAM twin (Fig. 12): the diagram transformed to SSAM with
   reliability data aggregated (Step 3). *)
let power_supply_ssam =
  Blockdiag.Transform.aggregate_reliability reliability_model
    (Blockdiag.Transform.to_ssam power_supply_diagram)

(* The composite for Algorithm 1: the analysable power path as children of
   a PSU root, with boundary connections marking supply input and load
   output.  C1/C2 hang off the path; the simulation-only blocks are not
   part of the safety analysis. *)
let power_supply_root =
  let children =
    List.filter_map
      (fun id -> Architecture.find_in_package power_supply_ssam id)
      [ "DC1"; "D1"; "C1"; "L1"; "C2"; "CS1"; "MC1" ]
  in
  let conn i from_c to_c =
    Architecture.relationship
      ~meta:(Base.meta (Printf.sprintf "PSU:conn:%d" i))
      ~from_component:from_c ~to_component:to_c ()
  in
  Architecture.component ~component_type:Architecture.System ~children
    ~connections:
      [
        conn 0 "PSU" "DC1";
        conn 1 "DC1" "D1";
        conn 2 "D1" "C1";
        conn 3 "D1" "L1";
        conn 4 "L1" "C2";
        conn 5 "L1" "CS1";
        conn 6 "CS1" "MC1";
        conn 7 "MC1" "PSU";
      ]
    ~meta:(Base.meta ~name:"PSU" "PSU")
    ()

let injection_options =
  { Fmea.Injection_fmea.default_options with exclude = [ "DC1" ] }

(* ---------- design-variant fleet ----------

   The batch-fleet workload (one warm engine, N variants of one system,
   as in S#'s Elbtunnel DesignExploration suite): cycle through three
   electrical designs of the PSU — the baseline, a doubled output
   capacitor, and a halved filter inductor — each under its own diagram
   name.  Variants that share a design have element-for-element equal
   netlists, so the engine's structural golden-run sharing makes a fleet
   of N variants cost only [min N 3] golden factorisations. *)

let with_param d ~block_id ~param value =
  let open Blockdiag.Diagram in
  {
    d with
    blocks =
      List.map
        (fun b ->
          if String.equal b.block_id block_id then
            {
              b with
              parameters =
                (param, P_num value) :: List.remove_assoc param b.parameters;
            }
          else b)
        d.blocks;
  }

let renamed name diagram = { diagram with Blockdiag.Diagram.diagram_name = name }

let design_variants ?(count = 6) () =
  List.init (Stdlib.max 1 count) (fun i ->
      let name = Printf.sprintf "psu_v%d" (i + 1) in
      let design =
        match i mod 3 with
        | 0 -> power_supply_diagram
        | 1 ->
            with_param power_supply_diagram ~block_id:"C2" ~param:"farads" 2e-5
        | _ ->
            with_param power_supply_diagram ~block_id:"L1" ~param:"henries"
              5e-4
      in
      (name, renamed name design))

let fmea_via_injection () =
  let conversion = Blockdiag.To_netlist.convert power_supply_diagram in
  Fmea.Injection_fmea.analyse ~options:injection_options
    ~element_types:conversion.Blockdiag.To_netlist.block_types
    conversion.Blockdiag.To_netlist.netlist reliability_model

let fmea_via_ssam () =
  let options =
    { Fmea.Path_fmea.default_options with exclude = [ "DC1" ] }
  in
  Fmea.Path_fmea.analyse ~options power_supply_root

let fmeda table =
  let deployments =
    Fmea.Fmeda.auto_deploy
      ~component_types:[ ("MC1", "microcontroller") ]
      table sm_model
  in
  Fmea.Fmeda.apply table deployments

(* ---------- the Table I PLL example ---------- *)

type pll_row = {
  pll_fm : string;
  pll_impact : string;
  pll_distribution : float;
  pll_sm : string option;
  pll_coverage : float;
}

let pll_rows =
  [
    {
      pll_fm = "lower frequency";
      pll_impact = "DVF";
      pll_distribution = 40.1;
      pll_sm = Some "time-out watchdog";
      pll_coverage = 70.0;
    };
    {
      pll_fm = "higher frequency";
      pll_impact = "IVF";
      pll_distribution = 28.7;
      pll_sm = None;
      pll_coverage = 0.0;
    };
    {
      pll_fm = "jitter";
      pll_impact = "DVF";
      pll_distribution = 31.2;
      pll_sm = Some "dual-core lockstep";
      pll_coverage = 99.0;
    };
  ]

let pll_component =
  let fm name nature dist =
    Architecture.failure_mode
      ~meta:(Base.meta ~name (Printf.sprintf "PLL:fm:%s" name))
      ~nature ~distribution_pct:dist ()
  in
  let sm name coverage cost covers =
    Architecture.safety_mechanism
      ~covers
      ~meta:(Base.meta ~name (Printf.sprintf "PLL:sm:%s" name))
      ~coverage_pct:coverage ~cost ()
  in
  Architecture.component ~fit:50.0 ~safety_related:true
    ~failure_modes:
      [
        fm "lower frequency" Architecture.Loss_of_function 40.1;
        fm "higher frequency" Architecture.Erroneous 28.7;
        fm "jitter" Architecture.Erroneous 31.2;
      ]
    ~safety_mechanisms:
      [
        sm "time-out watchdog" 70.0 0.5 [ "PLL:fm:lower frequency" ];
        sm "dual-core lockstep" 99.0 8.0 [ "PLL:fm:jitter" ];
      ]
    ~meta:(Base.meta ~name:"PLL" "PLL")
    ()

let pll_fmeda ~fit =
  let rows =
    List.map
      (fun r ->
        Fmea.Table.make_row ~impact:r.pll_impact
          ?safety_mechanism:r.pll_sm
          ?sm_coverage_pct:(if r.pll_sm = None then None else Some r.pll_coverage)
          ~component:"PLL" ~component_fit:fit ~failure_mode:r.pll_fm
          ~distribution_pct:r.pll_distribution ~safety_related:true ())
      pll_rows
  in
  { Fmea.Table.system_name = "PLL (Table I)"; rows }
