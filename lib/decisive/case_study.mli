(** The Section V case study: a power supply for a proximity sensor,
    developed as a Safety Element out of Context, plus the Table I PLL
    FMEDA example.

    Both analysis routes of the paper are provided: failure injection on
    the circuit model (the Simulink path, Sec. V-A) and the path algorithm
    on the SSAM twin (Sec. V-B).  The published results reproduce exactly:
    SPFM 5.38 % without safety mechanisms, 96.77 % with ECC on MC1
    (ASIL-B). *)

val hazard_h1 : Ssam.Hazard.package
(** H1: "The power supply fails unexpectedly" (S3/E4/C2 → ASIL-C by the
    risk graph; the paper targets ASIL-B for its safety requirement). *)

val power_supply_diagram : Blockdiag.Diagram.t
(** Fig. 11: DC1, D1, C1, L1, C2, CS1, MC1, GND1, plus the
    simulation-only S1/Scope1/Out1 blocks. *)

val power_supply_netlist : Circuit.Netlist.t
(** Extracted electrical net of the diagram. *)

val power_supply_ssam : Ssam.Architecture.package
(** Fig. 12: the SSAM twin, transformed from the diagram with reliability
    data aggregated (Step 3) — ready for {!Fmea.Path_fmea}. *)

val power_supply_root : Ssam.Architecture.component
(** The composite "PSU" component with boundary connections, for
    Algorithm 1 and FTA generation. *)

val reliability_model : Reliability.Reliability_model.t
(** Table II. *)

val sm_model : Reliability.Sm_model.t
(** Table III. *)

val injection_options : Fmea.Injection_fmea.options
(** DC1 excluded ("assume that DC1 is stable"), default thresholds. *)

val design_variants :
  ?count:int -> unit -> (string * Blockdiag.Diagram.t) list
(** A fleet of PSU design variants (default 6) for the batch-FMEA
    workload: variant [i] is named ["psu_v<i+1>"] and cycles through
    three electrical designs — the baseline, C2 doubled to 2e-5 F, and
    L1 halved to 5e-4 H.  Variants sharing a design have
    element-for-element equal netlists (only the diagram name differs),
    so a fleet of [count] variants needs only [min count 3] golden
    factorisations under the engine's structural sharing. *)

val fmea_via_injection : unit -> Fmea.Table.t
(** Step 4a on the circuit (Sec. V-A). *)

val fmea_via_ssam : unit -> Fmea.Table.t
(** Step 4a on the SSAM model (Sec. V-B). *)

val fmeda : Fmea.Table.t -> Fmea.Table.t
(** Step 4b: deploy ECC on MC1 (Table III) — Table IV. *)

(** {1 The Table I PLL example} *)

type pll_row = {
  pll_fm : string;
  pll_impact : string;  (** "DVF" / "IVF" *)
  pll_distribution : float;
  pll_sm : string option;
  pll_coverage : float;
}

val pll_component : Ssam.Architecture.component
(** Safety-critical PLL with the three failure modes of Table I and their
    mechanisms (time-out watchdog 70 %, none, dual-core lockstep 99 %). *)

val pll_fmeda : fit:float -> Fmea.Table.t
(** Table I as an FMEDA table, for a given PLL FIT. *)

val pll_rows : pll_row list
(** The literal Table I rows. *)
