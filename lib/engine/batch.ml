(* Batch-fleet analysis: N design variants through one warm pipeline,
   summarised per variant and for the fleet as a whole. *)

type fmea_entry = {
  b_label : string;
  b_system : string;
  b_rows : int;
  b_safety_related : int;
  b_spfm_pct : float;
  b_single_point_fit : float;
  b_table : Fmea.Table.t;
}

type fleet_summary = {
  f_entries : fmea_entry list;
  f_rows : int;
  f_safety_related : int;
  f_distinct_designs : int;
}

let distinct_designs variants =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (_, diagram) ->
      let conversion = Blockdiag.To_netlist.convert diagram in
      let fp =
        Fingerprint.to_hex
          (Fingerprint.netlist_structure conversion.Blockdiag.To_netlist.netlist)
      in
      Hashtbl.replace seen fp ())
    variants;
  Hashtbl.length seen

let entry_of (label, (table : Fmea.Table.t)) =
  let safety_related =
    List.length
      (List.filter
         (fun (r : Fmea.Table.row) -> r.Fmea.Table.safety_related)
         table.Fmea.Table.rows)
  in
  {
    b_label = label;
    b_system = table.Fmea.Table.system_name;
    b_rows = List.length table.Fmea.Table.rows;
    b_safety_related = safety_related;
    b_spfm_pct = Fmea.Metrics.spfm table;
    b_single_point_fit = Fmea.Metrics.residual_total_fit table;
    b_table = table;
  }

let summarise variants results =
  let entries = List.map entry_of results in
  {
    f_entries = entries;
    f_rows = List.fold_left (fun acc e -> acc + e.b_rows) 0 entries;
    f_safety_related =
      List.fold_left (fun acc e -> acc + e.b_safety_related) 0 entries;
    f_distinct_designs = distinct_designs variants;
  }

let run_fmea pipeline ~options variants reliability =
  summarise variants
    (Pipeline.injection_fmea_fleet pipeline ~options variants reliability)

let pp_summary ppf s =
  Format.fprintf ppf
    "batch FMEA fleet: %d variant(s), %d distinct circuit design(s)@\n"
    (List.length s.f_entries) s.f_distinct_designs;
  Format.fprintf ppf "  %-24s %-12s %5s %8s %9s %12s@\n" "variant" "system"
    "rows" "safety" "SPFM" "residual FIT";
  List.iter
    (fun e ->
      Format.fprintf ppf "  %-24s %-12s %5d %8d %8.2f%% %12.3f@\n" e.b_label
        e.b_system e.b_rows e.b_safety_related e.b_spfm_pct
        e.b_single_point_fit)
    s.f_entries;
  Format.fprintf ppf "  %-24s %-12s %5d %8d" "fleet total" "" s.f_rows
    s.f_safety_related

let to_csv s =
  let header =
    [
      "Variant";
      "System";
      "Rows";
      "Safety_Related";
      "SPFM_Pct";
      "Residual_FIT";
    ]
  in
  header
  :: List.map
       (fun e ->
         [
           e.b_label;
           e.b_system;
           string_of_int e.b_rows;
           string_of_int e.b_safety_related;
           Printf.sprintf "%.4f" e.b_spfm_pct;
           Printf.sprintf "%.6f" e.b_single_point_fit;
         ])
       s.f_entries
