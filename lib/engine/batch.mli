(** Batch-fleet analysis: N design variants through one warm pipeline.

    The S#-style design-exploration workload — six variants of one system
    analysed as a single campaign — is the shape the engine's sharing is
    built for: variants reuse golden factorisations by structural netlist
    fingerprint, memoised tables by content fingerprint, and all
    remaining injections run as one large scheduled pool batch
    ({!Pipeline.injection_fmea_fleet}).  This module adds the per-variant
    and fleet summaries the CLI and bench report. *)

type fmea_entry = {
  b_label : string;  (** caller-supplied variant label (e.g. file name) *)
  b_system : string;  (** analysed system name (diagram name) *)
  b_rows : int;
  b_safety_related : int;  (** rows classified safety-related *)
  b_spfm_pct : float;
  b_single_point_fit : float;  (** residual single-point FIT *)
  b_table : Fmea.Table.t;  (** the full per-variant table *)
}

type fleet_summary = {
  f_entries : fmea_entry list;  (** one per variant, in input order *)
  f_rows : int;
  f_safety_related : int;
  f_distinct_designs : int;
      (** distinct structural netlist fingerprints in the fleet — the
          number of golden factorisations a cold fleet needs *)
}

val run_fmea :
  Pipeline.t ->
  options:Fmea.Injection_fmea.options ->
  (string * Blockdiag.Diagram.t) list ->
  Reliability.Reliability_model.t ->
  fleet_summary
(** {!Pipeline.injection_fmea_fleet} plus summaries.  Each entry's table
    is bit-identical to a standalone {!Pipeline.injection_fmea} of that
    variant. *)

val summarise :
  (string * Blockdiag.Diagram.t) list ->
  (string * Fmea.Table.t) list ->
  fleet_summary
(** Summarise already-computed fleet results (the variants are only used
    to count distinct designs). *)

val pp_summary : Format.formatter -> fleet_summary -> unit
(** Per-variant rows plus a fleet-total line. *)

val to_csv : fleet_summary -> string list list
(** Machine-readable fleet summary (header + one row per variant). *)
