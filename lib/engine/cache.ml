type key = string (* hex digest: filename- and log-safe *)

let key ~stage ~version fp =
  Digest.to_hex
    (Digest.string
       (Printf.sprintf "%s|%d|%s" stage version (Fingerprint.to_hex fp)))

let key_id k = k

type entry = { payload : string; mutable tick : int }

type t = {
  capacity : int;
  table : (string, entry) Hashtbl.t;
  mutable clock : int;
  lock : Mutex.t;
  cache_dir : string option;
}

let create ?(capacity = 512) ?dir () =
  {
    capacity = Stdlib.max 1 capacity;
    table = Hashtbl.create 64;
    clock = 0;
    lock = Mutex.create ();
    cache_dir = dir;
  }

let dir t = t.cache_dir

let disk_file t k =
  Option.map (fun d -> Filename.concat d (k ^ ".bin")) t.cache_dir

(* ---------- disk entries ----------

   Format:  magic line, payload digest (hex) line, payload bytes.
   Any read failure — short file, bad magic, digest mismatch — is a
   miss; the offending file is deleted so it cannot fail again. *)

let magic = "same-cache/1"

let read_disk path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      let result =
        try
          let m = input_line ic in
          let digest = input_line ic in
          let len = in_channel_length ic - pos_in ic in
          if len < 0 then None
          else
            let payload = really_input_string ic len in
            if
              String.equal m magic
              && String.equal digest (Digest.to_hex (Digest.string payload))
            then Some payload
            else None
        with Sys_error _ | End_of_file -> None
      in
      close_in_noerr ic;
      if result = None then (try Sys.remove path with Sys_error _ -> ());
      result

let rec mkdir_p d =
  if not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let write_disk t path payload =
  try
    Option.iter mkdir_p t.cache_dir;
    let tmp = path ^ ".tmp" in
    let oc = open_out_bin tmp in
    output_string oc magic;
    output_char oc '\n';
    output_string oc (Digest.to_hex (Digest.string payload));
    output_char oc '\n';
    output_string oc payload;
    close_out oc;
    Sys.rename tmp path
  with Sys_error _ | Unix.Unix_error _ -> ()

(* ---------- memory tier ---------- *)

let touch t e =
  t.clock <- t.clock + 1;
  e.tick <- t.clock

let evict_oldest t =
  let victim =
    Hashtbl.fold
      (fun k e acc ->
        match acc with
        | Some (_, tick) when tick <= e.tick -> acc
        | _ -> Some (k, e.tick))
      t.table None
  in
  match victim with Some (k, _) -> Hashtbl.remove t.table k | None -> ()

let insert_memory t k payload =
  (match Hashtbl.find_opt t.table k with
  | Some e -> touch t e
  | None ->
      if Hashtbl.length t.table >= t.capacity then evict_oldest t;
      let e = { payload; tick = 0 } in
      touch t e;
      Hashtbl.add t.table k e);
  ()

let find t k =
  Mutex.lock t.lock;
  match Hashtbl.find_opt t.table k with
  | Some e ->
      touch t e;
      Mutex.unlock t.lock;
      Some (`Memory e.payload)
  | None -> (
      Mutex.unlock t.lock;
      match disk_file t k with
      | None -> None
      | Some path -> (
          match read_disk path with
          | None -> None
          | Some payload ->
              Mutex.lock t.lock;
              insert_memory t k payload;
              Mutex.unlock t.lock;
              Some (`Disk payload)))

let store t k payload =
  Mutex.lock t.lock;
  insert_memory t k payload;
  Mutex.unlock t.lock;
  match disk_file t k with
  | None -> ()
  | Some path -> write_disk t path payload

let memory_count t =
  Mutex.lock t.lock;
  let n = Hashtbl.length t.table in
  Mutex.unlock t.lock;
  n

let in_memory t k =
  Mutex.lock t.lock;
  let b = Hashtbl.mem t.table k in
  Mutex.unlock t.lock;
  b
