(** Typed artefact cache: in-memory LRU plus an optional on-disk store.

    Entries are addressed by a {!key} — a digest of (stage, version,
    input fingerprint) — and hold the [Marshal]ed artefact bytes.  The
    type discipline lives in the key: a stage name must always be paired
    with the same artefact type (and its [version] bumped whenever that
    type or the producing computation changes), which is exactly what
    {!Pipeline.memo} enforces for its callers.

    The on-disk store is {e corruption-tolerant by construction}: every
    entry file carries a digest of its payload, and a read that fails the
    digest check (truncated file, flipped bits, foreign content) or fails
    to parse behaves as a miss — the artefact is recomputed and the entry
    rewritten.  A cache directory can therefore be deleted, truncated or
    mangled at any time without affecting results, only timings. *)

type key

val key : stage:string -> version:int -> Fingerprint.t -> key
(** Versioned, namespaced cache address.  Bump [version] whenever the
    artefact representation or the computation behind a stage changes. *)

val key_id : key -> string
(** Hex rendering (the on-disk basename). *)

type t

val create : ?capacity:int -> ?dir:string -> unit -> t
(** [capacity] bounds the in-memory entry count (default 512, LRU
    eviction).  [dir] enables the on-disk store under that directory
    (created on first use); omit it for a memory-only cache. *)

val dir : t -> string option

val find : t -> key -> [ `Memory of string | `Disk of string ] option
(** The stored payload and where it was found.  A disk hit is promoted
    into the memory tier.  Corrupt disk entries are removed and reported
    as misses. *)

val store : t -> key -> string -> unit
(** Inserts into the memory tier and, when configured, writes the disk
    entry atomically (temp file + rename).  I/O failures are swallowed:
    a cache that cannot persist degrades to memory-only. *)

val memory_count : t -> int
(** Entries currently held in the memory tier. *)

val in_memory : t -> key -> bool

val disk_file : t -> key -> string option
(** Where the disk entry for [key] lives (whether or not it exists yet);
    [None] for memory-only caches. *)
