type t = string (* raw 16-byte MD5 digest *)

let equal = String.equal
let compare = String.compare
let to_hex = Digest.to_hex
let pp ppf t = Format.pp_print_string ppf (to_hex t)

(* Leaves and nodes are domain-separated by a one-byte tag so that
   [node [leaf s]] and [leaf s] can never collide. *)
let leaf s = Digest.string ("L" ^ s)
let node ts = Digest.string ("N" ^ String.concat "" ts)

let file path =
  match Digest.file path with
  | d -> node [ leaf "file"; d ]
  | exception Sys_error _ -> leaf ("file-absent:" ^ path)

(* ---------- domain fingerprints ----------

   Leaf content is the ppx_deriving [show] rendering of the value: it
   covers every field, is stable across runs, and costs nothing to keep
   in sync with the types. *)

let rec diagram (d : Blockdiag.Diagram.t) =
  node
    (leaf ("diagram:" ^ d.Blockdiag.Diagram.diagram_name)
     :: List.map
          (fun b -> leaf (Blockdiag.Diagram.show_block b))
          d.Blockdiag.Diagram.blocks
    @ List.map
        (fun c -> leaf (Blockdiag.Diagram.show_connection c))
        d.Blockdiag.Diagram.connections
    @ List.map diagram d.Blockdiag.Diagram.subsystems)

let rec ssam_component (c : Ssam.Architecture.component) =
  (* Shallow part: every field except the children, which hash as their
     own subtrees (the Merkle property the change-impact reuse needs). *)
  let shallow = { c with Ssam.Architecture.children = [] } in
  node
    (leaf (Ssam.Architecture.show_component shallow)
    :: List.map ssam_component c.Ssam.Architecture.children)

let ssam_package (p : Ssam.Architecture.package) =
  node
    (leaf (Ssam.Base.show_meta p.Ssam.Architecture.package_meta)
     :: List.map
          (function
            | Ssam.Architecture.Component c -> ssam_component c
            | Ssam.Architecture.Relationship r ->
                leaf (Ssam.Architecture.show_relationship r))
          p.Ssam.Architecture.elements
    @ List.map
        (fun i -> leaf (Ssam.Architecture.show_package_interface i))
        p.Ssam.Architecture.interfaces)

let netlist nl =
  node
    (leaf ("netlist:" ^ Circuit.Netlist.name nl)
    :: List.map
         (fun e -> leaf (Circuit.Element.show e))
         (Circuit.Netlist.elements nl))

(* Name-free view for golden-run identity: every observable of a golden
   run (factorisation, operating point, sensor readings, max element
   current) depends only on the element list, so two design variants
   whose extracted circuits are element-for-element equal can share one
   factorisation even when their diagrams are named differently. *)
let netlist_structure nl =
  node
    (leaf "netlist-structure"
    :: List.map
         (fun e -> leaf (Circuit.Element.show e))
         (Circuit.Netlist.elements nl))

let reliability_entry (e : Reliability.Reliability_model.entry) =
  leaf (Reliability.Reliability_model.show_entry e)

let reliability_model rm =
  let entries =
    List.sort
      (fun (a : Reliability.Reliability_model.entry) b ->
        String.compare a.Reliability.Reliability_model.component_type
          b.Reliability.Reliability_model.component_type)
      (Reliability.Reliability_model.entries rm)
  in
  node (leaf "reliability-model" :: List.map reliability_entry entries)

let sm_model sm =
  let mechanisms =
    List.sort
      (fun a b ->
        String.compare
          (Reliability.Sm_model.show_mechanism a)
          (Reliability.Sm_model.show_mechanism b))
      (Reliability.Sm_model.mechanisms sm)
  in
  node
    (leaf "sm-model"
    :: List.map (fun m -> leaf (Reliability.Sm_model.show_mechanism m)) mechanisms)

let fmea_table (t : Fmea.Table.t) =
  node
    (leaf ("fmea-table:" ^ t.Fmea.Table.system_name)
    :: List.map (fun r -> leaf (Fmea.Table.show_row r)) t.Fmea.Table.rows)

let injection_options (o : Fmea.Injection_fmea.options) =
  leaf
    (Printf.sprintf "injection-options:%h:%h:[%s]:%s:%s"
       o.Fmea.Injection_fmea.threshold_rel o.Fmea.Injection_fmea.threshold_abs
       (String.concat "," o.Fmea.Injection_fmea.exclude)
       (match o.Fmea.Injection_fmea.overcurrent_factor with
       | None -> "-"
       | Some f -> Printf.sprintf "%h" f)
       (match o.Fmea.Injection_fmea.monitored_sensors with
       | None -> "*"
       | Some ids -> "[" ^ String.concat "," ids ^ "]"))

let path_options (o : Fmea.Path_fmea.options) =
  leaf
    (Printf.sprintf "path-options:[%s]:%b"
       (String.concat "," o.Fmea.Path_fmea.exclude)
       o.Fmea.Path_fmea.recurse)

let artifact (a : Assurance.Sacm.artifact) =
  node
    [
      leaf ("artifact:" ^ a.Assurance.Sacm.artifact_location);
      leaf a.Assurance.Sacm.artifact_driver;
      leaf
        (match a.Assurance.Sacm.acceptance_query with
        | None -> "-"
        | Some q -> q);
      leaf a.Assurance.Sacm.artifact_description;
      file a.Assurance.Sacm.artifact_location;
    ]
