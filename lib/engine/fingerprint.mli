(** Stable content fingerprints over every analysis input.

    A fingerprint is a digest of a value's {e content} (never its physical
    identity), so two structurally equal inputs — across processes, across
    sessions — fingerprint identically, and any semantic edit moves the
    fingerprint.  Composite inputs are hashed Merkle-style: the diagram
    fingerprint is a {!node} over per-block and per-connection {!leaf}
    hashes, a SSAM component over its shallow fields plus its children's
    subtree hashes — so a component-level edit changes only the hashes on
    the path from that component to the root, and subtree hashes of
    untouched siblings can be compared (and their cached artefacts
    reused) without re-walking them.

    Fingerprints key the {!Cache}; equality of fingerprints is the
    {e only} evidence the engine accepts for reusing a cached artefact. *)

type t

val equal : t -> t -> bool

val compare : t -> t -> int

val to_hex : t -> string
(** 32 hex characters — filename- and log-safe. *)

val pp : Format.formatter -> t -> unit

(** {1 Merkle combinators} *)

val leaf : string -> t
(** Hash of one atomic input (a rendered value, an option string...). *)

val node : t list -> t
(** Hash of an ordered sequence of subtree hashes.  [node] and {!leaf}
    are domain-separated: [node [leaf s]] never collides with [leaf s]. *)

val file : string -> t
(** Content digest of a file on disk; missing/unreadable files hash to a
    distinguished "absent" leaf (stable until the file appears). *)

(** {1 Domain fingerprints} *)

val diagram : Blockdiag.Diagram.t -> t
(** Per-block and per-connection leaves, subsystems as subtrees. *)

val ssam_component : Ssam.Architecture.component -> t
(** Shallow fields (type, FIT, integrity, failure modes, mechanisms,
    functions, IO nodes, connections, meta) as one leaf; children as
    recursive subtrees. *)

val ssam_package : Ssam.Architecture.package -> t

val netlist : Circuit.Netlist.t -> t
(** One leaf per element, in netlist order — equal exactly when the
    extracted electrical circuit is equal. *)

val netlist_structure : Circuit.Netlist.t -> t
(** Like {!netlist} but ignoring the netlist {e name}: equal exactly when
    the element lists are equal.  This is the golden-run identity — a
    golden factorisation and everything derived from it depend only on
    the elements, so design variants with identical circuits share one
    golden solve under this fingerprint. *)

val reliability_entry : Reliability.Reliability_model.entry -> t

val reliability_model : Reliability.Reliability_model.t -> t
(** Entry subtrees sorted by component type: insertion order does not
    matter, only content. *)

val sm_model : Reliability.Sm_model.t -> t

val fmea_table : Fmea.Table.t -> t

val injection_options : Fmea.Injection_fmea.options -> t
(** Thresholds, exclusions, overcurrent factor and monitored sensors —
    every knob that changes a classification. *)

val path_options : Fmea.Path_fmea.options -> t

val artifact : Assurance.Sacm.artifact -> t
(** Location, driver, acceptance-query source {e and the current content
    of the cited file} ({!file}) — the fingerprint moves when the
    evidence moves, which is what triggers re-evaluating a claim. *)
