(* Physical-identity memo, bounded.  Within a session the engine keeps
   meeting the same in-memory values — the warm path re-fingerprints the
   previous diagram it analysed a moment ago, a fleet shares one
   reliability model across every variant — and the derived values
   (fingerprints, netlist conversions, SSAM views) are pure.  Keyed by
   [==]: content hashing is exactly the cost being avoided.  A miss on a
   structurally-equal-but-fresh value only costs the recompute, so the
   memo can never serve a stale answer. *)
module Ident_memo = struct
  type ('a, 'b) t = { mutable entries : ('a * 'b) list; cap : int }

  let create cap = { entries = []; cap }

  let rec truncate n = function
    | [] -> []
    | _ :: _ when n = 0 -> []
    | x :: rest -> x :: truncate (n - 1) rest

  let find_or ?(eq = fun a b -> a == b) m lock key compute =
    Mutex.lock lock;
    let hit = List.find_opt (fun (k, _) -> eq k key) m.entries in
    Mutex.unlock lock;
    match hit with
    | Some (_, v) -> v
    | None ->
        let v = compute () in
        Mutex.lock lock;
        m.entries <- truncate m.cap ((key, v) :: m.entries);
        Mutex.unlock lock;
        v
end

type t = {
  p_cache : Cache.t;
  p_stats : Stats.t;
  (* Live memos for values Marshal cannot carry (solutions hold solver
     state; evaluators are documented-immutable but stage-local).  Keyed
     by fingerprint hex; guarded by [lock]. *)
  golden_runs : (string, Fmea.Injection_fmea.prepared) Hashtbl.t;
  evaluators : (string, Optimize.Search.evaluator) Hashtbl.t;
  (* Identity memos for the per-call fixed costs of the FMEA entry
     points; these dominate a warm one-edit run at small system sizes. *)
  fp_diagrams : (Blockdiag.Diagram.t, Fingerprint.t) Ident_memo.t;
  fp_models : (Reliability.Reliability_model.t, Fingerprint.t) Ident_memo.t;
  conversions : (Blockdiag.Diagram.t, Blockdiag.To_netlist.result) Ident_memo.t;
  fp_netlists : (Blockdiag.Diagram.t, Fingerprint.t) Ident_memo.t;
  fp_structures : (Circuit.Netlist.t, Fingerprint.t) Ident_memo.t;
  ssam_views : (Blockdiag.Diagram.t * Reliability.Reliability_model.t, Ssam.Model.t) Ident_memo.t;
  lock : Mutex.t;
}

(* ---------- scheduler-calibration persistence ---------- *)

(* The [Exec.Cost] state (measured dispatch overhead + per-kernel EWMA
   estimates) is machine-specific, so it is keyed by the core count and
   stored as plain text, not marshalled. *)
let cost_state_key () =
  Cache.key ~stage:"exec.cost" ~version:1
    (Fingerprint.leaf
       (Printf.sprintf "cost-state/cores=%d"
          (Stdlib.max 1 (Domain.recommended_domain_count ()))))

let load_cost_state t =
  match Cache.find t.p_cache (cost_state_key ()) with
  | Some (`Memory s) | Some (`Disk s) -> Exec.Cost.import s
  | None -> false

let save_cost_state t =
  Cache.store t.p_cache (cost_state_key ()) (Exec.Cost.export ())

let create ?cache () =
  let t =
    {
      p_cache = (match cache with Some c -> c | None -> Cache.create ());
      p_stats = Stats.create ();
      golden_runs = Hashtbl.create 8;
      evaluators = Hashtbl.create 8;
      fp_diagrams = Ident_memo.create 8;
      fp_models = Ident_memo.create 8;
      conversions = Ident_memo.create 8;
      fp_netlists = Ident_memo.create 8;
      fp_structures = Ident_memo.create 8;
      ssam_views = Ident_memo.create 8;
      lock = Mutex.create ();
    }
  in
  (* Seed the scheduler from a previous session's calibration when the
     cache has one: a warm-started engine never re-measures dispatch
     overhead and decides correctly from its first batch. *)
  ignore (load_cost_state t);
  t

let cache t = t.p_cache
let stats t = t.p_stats
let snapshot t = Stats.snapshot t.p_stats

(* ---------- generic memoisation ---------- *)

(* The payload digest was already verified by [Cache.find]; unmarshal
   failure guards against a stage/type confusion bug rather than disk
   rot. *)
let unmarshal payload = try Some (Marshal.from_string payload 0) with _ -> None

(* Find-only half of [memo] (hit counters included), so the fleet driver
   can separate its cached variants from its pending ones before
   batching the pending work. *)
let cache_find t k =
  match Cache.find t.p_cache k with
  | Some (`Memory payload) -> (
      match unmarshal payload with
      | Some v ->
          Stats.incr_mem_hit t.p_stats;
          Some v
      | None -> None)
  | Some (`Disk payload) -> (
      match unmarshal payload with
      | Some v ->
          Stats.incr_disk_hit t.p_stats;
          Some v
      | None -> None)
  | None -> None

let cache_store t k v =
  try
    Cache.store t.p_cache k (Marshal.to_string v []);
    Stats.incr_store t.p_stats
  with _ -> ()

let memo t ~stage ?(version = 1) ~key f =
  let k = Cache.key ~stage ~version key in
  match cache_find t k with
  | Some v -> v
  | None ->
      Stats.incr_miss t.p_stats;
      let v = f () in
      cache_store t k v;
      v

let live_memo t table key compute =
  Mutex.lock t.lock;
  match Hashtbl.find_opt table key with
  | Some v ->
      Mutex.unlock t.lock;
      v
  | None ->
      Mutex.unlock t.lock;
      let v = compute () in
      Mutex.lock t.lock;
      (* A racing computation may have beaten us; last write wins — the
         values are content-equal by construction. *)
      Hashtbl.replace table key v;
      Mutex.unlock t.lock;
      v

(* ---------- incremental injection FMEA ---------- *)

type previous = {
  prev_diagram : Blockdiag.Diagram.t;
  prev_reliability : Reliability.Reliability_model.t;
  prev_table : Fmea.Table.t;
}

(* The SSAM view [Ssam.Diff] compares: the transformed diagram with the
   reliability model aggregated in, so FIT/failure-mode edits made
   through the reliability model surface as Modified components. *)
let ssam_model_of diagram reliability =
  let pkg =
    Blockdiag.Transform.aggregate_reliability reliability
      (Blockdiag.Transform.to_ssam diagram)
  in
  Ssam.Model.create ~component_packages:[ pkg ]
    ~meta:
      (Ssam.Base.meta ("engine:" ^ diagram.Blockdiag.Diagram.diagram_name))
    ()

(* Memoised-by-identity accessors.  A warm engine fills these during the
   previous run, so the one-edit path only pays for what actually
   changed; a cold engine pays every fingerprint from scratch — which is
   what makes warm strictly cheaper than cold. *)
let fp_diagram t d =
  Ident_memo.find_or t.fp_diagrams t.lock d (fun () -> Fingerprint.diagram d)

let fp_model t rm =
  Ident_memo.find_or t.fp_models t.lock rm (fun () ->
      Fingerprint.reliability_model rm)

let convert t d =
  Ident_memo.find_or t.conversions t.lock d (fun () ->
      Blockdiag.To_netlist.convert d)

let fp_netlist_of t d netlist =
  Ident_memo.find_or t.fp_netlists t.lock d (fun () ->
      Fingerprint.netlist netlist)

(* The structural fingerprint pretty-prints every element; keyed by the
   netlist value itself, which [convert]'s identity memo keeps stable
   across a session's edits. *)
let fp_structure_of t netlist =
  Ident_memo.find_or t.fp_structures t.lock netlist (fun () ->
      Fingerprint.netlist_structure netlist)

let ssam_view t d rm =
  Ident_memo.find_or
    ~eq:(fun (d1, r1) (d2, r2) -> d1 == d2 && r1 == r2)
    t.ssam_views t.lock (d, rm)
    (fun () -> ssam_model_of d rm)

(* Golden runs are keyed by the {e structural} netlist fingerprint (name
   ignored): every observable of a golden run depends only on the
   element list and the options, so design variants with identical
   circuits — a fleet's unmodified baseline copies — share one
   factorisation. *)
let golden_run t ~options ~fp_structure ~fp_options netlist =
  let key = Fingerprint.to_hex (Fingerprint.node [ fp_structure; fp_options ]) in
  live_memo t t.golden_runs key (fun () ->
      let p = Fmea.Injection_fmea.prepare ~options netlist in
      Stats.incr_golden_solve t.p_stats;
      p)

(* Row-reuse hook: reuse a previous row verbatim only when the reuse is
   provably bit-identical to recomputation —

   1. the netlist fingerprint is unchanged (so the golden run and every
      faulted solve are unchanged),
   2. the reliability entry for the row's component type is unchanged
      (so FIT, distribution and fault models are unchanged),
   3. the component is NOT in the [Ssam.Diff.impacted_components]
      closure (the changed components and everything downstream are
      re-classified, per the methodology's change-impact contract).

   Returns None (no reuse at all) when the netlist moved: an electrical
   edit shifts the golden operating point, which can change any row's
   deviation text. *)
let reuse_hook t ~previous:prev ~diagram ~reliability ~element_types
    ~fp_netlist =
  let prev_conversion = convert t prev.prev_diagram in
  let prev_netlist = prev_conversion.Blockdiag.To_netlist.netlist in
  if
    not
      (Fingerprint.equal
         (fp_netlist_of t prev.prev_diagram prev_netlist)
         fp_netlist)
  then None
  else begin
    let impacted = Hashtbl.create 32 in
    (* When the new diagram is the very value analysed last time — the
       warm incremental-session case, where only reliability entries
       move between edits — the SSAM diff cannot flag anything the
       per-type entry check below does not: with an identical structure,
       a component's aggregated view changes exactly when its type's
       reliability entry does.  Skip the two view builds and the model
       diff; they dominate the warm one-edit cost otherwise. *)
    if prev.prev_diagram != diagram then begin
      let impact =
        Ssam.Diff.analyse
          ~old_model:(ssam_view t prev.prev_diagram prev.prev_reliability)
          ~new_model:(ssam_view t diagram reliability)
      in
      List.iter
        (fun id -> Hashtbl.replace impacted id ())
        impact.Ssam.Diff.impacted_components
    end;
    (* Netlist element ids of subsystem blocks are "sub/block"-qualified;
       SSAM component ids are not.  Check both spellings. *)
    let is_impacted id =
      Hashtbl.mem impacted id
      ||
      match String.rindex_opt id '/' with
      | None -> false
      | Some i ->
          Hashtbl.mem impacted
            (String.sub id (i + 1) (String.length id - i - 1))
    in
    (* Resolved component type per element id — the same fallback rule as
       [Injection_fmea.analyse]. *)
    let types = Hashtbl.create 64 in
    List.iter
      (fun (e : Circuit.Element.t) ->
        let id = e.Circuit.Element.id in
        let ty =
          match List.assoc_opt id element_types with
          | Some ty -> ty
          | None -> Circuit.Element.kind_name e.Circuit.Element.kind
        in
        Hashtbl.replace types id ty)
      (Circuit.Netlist.elements prev_netlist);
    (* Component types repeat across rows; compare each type once per
       hook instead of twice per row.  Structural entry equality is
       strictly stronger than fingerprint equality, so it can only ever
       reuse less, never wrongly more. *)
    let entry_verdicts = Hashtbl.create 16 in
    let entry_unchanged ty =
      match Hashtbl.find_opt entry_verdicts ty with
      | Some v -> v
      | None ->
          let v =
            match
              ( Reliability.Reliability_model.find prev.prev_reliability ty,
                Reliability.Reliability_model.find reliability ty )
            with
            | None, None -> true
            | Some a, Some b -> Reliability.Reliability_model.equal_entry a b
            | _ -> false
          in
          Hashtbl.add entry_verdicts ty v;
          v
    in
    let prev_rows = Hashtbl.create 64 in
    List.iter
      (fun (r : Fmea.Table.row) ->
        let k = r.Fmea.Table.component ^ "\x00" ^ r.Fmea.Table.failure_mode in
        if not (Hashtbl.mem prev_rows k) then Hashtbl.add prev_rows k r)
      prev.prev_table.Fmea.Table.rows;
    Some
      (fun ~component ~failure_mode ->
        match Hashtbl.find_opt types component with
        | None -> None
        | Some ty ->
            if is_impacted component || not (entry_unchanged ty) then None
            else
              match
                Hashtbl.find_opt prev_rows (component ^ "\x00" ^ failure_mode)
              with
              | None -> None
              | Some row ->
                  Stats.incr_row_reused t.p_stats;
                  Some row)
  end

let injection_fmea t ?previous ~options diagram reliability =
  let conversion = convert t diagram in
  let netlist = conversion.Blockdiag.To_netlist.netlist in
  let element_types = conversion.Blockdiag.To_netlist.block_types in
  let fp_netlist = fp_netlist_of t diagram netlist in
  let fp_options = Fingerprint.injection_options options in
  let key =
    Fingerprint.node
      [ fp_diagram t diagram; fp_model t reliability; fp_options ]
  in
  memo t ~stage:"fmea.injection" ~key (fun () ->
      let prepared =
        golden_run t ~options
          ~fp_structure:(fp_structure_of t netlist)
          ~fp_options netlist
      in
      let reuse =
        match previous with
        | None -> None
        | Some prev ->
            reuse_hook t ~previous:prev ~diagram ~reliability ~element_types
              ~fp_netlist
      in
      let on_classified () = Stats.incr_row_classified t.p_stats in
      let on_solved = function
        | `Reused | `Rank_update _ -> Stats.incr_rank_update t.p_stats
        | `Refactor -> Stats.incr_refactorisation t.p_stats
      in
      Fmea.Injection_fmea.analyse ~options ~element_types ~prepared ?reuse
        ~on_classified ~on_solved netlist reliability)

(* ---------- batch-fleet injection FMEA ---------- *)

let rec take_rows k rows =
  if k = 0 then ([], rows)
  else
    match rows with
    | [] -> invalid_arg "Pipeline: fleet row count mismatch"
    | r :: rest ->
        let a, b = take_rows (k - 1) rest in
        (r :: a, b)

let injection_fmea_fleet t ~options variants reliability =
  let fp_options = Fingerprint.injection_options options in
  (* The reliability model is shared by the whole fleet: fingerprint it
     once, not once per variant. *)
  let fp_reliability = fp_model t reliability in
  (* Resolve every variant against the content-addressed cache first:
     hits are served as in [injection_fmea]; only the misses join the
     flattened batch. *)
  let resolved =
    List.map
      (fun (label, diagram) ->
        let conversion = convert t diagram in
        let netlist = conversion.Blockdiag.To_netlist.netlist in
        let element_types = conversion.Blockdiag.To_netlist.block_types in
        let key =
          Cache.key ~stage:"fmea.injection" ~version:1
            (Fingerprint.node
               [ fp_diagram t diagram; fp_reliability; fp_options ])
        in
        (label, netlist, element_types, key, cache_find t key))
      variants
  in
  (* One golden run per distinct circuit structure: baseline copies in a
     fleet share a factorisation, so N variants of D distinct designs
     cost D golden solves, not N.  And one row batch per distinct cache
     key: duplicate variants (a fleet's unmodified baseline copies)
     classify their rows once and share the table. *)
  let pending_keys = Hashtbl.create 8 in
  let pending =
    List.filter_map
      (fun (label, netlist, element_types, key, cached) ->
        match cached with
        | Some _ -> None
        | None when Hashtbl.mem pending_keys (Cache.key_id key) ->
            Stats.incr_mem_hit t.p_stats;
            None
        | None ->
            Hashtbl.replace pending_keys (Cache.key_id key) ();
            Stats.incr_miss t.p_stats;
            let prepared =
              golden_run t ~options
                ~fp_structure:(fp_structure_of t netlist)
                ~fp_options netlist
            in
            let injections =
              Fmea.Injection_fmea.enumerate ~options ~element_types netlist
                reliability
            in
            Some (label, netlist, key, prepared, injections))
      resolved
  in
  let on_classified () = Stats.incr_row_classified t.p_stats in
  let on_solved = function
    | `Reused | `Rank_update _ -> Stats.incr_rank_update t.p_stats
    | `Refactor -> Stats.incr_refactorisation t.p_stats
  in
  (* Flatten every pending variant's injections into ONE task list: the
     pool sees a single large batch instead of N small barriers, and the
     cost model decides once about a workload N times the size. *)
  let flat =
    List.concat_map
      (fun (_, _, _, prepared, injections) ->
        List.map (fun inj -> (prepared, inj)) injections)
      pending
  in
  let rows =
    Exec.scheduled_map ~key:Fmea.Injection_fmea.cost_key
      (fun (prepared, inj) ->
        Fmea.Injection_fmea.injection_row ~on_classified ~on_solved prepared
          inj)
      flat
  in
  (* Reassemble the flat rows into per-variant tables (flattening
     preserved both variant order and in-variant row order), store each
     table under its own cache key, and serve the results in input
     order. *)
  let computed = Hashtbl.create 8 in
  let leftover =
    List.fold_left
      (fun rows (_, netlist, key, _, injections) ->
        let taken, rest = take_rows (List.length injections) rows in
        let table =
          { Fmea.Table.system_name = Circuit.Netlist.name netlist; rows = taken }
        in
        cache_store t key table;
        Hashtbl.replace computed (Cache.key_id key) table;
        rest)
      rows pending
  in
  assert (leftover = []);
  List.map
    (fun (label, _, _, key, cached) ->
      match cached with
      | Some table -> (label, table)
      | None -> (label, Hashtbl.find computed (Cache.key_id key)))
    resolved

(* ---------- path FMEA ---------- *)

let path_fmea t ~options root =
  let key =
    Fingerprint.node
      [ Fingerprint.ssam_component root; Fingerprint.path_options options ]
  in
  memo t ~stage:"fmea.path" ~key (fun () ->
      Fmea.Path_fmea.analyse ~options root)

let path_fmea_package t ~options pkg =
  Fmea.Path_fmea.analyse_package_with
    ~analyse_component:(fun c -> path_fmea t ~options c)
    pkg

(* ---------- Step 4b search ---------- *)

let evaluator_for t table =
  let key = Fingerprint.to_hex (Fingerprint.fmea_table table) in
  live_memo t t.evaluators key (fun () -> Optimize.Search.make_evaluator table)

let optimise t ?(component_types = []) ~target table sm_model =
  let key =
    Fingerprint.node
      [
        Fingerprint.fmea_table table;
        Fingerprint.sm_model sm_model;
        Fingerprint.leaf (Ssam.Requirement.integrity_level_to_string target);
        Fingerprint.leaf
          (String.concat ";"
             (List.map (fun (id, ty) -> id ^ "=" ^ ty) component_types));
      ]
  in
  memo t ~stage:"optimize.search" ~key (fun () ->
      let evaluator = evaluator_for t table in
      Optimize.Search.optimise ~evaluator ~component_types ~target table
        sm_model)

(* ---------- assurance ---------- *)

let evaluate_case t case =
  Assurance.Eval.evaluate_with
    (fun a ->
      memo t ~stage:"assurance.claim" ~key:(Fingerprint.artifact a) (fun () ->
          Assurance.Eval.evaluate_artifact a))
    case
