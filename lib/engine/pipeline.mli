(** The staged incremental analysis pipeline.

    One pipeline value owns a {!Cache}, a {!Stats} block and the live
    (in-memory-only) memos the marshalled cache cannot hold (golden
    circuit runs, SPFM evaluators).  Every analysis entry point routed
    through it behaves exactly like its cold counterpart — cached results
    are bit-identical, a property the test suite checks with the same
    discipline as the [SAME_JOBS] determinism tests — but re-running an
    analysis whose input fingerprints are unchanged costs a lookup, and
    re-running after a {e component-level} edit costs only the impacted
    subset:

    - {!injection_fmea} caches whole tables by input fingerprint, caches
      the golden run by (netlist, options) fingerprint, and — given the
      {!previous} iteration's artefacts — re-classifies only rows whose
      component falls in the [Ssam.Diff.impacted_components] closure
      (or whose reliability entry moved); every other row is taken
      verbatim from the previous table.
    - {!path_fmea} / {!path_fmea_package} reuse the path sets of
      untouched components/packages via their subtree fingerprints.
    - {!optimise} reuses the per-row λ-share evaluator
      ({!Optimize.Search.evaluate_with}) across searches over the same
      table, and caches search results by (table, catalogue, target).
    - {!evaluate_case} re-evaluates only claims whose cited artefact
      fingerprints moved ({!Fingerprint.artifact} covers the evidence
      file's content).

    Thread-safety: a pipeline may be shared; its memos are mutex-guarded
    and its stats atomic. *)

type t

val create : ?cache:Cache.t -> unit -> t
(** A fresh pipeline; [cache] defaults to a memory-only {!Cache}. *)

val cache : t -> Cache.t

val stats : t -> Stats.t

val snapshot : t -> Stats.snapshot

(** {1 Generic memoisation} *)

val memo :
  t -> stage:string -> ?version:int -> key:Fingerprint.t -> (unit -> 'a) -> 'a
(** [memo t ~stage ~key f] returns the cached artefact for
    [(stage, version, key)] or computes, stores and returns [f ()].

    Artefacts cross the cache as [Marshal] bytes, so ['a] must be
    marshallable (no closures, no abstract handles) and — the {e typed
    cache} discipline — a given [stage] string must always be used at a
    single type, with [version] (default 1) bumped on any change to that
    type or to [f]'s semantics.  Corrupt or unreadable entries fall back
    to recomputation. *)

(** {1 Incremental FMEA} *)

type previous = {
  prev_diagram : Blockdiag.Diagram.t;
  prev_reliability : Reliability.Reliability_model.t;
  prev_table : Fmea.Table.t;
      (** must be the analysis result of [prev_diagram]/[prev_reliability]
          under the {e same} options as the new run *)
}
(** The artefacts of the previous DECISIVE iteration, enabling
    diff-driven row reuse. *)

val injection_fmea :
  t ->
  ?previous:previous ->
  options:Fmea.Injection_fmea.options ->
  Blockdiag.Diagram.t ->
  Reliability.Reliability_model.t ->
  Fmea.Table.t
(** Step 4a by fault injection, incrementally.  Row reuse from
    [previous] requires all of: the extracted netlist fingerprint is
    unchanged (any electrical edit invalidates every classification —
    the golden run itself moved), the row's component is {e not} in the
    [Ssam.Diff.impacted_components] closure of the model diff, and the
    reliability entry for its component type is unchanged.  Raises
    {!Fmea.Injection_fmea.Golden_run_failed} like the cold path. *)

val injection_fmea_fleet :
  t ->
  options:Fmea.Injection_fmea.options ->
  (string * Blockdiag.Diagram.t) list ->
  Reliability.Reliability_model.t ->
  (string * Fmea.Table.t) list
(** Batch-fleet FMEA: analyse N labelled design variants with one warm
    engine.  Per-variant results (returned in input order, each
    bit-identical to {!injection_fmea} on that variant alone) come from
    the content-addressed cache when available; the remaining variants
    share golden factorisations by {e structural} netlist fingerprint —
    variants with element-for-element equal circuits cost one golden
    solve between them — and all of their injections are flattened into
    a single scheduled pool batch instead of N small barriers.  Each
    computed table is stored under the same cache key
    {!injection_fmea} uses, so fleet and single-variant runs feed each
    other. *)

(** {1 Scheduler-calibration persistence} *)

val load_cost_state : t -> bool
(** Restore the {!Exec.Cost} state (measured dispatch overhead +
    per-kernel cost estimates) persisted in this pipeline's cache, if
    any; [true] on success.  Runs automatically in {!create}. *)

val save_cost_state : t -> unit
(** Persist the current {!Exec.Cost} state through the cache (keyed by
    core count — calibration is machine-specific), so the next session
    starts with a calibrated scheduler. *)

val path_fmea :
  t -> options:Fmea.Path_fmea.options -> Ssam.Architecture.component ->
  Fmea.Table.t
(** Algorithm 1 on one composite, cached by its subtree fingerprint. *)

val path_fmea_package :
  t -> options:Fmea.Path_fmea.options -> Ssam.Architecture.package ->
  Fmea.Table.t
(** {!Fmea.Path_fmea.analyse_package} with each top-level composite
    cached independently — editing one package component re-runs only
    that package's path enumeration. *)

val optimise :
  t ->
  ?component_types:(string * string) list ->
  target:Ssam.Requirement.integrity_level ->
  Fmea.Table.t ->
  Reliability.Sm_model.t ->
  Optimize.Search.candidate option * Optimize.Search.candidate list
(** Step 4b search, cached; the λ-share evaluator is built once per
    table fingerprint and shared across searches. *)

val evaluate_case : t -> Assurance.Sacm.case -> Assurance.Eval.report
(** Assurance-case evaluation with per-claim memoisation: a solution's
    artifact is re-evaluated only when its fingerprint (query, driver,
    location, file content) moved. *)
