type t = {
  mem_hits : int Atomic.t;
  disk_hits : int Atomic.t;
  misses : int Atomic.t;
  stores : int Atomic.t;
  golden_solves : int Atomic.t;
  rows_classified : int Atomic.t;
  rows_reused : int Atomic.t;
  rank_updates : int Atomic.t;
  refactorisations : int Atomic.t;
}

let create () =
  {
    mem_hits = Atomic.make 0;
    disk_hits = Atomic.make 0;
    misses = Atomic.make 0;
    stores = Atomic.make 0;
    golden_solves = Atomic.make 0;
    rows_classified = Atomic.make 0;
    rows_reused = Atomic.make 0;
    rank_updates = Atomic.make 0;
    refactorisations = Atomic.make 0;
  }

let reset t =
  Atomic.set t.mem_hits 0;
  Atomic.set t.disk_hits 0;
  Atomic.set t.misses 0;
  Atomic.set t.stores 0;
  Atomic.set t.golden_solves 0;
  Atomic.set t.rows_classified 0;
  Atomic.set t.rows_reused 0;
  Atomic.set t.rank_updates 0;
  Atomic.set t.refactorisations 0

let incr_mem_hit t = Atomic.incr t.mem_hits
let incr_disk_hit t = Atomic.incr t.disk_hits
let incr_miss t = Atomic.incr t.misses
let incr_store t = Atomic.incr t.stores
let incr_golden_solve t = Atomic.incr t.golden_solves
let incr_row_classified t = Atomic.incr t.rows_classified
let incr_row_reused t = Atomic.incr t.rows_reused
let incr_rank_update t = Atomic.incr t.rank_updates
let incr_refactorisation t = Atomic.incr t.refactorisations

type snapshot = {
  mem_hits : int;
  disk_hits : int;
  misses : int;
  stores : int;
  golden_solves : int;
  rows_classified : int;
  rows_reused : int;
  rank_updates : int;
  refactorisations : int;
  sched_sequential : int;
  sched_parallel : int;
}

let snapshot (t : t) =
  (* The scheduler counters live in [Exec.Cost] (they are process-wide:
     one cost model serves every pipeline), read here so one snapshot
     carries the whole picture. *)
  let sched_sequential, sched_parallel = Exec.Cost.counters () in
  {
    mem_hits = Atomic.get t.mem_hits;
    disk_hits = Atomic.get t.disk_hits;
    misses = Atomic.get t.misses;
    stores = Atomic.get t.stores;
    golden_solves = Atomic.get t.golden_solves;
    rows_classified = Atomic.get t.rows_classified;
    rows_reused = Atomic.get t.rows_reused;
    rank_updates = Atomic.get t.rank_updates;
    refactorisations = Atomic.get t.refactorisations;
    sched_sequential;
    sched_parallel;
  }

let hits s = s.mem_hits + s.disk_hits

let solves_performed s = s.golden_solves + s.rows_classified

let pp ppf s =
  Format.fprintf ppf
    "engine: %d cache hit%s (%d memory, %d disk), %d miss%s; %d solve%s \
     performed (%d golden + %d injections, %d by rank update, %d \
     refactorised); %d row%s reused"
    (hits s)
    (if hits s = 1 then "" else "s")
    s.mem_hits s.disk_hits s.misses
    (if s.misses = 1 then "" else "es")
    (solves_performed s)
    (if solves_performed s = 1 then "" else "s")
    s.golden_solves s.rows_classified s.rank_updates s.refactorisations
    s.rows_reused
    (if s.rows_reused = 1 then "" else "s");
  Format.fprintf ppf "; scheduler: %d parallel / %d sequential batch%s"
    s.sched_parallel s.sched_sequential
    (if s.sched_parallel + s.sched_sequential = 1 then "" else "es")
