(** Pipeline instrumentation: hits, misses, solves performed, rows
    reused.

    Counters are atomic because the injection kernel classifies rows on
    the {!Exec} domain pool — hooks fire from worker domains.  The
    {e values} are nevertheless deterministic for a given input: what is
    reused is decided by fingerprints, not by scheduling. *)

type t

val create : unit -> t

val reset : t -> unit

(** Counter access for the pipeline (callers normally only read
    {!snapshot}). *)

val incr_mem_hit : t -> unit
val incr_disk_hit : t -> unit
val incr_miss : t -> unit
val incr_store : t -> unit
val incr_golden_solve : t -> unit
val incr_row_classified : t -> unit
val incr_row_reused : t -> unit
val incr_rank_update : t -> unit
val incr_refactorisation : t -> unit

type snapshot = {
  mem_hits : int;  (** artefacts served from the memory tier *)
  disk_hits : int;  (** artefacts served from the disk tier *)
  misses : int;  (** artefacts that had to be computed *)
  stores : int;  (** artefacts written to the cache *)
  golden_solves : int;  (** golden (un-faulted) circuit solves *)
  rows_classified : int;  (** FMEA rows classified by fault injection *)
  rows_reused : int;  (** FMEA rows taken verbatim from a previous table *)
  rank_updates : int;
      (** faulted solves served by a low-rank (SMW) re-solve against the
          golden factors — including zero-delta reuses of the golden
          solution *)
  refactorisations : int;
      (** faulted solves that assembled and factorised a system from
          scratch *)
  sched_sequential : int;
      (** pool batches the adaptive scheduler ran sequentially
          (process-wide, from {!Exec.Cost.counters}) *)
  sched_parallel : int;
      (** pool batches the adaptive scheduler dispatched to the domain
          pool (process-wide, from {!Exec.Cost.counters}) *)
}

val snapshot : t -> snapshot

val hits : snapshot -> int
(** [mem_hits + disk_hits]. *)

val solves_performed : snapshot -> int
(** Circuit solves this pipeline actually ran:
    [golden_solves + rows_classified] (one faulted solve per classified
    row). *)

val pp : Format.formatter -> snapshot -> unit
(** One-line summary, the [--explain] output. *)
