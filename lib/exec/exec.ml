(* Fixed-size domain pool with deterministic in-order collection.

   One batch runs at a time; workers and the submitting domain race on an
   atomic index cursor, so distribution is dynamic (good load balance for
   uneven tasks like Newton solves) while the result slot of each task is
   fixed by its index (determinism). *)

(* ---------- job-count policy ---------- *)

let jobs_override = ref None

(* Warn once per distinct malformed value, not per call: [default_jobs]
   runs on every parallel batch. *)
let warned_jobs = ref None

let env_jobs () =
  match Sys.getenv_opt "SAME_JOBS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some n
      | Some _ | None ->
          if !warned_jobs <> Some s then begin
            warned_jobs := Some s;
            Logs.warn (fun m ->
                m
                  "ignoring malformed SAME_JOBS=%S (expected a positive \
                   integer); using %d domain(s)"
                  s
                  (Stdlib.max 1 (Domain.recommended_domain_count ())))
          end;
          None)

(* Per-thread job budgets: the analysis daemon multiplexes many
   concurrent requests onto the one shared pool, and caps each request's
   batches so a heavy assessment cannot starve cheap incremental diffs.
   Keyed by the calling systhread (each domain's root is a distinct
   thread, so budgets never leak across domains), consulted by
   [default_jobs] under every batch submission. *)

let budgets : (int, int) Hashtbl.t = Hashtbl.create 8
let budgets_lock = Mutex.create ()

let jobs_budget () =
  Mutex.lock budgets_lock;
  let b = Hashtbl.find_opt budgets (Thread.id (Thread.self ())) in
  Mutex.unlock budgets_lock;
  b

let with_jobs n f =
  let n = Stdlib.max 1 n in
  let tid = Thread.id (Thread.self ()) in
  Mutex.lock budgets_lock;
  let prev = Hashtbl.find_opt budgets tid in
  Hashtbl.replace budgets tid n;
  Mutex.unlock budgets_lock;
  let restore () =
    Mutex.lock budgets_lock;
    (match prev with
    | Some p -> Hashtbl.replace budgets tid p
    | None -> Hashtbl.remove budgets tid);
    Mutex.unlock budgets_lock
  in
  match f () with
  | v ->
      restore ();
      v
  | exception e ->
      restore ();
      raise e

let default_jobs () =
  let base =
    match !jobs_override with
    | Some n -> n
    | None -> (
        match env_jobs () with
        | Some n -> n
        | None -> Stdlib.max 1 (Domain.recommended_domain_count ()))
  in
  match jobs_budget () with Some b -> Stdlib.min b base | None -> base

let set_default_jobs n = jobs_override := Some (Stdlib.max 1 n)

(* ---------- the pool ---------- *)

module Pool = struct
  type batch = {
    total : int;
    task : int -> unit;
    next : int Atomic.t;
    completed : int Atomic.t;
  }

  type t = {
    pool_jobs : int;
    lock : Mutex.t;
    work_available : Condition.t;
    batch_finished : Condition.t;
    mutable current : batch option;
    mutable stop : bool;
    mutable workers : unit Domain.t list;
  }

  let jobs t = t.pool_jobs

  (* True while the calling domain is executing a pool task: nested
     batches then run inline instead of waiting on themselves. *)
  let in_task = Domain.DLS.new_key (fun () -> ref false)

  let drain batch =
    let flag = Domain.DLS.get in_task in
    let rec loop () =
      let i = Atomic.fetch_and_add batch.next 1 in
      if i < batch.total then begin
        flag := true;
        (try batch.task i
         with e ->
           flag := false;
           ignore (Atomic.fetch_and_add batch.completed 1);
           raise e);
        flag := false;
        ignore (Atomic.fetch_and_add batch.completed 1);
        loop ()
      end
    in
    loop ()

  let worker_loop t =
    let rec loop () =
      Mutex.lock t.lock;
      let rec await () =
        if t.stop then begin
          Mutex.unlock t.lock;
          `Stop
        end
        else
          match t.current with
          | Some b when Atomic.get b.next < b.total ->
              Mutex.unlock t.lock;
              `Work b
          | Some _ | None ->
              Condition.wait t.work_available t.lock;
              await ()
      in
      match await () with
      | `Stop -> ()
      | `Work b ->
          (* [task] is documented not to raise; a violation must not kill
             the worker domain or wedge the submitter. *)
          (try drain b with _ -> ());
          (* The last finisher wakes the submitter. *)
          Mutex.lock t.lock;
          if Atomic.get b.completed >= b.total then
            Condition.broadcast t.batch_finished;
          Mutex.unlock t.lock;
          loop ()
    in
    loop ()

  let create ~jobs =
    let jobs = Stdlib.max 1 jobs in
    let t =
      {
        pool_jobs = jobs;
        lock = Mutex.create ();
        work_available = Condition.create ();
        batch_finished = Condition.create ();
        current = None;
        stop = false;
        workers = [];
      }
    in
    t.workers <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
    t

  let run_inline n task =
    for i = 0 to n - 1 do
      task i
    done

  let run t n task =
    if n <= 0 then ()
    else if t.pool_jobs <= 1 || n = 1 || !(Domain.DLS.get in_task) then
      run_inline n task
    else begin
      let batch =
        { total = n; task; next = Atomic.make 0; completed = Atomic.make 0 }
      in
      Mutex.lock t.lock;
      if t.current <> None || t.stop then begin
        (* Another domain owns the pool right now; don't queue behind it. *)
        Mutex.unlock t.lock;
        run_inline n task
      end
      else begin
        t.current <- Some batch;
        Condition.broadcast t.work_available;
        Mutex.unlock t.lock;
        (* The submitter is a full member of the crew.  Always reclaim
           the pool, even if a task breaks its no-raise contract. *)
        Fun.protect
          ~finally:(fun () ->
            Mutex.lock t.lock;
            while Atomic.get batch.completed < batch.total do
              Condition.wait t.batch_finished t.lock
            done;
            t.current <- None;
            Mutex.unlock t.lock)
          (fun () -> drain batch)
      end
    end

  let shutdown t =
    Mutex.lock t.lock;
    t.stop <- true;
    Condition.broadcast t.work_available;
    Mutex.unlock t.lock;
    List.iter Domain.join t.workers;
    t.workers <- []
end

(* ---------- the shared global pool ---------- *)

(* Lazily created at the first parallel call; recreated when the job
   count changes (set_default_jobs / SAME_JOBS differ from its size).
   Guarded by a mutex: concurrent resize would leak domains. *)

let global_pool : Pool.t option ref = ref None

let global_lock = Mutex.create ()

let obtain_pool jobs =
  Mutex.lock global_lock;
  let pool =
    match !global_pool with
    | Some p when Pool.jobs p = jobs -> p
    | existing ->
        (* Resize: detach the old pool first so a concurrent caller can't
           also try to retire it, then shut it down unlocked. *)
        global_pool := None;
        Option.iter
          (fun p ->
            Mutex.unlock global_lock;
            Pool.shutdown p;
            Mutex.lock global_lock)
          existing;
        let p = Pool.create ~jobs in
        global_pool := Some p;
        p
  in
  Mutex.unlock global_lock;
  pool

let run_batch ?jobs n task =
  let jobs = match jobs with Some j -> Stdlib.max 1 j | None -> default_jobs () in
  if jobs <= 1 || n <= 1 then Pool.run_inline n task
  else Pool.run (obtain_pool jobs) n task

(* ---------- wrappers ---------- *)

(* Each slot records either the value or the exception; the lowest-index
   exception is re-raised so failures are as deterministic as results. *)
let collect ?jobs f input =
  let n = Array.length input in
  let out = Array.make n None in
  run_batch ?jobs n (fun i ->
      out.(i) <- Some (try Ok (f input.(i)) with e -> Error e));
  Array.map
    (function
      | Some (Ok v) -> v
      | Some (Error e) -> raise e
      | None -> assert false (* every index ran exactly once *))
    out

let parallel_map ?jobs f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | xs -> Array.to_list (collect ?jobs f (Array.of_list xs))

let parallel_iter ?jobs f xs = ignore (parallel_map ?jobs (fun x -> f x; ()) xs)

let chunk_list ~chunk_size xs =
  if chunk_size <= 0 then
    invalid_arg
      (Printf.sprintf "Exec.chunk_list: chunk_size %d (must be >= 1)"
         chunk_size);
  let rec take k acc = function
    | rest when k = 0 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | x :: rest -> take (k - 1) (x :: acc) rest
  in
  let rec go acc = function
    | [] -> List.rev acc
    | xs ->
        let chunk, rest = take chunk_size [] xs in
        go (chunk :: acc) rest
  in
  go [] xs

let parallel_chunks ?jobs ?chunk_size f xs =
  (match chunk_size with
  | Some c when c <= 0 ->
      invalid_arg
        (Printf.sprintf "Exec.parallel_chunks: chunk_size %d (must be >= 1)" c)
  | _ -> ());
  let n = List.length xs in
  if n = 0 then []
  else begin
    let j = match jobs with Some j -> Stdlib.max 1 j | None -> default_jobs () in
    (* Cap parallelism at the element count so [jobs > n] can never
       produce empty chunks or one-element dispatch of a cheap map. *)
    let j = Stdlib.min j n in
    let chunk_size =
      match chunk_size with
      | Some c -> c
      | None ->
          (* Ceiling division: ~4 chunks per worker, and never 0 even for
             tiny lists. *)
          (n + (j * 4) - 1) / (j * 4)
    in
    if j <= 1 || chunk_size >= n then List.map f xs
    else
      chunk_list ~chunk_size xs
      |> parallel_map ~jobs:j (List.map f)
      |> List.concat
  end

(* ---------- adaptive scheduling: the cost model ---------- *)

module Cost = struct
  (* Per-kernel online cost estimation.  Each pool call site names its
     workload with a stable string key ("fmea.injection",
     "optimize.search", ...); every scheduled batch feeds an EWMA of the
     measured per-task nanoseconds under that key, and [decide] only
     parallelises when the estimated win clears the measured dispatch
     overhead.  All state is process-global (guarded by [lock]) so one
     warm engine amortises calibration across many analyses. *)

  type estimate = { ns_per_task : float; samples : int }

  type decision = Sequential | Parallel of { chunk_size : int }

  type sched = Seq | Par | Auto

  type record = {
    d_key : string;
    d_tasks : int;
    d_jobs : int;
    d_decision : decision;
    d_estimate_ns : float option;
    d_measured_ns : float option;
  }

  let lock = Mutex.create ()
  let estimates : (string, estimate) Hashtbl.t = Hashtbl.create 16
  let decision_log : record list ref = ref [] (* newest first, bounded *)
  let log_limit = 64
  let seq_batches = Atomic.make 0
  let par_batches = Atomic.make 0

  (* Smoothing factor: heavy enough that a cache-cold first batch does
     not dominate, light enough to track a workload whose per-task cost
     drifts (e.g. growing netlists across an iteration loop). *)
  let ewma_alpha = 0.3

  let now_ns () = Unix.gettimeofday () *. 1e9

  let observe ~key ~tasks elapsed_ns =
    if tasks > 0 && elapsed_ns >= 0.0 then begin
      let per_task = elapsed_ns /. float_of_int tasks in
      Mutex.lock lock;
      (match Hashtbl.find_opt estimates key with
      | None -> Hashtbl.replace estimates key { ns_per_task = per_task; samples = 1 }
      | Some e ->
          Hashtbl.replace estimates key
            {
              ns_per_task =
                ((1.0 -. ewma_alpha) *. e.ns_per_task)
                +. (ewma_alpha *. per_task);
              samples = e.samples + 1;
            });
      Mutex.unlock lock
    end

  let estimate ~key =
    Mutex.lock lock;
    let r = Hashtbl.find_opt estimates key in
    Mutex.unlock lock;
    r

  (* ----- dispatch overhead: measured, not guessed ----- *)

  (* Conservative default (50 us) until a calibration runs or an imported
     state supplies the measured value for this machine. *)
  let overhead_ns = ref 50_000.0
  let calibrated = ref false

  let dispatch_overhead_ns () = !overhead_ns

  let set_dispatch_overhead_ns ns =
    overhead_ns := Float.max 1.0 ns;
    calibrated := true

  let calibrate ?(rounds = 16) () =
    (* Time empty batches through a real pool: wake-up, cursor atomics,
       collection.  Median across rounds rejects scheduler noise. *)
    let jobs = Stdlib.max 2 (default_jobs ()) in
    let n = 256 in
    run_batch ~jobs n (fun _ -> ());
    (* first batch pays domain spawn *)
    let samples =
      List.init rounds (fun _ ->
          let t0 = now_ns () in
          run_batch ~jobs n (fun _ -> ());
          now_ns () -. t0)
    in
    let sorted = List.sort compare samples in
    let median = List.nth sorted (rounds / 2) in
    overhead_ns := Float.max 1_000.0 median;
    calibrated := true;
    !overhead_ns

  let ensure_calibrated () = if not !calibrated then ignore (calibrate ())

  (* ----- effective parallelism ----- *)

  (* [SAME_JOBS] expresses intent; physical cores bound the achievable
     win.  Tests and benches may pin an assumed core count so decisions
     are reproducible across machines. *)
  let assumed_cores = ref None

  let set_assumed_cores c = assumed_cores := c

  let effective_cores () =
    match !assumed_cores with
    | Some c -> Stdlib.max 1 c
    | None -> Stdlib.max 1 (Domain.recommended_domain_count ())

  (* ----- the policy ----- *)

  (* Parallelise only when the estimated saving beats the dispatch
     overhead with margin to spare:
       saving = tasks * ns_per_task * (p - 1) / p   with p = min jobs cores
       go parallel iff saving > 2 * overhead_ns.  *)
  let margin = 2.0

  (* A chunk should hold ~200 us of work so per-chunk dispatch stays in
     the noise, but never so few chunks that workers idle: keep at least
     two chunks per worker when the list allows it. *)
  let chunk_target_ns = 200_000.0

  let chunk_for ~tasks ~jobs ns_per_task =
    let balance = Stdlib.max 1 (tasks / (2 * Stdlib.max 1 jobs)) in
    let amortise =
      if ns_per_task <= 0.0 then balance
      else
        let c = int_of_float (Float.ceil (chunk_target_ns /. ns_per_task)) in
        Stdlib.max 1 c
    in
    Stdlib.max 1 (Stdlib.min balance amortise)

  let decide ~tasks ~cost ~jobs =
    let p = Stdlib.min (Stdlib.max 1 jobs) (effective_cores ()) in
    if tasks <= 1 || p <= 1 then Sequential
    else begin
      let c = Float.max 1.0 cost.ns_per_task in
      let total = c *. float_of_int tasks in
      let win = total *. (float_of_int (p - 1) /. float_of_int p) in
      if win > margin *. !overhead_ns then
        Parallel { chunk_size = chunk_for ~tasks ~jobs:p c }
      else Sequential
    end

  (* ----- SAME_SCHED escape hatch ----- *)

  let sched_override = ref None
  let warned_sched = ref None

  let env_sched () =
    match Sys.getenv_opt "SAME_SCHED" with
    | None -> None
    | Some s -> (
        match String.lowercase_ascii (String.trim s) with
        | "seq" | "sequential" -> Some Seq
        | "par" | "parallel" -> Some Par
        | "auto" -> Some Auto
        | _ ->
            if !warned_sched <> Some s then begin
              warned_sched := Some s;
              Logs.warn (fun m ->
                  m
                    "ignoring malformed SAME_SCHED=%S (expected \
                     seq|par|auto); using auto"
                    s)
            end;
            None)

  let sched () =
    match !sched_override with
    | Some m -> m
    | None -> ( match env_sched () with Some m -> m | None -> Auto)

  let set_sched m = sched_override := Some m

  (* ----- bookkeeping: counters and the decision log ----- *)

  let note = function
    | Sequential -> Atomic.incr seq_batches
    | Parallel _ -> Atomic.incr par_batches

  let counters () = (Atomic.get seq_batches, Atomic.get par_batches)

  let record r =
    Mutex.lock lock;
    let keep = !decision_log in
    let keep =
      if List.length keep >= log_limit then
        List.filteri (fun i _ -> i < log_limit - 1) keep
      else keep
    in
    decision_log := r :: keep;
    Mutex.unlock lock

  let decisions () =
    Mutex.lock lock;
    let l = List.rev !decision_log in
    Mutex.unlock lock;
    l

  let reset () =
    Mutex.lock lock;
    Hashtbl.reset estimates;
    decision_log := [];
    Mutex.unlock lock;
    Atomic.set seq_batches 0;
    Atomic.set par_batches 0

  (* ----- persistence (stored under Engine.Cache by the caller) ----- *)

  let state_version = "same-cost/1"

  let export () =
    let b = Buffer.create 256 in
    Buffer.add_string b state_version;
    Buffer.add_char b '\n';
    Buffer.add_string b (Printf.sprintf "overhead_ns %.17g\n" !overhead_ns);
    Mutex.lock lock;
    let entries =
      Hashtbl.fold (fun k e acc -> (k, e) :: acc) estimates []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    in
    Mutex.unlock lock;
    List.iter
      (fun (k, e) ->
        Buffer.add_string b
          (Printf.sprintf "%s %.17g %d\n" k e.ns_per_task e.samples))
      entries;
    Buffer.contents b

  let import s =
    match String.split_on_char '\n' s with
    | header :: rest when String.trim header = state_version -> (
        try
          List.iter
            (fun line ->
              match String.split_on_char ' ' (String.trim line) with
              | [ "" ] -> ()
              | [ "overhead_ns"; v ] ->
                  set_dispatch_overhead_ns (float_of_string v)
              | [ key; ns; samples ] ->
                  let ns = float_of_string ns in
                  let samples = int_of_string samples in
                  if ns >= 0.0 && samples > 0 then begin
                    Mutex.lock lock;
                    Hashtbl.replace estimates key
                      { ns_per_task = ns; samples };
                    Mutex.unlock lock
                  end
              | _ -> failwith "malformed cost-state line")
            rest;
          true
        with _ -> false)
    | _ -> false

  (* ----- rendering for --explain ----- *)

  let pp_mode ppf = function
    | Sequential -> Format.fprintf ppf "sequential"
    | Parallel { chunk_size } ->
        Format.fprintf ppf "parallel(chunk %d)" chunk_size

  let pp_ns ppf = function
    | None -> Format.fprintf ppf "-"
    | Some ns when ns >= 1e6 -> Format.fprintf ppf "%.2fms" (ns /. 1e6)
    | Some ns when ns >= 1e3 -> Format.fprintf ppf "%.1fus" (ns /. 1e3)
    | Some ns -> Format.fprintf ppf "%.0fns" ns

  let pp_decisions ppf () =
    match decisions () with
    | [] ->
        Format.fprintf ppf
          "scheduler: no batches submitted (nothing to parallelise)"
    | ds ->
        let seq, par = counters () in
        Format.fprintf ppf
          "scheduler: %d batch(es) parallel, %d sequential (overhead %a, \
           %d core(s) assumed)"
          par seq pp_ns
          (Some !overhead_ns)
          (effective_cores ());
        List.iter
          (fun r ->
            let mode = Format.asprintf "%a" pp_mode r.d_decision in
            Format.fprintf ppf
              "@\n  %-20s %6d tasks  jobs=%d  %-20s est %a/task  measured \
               %a/task"
              r.d_key r.d_tasks r.d_jobs mode pp_ns r.d_estimate_ns pp_ns
              r.d_measured_ns)
          ds
end

(* ---------- the scheduled entry point ---------- *)

let rec split_n k xs =
  if k = 0 then ([], xs)
  else
    match xs with
    | [] -> ([], [])
    | x :: rest ->
        let a, b = split_n (k - 1) rest in
        (x :: a, b)

(* First batch under a fresh key: run this many tasks sequentially to
   seed the EWMA before deciding about the rest.  Small enough that a
   cheap workload loses nothing, large enough to average solver noise. *)
let pilot_tasks = 24

let scheduled_map ?jobs ~key f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | xs ->
      let n = List.length xs in
      let jobs =
        match jobs with Some j -> Stdlib.max 1 j | None -> default_jobs ()
      in
      let mode = Cost.sched () in
      let run_parallel chunk_size xs =
        chunk_list ~chunk_size xs
        |> parallel_map ~jobs (List.map f)
        |> List.concat
      in
      let fallback_chunk tasks =
        let j = Stdlib.min jobs tasks in
        Stdlib.max 1 ((tasks + (j * 4) - 1) / (j * 4))
      in
      if mode = Cost.Auto && jobs > 1 && Cost.effective_cores () > 1 then
        Cost.ensure_calibrated ();
      let est0 = Cost.estimate ~key in
      let t0 = Cost.now_ns () in
      let decision, result =
        match mode with
        | Cost.Seq -> (Cost.Sequential, List.map f xs)
        | Cost.Par ->
            if jobs <= 1 then (Cost.Sequential, List.map f xs)
            else
              let chunk_size =
                match est0 with
                | Some e -> Cost.chunk_for ~tasks:n ~jobs e.Cost.ns_per_task
                | None -> fallback_chunk n
              in
              (Cost.Parallel { chunk_size }, run_parallel chunk_size xs)
        | Cost.Auto -> (
            if jobs <= 1 || Cost.effective_cores () <= 1 then
              (Cost.Sequential, List.map f xs)
            else
              match est0 with
              | Some e -> (
                  match Cost.decide ~tasks:n ~cost:e ~jobs with
                  | Cost.Sequential -> (Cost.Sequential, List.map f xs)
                  | Cost.Parallel { chunk_size } as d ->
                      (d, run_parallel chunk_size xs))
              | None -> (
                  (* No estimate yet: sequential pilot seeds the EWMA,
                     then decide about the remainder.  Never slower than
                     sequential by construction. *)
                  let pilot = Stdlib.min pilot_tasks n in
                  let head, tail = split_n pilot xs in
                  let tp = Cost.now_ns () in
                  let head_r = List.map f head in
                  Cost.observe ~key ~tasks:pilot (Cost.now_ns () -. tp);
                  if tail = [] then (Cost.Sequential, head_r)
                  else
                    match Cost.estimate ~key with
                    | None -> (Cost.Sequential, head_r @ List.map f tail)
                    | Some e -> (
                        match
                          Cost.decide ~tasks:(n - pilot) ~cost:e ~jobs
                        with
                        | Cost.Sequential ->
                            (Cost.Sequential, head_r @ List.map f tail)
                        | Cost.Parallel { chunk_size } as d ->
                            (d, head_r @ run_parallel chunk_size tail))))
      in
      let elapsed = Cost.now_ns () -. t0 in
      Cost.observe ~key ~tasks:n elapsed;
      Cost.note decision;
      Cost.record
        {
          Cost.d_key = key;
          d_tasks = n;
          d_jobs = jobs;
          d_decision = decision;
          d_estimate_ns = Option.map (fun e -> e.Cost.ns_per_task) est0;
          d_measured_ns = Some (elapsed /. float_of_int n);
        };
      result
