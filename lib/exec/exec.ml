(* Fixed-size domain pool with deterministic in-order collection.

   One batch runs at a time; workers and the submitting domain race on an
   atomic index cursor, so distribution is dynamic (good load balance for
   uneven tasks like Newton solves) while the result slot of each task is
   fixed by its index (determinism). *)

(* ---------- job-count policy ---------- *)

let jobs_override = ref None

(* Warn once per distinct malformed value, not per call: [default_jobs]
   runs on every parallel batch. *)
let warned_jobs = ref None

let env_jobs () =
  match Sys.getenv_opt "SAME_JOBS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some n
      | Some _ | None ->
          if !warned_jobs <> Some s then begin
            warned_jobs := Some s;
            Logs.warn (fun m ->
                m
                  "ignoring malformed SAME_JOBS=%S (expected a positive \
                   integer); using %d domain(s)"
                  s
                  (Stdlib.max 1 (Domain.recommended_domain_count ())))
          end;
          None)

let default_jobs () =
  match !jobs_override with
  | Some n -> n
  | None -> (
      match env_jobs () with
      | Some n -> n
      | None -> Stdlib.max 1 (Domain.recommended_domain_count ()))

let set_default_jobs n = jobs_override := Some (Stdlib.max 1 n)

(* ---------- the pool ---------- *)

module Pool = struct
  type batch = {
    total : int;
    task : int -> unit;
    next : int Atomic.t;
    completed : int Atomic.t;
  }

  type t = {
    pool_jobs : int;
    lock : Mutex.t;
    work_available : Condition.t;
    batch_finished : Condition.t;
    mutable current : batch option;
    mutable stop : bool;
    mutable workers : unit Domain.t list;
  }

  let jobs t = t.pool_jobs

  (* True while the calling domain is executing a pool task: nested
     batches then run inline instead of waiting on themselves. *)
  let in_task = Domain.DLS.new_key (fun () -> ref false)

  let drain batch =
    let flag = Domain.DLS.get in_task in
    let rec loop () =
      let i = Atomic.fetch_and_add batch.next 1 in
      if i < batch.total then begin
        flag := true;
        (try batch.task i
         with e ->
           flag := false;
           ignore (Atomic.fetch_and_add batch.completed 1);
           raise e);
        flag := false;
        ignore (Atomic.fetch_and_add batch.completed 1);
        loop ()
      end
    in
    loop ()

  let worker_loop t =
    let rec loop () =
      Mutex.lock t.lock;
      let rec await () =
        if t.stop then begin
          Mutex.unlock t.lock;
          `Stop
        end
        else
          match t.current with
          | Some b when Atomic.get b.next < b.total ->
              Mutex.unlock t.lock;
              `Work b
          | Some _ | None ->
              Condition.wait t.work_available t.lock;
              await ()
      in
      match await () with
      | `Stop -> ()
      | `Work b ->
          (* [task] is documented not to raise; a violation must not kill
             the worker domain or wedge the submitter. *)
          (try drain b with _ -> ());
          (* The last finisher wakes the submitter. *)
          Mutex.lock t.lock;
          if Atomic.get b.completed >= b.total then
            Condition.broadcast t.batch_finished;
          Mutex.unlock t.lock;
          loop ()
    in
    loop ()

  let create ~jobs =
    let jobs = Stdlib.max 1 jobs in
    let t =
      {
        pool_jobs = jobs;
        lock = Mutex.create ();
        work_available = Condition.create ();
        batch_finished = Condition.create ();
        current = None;
        stop = false;
        workers = [];
      }
    in
    t.workers <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
    t

  let run_inline n task =
    for i = 0 to n - 1 do
      task i
    done

  let run t n task =
    if n <= 0 then ()
    else if t.pool_jobs <= 1 || n = 1 || !(Domain.DLS.get in_task) then
      run_inline n task
    else begin
      let batch =
        { total = n; task; next = Atomic.make 0; completed = Atomic.make 0 }
      in
      Mutex.lock t.lock;
      if t.current <> None || t.stop then begin
        (* Another domain owns the pool right now; don't queue behind it. *)
        Mutex.unlock t.lock;
        run_inline n task
      end
      else begin
        t.current <- Some batch;
        Condition.broadcast t.work_available;
        Mutex.unlock t.lock;
        (* The submitter is a full member of the crew.  Always reclaim
           the pool, even if a task breaks its no-raise contract. *)
        Fun.protect
          ~finally:(fun () ->
            Mutex.lock t.lock;
            while Atomic.get batch.completed < batch.total do
              Condition.wait t.batch_finished t.lock
            done;
            t.current <- None;
            Mutex.unlock t.lock)
          (fun () -> drain batch)
      end
    end

  let shutdown t =
    Mutex.lock t.lock;
    t.stop <- true;
    Condition.broadcast t.work_available;
    Mutex.unlock t.lock;
    List.iter Domain.join t.workers;
    t.workers <- []
end

(* ---------- the shared global pool ---------- *)

(* Lazily created at the first parallel call; recreated when the job
   count changes (set_default_jobs / SAME_JOBS differ from its size).
   Guarded by a mutex: concurrent resize would leak domains. *)

let global_pool : Pool.t option ref = ref None

let global_lock = Mutex.create ()

let obtain_pool jobs =
  Mutex.lock global_lock;
  let pool =
    match !global_pool with
    | Some p when Pool.jobs p = jobs -> p
    | existing ->
        (* Resize: detach the old pool first so a concurrent caller can't
           also try to retire it, then shut it down unlocked. *)
        global_pool := None;
        Option.iter
          (fun p ->
            Mutex.unlock global_lock;
            Pool.shutdown p;
            Mutex.lock global_lock)
          existing;
        let p = Pool.create ~jobs in
        global_pool := Some p;
        p
  in
  Mutex.unlock global_lock;
  pool

let run_batch ?jobs n task =
  let jobs = match jobs with Some j -> Stdlib.max 1 j | None -> default_jobs () in
  if jobs <= 1 || n <= 1 then Pool.run_inline n task
  else Pool.run (obtain_pool jobs) n task

(* ---------- wrappers ---------- *)

(* Each slot records either the value or the exception; the lowest-index
   exception is re-raised so failures are as deterministic as results. *)
let collect ?jobs f input =
  let n = Array.length input in
  let out = Array.make n None in
  run_batch ?jobs n (fun i ->
      out.(i) <- Some (try Ok (f input.(i)) with e -> Error e));
  Array.map
    (function
      | Some (Ok v) -> v
      | Some (Error e) -> raise e
      | None -> assert false (* every index ran exactly once *))
    out

let parallel_map ?jobs f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | xs -> Array.to_list (collect ?jobs f (Array.of_list xs))

let parallel_iter ?jobs f xs = ignore (parallel_map ?jobs (fun x -> f x; ()) xs)

let chunk_list ~chunk_size xs =
  let rec take k acc = function
    | rest when k = 0 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | x :: rest -> take (k - 1) (x :: acc) rest
  in
  let rec go acc = function
    | [] -> List.rev acc
    | xs ->
        let chunk, rest = take chunk_size [] xs in
        go (chunk :: acc) rest
  in
  go [] xs

let parallel_chunks ?jobs ?chunk_size f xs =
  let n = List.length xs in
  if n = 0 then []
  else begin
    let j = match jobs with Some j -> Stdlib.max 1 j | None -> default_jobs () in
    let chunk_size =
      match chunk_size with
      | Some c -> Stdlib.max 1 c
      | None -> Stdlib.max 1 (n / (j * 4))
    in
    if j <= 1 || chunk_size >= n then List.map f xs
    else
      chunk_list ~chunk_size xs
      |> parallel_map ~jobs:j (List.map f)
      |> List.concat
  end
