(** Shared-memory parallel execution for the analysis kernels.

    OCaml 5 gives the engine real parallelism: a fixed-size pool of
    {!Stdlib.Domain}s executes batches of independent tasks (one DC solve
    per injected fault, one FMEDA evaluation per deployment candidate,
    one verdict per store unit).  The design constraints, in order:

    + {b Determinism.}  Results are collected {e in input order} into a
      pre-sized array, so a parallel run is bit-identical to the
      sequential one for pure task functions — scheduling only changes
      {e when} a task runs, never what the caller observes.  With
      [jobs = 1] no domain is ever involved: the tasks run inline in the
      caller, which is exactly the pre-parallel code path.
    + {b Reuse.}  Domains are expensive to spawn (~ms); the global pool is
      created once and reused by every kernel.  Workers sleep on a
      condition variable between batches ([Mutex]/[Condition], no busy
      wait, no extra dependencies).
    + {b Safety under nesting.}  A task that itself calls into the pool
      (e.g. a parallel search evaluating a candidate whose scoring is
      itself parallelisable) runs its sub-batch inline instead of
      deadlocking on the shared queue.

    Concurrency control: the pool size comes from the [SAME_JOBS]
    environment variable, the [--jobs] CLI option ({!set_default_jobs})
    or, failing both, [Domain.recommended_domain_count ()]. *)

val default_jobs : unit -> int
(** Effective parallelism: the {!set_default_jobs} override if set, else
    [SAME_JOBS] (a positive integer; anything else is ignored), else
    [Domain.recommended_domain_count ()].  Always >= 1. *)

val env_jobs : unit -> int option
(** The [SAME_JOBS] environment variable, parsed.  A set-but-malformed
    value (not a positive integer) logs one {!Logs.warn} per distinct
    value and falls back to [None] — the documented behaviour, now no
    longer silent. *)

val set_default_jobs : int -> unit
(** Override the job count (clamped to >= 1).  Takes effect on the next
    parallel call: the global pool is resized lazily. *)

val with_jobs : int -> (unit -> 'a) -> 'a
(** [with_jobs n f] runs [f ()] with the {e calling thread's} effective
    job count capped at [n] (clamped to >= 1): every {!default_jobs}
    consultation made by [f] on this thread — and therefore every pool
    batch it submits without an explicit [?jobs] — sees at most [n]
    workers.  Nests (the innermost cap wins) and restores the previous
    budget on return or exception.  Other threads are unaffected: this is
    the fair-scheduling hook the analysis daemon uses to give each
    concurrent request a budget slice of the shared pool. *)

val jobs_budget : unit -> int option
(** The calling thread's current {!with_jobs} cap, if inside one. *)

val parallel_map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [parallel_map f xs] is [List.map f xs] evaluated on the pool, results
    in input order.  One pool task per element — right when each task is
    substantial (a DC solve, a unit FMEA).  If any [f x] raises, the
    batch still completes and the exception of the {e lowest-index}
    failing element is re-raised (deterministic across schedules).
    [?jobs] overrides {!default_jobs} for this call only. *)

val parallel_chunks :
  ?jobs:int -> ?chunk_size:int -> ('a -> 'b) -> 'a list -> 'b list
(** Like {!parallel_map} but amortised for cheap tasks: the input is cut
    into contiguous chunks (default: ceiling division to ~4 chunks per
    worker, with the worker count capped at the element count so tiny
    lists and [jobs > n] never yield empty chunks or one-element
    dispatch) and each pool task maps a whole chunk with [List.map],
    preserving order.  Use for large candidate lists where per-element
    dispatch would dominate.

    @raise Invalid_argument if [chunk_size] is given and [<= 0]. *)

val parallel_iter : ?jobs:int -> ('a -> unit) -> 'a list -> unit
(** {!parallel_map} for effects only (the effects must be thread-safe —
    e.g. charging an atomic {!Store.Budget}). *)

(** Adaptive scheduling: measure, then decide.

    A fixed "always parallelise with ~4 chunks per worker" rule made the
    small-problem injection FMEA {e slower} than sequential (0.19x on one
    core): dispatch overhead swamped sub-millisecond batches.  [Cost]
    keeps an online EWMA of the measured per-task nanoseconds for each
    workload key and a measured dispatch overhead, and {!scheduled_map}
    only parallelises when the estimated saving clears that overhead.
    The [SAME_SCHED] environment variable ([seq] | [par] | [auto],
    default [auto]) or {!Cost.set_sched} force a mode globally. *)
module Cost : sig
  type estimate = { ns_per_task : float; samples : int }
  (** EWMA of measured per-task cost under one workload key. *)

  type decision = Sequential | Parallel of { chunk_size : int }

  type sched = Seq | Par | Auto

  type record = {
    d_key : string;
    d_tasks : int;
    d_jobs : int;
    d_decision : decision;
    d_estimate_ns : float option;  (** estimate before the batch ran *)
    d_measured_ns : float option;  (** measured per-task ns afterwards *)
  }

  val sched : unit -> sched
  (** Effective mode: {!set_sched} override, else [SAME_SCHED] (malformed
      values warn once and are ignored), else [Auto]. *)

  val set_sched : sched -> unit

  val observe : key:string -> tasks:int -> float -> unit
  (** [observe ~key ~tasks elapsed_ns] folds a measured batch (total
      elapsed nanoseconds over [tasks] tasks) into the EWMA for [key]. *)

  val estimate : key:string -> estimate option

  val decide : tasks:int -> cost:estimate -> jobs:int -> decision
  (** The policy: with [p = min jobs (effective_cores ())], go parallel
      iff [tasks * ns_per_task * (p - 1) / p > 2 * dispatch_overhead_ns],
      with [chunk_size] from {!chunk_for}.  Monotone: more tasks or
      higher per-task cost never flips a parallel verdict back to
      sequential.  Pin {!set_assumed_cores} in tests for
      machine-independent assertions. *)

  val chunk_for : tasks:int -> jobs:int -> float -> int
  (** Chunk size from measured cost: big enough that each chunk holds
      ~200 us of work, small enough to keep >= 2 chunks per worker when
      the list allows it.  Always >= 1. *)

  val calibrate : ?rounds:int -> unit -> float
  (** One-shot dispatch-overhead measurement (median of [rounds] empty
      pool batches); returns and installs the measured overhead in ns.
      Runs automatically before the first [Auto] decision if no
      calibration was imported. *)

  val dispatch_overhead_ns : unit -> float

  val set_dispatch_overhead_ns : float -> unit
  (** Install an overhead value directly (tests; imported state) and mark
      the process calibrated. *)

  val effective_cores : unit -> int

  val set_assumed_cores : int option -> unit
  (** Pin the core count {!decide} uses ([None] returns to
      [Domain.recommended_domain_count]).  For tests and benches. *)

  val counters : unit -> int * int
  (** [(sequential, parallel)] batches scheduled so far. *)

  val decisions : unit -> record list
  (** The bounded decision log, oldest first. *)

  val reset : unit -> unit
  (** Clear estimates, the decision log and the counters (not the
      calibrated overhead). *)

  val export : unit -> string
  (** Serialise overhead + estimates ("same-cost/1" text format) for
      persistence through [Engine.Cache]. *)

  val import : string -> bool
  (** Restore a state written by {!export}.  [false] (and no partial
      update of the overhead) on malformed input. *)

  val pp_decisions : Format.formatter -> unit -> unit
  (** Render the scheduler verdicts for [--explain]: chosen mode, chunk
      size, estimated vs measured per-task cost — also when every batch
      ran sequentially. *)
end

val scheduled_map : ?jobs:int -> key:string -> ('a -> 'b) -> 'a list -> 'b list
(** [scheduled_map ~key f xs] is [List.map f xs] with the execution
    strategy chosen by {!Cost.decide} under the workload key [key]:
    sequential when the batch is too small to beat dispatch overhead,
    chunked parallel otherwise.  The first batch under a fresh key runs a
    short sequential pilot to seed the estimate, so [auto] is never
    slower than sequential.  Results (and the re-raised lowest-index
    exception) are bit-identical to [List.map] in every mode.  Every
    batch is timed, folded into the EWMA and recorded in the decision
    log. *)

(** The reusable fixed-size pool underneath the [parallel_*] wrappers.
    Kernels normally use the wrappers (which share one global pool);
    [Pool] is exposed for embedders that want an isolated pool with its
    own lifecycle. *)
module Pool : sig
  type t

  val create : jobs:int -> t
  (** Spawns [jobs - 1] worker domains ([jobs] is clamped to >= 1: the
      submitting domain always participates, so [jobs = 1] spawns
      nothing). *)

  val jobs : t -> int

  val run : t -> int -> (int -> unit) -> unit
  (** [run pool n task] executes [task 0 .. task (n-1)], each exactly
      once, distributed over the pool's domains plus the caller; returns
      when all have finished.  [task] must not raise (the [parallel_*]
      wrappers capture exceptions per index).  Re-entrant calls (from
      inside a task, or while another batch is active) run inline. *)

  val shutdown : t -> unit
  (** Joins the workers.  The pool must not be used afterwards. *)
end
