(** Shared-memory parallel execution for the analysis kernels.

    OCaml 5 gives the engine real parallelism: a fixed-size pool of
    {!Stdlib.Domain}s executes batches of independent tasks (one DC solve
    per injected fault, one FMEDA evaluation per deployment candidate,
    one verdict per store unit).  The design constraints, in order:

    + {b Determinism.}  Results are collected {e in input order} into a
      pre-sized array, so a parallel run is bit-identical to the
      sequential one for pure task functions — scheduling only changes
      {e when} a task runs, never what the caller observes.  With
      [jobs = 1] no domain is ever involved: the tasks run inline in the
      caller, which is exactly the pre-parallel code path.
    + {b Reuse.}  Domains are expensive to spawn (~ms); the global pool is
      created once and reused by every kernel.  Workers sleep on a
      condition variable between batches ([Mutex]/[Condition], no busy
      wait, no extra dependencies).
    + {b Safety under nesting.}  A task that itself calls into the pool
      (e.g. a parallel search evaluating a candidate whose scoring is
      itself parallelisable) runs its sub-batch inline instead of
      deadlocking on the shared queue.

    Concurrency control: the pool size comes from the [SAME_JOBS]
    environment variable, the [--jobs] CLI option ({!set_default_jobs})
    or, failing both, [Domain.recommended_domain_count ()]. *)

val default_jobs : unit -> int
(** Effective parallelism: the {!set_default_jobs} override if set, else
    [SAME_JOBS] (a positive integer; anything else is ignored), else
    [Domain.recommended_domain_count ()].  Always >= 1. *)

val env_jobs : unit -> int option
(** The [SAME_JOBS] environment variable, parsed.  A set-but-malformed
    value (not a positive integer) logs one {!Logs.warn} per distinct
    value and falls back to [None] — the documented behaviour, now no
    longer silent. *)

val set_default_jobs : int -> unit
(** Override the job count (clamped to >= 1).  Takes effect on the next
    parallel call: the global pool is resized lazily. *)

val parallel_map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [parallel_map f xs] is [List.map f xs] evaluated on the pool, results
    in input order.  One pool task per element — right when each task is
    substantial (a DC solve, a unit FMEA).  If any [f x] raises, the
    batch still completes and the exception of the {e lowest-index}
    failing element is re-raised (deterministic across schedules).
    [?jobs] overrides {!default_jobs} for this call only. *)

val parallel_chunks :
  ?jobs:int -> ?chunk_size:int -> ('a -> 'b) -> 'a list -> 'b list
(** Like {!parallel_map} but amortised for cheap tasks: the input is cut
    into contiguous chunks (default: enough for ~4 chunks per worker,
    minimum 1 element) and each pool task maps a whole chunk with
    [List.map], preserving order.  Use for large candidate lists where
    per-element dispatch would dominate. *)

val parallel_iter : ?jobs:int -> ('a -> unit) -> 'a list -> unit
(** {!parallel_map} for effects only (the effects must be thread-safe —
    e.g. charging an atomic {!Store.Budget}). *)

(** The reusable fixed-size pool underneath the [parallel_*] wrappers.
    Kernels normally use the wrappers (which share one global pool);
    [Pool] is exposed for embedders that want an isolated pool with its
    own lifecycle. *)
module Pool : sig
  type t

  val create : jobs:int -> t
  (** Spawns [jobs - 1] worker domains ([jobs] is clamped to >= 1: the
      submitting domain always participates, so [jobs = 1] spawns
      nothing). *)

  val jobs : t -> int

  val run : t -> int -> (int -> unit) -> unit
  (** [run pool n task] executes [task 0 .. task (n-1)], each exactly
      once, distributed over the pool's domains plus the caller; returns
      when all have finished.  [task] must not raise (the [parallel_*]
      wrappers capture exceptions per index).  Re-entrant calls (from
      inside a task, or while another batch is active) run inline. *)

  val shutdown : t -> unit
  (** Joins the workers.  The pool must not be used afterwards. *)
end
