type options = {
  threshold_rel : float;
  threshold_abs : float;
  exclude : string list;
  overcurrent_factor : float option;
  monitored_sensors : string list option;
}

let default_options =
  {
    threshold_rel = 0.2;
    threshold_abs = 1e-9;
    exclude = [];
    overcurrent_factor = Some 8.0;
    monitored_sensors = None;
  }

type element_types = (string * string) list

type solver = [ `Reuse | `Refactor of Circuit.Dc.backend ]

type solve_path = [ `Reused | `Rank_update of int | `Refactor ]

exception Golden_run_failed of string

let max_element_current netlist solution =
  List.fold_left
    (fun acc (e : Circuit.Element.t) ->
      Float.max acc (Float.abs (Circuit.Dc.element_current solution e.Circuit.Element.id)))
    0.0
    (Circuit.Netlist.elements netlist)

(* The golden run and everything derived from it, computed once and
   shared — across the repeated single classifications of the "delve into
   a component" workflow, and (read-only) across the domains of the
   parallel analysis.  Under the default [`Reuse] solver this includes
   the golden MNA factorisation, which every injection then re-solves
   against via a low-rank update instead of refactorising. *)
type prepared = {
  p_options : options;
  p_netlist : Circuit.Netlist.t;
  (* Some iff the solver is [`Reuse]. *)
  p_factors : Circuit.Dc.golden option;
  (* The backend forced on per-injection re-analysis under [`Refactor]. *)
  p_refactor_backend : Circuit.Dc.backend;
  p_golden : Circuit.Dc.solution;
  p_golden_max_current : float;
  p_golden_readings : (string * float) list;  (* monitored, in sensor order *)
}

let prepare ?(options = default_options) ?(solver = `Reuse) netlist =
  let fail e = raise (Golden_run_failed (Format.asprintf "%a" Circuit.Dc.pp_error e)) in
  let factors, refactor_backend, golden =
    match solver with
    | `Reuse -> (
        match Circuit.Dc.factorise (Circuit.Dc.prepare netlist) with
        | Ok g -> (Some g, `Auto, Circuit.Dc.golden_solution g)
        | Error e -> fail e)
    | `Refactor backend -> (
        match Circuit.Dc.analyse ~backend netlist with
        | Ok s -> (None, backend, s)
        | Error e -> fail e)
  in
  let monitored readings =
    match options.monitored_sensors with
    | None -> readings
    | Some ids ->
        List.filter (fun (id, _) -> List.exists (String.equal id) ids) readings
  in
  {
    p_options = options;
    p_netlist = netlist;
    p_factors = factors;
    p_refactor_backend = refactor_backend;
    p_golden = golden;
    p_golden_max_current = max_element_current netlist golden;
    p_golden_readings = monitored (Circuit.Dc.all_sensor_readings golden);
  }

(* Compare faulty sensor readings against golden; return the worst
   offending sensor when the deviation exceeds the thresholds.  The
   faulty readings are indexed once — the previous per-golden-reading
   [List.assoc_opt] made this O(sensors²). *)
let compare_readings options golden_readings faulty =
  let faulty_readings = Hashtbl.create 16 in
  List.iter
    (fun (sensor, f) ->
      (* First reading wins, matching [List.assoc_opt] on duplicates. *)
      if not (Hashtbl.mem faulty_readings sensor) then
        Hashtbl.add faulty_readings sensor f)
    (Circuit.Dc.all_sensor_readings faulty);
  List.fold_left
    (fun acc (sensor, g) ->
      match Hashtbl.find_opt faulty_readings sensor with
      | None ->
          (* The fault removed the sensor itself: the observation channel
             is lost, which violates the monitoring goal outright. *)
          Some (sensor ^ " (observation lost)", 1.0)
      | Some f ->
          let abs_diff = Float.abs (f -. g) in
          let rel_diff = abs_diff /. Float.max (Float.abs g) options.threshold_abs in
          if abs_diff > options.threshold_abs && rel_diff > options.threshold_rel
          then
            match acc with
            | Some (_, worst) when worst >= rel_diff -> acc
            | Some _ | None -> Some (sensor, rel_diff)
          else acc)
    None golden_readings

(* The faulted solve itself: the low-rank re-solve against the golden
   factors under [`Reuse], or a from-scratch assemble + factorise of the
   faulted netlist under [`Refactor]. *)
let faulted_solution p ~on_solved ~element_id fault =
  match p.p_factors with
  | Some g ->
      Circuit.Dc.inject
        ~on_path:(fun path -> on_solved (path :> solve_path))
        g ~element_id fault
  | None -> (
      let faulted = Circuit.Fault.inject p.p_netlist ~element_id fault in
      on_solved `Refactor;
      Circuit.Dc.analyse ~backend:p.p_refactor_backend faulted)

let classify_prepared ?(on_solved = fun (_ : solve_path) -> ()) p ~element_id
    fault =
  let options = p.p_options in
  match faulted_solution p ~on_solved ~element_id fault with
  | exception Circuit.Fault.Not_applicable { reason; _ } ->
      `Simulation_failed (Printf.sprintf "fault not applicable: %s" reason)
  | Error e -> `Simulation_failed (Format.asprintf "%a" Circuit.Dc.pp_error e)
  | Ok solution -> (
      let plausible =
        match options.overcurrent_factor with
        | None -> true
        | Some factor ->
            (* Element ids — and therefore the set of currents to bound —
               are unchanged by faults, so the golden netlist indexes the
               faulted solution too. *)
            max_element_current p.p_netlist solution
            <= factor *. Float.max p.p_golden_max_current 1e-12
      in
      if not plausible then
        `Excluded
          "non-physical operating point (supply overcurrent) — violates \
           the stable-supply assumption; excluded from classification"
      else
        match compare_readings options p.p_golden_readings solution with
        | Some (sensor, rel) ->
            `Safety_related
              (Printf.sprintf "%s deviates by %.0f%%" sensor (100.0 *. rel))
        | None -> `No_effect)

let classify_single ?(options = default_options) ?solver netlist ~element_id
    fault =
  classify_prepared (prepare ~options ?solver netlist) ~element_id fault

type injection = string * float * Reliability.Reliability_model.failure_mode

(* Enumerate the (element, failure-mode) injections — cheap, and it fixes
   the row order before anything runs on the pool.  Exposed so the
   batch-fleet driver can flatten several variants' injections into one
   task list. *)
let enumerate ?(options = default_options) ?(element_types = []) netlist
    reliability =
  let type_of (e : Circuit.Element.t) =
    match List.assoc_opt e.Circuit.Element.id element_types with
    | Some t -> t
    | None -> Circuit.Element.kind_name e.Circuit.Element.kind
  in
  List.concat_map
    (fun (e : Circuit.Element.t) ->
      let id = e.Circuit.Element.id in
      if List.exists (String.equal id) options.exclude then []
      else
        match Reliability.Reliability_model.find reliability (type_of e) with
        | None -> []
        | Some entry ->
            let fit = entry.Reliability.Reliability_model.fit in
            List.map
              (fun (fm : Reliability.Reliability_model.failure_mode) ->
                (id, fit, fm))
              entry.Reliability.Reliability_model.failure_modes)
    (Circuit.Netlist.elements netlist)

let compute_row ?on_classified ?on_solved p
    ((id, fit, (fm : Reliability.Reliability_model.failure_mode)) : injection)
    =
  let name = fm.Reliability.Reliability_model.fm_name in
  let dist = fm.Reliability.Reliability_model.distribution_pct in
  let mk =
    Table.make_row ~component:id ~component_fit:fit ~failure_mode:name
      ~distribution_pct:dist
  in
  match fm.Reliability.Reliability_model.fault with
  | None ->
      mk
        ~warning:
          (Printf.sprintf
             "no fault model for failure mode '%s' — review manually" name)
        ~safety_related:false ()
  | Some fault -> (
      (match on_classified with Some hook -> hook () | None -> ());
      match classify_prepared ?on_solved p ~element_id:id fault with
      | `Safety_related impact -> mk ~impact ~safety_related:true ()
      | `No_effect ->
          mk ~impact:"sensor readings within threshold" ~safety_related:false
            ()
      | `Excluded why -> mk ~warning:why ~safety_related:false ()
      | `Simulation_failed why ->
          mk
            ~warning:(Printf.sprintf "simulation failed: %s" why)
            ~safety_related:false ())

(* The reuse hook (when provided by the incremental engine) is asked
   first; a reused row skips its faulted solve entirely.  The hook is
   consulted from pool domains, so it must be thread-safe. *)
let injection_row ?reuse ?on_classified ?on_solved p
    (((id, _, fm) : injection) as inj) =
  match reuse with
  | None -> compute_row ?on_classified ?on_solved p inj
  | Some f -> (
      match
        f ~component:id ~failure_mode:fm.Reliability.Reliability_model.fm_name
      with
      | Some row -> row
      | None -> compute_row ?on_classified ?on_solved p inj)

let cost_key = "fmea.injection"

let analyse ?(options = default_options) ?(element_types = []) ?solver
    ?prepared ?reuse ?on_classified ?on_solved netlist reliability =
  let p =
    match prepared with Some p -> p | None -> prepare ~options ?solver netlist
  in
  let injections = enumerate ~options ~element_types netlist reliability in
  (* One DC solve per injection, the golden solution shared read-only;
     the cost model decides whether this batch is worth the pool at all
     (a handful of rank-1 re-solves is not). *)
  let rows =
    Exec.scheduled_map ~key:cost_key
      (injection_row ?reuse ?on_classified ?on_solved p)
      injections
  in
  { Table.system_name = Circuit.Netlist.name netlist; rows }
