(** Automated FMEA by failure injection on circuit models (the paper's
    Sec. IV-D1 workflow for Simulink models).

    1. {b Initialise}: solve the golden netlist, record all sensor
       readings.
    2. {b Iterate}: for every element with a reliability entry and every
       failure mode, inject the fault, re-solve, and compare the sensor
       readings against the golden ones.
    3. {b Output}: a {!Table.t}; architecture metrics come from
       {!Metrics}.

    A failure mode is classified safety-related when at least one sensor
    reading moves by more than [threshold_rel] (relative to the golden
    value, with [threshold_abs] as a floor for near-zero readings).

    Runs that violate the supply-stability assumption — any element
    current exceeding [overcurrent_factor] times the golden run's maximum
    element current — are excluded with a warning: the paper's case study
    "assume[s] that DC1 is stable", and a shorted rail capacitor draws a
    non-physical source current (a current-limited or fused supply would
    shut down rather than deliver it), which is why the paper's Table IV
    lists no capacitor as safety-related. *)

type options = {
  threshold_rel : float;  (** default 0.2 (20 %) *)
  threshold_abs : float;  (** default 1e-9 *)
  exclude : string list;  (** element ids not injected (e.g. ["DC1"]) *)
  overcurrent_factor : float option;
      (** default [Some 8.0] — multiples of the golden maximum element
          current beyond which a run is excluded; [None] disables the
          check *)
  monitored_sensors : string list option;
      (** sensors whose readings constitute the safety observation
          ([None], the default, monitors all sensors).  Debug test points
          should not be listed: losing one is not a hazard. *)
}

val default_options : options

type element_types = (string * string) list
(** Element id → component type for reliability lookup (from
    {!Blockdiag.To_netlist}); elements not listed fall back to their
    {!Circuit.Element.kind_name}. *)

type solver = [ `Reuse | `Refactor of Circuit.Dc.backend ]
(** How faulted systems are solved.  [`Reuse] (the default) factorises
    the golden MNA system once and serves every injection as a low-rank
    (Sherman–Morrison–Woodbury) re-solve against those factors —
    {!Circuit.Dc.inject}.  [`Refactor b] is the from-scratch baseline:
    each injection rewrites the netlist, re-assembles and refactorises on
    backend [b]; kept for comparison benchmarks and as an escape hatch. *)

type solve_path = [ `Reused | `Rank_update of int | `Refactor ]
(** How one faulted solve was served, reported through [on_solved]:
    golden solution reused as-is, rank-[k] update against the golden
    factors, or a full refactorise. *)

exception Golden_run_failed of string
(** The un-faulted netlist itself does not solve. *)

type prepared
(** The golden run and its derived observables (max element current,
    monitored sensor readings, and — under [`Reuse] — the golden MNA
    factorisation), computed once by {!prepare} and shared by any number
    of {!classify_prepared} calls. *)

val prepare : ?options:options -> ?solver:solver -> Circuit.Netlist.t -> prepared
(** Solves the golden netlist; raises {!Golden_run_failed} if it does not
    converge.  The result is immutable and safe to share across
    domains. *)

val classify_prepared :
  ?on_solved:(solve_path -> unit) ->
  prepared ->
  element_id:string ->
  Circuit.Fault.t ->
  [ `Safety_related of string  (** worst offending sensor *)
  | `No_effect
  | `Excluded of string  (** plausibility/assumption violation *)
  | `Simulation_failed of string ]
(** One injection against a shared golden run — the paper's "delve into a
    component" workflow without re-solving the golden netlist each
    time. *)

val classify_single :
  ?options:options ->
  ?solver:solver ->
  Circuit.Netlist.t ->
  element_id:string ->
  Circuit.Fault.t ->
  [ `Safety_related of string
  | `No_effect
  | `Excluded of string
  | `Simulation_failed of string ]
(** [classify_prepared (prepare netlist)] — convenience for one-off
    classifications; repeated calls should {!prepare} once instead. *)

type injection = string * float * Reliability.Reliability_model.failure_mode
(** One planned fault injection: element id, component FIT and the
    failure mode to inject. *)

val enumerate :
  ?options:options ->
  ?element_types:element_types ->
  Circuit.Netlist.t ->
  Reliability.Reliability_model.t ->
  injection list
(** The (element, failure-mode) pairs {!analyse} would classify, in row
    order: every non-excluded element with a reliability entry crossed
    with its failure modes.  Pure and cheap — exposed so the batch-fleet
    driver can flatten several variants' injections into one pool
    batch. *)

val injection_row :
  ?reuse:(component:string -> failure_mode:string -> Table.row option) ->
  ?on_classified:(unit -> unit) ->
  ?on_solved:(solve_path -> unit) ->
  prepared ->
  injection ->
  Table.row
(** Classify one enumerated injection against a shared golden run and
    render its table row — exactly what {!analyse} does per task.  Safe
    to call from pool domains (the hooks must be thread-safe, as under
    {!analyse}). *)

val cost_key : string
(** The {!Exec.Cost} workload key under which injection classifications
    are scheduled ("fmea.injection"). *)

val analyse :
  ?options:options ->
  ?element_types:element_types ->
  ?solver:solver ->
  ?prepared:prepared ->
  ?reuse:(component:string -> failure_mode:string -> Table.row option) ->
  ?on_classified:(unit -> unit) ->
  ?on_solved:(solve_path -> unit) ->
  Circuit.Netlist.t ->
  Reliability.Reliability_model.t ->
  Table.t
(** The injections are independent, so they are classified in parallel on
    the {!Exec} domain pool ([SAME_JOBS] workers): the golden solution is
    computed once and shared read-only; each (element, failure-mode)
    injection is solved on its own task.  Row order — and every value in
    every row — is identical to the sequential ([SAME_JOBS=1]) run.

    The optional hooks serve the incremental engine
    ([Engine.Pipeline]):

    - [prepared] supplies a cached golden run instead of re-solving; it
      {e must} come from {!prepare} on the same netlist and options.
    - [reuse] is consulted before each injection; returning [Some row]
      emits that row verbatim and skips the faulted solve.  The caller
      is responsible for only reusing rows that are bit-identical to
      what recomputation would produce.  Called from pool domains —
      must be thread-safe.
    - [on_classified] fires once per row actually classified by fault
      injection (not for reused rows, nor for failure modes without a
      fault model).  Called from pool domains — must be thread-safe.
    - [on_solved] fires once per faulted solve with the path that served
      it (reused / rank-k update / full refactorise), for the engine's
      solver statistics.  Called from pool domains — must be
      thread-safe. *)
